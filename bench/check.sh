#!/bin/sh
# CI check: full build, test suite, and a CLI profiling smoke test.
# Run from the repository root:  sh bench/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== quickstart example =="
dune exec examples/quickstart.exe >/dev/null

echo "== CLI profiling smoke =="
tmp="${TMPDIR:-/tmp}/recstep-check.$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

dune exec bin/recstep_cli.exe -- gen gnp -n 200 -p 0.03 --seed 7 -o "$tmp/arc.tsv"

# TC plus a non-recursive stratum on top, so the profile covers the
# relational executor as well as the PBME-collapsed recursive stratum.
cat >"$tmp/tc.dl" <<'EOF'
.input arc
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
twohop(x, y) :- tc(x, z), tc(z, y).
.output tc
.output twohop
EOF

dune exec bin/recstep_cli.exe -- run "$tmp/tc.dl" --fact "arc=$tmp/arc.tsv" \
  --profile "$tmp/p.json" >/dev/null

# the profile must be valid JSON and cover the instrumented subsystems
cat >"$tmp/validate.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    p = json.load(f)
kinds = {s["kind"] for s in p["spans"]}
need = {"storage", "dedup", "executor", "interpreter"}
missing = need - kinds
assert not missing, "missing span kinds: %s" % missing
assert p["iterations"], "no per-iteration records"
print("profile OK: %d spans over %s, %d iteration records, %d counters"
      % (len(p["spans"]), sorted(kinds), len(p["iterations"]), len(p["counters"])))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate.py" "$tmp/p.json"
else
  # no python in the image: at least require a non-empty profile
  test -s "$tmp/p.json"
  echo "profile written (python3 unavailable, JSON not validated)"
fi

echo "== persistent-index smoke =="
# A pure TC fixpoint on the relational path (--no-pbme keeps the bit-matrix
# kernel out of the way, --dsd opsd pins the set-difference strategy so the
# counter budget below is exact): the index manager must turn per-iteration
# index builds into reuse hits / delta appends.
cat >"$tmp/tc_only.dl" <<'EOF'
.input arc
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
.output tc
EOF

dune exec bin/recstep_cli.exe -- run "$tmp/tc_only.dl" --fact "arc=$tmp/arc.tsv" \
  --no-pbme --dsd opsd --profile "$tmp/pidx.json" --out "$tmp/idx_on" >/dev/null

cat >"$tmp/validate_index.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    p = json.load(f)
c = p["counters"]
iters = c["interpreter.iterations"]
builds = c["executor.index_builds"]
assert iters >= 5, "TC fixpoint too short to be meaningful: %d iterations" % iters
assert c.get("executor.index_reuse_hits", 0) > 0, "no index reuse across iterations"
# This program has exactly two persistent access patterns (arc keyed on
# column 0 for the delta-rule join, tc keyed on all columns for OPSD), so
# builds must stay O(#patterns) — not O(#iterations).  Allow a small
# constant slack for transient builds outside the fixpoint.
assert builds <= 4, \
    "index_builds scales with iterations: %d builds over %d iterations" % (builds, iters)
assert c.get("executor.index_appends", 0) > 0, "recursive table was never delta-appended"
print("index manager OK: %d iterations, %d builds, %d appends, %d reuse hits, %d rehashes"
      % (iters, builds, c.get("executor.index_appends", 0),
         c.get("executor.index_reuse_hits", 0), c.get("executor.index_rehashes", 0)))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_index.py" "$tmp/pidx.json"
else
  test -s "$tmp/pidx.json"
  echo "index profile written (python3 unavailable, JSON not validated)"
fi

# results must be identical with the manager disabled (row order inside the
# unordered bag output may differ; the tuple sets may not)
dune exec bin/recstep_cli.exe -- run "$tmp/tc_only.dl" --fact "arc=$tmp/arc.tsv" \
  --no-pbme --dsd opsd --no-persistent-indexes --out "$tmp/idx_off" >/dev/null
sort "$tmp/idx_on/tc.tsv" >"$tmp/tc_on.sorted"
sort "$tmp/idx_off/tc.tsv" >"$tmp/tc_off.sorted"
cmp "$tmp/tc_on.sorted" "$tmp/tc_off.sorted"
echo "results identical with and without persistent indexes"

echo "== compiled-kernel smoke =="
# The same relational TC fixpoint with the fused rule kernels on (default)
# and off: output checksums must be byte-identical, and the profile must
# show the recursive rule actually compiled (not silently gated out).
dune exec bin/recstep_cli.exe -- run "$tmp/tc_only.dl" --fact "arc=$tmp/arc.tsv" \
  --no-pbme --profile "$tmp/pkern.json" --out "$tmp/kern_on" >/dev/null
dune exec bin/recstep_cli.exe -- run "$tmp/tc_only.dl" --fact "arc=$tmp/arc.tsv" \
  --no-pbme --no-kernels --out "$tmp/kern_off" >/dev/null
sort "$tmp/kern_on/tc.tsv" >"$tmp/tc_kern_on.sorted"
sort "$tmp/kern_off/tc.tsv" >"$tmp/tc_kern_off.sorted"
cmp "$tmp/tc_kern_on.sorted" "$tmp/tc_kern_off.sorted"
echo "results identical with and without compiled kernels"

cat >"$tmp/validate_kernel.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    p = json.load(f)
c = p["counters"]
assert c.get("kernel.compiled_rules", 0) > 0, "no rule compiled to a fused kernel"
assert c.get("kernel.execs", 0) > 0, "compiled kernels never executed"
assert c.get("kernel.fallbacks", 0) == 0, "kernel executions degraded without faults"
print("kernel profile OK: %d compiled rules, %d executions, %d fused probes, %d rows emitted"
      % (c["kernel.compiled_rules"], c["kernel.execs"],
         c.get("kernel.fused_probes", 0), c.get("kernel.emitted", 0)))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_kernel.py" "$tmp/pkern.json"
else
  test -s "$tmp/pkern.json"
  echo "kernel profile written (python3 unavailable, JSON not validated)"
fi

# Kernel benchmark: the fused path must be at least 2x faster in simulated
# time on recursive TC, with byte-identical outputs on every workload.
dune exec bench/main.exe -- --only kernel >/dev/null
cat >"$tmp/validate_bench_kernel.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
ws = {w["workload"]: w for w in b["workloads"]}
for w in b["workloads"]:
    assert w["identical"], "%s outputs diverged between kernel and interpreted runs" % w["workload"]
tc = ws["tc"]
assert tc["compiled_rules"] > 0, "TC recursive rule did not compile"
assert tc["ratio"] >= 2.0, \
    "kernels under 2x on recursive TC: %.2fx" % tc["ratio"]
print("BENCH_kernel OK: tc %.1fx with %d compiled rules, %d workloads identical"
      % (tc["ratio"], tc["compiled_rules"], len(b["workloads"])))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_bench_kernel.py" BENCH_kernel.json
else
  test -s BENCH_kernel.json
  echo "BENCH_kernel.json written (python3 unavailable, JSON not validated)"
fi

echo "== explain smoke =="
# Why-provenance and the explain surface: a derived TC fact must explain
# down to EDB leaves naming at least one rule, an absent fact must exit
# non-zero, and the chain must be identical with tag recording disabled
# (tags only annotate the render; the proof search is tag-independent).
fact=$(head -1 "$tmp/idx_on/tc.tsv" | awk '{printf "tc(%s, %s)", $1, $2}')
dune exec bin/recstep_cli.exe -- explain "$tmp/tc_only.dl" "$fact" \
  --fact "arc=$tmp/arc.tsv" >"$tmp/explain_on.out"
grep -q "rule" "$tmp/explain_on.out"
grep -q "\[edb\]" "$tmp/explain_on.out"
dune exec bin/recstep_cli.exe -- explain "$tmp/tc_only.dl" "$fact" \
  --fact "arc=$tmp/arc.tsv" --no-provenance >"$tmp/explain_off.out"
sed 's| @s[0-9]*/i[0-9]*/#[0-9]*||g' "$tmp/explain_on.out" >"$tmp/explain_on.stripped"
cmp "$tmp/explain_on.stripped" "$tmp/explain_off.out"
if dune exec bin/recstep_cli.exe -- explain "$tmp/tc_only.dl" "tc(999999, 999999)" \
  --fact "arc=$tmp/arc.tsv" >/dev/null 2>&1; then
  echo "explain smoke FAILED: absent fact did not exit non-zero"
  exit 1
fi
echo "explain smoke OK: $fact explained to EDB leaves, chains identical with tags off"

# Provenance overhead benchmark: tags on must stay within 2x of tags off in
# simulated time, with byte-identical outputs and full tag coverage.
dune exec bench/main.exe -- --only prov >/dev/null
cat >"$tmp/validate_bench_prov.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
for w in b["workloads"]:
    assert w["identical"], "%s outputs diverged with provenance on" % w["workload"]
    assert w["full_coverage"], "%s not fully tagged at sample 1.0" % w["workload"]
    assert w["overhead"] <= 2.0, \
        "%s provenance overhead above 2x: %.2fx" % (w["workload"], w["overhead"])
print("BENCH_prov OK: " + ", ".join(
    "%s %.2fx (%d tags)" % (w["workload"], w["overhead"], w["recorded"])
    for w in b["workloads"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_bench_prov.py" BENCH_prov.json
else
  test -s BENCH_prov.json
  echo "BENCH_prov.json written (python3 unavailable, JSON not validated)"
fi

echo "== sharded execution smoke =="
# The same TC fixpoint across 4 simulated shard nodes must produce exactly
# the unsharded tuple set; with colocation analysis disabled the outputs
# stay identical but every retained head tuple is charged as a repartition,
# so the shuffle counters must light up in the profile.
dune exec bin/recstep_cli.exe -- run "$tmp/tc_only.dl" --fact "arc=$tmp/arc.tsv" \
  --shards 4 --out "$tmp/shard4" >/dev/null
sort "$tmp/shard4/tc.tsv" >"$tmp/tc_shard4.sorted"
cmp "$tmp/tc_on.sorted" "$tmp/tc_shard4.sorted"
echo "results identical sharded (4 nodes) and unsharded"

dune exec bin/recstep_cli.exe -- run "$tmp/tc_only.dl" --fact "arc=$tmp/arc.tsv" \
  --shards 4 --no-colocation --profile "$tmp/pshard.json" \
  --out "$tmp/shard4_noco" >/dev/null
sort "$tmp/shard4_noco/tc.tsv" >"$tmp/tc_shard4_noco.sorted"
cmp "$tmp/tc_on.sorted" "$tmp/tc_shard4_noco.sorted"

cat >"$tmp/validate_shard.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    p = json.load(f)
c = p["counters"]
assert c.get("shard.shards") == 4, "profile not from a 4-shard run: %s" % c.get("shard.shards")
assert c.get("shard.supersteps", 0) > 0, "no supersteps recorded"
assert c.get("shard.shuffle_tuples", 0) > 0, \
    "--no-colocation charged no shuffle traffic"
print("shard profile OK: %d supersteps, %d shuffle tuples, %d broadcast tuples"
      % (c["shard.supersteps"], c["shard.shuffle_tuples"],
         c.get("shard.broadcast_tuples", 0)))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_shard.py" "$tmp/pshard.json"
else
  test -s "$tmp/pshard.json"
  echo "shard profile written (python3 unavailable, JSON not validated)"
fi

# Scaling benchmark: outputs must agree at every node count and the
# colocated 4-shard run must beat the forced-shuffle makespan.
dune exec bench/main.exe -- --only shard >/dev/null
cat >"$tmp/validate_bench_shard.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
assert b["identical"], "sharded outputs diverged across node counts"
assert b["colocated_beats_shuffle"], "colocated 4-shard run lost to forced shuffle"
col = {(c["shards"], c["colocation"]): c for c in b["configs"]}
assert col[(4, True)]["shuffle_tuples"] == 0, "colocated TC shuffled tuples"
assert col[(4, False)]["shuffle_tuples"] > 0, "forced-shuffle run charged nothing"
print("BENCH_shard OK: %d configs, colocated 4-shard %.4fs vs forced shuffle %.4fs"
      % (len(b["configs"]), col[(4, True)]["makespan_s"], col[(4, False)]["makespan_s"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_bench_shard.py" BENCH_shard.json
else
  test -s BENCH_shard.json
  echo "BENCH_shard.json written (python3 unavailable, JSON not validated)"
fi

echo "== differential fuzz smoke =="
# A fixed-seed campaign over every engine and every optimization-toggle
# configuration must agree with the naive reference evaluator on all cases.
dune exec bin/recstep_cli.exe -- fuzz --seed 42 --iters 25 \
  --report "$tmp/fuzz.json" >/dev/null

cat >"$tmp/validate_fuzz.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
runs = r["runs"]
assert runs["diverged"] == 0, "campaign diverged: %s" % r["divergences"]
assert runs["failed"] == 0, "campaign had crashed runs"
assert runs["total"] == (r["cases"] - r["invalid"]) * r["runners"], "runs identity"
assert runs["total"] == runs["ok"] + runs["skipped"] + runs["diverged"] + runs["failed"], \
    "disposition identity"
print("fuzz OK: seed %d, %d cases x %d runners = %d runs, %d ok, %d skipped"
      % (r["seed"], r["cases"], r["runners"], runs["total"], runs["ok"], runs["skipped"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_fuzz.py" "$tmp/fuzz.json"
else
  test -s "$tmp/fuzz.json"
  echo "fuzz report written (python3 unavailable, JSON not validated)"
fi

echo "== delta-stream fuzz smoke =="
# Fixed-seed delta-sequence campaign: random insert/retract streams
# maintained through the IVM must match a from-scratch recompute at every
# version.
dune exec bin/recstep_cli.exe -- fuzz --delta-stream --seed 42 --iters 20 \
  --deltas 6 --report "$tmp/dfuzz.json" >/dev/null

cat >"$tmp/validate_dfuzz.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["divergences"] == [], "delta-stream campaign diverged: %s" % r["divergences"]
assert r["versions"] >= (r["cases"] - r["invalid"]) * 6, "too few versions checked"
assert r["ops"] > r["versions"], "streams carried fewer ops than versions"
print("delta fuzz OK: seed %d, %d cases, %d versions, %d ops, 0 divergences"
      % (r["seed"], r["cases"], r["versions"], r["ops"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_dfuzz.py" "$tmp/dfuzz.json"
else
  test -s "$tmp/dfuzz.json"
  echo "delta fuzz report written (python3 unavailable, JSON not validated)"
fi

echo "== incremental maintenance smoke =="
# The demo workload carries a mid-run insert+retract delta. With
# maintenance on (default) the cached results must be refreshed in place;
# with --no-ivm they are invalidated and recomputed. The two runs must
# serve byte-identical results (checksums per query), proving the warm
# refresh path returns exactly what a recompute would.
dune exec bin/recstep_cli.exe -- serve programs/serve_demo.workload \
  --report "$tmp/serve_ivm.json" >/dev/null
dune exec bin/recstep_cli.exe -- serve programs/serve_demo.workload \
  --no-ivm --report "$tmp/serve_noivm.json" >/dev/null

cat >"$tmp/validate_ivm.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    warm = json.load(f)
with open(sys.argv[2]) as f:
    cold = json.load(f)
wc, cc = warm["counters"], cold["counters"]
assert wc["delta_applied"] > 0, "no delta was applied"
assert wc["refreshed"] > 0, "maintenance on but nothing was refreshed"
assert cc["refreshed"] == 0, "--no-ivm still refreshed entries"
assert wc["cache_hit"] > cc["cache_hit"], \
    "warm refresh did not save a recompute (hits %d vs %d)" % (wc["cache_hit"], cc["cache_hit"])
def sums(r):
    return {q["id"]: q.get("checksum") for q in r["queries"] if q["outcome"] == "done"}
ws, cs = sums(warm), sums(cold)
assert set(ws) == set(cs), "query sets differ between ivm and no-ivm runs"
diff = [q for q in ws if ws[q] != cs[q]]
assert not diff, "refreshed results differ from recompute for %s" % diff
print("ivm smoke OK: %d deltas applied, %d entries refreshed, "
      "%d queries byte-identical to recompute" % (wc["delta_applied"], wc["refreshed"], len(ws)))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_ivm.py" "$tmp/serve_ivm.json" "$tmp/serve_noivm.json"
else
  test -s "$tmp/serve_ivm.json" && test -s "$tmp/serve_noivm.json"
  echo "ivm reports written (python3 unavailable, JSON not validated)"
fi

# Incremental-vs-recompute benchmark: the maintained view must beat
# recompute-per-delta on the serving-shaped churn stream, with identical
# outputs at every version. BENCH_ivm.json lands in the working directory
# (tracked, like the other BENCH_*.json snapshots).
dune exec bench/main.exe -- --only ivm >/dev/null
BENCH_IVM="BENCH_ivm.json"

cat >"$tmp/validate_bench_ivm.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
assert b["identical"], "incremental outputs diverged from recompute"
assert b["ratio"] > 1.0, \
    "incremental maintenance not faster than recompute: ratio %.2f" % b["ratio"]
print("BENCH_ivm OK: %d deltas, recompute/incremental = %.1fx, outputs identical"
      % (b["deltas"], b["ratio"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_bench_ivm.py" "$BENCH_IVM"
else
  test -s "$BENCH_IVM"
  echo "BENCH_ivm.json written (python3 unavailable, JSON not validated)"
fi

echo "== CLI serve smoke =="
dune exec bin/recstep_cli.exe -- serve programs/serve_demo.workload \
  --report "$tmp/serve.json" >/dev/null

# the service report must carry the full counter set, the accounting
# identities must hold, and the demo's repeated queries must actually hit
cat >"$tmp/validate_serve.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
c = r["counters"]
need = {"submitted", "admitted", "rejected", "done", "oom", "timeout",
        "unsupported", "fault", "cache_hit", "cache_miss", "retried",
        "degraded", "deadline_miss"}
missing = need - set(c)
assert not missing, "missing counters: %s" % missing
assert c["submitted"] == c["admitted"] + c["rejected"], "submitted identity"
assert c["admitted"] == c["done"] + c["oom"] + c["timeout"] + c["unsupported"] \
    + c["fault"], "admitted identity"
assert c["cache_hit"] > 0, "demo workload produced no cache hits"
assert len(r["queries"]) == c["submitted"], "one disposition per submission"
print("serve OK: %d submitted, %d served, %d cache hits, p95=%.4fs"
      % (c["submitted"], c["done"], c["cache_hit"], r["latency"]["p95"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_serve.py" "$tmp/serve.json"
else
  test -s "$tmp/serve.json"
  echo "service report written (python3 unavailable, JSON not validated)"
fi

echo "== chaos smoke =="
# A fixed-seed chaos campaign: seeded fault plans (allocation failures,
# forced txn aborts, worker crashes and stalls, dedup/index build failures,
# cache corruption) composed with the fuzz generator through the full
# serving stack. Every faulted case must end correct or typed-rejected,
# with live bytes back at the pre-case baseline.
dune exec bin/recstep_cli.exe -- chaos --seed 42 --iters 50 \
  --report "$tmp/chaos.json" >/dev/null

cat >"$tmp/validate_chaos.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["clean"], "chaos campaign not clean: %s" % r["violations"]
assert r["violations"] == [], "chaos campaign has violations"
assert r["leaks"] == 0, "chaos campaign leaked live bytes"
assert r["fault_classes"] >= 5, \
    "too few fault classes exercised: %d" % r["fault_classes"]
assert r["recovered"] > 0, "no faulted case recovered to a correct answer"
assert r["rejected_typed"] > 0, "no case ended in a typed rejection"
print("chaos OK: seed %d, %d cases, %d fault classes (%s), "
      "%d recovered, %d typed rejections"
      % (r["seed"], r["cases"], r["fault_classes"],
         ",".join(sorted(r["injected"])), r["recovered"], r["rejected_typed"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_chaos.py" "$tmp/chaos.json"
else
  test -s "$tmp/chaos.json"
  echo "chaos report written (python3 unavailable, JSON not validated)"
fi

# Self-test: a plan that silently corrupts dedup MUST trip the oracle and
# exit non-zero — a harness that stays green under seeded silent corruption
# proves nothing.
if dune exec bin/recstep_cli.exe -- chaos --seed 7 --iters 5 \
  --plan "dedup_drop:p=0.5" --report "$tmp/chaos_trip.json" >/dev/null 2>&1; then
  echo "chaos self-test FAILED: seeded silent corruption was not detected"
  exit 1
fi
echo "chaos self-test OK: seeded silent corruption detected and reported"

echo "== load model smoke =="
# Fixed-seed production-shaped load: a 20k-tenant Zipf population, bursty
# open-loop arrivals, EDB churn, autoscaler on. The SLO report must be
# well-formed (three classes, ordered quantiles, population accounting that
# adds up to the submitted queries) and the autoscaler must actually move.
dune exec bin/recstep_cli.exe -- load --tenants 20000 --queries 120 --seed 42 \
  --duration 0.5 --deltas 2 --report "$tmp/slo.json" >/dev/null

cat >"$tmp/validate_load.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
classes = r["classes"]
assert [c["class"] for c in classes] == ["gold", "silver", "bronze"], "class order"
total = 0
for c in classes:
    lat = c["latency"]
    assert lat["count"] == c["served"], \
        "%s: histogram holds %d of %d served" % (c["class"], lat["count"], c["served"])
    if lat["count"] == 0:
        # zero-sample class: no quantiles may be fabricated
        assert set(lat) == {"count"}, \
            "%s: empty class reports quantiles: %s" % (c["class"], sorted(lat))
    else:
        qs = [lat["p50"], lat["p95"], lat["p99"], lat["p999"]]
        assert qs == sorted(qs), "%s: quantiles not monotone: %s" % (c["class"], qs)
        assert lat["min"] <= lat["p50"] and lat["p999"] <= lat["max"], \
            "%s: quantiles escape [min, max]" % c["class"]
    assert 0.0 <= c["attainment"] <= 1.0, "%s: attainment out of range" % c["class"]
    assert c["degraded"] <= c["served"], "%s: degraded exceeds served" % c["class"]
    total += c["served"] + c["failed"] + c["rejected"]
assert total == r["spec"]["queries"], \
    "class accounting (%d) does not cover the %d submitted queries" % (total, r["spec"]["queries"])
a = r["autoscale"]
assert a["evals"] > 0, "autoscaler never evaluated a window"
assert a["up"] + a["down"] > 0, "autoscaler never resized under burst load"
assert r["tenants_used"] > 0 and r["top_tenants"], "no tenant accounting"
print("load smoke OK: %d tenants drawn, %d queries accounted, autoscale evals=%d up=%d down=%d"
      % (r["tenants_used"], total, a["evals"], a["up"], a["down"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_load.py" "$tmp/slo.json"
else
  test -s "$tmp/slo.json"
  echo "SLO report written (python3 unavailable, JSON not validated)"
fi

# Autoscaler A/B benchmark: same generated load against a fixed-size
# service and an autoscaled one. Served outputs must be byte-identical
# (the scaler may only move latency, never answers), the scaled arm must
# win the tail, and BENCH_service.json lands in the working directory
# (tracked, like the other BENCH_*.json snapshots).
dune exec bench/main.exe -- --only load >/dev/null
cat >"$tmp/validate_bench_load.py" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    b = json.load(f)
assert b["identical_outputs"], "autoscaler changed served results"
arms = {a["autoscale"]: a for a in b["arms"]}
assert set(arms) == {True, False}, "expected exactly an on and an off arm"
on, off = arms[True], arms[False]
assert on["slo"]["autoscale"]["up"] > 0, "autoscaler never scaled up"
assert off["slo"]["autoscale"]["evals"] == 0, "fixed arm ran the scaler"
gold = {c["class"]: c for c in on["slo"]["classes"]}["gold"]
gold_off = {c["class"]: c for c in off["slo"]["classes"]}["gold"]
assert gold["latency"]["p95"] < gold_off["latency"]["p95"], \
    "autoscaled gold p95 (%.4f) did not beat fixed (%.4f)" \
    % (gold["latency"]["p95"], gold_off["latency"]["p95"])
assert on["slo"]["makespan_s"] <= off["slo"]["makespan_s"], "autoscaling lost makespan"
print("BENCH_service OK: outputs identical, gold p95 %.4fs -> %.4fs, makespan %.3fs -> %.3fs"
      % (gold_off["latency"]["p95"], gold["latency"]["p95"],
         off["slo"]["makespan_s"], on["slo"]["makespan_s"]))
EOF
if command -v python3 >/dev/null 2>&1; then
  python3 "$tmp/validate_bench_load.py" BENCH_service.json
else
  test -s BENCH_service.json
  echo "BENCH_service.json written (python3 unavailable, JSON not validated)"
fi

echo "== check passed =="
