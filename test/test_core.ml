module Ast = Recstep.Ast
module Lexer = Recstep.Lexer
module Parser = Recstep.Parser
module Analyzer = Recstep.Analyzer
module Planner = Recstep.Planner
module Pattern = Recstep.Pattern
module Interpreter = Recstep.Interpreter
module Frontend = Recstep.Frontend
module Programs = Recstep.Programs

let check = Alcotest.(check bool)

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "tc(x, 12) :- arc(x, _), x != 3. % c\n.output tc") in
  Alcotest.(check int) "token count" 21 (List.length toks);
  check "implies" true (List.mem Lexer.IMPLIES toks);
  check "directive" true (List.mem (Lexer.DIRECTIVE "output") toks);
  check "wildcard" true (List.mem Lexer.UNDERSCORE toks);
  check "ne" true (List.mem Lexer.NE toks)

let test_lexer_comments_lines () =
  let toks = Lexer.tokenize "// x\n# y\n% z\nfoo(a)." in
  (match toks with
  | (Lexer.IDENT "foo", line) :: _ -> Alcotest.(check int) "line number" 4 line
  | _ -> Alcotest.fail "expected ident");
  Alcotest.check_raises "bad char" (Lexer.Error { line = 1; message = "unexpected character '@'" })
    (fun () -> ignore (Lexer.tokenize "@"))

(* --- parser --- *)

let test_parser_all_programs () =
  List.iter
    (fun (name, src) ->
      let p = Parser.parse src in
      check (name ^ " has rules") true (List.length p.Ast.rules > 0);
      check (name ^ " has outputs") true (p.Ast.outputs <> []))
    Programs.all

let test_parser_roundtrip () =
  List.iter
    (fun (_, src) ->
      let p = Parser.parse src in
      let printed = Ast.program_to_string p in
      let p2 = Parser.parse printed in
      check "rules stable under print+parse" true (p.Ast.rules = p2.Ast.rules))
    Programs.all

let test_parser_features () =
  let r = Parser.parse_rule "h(x, MIN(d1 + d2 * 2)) :- e(x, d1, d2), d1 < d2, !bad(x)." in
  Alcotest.(check int) "body size" 3 (List.length r.Ast.body);
  check "agg head" true (Ast.is_aggregate_rule r);
  let fact = Parser.parse_rule "p(1, -2)." in
  check "fact" true (fact.Ast.body = []);
  Alcotest.check_raises "unclosed" (Parser.Error { line = 1; message = "expected ',' or ')', found ." })
    (fun () -> ignore (Parser.parse "p(x."))

(* --- analyzer --- *)

let test_analyzer_tc () =
  let an = Analyzer.analyze (Parser.parse Programs.tc) in
  Alcotest.(check (list string)) "edbs" [ "arc" ] an.Analyzer.edbs;
  Alcotest.(check (list string)) "idbs" [ "tc" ] an.Analyzer.idbs;
  Alcotest.(check int) "one stratum" 1 (List.length an.Analyzer.strata);
  check "recursive" true (List.hd an.Analyzer.strata).Analyzer.recursive;
  Alcotest.(check int) "arity" 2 (Analyzer.arity an "tc")

let test_analyzer_cspa_mutual () =
  let an = Analyzer.analyze (Parser.parse Programs.cspa) in
  let big = List.find (fun s -> List.length s.Analyzer.preds > 1) an.Analyzer.strata in
  Alcotest.(check (list string)) "mutual SCC"
    [ "memoryAlias"; "valueAlias"; "valueFlow" ]
    (List.sort compare big.Analyzer.preds)

let test_analyzer_ntc_strata_order () =
  let an = Analyzer.analyze (Parser.parse Programs.ntc) in
  let idx p = Analyzer.stratum_of an p in
  check "tc before ntc" true (idx "tc" < idx "ntc");
  check "node before ntc" true (idx "node" < idx "ntc")

let expect_analysis_error src =
  match Analyzer.analyze (Parser.parse src) with
  | exception Analyzer.Analysis_error _ -> ()
  | _ -> Alcotest.fail ("expected Analysis_error for: " ^ src)

let test_analyzer_rejections () =
  expect_analysis_error "p(x, y) :- q(x).  p(x) :- q(x)." (* arity mismatch *);
  expect_analysis_error "p(x, y) :- q(x)." (* unsafe head var *);
  expect_analysis_error "p(x) :- q(x), !r(y)." (* unsafe negated var *);
  expect_analysis_error "p(x) :- q(x), x < y." (* unsafe comparison var *);
  expect_analysis_error "p(x) :- q(x), !p(x)." (* negation in own stratum *);
  expect_analysis_error "p(x) :- !q(x), r(x).  q(x) :- !p(x), r(x)." (* neg cycle *);
  expect_analysis_error "p(x, SUM(y)) :- p(x, y), e(x, y)." (* SUM in recursion *);
  expect_analysis_error "p(x, COUNT(y)) :- e(x, y).  p(x, y) :- e(x, y)." (* mixed agg/plain *);
  expect_analysis_error ".input p 2\np(x, x) :- q(x)." (* input with idb name *);
  expect_analysis_error "p(_) :- q(x)." (* wildcard in head *)

let test_analyzer_agg_sig () =
  let an = Analyzer.analyze (Parser.parse Programs.cc) in
  (match Analyzer.agg_sig an "cc3" with
  | Some s ->
      Alcotest.(check (list int)) "group" [ 0 ] s.Analyzer.group_positions;
      check "agg at 1" true (s.Analyzer.agg_positions = [ (1, Ast.Min) ])
  | None -> Alcotest.fail "cc3 must be aggregate");
  check "cc not aggregate" true (Analyzer.agg_sig an "cc" = None)

(* --- planner --- *)

let test_planner_delta_variants () =
  let program = Parser.parse Programs.andersen in
  let an = Analyzer.analyze program in
  let stratum = List.find (fun s -> s.Analyzer.recursive) an.Analyzer.strata in
  let rules = List.filter (fun r -> r.Ast.head_pred = "pointsTo") stratum.Analyzer.rules in
  let deltas r =
    match Planner.compile_rule an stratum r with
    | Planner.Query { deltas; _ } -> List.length deltas
    | Planner.Fact _ -> -1
  in
  (* addressOf rule: 0 recursive atoms; assign rule: 1; load/store rules: 2 *)
  Alcotest.(check (list int)) "delta plan counts" [ 0; 1; 2; 2 ] (List.map deltas rules)

let test_planner_fact () =
  let program = Parser.parse "p(1, 2).\np(x, y) :- p(x, y)." in
  let an = Analyzer.analyze program in
  let stratum = List.hd an.Analyzer.strata in
  match Planner.compile_rule an stratum (List.hd stratum.Analyzer.rules) with
  | Planner.Fact t -> Alcotest.(check (array int)) "fact tuple" [| 1; 2 |] t
  | Planner.Query _ -> Alcotest.fail "expected fact"

(* --- pattern --- *)

let stratum_of_program src =
  let an = Analyzer.analyze (Parser.parse src) in
  (an, List.find (fun s -> s.Analyzer.recursive) an.Analyzer.strata)

let test_pattern_tc () =
  let an, s = stratum_of_program Programs.tc in
  (match Pattern.match_stratum an s with
  | Some (Pattern.Tc { idb; edb }) ->
      Alcotest.(check string) "idb" "tc" idb;
      Alcotest.(check string) "edb" "arc" edb
  | _ -> Alcotest.fail "TC shape not matched");
  (* left-linear variant and renamed variables *)
  let an2, s2 =
    stratum_of_program ".input e\nclosure(a, b) :- e(a, b).\nclosure(a, b) :- e(a, m), closure(m, b)."
  in
  check "left-linear matched" true (Pattern.match_stratum an2 s2 <> None)

let test_pattern_sg () =
  let an, s = stratum_of_program Programs.sg in
  (match Pattern.match_stratum an s with
  | Some (Pattern.Sg { idb; edb }) ->
      Alcotest.(check string) "idb" "sg" idb;
      Alcotest.(check string) "edb" "arc" edb
  | _ -> Alcotest.fail "SG shape not matched")

let test_pattern_rejects () =
  let an, s = stratum_of_program Programs.reach in
  check "reach not TC-shaped" true (Pattern.match_stratum an s = None);
  let an2, s2 =
    stratum_of_program ".input e\nt(x, y) :- e(x, y).\nt(x, y) :- t(x, z), t(z, y)."
  in
  check "nonlinear TC not matched" true (Pattern.match_stratum an2 s2 = None)

(* --- frontend fact loading: typed errors with positions --- *)

let test_frontend_parse_error () =
  let write lines =
    let path = Filename.temp_file "facts" ".tsv" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let load ~arity path = ignore (Frontend.load_tsv ~name:"arc" ~arity path) in
  let bad = write [ "1\t2"; "1\tfoo" ] in
  (match load ~arity:2 bad with
  | () -> Alcotest.fail "expected Parse_error"
  | exception Frontend.Parse_error { path; line; msg } ->
      check "path is reported" true (path = bad);
      Alcotest.(check int) "line is reported" 2 line;
      check "message names the field" true (msg = "not an integer: \"foo\""));
  Sys.remove bad;
  let short = write [ "1\t2\t3"; "4\t5" ] in
  (match load ~arity:3 short with
  | () -> Alcotest.fail "expected Parse_error"
  | exception Frontend.Parse_error { line = 2; msg; _ } ->
      check "arity mismatch named" true (msg = "expected 3 fields, got 2"));
  Sys.remove short

(* --- interpreter: correctness against references --- *)

let run_program ?options src edb = fst (Frontend.run_text ?options ~edb src)

let no_pbme = { Interpreter.default_options with pbme = false }

let gen_graph = Refs.arbitrary_edges ~max_nodes:10 ~max_edges:25 ()

let prop_tc_matches_reference =
  QCheck2.Test.make ~name:"TC = reference closure (both paths)" ~count:60 gen_graph
    (fun edges ->
      let expected =
        Refs.IntPairSet.elements (Refs.transitive_closure edges) |> List.sort compare
      in
      let got options =
        let r = run_program ~options Programs.tc [ ("arc", Refs.relation_of_edges edges) ] in
        Refs.sorted_pairs (Frontend.result_rows r "tc")
      in
      got Interpreter.default_options = expected && got no_pbme = expected)

let prop_sg_matches_reference =
  QCheck2.Test.make ~name:"SG = reference (both paths)" ~count:40 gen_graph (fun edges ->
      let expected = Refs.IntPairSet.elements (Refs.same_generation edges) |> List.sort compare in
      let got options =
        let r = run_program ~options Programs.sg [ ("arc", Refs.relation_of_edges edges) ] in
        Refs.sorted_pairs (Frontend.result_rows r "sg")
      in
      got Interpreter.default_options = expected && got no_pbme = expected)

let prop_reach_matches_bfs =
  QCheck2.Test.make ~name:"REACH = BFS" ~count:60
    QCheck2.Gen.(pair gen_graph (int_range 0 9))
    (fun (edges, src) ->
      let expected = Refs.IntSet.elements (Refs.reachable edges [ src ]) |> List.sort compare in
      let id = Frontend.relation_of_list ~name:"id" 1 [ [| src |] ] in
      let r = run_program Programs.reach [ ("arc", Refs.relation_of_edges edges); ("id", id) ] in
      List.sort compare (List.map (fun a -> a.(0)) (Frontend.result_rows r "reach")) = expected)

let prop_cc_matches_reference =
  QCheck2.Test.make ~name:"CC = min-label propagation" ~count:60 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      let expected = Refs.cc_min_label edges in
      let r = run_program Programs.cc [ ("arc", Refs.relation_of_edges edges) ] in
      Refs.sorted_pairs (Frontend.result_rows r "cc3") = expected)

let prop_sssp_matches_dijkstra =
  QCheck2.Test.make ~name:"SSSP = Bellman-Ford reference" ~count:60
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 20) (tup3 (int_range 0 8) (int_range 0 8) (int_range 1 9)))
        (int_range 0 8))
    (fun (wedges, src) ->
      let arc = Rs_relation.Relation.create ~name:"arc" 3 in
      List.iter (fun (x, y, d) -> Rs_relation.Relation.push3 arc x y d) wedges;
      let id = Frontend.relation_of_list ~name:"id" 1 [ [| src |] ] in
      let r = run_program Programs.sssp [ ("arc", arc); ("id", id) ] in
      let got = List.sort compare (List.map (fun a -> (a.(0), a.(1))) (Frontend.result_rows r "sssp")) in
      got = Refs.dijkstra wedges src)

let prop_ntc_is_complement =
  QCheck2.Test.make ~name:"NTC = nodes^2 - TC" ~count:40 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      let nodes =
        List.concat_map (fun (x, y) -> [ x; y ]) edges |> List.sort_uniq compare
      in
      let tc = Refs.transitive_closure edges in
      let expected =
        List.concat_map (fun x -> List.map (fun y -> (x, y)) nodes) nodes
        |> List.filter (fun p -> not (Refs.IntPairSet.mem p tc))
        |> List.sort compare
      in
      let r = run_program Programs.ntc [ ("arc", Refs.relation_of_edges edges) ] in
      Refs.sorted_pairs (Frontend.result_rows r "ntc") = expected)

let prop_gtc_counts =
  QCheck2.Test.make ~name:"gtc counts reachable vertices" ~count:40 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      let tc = Refs.transitive_closure edges in
      let expected =
        Refs.IntPairSet.fold
          (fun (x, _) acc ->
            let n = Refs.IntPairSet.cardinal (Refs.IntPairSet.filter (fun (a, _) -> a = x) tc) in
            (x, n) :: List.remove_assoc x acc)
          tc []
        |> List.sort compare
      in
      let r = run_program Programs.gtc [ ("arc", Refs.relation_of_edges edges) ] in
      Refs.sorted_pairs (Frontend.result_rows r "gtc") = expected)

(* every single-optimization-off configuration computes the same answer *)
let prop_options_preserve_semantics =
  QCheck2.Test.make ~name:"ablation configs agree (CSPA)" ~count:15 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      let deref = List.filteri (fun i _ -> i mod 3 = 0) edges in
      let run options =
        let r =
          run_program ~options Programs.cspa
            [
              ("assign", Refs.relation_of_edges edges);
              ("dereference", Refs.relation_of_edges ~name:"dereference" deref);
            ]
        in
        ( Refs.sorted_pairs (Frontend.result_rows r "valueFlow"),
          Refs.sorted_pairs (Frontend.result_rows r "memoryAlias") )
      in
      let base = run Interpreter.default_options in
      List.for_all
        (fun options -> run options = base)
        [
          { Interpreter.default_options with uie = false };
          { Interpreter.default_options with oof = Interpreter.Oof_off };
          { Interpreter.default_options with oof = Interpreter.Oof_full };
          { Interpreter.default_options with dsd = Interpreter.Dsd_force_opsd };
          { Interpreter.default_options with dsd = Interpreter.Dsd_force_tpsd };
          { Interpreter.default_options with eost = false };
          { Interpreter.default_options with fast_dedup = false };
          { Interpreter.default_options with hoard_memory = true };
        ])

let test_interpreter_timeout () =
  let arc = Rs_datagen.Graphs.gnp ~seed:1 ~n:300 ~p:0.05 in
  let options = { no_pbme with timeout_vs = Some 1e-6 } in
  match Frontend.run_text ~options ~edb:[ ("arc", arc) ] Programs.tc with
  | exception Interpreter.Timeout_simulated _ -> ()
  | _ -> Alcotest.fail "expected simulated timeout"

let test_interpreter_oom () =
  let arc = Rs_datagen.Graphs.gnp ~seed:1 ~n:300 ~p:0.05 in
  Rs_storage.Memtrack.hard_reset ();
  Rs_storage.Memtrack.set_budget (Some 50_000);
  let result =
    Fun.protect
      ~finally:(fun () ->
        Rs_storage.Memtrack.set_budget None;
        Rs_storage.Memtrack.hard_reset ())
      (fun () ->
        match Frontend.run_text ~options:no_pbme ~edb:[ ("arc", arc) ] Programs.tc with
        | exception Rs_storage.Memtrack.Simulated_oom _ -> true
        | _ -> false)
  in
  check "expected OOM" true result

let test_interpreter_missing_input () =
  match Frontend.run_text ~edb:[] Programs.tc with
  | exception Analyzer.Analysis_error _ -> ()
  | _ -> Alcotest.fail "expected missing-input error"

let test_interpreter_facts_and_negation () =
  let r =
    run_program
      ".input e\nstart(3).\nreach(x) :- start(x).\nreach(y) :- reach(x), e(x, y).\nmiss(x) :- node(x), !reach(x).\nnode(x) :- e(x, _).\nnode(y) :- e(_, y).\n.output miss"
      [ ("e", Frontend.edges ~name:"e" [ (1, 2); (3, 4) ]) ]
  in
  Alcotest.(check (list int)) "negated complement" [ 1; 2 ]
    (List.sort compare (List.map (fun a -> a.(0)) (Frontend.result_rows r "miss")))

let test_interpreter_stats () =
  let r, _ = Frontend.run_text ~edb:[ ("arc", Frontend.edges [ (0, 1); (1, 2) ]) ] Programs.tc in
  check "pbme used" true (r.Interpreter.pbme_strata = 1);
  check "iterations counted" true (r.Interpreter.iterations >= 1);
  let r2 =
    run_program ~options:no_pbme Programs.tc [ ("arc", Frontend.edges [ (0, 1); (1, 2) ]) ]
  in
  check "queries issued" true (r2.Interpreter.queries > 0);
  check "dsd recorded" true (r2.Interpreter.dsd_choices <> [])

let test_eost_io_accounting () =
  (* needs enough iterations that per-query write-back visibly re-writes
     table pages the single EOST commit writes once *)
  let arc () = Rs_datagen.Graphs.gnp ~seed:4 ~n:60 ~p:0.1 in
  let io eost =
    let options = { no_pbme with eost } in
    let r = run_program ~options Programs.tc [ ("arc", arc ()) ] in
    r.Interpreter.io_bytes
  in
  check "per-query writes more than EOST" true (io false > io true)

(* --- lexer/parser edge cases --------------------------------------------- *)

let test_lexer_comment_at_eof () =
  (* a line comment terminated by end-of-input, not a newline *)
  List.iter
    (fun src ->
      let p = Parser.parse src in
      Alcotest.(check int) "one rule" 1 (List.length p.Ast.rules))
    [ "p(1). % trailing"; "p(1). // trailing"; "p(1). # trailing"; "p(1). %" ]

let test_parser_negative_constants () =
  let r = Parser.parse_rule "p(-3, x) :- e(x, -1), x > -2." in
  (match r.Ast.head_args with
  | [ Ast.H_term (Ast.Const -3); _ ] -> ()
  | _ -> Alcotest.fail "head constant should parse as -3");
  check "negative in body atom" true
    (List.exists
       (function Ast.L_pos a -> List.mem (Ast.Const (-1)) a.Ast.args | _ -> false)
       r.Ast.body);
  check "negative in comparison" true
    (List.exists
       (function Ast.L_cmp (Ast.Gt, _, Ast.T (Ast.Const -2)) -> true | _ -> false)
       r.Ast.body);
  (* negative values survive a full evaluation round-trip *)
  let edb = [ ("e", Rs_relation.Relation.of_rows ~name:"e" 2 [ [| -5; 2 |]; [| 1; 3 |] ]) ] in
  let result, _ = Frontend.run_text ~edb ".input e\nq(x, y) :- e(x, y), x < 0.\n.output q" in
  check "negative tuple kept" true
    (List.map Array.to_list
       (Rs_relation.Relation.sorted_distinct_rows (result.Interpreter.relation_of "q"))
    = [ [ -5; 2 ] ])

let test_parser_duplicate_rules () =
  (* duplicate identical rules are legal and idempotent *)
  let src = ".input e\np(x, y) :- e(x, y).\np(x, y) :- e(x, y).\n.output p" in
  let p = Parser.parse src in
  Alcotest.(check int) "both rules kept" 2 (List.length p.Ast.rules);
  check "rules identical" true (List.nth p.Ast.rules 0 = List.nth p.Ast.rules 1);
  let edb = [ ("e", Rs_relation.Relation.of_rows ~name:"e" 2 [ [| 1; 2 |] ]) ] in
  let result, _ = Frontend.run_text ~edb src in
  Alcotest.(check int) "no duplicate output tuples" 1
    (Rs_relation.Relation.nrows (result.Interpreter.relation_of "p"))

let test_parser_crlf_line_numbers () =
  (* CRLF input must lex cleanly and report errors with the right line *)
  let ok = Parser.parse ".input e\r\np(x, y) :- e(x, y).\r\n.output p\r\n" in
  Alcotest.(check int) "crlf parses" 1 (List.length ok.Ast.rules);
  check "crlf error line" true
    (match Parser.parse "p(1).\r\nq(x" with
    | exception Parser.Error { line = 2; _ } -> true
    | exception Lexer.Error { line = 2; _ } -> true
    | _ -> false);
  check "crlf lexer error line" true
    (match Lexer.tokenize "% c\r\n\r\n@" with
    | exception Lexer.Error { line = 3; _ } -> true
    | _ -> false)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_tc_matches_reference;
      prop_sg_matches_reference;
      prop_reach_matches_bfs;
      prop_cc_matches_reference;
      prop_sssp_matches_dijkstra;
      prop_ntc_is_complement;
      prop_gtc_counts;
      prop_options_preserve_semantics;
    ]

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer comments/lines" `Quick test_lexer_comments_lines;
    Alcotest.test_case "parser accepts all programs" `Quick test_parser_all_programs;
    Alcotest.test_case "parser print round-trip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser features" `Quick test_parser_features;
    Alcotest.test_case "analyzer TC" `Quick test_analyzer_tc;
    Alcotest.test_case "analyzer CSPA mutual recursion" `Quick test_analyzer_cspa_mutual;
    Alcotest.test_case "analyzer NTC strata order" `Quick test_analyzer_ntc_strata_order;
    Alcotest.test_case "analyzer rejections" `Quick test_analyzer_rejections;
    Alcotest.test_case "analyzer aggregate signatures" `Quick test_analyzer_agg_sig;
    Alcotest.test_case "planner delta variants" `Quick test_planner_delta_variants;
    Alcotest.test_case "planner facts" `Quick test_planner_fact;
    Alcotest.test_case "frontend parse errors are typed" `Quick test_frontend_parse_error;
    Alcotest.test_case "pattern TC" `Quick test_pattern_tc;
    Alcotest.test_case "pattern SG" `Quick test_pattern_sg;
    Alcotest.test_case "pattern rejections" `Quick test_pattern_rejects;
    Alcotest.test_case "interpreter timeout" `Quick test_interpreter_timeout;
    Alcotest.test_case "interpreter OOM" `Quick test_interpreter_oom;
    Alcotest.test_case "interpreter missing input" `Quick test_interpreter_missing_input;
    Alcotest.test_case "facts + negation" `Quick test_interpreter_facts_and_negation;
    Alcotest.test_case "interpreter stats" `Quick test_interpreter_stats;
    Alcotest.test_case "EOST io accounting" `Quick test_eost_io_accounting;
    Alcotest.test_case "lexer comment at EOF" `Quick test_lexer_comment_at_eof;
    Alcotest.test_case "parser negative constants" `Quick test_parser_negative_constants;
    Alcotest.test_case "parser duplicate rules" `Quick test_parser_duplicate_rules;
    Alcotest.test_case "parser CRLF line numbers" `Quick test_parser_crlf_line_numbers;
  ]
  @ qsuite
