module Engines = Rs_engines.Engines
module Engine_intf = Rs_engines.Engine_intf
module Inc_index = Rs_engines.Inc_index
module Relation = Rs_relation.Relation
module Pool = Rs_parallel.Pool
module Programs = Recstep.Programs

let check = Alcotest.(check bool)

let pool () =
  let p = Pool.create ~workers:4 () in
  Pool.begin_run p;
  p

let run_engine engine src edb outs =
  let program = Recstep.Parser.parse src in
  let edb = List.map (fun (n, r) -> (n, Relation.copy r)) edb in
  Engine_intf.outcome_map
    (fun result ->
      List.map
        (fun o ->
          (o, Relation.sorted_distinct_rows (result.Engine_intf.relation_of o)))
        outs)
    (Engine_intf.run_guarded engine ~pool:(pool ()) ~edb program)

let agree ?(engines = Engines.all) src edb outs =
  let results =
    List.filter_map
      (fun ((module E : Engine_intf.S) as engine) ->
        match run_engine engine src edb outs with
        | Engine_intf.Done r -> Some (E.name, r)
        | Engine_intf.Unsupported _ -> None
        | Engine_intf.Oom -> Alcotest.fail (E.name ^ " hit the simulated memory budget")
        | Engine_intf.Timeout -> Alcotest.fail (E.name ^ " hit the simulated deadline")
        | Engine_intf.Fault { cls; point } ->
            Alcotest.fail
              (Printf.sprintf "%s: injected fault %s at %s" E.name
                 (Rs_chaos.Fault.cls_name cls) point))
      engines
  in
  match results with
  | [] -> Alcotest.fail "no engine ran the program"
  | (_, first) :: rest ->
      List.iter
        (fun (name, r) ->
          if r <> first then Alcotest.fail (Printf.sprintf "engine %s disagrees" name))
        rest;
      List.length results

(* --- cross-engine agreement on random instances --- *)

let gen_graph = Refs.arbitrary_edges ~max_nodes:9 ~max_edges:20 ()

let prop_engines_agree_tc =
  QCheck2.Test.make ~name:"all engines agree on TC" ~count:25 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      agree Programs.tc [ ("arc", Refs.relation_of_edges edges) ] [ "tc" ] = 7)

let prop_engines_agree_sg =
  QCheck2.Test.make ~name:"all engines agree on SG" ~count:20 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      (* Graspan cannot express SG's != literal: 6 engines run *)
      agree Programs.sg [ ("arc", Refs.relation_of_edges edges) ] [ "sg" ] = 6)

let prop_engines_agree_andersen =
  QCheck2.Test.make ~name:"engines agree on Andersen" ~count:15
    QCheck2.Gen.(tup4 gen_graph gen_graph gen_graph gen_graph)
    (fun (a, b, c, d) ->
      QCheck2.assume (a <> [] || b <> []);
      let edb =
        [
          ("addressOf", Refs.relation_of_edges ~name:"addressOf" a);
          ("assign", Refs.relation_of_edges ~name:"assign" b);
          ("load", Refs.relation_of_edges ~name:"load" c);
          ("store", Refs.relation_of_edges ~name:"store" d);
        ]
      in
      (* graspan (3-chain with shared var patterns unsupported) and bddbddb
         may or may not run; at least recstep+souffle+bigdatalog agree *)
      agree
        ~engines:
          [
            Engines.recstep;
            Engines.sharded_recstep;
            Engines.souffle_like;
            Engines.bigdatalog_like;
            Engines.bddbddb_like;
          ]
        Programs.andersen edb [ "pointsTo" ]
      = 5)

let prop_engines_agree_cspa =
  QCheck2.Test.make ~name:"engines agree on CSPA" ~count:15
    QCheck2.Gen.(pair gen_graph gen_graph)
    (fun (assign, deref) ->
      QCheck2.assume (assign <> []);
      let edb =
        [
          ("assign", Refs.relation_of_edges ~name:"assign" assign);
          ("dereference", Refs.relation_of_edges ~name:"dereference" deref);
        ]
      in
      (* both BigDatalog configurations reject mutual recursion: 5 of 7 run *)
      agree Programs.cspa edb [ "valueFlow"; "memoryAlias"; "valueAlias" ] = 5)

let prop_engines_agree_csda =
  QCheck2.Test.make ~name:"engines agree on CSDA" ~count:20
    QCheck2.Gen.(pair gen_graph gen_graph)
    (fun (null_e, arc) ->
      QCheck2.assume (null_e <> []);
      let edb =
        [
          ("nullEdge", Refs.relation_of_edges ~name:"nullEdge" null_e);
          ("arc", Refs.relation_of_edges arc);
        ]
      in
      agree Programs.csda edb [ "null" ] = 7)

let even_odd =
  {|
.input next
even(0).
odd(y) :- even(x), next(x, y).
even(y) :- odd(x), next(x, y).
.output even
|}

let prop_engines_agree_even_odd =
  QCheck2.Test.make ~name:"engines agree on mutual even/odd" ~count:20 gen_graph
    (fun edges ->
      QCheck2.assume (edges <> []);
      (* graspan rejects (unary head), both bigdatalogs reject (mutual): 4 run *)
      agree
        ~engines:
          [
            Engines.recstep;
            Engines.sharded_recstep;
            Engines.souffle_like;
            Engines.bddbddb_like;
          ]
        even_odd
        [ ("next", Refs.relation_of_edges ~name:"next" edges) ]
        [ "even"; "odd" ]
      = 4)

(* --- capability gating (Table 1) --- *)

let expect_unsupported ((module E : Engine_intf.S) as engine) src edb =
  match run_engine engine src edb [] with
  | Engine_intf.Unsupported _ -> ()
  | _ -> Alcotest.fail (E.name ^ " should have rejected the program")

let some_edges = Refs.relation_of_edges [ (0, 1); (1, 2) ]

let arc3 () =
  Recstep.Frontend.relation_of_list ~name:"arc" 3 [ [| 0; 1; 5 |]; [| 1; 2; 3 |] ]

let id0 () = Recstep.Frontend.relation_of_list ~name:"id" 1 [ [| 0 |] ]

let suite_gating () =
  expect_unsupported Engines.bigdatalog_like Programs.cspa
    [ ("assign", some_edges); ("dereference", Refs.relation_of_edges ~name:"dereference" []) ];
  expect_unsupported Engines.souffle_like Programs.cc [ ("arc", some_edges) ];
  expect_unsupported Engines.sharded_recstep Programs.cc [ ("arc", some_edges) ];
  expect_unsupported Engines.sharded_recstep Programs.sssp
    [ ("arc", arc3 ()); ("id", id0 ()) ];
  expect_unsupported Engines.souffle_like Programs.sssp
    [ ("arc", arc3 ()); ("id", id0 ()) ];
  expect_unsupported Engines.graspan_like Programs.cc [ ("arc", some_edges) ];
  expect_unsupported Engines.graspan_like Programs.reach
    [ ("arc", some_edges); ("id", id0 ()) ];
  expect_unsupported Engines.bddbddb_like Programs.cc [ ("arc", some_edges) ];
  expect_unsupported Engines.bddbddb_like Programs.ntc [ ("arc", some_edges) ];
  expect_unsupported Engines.bddbddb_like Programs.sssp
    [ ("arc", arc3 ()); ("id", id0 ()) ]

let capability_rows () =
  (* Table 1 invariants *)
  let cap (module E : Engine_intf.S) = E.capabilities in
  check "recstep recursive agg" true (cap Engines.recstep).Engine_intf.recursive_aggregation;
  check "souffle no recursive agg" false (cap Engines.souffle_like).Engine_intf.recursive_aggregation;
  check "bigdatalog no mutual recursion" false (cap Engines.bigdatalog_like).Engine_intf.mutual_recursion;
  check "graspan no aggregation" false (cap Engines.graspan_like).Engine_intf.nonrecursive_aggregation;
  check "bddbddb single-thread" false (cap Engines.bddbddb_like).Engine_intf.scale_up;
  check "only recstep maintains incrementally" true
    (List.for_all
       (fun ((module E : Engine_intf.S) as e) ->
         E.capabilities.Engine_intf.incremental = (e == Engines.recstep))
       Engines.all)

(* --- incremental maintenance: every engine's maintain handle must track
   the same delta sequence to the same outputs and emit the same net output
   deltas, whether it maintains incrementally or by recompute-and-diff --- *)

module Delta = Rs_relation.Delta

let delta_signature d =
  List.map
    (fun rel ->
      ( rel,
        List.sort compare
          (List.map
             (fun (o : Delta.op) -> (o.Delta.sign, Array.to_list o.Delta.row))
             (Delta.ops d rel)) ))
    (List.sort compare (Delta.rels d))

let test_maintain_agree () =
  let program = Recstep.Parser.parse Programs.tc in
  let edb () =
    [ ("arc", Refs.relation_of_edges [ (0, 1); (1, 2); (2, 3) ]) ]
  in
  let steps =
    [
      Delta.of_inserts "arc" [ [| 3; 4 |] ];
      Delta.merge
        (Delta.of_retracts "arc" [ [| 1; 2 |] ])
        (Delta.of_inserts "arc" [ [| 4; 0 |] ]);
      Delta.of_retracts "arc" [ [| 9; 9 |] ] (* never inserted: no-op *);
    ]
  in
  let trail (module E : Engine_intf.S) =
    let m = E.maintain ~pool:(pool ()) ~edb:(edb ()) program in
    ( E.name,
      m.Engine_intf.m_incremental,
      List.map
        (fun d ->
          let out = m.Engine_intf.m_apply d in
          (delta_signature out, m.Engine_intf.m_outputs ()))
        steps )
  in
  match List.map trail Engines.all with
  | (_, inc0, first) :: rest ->
      check "recstep maintains incrementally" true inc0;
      List.iter
        (fun (name, _, tr) ->
          if tr <> first then Alcotest.fail (Printf.sprintf "engine %s diverges" name))
        rest;
      (* the no-op retract emits an empty delta *)
      let last_sig, _ = List.nth first 2 in
      check "no-op retract emits nothing" true (last_sig = [])
  | [] -> Alcotest.fail "no engines"

(* --- inc_index --- *)

let prop_inc_index =
  QCheck2.Test.make ~name:"incremental index = naive scan" ~count:100
    QCheck2.Gen.(list (pair (int_range 0 20) (int_range 0 20)))
    (fun pairs ->
      let r = Relation.create 2 in
      let idx = Inc_index.create [| 0 |] in
      List.iteri
        (fun i (x, y) ->
          Relation.push2 r x y;
          ignore i;
          Inc_index.add idx r (Relation.nrows r - 1))
        pairs;
      List.for_all
        (fun (x, _) ->
          let got = ref [] in
          Inc_index.iter_matches idx r [| x |] (fun row -> got := row :: !got);
          let expected =
            List.mapi (fun i (a, _) -> (i, a)) pairs
            |> List.filter_map (fun (i, a) -> if a = x then Some i else None)
          in
          List.sort compare !got = List.sort compare expected)
        pairs)

(* --- explain corpus: frozen chains, byte-stable across engines --- *)

(* The proof search reads only the final database, so every engine able to
   evaluate a corpus program must reproduce the frozen chain byte for byte
   from its own result relations — the cross-engine guarantee that makes
   `recstep explain` trustworthy no matter which backend served the query. *)
let test_explain_corpus () =
  List.iter
    (fun (tag, src, edb, pred, row, frozen) ->
      let program = Recstep.Parser.parse src in
      let an = Recstep.Analyzer.analyze program in
      let edb_rels =
        List.map
          (fun (n, rows) ->
            ( n,
              Relation.of_rows ~name:n (Recstep.Analyzer.arity an n)
                (List.map Array.of_list rows) ))
          edb
      in
      let outs = program.Recstep.Ast.outputs in
      let supported = ref 0 in
      List.iter
        (fun ((module E : Engine_intf.S) as engine) ->
          match run_engine engine src edb_rels outs with
          | Engine_intf.Unsupported _ -> ()
          | Engine_intf.Done results ->
              incr supported;
              let rows p =
                match List.assoc_opt p results with
                | Some rs -> List.map Array.to_list rs
                | None -> Option.value ~default:[] (List.assoc_opt p edb)
              in
              (match Recstep.Explain.explain ~an ~rows pred row with
              | Recstep.Explain.Explained node ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s: %s chain is frozen" E.name tag)
                    frozen
                    (String.trim (Recstep.Explain.render node))
              | o ->
                  Alcotest.fail
                    (Printf.sprintf "%s: %s not explained: %s" E.name tag
                       (Recstep.Explain.outcome_to_string ~pred ~row o)))
          | _ -> Alcotest.fail (Printf.sprintf "%s failed on %S" E.name tag))
        Engines.all;
      check (tag ^ ": several engines support the case") true (!supported >= 2))
    Refs.explain_corpus

let test_engines_registry () =
  Alcotest.(check int) "seven engines" 7 (List.length Engines.all);
  check "lookup" true (Engines.by_name "RecStep" <> None);
  check "sharded lookup" true (Engines.by_name "Sharded-RecStep" <> None);
  check "unknown" true (Engines.by_name "nope" = None)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_engines_agree_tc;
      prop_engines_agree_sg;
      prop_engines_agree_andersen;
      prop_engines_agree_cspa;
      prop_engines_agree_csda;
      prop_engines_agree_even_odd;
      prop_inc_index;
    ]

let suite =
  [
    Alcotest.test_case "capability gating" `Quick suite_gating;
    Alcotest.test_case "Table 1 capability rows" `Quick capability_rows;
    Alcotest.test_case "maintain agrees across engines" `Quick test_maintain_agree;
    Alcotest.test_case "explain corpus is byte-stable across engines" `Quick
      test_explain_corpus;
    Alcotest.test_case "engines registry" `Quick test_engines_registry;
  ]
  @ qsuite
