(* Incremental view maintenance vs the naive oracle, plus the retraction
   edge cases: retracting what was never inserted, retract-then-reinsert
   inside one delta, emptying a relation, and the count-underflow
   invariant. Every differential check recomputes from scratch with
   Naive.run on a mirrored EDB — the same oracle rs_fuzz trusts. *)

module Ast = Recstep.Ast
module Parser = Recstep.Parser
module Naive = Recstep.Naive
module Ivm = Recstep.Ivm
module Delta = Rs_relation.Delta

let check = Alcotest.(check bool)

(* --- a tiny mirrored-EDB driver ----------------------------------------- *)

module Rows = Set.Make (struct
  type t = int list

  let compare = compare
end)

(* Replay a typed delta against a plain set-of-rows mirror of the EDB, the
   reference semantics Ivm.apply must agree with. *)
let mirror_apply edb (d : Delta.t) =
  List.map
    (fun (name, rows) ->
      let s = ref (Rows.of_list rows) in
      List.iter
        (fun (o : Delta.op) ->
          let row = Array.to_list o.Delta.row in
          match o.Delta.sign with
          | Delta.Insert -> s := Rows.add row !s
          | Delta.Retract -> s := Rows.remove row !s)
        (Delta.ops d name);
      (name, Rows.elements !s))
    edb

let sorted rows = List.sort_uniq compare rows

(* Apply [deltas] one at a time; after every version check each IDB against
   a from-scratch naive recompute, and check the emitted delta nets to the
   observed output diff. *)
let run_sequence program_src edb deltas =
  let program = Parser.parse program_src in
  let v = Ivm.create ~edb program in
  let naive_rows edb' =
    let _, lookup = Naive.run ~edb:edb' program in
    lookup
  in
  let l0 = naive_rows edb in
  List.iter
    (fun p ->
      check ("bootstrap " ^ p) true (sorted (l0 p) = Ivm.rows v p))
    (Ivm.idbs v);
  let edb = ref edb in
  List.iter
    (fun d ->
      let before = List.map (fun p -> (p, Ivm.rows v p)) (Ivm.idbs v) in
      let out = Ivm.apply v d in
      edb := mirror_apply !edb d;
      let lookup = naive_rows !edb in
      List.iter
        (fun p ->
          check ("incremental = recompute for " ^ p) true
            (sorted (lookup p) = Ivm.rows v p))
        (Ivm.idbs v);
      (* the emitted delta must be exactly the observed output diff *)
      List.iter
        (fun p ->
          let b = Rows.of_list (List.assoc p before)
          and a = Rows.of_list (Ivm.rows v p) in
          let want_ins = Rows.elements (Rows.diff a b)
          and want_del = Rows.elements (Rows.diff b a) in
          let got_ins = ref [] and got_del = ref [] in
          List.iter
            (fun (o : Delta.op) ->
              let row = Array.to_list o.Delta.row in
              match o.Delta.sign with
              | Delta.Insert -> got_ins := row :: !got_ins
              | Delta.Retract -> got_del := row :: !got_del)
            (Delta.ops out p);
          check ("emitted inserts for " ^ p) true (sorted !got_ins = want_ins);
          check ("emitted retracts for " ^ p) true (sorted !got_del = want_del))
        (Ivm.idbs v))
    deltas;
  v

(* --- programs ------------------------------------------------------------ *)

let tc_src =
  ".input arc\n.output tc\ntc(x, y) :- arc(x, y).\ntc(x, z) :- arc(x, y), tc(y, z).\n"

let join_src = ".input e\n.output two\ntwo(x, z) :- e(x, y), e(y, z).\n"

let neg_src = ".input r 1\n.input s 1\n.output p\np(x) :- r(x), !s(x).\n"

let empty_support_src = ".input q 1\n.output p\np(1) :- !q(1).\n"

(* --- counting (non-recursive) ------------------------------------------- *)

let test_counting_insert_retract () =
  let edb = [ ("e", [ [ 1; 2 ]; [ 2; 3 ] ]) ] in
  let deltas =
    [
      Delta.of_inserts "e" [ [| 3; 4 |] ];
      Delta.of_inserts "e" [ [| 2; 2 |] ];  (* self-join both positions *)
      Delta.of_retracts "e" [ [| 2; 3 |] ];
      Delta.of_retracts "e" [ [| 2; 2 |] ];
    ]
  in
  ignore (run_sequence join_src edb deltas)

let test_counting_shared_support () =
  (* two(1,3) has two derivations once e(2,3) and e(2,3)'s sibling path
     exist; retracting one support must not retract the tuple *)
  let edb = [ ("e", [ [ 1; 2 ]; [ 1; 4 ]; [ 2; 3 ]; [ 4; 3 ] ]) ] in
  let v =
    run_sequence join_src edb [ Delta.of_retracts "e" [ [| 2; 3 |] ] ]
  in
  check "two(1,3) survives on the other support" true
    (List.mem [ 1; 3 ] (Ivm.rows v "two"))

(* --- recursion (DRed) ---------------------------------------------------- *)

let test_dred_chain () =
  let edb = [ ("arc", [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]) ] in
  let deltas =
    [
      Delta.of_retracts "arc" [ [| 2; 3 |] ];  (* cuts the chain *)
      Delta.of_inserts "arc" [ [| 2; 3 |] ];  (* heals it *)
      Delta.merge
        (Delta.of_inserts "arc" [ [| 4; 1 |] ])  (* closes a cycle *)
        (Delta.of_retracts "arc" [ [| 1; 2 |] ]);
      Delta.of_retracts "arc" [ [| 4; 1 |] ];
    ]
  in
  ignore (run_sequence tc_src edb deltas)

let test_dred_cycle () =
  (* inside a cycle every tuple transitively supports itself — the exact
     case where counting diverges and sets + DRed are required *)
  let edb = [ ("arc", [ [ 1; 2 ]; [ 2; 1 ]; [ 2; 3 ] ]) ] in
  let v = run_sequence tc_src edb [ Delta.of_retracts "arc" [ [| 2; 3 |] ] ] in
  check "cycle survives" true (List.mem [ 1; 1 ] (Ivm.rows v "tc"));
  check "dred ran" true ((Ivm.stats v).Ivm.dred_deleted > 0)

let test_dred_rederivation () =
  (* retracting arc(1,2) overestimates tc(1,3) as deleted; the direct edge
     arc(1,3) must give it back in the re-derivation phase *)
  let edb = [ ("arc", [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ]) ] in
  let v = run_sequence tc_src edb [ Delta.of_retracts "arc" [ [| 1; 2 |] ] ] in
  check "tc(1,3) survives via direct edge" true (List.mem [ 1; 3 ] (Ivm.rows v "tc"));
  let st = Ivm.stats v in
  check "overdeletion happened" true (st.Ivm.dred_deleted > 0);
  check "rederivation gave tuples back" true (st.Ivm.dred_rederived > 0)

(* --- negation ------------------------------------------------------------ *)

let test_negation_flip () =
  let edb = [ ("r", [ [ 1 ]; [ 2 ] ]); ("s", [ [ 2 ] ]) ] in
  let deltas =
    [
      Delta.of_inserts "s" [ [| 1 |] ];  (* kills p(1) *)
      Delta.of_retracts "s" [ [| 1 |] ];  (* revives it *)
      Delta.of_retracts "s" [ [| 2 |] ];  (* revives p(2) *)
    ]
  in
  ignore (run_sequence neg_src edb deltas)

let test_empty_support_bootstrap () =
  (* p(1) :- !q(1). with q empty: no delta ever references q at bootstrap,
     so only a full initial evaluation can derive p(1) *)
  let v = run_sequence empty_support_src [ ("q", []) ]
      [ Delta.of_inserts "q" [ [| 1 |] ]; Delta.of_retracts "q" [ [| 1 |] ] ]
  in
  check "p(1) back after q emptied again" true (Ivm.rows v "p" = [ [ 1 ] ])

(* --- retraction edge cases ----------------------------------------------- *)

let test_retract_never_inserted () =
  let edb = [ ("e", [ [ 1; 2 ]; [ 2; 3 ] ]) ] in
  let program = Parser.parse join_src in
  let v = Ivm.create ~edb program in
  let before = Ivm.rows v "two" in
  (* over-retraction is a counted no-op, not an underflow *)
  let out = Ivm.apply v (Delta.of_retracts "e" [ [| 9; 9 |]; [| 9; 9 |] ]) in
  check "no output delta" true (Delta.is_empty out);
  check "state untouched" true (Ivm.rows v "two" = before)

let test_retract_then_reinsert_one_delta () =
  let edb = [ ("e", [ [ 1; 2 ]; [ 2; 3 ] ]) ] in
  let program = Parser.parse join_src in
  let v = Ivm.create ~edb program in
  let d =
    Delta.merge
      (Delta.of_retracts "e" [ [| 1; 2 |] ])
      (Delta.of_inserts "e" [ [| 1; 2 |] ])
  in
  let out = Ivm.apply v d in
  check "flip-flop nets to nothing" true (Delta.is_empty out);
  check "two(1,3) still there" true (List.mem [ 1; 3 ] (Ivm.rows v "two"));
  (* and the inverse order: insert-then-retract of a new tuple *)
  let d2 =
    Delta.merge
      (Delta.of_inserts "e" [ [| 7; 8 |] ])
      (Delta.of_retracts "e" [ [| 7; 8 |] ])
  in
  let out2 = Ivm.apply v d2 in
  check "insert-then-retract nets to nothing" true (Delta.is_empty out2)

let test_retraction_empties_relation () =
  let edb = [ ("e", [ [ 1; 2 ]; [ 2; 3 ] ]) ] in
  let deltas = [ Delta.of_retracts "e" [ [| 1; 2 |]; [| 2; 3 |] ] ] in
  let v = run_sequence join_src edb deltas in
  check "e empty" true (Ivm.rows v "e" = []);
  check "two empty" true (Ivm.rows v "two" = [])

let test_no_underflow_under_churn () =
  (* a deterministic churn sequence; the invariant is simply that apply
     never raises Count_underflow and every version matches the oracle *)
  let edb = [ ("e", [ [ 0; 1 ] ]) ] in
  let deltas =
    List.init 12 (fun i ->
        let a = i mod 5 and b = (i * 3 + 1) mod 5 in
        if i mod 3 = 2 then Delta.of_retracts "e" [ [| a; b |] ]
        else Delta.of_inserts "e" [ [| a; b |] ])
  in
  ignore (run_sequence join_src edb deltas)

(* --- input validation ---------------------------------------------------- *)

let test_apply_rejects_bad_input () =
  let edb = [ ("e", [ [ 1; 2 ] ]) ] in
  let v = Ivm.create ~edb (Parser.parse join_src) in
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check "idb delta rejected" true
    (raises (fun () -> Ivm.apply v (Delta.of_inserts "two" [ [| 1; 2 |] ])));
  check "unknown relation rejected" true
    (raises (fun () -> Ivm.apply v (Delta.of_inserts "nope" [ [| 1 |] ])));
  check "arity mismatch rejected" true
    (raises (fun () -> Ivm.apply v (Delta.of_inserts "e" [ [| 1 |] ])))

let test_supported () =
  check "plain program supported" true (Ivm.supported (Parser.parse tc_src));
  check "aggregates unsupported" false
    (Ivm.supported
       (Parser.parse ".input e\n.output d\nd(x, MIN(c)) :- e(x, c).\n"))

(* --- provenance maintenance ----------------------------------------------- *)

(* With a tag store attached, every maintained IDB row must carry a tag at
   every version — inserts tag new derivations, retractions drop tags, and
   a DRed overdelete-then-rederive round trip may not leave the survivor
   untagged. [tagged] counts the store's current tags, so coverage equality
   also proves no stale tags linger for departed tuples. *)
let test_provenance_maintained () =
  let module Prov = Recstep.Provenance in
  let prov = Prov.create () in
  let edb = [ ("arc", [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ]) ] in
  let v = Ivm.create ~prov ~edb (Parser.parse tc_src) in
  check "store attached" true
    (match Ivm.provenance v with Some p -> p == prov | None -> false);
  let assert_cov what =
    List.iter
      (fun p ->
        let rows = Ivm.rows v p in
        Alcotest.(check int) (what ^ ": tagged = rows for " ^ p)
          (List.length rows) (Prov.tagged prov ~pred:p);
        List.iter
          (fun row ->
            check (what ^ ": tag present") true (Prov.find prov ~pred:p row <> None))
          rows)
      (Ivm.idbs v)
  in
  assert_cov "bootstrap";
  ignore (Ivm.apply v (Delta.of_inserts "arc" [ [| 3; 4 |] ]));
  assert_cov "after insert";
  (* retracting arc(1,2) overdeletes tc(1,3)/tc(1,4) and rederives them via
     the direct edge; tc(1,2) leaves for good *)
  ignore (Ivm.apply v (Delta.of_retracts "arc" [ [| 1; 2 |] ]));
  assert_cov "after dred retract";
  check "rederived tuple kept a tag" true (Prov.find prov ~pred:"tc" [ 1; 3 ] <> None);
  check "departed tuple lost its tag" true (Prov.find prov ~pred:"tc" [ 1; 2 ] = None)

(* --- delta module round-trips -------------------------------------------- *)

let test_delta_normalize () =
  let mem _ row = row = [| 1; 1 |] in
  let d =
    Delta.merge
      (Delta.of_inserts "r" [ [| 1; 1 |]; [| 2; 2 |] ])
      (Delta.of_retracts "r" [ [| 1; 1 |]; [| 3; 3 |] ])
  in
  match Delta.normalize ~mem d with
  | [ ("r", c) ] ->
      check "net insert" true (c.Delta.insert = [ [| 2; 2 |] ]);
      check "net retract" true (c.Delta.retract = [ [| 1; 1 |] ])
  | _ -> Alcotest.fail "expected one changed relation"

let test_delta_counts () =
  let d =
    Delta.merge (Delta.of_inserts "a" [ [| 1 |]; [| 2 |] ]) (Delta.of_retracts "b" [ [| 3 |] ])
  in
  Alcotest.(check int) "inserts" 2 (Delta.count d Delta.Insert);
  Alcotest.(check int) "retracts" 1 (Delta.count d Delta.Retract);
  Alcotest.(check int) "size" 3 (Delta.size d);
  check "rels" true (Delta.rels d = [ "a"; "b" ])

let suite =
  [
    Alcotest.test_case "counting insert/retract" `Quick test_counting_insert_retract;
    Alcotest.test_case "counting shared support" `Quick test_counting_shared_support;
    Alcotest.test_case "dred chain" `Quick test_dred_chain;
    Alcotest.test_case "dred cycle" `Quick test_dred_cycle;
    Alcotest.test_case "dred rederivation" `Quick test_dred_rederivation;
    Alcotest.test_case "negation flip" `Quick test_negation_flip;
    Alcotest.test_case "empty-support bootstrap" `Quick test_empty_support_bootstrap;
    Alcotest.test_case "retract never inserted" `Quick test_retract_never_inserted;
    Alcotest.test_case "retract then reinsert" `Quick test_retract_then_reinsert_one_delta;
    Alcotest.test_case "retraction empties relation" `Quick test_retraction_empties_relation;
    Alcotest.test_case "no underflow under churn" `Quick test_no_underflow_under_churn;
    Alcotest.test_case "apply rejects bad input" `Quick test_apply_rejects_bad_input;
    Alcotest.test_case "supported" `Quick test_supported;
    Alcotest.test_case "provenance maintained across apply" `Quick
      test_provenance_maintained;
    Alcotest.test_case "delta normalize" `Quick test_delta_normalize;
    Alcotest.test_case "delta counts" `Quick test_delta_counts;
  ]
