(* Cross-cutting semantic invariants, mostly property-based: monotonicity of
   Datalog, sanity laws on aggregates and distances, and determinism. *)

module Frontend = Recstep.Frontend
module Interpreter = Recstep.Interpreter

let check = Alcotest.(check bool)

let run ?options src edb = fst (Frontend.run_text ?options ~edb src)

let gen_graph = Refs.arbitrary_edges ~max_nodes:9 ~max_edges:18 ()

let tc_pairs edges =
  let r = run Recstep.Programs.tc [ ("arc", Refs.relation_of_edges edges) ] in
  Refs.sorted_pairs (Frontend.result_rows r "tc")

(* Datalog is monotone: adding a fact never removes derivations. *)
let prop_tc_monotone =
  QCheck2.Test.make ~name:"TC monotone under edge insertion" ~count:40
    QCheck2.Gen.(pair gen_graph (pair (int_range 0 8) (int_range 0 8)))
    (fun (edges, extra) ->
      QCheck2.assume (edges <> []);
      let before = tc_pairs edges in
      let after = tc_pairs (List.sort_uniq compare (extra :: edges)) in
      List.for_all (fun p -> List.mem p after) before)

(* tc is transitively closed: tc ∘ tc ⊆ tc. *)
let prop_tc_closed =
  QCheck2.Test.make ~name:"TC transitively closed" ~count:40 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      let tc = tc_pairs edges in
      List.for_all
        (fun (x, z) ->
          List.for_all (fun (z', y) -> z <> z' || List.mem (x, y) tc) tc)
        tc)

(* CC labels propagate along directed edges, so a vertex's label is the
   minimum *source* that reaches it — always a source vertex's own label
   (labels can exceed the vertex id: arc 5->1 gives cc3(1, 5)). *)
let prop_cc_labels_sane =
  QCheck2.Test.make ~name:"CC labels are source representatives" ~count:40 gen_graph
    (fun edges ->
      QCheck2.assume (edges <> []);
      let r = run Recstep.Programs.cc [ ("arc", Refs.relation_of_edges edges) ] in
      let cc3 = List.map (fun t -> (t.(0), t.(1))) (Frontend.result_rows r "cc3") in
      let sources = List.sort_uniq compare (List.map fst edges) in
      (* every label is a source vertex, and every source keeps its own id *)
      List.for_all (fun (_, label) -> List.mem label sources) cc3
      && List.for_all
           (fun s -> match List.assoc_opt s cc3 with Some l -> l <= s | None -> false)
           sources)

(* SSSP satisfies the relaxation property on every edge. *)
let prop_sssp_relaxed =
  QCheck2.Test.make ~name:"SSSP distances are relaxed" ~count:40
    QCheck2.Gen.(
      pair (list_size (int_range 1 18) (tup3 (int_range 0 7) (int_range 0 7) (int_range 1 9)))
        (int_range 0 7))
    (fun (wedges, src) ->
      let arc = Rs_relation.Relation.create ~name:"arc" 3 in
      List.iter (fun (x, y, d) -> Rs_relation.Relation.push3 arc x y d) wedges;
      let id = Frontend.relation_of_list ~name:"id" 1 [ [| src |] ] in
      let r = run Recstep.Programs.sssp [ ("arc", arc); ("id", id) ] in
      let dist = List.map (fun t -> (t.(0), t.(1))) (Frontend.result_rows r "sssp") in
      List.for_all
        (fun (x, y, d) ->
          match (List.assoc_opt x dist, List.assoc_opt y dist) with
          | Some dx, Some dy -> dy <= dx + d
          | Some _, None -> false (* reachable successor missing *)
          | None, _ -> true)
        wedges)

(* The engine is deterministic: same inputs, same outputs (twice). *)
let prop_deterministic =
  QCheck2.Test.make ~name:"evaluation is deterministic" ~count:20 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      let go () =
        let r = run Recstep.Programs.cspa
            [ ("assign", Refs.relation_of_edges ~name:"assign" edges);
              ("dereference", Refs.relation_of_edges ~name:"dereference" edges) ] in
        ( Refs.sorted_pairs (Frontend.result_rows r "valueFlow"),
          Refs.sorted_pairs (Frontend.result_rows r "valueAlias") )
      in
      go () = go ())

(* Reach is a subset of the tc-image of the source. *)
let prop_reach_consistent_with_tc =
  QCheck2.Test.make ~name:"REACH = {src} ∪ tc(src)" ~count:40
    QCheck2.Gen.(pair gen_graph (int_range 0 8))
    (fun (edges, src) ->
      QCheck2.assume (edges <> []);
      let tc = tc_pairs edges in
      let expected =
        src :: List.filter_map (fun (x, y) -> if x = src then Some y else None) tc
        |> List.sort_uniq compare
      in
      let id = Frontend.relation_of_list ~name:"id" 1 [ [| src |] ] in
      let r = run Recstep.Programs.reach [ ("arc", Refs.relation_of_edges edges); ("id", id) ] in
      List.sort compare (List.map (fun t -> t.(0)) (Frontend.result_rows r "reach")) = expected)

(* Weaker dedup (boxed) and UIE-off change nothing about SG either. *)
let prop_sg_config_invariance =
  QCheck2.Test.make ~name:"SG invariant under dedup/uie config" ~count:20 gen_graph
    (fun edges ->
      QCheck2.assume (edges <> []);
      let go options =
        let r = run ~options Recstep.Programs.sg [ ("arc", Refs.relation_of_edges edges) ] in
        Refs.sorted_pairs (Frontend.result_rows r "sg")
      in
      let base = go Interpreter.default_options in
      go { Interpreter.default_options with fast_dedup = false; uie = false; pbme = false } = base)

(* Graspan handles rules that traverse an atom backwards. *)
let test_graspan_reversed_atom () =
  let module E = (val Rs_engines.Engines.graspan_like : Rs_engines.Engine_intf.S) in
  let src = {|
.input e
sib(x, y) :- e(p, x), e(p, y).
.output sib
|} in
  let pool = Rs_parallel.Pool.create ~workers:2 () in
  Rs_parallel.Pool.begin_run pool;
  let result =
    E.run ~pool ~edb:[ ("e", Frontend.edges ~name:"e" [ (1, 2); (1, 3) ]) ]
      (Recstep.Parser.parse src)
  in
  let lookup = result.Rs_engines.Engine_intf.relation_of in
  Alcotest.(check (list (pair int int)))
    "siblings via reversed first atom"
    [ (2, 2); (2, 3); (3, 2); (3, 3) ]
    (Refs.sorted_pairs (Rs_relation.Relation.to_rows (lookup "sib")))

(* PBME respects the memory budget: when the matrix cannot fit, the engine
   falls back to the relational path rather than crashing. *)
let test_pbme_budget_fallback () =
  let arc = Frontend.edges [ (0, 1); (1, 2) ] in
  Rs_storage.Memtrack.hard_reset ();
  Rs_storage.Memtrack.set_budget (Some 3000);
  let result =
    Fun.protect
      ~finally:(fun () ->
        Rs_storage.Memtrack.set_budget None;
        Rs_storage.Memtrack.hard_reset ())
      (fun () ->
        (* matrix would need ~n^2/8 > budget for n from the data; tiny graph
           fits, so force a bigger active domain *)
        let arc_big = Frontend.edges [ (0, 1); (1, 2); (2, 4000) ] in
        ignore arc;
        match Frontend.run_text ~edb:[ ("arc", arc_big) ] Recstep.Programs.tc with
        | r, _ -> r.Interpreter.pbme_strata = 0 (* fell back *)
        | exception Rs_storage.Memtrack.Simulated_oom _ -> false)
  in
  check "fallback (or at least no pbme) under tiny budget" true result

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_tc_monotone;
      prop_tc_closed;
      prop_cc_labels_sane;
      prop_sssp_relaxed;
      prop_deterministic;
      prop_reach_consistent_with_tc;
      prop_sg_config_invariance;
    ]

let suite =
  [
    Alcotest.test_case "graspan reversed atom" `Quick test_graspan_reversed_atom;
    Alcotest.test_case "pbme budget fallback" `Quick test_pbme_budget_fallback;
  ]
  @ qsuite
