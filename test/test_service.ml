module Relation = Rs_relation.Relation
module Delta = Rs_relation.Delta
module Service = Rs_service.Service
module Edb_store = Rs_service.Edb_store
module Result_cache = Rs_service.Result_cache
module Admission = Rs_service.Admission
module Program_key = Rs_service.Program_key
module Script = Rs_service.Script
module Json = Rs_obs.Json

let tc = Recstep.Programs.parsed Recstep.Programs.tc
let sg = Recstep.Programs.parsed Recstep.Programs.sg

let ring n =
  let rows = List.init n (fun i -> [| i; (i + 1) mod n |]) in
  let r = Relation.of_rows ~name:"arc" 2 rows in
  Relation.account r;
  r

let store ?(name = "g") ?(n = 6) () =
  let t = Edb_store.create () in
  Edb_store.define t name [ ("arc", ring n) ];
  t

(* --- program canonicalization --- *)

let test_program_key () =
  let a =
    Recstep.Programs.parsed
      ".input arc\n.output tc\ntc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).\n"
  in
  (* same program, alpha-renamed variables and different whitespace *)
  let b =
    Recstep.Programs.parsed
      ".input arc\n.output tc\ntc(p,q) :- arc(p,q).\ntc(u,w):-tc(u,v),arc(v,w).\n"
  in
  Alcotest.(check string) "alpha-renaming invariant" (Program_key.hash a) (Program_key.hash b);
  Alcotest.(check string)
    "canonical forms equal" (Program_key.canonical a) (Program_key.canonical b);
  Alcotest.(check bool) "tc and sg differ" false (Program_key.hash a = Program_key.hash sg);
  Alcotest.(check int) "hash is 16 hex chars" 16 (String.length (Program_key.hash a))

(* --- result cache unit behaviour --- *)

let test_result_cache () =
  let key v = { Result_cache.program = "p"; edb = "g"; edb_version = v } in
  let value rows = [ ("out", rows) ] in
  let canonical = "tc(v0, v1) :- arc(v0, v1)." in
  let find c k = Result_cache.find c k ~canonical in
  let c = Result_cache.create ~budget_bytes:4096 in
  Alcotest.(check bool) "miss on empty" true (find c (key 1) = None);
  Result_cache.add c (key 1) (value [ [| 1; 2 |] ]) ~canonical;
  Alcotest.(check bool) "hit" true (find c (key 1) <> None);
  Alcotest.(check bool) "version is part of the key" true (find c (key 2) = None);
  let dropped = Result_cache.invalidate_edb c "g" in
  Alcotest.(check int) "invalidation drops the entry" 1 dropped;
  Alcotest.(check bool) "gone" true (find c (key 1) = None);
  let s = Result_cache.stats c in
  Alcotest.(check int) "hits counted" 1 s.Result_cache.hits;
  Alcotest.(check int) "invalidations counted" 1 s.Result_cache.invalidations;
  (* zero budget disables storage entirely *)
  let off = Result_cache.create ~budget_bytes:0 in
  Result_cache.add off (key 1) (value [ [| 1; 2 |] ]) ~canonical;
  Alcotest.(check bool) "budget 0 never stores" true (find off (key 1) = None)

(* The key's program component is a 60-bit hash. Two different programs can
   (adversarially or by bad luck) share it; the lookup must verify the full
   canonical text and deflect the clash to a miss instead of serving the
   other tenant's rows. *)
let test_result_cache_collision () =
  let key = { Result_cache.program = "deadbeef"; edb = "g"; edb_version = 1 } in
  let c = Result_cache.create ~budget_bytes:4096 in
  Result_cache.add c key [ ("out", [ [| 1; 2 |] ]) ] ~canonical:"tc(v0, v1) :- arc(v0, v1).";
  Alcotest.(check bool) "same hash, same program: hit" true
    (Result_cache.find c key ~canonical:"tc(v0, v1) :- arc(v0, v1)." <> None);
  Alcotest.(check bool) "same hash, different program: miss" true
    (Result_cache.find c key ~canonical:"sg(v0, v1) :- arc(v2, v0), arc(v2, v1)." = None);
  let s = Result_cache.stats c in
  Alcotest.(check int) "collision counted" 1 s.Result_cache.collisions;
  Alcotest.(check int) "collision is also a miss" 1 s.Result_cache.misses;
  Alcotest.(check int) "true hit still counted" 1 s.Result_cache.hits

let test_result_cache_lru () =
  let big = List.init 64 (fun i -> [| i; i |]) in
  let key n = { Result_cache.program = n; edb = "g"; edb_version = 1 } in
  let canonical = "" in
  let bytes = Result_cache.value_bytes [ ("out", big) ] in
  (* room for two entries, not three *)
  let c = Result_cache.create ~budget_bytes:(2 * bytes) in
  Result_cache.add c (key "a") [ ("out", big) ] ~canonical;
  Result_cache.add c (key "b") [ ("out", big) ] ~canonical;
  ignore (Result_cache.find c (key "a") ~canonical);
  (* "b" is now least recently used; inserting "c" must evict it *)
  Result_cache.add c (key "c") [ ("out", big) ] ~canonical;
  Alcotest.(check bool) "recently-used survives" true
    (Result_cache.find c (key "a") ~canonical <> None);
  Alcotest.(check bool) "lru evicted" true (Result_cache.find c (key "b") ~canonical = None);
  let s = Result_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Result_cache.evictions;
  Alcotest.(check bool) "budget holds" true (s.Result_cache.bytes <= 2 * bytes)

(* --- accounting identities, shared by several tests --- *)

let check_identities r =
  let c = Service.counter r in
  Alcotest.(check int) "submitted = admitted + rejected" (c "submitted")
    (c "admitted" + c "rejected");
  Alcotest.(check int) "admitted = done + oom + timeout + unsupported" (c "admitted")
    (c "done" + c "oom" + c "timeout" + c "unsupported")

(* --- cache hit / miss / invalidation through the service loop --- *)

let cache_events =
  let sub ~at = Service.submission ~at ~tenant:"t" ~edb:"g" tc in
  [
    Service.Submit (sub ~at:0.0);
    Service.Submit (sub ~at:0.0);
    (* well after both queries settle: version bump; the new arc reaches a
       fresh vertex so the closure actually grows *)
    Service.delta_event ~at:50.0 ~edb:"g" (Delta.of_inserts "arc" [ [| 5; 6 |] ]);
    Service.Submit (sub ~at:100.0);
  ]

(* With maintenance off, a delta cold-drops the database's cached results:
   the post-delta query misses and recomputes. *)
let test_service_cache_and_invalidation () =
  let config = Service.config ~ivm:false () in
  let r = Service.run ~config ~edb:(store ()) cache_events in
  check_identities r;
  Alcotest.(check int) "all three served" 3 (Service.counter r "done");
  Alcotest.(check int) "second query hits" 1 (Service.counter r "cache_hit");
  Alcotest.(check int) "first and post-delta miss" 2 (Service.counter r "cache_miss");
  Alcotest.(check int) "delta applied" 1 (Service.counter r "delta_applied");
  Alcotest.(check bool) "delta invalidated the entry" true
    (r.Service.cache.Result_cache.invalidations >= 1);
  match r.Service.completions with
  | [ q1; q2; q3 ] -> (
      Alcotest.(check bool) "q2 flagged as cache hit" true q2.Service.c_cache_hit;
      match (q1.Service.c_outcome, q2.Service.c_outcome, q3.Service.c_outcome) with
      | Service.Done v1, Service.Done v2, Service.Done v3 ->
          Alcotest.(check bool) "cached rows identical" true (v1 = v2);
          let nrows v = List.length (List.assoc "tc" v) in
          Alcotest.(check bool) "post-delta result is larger" true (nrows v3 > nrows v1)
      | _ -> Alcotest.fail "expected three Done outcomes")
  | cs -> Alcotest.fail (Printf.sprintf "expected 3 completions, got %d" (List.length cs))

(* With maintenance on (the default), the same delta incrementally refreshes
   the cached entry instead: the post-delta query is a warm hit and its rows
   match a from-scratch recompute. *)
let test_service_warm_refresh () =
  let r = Service.run ~edb:(store ()) cache_events in
  check_identities r;
  Alcotest.(check int) "all three served" 3 (Service.counter r "done");
  Alcotest.(check int) "repeat and post-delta both hit" 2 (Service.counter r "cache_hit");
  Alcotest.(check int) "only the first misses" 1 (Service.counter r "cache_miss");
  Alcotest.(check int) "one view built" 1 (Service.counter r "view_built");
  Alcotest.(check int) "one entry refreshed" 1 (Service.counter r "refreshed");
  Alcotest.(check int) "nothing dropped" 0 (Service.counter r "view_dropped");
  Alcotest.(check int) "refresh counted in cache stats" 1
    r.Service.cache.Result_cache.refreshes;
  (* the refreshed rows must equal what a cold recompute produces *)
  let cold = Service.run ~config:(Service.config ~ivm:false ()) ~edb:(store ()) cache_events in
  let last r =
    match List.rev r.Service.completions with
    | { Service.c_outcome = Service.Done v; _ } :: _ -> v
    | _ -> Alcotest.fail "expected a Done completion"
  in
  Alcotest.(check bool) "refreshed rows = recomputed rows" true (last r = last cold);
  match List.rev r.Service.completions with
  | q3 :: _ -> Alcotest.(check bool) "post-delta query is a hit" true q3.Service.c_cache_hit
  | [] -> Alcotest.fail "no completions"

(* A retraction refreshes too: the closure shrinks and the warm rows track
   it. The ring 0→1→…→5→0 loses its closing arc, so tc drops from the full
   cross product to the reachable-suffix pairs. *)
let test_service_warm_retract () =
  let sub ~at = Service.submission ~at ~tenant:"t" ~edb:"g" tc in
  let events =
    [
      Service.Submit (sub ~at:0.0);
      Service.delta_event ~at:50.0 ~edb:"g" (Delta.of_retracts "arc" [ [| 5; 0 |] ]);
      Service.Submit (sub ~at:100.0);
    ]
  in
  let r = Service.run ~edb:(store ()) events in
  check_identities r;
  Alcotest.(check int) "one entry refreshed" 1 (Service.counter r "refreshed");
  match r.Service.completions with
  | [ { Service.c_outcome = Service.Done v1; _ }; q2 ] ->
      Alcotest.(check bool) "post-retract query is a hit" true q2.Service.c_cache_hit;
      let v2 = match q2.Service.c_outcome with
        | Service.Done v -> v
        | _ -> Alcotest.fail "expected Done"
      in
      let nrows v = List.length (List.assoc "tc" v) in
      Alcotest.(check int) "ring closure is the cross product" 36 (nrows v1);
      Alcotest.(check int) "broken ring shrinks to the path closure" 15 (nrows v2)
  | cs -> Alcotest.fail (Printf.sprintf "expected 2 completions, got %d" (List.length cs))

(* A delta past the refresh threshold falls back to invalidation. *)
let test_service_refresh_fallback () =
  let config = Service.config ~ivm_max_delta:0 () in
  let r = Service.run ~config ~edb:(store ()) cache_events in
  check_identities r;
  Alcotest.(check int) "no refresh past the threshold" 0 (Service.counter r "refreshed");
  Alcotest.(check int) "views dropped instead" 1 (Service.counter r "view_dropped");
  Alcotest.(check bool) "entry invalidated" true
    (r.Service.cache.Result_cache.invalidations >= 1)

(* --- shared indexes across runs and deltas (store-lifetime manager) --- *)

(* The store-lifetime index manager must carry base-relation indexes across
   interpreter runs: with the cache off, two identical submissions are two
   full recomputes, but the second reuses the first's arc index instead of
   rebuilding it. An insert-only delta between two more submissions is
   absorbed by rebase (+ delta-append on next access), not a rebuild; a
   retraction invalidates and the next run rebuilds. The trace's
   executor.index_* counters are the audit trail. The program is a
   non-recursive join: PBME would collapse a recursive stratum into the
   bit-matrix kernel and bypass the relational indexes entirely. *)
let test_service_shared_indexes () =
  let twohop =
    Recstep.Programs.parsed
      ".input arc\ntwohop(x, y) :- arc(x, z), arc(z, y).\n.output twohop"
  in
  let sub ~at = Service.submission ~at ~tenant:"t" ~edb:"g" twohop in
  let run events =
    let config = Service.config ~cache_bytes:0 ~ivm:false () in
    let r = Service.run ~config ~edb:(store ()) events in
    check_identities r;
    r
  in
  let counter r name = Rs_obs.Trace.counter r.Service.trace name in
  (* two identical cold runs: the arc index is built once and reused *)
  let r = run [ Service.Submit (sub ~at:0.0); Service.Submit (sub ~at:100.0) ] in
  Alcotest.(check int) "both recomputed (cache off)" 2 (Service.counter r "done");
  Alcotest.(check bool) "second run reuses the shared index" true
    (counter r "executor.index_reuse_hits" > 0);
  let builds_two_runs = counter r "executor.index_builds" in
  (* insert-only delta: the shared entry is rebased, not rebuilt *)
  let r2 =
    run
      [
        Service.Submit (sub ~at:0.0);
        Service.delta_event ~at:50.0 ~edb:"g" (Delta.of_inserts "arc" [ [| 0; 3 |] ]);
        Service.Submit (sub ~at:100.0);
      ]
  in
  Alcotest.(check int) "one rebase for the insert-only delta" 1
    (counter r2 "executor.index_rebases");
  Alcotest.(check int) "no invalidation" 0 (counter r2 "executor.index_invalidations");
  Alcotest.(check bool) "no extra build after the rebase" true
    (counter r2 "executor.index_builds" <= builds_two_runs);
  (* a retraction cannot preserve the indexed prefix: invalidate + rebuild *)
  let r3 =
    run
      [
        Service.Submit (sub ~at:0.0);
        Service.delta_event ~at:50.0 ~edb:"g" (Delta.of_retracts "arc" [ [| 0; 1 |] ]);
        Service.Submit (sub ~at:100.0);
      ]
  in
  Alcotest.(check bool) "retraction invalidates the shared index" true
    (counter r3 "executor.index_invalidations" > 0);
  Alcotest.(check int) "no rebase on a retraction" 0 (counter r3 "executor.index_rebases");
  Alcotest.(check bool) "post-retract run rebuilds" true
    (counter r3 "executor.index_builds" > builds_two_runs)

(* --- sharded serving --- *)

let test_service_sharded () =
  let sub ~at = Service.submission ~at ~tenant:"t" ~edb:"g" tc in
  let events = [ Service.Submit (sub ~at:0.0); Service.Submit (sub ~at:100.0) ] in
  let sharded =
    Service.run
      ~config:(Service.config ~shards:4 ~cache_bytes:0 ~ivm:false ())
      ~edb:(store ()) events
  in
  check_identities sharded;
  Alcotest.(check int) "both served sharded" 2 (Service.counter sharded "done");
  Alcotest.(check int) "one stat row per shard" 4
    (List.length sharded.Service.shard_stats);
  List.iter
    (fun (s : Service.shard_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d executed queries" s.Service.sh_shard)
        true
        (s.Service.sh_queries > 0))
    sharded.Service.shard_stats;
  let unsharded =
    Service.run
      ~config:(Service.config ~cache_bytes:0 ~ivm:false ())
      ~edb:(store ()) events
  in
  Alcotest.(check int) "unsharded report has no shard stats" 0
    (List.length unsharded.Service.shard_stats);
  let rows r =
    List.map
      (fun (c : Service.completion) ->
        match c.Service.c_outcome with
        | Service.Done v -> List.map (fun (n, rs) -> (n, List.map Array.to_list rs)) v
        | _ -> Alcotest.fail "expected Done")
      r.Service.completions
  in
  Alcotest.(check bool) "sharded rows = unsharded rows" true
    (rows sharded = rows unsharded)

(* --- admission control --- *)

let test_admission_memory () =
  (* a budget far below even a Small query's 1 MiB admission estimate *)
  let config = Service.config ~mem_budget:1000 () in
  let events =
    [ Service.Submit (Service.submission ~tenant:"t" ~edb:"g" tc) ]
  in
  let r = Service.run ~config ~edb:(store ()) events in
  check_identities r;
  Alcotest.(check int) "rejected" 1 (Service.counter r "rejected");
  Alcotest.(check int) "nothing admitted" 0 (Service.counter r "admitted");
  match (List.hd r.Service.completions).Service.c_outcome with
  | Service.Rejected (Admission.Over_memory _) -> ()
  | o -> Alcotest.fail ("expected Over_memory rejection, got " ^ Service.outcome_label o)

let test_admission_queue_full () =
  let config = Service.config ~queue_capacity:1 () in
  let sub () = Service.Submit (Service.submission ~tenant:"t" ~edb:"g" tc) in
  let r = Service.run ~config ~edb:(store ()) [ sub (); sub (); sub () ] in
  check_identities r;
  Alcotest.(check int) "one slot, one admit" 1 (Service.counter r "admitted");
  Alcotest.(check int) "the rest bounce" 2 (Service.counter r "rejected");
  let queue_full =
    List.filter
      (fun c ->
        match c.Service.c_outcome with
        | Service.Rejected (Admission.Queue_full _) -> true
        | _ -> false)
      r.Service.completions
  in
  Alcotest.(check int) "rejections are typed Queue_full" 2 (List.length queue_full)

let test_admission_unknown_edb () =
  let r =
    Service.run ~edb:(store ())
      [ Service.Submit (Service.submission ~tenant:"t" ~edb:"nope" tc) ]
  in
  check_identities r;
  match (List.hd r.Service.completions).Service.c_outcome with
  | Service.Rejected (Admission.Unknown_edb "nope") -> ()
  | o -> Alcotest.fail ("expected Unknown_edb rejection, got " ^ Service.outcome_label o)

(* --- deadlines --- *)

let test_deadline_miss () =
  let events =
    [
      Service.Submit
        (Service.submission ~deadline_vs:1e-9 ~tenant:"t" ~edb:"g" tc);
    ]
  in
  let r = Service.run ~edb:(store ~n:24 ()) events in
  check_identities r;
  Alcotest.(check int) "timeout" 1 (Service.counter r "timeout");
  Alcotest.(check int) "deadline_miss counted" 1 (Service.counter r "deadline_miss");
  Alcotest.(check int) "not served" 0 (Service.counter r "done")

(* --- determinism --- *)

let test_determinism () =
  let events () =
    List.concat_map
      (fun tenant ->
        List.init 3 (fun k ->
            Service.Submit
              (Service.submission
                 ~at:(0.001 *. float_of_int k)
                 ~tenant ~edb:"g" (if k = 1 then sg else tc))))
      [ "alice"; "bob"; "carol" ]
  in
  let run () =
    let config = Service.config ~workers:4 ~seed:7 () in
    Service.run ~config ~edb:(store ~n:8 ()) (events ())
  in
  (* the pool derives simulated durations from measured execution, so float
     timings vary at microsecond scale run to run; what must replay exactly
     is every scheduling decision and outcome *)
  let signature r =
    ( r.Service.counters,
      List.map
        (fun c ->
          ( c.Service.c_id,
            c.Service.c_tenant,
            Service.outcome_label c.Service.c_outcome,
            c.Service.c_cache_hit,
            c.Service.c_retries ))
        r.Service.completions )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same events, same seed, same dispatch and outcomes" true
    (signature a = signature b);
  (* and the report itself is well-formed JSON *)
  Alcotest.(check bool) "report serializes" true
    (String.length (Json.to_string (Service.report_json a)) > 0)

(* --- workload scripts --- *)

let test_script_parse () =
  let prog = Filename.temp_file "svc_tc" ".datalog" in
  let oc = open_out prog in
  output_string oc Recstep.Programs.tc;
  close_out oc;
  let src =
    String.concat "\n"
      [
        "# comment";
        "set workers 4";
        "edb g arc:2 = 0 1; 1 2; 2 0";
        Printf.sprintf "submit tenant=a edb=g program=%s repeat=2 every=0.5" prog;
        "delta at=1 g arc = 2 3";
        "retract at=2 g arc = 0 1";
        "";
      ]
  in
  let s = Script.parse src in
  Alcotest.(check (list (pair string string))) "settings" [ ("workers", "4") ] s.Script.settings;
  Alcotest.(check int) "one database" 1 (List.length s.Script.defs);
  (match s.Script.events with
  | [ Service.Submit s1; Service.Submit s2; Service.Delta d1; Service.Delta d2 ] ->
      Alcotest.(check string) "tenant" "a" s1.Service.tenant;
      Alcotest.(check (float 1e-9)) "train spacing" 0.5 s2.Service.at;
      Alcotest.(check (float 1e-9)) "delta time" 1.0 d1.at;
      Alcotest.(check int) "delta is one insert" 1 (Delta.size d1.delta);
      Alcotest.(check bool) "delta op is an insert" true
        (List.for_all
           (fun (o : Delta.op) -> o.Delta.sign = Delta.Insert)
           (Delta.ops d1.delta "arc"));
      Alcotest.(check bool) "retract op is a retract" true
        (List.for_all
           (fun (o : Delta.op) -> o.Delta.sign = Delta.Retract)
           (Delta.ops d2.delta "arc"))
  | _ -> Alcotest.fail "expected submit, submit, delta, retract");
  (* malformed lines carry their position *)
  (match Script.parse ~path:"w" "set workers 4\nbogus directive\n" with
  | _ -> Alcotest.fail "expected Script_error"
  | exception Script.Script_error { line = 2; _ } -> ());
  Sys.remove prog

(* Renderer round-trip: a mixed delta rendered to script lines parses back
   to Delta events whose merged ops equal the original's, per relation and
   sign, with the timestamp and database preserved. *)
let test_script_delta_roundtrip () =
  let d =
    Delta.merge
      (Delta.of_inserts "arc" [ [| 4; 5 |]; [| 5; 6 |] ])
      (Delta.merge
         (Delta.of_retracts "arc" [ [| 0; 1 |] ])
         (Delta.of_inserts "lab" [ [| 7 |] ]))
  in
  let lines = Script.render_delta ~at:2.5 ~edb:"g" d in
  let src =
    String.concat "\n"
      ("edb g arc:2 = 0 1" :: "edb g lab:1 = 7" :: lines)
  in
  let s = Script.parse src in
  let parsed =
    List.fold_left
      (fun acc -> function
        | Service.Delta { at; edb; delta } ->
            Alcotest.(check (float 1e-9)) "timestamp survives" 2.5 at;
            Alcotest.(check string) "database survives" "g" edb;
            Delta.merge acc delta
        | _ -> Alcotest.fail "expected only Delta events")
      Delta.empty s.Script.events
  in
  let sig_of d =
    List.map
      (fun rel ->
        ( rel,
          List.sort compare
            (List.map
               (fun (o : Delta.op) -> (o.Delta.sign, Array.to_list o.Delta.row))
               (Delta.ops d rel)) ))
      (List.sort compare (Delta.rels d))
  in
  Alcotest.(check bool) "ops round-trip" true (sig_of parsed = sig_of d)

(* --- degraded serves in the latency population --- *)

let test_degraded_latency_counted () =
  (* a served-but-degraded result must land in the latency percentiles,
     flagged and split out — not silently dropped from the population *)
  let module Memtrack = Rs_storage.Memtrack in
  let module Fault = Rs_chaos.Fault in
  let module Inject = Rs_chaos.Inject in
  Memtrack.hard_reset ();
  let s = store () in
  let threshold = Memtrack.live () + 256 in
  let config = Service.config ~workers:8 ~seed:1 () in
  let report =
    Inject.with_plan
      (Fault.plan ~seed:1 [ Fault.spec ~threshold ~limit:1 Fault.Mem ])
      (fun () ->
        Service.run ~config ~edb:s
          [ Service.Submit (Service.submission ~tenant:"t" ~edb:"g" tc) ])
  in
  let c = List.hd report.Service.completions in
  (match c.Service.c_outcome with
  | Service.Done _ -> ()
  | o -> Alcotest.fail ("expected done, got " ^ Service.outcome_label o));
  Alcotest.(check (option string))
    "flagged with the rung" (Some "half_workers") c.Service.c_degraded;
  Alcotest.(check int) "split out in the report" 1 report.Service.served_degraded;
  let lat = c.Service.c_finished -. c.Service.c_at in
  Alcotest.(check bool) "retry made it slow" true (lat > 0.0);
  (* the only served query is the degraded one: if degraded serves were
     excluded from the latency population these would read 0 *)
  Alcotest.(check (float 1e-9)) "p50 includes the degraded serve" lat
    report.Service.p50_latency;
  Alcotest.(check (float 1e-9)) "p999 includes the degraded serve" lat
    report.Service.p999_latency

(* --- aggregate program + delta: warm refresh must fall back, not raise --- *)

let test_service_aggregate_delta () =
  (* Ivm cannot maintain aggregates; a cached aggregate result crossing a
     small delta must be invalidated and recomputed, never surface
     Ivm.Unsupported to the tenant. Mix in a maintainable tc view so the
     warm path actually runs its view loop alongside the aggregate entry. *)
  let cc = Recstep.Programs.parsed Recstep.Programs.cc in
  let sub p ~at = Service.submission ~at ~tenant:"t" ~edb:"g" p in
  let events =
    [
      Service.Submit (sub cc ~at:0.0);
      Service.Submit (sub tc ~at:0.0);
      (* a disconnected edge: a second component, so the aggregate output
         (the set of min labels) actually changes *)
      Service.delta_event ~at:50.0 ~edb:"g" (Delta.of_inserts "arc" [ [| 9; 10 |] ]);
      Service.Submit (sub cc ~at:100.0);
      Service.Submit (sub tc ~at:100.0);
    ]
  in
  let r = Service.run ~edb:(store ()) events in
  check_identities r;
  Alcotest.(check int) "all four served" 4 (Service.counter r "done");
  Alcotest.(check int) "only tc builds a view" 1 (Service.counter r "view_built");
  Alcotest.(check int) "tc entry refreshed warm" 1 (Service.counter r "refreshed");
  Alcotest.(check bool) "aggregate entry invalidated" true
    (r.Service.cache.Result_cache.invalidations >= 1);
  (* the post-delta aggregate recompute must see the new vertex *)
  match List.filter_map
          (fun c -> match c.Service.c_outcome with Service.Done v -> Some v | _ -> None)
          r.Service.completions
  with
  | [ cc1; _; cc2; _ ] ->
      let nrows v = List.length (List.assoc "cc" v) in
      Alcotest.(check bool) "post-delta cc grew" true (nrows cc2 > nrows cc1)
  | vs -> Alcotest.fail (Printf.sprintf "expected 4 Done values, got %d" (List.length vs))

(* --- the explain API --- *)

let test_service_explain_warm () =
  let events =
    [
      Service.Submit (Service.submission ~at:0.0 ~tenant:"t" ~edb:"g" tc);
      Service.explain_event ~at:100.0 ~tenant:"t" ~edb:"g" ~pred:"tc" ~row:[ 0; 3 ] tc;
      Service.explain_event ~at:100.0 ~tenant:"t" ~edb:"g" ~pred:"tc" ~row:[ 0; 99 ] tc;
    ]
  in
  let r = Service.run ~edb:(store ()) events in
  Alcotest.(check int) "explains counted" 2 (Service.counter r "explain");
  match r.Service.explanations with
  | [ x1; x2 ] ->
      Alcotest.(check string) "derived fact explained" "explained" x1.Service.x_status;
      Alcotest.(check bool) "answered from the maintained view" true x1.Service.x_from_view;
      Alcotest.(check bool) "chain names rules" true (x1.Service.x_rules <> []);
      Alcotest.(check bool) "chain reaches edb leaves" true
        (let rec contains s sub i =
           i + String.length sub <= String.length s
           && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
         in
         contains x1.Service.x_text "[edb]" 0);
      (* the timeline join points at the tenant's served query *)
      (match x1.Service.x_latency with
      | Some ln ->
          Alcotest.(check string) "joined with q1" "q1" ln.Service.ln_query;
          Alcotest.(check string) "its outcome" "done" ln.Service.ln_outcome;
          Alcotest.(check bool) "span breakdown present" true (ln.Service.ln_spans <> [])
      | None -> Alcotest.fail "expected a latency note");
      Alcotest.(check string) "missing fact is absent" "absent" x2.Service.x_status
  | xs -> Alcotest.fail (Printf.sprintf "expected 2 explanations, got %d" (List.length xs))

let test_service_explain_cold_and_aggregate () =
  let cc = Recstep.Programs.parsed Recstep.Programs.cc in
  let events =
    [
      (* no prior submission: no view, the service evaluates once with
         provenance on — including for aggregate programs Ivm can't hold *)
      Service.explain_event ~at:0.0 ~tenant:"t" ~edb:"g" ~pred:"tc" ~row:[ 0; 3 ] tc;
      Service.explain_event ~at:0.0 ~tenant:"t" ~edb:"g" ~pred:"cc" ~row:[ 0 ] cc;
      Service.explain_event ~at:0.0 ~tenant:"t" ~edb:"nope" ~pred:"tc" ~row:[ 0; 3 ] tc;
    ]
  in
  let r = Service.run ~edb:(store ()) events in
  match r.Service.explanations with
  | [ x1; x2; x3 ] ->
      Alcotest.(check string) "cold tc explained" "explained" x1.Service.x_status;
      Alcotest.(check bool) "not from a view" false x1.Service.x_from_view;
      Alcotest.(check string) "aggregate fact explained" "explained" x2.Service.x_status;
      Alcotest.(check string) "unknown edb is a typed error" "error" x3.Service.x_status
  | xs -> Alcotest.fail (Printf.sprintf "expected 3 explanations, got %d" (List.length xs))

let test_service_explain_after_delta () =
  (* tags must survive Ivm.apply: the explained fact only exists after the
     delta, and the answer comes from the maintained view *)
  let events =
    [
      Service.Submit (Service.submission ~at:0.0 ~tenant:"t" ~edb:"g" tc);
      Service.delta_event ~at:50.0 ~edb:"g" (Delta.of_inserts "arc" [ [| 5; 6 |] ]);
      Service.explain_event ~at:100.0 ~tenant:"t" ~edb:"g" ~pred:"tc" ~row:[ 0; 6 ] tc;
    ]
  in
  let r = Service.run ~edb:(store ()) events in
  Alcotest.(check int) "view refreshed across the delta" 1 (Service.counter r "refreshed");
  match r.Service.explanations with
  | [ x ] ->
      Alcotest.(check string) "post-delta fact explained" "explained" x.Service.x_status;
      Alcotest.(check bool) "from the maintained view" true x.Service.x_from_view;
      Alcotest.(check bool) "chain names rules" true (x.Service.x_rules <> [])
  | xs -> Alcotest.fail (Printf.sprintf "expected 1 explanation, got %d" (List.length xs))

let suite =
  [
    Alcotest.test_case "program key canonicalization" `Quick test_program_key;
    Alcotest.test_case "result cache basics" `Quick test_result_cache;
    Alcotest.test_case "result cache LRU eviction" `Quick test_result_cache_lru;
    Alcotest.test_case "result cache hash collision" `Quick test_result_cache_collision;
    Alcotest.test_case "cache hit + invalidation on delta" `Quick
      test_service_cache_and_invalidation;
    Alcotest.test_case "warm refresh across a delta" `Quick test_service_warm_refresh;
    Alcotest.test_case "warm refresh across a retraction" `Quick test_service_warm_retract;
    Alcotest.test_case "refresh falls back past the threshold" `Quick
      test_service_refresh_fallback;
    Alcotest.test_case "shared indexes survive runs and deltas" `Quick
      test_service_shared_indexes;
    Alcotest.test_case "sharded serving with per-shard stats" `Quick test_service_sharded;
    Alcotest.test_case "admission: memory budget" `Quick test_admission_memory;
    Alcotest.test_case "admission: bounded queue" `Quick test_admission_queue_full;
    Alcotest.test_case "admission: unknown edb" `Quick test_admission_unknown_edb;
    Alcotest.test_case "deadline miss is a timeout" `Quick test_deadline_miss;
    Alcotest.test_case "deterministic replay" `Quick test_determinism;
    Alcotest.test_case "workload script parsing" `Quick test_script_parse;
    Alcotest.test_case "script delta render round-trip" `Quick test_script_delta_roundtrip;
    Alcotest.test_case "degraded serves counted in latency population" `Quick
      test_degraded_latency_counted;
    Alcotest.test_case "aggregate program + delta falls back to recompute" `Quick
      test_service_aggregate_delta;
    Alcotest.test_case "explain from a warm view" `Quick test_service_explain_warm;
    Alcotest.test_case "explain cold + aggregate + unknown edb" `Quick
      test_service_explain_cold_and_aggregate;
    Alcotest.test_case "explain across a delta" `Quick test_service_explain_after_delta;
  ]
