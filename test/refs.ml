(* Reference implementations used to validate the engines: straightforward,
   obviously-correct algorithms on edge lists. *)

module IntPairSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module IntSet = Set.Make (Int)

let pairs_of_relation r =
  let n = Rs_relation.Relation.nrows r in
  let rec go i acc =
    if i = n then acc
    else
      go (i + 1)
        (IntPairSet.add
           ( Rs_relation.Relation.get r ~row:i ~col:0,
             Rs_relation.Relation.get r ~row:i ~col:1 )
           acc)
  in
  go 0 IntPairSet.empty

(* transitive closure by iterated composition *)
let transitive_closure edges =
  let edges = IntPairSet.of_list edges in
  let rec fix tc =
    let next =
      IntPairSet.fold
        (fun (x, z) acc ->
          IntPairSet.fold
            (fun (z', y) acc -> if z = z' then IntPairSet.add (x, y) acc else acc)
            edges acc)
        tc tc
    in
    if IntPairSet.equal next tc then tc else fix next
  in
  fix edges

(* same generation: sg = { (x,y) | x<>y, same parent } closed under
   sg(x,y) <- arc(a,x), sg(a,b), arc(b,y) *)
let same_generation edges =
  let children a = List.filter_map (fun (p, c) -> if p = a then Some c else None) edges in
  let base =
    List.concat_map
      (fun (p, x) -> List.filter_map (fun (p', y) -> if p = p' && x <> y then Some (x, y) else None) edges)
      edges
  in
  let rec fix sg =
    let next =
      IntPairSet.fold
        (fun (a, b) acc ->
          List.fold_left
            (fun acc x ->
              List.fold_left (fun acc y -> IntPairSet.add (x, y) acc) acc (children b))
            acc (children a))
        sg sg
    in
    if IntPairSet.equal next sg then sg else fix next
  in
  fix (IntPairSet.of_list base)

let reachable edges sources =
  let rec bfs visited frontier =
    if IntSet.is_empty frontier then visited
    else begin
      let next =
        IntSet.fold
          (fun x acc ->
            List.fold_left
              (fun acc (u, v) -> if u = x && not (IntSet.mem v visited) then IntSet.add v acc else acc)
              acc edges)
          frontier IntSet.empty
      in
      bfs (IntSet.union visited next) next
    end
  in
  let init = IntSet.of_list sources in
  bfs init init

(* single-source shortest paths, weighted edges (x, y, d) *)
let dijkstra edges source =
  let dist = Hashtbl.create 64 in
  Hashtbl.replace dist source 0;
  let rec relax () =
    let changed = ref false in
    List.iter
      (fun (x, y, d) ->
        match Hashtbl.find_opt dist x with
        | Some dx ->
            let cand = dx + d in
            (match Hashtbl.find_opt dist y with
            | Some dy when dy <= cand -> ()
            | _ ->
                Hashtbl.replace dist y cand;
                changed := true)
        | None -> ())
      edges;
    if !changed then relax ()
  in
  relax ();
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) dist [] |> List.sort compare

(* connected components (directed edges propagate labels both... the paper's
   CC program propagates min labels along directed edges only) *)
let cc_min_label edges =
  let nodes = List.concat_map (fun (x, y) -> [ x; y ]) edges |> List.sort_uniq compare in
  (* the Datalog program: cc3(x, MIN(x)) :- arc(x, _). then propagation
     cc3(y, MIN(z)) :- cc3(x, z), arc(x, y). (directed!) *)
  let label = Hashtbl.create 64 in
  List.iter (fun (x, _) -> Hashtbl.replace label x (min x (Option.value (Hashtbl.find_opt label x) ~default:max_int))) edges;
  let rec fix () =
    let changed = ref false in
    List.iter
      (fun (x, y) ->
        match Hashtbl.find_opt label x with
        | Some lx -> (
            match Hashtbl.find_opt label y with
            | Some ly when ly <= lx -> ()
            | _ ->
                Hashtbl.replace label y lx;
                changed := true)
        | None -> ())
      edges;
    if !changed then fix ()
  in
  fix ();
  ignore nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) label [] |> List.sort compare

(* random small graph generator for qcheck *)
let arbitrary_edges ?(max_nodes = 12) ?(max_edges = 30) () =
  QCheck2.Gen.(
    let* n = int_range 1 max_nodes in
    let* m = int_range 0 max_edges in
    let* pairs = list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (List.sort_uniq compare pairs))

let relation_of_edges ?(name = "arc") edges =
  Recstep.Frontend.edges ~name edges

let sorted_pairs rows = List.sort compare (List.map (fun r -> (r.(0), r.(1))) rows)

(* --- fuzz regression corpus ---------------------------------------------
   Named (program source, EDB) cases diffed against the naive oracle across
   every engine and toggle configuration. The first two are minimal
   reproducers for real bugs the differential fuzzer caught. *)

let fuzz_corpus : (string * string * (string * int list list) list) list =
  [
    (* Souffle-like evaluated per-row equality checks before binding the
       row's registers, so a repeated variable inside one atom compared
       against a stale register (lost and phantom tuples). *)
    ( "repeated var with const and cmp",
      ".input e0\n.input e1\np0(w, w, w) :- e0(w, w), e1(1, w), w < 2.\n.output p0",
      [ ("e0", [ [ 1; 1 ] ]); ("e1", [ [ 1; 1 ] ]) ] );
    (* bddbddb-like sized its bit width from the EDB active domain only, so
       a rule constant wider than any EDB value was truncated and aliased a
       small value (phantom tuples). *)
    ( "rule constant wider than EDB domain",
      ".input e0\np0(y, y) :- e0(6, y).\n.output p0",
      [ ("e0", [ [ 0; 0 ] ]) ] );
    ( "tc over a disconnected graph",
      ".input e0\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y).\n\
       .output p0",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 5; 6 ]; [ 6; 5 ] ]) ] );
    ( "mutual recursion",
      ".input e0\n\
       p0(x, y) :- e0(x, y).\n\
       p1(x, y) :- p0(x, z), e0(z, y).\n\
       p0(x, y) :- p1(x, z), e0(z, y).\n\
       .output p0\n.output p1",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ]) ] );
    ( "negation against a lower stratum",
      ".input e0\n.input e1\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y).\n\
       p1(x, y) :- p0(x, y), !e1(x, y).\n\
       .output p0\n.output p1",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]); ("e1", [ [ 0; 2 ]; [ 1; 1 ] ]) ] );
    ( "duplicate identical rules",
      ".input e0\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y).\n\
       .output p0",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ] ]) ] );
    ( "comparisons and arithmetic",
      ".input e0\n\
       p0(x, y) :- e0(x, y), x < y, y <= 4.\n\
       p1(x) :- e0(x, y), y = x + 1.\n\
       .output p0\n.output p1",
      [ ("e0", [ [ 0; 1 ]; [ 1; 3 ]; [ 3; 7 ]; [ 2; 2 ]; [ 4; 5 ] ]) ] );
    ( "ternary recursion with wildcard",
      ".input e1\n\
       p0(x, y, z) :- e1(x, y, z).\n\
       p0(x, y, w) :- p0(x, y, _), e1(y, w, w).\n\
       .output p0",
      [ ("e1", [ [ 0; 1; 2 ]; [ 1; 2; 2 ]; [ 2; 0; 0 ] ]) ] );
    ( "empty edb",
      ".input e0\np0(x, y) :- e0(x, y).\np0(x, y) :- p0(x, z), e0(z, y).\n.output p0",
      [ ("e0", []) ] );
    (* Exercises every compiled-kernel shape in one case: a binary fused
       join with local predicates on both sides (p0), a unary project-only
       delta plan inside mutual recursion (p1), and a cold non-recursive
       head (p2) the cost gate keeps interpreted. Diffed across the toggle
       matrix this pins kernels-on against kernels-off and the oracle. *)
    ( "kernel shapes: fused join, unary project, cold head",
      ".input e0\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y), y != x.\n\
       p1(y, x) :- p0(x, y).\n\
       p0(x, y) :- p1(x, z), e0(z, y).\n\
       p2(x) :- p0(x, x).\n\
       .output p0\n.output p1\n.output p2",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ]; [ 2; 2 ] ]) ] );
  ]

(* --- delta-sequence regression corpus -----------------------------------
   Named (program source, EDB, delta stream) cases for the IVM: each delta
   is an ordered op list (is_insert, relation, row); after every applied
   delta the maintained IDB state must equal a from-scratch naive recompute
   on the mirrored EDB. The streams pin the retraction edge cases: real
   deletions under recursion (DRed overdelete/rederive), flip-flops inside
   one delta, retracts of absent rows, and a deletion that empties the
   relation. *)

let delta_corpus :
    (string * string * (string * int list list) list * (bool * string * int list) list list)
    list =
  [
    ( "tc churn: grow, cut, heal, no-op retract",
      ".input e0\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y).\n\
       .output p0",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]) ],
      [
        [ (true, "e0", [ 3; 4 ]) ];
        [ (false, "e0", [ 1; 2 ]); (true, "e0", [ 4; 0 ]) ];
        [ (false, "e0", [ 9; 9 ]) ];
        [ (true, "e0", [ 1; 2 ]) ];
      ] );
    ( "dred rederivation: shortcut survives the cut",
      ".input e0\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y).\n\
       .output p0",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]) ],
      [ [ (false, "e0", [ 0; 1 ]) ]; [ (false, "e0", [ 0; 2 ]) ] ] );
    ( "negation stratum: flip-flop nets out, then flips",
      ".input e0\n.input e1\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y).\n\
       p1(x, y) :- p0(x, y), !e1(x, y).\n\
       .output p0\n.output p1",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ] ]); ("e1", [ [ 0; 2 ] ]) ],
      [
        [ (false, "e1", [ 0; 2 ]); (true, "e1", [ 0; 2 ]) ];
        [ (false, "e1", [ 0; 2 ]); (true, "e1", [ 0; 1 ]) ];
      ] );
    ( "retraction empties the relation",
      ".input e0\np0(x, y) :- e0(x, y).\np0(x, y) :- p0(x, z), e0(z, y).\n.output p0",
      [ ("e0", [ [ 0; 1 ]; [ 1; 0 ] ]) ],
      [ [ (false, "e0", [ 0; 1 ]) ]; [ (false, "e0", [ 1; 0 ]) ] ] );
  ]

(* Frozen chaos regressions: one small recursive program run through the
   serving stack under a fixed fault plan, with the expected outcome label
   of each of the two identical submissions. Labels were frozen from
   observed behaviour at a fixed case seed; drift means the retry ladder,
   the fault vocabulary, or the service recovery loop changed semantics. *)

let chaos_src =
  ".input e0\n\
   p0(x, y) :- e0(x, y).\n\
   p0(x, y) :- p0(x, z), e0(z, y).\n\
   .output p0"

let chaos_edb = [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ]) ]

let chaos_corpus : (string * string * string list) list =
  [
    ("single txn abort is retried", "txn:p=1,limit=1", [ "done"; "done" ]);
    ("single worker crash is retried", "crash:p=1,limit=1", [ "done"; "done" ]);
    ("persistent crash ends in a typed fault", "crash:p=1", [ "fault"; "fault" ]);
    ("hard memory pressure ends in a typed oom", "mem:p=1,threshold=256", [ "oom"; "oom" ]);
    ("single index build failure is retried", "index:p=1,limit=1", [ "done"; "done" ]);
    ("corrupted cache entry is recomputed", "cache:p=1,limit=1", [ "done"; "done" ]);
    ("memory blip degrades and completes", "mem:p=1,threshold=1024,limit=1", [ "done"; "done" ]);
    (* Delta_abort fires inside Edb_store.apply's staging loop: the store
       rolls back atomically (version and rows untouched), the cache keeps
       serving the pre-delta version, and both submissions still answer
       correctly — the harness checks rows against the store's final state. *)
    ("aborted delta leaves store and cache consistent", "delta:p=1", [ "done"; "done" ]);
    ("single delta abort only loses that delta", "delta:p=1,limit=1", [ "done"; "done" ]);
    (* Shard classes route the case through the sharded executor (4 nodes):
       each stratum snapshots committed state, so a bounded plan is
       recovered in place and stays invisible in the outputs, while an
       unbounded one exhausts the recovery budget and the fault escapes as
       a typed rejection. *)
    ("lost shard node is recovered in place", "node_loss:p=1,limit=1", [ "done"; "done" ]);
    ("dropped shuffle is recovered in place", "shuffle_drop:p=1,limit=2", [ "done"; "done" ]);
    ("persistent node loss ends in a typed fault", "node_loss:p=1", [ "fault"; "fault" ]);
    (* Kernel_fail is the one class the interpreter absorbs entirely: a
       fired compile probe leaves the rule interpreted, a fired exec probe
       degrades that round before anything is written, and in both cases
       the submission completes with the exact interpreted answer. *)
    ("kernel faults fall back to the interpreted path", "kernel:p=1", [ "done"; "done" ]);
  ]

(* --- explain regression corpus -------------------------------------------
   Frozen derivation chains: (tag, program, EDB, goal pred, goal row,
   expected tag-free render). Explain's proof search is deterministic over
   the final database alone — rules in source order, candidate premise rows
   in lexicographic order — so every engine that can evaluate the program
   must yield this exact chain, byte for byte, from its own result
   relations. Drift means the search order, the render format, or an
   engine's result rows changed. *)

let explain_corpus :
    (string * string * (string * int list list) list * string * int list * string) list =
  [
    ( "tc chain to edb leaves",
      ".input e0\np0(x, y) :- e0(x, y).\np0(x, y) :- p0(x, z), e0(z, y).\n.output p0",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]) ],
      "p0",
      [ 0; 3 ],
      "p0(0, 3) <= rule 2: p0(x, y) :- p0(x, z), e0(z, y).\n\
      \  p0(0, 2) <= rule 2: p0(x, y) :- p0(x, z), e0(z, y).\n\
      \    p0(0, 1) <= rule 1: p0(x, y) :- e0(x, y).\n\
      \      e0(0, 1) [edb]\n\
      \    e0(1, 2) [edb]\n\
      \  e0(2, 3) [edb]" );
    ( "sg chain with comparison premise",
      ".input e0\n\
       sg(x, y) :- e0(a, x), e0(a, y), x != y.\n\
       sg(x, y) :- e0(a, x), sg(a, b), e0(b, y).\n\
       .output sg",
      [ ("e0", [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2; 4 ] ]) ],
      "sg",
      [ 3; 4 ],
      "sg(3, 4) <= rule 2: sg(x, y) :- e0(a, x), sg(a, b), e0(b, y).\n\
      \  e0(1, 3) [edb]\n\
      \  sg(1, 2) <= rule 1: sg(x, y) :- e0(a, x), e0(a, y), x != y.\n\
      \    e0(0, 1) [edb]\n\
      \    e0(0, 2) [edb]\n\
      \    [1 != 2]\n\
      \  e0(2, 4) [edb]" );
    ( "negation chain with absence leaf",
      ".input e0\n.input e1\n\
       p0(x, y) :- e0(x, y).\n\
       p0(x, y) :- p0(x, z), e0(z, y).\n\
       p1(x, y) :- p0(x, y), !e1(x, y).\n\
       .output p0\n.output p1",
      [ ("e0", [ [ 0; 1 ]; [ 1; 2 ] ]); ("e1", [ [ 0; 1 ] ]) ],
      "p1",
      [ 0; 2 ],
      "p1(0, 2) <= rule 3: p1(x, y) :- p0(x, y), !e1(x, y).\n\
      \  p0(0, 2) <= rule 2: p0(x, y) :- p0(x, z), e0(z, y).\n\
      \    p0(0, 1) <= rule 1: p0(x, y) :- e0(x, y).\n\
      \      e0(0, 1) [edb]\n\
      \    e0(1, 2) [edb]\n\
      \  !e1(0, 2) [absent]" );
  ]
