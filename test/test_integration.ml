(* End-to-end integration tests: multi-stratum programs, the frontend's file
   I/O, engine internals on structured scenarios, and cross-checks between
   the interpreter's statistics and expected behaviour. *)

module Frontend = Recstep.Frontend
module Interpreter = Recstep.Interpreter
module Relation = Rs_relation.Relation

let check = Alcotest.(check bool)

let run ?options src edb = fst (Frontend.run_text ?options ~edb src)

(* --- frontend file I/O --- *)

let test_tsv_roundtrip () =
  let path = Filename.temp_file "recstep_test" ".tsv" in
  let r = Relation.of_rows 3 [ [| 1; 2; 3 |]; [| 40; 50; 60 |]; [| 7; 8; 9 |] ] in
  Frontend.save_tsv r path;
  let back = Frontend.load_tsv ~arity:3 path in
  Sys.remove path;
  check "roundtrip" true (Relation.to_rows r = Relation.to_rows back)

let test_tsv_comments_and_spaces () =
  let path = Filename.temp_file "recstep_test" ".tsv" in
  let oc = open_out path in
  output_string oc "# a comment\n1 2\n\n3\t4\n";
  close_out oc;
  let r = Frontend.load_tsv ~arity:2 path in
  Sys.remove path;
  Alcotest.(check int) "two tuples" 2 (Relation.nrows r);
  Alcotest.(check int) "tab-separated too" 4 (Relation.get r ~row:1 ~col:1)

(* --- multi-stratum programs --- *)

let test_three_strata_negation_chain () =
  (* base <- derived <- doubly-derived with negation at each boundary *)
  let src =
    {|
.input e
a(x) :- e(x, _).
b(x) :- e(_, x), !a(x).
c(x) :- a(x), !b(x).
.output c
|}
  in
  let e = Frontend.edges ~name:"e" [ (1, 2); (2, 3); (4, 5) ] in
  let r = run src [ ("e", e) ] in
  (* a = {1,2,4}; b = targets not in a = {3,5}; c = a minus b = a *)
  Alcotest.(check (list int)) "c" [ 1; 2; 4 ]
    (List.sort compare (List.map (fun t -> t.(0)) (Frontend.result_rows r "c")))

let test_mutual_recursion_even_odd () =
  let src =
    {|
.input next
even(0).
odd(y) :- even(x), next(x, y).
even(y) :- odd(x), next(x, y).
.output even
.output odd
|}
  in
  let next = Frontend.edges ~name:"next" (List.init 9 (fun i -> (i, i + 1))) in
  let r = run src [ ("next", next) ] in
  let vals name = List.sort compare (List.map (fun t -> t.(0)) (Frontend.result_rows r name)) in
  Alcotest.(check (list int)) "even" [ 0; 2; 4; 6; 8 ] (vals "even");
  Alcotest.(check (list int)) "odd" [ 1; 3; 5; 7; 9 ] (vals "odd")

let test_aggregate_after_recursion () =
  (* non-recursive MAX over a recursive relation in a lower stratum *)
  let src =
    {|
.input arc
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
far(x, MAX(y)) :- tc(x, y).
.output far
|}
  in
  let r = run src [ ("arc", Frontend.edges [ (1, 2); (2, 3); (5, 4) ]) ] in
  Alcotest.(check (list (pair int int))) "max reached"
    [ (1, 3); (2, 3); (5, 4) ]
    (List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Frontend.result_rows r "far")))

let test_sum_and_avg_aggregates () =
  let src =
    {|
.input m
s(x, SUM(v)) :- m(x, v).
a(x, AVG(v)) :- m(x, v).
n(x, COUNT(v)) :- m(x, v).
.output s
.output a
.output n
|}
  in
  let m = Frontend.relation_of_list ~name:"m" 2 [ [| 1; 10 |]; [| 1; 20 |]; [| 2; 5 |] ] in
  let r = run src [ ("m", m) ] in
  let get name = List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Frontend.result_rows r name)) in
  Alcotest.(check (list (pair int int))) "sum" [ (1, 30); (2, 5) ] (get "s");
  Alcotest.(check (list (pair int int))) "avg" [ (1, 15); (2, 5) ] (get "a");
  Alcotest.(check (list (pair int int))) "count" [ (1, 2); (2, 1) ] (get "n")

let test_count_is_set_semantics () =
  (* duplicate body derivations must not inflate COUNT *)
  let src =
    {|
.input e1
.input e2
both(x, y) :- e1(x, y).
both(x, y) :- e2(x, y).
deg(x, COUNT(y)) :- both(x, y).
.output deg
|}
  in
  let e = [ (1, 7); (1, 8) ] in
  let r =
    run src
      [ ("e1", Frontend.edges ~name:"e1" e); ("e2", Frontend.edges ~name:"e2" e) ]
  in
  Alcotest.(check (list (pair int int))) "count over distinct" [ (1, 2) ]
    (List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Frontend.result_rows r "deg")))

let test_constants_in_bodies_and_heads () =
  let src =
    {|
.input e
from_two(y) :- e(2, y).
tagged(x, 99) :- e(x, _).
.output from_two
.output tagged
|}
  in
  let r = run src [ ("e", Frontend.edges ~name:"e" [ (1, 5); (2, 6); (2, 7) ]) ] in
  Alcotest.(check (list int)) "constant filter" [ 6; 7 ]
    (List.sort compare (List.map (fun t -> t.(0)) (Frontend.result_rows r "from_two")));
  check "constant head column" true
    (List.for_all (fun t -> t.(1) = 99) (Frontend.result_rows r "tagged"))

let test_cross_product_rule () =
  let src = {|
.input a
.input b
pairs(x, y) :- a(x), b(y).
.output pairs
|} in
  let a = Frontend.relation_of_list ~name:"a" 1 [ [| 1 |]; [| 2 |] ] in
  let b = Frontend.relation_of_list ~name:"b" 1 [ [| 8 |]; [| 9 |] ] in
  let r = run src [ ("a", a); ("b", b) ] in
  Alcotest.(check int) "2x2 pairs" 4 (List.length (Frontend.result_rows r "pairs"))

let test_repeated_var_in_atom () =
  let src = {|
.input e
loop(x) :- e(x, x).
.output loop
|} in
  let r = run src [ ("e", Frontend.edges ~name:"e" [ (1, 1); (1, 2); (3, 3) ]) ] in
  Alcotest.(check (list int)) "self loops" [ 1; 3 ]
    (List.sort compare (List.map (fun t -> t.(0)) (Frontend.result_rows r "loop")))

let test_long_chain_iterations () =
  (* a 120-vertex path: the fixpoint needs ~120 iterations (CSDA shape) *)
  let n = 120 in
  let arc = Frontend.edges (List.init (n - 1) (fun i -> (i, i + 1))) in
  let options = { Interpreter.default_options with pbme = false } in
  let r = run ~options Recstep.Programs.tc [ ("arc", arc) ] in
  Alcotest.(check int) "closure size" (n * (n - 1) / 2)
    (List.length (Frontend.result_rows r "tc"));
  check "many iterations" true (r.Interpreter.iterations >= n - 2)

let test_empty_edb_fixpoint () =
  let r = run Recstep.Programs.tc [ ("arc", Frontend.edges []) ] in
  Alcotest.(check int) "empty closure" 0 (List.length (Frontend.result_rows r "tc"))

(* --- engine internals on structured scenarios --- *)

let test_souffle_long_chain () =
  (* exercises the incremental indices over many iterations *)
  let module E = (val Rs_engines.Engines.souffle_like : Rs_engines.Engine_intf.S) in
  let n = 60 in
  let arc = Frontend.edges (List.init (n - 1) (fun i -> (i, i + 1))) in
  let pool = Rs_parallel.Pool.create ~workers:4 () in
  Rs_parallel.Pool.begin_run pool;
  let result = E.run ~pool ~edb:[ ("arc", arc) ] (Recstep.Parser.parse Recstep.Programs.tc) in
  let lookup = result.Rs_engines.Engine_intf.relation_of in
  Alcotest.(check int) "chain closure" (n * (n - 1) / 2)
    (List.length (Relation.sorted_distinct_rows (lookup "tc")))

let test_graspan_three_atom_chain () =
  (* CSPA's memoryAlias rule normalizes through an auxiliary label *)
  let module E = (val Rs_engines.Engines.graspan_like : Rs_engines.Engine_intf.S) in
  let assign = Frontend.edges ~name:"assign" [ (1, 2) ] in
  let deref = Frontend.edges ~name:"dereference" [ (1, 10); (2, 10) ] in
  let pool = Rs_parallel.Pool.create ~workers:4 () in
  Rs_parallel.Pool.begin_run pool;
  let result =
    E.run ~pool ~edb:[ ("assign", assign); ("dereference", deref) ]
      (Recstep.Parser.parse Recstep.Programs.cspa)
  in
  let lookup = result.Rs_engines.Engine_intf.relation_of in
  check "memoryAlias computed through aux label" true
    (List.length (Relation.sorted_distinct_rows (lookup "memoryAlias")) > 0)

let test_bigdatalog_recursive_aggregation () =
  (* BigDatalog supports recursive MIN (CC) even though mutual recursion is
     out of its fragment *)
  let module E = (val Rs_engines.Engines.bigdatalog_like : Rs_engines.Engine_intf.S) in
  let arc = Frontend.edges [ (3, 1); (1, 3); (5, 6) ] in
  let pool = Rs_parallel.Pool.create ~workers:4 () in
  Rs_parallel.Pool.begin_run pool;
  let result = E.run ~pool ~edb:[ ("arc", arc) ] (Recstep.Parser.parse Recstep.Programs.cc) in
  let lookup = result.Rs_engines.Engine_intf.relation_of in
  Alcotest.(check (list int)) "component labels" [ 1; 5 ]
    (List.sort compare (List.map (fun t -> t.(0)) (Relation.sorted_distinct_rows (lookup "cc"))))

let test_interpreter_dsd_switches () =
  (* on a long-running TC the DSD chooser should use both translations *)
  let arc = Rs_datagen.Graphs.gnp ~seed:17 ~n:400 ~p:0.02 in
  let options =
    { Interpreter.default_options with pbme = false; dsd = Interpreter.Dsd_dynamic }
  in
  let r = run ~options Recstep.Programs.tc [ ("arc", arc) ] in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Interpreter.dsd_choices in
  check "dsd consulted every iteration" true (total >= r.Interpreter.iterations - 1)

let test_share_builds_toggle_same_result () =
  let arc () = Rs_datagen.Graphs.gnp ~seed:23 ~n:80 ~p:0.05 in
  let result share =
    let options = { Interpreter.default_options with share_builds = share; pbme = false } in
    let r = run ~options Recstep.Programs.tc [ ("arc", arc ()) ] in
    Frontend.result_rows r "tc"
  in
  check "cache sharing preserves results" true (result true = result false)

let test_workers_do_not_change_results () =
  let arc () = Rs_datagen.Graphs.rmat ~seed:29 ~n:256 ~m:1024 in
  let result workers =
    let r, _ =
      Frontend.run_text ~workers ~edb:[ ("arc", arc ()) ] Recstep.Programs.cc
    in
    Frontend.result_rows r "cc3"
  in
  check "1 worker = 16 workers" true (result 1 = result 16)

let suite =
  [
    Alcotest.test_case "tsv roundtrip" `Quick test_tsv_roundtrip;
    Alcotest.test_case "tsv comments/spaces" `Quick test_tsv_comments_and_spaces;
    Alcotest.test_case "three strata with negation" `Quick test_three_strata_negation_chain;
    Alcotest.test_case "mutual recursion even/odd" `Quick test_mutual_recursion_even_odd;
    Alcotest.test_case "aggregate after recursion" `Quick test_aggregate_after_recursion;
    Alcotest.test_case "SUM/AVG/COUNT" `Quick test_sum_and_avg_aggregates;
    Alcotest.test_case "COUNT set semantics" `Quick test_count_is_set_semantics;
    Alcotest.test_case "constants in bodies/heads" `Quick test_constants_in_bodies_and_heads;
    Alcotest.test_case "cross product rule" `Quick test_cross_product_rule;
    Alcotest.test_case "repeated var in atom" `Quick test_repeated_var_in_atom;
    Alcotest.test_case "long chain iterations" `Quick test_long_chain_iterations;
    Alcotest.test_case "empty EDB" `Quick test_empty_edb_fixpoint;
    Alcotest.test_case "souffle long chain" `Quick test_souffle_long_chain;
    Alcotest.test_case "graspan 3-atom chain" `Quick test_graspan_three_atom_chain;
    Alcotest.test_case "bigdatalog recursive agg" `Quick test_bigdatalog_recursive_aggregation;
    Alcotest.test_case "DSD consulted per iteration" `Quick test_interpreter_dsd_switches;
    Alcotest.test_case "share_builds same results" `Quick test_share_builds_toggle_same_result;
    Alcotest.test_case "worker count invariance" `Quick test_workers_do_not_change_results;
  ]
