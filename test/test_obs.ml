module Json = Rs_obs.Json
module Trace = Rs_obs.Trace
module Pool = Rs_parallel.Pool
module Engine_intf = Rs_engines.Engine_intf
module Engines = Rs_engines.Engines
module Interpreter = Recstep.Interpreter
module Frontend = Recstep.Frontend

let check = Alcotest.(check bool)

(* a hand-cranked clock so span timestamps are deterministic *)
let fake_clock () =
  let t = ref 0.0 in
  let trace = Trace.create ~now:(fun () -> !t) () in
  (trace, fun dt -> t := !t +. dt)

let test_span_nesting () =
  let tr, tick = fake_clock () in
  Trace.begin_span tr ~kind:"a" "outer";
  tick 1.0;
  Trace.begin_span tr ~kind:"b" "inner";
  tick 0.5;
  Alcotest.(check int) "two open" 2 (Trace.open_spans tr);
  Trace.end_span tr;
  Trace.end_span tr;
  Trace.end_span tr;
  (* extra end_span is a no-op *)
  Alcotest.(check int) "balanced" 0 (Trace.open_spans tr);
  match Trace.spans tr with
  | [ outer; inner ] ->
      check "outer first" true (outer.Trace.sp_name = "outer" && outer.Trace.sp_depth = 0);
      check "inner nested" true (inner.Trace.sp_name = "inner" && inner.Trace.sp_depth = 1);
      check "outer spans inner" true
        (outer.Trace.sp_start <= inner.Trace.sp_start
        && Option.get inner.Trace.sp_stop <= Option.get outer.Trace.sp_stop)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l))

let test_span_closes_on_raise () =
  let tr, _ = fake_clock () in
  (try Trace.span tr ~kind:"a" "failing" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "closed despite raise" 0 (Trace.open_spans tr)

let test_counters_monotone () =
  let tr, _ = fake_clock () in
  Trace.count tr "x" 3;
  Trace.count tr "x" 0;
  Trace.count tr "x" 4;
  Alcotest.(check int) "accumulated" 7 (Trace.counter tr "x");
  Alcotest.(check int) "absent is 0" 0 (Trace.counter tr "y");
  check "negative increment rejected" true
    (match Trace.count tr "x" (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check int) "unchanged after reject" 7 (Trace.counter tr "x")

let test_json_roundtrip_values () =
  let v =
    Json.Obj
      [
        ("s", Json.String "he said \"hi\"\n\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.30000000000000004);
        ("inf", Json.Float infinity);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
      ]
  in
  let s = Json.to_string v in
  (* non-finite floats serialize as null, so compare after one round *)
  let once = Json.of_string s in
  let twice = Json.of_string (Json.to_string once) in
  check "fixpoint after one round" true (once = twice);
  check "float survives" true
    (Json.to_float (Json.member "f" once) = 0.30000000000000004);
  check "infinity becomes null" true (Json.member "inf" once = Json.Null);
  check "trailing garbage rejected" true
    (match Json.of_string "{} x" with
    | _ -> false
    | exception Json.Parse_error _ -> true)

(* a small TC instance that needs a few recursive iterations *)
let tc_edb () = [ ("arc", Frontend.edges [ (0, 1); (1, 2); (2, 3); (3, 4) ]) ]

let traced_tc_run () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let trace = Trace.create ~now:(fun () -> Pool.vtime_now pool) () in
  (* pbme off: the relational path is what exercises executor/dedup/storage *)
  let options = Interpreter.options ~pbme:false ~trace () in
  let result =
    Interpreter.run ~options ~pool ~edb:(tc_edb ())
      (Recstep.Parser.parse Recstep.Programs.tc)
  in
  (trace, result)

let test_trace_covers_subsystems () =
  let trace, result = traced_tc_run () in
  Alcotest.(check int) "all spans closed" 0 (Trace.open_spans trace);
  let kinds =
    List.sort_uniq compare (List.map (fun s -> s.Trace.sp_kind) (Trace.spans trace))
  in
  List.iter
    (fun k -> check ("has " ^ k ^ " spans") true (List.mem k kinds))
    [ "storage"; "dedup"; "executor"; "interpreter" ];
  (* the per-iteration timeline matches the interpreter's own count: TC has a
     single IDB, so one record per counted iteration *)
  Alcotest.(check int) "iteration records"
    result.Interpreter.iterations
    (List.length (Trace.iterations trace));
  Alcotest.(check int) "iterations counter"
    result.Interpreter.iterations
    (Trace.counter trace "interpreter.iterations");
  check "queries counted" true
    (Trace.counter trace "executor.queries" = result.Interpreter.queries)

let test_trace_json_roundtrip () =
  let trace, _ = traced_tc_run () in
  let j = Trace.to_json trace in
  let s = Json.to_string j in
  check "round-trips" true (Json.of_string s = j);
  let arr name = Json.to_list (Json.member name j) in
  Alcotest.(check int) "spans serialized" (List.length (Trace.spans trace)) (List.length (arr "spans"));
  Alcotest.(check int) "iterations serialized"
    (List.length (Trace.iterations trace))
    (List.length (arr "iterations"));
  check "summary renders" true (String.length (Trace.summary trace) > 0)

(* --- run_guarded: each simulated failure maps to its outcome --- *)

let guarded ?deadline_vs engine =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  Engine_intf.run_guarded engine ~pool ?deadline_vs ~edb:(tc_edb ())
    (Recstep.Parser.parse Recstep.Programs.tc)

let test_run_guarded_done () =
  match guarded Engines.recstep with
  | Engine_intf.Done r ->
      Alcotest.(check int) "tc of a 5-chain" 10
        (List.length
           (Rs_relation.Relation.sorted_distinct_rows (r.Engine_intf.relation_of "tc")));
      check "iterations reported" true (r.Engine_intf.iterations > 0);
      check "pool stats captured" true (r.Engine_intf.pool_stats.Pool.vtime > 0.0)
  | _ -> Alcotest.fail "expected Done"

let test_run_guarded_timeout () =
  match guarded ~deadline_vs:0.0 Engines.recstep with
  | Engine_intf.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout"

let test_run_guarded_oom () =
  Rs_storage.Memtrack.hard_reset ();
  (* build the inputs first, then leave almost no headroom for the run *)
  let edb = [ ("arc", Frontend.edges (List.init 63 (fun i -> (i, i + 1)))) ] in
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  Rs_storage.Memtrack.set_budget (Some (Rs_storage.Memtrack.live () + 200));
  let outcome =
    Engine_intf.run_guarded Engines.recstep ~pool ~edb
      (Recstep.Parser.parse Recstep.Programs.tc)
  in
  Rs_storage.Memtrack.set_budget None;
  Rs_storage.Memtrack.hard_reset ();
  match outcome with
  | Engine_intf.Oom -> ()
  | _ -> Alcotest.fail "expected Oom"

let test_run_guarded_unsupported () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  (* recursive aggregation (CC) is outside Souffle's fragment *)
  match
    Engine_intf.run_guarded Engines.souffle_like ~pool
      ~edb:[ ("arc", Frontend.edges [ (0, 1) ]) ]
      (Recstep.Parser.parse Recstep.Programs.cc)
  with
  | Engine_intf.Unsupported m -> check "has a reason" true (String.length m > 0)
  | _ -> Alcotest.fail "expected Unsupported"

(* --- histogram / percentile edge cases --- *)

module Histogram = Rs_obs.Histogram

let test_percentile_sorted_edges () =
  let p = Histogram.percentile_sorted in
  Alcotest.(check (float 0.0)) "empty is 0" 0.0 (p [||] 95.0);
  (* single element: every percentile is that element *)
  List.iter
    (fun q -> Alcotest.(check (float 0.0)) "singleton" 0.25 (p [| 0.25 |] q))
    [ 0.0; 50.0; 99.9; 100.0 ];
  let a = [| 0.1; 0.2; 0.3; 0.4 |] in
  Alcotest.(check (float 0.0)) "p100 is max" 0.4 (p a 100.0);
  Alcotest.(check (float 0.0)) "p0 clamps to min" 0.1 (p a 0.0);
  (* nearest-rank: ceil(p/100 * n) - 1, the seed report's convention *)
  Alcotest.(check (float 0.0)) "p50 of 4" 0.2 (p a 50.0);
  Alcotest.(check (float 0.0)) "p75 of 4" 0.3 (p a 75.0);
  Alcotest.(check (float 0.0)) "p95 of 4" 0.4 (p a 95.0);
  (* duplicate latencies collapse to the same answer *)
  let d = [| 0.5; 0.5; 0.5; 0.5; 0.5 |] in
  List.iter
    (fun q -> Alcotest.(check (float 0.0)) "duplicates" 0.5 (p d q))
    [ 0.0; 50.0; 95.0; 100.0 ];
  (* parity with the List.nth walk it replaced *)
  let legacy l q =
    let n = List.length l in
    let idx =
      min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n /. 100.0)) - 1))
    in
    List.nth l idx
  in
  let pop = [ 0.001; 0.02; 0.02; 0.3; 0.7; 1.5; 4.0 ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        "matches the seed walk" (legacy pop q)
        (p (Array.of_list pop) q))
    [ 0.0; 10.0; 50.0; 90.0; 95.0; 99.0; 99.9; 100.0 ]

let test_histogram_buckets () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty histogram is 0" 0.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "empty mean is 0" 0.0 (Histogram.mean h);
  Histogram.add h 0.2;
  (* single sample: exact at every quantile via the min/max clamp *)
  List.iter
    (fun q -> Alcotest.(check (float 0.0)) "single sample exact" 0.2 (Histogram.percentile h q))
    [ 0.0; 50.0; 99.9; 100.0 ];
  for i = 1 to 999 do
    Histogram.add h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check (float 0.0)) "min exact" 0.001 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 0.999 (Histogram.max_value h);
  Alcotest.(check (float 0.0)) "p100 clamps to max" 0.999 (Histogram.percentile h 100.0);
  (* log buckets: ~9% relative resolution against the exact rank *)
  List.iter
    (fun q ->
      let exact =
        Histogram.percentile_sorted
          (Array.init 1000 (fun i ->
               if i = 0 then 0.2 else float_of_int i /. 1000.0)
           |> fun a -> Array.sort compare a; a)
          q
      in
      let est = Histogram.percentile h q in
      check "within bucket resolution" (abs_float (est -. exact) /. exact < 0.10) true)
    [ 50.0; 95.0; 99.0 ];
  (* negative values clamp into the lowest bucket rather than exploding *)
  let n = Histogram.create () in
  Histogram.add n (-1.0);
  Alcotest.(check int) "negative recorded" 1 (Histogram.count n);
  check "negative clamps low" (Histogram.percentile n 50.0 <= 1e-6) true;
  (* merge preserves the population *)
  let m = Histogram.create () in
  Histogram.add m 10.0;
  Histogram.merge ~into:m n;
  Alcotest.(check int) "merged count" 2 (Histogram.count m);
  Alcotest.(check (float 0.0)) "merged max" 10.0 (Histogram.max_value m)

(* Zero-sample SLO accounting: an empty histogram must not fabricate
   quantiles — the JSON carries only the count, and the scalar accessors
   stay at their documented zeros rather than NaN or the infinities the
   record seeds min/max with. *)
let test_histogram_empty_json () =
  let module Json = Rs_obs.Json in
  let h = Histogram.create () in
  (match Histogram.quantile_json h with
  | Json.Obj kvs ->
      Alcotest.(check (list string)) "empty emits only count" [ "count" ] (List.map fst kvs);
      Alcotest.(check int) "count is 0" 0 (Json.to_int (List.assoc "count" kvs))
  | _ -> Alcotest.fail "quantile_json must be an object");
  check "empty min is finite" (Float.is_finite (Histogram.min_value h)) true;
  check "empty max is finite" (Float.is_finite (Histogram.max_value h)) true;
  check "empty percentile is not NaN" (not (Float.is_nan (Histogram.percentile h 99.0))) true;
  (* one sample flips the report to the full fixed quantile set *)
  Histogram.add h 0.3;
  (match Histogram.quantile_json h with
  | Json.Obj kvs ->
      Alcotest.(check (list string)) "non-empty carries the quantile set"
        [ "count"; "mean"; "min"; "max"; "p50"; "p95"; "p99"; "p999" ]
        (List.map fst kvs)
  | _ -> Alcotest.fail "quantile_json must be an object")

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span closes on raise" `Quick test_span_closes_on_raise;
    Alcotest.test_case "counters monotone" `Quick test_counters_monotone;
    Alcotest.test_case "json value round-trip" `Quick test_json_roundtrip_values;
    Alcotest.test_case "trace covers subsystems" `Quick test_trace_covers_subsystems;
    Alcotest.test_case "trace json round-trip" `Quick test_trace_json_roundtrip;
    Alcotest.test_case "run_guarded Done" `Quick test_run_guarded_done;
    Alcotest.test_case "run_guarded Timeout" `Quick test_run_guarded_timeout;
    Alcotest.test_case "run_guarded Oom" `Quick test_run_guarded_oom;
    Alcotest.test_case "run_guarded Unsupported" `Quick test_run_guarded_unsupported;
    Alcotest.test_case "percentile_sorted edge cases" `Quick
      test_percentile_sorted_edges;
    Alcotest.test_case "histogram buckets, clamps and merge" `Quick
      test_histogram_buckets;
    Alcotest.test_case "empty histogram omits quantiles" `Quick
      test_histogram_empty_json;
  ]
