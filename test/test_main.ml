let () =
  Alcotest.run "recstep"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("parallel", Test_parallel.suite);
      ("storage", Test_storage.suite);
      ("relation", Test_relation.suite);
      ("exec", Test_exec.suite);
      ("kernel", Test_kernel.suite);
      ("core", Test_core.suite);
      ("explain", Test_explain.suite);
      ("ivm", Test_ivm.suite);
      ("bitmatrix", Test_bitmatrix.suite);
      ("bdd", Test_bdd.suite);
      ("engines", Test_engines.suite);
      ("service", Test_service.suite);
      ("load", Test_load.suite);
      ("datagen", Test_datagen.suite);
      ("integration", Test_integration.suite);
      ("invariants", Test_invariants.suite);
      ("shard", Test_shard.suite);
      ("fuzz", Test_fuzz.suite);
      ("chaos", Test_chaos.suite);
      ("benchkit", Test_benchkit.suite);
    ]
