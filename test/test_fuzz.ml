(* rs_fuzz: the naive oracle, the differential driver, the shrinker, and the
   regression corpus of minimal reproducers. *)

module Gen = Rs_fuzz.Gen
module Differ = Rs_fuzz.Differ
module Shrink = Rs_fuzz.Shrink
module Fuzz = Rs_fuzz.Fuzz
module Delta_fuzz = Rs_fuzz.Delta_fuzz
module Delta = Rs_relation.Delta
module Naive = Recstep.Naive
module Parser = Recstep.Parser
module Interpreter = Recstep.Interpreter
module Relation = Rs_relation.Relation
module Pool = Rs_parallel.Pool

let check = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let case_of src edb = { Gen.case_seed = 0; program = Parser.parse src; edb }

(* --- the oracle ---------------------------------------------------------- *)

let test_oracle_tc () =
  let edges = [ (0, 1); (1, 2); (2, 3); (5, 6); (6, 5) ] in
  let edb = [ ("arc", List.map (fun (a, b) -> [ a; b ]) edges) ] in
  let program =
    Parser.parse
      ".input arc\ntc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).\n.output tc"
  in
  let idbs, rows_of = Naive.run ~edb program in
  check "tc is the only idb" true (idbs = [ "tc" ]);
  let expect =
    List.sort compare
      (List.map (fun (a, b) -> [ a; b ]) (Refs.IntPairSet.elements (Refs.transitive_closure edges)))
  in
  Alcotest.(check (list (list int))) "tc matches reference" expect (rows_of "tc")

let test_oracle_negation () =
  let edb = [ ("e0", [ [ 0; 1 ]; [ 1; 2 ] ]); ("e1", [ [ 0; 1 ] ]) ] in
  let program =
    Parser.parse
      ".input e0\n.input e1\np0(x, y) :- e0(x, y), !e1(x, y).\n.output p0"
  in
  let _, rows_of = Naive.run ~edb program in
  Alcotest.(check (list (list int))) "negation filters" [ [ 1; 2 ] ] (rows_of "p0")

let test_oracle_rejects_aggregates () =
  let program = Parser.parse ".input e\nh(x, MIN(y)) :- e(x, y).\n.output h" in
  check "aggregates unsupported" true
    (match Naive.run ~edb:[ ("e", [ [ 1; 2 ] ]) ] program with
    | exception Naive.Unsupported_feature _ -> true
    | _ -> false)

(* --- generator determinism ----------------------------------------------- *)

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.gen_case ~seed and b = Gen.gen_case ~seed in
      check "same seed, same source" true (Gen.case_to_source a = Gen.case_to_source b);
      check "same seed, same edb" true (a.Gen.edb = b.Gen.edb);
      (* the printed case must round-trip through the frontend *)
      let reparsed = Parser.parse (Gen.case_to_source a) in
      check "case reparses" true (List.length reparsed.Recstep.Ast.rules >= 1))
    [ 1; 7; 42; 1000; 424242 ]

(* --- regression corpus across every runner ------------------------------- *)

let test_corpus_all_runners () =
  let runners = Differ.all_runners () in
  List.iter
    (fun (tag, src, edb) ->
      let case = case_of src edb in
      let oracle = Differ.oracle_of_case case in
      List.iter
        (fun (r : Differ.runner) ->
          match r.Differ.run case oracle with
          | Differ.Agree | Differ.Skipped _ -> ()
          | Differ.Diverged ms ->
              Alcotest.fail
                (Printf.sprintf "%s diverged on %S (%s)" r.Differ.rname tag
                   (String.concat ", " (List.map (fun m -> m.Differ.pred) ms)))
          | Differ.Failed m ->
              Alcotest.fail (Printf.sprintf "%s failed on %S: %s" r.Differ.rname tag m))
        runners)
    Refs.fuzz_corpus

(* --- a small fixed-seed campaign ----------------------------------------- *)

let test_campaign_clean () =
  let r = Fuzz.run ~seed:7 ~iters:8 () in
  check "clean" true (Fuzz.clean r);
  Alcotest.(check int) "cases" 8 r.Fuzz.cases;
  (* the counter identities the CI smoke also asserts *)
  Alcotest.(check int) "runs add up" r.Fuzz.runs_total
    (r.Fuzz.runs_ok + r.Fuzz.runs_skipped + r.Fuzz.runs_diverged + r.Fuzz.runs_failed);
  Alcotest.(check int) "total = valid cases x runners"
    ((r.Fuzz.cases - r.Fuzz.invalid) * r.Fuzz.n_runners)
    r.Fuzz.runs_total

(* --- fault injection: the campaign must catch a seeded dedup bug --------- *)

let test_fault_injection_caught_and_shrunk () =
  let runner =
    Differ.toggle_runner
      {
        Differ.persistent_indexes = true;
        dsd = Interpreter.Dsd_dynamic;
        pbme = false;
        fast_dedup = true;
        kernels = true;
        shards = 1;
      }
  in
  let plan =
    Rs_chaos.Fault.plan ~seed:42
      [ Rs_chaos.Fault.spec ~p:0.25 Rs_chaos.Fault.Dedup_drop ]
  in
  Rs_chaos.Inject.with_plan plan (fun () ->
      let r = Fuzz.run ~runners:[ runner ] ~seed:42 ~iters:15 () in
      check "fault caught" true (r.Fuzz.runs_diverged > 0);
      let shrunk =
        List.filter_map (fun d -> d.Fuzz.div_shrunk) r.Fuzz.divergences
      in
      check "at least one reproducer shrunk" true (shrunk <> []);
      List.iter
        (fun c ->
          let rules, tuples = Gen.size c in
          check "reproducer has <= 3 rules" true (rules <= 3);
          check "reproducer has <= 10 tuples" true (tuples <= 10))
        shrunk;
      (* a divergence ships its explanation: every record carries the
         reference rule chain for what the engine got wrong, and the
         dumped reproducer states it as "% why:" header comments *)
      List.iter
        (fun (d : Fuzz.divergence) ->
          check "divergence carries a why-chain" true (d.Fuzz.div_why <> []))
        r.Fuzz.divergences;
      check "some why-chain names an offending rule" true
        (List.exists
           (fun (d : Fuzz.divergence) ->
             List.exists (fun w -> contains w "<= rule") d.Fuzz.div_why)
           r.Fuzz.divergences);
      let dir = Filename.concat (Filename.get_temp_dir_name ()) "rs_fuzz_why_test" in
      let paths = Fuzz.dump_divergences ~dir r in
      check "reproducers dumped" true (paths <> []);
      List.iter
        (fun p ->
          let ic = open_in p in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          check "reproducer explains itself" true (contains s "% why:"))
        paths)

(* --- delta-sequence mode -------------------------------------------------- *)

(* Replay the frozen corpus: every delta applied through the IVM must land
   on the same IDB state as a from-scratch naive recompute on a set-level
   mirror of the EDB. *)
let test_delta_corpus () =
  List.iter
    (fun (tag, src, edb, deltas) ->
      let program = Parser.parse src in
      let mirror = Hashtbl.create 4 in
      List.iter
        (fun (rel, rows) ->
          let tbl = Hashtbl.create 16 in
          List.iter (fun row -> Hashtbl.replace tbl row ()) rows;
          Hashtbl.add mirror rel tbl)
        edb;
      let mirror_rows () =
        List.map
          (fun (rel, _) ->
            let tbl = Hashtbl.find mirror rel in
            (rel, List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])))
          edb
      in
      let ivm = Recstep.Ivm.create ~edb:(mirror_rows ()) program in
      List.iteri
        (fun v ops ->
          let d =
            List.fold_left
              (fun acc (ins, rel, row) ->
                let mk = if ins then Delta.of_inserts else Delta.of_retracts in
                (if ins then Hashtbl.replace (Hashtbl.find mirror rel) row ()
                 else Hashtbl.remove (Hashtbl.find mirror rel) row);
                Delta.merge acc (mk rel [ Array.of_list row ]))
              Delta.empty ops
          in
          ignore (Recstep.Ivm.apply ivm d);
          let idbs, rows_of = Naive.run ~edb:(mirror_rows ()) program in
          List.iter
            (fun pred ->
              let expect = List.sort_uniq compare (rows_of pred) in
              let got = List.sort_uniq compare (Recstep.Ivm.rows ivm pred) in
              if expect <> got then
                Alcotest.fail
                  (Printf.sprintf "%S: %s diverges at version %d" tag pred (v + 1)))
            idbs)
        deltas)
    Refs.delta_corpus

(* A fixed-seed delta-sequence campaign — the same seed the CI smoke pins. *)
let test_delta_campaign_clean () =
  let r = Delta_fuzz.run ~seed:11 ~iters:10 ~deltas:6 () in
  check "clean" true (Delta_fuzz.clean r);
  Alcotest.(check int) "cases" 10 r.Delta_fuzz.cases;
  check "versions actually streamed" true
    (r.Delta_fuzz.versions >= 6 * (r.Delta_fuzz.cases - r.Delta_fuzz.invalid));
  check "ops actually streamed" true (r.Delta_fuzz.ops > r.Delta_fuzz.versions);
  (* determinism: same seed, same campaign *)
  let r2 = Delta_fuzz.run ~seed:11 ~iters:10 ~deltas:6 () in
  check "deterministic per seed" true (r = r2)

(* --- semi-naive: an empty delta skips the plans it drives ----------------- *)

let test_empty_delta_skips_plans () =
  (* p and q are mutually recursive, but c is empty so q never derives a
     tuple: Δq is empty in every round and the Δq-driven variant of the
     third rule must never be issued. Query count: iteration 0 evaluates
     only the delta-free rule (p :- e, 1 query; rules with recursive
     occurrences read empty IDBs there); round 1 evaluates q's live
     Δp-driven plan (1 query, derives nothing) and SKIPS p's Δq-driven
     plan. Without the empty-delta skip the count would be 3. Kernels are
     pinned off: the compiled path honors the same skip but evaluates live
     delta plans without issuing queries, which would hide what this test
     is counting (the kernel-side skip is covered in test_kernel.ml). *)
  let src =
    ".input e\n.input c\n\
     p(x, y) :- e(x, y).\n\
     q(x, y) :- p(x, y), c(x, x).\n\
     p(x, y) :- q(x, z), e(z, y).\n\
     .output p\n.output q"
  in
  let program = Parser.parse src in
  let edb =
    [
      ("e", Relation.of_rows ~name:"e" 2 [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |] ]);
      ("c", Relation.of_rows ~name:"c" 2 []);
    ]
  in
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let result =
    Interpreter.run ~options:(Interpreter.options ~compiled_kernels:false ()) ~pool ~edb program
  in
  check "p = e" true
    (List.map Array.to_list (Relation.sorted_distinct_rows (result.Interpreter.relation_of "p"))
    = [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]);
  check "q empty" true (Relation.nrows (result.Interpreter.relation_of "q") = 0);
  Alcotest.(check int) "dead delta plans are never evaluated" 2 result.Interpreter.queries

let suite =
  [
    Alcotest.test_case "oracle: transitive closure" `Quick test_oracle_tc;
    Alcotest.test_case "oracle: negation" `Quick test_oracle_negation;
    Alcotest.test_case "oracle: rejects aggregates" `Quick test_oracle_rejects_aggregates;
    Alcotest.test_case "generator determinism" `Quick test_gen_deterministic;
    Alcotest.test_case "corpus: all runners agree with the oracle" `Quick test_corpus_all_runners;
    Alcotest.test_case "fixed-seed campaign is clean" `Quick test_campaign_clean;
    Alcotest.test_case "injected dedup fault caught and shrunk" `Quick
      test_fault_injection_caught_and_shrunk;
    Alcotest.test_case "frozen delta corpus replays clean" `Quick test_delta_corpus;
    Alcotest.test_case "fixed-seed delta campaign is clean" `Quick test_delta_campaign_clean;
    Alcotest.test_case "empty delta skips its plans" `Quick test_empty_delta_skips_plans;
  ]
