module Pool = Rs_parallel.Pool

let check = Alcotest.(check bool)

let test_parallel_for_covers () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let seen = Array.make 1000 false in
  Pool.parallel_for pool 0 1000 (fun lo hi ->
      for i = lo to hi - 1 do
        check "not visited twice" false seen.(i);
        seen.(i) <- true
      done);
  check "all visited" true (Array.for_all (fun b -> b) seen)

let test_parallel_for_empty () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  Pool.parallel_for pool 5 5 (fun _ _ -> Alcotest.fail "must not run");
  Pool.parallel_for pool 7 3 (fun _ _ -> Alcotest.fail "must not run")

let test_map_tasks_order () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let results = Pool.map_tasks pool (List.init 10 (fun i -> fun () -> i * i)) in
  Alcotest.(check (list int)) "ordered results" (List.init 10 (fun i -> i * i)) results

let test_add_serial_advances_vtime () =
  let pool = Pool.create ~workers:8 () in
  Pool.begin_run pool;
  let v0 = Pool.vtime_now pool in
  Pool.add_serial pool 1.5;
  let v1 = Pool.vtime_now pool in
  check "vtime advanced by ~1.5" true (v1 -. v0 >= 1.5 && v1 -. v0 < 1.6)

let test_makespan_below_total () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let spin () =
    let t0 = Rs_util.Clock.now () in
    while Rs_util.Clock.now () -. t0 < 0.002 do
      ()
    done
  in
  ignore (Pool.map_tasks pool (List.init 8 (fun _ -> spin)));
  let stats = Pool.stats pool in
  (* 8 equal tasks on 4 workers: makespan should be ~busy/4, not ~busy *)
  check "parallel speedup observed" true (stats.Pool.vtime < 0.8 *. stats.Pool.busy)

let test_nested_batches_inline () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let inner_ran = ref 0 in
  Pool.parallel_for pool 0 4 (fun lo hi ->
      for _ = lo to hi - 1 do
        (* nested call must execute inline without corrupting accounting *)
        Pool.parallel_for pool 0 10 (fun l h -> inner_ran := !inner_ran + (h - l))
      done);
  Alcotest.(check int) "nested iterations" 40 !inner_ran;
  let stats = Pool.stats pool in
  check "vtime sane" true (stats.Pool.vtime >= 0.0 && stats.Pool.vtime < 10.0)

let test_events_recorded () =
  let pool = Pool.create ~workers:2 () in
  Pool.begin_run pool;
  Pool.parallel_for pool 0 100 (fun _ _ -> ());
  Pool.add_serial pool 0.25;
  let events = Pool.events pool in
  Alcotest.(check int) "two events" 2 (List.length events);
  let serial = List.nth events 1 in
  check "serial event busy=vlen" true
    (abs_float (serial.Pool.ev_busy -. serial.Pool.ev_vlen) < 1e-9);
  check "event starts within run" true (serial.Pool.ev_vstart >= 0.0)

let test_progress_hook () =
  let pool = Pool.create ~workers:2 () in
  Pool.begin_run pool;
  let calls = ref 0 in
  Pool.on_progress pool (fun _ -> incr calls);
  Pool.parallel_for pool 0 10 (fun _ _ -> ());
  Pool.parallel_for pool 0 10 (fun _ _ -> ());
  Alcotest.(check int) "progress called per batch" 2 !calls;
  Pool.clear_progress pool;
  Pool.parallel_for pool 0 10 (fun _ _ -> ());
  Alcotest.(check int) "cleared" 2 !calls

let test_set_workers () =
  let pool = Pool.create ~workers:3 () in
  Pool.set_workers pool 7;
  Alcotest.(check int) "workers" 7 (Pool.workers pool);
  Pool.set_workers pool 0;
  Alcotest.(check int) "clamped to 1" 1 (Pool.workers pool)

(* Reference implementation of the scheduler record_batch used before the
   min-heap: O(workers) linear scan for the least-loaded worker per task.
   The heap must reproduce its makespan exactly — ties may pick a different
   worker index, but the multiset of loads evolves identically. *)
let reference_makespan ~workers durations =
  let loads = Array.make (max 1 workers) 0.0 in
  List.iter
    (fun d ->
      let best = ref 0 in
      for i = 1 to Array.length loads - 1 do
        if loads.(i) < loads.(!best) then best := i
      done;
      loads.(!best) <- loads.(!best) +. d)
    durations;
  Array.fold_left max 0.0 loads

let test_makespan_matches_greedy () =
  let cases =
    [
      (1, [ 1.0; 2.0; 3.0 ]);
      (4, [ 5.0; 4.0; 3.0; 2.0; 1.0; 1.0; 1.0; 1.0 ]);
      (4, List.init 100 (fun i -> float_of_int ((i * 7919) mod 13) /. 3.0));
      (3, [ 2.0; 2.0; 2.0; 2.0; 2.0; 2.0 ]);  (* all ties *)
      (16, [ 0.5 ]);  (* fewer tasks than workers *)
      (8, []);
      (5, List.init 1000 (fun i -> float_of_int ((i * 104729) mod 97) /. 11.0));
    ]
  in
  List.iter
    (fun (workers, durations) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "makespan k=%d n=%d" workers (List.length durations))
        (reference_makespan ~workers durations)
        (Pool.makespan ~workers durations))
    cases

let test_utilization_bounds () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  Pool.parallel_for pool 0 10000 (fun lo hi ->
      let acc = ref 0 in
      for i = lo to hi - 1 do
        acc := !acc + i
      done;
      ignore !acc);
  let stats = Pool.stats pool in
  check "utilization in (0, 1]" true (stats.Pool.utilization > 0.0 && stats.Pool.utilization <= 1.000001)

let suite =
  [
    Alcotest.test_case "parallel_for covers range once" `Quick test_parallel_for_covers;
    Alcotest.test_case "parallel_for empty ranges" `Quick test_parallel_for_empty;
    Alcotest.test_case "map_tasks preserves order" `Quick test_map_tasks_order;
    Alcotest.test_case "add_serial advances vtime" `Quick test_add_serial_advances_vtime;
    Alcotest.test_case "makespan below serial total" `Quick test_makespan_below_total;
    Alcotest.test_case "nested batches run inline" `Quick test_nested_batches_inline;
    Alcotest.test_case "events recorded" `Quick test_events_recorded;
    Alcotest.test_case "progress hooks" `Quick test_progress_hook;
    Alcotest.test_case "set_workers clamps" `Quick test_set_workers;
    Alcotest.test_case "heap makespan matches greedy scan" `Quick test_makespan_matches_greedy;
    Alcotest.test_case "utilization bounded" `Quick test_utilization_bounds;
  ]
