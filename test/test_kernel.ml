(* Compiled rule kernels (Rs_exec.Kernel): fused join→project→dedup closures
   for hot recursive rules. Every test runs the same program twice — kernels
   on and kernels off — on fresh pools and asserts the canonical output rows
   are identical; the trace counters then pin which path actually ran. PBME
   is held off throughout so TC/SG-shaped strata take the relational path
   the kernels accelerate (with PBME on they would collapse to the
   bit-matrix kernels and neither path under test would execute). *)

module Parser = Recstep.Parser
module Interpreter = Recstep.Interpreter
module Relation = Rs_relation.Relation
module Pool = Rs_parallel.Pool
module Trace = Rs_obs.Trace
module Fault = Rs_chaos.Fault
module Inject = Rs_chaos.Inject

let check = Alcotest.(check bool)

let canon rel = List.map Array.to_list (Relation.sorted_distinct_rows rel)

(* One interpreter run on a fresh pool; returns (rows of each output, trace). *)
let run_one ~kernels src edb =
  let program = Parser.parse src in
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let trace = Trace.create ~now:(fun () -> Pool.vtime_now pool) () in
  let edb =
    List.map
      (fun (name, arity, rows) ->
        (name, Relation.of_rows ~name arity (List.map Array.of_list rows)))
      edb
  in
  let options =
    Interpreter.options ~pbme:false ~compiled_kernels:kernels ~trace ()
  in
  let result = Interpreter.run ~options ~pool ~edb program in
  let outs =
    List.map
      (fun name -> (name, canon (result.Interpreter.relation_of name)))
      program.Recstep.Ast.outputs
  in
  (outs, trace)

(* Both toggle positions must produce byte-identical canonical outputs. *)
let run_both src edb =
  let on, tr_on = run_one ~kernels:true src edb in
  let off, tr_off = run_one ~kernels:false src edb in
  Alcotest.(check (list (pair string (list (list int)))))
    "kernels on = kernels off" off on;
  (tr_on, tr_off)

let c tr name = Trace.counter tr name

(* --- per-arity closures vs the interpreted path --------------------------- *)

let tc_src =
  ".input e0\np0(x, y) :- e0(x, y).\np0(x, y) :- p0(x, z), e0(z, y).\n.output p0"

let tc_edb = [ ("e0", 2, [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 0 ] ]) ]

let test_arity2 () =
  let tr_on, tr_off = run_both tc_src tc_edb in
  check "rules compiled" true (c tr_on "kernel.compiled_rules" > 0);
  check "kernels executed" true (c tr_on "kernel.execs" > 0);
  check "probes fused" true (c tr_on "kernel.fused_probes" > 0);
  check "rows emitted" true (c tr_on "kernel.emitted" > 0);
  check "no fallback" true (c tr_on "kernel.fallbacks" = 0);
  check "toggle off compiles nothing" true (c tr_off "kernel.compiled_rules" = 0);
  check "toggle off executes nothing" true (c tr_off "kernel.execs" = 0)

let test_arity1 () =
  (* unary head: reachability from a source set *)
  let src =
    ".input s\n.input e0\n\
     r(x) :- s(x).\n\
     r(y) :- r(x), e0(x, y).\n\
     .output r"
  in
  let edb =
    [ ("s", 1, [ [ 0 ] ]); ("e0", 2, [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 1 ]; [ 5; 6 ] ]) ]
  in
  let tr_on, _ = run_both src edb in
  check "rules compiled" true (c tr_on "kernel.compiled_rules" > 0);
  check "kernels executed" true (c tr_on "kernel.execs" > 0)

let test_arity3 () =
  let src =
    ".input e1\n\
     p0(x, y, z) :- e1(x, y, z).\n\
     p0(x, y, w) :- p0(x, y, z), e1(z, w, w).\n\
     .output p0"
  in
  let edb = [ ("e1", 3, [ [ 0; 1; 2 ]; [ 1; 2; 2 ]; [ 2; 0; 0 ]; [ 2; 3; 3 ] ]) ] in
  let tr_on, _ = run_both src edb in
  check "rules compiled" true (c tr_on "kernel.compiled_rules" > 0);
  check "kernels executed" true (c tr_on "kernel.execs" > 0)

(* A delta plan with no join at all — pure project over the Δ-scan — takes
   the unary kernel shape. *)
let test_unary_shape () =
  let src =
    ".input e0\n\
     q(x, y) :- e0(x, y).\n\
     p(y, x) :- q(x, y).\n\
     q(x, y) :- p(x, z), e0(z, y).\n\
     .output p\n.output q"
  in
  let edb = [ ("e0", 2, [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]) ] in
  let tr_on, _ = run_both src edb in
  check "rules compiled" true (c tr_on "kernel.compiled_rules" > 0);
  check "kernels executed" true (c tr_on "kernel.execs" > 0)

(* Local predicates ride inside the fused closure: probe-side, build-side
   and cross-side comparisons must all be honored. *)
let test_filters_fused () =
  let src =
    ".input e0\n\
     p0(x, y) :- e0(x, y).\n\
     p0(x, y) :- p0(x, z), e0(z, y), y != x, y <= 6.\n\
     .output p0"
  in
  let edb =
    [ ("e0", 2, [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 7 ]; [ 2; 0 ]; [ 3; 4 ] ]) ]
  in
  let tr_on, _ = run_both src edb in
  check "rules compiled" true (c tr_on "kernel.compiled_rules" > 0)

(* --- the cost-model gate and unsupported shapes --------------------------- *)

let test_fallback_wide_head () =
  (* head arity 4 > Cost.kernel_max_arity: gate says "arity", every rule
     stays interpreted, answers unchanged *)
  let src =
    ".input e3\n\
     p0(x, y, z, w) :- e3(x, y, z, w).\n\
     p0(x, y, z, w) :- p0(x, y, z, u), e3(u, y, z, w).\n\
     .output p0"
  in
  let edb = [ ("e3", 4, [ [ 0; 1; 1; 2 ]; [ 2; 1; 1; 3 ]; [ 3; 1; 1; 0 ] ]) ] in
  let tr_on, _ = run_both src edb in
  check "gate refused" true (c tr_on "kernel.fallback_rules" > 0);
  check "nothing compiled" true (c tr_on "kernel.compiled_rules" = 0);
  check "nothing executed" true (c tr_on "kernel.execs" = 0)

let test_fallback_negation () =
  (* a negated atom in the recursive rule is outside the fused shape: the
     whole IDB stays on the interpreted path (all-or-nothing) *)
  let src =
    ".input e0\n.input bad\n\
     p0(x, y) :- e0(x, y).\n\
     p0(x, y) :- p0(x, z), e0(z, y), !bad(x, y).\n\
     .output p0"
  in
  let edb =
    [
      ("e0", 2, [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ]);
      ("bad", 2, [ [ 0; 3 ] ]);
    ]
  in
  let tr_on, _ = run_both src edb in
  check "compile refused" true (c tr_on "kernel.fallback_rules" > 0);
  check "nothing compiled" true (c tr_on "kernel.compiled_rules" = 0)

let test_cold_rules_not_compiled () =
  (* a non-recursive program has no delta plans: the kernel path never
     engages and charges no counters at all *)
  let src = ".input e0\np0(y, x) :- e0(x, y).\n.output p0" in
  let edb = [ ("e0", 2, [ [ 0; 1 ]; [ 1; 2 ] ]) ] in
  let tr_on, _ = run_both src edb in
  check "nothing compiled" true (c tr_on "kernel.compiled_rules" = 0);
  check "nothing refused" true (c tr_on "kernel.fallback_rules" = 0);
  check "nothing executed" true (c tr_on "kernel.execs" = 0)

(* --- chaos: Kernel_fail is recovered, never a wrong answer ---------------- *)

let run_with_plan plan_str src edb =
  Inject.with_plan
    (Fault.plan_of_string ~seed:7 plan_str)
    (fun () -> run_one ~kernels:true src edb)

let test_chaos_compile_fault () =
  (* every compile probe fires: no kernel compiles, the whole run is
     interpreted, and the answer matches the clean kernels-off run *)
  let clean, _ = run_one ~kernels:false tc_src tc_edb in
  let faulted, tr = run_with_plan "kernel:p=1" tc_src tc_edb in
  Alcotest.(check (list (pair string (list (list int)))))
    "compile fault never changes the answer" clean faulted;
  check "nothing compiled" true (c tr "kernel.compiled_rules" = 0);
  check "refusals counted" true (c tr "kernel.fallback_rules" > 0);
  check "nothing executed" true (c tr "kernel.execs" = 0)

let test_chaos_exec_fault () =
  (* after=1 lets the single compile probe through, limit=1 degrades exactly
     one kernel execution: that round re-evaluates interpreted, later rounds
     run the kernel again, and the answer still matches the clean run *)
  let clean, _ = run_one ~kernels:false tc_src tc_edb in
  let faulted, tr = run_with_plan "kernel:p=1,after=1,limit=1" tc_src tc_edb in
  Alcotest.(check (list (pair string (list (list int)))))
    "exec fault never changes the answer" clean faulted;
  check "rules compiled" true (c tr "kernel.compiled_rules" > 0);
  check "one degraded execution" true (c tr "kernel.fallbacks" = 1);
  check "later rounds still fused" true (c tr "kernel.execs" > 0)

let test_chaos_persistent_exec_fault () =
  (* unbounded exec faults: every round degrades to the interpreted path;
     still the right answer, just slower *)
  let clean, _ = run_one ~kernels:false tc_src tc_edb in
  let faulted, tr = run_with_plan "kernel:p=1,after=1" tc_src tc_edb in
  Alcotest.(check (list (pair string (list (list int)))))
    "persistent exec fault never changes the answer" clean faulted;
  check "every round degraded" true (c tr "kernel.fallbacks" > 0);
  check "no fused execution completed" true (c tr "kernel.execs" = 0)

(* --- provenance × kernels: all-or-nothing tagging -------------------------- *)

(* Tags are recorded at the single absorption point both paths share, so a
   per-IDB compile decision (or a mid-fixpoint kernel fault bouncing rounds
   between the fused and interpreted paths) must never yield a relation
   where only the kernel-emitted tuples carry tags. *)
let run_prov ?plan ~kernels src edb =
  let program = Parser.parse src in
  let body () =
    let pool = Pool.create ~workers:4 () in
    Pool.begin_run pool;
    let edb =
      List.map
        (fun (name, arity, rows) ->
          (name, Relation.of_rows ~name arity (List.map Array.of_list rows)))
        edb
    in
    let prov = Recstep.Provenance.create () in
    let options =
      Interpreter.options ~pbme:false ~compiled_kernels:kernels ~provenance:prov ()
    in
    let result = Interpreter.run ~options ~pool ~edb program in
    let outs =
      List.map
        (fun name -> (name, canon (result.Interpreter.relation_of name)))
        program.Recstep.Ast.outputs
    in
    (outs, prov)
  in
  match plan with
  | None -> body ()
  | Some p -> Inject.with_plan (Fault.plan_of_string ~seed:7 p) body

let assert_full_coverage ~what outs prov =
  List.iter
    (fun (name, rows) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: every %s tuple tagged" what name)
        (List.length rows)
        (Recstep.Provenance.tagged prov ~pred:name);
      List.iter
        (fun row ->
          check
            (Printf.sprintf "%s: tag present for %s row" what name)
            true
            (Recstep.Provenance.find prov ~pred:name row <> None))
        rows)
    outs

let test_provenance_all_or_nothing () =
  let on, prov_on = run_prov ~kernels:true tc_src tc_edb in
  let off, prov_off = run_prov ~kernels:false tc_src tc_edb in
  Alcotest.(check (list (pair string (list (list int)))))
    "kernel and interpreted outputs identical under provenance" off on;
  assert_full_coverage ~what:"kernels on" on prov_on;
  assert_full_coverage ~what:"kernels off" off prov_off

let test_provenance_kernel_chaos () =
  (* one exec-time kernel fault: that round re-runs interpreted, later
     rounds run fused — the relation crosses both emit paths mid-fixpoint
     and must still end up fully tagged with the same rows *)
  let clean, _ = run_prov ~kernels:false tc_src tc_edb in
  let faulted, prov =
    run_prov ~plan:"kernel:p=1,after=1,limit=1" ~kernels:true tc_src tc_edb
  in
  Alcotest.(check (list (pair string (list (list int)))))
    "kernel fault never changes the answer under provenance" clean faulted;
  assert_full_coverage ~what:"faulted" faulted prov

let suite =
  [
    Alcotest.test_case "arity-2 kernel matches interpreted" `Quick test_arity2;
    Alcotest.test_case "arity-1 kernel matches interpreted" `Quick test_arity1;
    Alcotest.test_case "arity-3 kernel matches interpreted" `Quick test_arity3;
    Alcotest.test_case "unary (no-join) kernel shape" `Quick test_unary_shape;
    Alcotest.test_case "local predicates fused into the closure" `Quick test_filters_fused;
    Alcotest.test_case "gate: wide head stays interpreted" `Quick test_fallback_wide_head;
    Alcotest.test_case "gate: negation stays interpreted" `Quick test_fallback_negation;
    Alcotest.test_case "cold rules never touch the kernel path" `Quick
      test_cold_rules_not_compiled;
    Alcotest.test_case "chaos: compile fault falls back" `Quick test_chaos_compile_fault;
    Alcotest.test_case "chaos: one exec fault degrades one round" `Quick
      test_chaos_exec_fault;
    Alcotest.test_case "chaos: persistent exec faults stay correct" `Quick
      test_chaos_persistent_exec_fault;
    Alcotest.test_case "provenance: kernel and interpreted tag all-or-nothing"
      `Quick test_provenance_all_or_nothing;
    Alcotest.test_case "provenance: kernel chaos keeps full tag coverage" `Quick
      test_provenance_kernel_chaos;
  ]
