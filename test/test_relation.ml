module Relation = Rs_relation.Relation
module Dedup = Rs_relation.Dedup
module Hash_index = Rs_relation.Hash_index
module Radix_index = Rs_relation.Radix_index
module Cck = Rs_relation.Cck_concurrent
module Pool = Rs_parallel.Pool

let check = Alcotest.(check bool)

let test_relation_basic () =
  let r = Relation.create ~name:"t" 3 in
  Relation.push3 r 1 2 3;
  Relation.push_row r [| 4; 5; 6 |];
  Alcotest.(check int) "nrows" 2 (Relation.nrows r);
  Alcotest.(check int) "get" 5 (Relation.get r ~row:1 ~col:1);
  Alcotest.(check string) "name" "t" (Relation.name r);
  Alcotest.check_raises "arity" (Invalid_argument "Relation.push_row: arity mismatch")
    (fun () -> Relation.push_row r [| 1 |])

let test_relation_roundtrip () =
  let rows = [ [| 3; 1 |]; [| 1; 2 |]; [| 3; 1 |] ] in
  let r = Relation.of_rows 2 rows in
  Alcotest.(check int) "kept duplicates (bag)" 3 (Relation.nrows r);
  Alcotest.(check int) "distinct" 2 (List.length (Relation.sorted_distinct_rows r))

let test_relation_copy_append () =
  let a = Relation.of_rows 2 [ [| 1; 2 |] ] in
  let b = Relation.copy a in
  Relation.push2 b 3 4;
  Alcotest.(check int) "copy isolated" 1 (Relation.nrows a);
  Relation.append_all a b;
  Alcotest.(check int) "appended" 3 (Relation.nrows a)

let test_concat_parallel () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let frags =
    List.init 5 (fun i -> Relation.of_rows 2 (List.init (i + 1) (fun j -> [| i; j |])))
  in
  let merged = Relation.concat_parallel pool 2 frags in
  let expected = List.concat_map Relation.to_rows frags in
  Alcotest.(check int) "rows" (List.length expected) (Relation.nrows merged);
  check "order preserved" true (Relation.to_rows merged = expected)

let test_accounting () =
  Rs_storage.Memtrack.hard_reset ();
  let r = Relation.of_rows 2 (List.init 100 (fun i -> [| i; i |])) in
  Relation.account r;
  check "accounted" true (Rs_storage.Memtrack.live () > 0);
  Relation.release r;
  Alcotest.(check int) "released" 0 (Rs_storage.Memtrack.live ())

(* --- dedup --- *)

let gen_pairs =
  QCheck2.Gen.(list (pair (int_range 0 50) (int_range 0 50)))

let prop_dedup_matches_set mode name =
  QCheck2.Test.make ~name ~count:200 gen_pairs (fun pairs ->
      let r = Relation.create 2 in
      List.iter (fun (x, y) -> Relation.push2 r x y) pairs;
      let d = Dedup.dedup_relation mode r in
      Refs.sorted_pairs (Relation.to_rows d |> List.map (fun a -> a))
      = List.sort_uniq compare pairs)

let prop_dedup_parallel_matches =
  QCheck2.Test.make ~name:"parallel dedup = set" ~count:100 gen_pairs (fun pairs ->
      let pool = Pool.create ~workers:4 () in
      Pool.begin_run pool;
      let r = Relation.create 2 in
      List.iter (fun (x, y) -> Relation.push2 r x y) pairs;
      let d = Dedup.dedup_relation_parallel ~pool Dedup.Fast r in
      Refs.sorted_pairs (Relation.to_rows d) = List.sort_uniq compare pairs)

let prop_dedup_fast_eq_boxed =
  QCheck2.Test.make ~name:"fast dedup = boxed dedup" ~count:100
    QCheck2.Gen.(list (array_size (return 3) (int_range 0 30)))
    (fun rows ->
      let mk mode =
        let t = Dedup.create mode 3 in
        List.map (fun row -> Dedup.add_row t row) rows
      in
      mk Dedup.Fast = mk Dedup.Boxed)

let test_dedup_wide_membership () =
  let t = Dedup.create Dedup.Fast 4 in
  check "add" true (Dedup.add_row t [| 1; 2; 3; 4 |]);
  check "dup" false (Dedup.add_row t [| 1; 2; 3; 4 |]);
  check "mem" true (Dedup.mem_row t [| 1; 2; 3; 4 |]);
  check "not mem" false (Dedup.mem_row t [| 1; 2; 3; 5 |]);
  Alcotest.(check int) "cardinal" 1 (Dedup.cardinal t)

let test_dedup_rehash_growth () =
  let t = Dedup.create ~expected:4 Dedup.Fast 2 in
  for i = 0 to 9999 do
    check "new" true (Dedup.add2 t i (i * 31))
  done;
  for i = 0 to 9999 do
    check "dup" false (Dedup.add2 t i (i * 31))
  done;
  Alcotest.(check int) "cardinal" 10000 (Dedup.cardinal t)

(* --- CCK concurrent, including a real multi-domain stress test --- *)

let test_cck_sequential () =
  let t = Cck.create ~capacity:1000 ~buckets:64 in
  check "add" true (Cck.add t 42);
  check "dup" false (Cck.add t 42);
  check "mem" true (Cck.mem t 42);
  check "not mem" false (Cck.mem t 43);
  Alcotest.(check int) "cardinal" 1 (Cck.cardinal t)

let test_cck_concurrent_domains () =
  (* Four real OCaml 5 domains hammer one table with overlapping ranges;
     the final set must be exactly [0, 4000). *)
  let t = Cck.create ~capacity:20000 ~buckets:1024 in
  let worker seed () =
    let rng = Rs_util.Rng.create seed in
    for _ = 1 to 8000 do
      ignore (Cck.add t (Rs_util.Rng.int rng 4000))
    done;
    for v = 0 to 3999 do
      ignore (Cck.add t v)
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join domains;
  Alcotest.(check int) "exactly the range" 4000 (Cck.cardinal t);
  Alcotest.(check (list int)) "sorted contents" (List.init 4000 (fun i -> i)) (Cck.to_sorted_list t)

let test_cck_capacity_exhausted () =
  (* a full table fails with the typed exception (folded into Oom at the
     engine boundary), never a bare [failwith] *)
  let t = Cck.create ~capacity:4 ~buckets:16 in
  for v = 0 to 3 do
    check "add" true (Cck.add t v)
  done;
  Alcotest.check_raises "typed capacity failure"
    (Cck.Capacity_exhausted { capacity = 4 })
    (fun () -> ignore (Cck.add t 99));
  Alcotest.(check bool) "guard folds it to Oom" true
    (Rs_engines.Engine_intf.guard (fun () -> ignore (Cck.add t 100)) = Rs_engines.Engine_intf.Oom)

(* --- hash index --- *)

let prop_index_matches_scan =
  QCheck2.Test.make ~name:"hash index = naive scan" ~count:200
    QCheck2.Gen.(pair gen_pairs (int_range 0 50))
    (fun (pairs, probe) ->
      let r = Relation.create 2 in
      List.iter (fun (x, y) -> Relation.push2 r x y) pairs;
      let idx = Hash_index.build r [| 0 |] in
      let via_index = ref [] in
      Hash_index.iter_matches1 idx probe (fun row -> via_index := row :: !via_index);
      let naive = List.filteri (fun _ _ -> true) pairs in
      let expected =
        List.mapi (fun i (x, _) -> (i, x)) naive
        |> List.filter_map (fun (i, x) -> if x = probe then Some i else None)
      in
      List.sort compare !via_index = List.sort compare expected)

let prop_build_pool_equals_build =
  QCheck2.Test.make ~name:"build_pool = build" ~count:100 gen_pairs (fun pairs ->
      let pool = Pool.create ~workers:4 () in
      Pool.begin_run pool;
      let r = Relation.create 2 in
      List.iter (fun (x, y) -> Relation.push2 r x y) pairs;
      let a = Hash_index.build r [| 0; 1 |] and b = Hash_index.build_pool pool r [| 0; 1 |] in
      List.for_all
        (fun (x, y) ->
          let ra = ref [] and rb = ref [] in
          Hash_index.iter_matches a [| x; y |] (fun i -> ra := i :: !ra);
          Hash_index.iter_matches b [| x; y |] (fun i -> rb := i :: !rb);
          List.sort compare !ra = List.sort compare !rb)
        pairs)

let test_index_two_col_and_mem () =
  let r = Relation.of_rows 2 [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 2 |] ] in
  let idx = Hash_index.build r [| 0; 1 |] in
  check "mem" true (Hash_index.mem idx [| 1; 3 |]);
  check "not mem" false (Hash_index.mem idx [| 3; 1 |]);
  let hits = ref 0 in
  Hash_index.iter_matches2 idx 1 2 (fun _ -> incr hits);
  Alcotest.(check int) "exact match" 1 !hits

let test_index_three_col () =
  (* arity >= 3 exercises the generic fold branch of row_key_hash and the
     array-key iter_matches path (vs the 1/2-column specializations) *)
  let r =
    Relation.of_rows 4
      [ [| 1; 2; 3; 9 |]; [| 1; 2; 4; 8 |]; [| 1; 2; 3; 7 |]; [| 2; 2; 3; 6 |] ]
  in
  let idx = Hash_index.build r [| 0; 1; 2 |] in
  let hits = ref [] in
  Hash_index.iter_matches idx [| 1; 2; 3 |] (fun row -> hits := row :: !hits);
  Alcotest.(check (list int)) "3-col key matches" [ 0; 2 ] (List.sort compare !hits);
  check "3-col mem" true (Hash_index.mem idx [| 2; 2; 3 |]);
  check "3-col not mem" false (Hash_index.mem idx [| 2; 2; 4 |]);
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let radix = Radix_index.build_pool pool r [| 0; 1; 2 |] in
  let rhits = ref [] in
  Radix_index.iter_matches radix [| 1; 2; 3 |] (fun row -> rhits := row :: !rhits);
  Alcotest.(check (list int)) "radix 3-col key matches" [ 0; 2 ] (List.sort compare !rhits);
  check "radix 3-col mem" true (Radix_index.mem radix [| 2; 2; 3 |]);
  check "radix 3-col not mem" false (Radix_index.mem radix [| 2; 2; 4 |])

let test_index_memtrack_roundtrip () =
  Rs_storage.Memtrack.hard_reset ();
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let r = Relation.of_rows 3 (List.init 500 (fun i -> [| i mod 17; i mod 5; i |])) in
  let chained = Hash_index.build r [| 0; 1; 2 |] in
  Hash_index.account chained;
  let live_chained = Rs_storage.Memtrack.live () in
  check "chained accounted" true (live_chained > 0);
  let radix = Radix_index.build_pool pool r [| 0; 1; 2 |] in
  Radix_index.account radix;
  check "radix accounted on top" true (Rs_storage.Memtrack.live () > live_chained);
  Radix_index.release radix;
  Alcotest.(check int) "radix released" live_chained (Rs_storage.Memtrack.live ());
  Hash_index.release chained;
  Alcotest.(check int) "all released" 0 (Rs_storage.Memtrack.live ())

let gen_triples =
  QCheck2.Gen.(list (pair (int_range 0 30) (pair (int_range 0 30) (int_range 0 30))))

let prop_radix_eq_chained =
  QCheck2.Test.make ~name:"radix index = chained index (incl. order)" ~count:150
    gen_triples
    (fun triples ->
      let pool = Pool.create ~workers:4 () in
      Pool.begin_run pool;
      let r = Relation.create 3 in
      List.iter (fun (x, (y, z)) -> Relation.push3 r x y z) triples;
      let chained = Hash_index.build_pool pool r [| 0; 1 |] in
      let radix = Radix_index.build_pool pool r [| 0; 1 |] in
      List.for_all
        (fun (x, (y, _)) ->
          let a = ref [] and b = ref [] in
          Hash_index.iter_matches2 chained x y (fun i -> a := i :: !a);
          Radix_index.iter_matches2 radix x y (fun i -> b := i :: !b);
          (* exact list equality: the two layouts must enumerate matches in
             the same (newest-first) order for byte-identical join output *)
          !a = !b)
        triples)

let prop_append_eq_rebuild =
  QCheck2.Test.make ~name:"append_pool = fresh rebuild" ~count:100
    QCheck2.Gen.(pair gen_pairs gen_pairs)
    (fun (base, extra) ->
      let pool = Pool.create ~workers:4 () in
      Pool.begin_run pool;
      let r = Relation.create 2 in
      List.iter (fun (x, y) -> Relation.push2 r x y) base;
      let idx = Hash_index.build_pool pool r [| 0 |] in
      List.iter (fun (x, y) -> Relation.push2 r x y) extra;
      let added = Hash_index.append_pool pool idx in
      let fresh = Hash_index.build r [| 0 |] in
      added = List.length extra
      && Hash_index.indexed_rows idx = Relation.nrows r
      && List.for_all
           (fun (x, _) ->
             let a = ref [] and b = ref [] in
             Hash_index.iter_matches1 idx x (fun i -> a := i :: !a);
             Hash_index.iter_matches1 fresh x (fun i -> b := i :: !b);
             !a = !b)
           (base @ extra))

let test_append_rehash_growth () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let r = Relation.create 2 in
  for i = 0 to 15 do
    Relation.push2 r i i
  done;
  let idx = Hash_index.build_pool pool r [| 0 |] in
  Alcotest.(check int) "no rehash yet" 0 (Hash_index.rehashes idx);
  (* grow the relation 64x through repeated appends: the bucket table must
     double (rehash) several times and stay correct throughout *)
  for round = 1 to 6 do
    let n = Relation.nrows r in
    for i = 0 to n - 1 do
      Relation.push2 r (i + (round * 10000)) i
    done;
    ignore (Hash_index.append_pool pool idx)
  done;
  check "rehashed" true (Hash_index.rehashes idx > 0);
  Alcotest.(check int) "covers all rows" (Relation.nrows r) (Hash_index.indexed_rows idx);
  let hits = ref 0 in
  Hash_index.iter_matches1 idx 3 (fun _ -> incr hits);
  let expected = ref 0 in
  for row = 0 to Relation.nrows r - 1 do
    if Relation.get r ~row ~col:0 = 3 then incr expected
  done;
  Alcotest.(check int) "post-rehash probe" !expected !hits

let test_radix_multi_partition () =
  (* enough rows to force partition_bits > 0 and exercise the partitioned
     probe path (partition select on low bits, home slot on high bits) *)
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let n = 40_000 in
  let r = Relation.create 2 in
  for i = 0 to n - 1 do
    Relation.push2 r (i mod 4096) i
  done;
  let radix = Radix_index.build_pool pool r [| 0 |] in
  check "multiple partitions" true (Radix_index.partitions radix > 1);
  let hits = ref [] in
  Radix_index.iter_matches1 radix 17 (fun row -> hits := row :: !hits);
  let expected = List.init (n / 4096 + (if 17 < n mod 4096 then 1 else 0)) (fun k -> 17 + (k * 4096)) in
  Alcotest.(check (list int)) "all occurrences found" expected (List.sort compare !hits);
  check "absent key" false (Radix_index.mem radix [| 5000 |])

let test_generation_tracking () =
  let r = Relation.of_rows 2 [ [| 1; 2 |] ] in
  let g0 = Relation.generation r in
  Relation.push2 r 3 4;
  Alcotest.(check int) "appends do not bump generation" g0 (Relation.generation r);
  Relation.clear r;
  check "clear bumps generation" true (Relation.generation r > g0);
  Alcotest.(check int) "clear empties" 0 (Relation.nrows r)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dedup_matches_set Dedup.Fast "fast dedup = set semantics";
      prop_dedup_matches_set Dedup.Boxed "boxed dedup = set semantics";
      prop_dedup_parallel_matches;
      prop_dedup_fast_eq_boxed;
      prop_index_matches_scan;
      prop_build_pool_equals_build;
      prop_radix_eq_chained;
      prop_append_eq_rebuild;
    ]

let suite =
  [
    Alcotest.test_case "relation basics" `Quick test_relation_basic;
    Alcotest.test_case "relation bag vs distinct" `Quick test_relation_roundtrip;
    Alcotest.test_case "relation copy/append" `Quick test_relation_copy_append;
    Alcotest.test_case "concat_parallel order" `Quick test_concat_parallel;
    Alcotest.test_case "memory accounting" `Quick test_accounting;
    Alcotest.test_case "dedup wide rows" `Quick test_dedup_wide_membership;
    Alcotest.test_case "dedup rehash growth" `Quick test_dedup_rehash_growth;
    Alcotest.test_case "cck sequential" `Quick test_cck_sequential;
    Alcotest.test_case "cck 4-domain stress" `Quick test_cck_concurrent_domains;
    Alcotest.test_case "cck capacity exhaustion is typed" `Quick test_cck_capacity_exhausted;
    Alcotest.test_case "index two-column" `Quick test_index_two_col_and_mem;
    Alcotest.test_case "index three-column (fold branch)" `Quick test_index_three_col;
    Alcotest.test_case "index memtrack round-trip" `Quick test_index_memtrack_roundtrip;
    Alcotest.test_case "append rehash growth" `Quick test_append_rehash_growth;
    Alcotest.test_case "radix multi-partition probe" `Quick test_radix_multi_partition;
    Alcotest.test_case "relation generation tracking" `Quick test_generation_tracking;
  ]
  @ qsuite
