(* Load model + serving hot paths at population scale: the 50k-tenant
   scheduler regression (fairness, determinism, sub-quadratic work, ring
   reclamation), Zipf sampling, deterministic load generation, the
   autoscaler policy loop, and the SLO scorecard over a real run. *)

module Rng = Rs_util.Rng
module Scheduler = Rs_service.Scheduler
module Autoscale = Rs_service.Autoscale
module Service = Rs_service.Service
module Json = Rs_obs.Json
module Histogram = Rs_obs.Histogram
module Zipf = Rs_load.Zipf
module Load = Rs_load.Load

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- scheduler at population scale --- *)

let tenants_n = 50_000

(* one item per tenant, a second for every 16th: a drain that retires
   almost the whole ring while it is being walked *)
let fill_sched sched =
  for i = 0 to tenants_n - 1 do
    Scheduler.push sched ~tenant:("t" ^ string_of_int i) i
  done;
  for i = 0 to (tenants_n / 16) - 1 do
    Scheduler.push sched ~tenant:("t" ^ string_of_int (i * 16)) (tenants_n + i)
  done

let drain sched =
  let order = ref [] in
  let rec go () =
    match Scheduler.pop sched with
    | Some (tenant, item) ->
        order := (tenant, item) :: !order;
        go ()
    | None -> ()
  in
  go ();
  List.rev !order

let test_sched_determinism_at_scale () =
  let run () =
    let s = Scheduler.create ~seed:17 in
    fill_sched s;
    drain s
  in
  let a = run () and b = run () in
  check_int "everything popped" (tenants_n + (tenants_n / 16)) (List.length a);
  check "identical pop order across same-seed runs" true (a = b);
  let c =
    let s = Scheduler.create ~seed:18 in
    fill_sched s;
    drain s
  in
  (* different seed rotates the starting point but pops the same multiset *)
  check "seed shifts the order" true (a <> c);
  check "same multiset either way" true
    (List.sort compare a = List.sort compare c)

let test_sched_subquadratic () =
  let s = Scheduler.create ~seed:17 in
  fill_sched s;
  ignore (drain s);
  let pops = Scheduler.pops s and probes = Scheduler.probes s in
  check_int "pops = items" (tenants_n + (tenants_n / 16)) pops;
  (* the seed code rebuilt the ring from a list on every pop: ~n^2/2 =
     1.25e9 slots touched for this drain. The slot ring with lazy
     compaction stays linear: each pop lands on a live slot after an
     amortized O(1) walk over retired ones. *)
  check "probes linear in pops" true (probes < (10 * pops) + 10_000);
  check "nowhere near quadratic" true (probes < 10_000_000)

let test_sched_ring_reclaimed () =
  let s = Scheduler.create ~seed:3 in
  fill_sched s;
  ignore (drain s);
  check_int "no tenants hold work" 0 (Scheduler.tenants s);
  check_int "queue empty" 0 (Scheduler.length s);
  check "ring compacted after full drain" true (Scheduler.ring_slots s < 64);
  (* the scheduler is still usable: re-arriving tenants rejoin cleanly *)
  Scheduler.push s ~tenant:"t7" 1;
  Scheduler.push s ~tenant:"fresh" 2;
  check_int "two tenants back" 2 (Scheduler.tenants s);
  check "pops again" true (Scheduler.pop s <> None);
  check "pops again twice" true (Scheduler.pop s <> None);
  check "empty again" true (Scheduler.pop s = None)

let test_sched_fairness_one_hog () =
  let s = Scheduler.create ~seed:11 in
  let others = 50 in
  for i = 1 to 100 do
    Scheduler.push s ~tenant:"hog" i
  done;
  for i = 1 to others do
    Scheduler.push s ~tenant:("quiet" ^ string_of_int i) 0
  done;
  (* 51 live tenants: one full round-robin cycle serves each exactly once,
     wherever the seeded cursor started — the hog cannot get a second
     query in before every quiet tenant got its first *)
  let counts = Hashtbl.create 64 in
  for _ = 1 to others + 1 do
    match Scheduler.pop s with
    | Some (tenant, _) ->
        Hashtbl.replace counts tenant (1 + Option.value ~default:0 (Hashtbl.find_opt counts tenant))
    | None -> Alcotest.fail "queue drained early"
  done;
  check_int "hog served exactly once in the first cycle" 1
    (Option.value ~default:0 (Hashtbl.find_opt counts "hog"));
  for i = 1 to others do
    check_int "each quiet tenant served exactly once" 1
      (Option.value ~default:0 (Hashtbl.find_opt counts ("quiet" ^ string_of_int i)))
  done;
  (* only the hog remains: the rest of the drain is all hog, in FIFO order *)
  (match Scheduler.pop s with
  | Some ("hog", _) -> ()
  | _ -> Alcotest.fail "expected the hog once others drained");
  check_int "one live tenant left" 1 (Scheduler.tenants s)

(* --- zipf sampling --- *)

let test_zipf () =
  let n = 1000 in
  let z = Zipf.create ~n ~s:1.1 in
  check_int "n" n (Zipf.n z);
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. Zipf.weight z k
  done;
  check "weights sum to 1" true (abs_float (!total -. 1.0) < 1e-9);
  check "rank 0 heaviest" true (Zipf.weight z 0 > Zipf.weight z 1);
  check "long tail decays" true (Zipf.weight z 10 > Zipf.weight z 500);
  let draw seed =
    let rng = Rng.create seed in
    List.init 200 (fun _ -> Zipf.sample z rng)
  in
  let a = draw 7 in
  check "sampling deterministic per seed" true (a = draw 7);
  check "samples in range" true (List.for_all (fun k -> k >= 0 && k < n) a);
  (* skewed traffic concentrates: rank 0 shows up a lot in 200 draws *)
  check "head rank dominates" true
    (List.length (List.filter (fun k -> k = 0) a) > 20);
  let u = Zipf.create ~n:10 ~s:0.0 in
  check "s=0 is uniform" true
    (abs_float (Zipf.weight u 0 -. Zipf.weight u 9) < 1e-9)

(* --- load generation --- *)

let event_sig = function
  | Service.Submit s ->
      (s.Service.at, s.Service.tenant, s.Service.sub_id, s.Service.edb)
  | Service.Delta { at; edb; _ } -> (at, "<delta>", "", edb)
  | Service.Explain r -> (r.Service.ex_at, r.Service.ex_tenant, "<explain>", r.Service.ex_edb)

let test_generate_deterministic () =
  let spec = Load.spec ~tenants:5_000 ~queries:120 ~seed:9 ~deltas:3 () in
  let a = Load.generate spec and b = Load.generate spec in
  let sa = List.map event_sig a.Load.events
  and sb = List.map event_sig b.Load.events in
  check "identical event streams" true (sa = sb);
  check_int "tenants_used agrees" a.Load.tenants_used b.Load.tenants_used;
  check "class populations agree" true
    (a.Load.class_population = b.Load.class_population);
  check_int "submissions + deltas" (120 + 3) (List.length a.Load.events);
  (* arrival-ordered, inside the horizon *)
  let times = List.map (fun e -> Service.event_time e) a.Load.events in
  check "arrival ordered" true (times = List.sort compare times);
  check "inside the horizon" true
    (List.for_all (fun t -> t >= 0.0 && t <= spec.Load.duration_s) times);
  (* class structure: both runs agree tenant-by-tenant, stores replay *)
  List.iter
    (fun e ->
      match e with
      | Service.Submit s ->
          check "classes agree across runs" true
            (a.Load.class_of s.Service.tenant = b.Load.class_of s.Service.tenant)
      | Service.Delta _ | Service.Explain _ -> ())
    a.Load.events;
  check "unknown tenants default bronze" true
    (a.Load.class_of "nobody" = Load.Bronze);
  let s1 = a.Load.make_store () and s2 = a.Load.make_store () in
  let rows st db =
    Rs_relation.Relation.nrows
      (List.assoc "arc" (Rs_service.Edb_store.lookup st db))
  in
  List.iter
    (fun db ->
      check "store replays identically" true (rows s1 db = rows s2 db);
      check "class database non-empty" true (rows s1 db > 0))
    [ "db_gold"; "db_silver"; "db_bronze" ]

(* --- autoscaler policy loop --- *)

let test_autoscale_policy () =
  let pol =
    Autoscale.policy ~min_workers:1 ~max_workers:8 ~queue_hi:2.0
      ~queue_lo:0.5 ~tail_target_s:0.01 ~window:4 ~cooldown:2
      ~cache_min_bytes:100 ~cache_max_bytes:800 ()
  in
  let t = Autoscale.create pol ~workers:2 ~cache_bytes:100 in
  let feed ~queue ~lat =
    Autoscale.note t ~queue_depth:queue ~latency_s:lat
  in
  (* three completions: window not full, no decision yet *)
  for _ = 1 to 3 do
    check "window still filling" true (feed ~queue:100 ~lat:1.0 = None)
  done;
  (match feed ~queue:100 ~lat:1.0 with
  | Some d ->
      check "up" true (d.Autoscale.d_dir = Autoscale.Up);
      check_int "doubles" 4 d.Autoscale.d_workers_to;
      check "cache grows with workers" true
        (d.Autoscale.d_cache_to > d.Autoscale.d_cache_from)
  | None -> Alcotest.fail "hot window must scale up");
  check_int "applied" 4 (Autoscale.workers t);
  (* one calm window is not enough (cooldown 2)... *)
  for _ = 1 to 4 do
    check "first calm window holds" true (feed ~queue:0 ~lat:0.0001 = None)
  done;
  check_int "held through first calm window" 4 (Autoscale.workers t);
  (* ...and a hot window resets the streak *)
  for _ = 1 to 4 do
    ignore (feed ~queue:100 ~lat:1.0)
  done;
  check_int "burst re-doubled" 8 (Autoscale.workers t);
  for _ = 1 to 4 do
    ignore (feed ~queue:100 ~lat:1.0)
  done;
  check_int "clamped at max" 8 (Autoscale.workers t);
  (* two consecutive calm windows finally halve *)
  for _ = 1 to 4 do
    ignore (feed ~queue:0 ~lat:0.0001)
  done;
  check_int "calm streak 1: held" 8 (Autoscale.workers t);
  let down = ref None in
  for _ = 1 to 4 do
    match feed ~queue:0 ~lat:0.0001 with
    | Some d -> down := Some d
    | None -> ()
  done;
  (match !down with
  | Some d ->
      check "down" true (d.Autoscale.d_dir = Autoscale.Down);
      check_int "halves" 4 d.Autoscale.d_workers_to
  | None -> Alcotest.fail "second calm window must scale down");
  (* six full windows were fed, six evaluations happened *)
  check_int "evals counted" 6 (Autoscale.evals t)

(* --- SLO scorecard over a real run --- *)

let test_slo_scorecard () =
  let spec =
    Load.spec ~tenants:400 ~queries:36 ~seed:5 ~duration_s:2.0 ~deltas:2
      ~skew:1.1 ~burstiness:0.6 ~bursts:2 ()
  in
  let t = Load.generate spec in
  let config =
    Service.config ~workers:2 ~queue_capacity:64 ~cache_bytes:(1 lsl 20)
      ~seed:1 ()
  in
  let report = Service.run ~config ~edb:(t.Load.make_store ()) t.Load.events in
  let stats = Load.slo_stats t report in
  check_int "three classes, always" 3 (List.length stats);
  (match stats with
  | [ g; s; b ] ->
      check "gold first" true (g.Load.cs_class = Load.Gold);
      check "targets ordered" true
        (s.Load.cs_target_s > g.Load.cs_target_s
        && b.Load.cs_target_s > s.Load.cs_target_s)
  | _ -> assert false);
  let sum f = List.fold_left (fun acc cs -> acc + f cs) 0 stats in
  check_int "served partitions by class" (Service.counter report "done")
    (sum (fun cs -> cs.Load.cs_served));
  check_int "degraded partitions by class" report.Service.served_degraded
    (sum (fun cs -> cs.Load.cs_degraded));
  check_int "rejections partition by class"
    (Service.counter report "rejected")
    (sum (fun cs -> cs.Load.cs_rejected));
  List.iter
    (fun cs ->
      check "histogram holds every served latency" true
        (Histogram.count cs.Load.cs_hist = cs.Load.cs_served);
      check "within <= served" true (cs.Load.cs_within <= cs.Load.cs_served);
      check "degraded inside served" true
        (cs.Load.cs_degraded <= cs.Load.cs_served);
      let a = Load.attainment cs in
      check "attainment in [0,1]" true (a >= 0.0 && a <= 1.0))
    stats;
  (* the JSON report round-trips and carries the fixed quantile set *)
  let j = Json.of_string (Json.to_string (Load.slo_json t report)) in
  let classes = Json.to_list (Json.member "classes" j) in
  check_int "three classes in json" 3 (List.length classes);
  List.iter
    (fun c ->
      let lat = Json.member "latency" c in
      if Json.to_int (Json.member "count" lat) = 0 then
        (* empty class: quantiles must be omitted, not fabricated zeros *)
        List.iter
          (fun k -> check "empty class omits quantiles" true (Json.member k lat = Json.Null))
          [ "p50"; "p95"; "p99"; "p999"; "min"; "max"; "mean" ]
      else
        List.iter
          (fun k -> ignore (Json.to_float (Json.member k lat)))
          [ "p50"; "p95"; "p99"; "p999"; "min"; "max"; "mean" ])
    classes;
  check "summary renders" true (String.length (Load.slo_summary t report) > 0)

let suite =
  [
    Alcotest.test_case "scheduler: 50k-tenant pop order is deterministic"
      `Quick test_sched_determinism_at_scale;
    Alcotest.test_case "scheduler: probes stay linear at 50k tenants" `Quick
      test_sched_subquadratic;
    Alcotest.test_case "scheduler: ring reclaimed after drain" `Quick
      test_sched_ring_reclaimed;
    Alcotest.test_case "scheduler: round-robin bounds a chatty tenant" `Quick
      test_sched_fairness_one_hog;
    Alcotest.test_case "zipf sampling" `Quick test_zipf;
    Alcotest.test_case "load generation is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "autoscaler: hysteresis and clamps" `Quick
      test_autoscale_policy;
    Alcotest.test_case "slo scorecard over a live run" `Quick
      test_slo_scorecard;
  ]
