module Measure = Rs_benchkit.Measure
module Report = Rs_benchkit.Report
module Workloads = Rs_benchkit.Workloads
module Registry = Rs_benchkit.Registry

let check = Alcotest.(check bool)

let test_measure_done () =
  let r =
    Measure.run ~name:"ok" ~make_inputs:(fun () -> ()) (fun () pool ~deadline_vs ~trace:_ ->
        ignore deadline_vs;
        Rs_parallel.Pool.add_serial pool 0.5)
  in
  (match r.Measure.outcome with
  | Measure.Done t -> check "time includes modeled serial" true (t >= 0.5)
  | _ -> Alcotest.fail "expected Done");
  Alcotest.(check string) "cell" "0.500"
    (Measure.outcome_cell (Measure.Done 0.4999999))

let test_measure_oom () =
  let r =
    Measure.run ~mem_budget:100 ~name:"oom" ~make_inputs:(fun () -> ())
      (fun () _pool ~deadline_vs ~trace:_ ->
        ignore deadline_vs;
        Rs_storage.Memtrack.alloc 1000)
  in
  check "oom" true (r.Measure.outcome = Measure.Oom);
  Alcotest.(check string) "cell" "OOM" (Measure.outcome_cell r.Measure.outcome)

let test_measure_timeout_and_unsupported () =
  let r =
    Measure.run ~timeout_vs:0.1 ~name:"to" ~make_inputs:(fun () -> ())
      (fun () _pool ~deadline_vs ~trace:_ ->
        match deadline_vs with
        | Some d -> raise (Recstep.Interpreter.Timeout_simulated d)
        | None -> Alcotest.fail "deadline not passed through")
  in
  check "timeout" true (r.Measure.outcome = Measure.Timeout);
  let r2 =
    Measure.run ~name:"unsup" ~make_inputs:(fun () -> ())
      (fun () _ ~deadline_vs ~trace:_ ->
        ignore deadline_vs;
        raise (Rs_engines.Engine_intf.Unsupported "x"))
  in
  Alcotest.(check string) "cell" "-" (Measure.outcome_cell r2.Measure.outcome)

let test_measure_repeats_average () =
  let calls = ref 0 in
  let r =
    Measure.run ~repeats:3 ~name:"rep" ~make_inputs:(fun () -> incr calls)
      (fun () pool ~deadline_vs ~trace:_ ->
        ignore deadline_vs;
        Rs_parallel.Pool.add_serial pool 0.2)
  in
  Alcotest.(check int) "warmup + 3 runs" 4 !calls;
  match r.Measure.outcome with
  | Measure.Done t -> check "avg near 0.2" true (t >= 0.2 && t < 0.25)
  | _ -> Alcotest.fail "expected Done"

let test_resample () =
  let series = [ (0.0, 1.0); (0.5, 2.0); (0.9, 3.0) ] in
  Alcotest.(check (list (float 1e-9))) "lvcf resample" [ 1.0; 2.0; 2.0; 3.0 ]
    (Report.resample series ~span:1.0 ~points:4)

let test_registry () =
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check int) "25 experiments" 25 (List.length ids);
  check "unique ids" true (List.length (List.sort_uniq compare ids) = List.length ids);
  check "find" true (Registry.find "fig10" <> None);
  check "find missing" true (Registry.find "fig99" = None);
  List.iter
    (fun id -> check ("has " ^ id) true (List.mem id ids))
    [ "table1"; "fig2"; "fig3"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12";
      "fig13"; "fig14"; "fig15"; "fig16"; "table4"; "costmodel"; "coord_sweep"; "uie_sharing";
      "service"; "load"; "join"; "ivm"; "shard"; "kernel" ]

let test_workload_catalog () =
  let gn = Workloads.gn_series ~scale:1 in
  Alcotest.(check int) "seven Gn graphs" 7 (List.length gn);
  let rw = Workloads.real_world ~scale:1 in
  Alcotest.(check (list string)) "presets"
    [ "livejournal"; "orkut"; "arabic"; "twitter" ]
    (List.map fst rw);
  let w = Workloads.tc (List.hd gn) in
  check "label" true (w.Workloads.label = "TC/G100");
  let edb = w.Workloads.make_edb () in
  check "arc input" true (List.mem_assoc "arc" edb);
  let r = Workloads.reach (List.hd gn) in
  let redb = r.Workloads.make_edb () in
  check "id input" true (List.mem_assoc "id" redb);
  let s = Workloads.sssp (List.hd gn) in
  let sedb = s.Workloads.make_edb () in
  Alcotest.(check int) "weighted arc" 3
    (Rs_relation.Relation.arity (List.assoc "arc" sedb))

let test_run_one_engine () =
  let w = Workloads.tc ("tiny", fun () -> Recstep.Frontend.edges [ (0, 1); (1, 2) ]) in
  let r = Report.run_one Rs_engines.Engines.recstep w in
  check "engine ran" true (match r.Measure.outcome with Measure.Done _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "measure done" `Quick test_measure_done;
    Alcotest.test_case "measure OOM" `Quick test_measure_oom;
    Alcotest.test_case "measure timeout/unsupported" `Quick test_measure_timeout_and_unsupported;
    Alcotest.test_case "measure repeats" `Quick test_measure_repeats_average;
    Alcotest.test_case "resample" `Quick test_resample;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "workload catalog" `Quick test_workload_catalog;
    Alcotest.test_case "run_one engine" `Quick test_run_one_engine;
  ]
