module Relation = Rs_relation.Relation
module Pool = Rs_parallel.Pool
module Parser = Recstep.Parser
module Frontend = Recstep.Frontend
module Interpreter = Recstep.Interpreter
module Programs = Recstep.Programs
module Partitioner = Rs_shard.Partitioner
module Exchange = Rs_shard.Exchange
module Rebalancer = Rs_shard.Rebalancer
module Shard_planner = Rs_shard.Shard_planner
module Shard_exec = Rs_shard.Shard_exec
module Fault = Rs_chaos.Fault
module Inject = Rs_chaos.Inject

let check = Alcotest.(check bool)

let run_sharded ?shards ?colocation ?rebalance ?trace src edb =
  let pool = Pool.create ~workers:8 () in
  Pool.begin_run pool;
  let options = Shard_exec.options ?shards ?colocation ?rebalance ?trace () in
  Shard_exec.run ~options ~pool ~edb (Parser.parse src)

let rows_of r =
  let rows = ref [] in
  for i = Relation.nrows r - 1 downto 0 do
    rows := Array.init (Relation.arity r) (fun c -> Relation.get r ~row:i ~col:c) :: !rows
  done;
  List.sort compare !rows

let sharded_rows (res : Shard_exec.result) name = rows_of (res.Shard_exec.relation_of name)

(* --- partitioner ------------------------------------------------------- *)

let test_partitioner_hash_stable () =
  let p = Partitioner.create ~shards:4 () in
  let r = Relation.create ~name:"big" 2 in
  for i = 0 to 500 do
    Relation.push2 r i (i * 7)
  done;
  (match Partitioner.decide_edb p "big" r with
  | Partitioner.Hash { col } -> Alcotest.(check int) "hash on col 0" 0 col
  | Partitioner.Reference -> Alcotest.fail "large relation should hash-distribute");
  for k = -50 to 50 do
    let n = Partitioner.node_of_key p k in
    check "stable" true (n = Partitioner.node_of_key p k);
    check "in range" true (n >= 0 && n < 4);
    let b = Partitioner.bucket_of_key p k in
    check "bucket range" true (b >= 0 && b < 32)
  done;
  (* two-level routing: reassigning a bucket moves every key of that bucket *)
  let k = 17 in
  let b = Partitioner.bucket_of_key p k in
  let before = Partitioner.node_of_key p k in
  let target = (before + 1) mod 4 in
  Partitioner.move_bucket p ~bucket:b ~node:target;
  Alcotest.(check int) "moved" target (Partitioner.node_of_key p k)

let test_partitioner_reference () =
  let p = Partitioner.create ~shards:4 () in
  let small = Relation.create ~name:"small" 2 in
  for i = 0 to 9 do
    Relation.push2 small i i
  done;
  check "small is reference" true (Partitioner.decide_edb p "small" small = Partitioner.Reference);
  check "strategy remembered" true (Partitioner.strategy p "small" = Partitioner.Reference);
  check "reference rows owned by node 0" true
    (Partitioner.owner_of_row p "small" [| 3; 3 |] = 0)

let test_partitioner_wide_keys () =
  let p = Partitioner.create ~shards:3 () in
  let wide = Relation.create ~name:"wide" 4 in
  for i = 0 to 400 do
    Relation.push_row wide [| i; i + 1; i + 2; i + 3 |]
  done;
  (match Partitioner.decide_edb p "wide" wide with
  | Partitioner.Hash { col } ->
      Alcotest.(check int) "wide hashes on col 0" 0 col;
      let owner = Partitioner.owner_of_row p "wide" [| 42; 0; 0; 0 |] in
      Alcotest.(check int) "owner follows key col" (Partitioner.node_of_key p 42) owner
  | Partitioner.Reference -> Alcotest.fail "wide relation should hash-distribute");
  check "idb arity 0 is reference" true (Partitioner.decide_idb p "flag" ~arity:0 = Partitioner.Reference)

(* --- agreement with the single-node interpreter ------------------------ *)

let interp_rows src edb name =
  let r, _ = Frontend.run_text ~edb src in
  List.sort compare (Frontend.result_rows r name)

let gen_graph = Refs.arbitrary_edges ~max_nodes:10 ~max_edges:25 ()

let prop_sharded_tc_agrees =
  QCheck2.Test.make ~name:"sharded TC = reference (shards 1/2/4)" ~count:30 gen_graph
    (fun edges ->
      let expected =
        Refs.IntPairSet.elements (Refs.transitive_closure edges) |> List.sort compare
      in
      List.for_all
        (fun shards ->
          let res =
            run_sharded ~shards Programs.tc [ ("arc", Refs.relation_of_edges edges) ]
          in
          Refs.sorted_pairs (sharded_rows res "tc") = expected)
        [ 1; 2; 4 ])

let prop_sharded_sg_agrees =
  QCheck2.Test.make ~name:"sharded SG = reference" ~count:20 gen_graph (fun edges ->
      let expected = Refs.IntPairSet.elements (Refs.same_generation edges) |> List.sort compare in
      let res = run_sharded ~shards:4 Programs.sg [ ("arc", Refs.relation_of_edges edges) ] in
      Refs.sorted_pairs (sharded_rows res "sg") = expected)

let prop_sharded_negation_agrees =
  QCheck2.Test.make ~name:"sharded NTC (stratified negation) = interpreter" ~count:15 gen_graph
    (fun edges ->
      QCheck2.assume (edges <> []);
      let expected = interp_rows Programs.ntc [ ("arc", Refs.relation_of_edges edges) ] "ntc" in
      let res = run_sharded ~shards:4 Programs.ntc [ ("arc", Refs.relation_of_edges edges) ] in
      sharded_rows res "ntc" = expected)

let even_odd =
  {|
.input next
.output even
even(0).
odd(y) :- even(x), next(x, y).
even(y) :- odd(x), next(x, y).
|}

let prop_sharded_mutual_recursion_agrees =
  QCheck2.Test.make ~name:"sharded even/odd (mutual recursion) = interpreter" ~count:15 gen_graph
    (fun edges ->
      let edb () = [ ("next", Refs.relation_of_edges ~name:"next" edges) ] in
      let expected = interp_rows even_odd (edb ()) "even" in
      let res = run_sharded ~shards:4 even_odd (edb ()) in
      sharded_rows res "even" = expected)

let prop_no_colocation_same_output =
  QCheck2.Test.make ~name:"--no-colocation: same rows, shuffle charged" ~count:15 gen_graph
    (fun edges ->
      QCheck2.assume (List.length edges > 3);
      let expected =
        Refs.IntPairSet.elements (Refs.transitive_closure edges) |> List.sort compare
      in
      let res =
        run_sharded ~shards:4 ~colocation:false Programs.tc
          [ ("arc", Refs.relation_of_edges edges) ]
      in
      Refs.sorted_pairs (sharded_rows res "tc") = expected
      && res.Shard_exec.shuffle_tuples > 0)

(* --- colocation classification and exchange counters ------------------- *)

let big_arc n =
  let r = Relation.create ~name:"arc" 2 in
  for i = 0 to n - 1 do
    Relation.push2 r i ((i + 1) mod n);
    Relation.push2 r i ((i * 3 + 7) mod n)
  done;
  r

let test_tc_classification () =
  (* left-linear TC, hash-distributed arc: the base rule is fully
     colocated, the recursive rule broadcasts arc once per stratum —
     nothing shuffles, so colocated TC moves zero repartition tuples. *)
  let res = run_sharded ~shards:4 Programs.tc [ ("arc", big_arc 120) ] in
  Alcotest.(check int) "colocated rules" 1 res.Shard_exec.colocated_rules;
  Alcotest.(check int) "broadcast rules" 1 res.Shard_exec.broadcast_rules;
  Alcotest.(check int) "no shuffles when colocated" 0 res.Shard_exec.shuffle_tuples;
  check "broadcast traffic exists" true (res.Shard_exec.broadcast_tuples > 0);
  check "supersteps counted" true (res.Shard_exec.supersteps > 0)

let test_forced_shuffle_is_slower () =
  let edb () = [ ("arc", big_arc 150) ] in
  let run colocation =
    let pool = Pool.create ~workers:8 () in
    Pool.begin_run pool;
    let options = Shard_exec.options ~shards:4 ~colocation () in
    let res = Shard_exec.run ~options ~pool ~edb:(edb ()) (Parser.parse Programs.tc) in
    (Pool.vtime_now pool, res)
  in
  let v_col, r_col = run true in
  let v_shuf, r_shuf = run false in
  check "same result rows" true (sharded_rows r_col "tc" = sharded_rows r_shuf "tc");
  check "forced shuffle moves tuples" true (r_shuf.Shard_exec.shuffle_tuples > 0);
  check "colocated makespan is better" true (v_col < v_shuf)

(* --- rebalancer -------------------------------------------------------- *)

let test_rebalancer_plan_balanced () =
  let weights = Array.make 32 10 in
  let assign = Array.init 32 (fun b -> b mod 4) in
  let busy = Array.make 4 1.0 in
  check "balanced load plans nothing" true
    (Rebalancer.plan ~shards:4 ~assign ~weights ~busy ~threshold:1.5 = [])

let test_rebalancer_plan_skewed () =
  (* node 0 holds two heavy buckets; greedy should offload one of them *)
  let weights = Array.make 32 1 in
  weights.(0) <- 400;
  weights.(4) <- 400;
  let assign = Array.init 32 (fun b -> b mod 4) in
  let busy = Array.make 4 0.0 in
  let moves = Rebalancer.plan ~shards:4 ~assign ~weights ~busy ~threshold:1.5 in
  check "skew plans moves" true (moves <> []);
  (match moves with
  | first :: _ -> Alcotest.(check int) "first move comes from hot node" 0 first.Rebalancer.mv_from
  | [] -> ());
  List.iter
    (fun m -> check "never moves to its own node" true (m.Rebalancer.mv_to <> m.Rebalancer.mv_from))
    moves;
  check "does not move everything away" true (List.length moves < 8)

let test_rebalancer_plan_no_swap () =
  (* a single dominant bucket cannot be moved without swapping the skew *)
  let weights = Array.make 32 0 in
  weights.(0) <- 1000;
  let assign = Array.init 32 (fun b -> b mod 4) in
  let busy = Array.make 4 0.0 in
  check "dominant bucket stays put" true
    (Rebalancer.plan ~shards:4 ~assign ~weights ~busy ~threshold:1.5 = [])

let test_rebalance_end_to_end () =
  (* Zipf-ish key skew: pick source keys that land in distinct buckets of
     node 0 (probed through an identically-configured partitioner), load
     them heavily, and check the run both rebalances and stays correct. *)
  let probe = Partitioner.create ~shards:4 () in
  let heavy =
    let rec collect k acc seen =
      if List.length acc >= 3 then List.rev acc
      else
        let b = Partitioner.bucket_of_key probe k in
        if Partitioner.node_of_key probe k = 0 && not (List.mem b seen) then
          collect (k + 1) (k :: acc) (b :: seen)
        else collect (k + 1) acc seen
    in
    collect 0 [] []
  in
  let edges =
    List.concat_map (fun k -> List.init 150 (fun i -> (k, 1000 + (i mod 40)))) heavy
    @ List.init 30 (fun i -> (2000 + i, 2000 + i + 1))
  in
  let expected = Refs.IntPairSet.elements (Refs.transitive_closure edges) |> List.sort compare in
  let res =
    run_sharded ~shards:4 ~rebalance:true Programs.tc [ ("arc", Refs.relation_of_edges edges) ]
  in
  check "rebalance planned moves" true (res.Shard_exec.rebalance_moves > 0);
  check "rows migrated" true (res.Shard_exec.rebalance_rows > 0);
  check "result survives migration" true (Refs.sorted_pairs (sharded_rows res "tc") = expected)

(* --- chaos recovery ---------------------------------------------------- *)

let test_node_loss_recovery () =
  let edges = List.init 60 (fun i -> (i, (i + 1) mod 60)) in
  let expected = Refs.IntPairSet.elements (Refs.transitive_closure edges) |> List.sort compare in
  let plan = Fault.plan [ Fault.spec ~p:1.0 ~limit:2 Fault.Node_loss ] in
  let res, fired =
    Inject.with_plan plan (fun () ->
        let r = run_sharded ~shards:4 Programs.tc [ ("arc", Refs.relation_of_edges edges) ] in
        (r, Inject.fires ()))
  in
  check "fault actually fired" true (List.mem_assoc Fault.Node_loss fired);
  check "recovered" true (res.Shard_exec.recoveries > 0);
  check "result correct after recovery" true
    (Refs.sorted_pairs (sharded_rows res "tc") = expected)

let test_shuffle_drop_recovery () =
  let edges = List.init 50 (fun i -> (i, (i + 3) mod 50)) in
  let expected = Refs.IntPairSet.elements (Refs.transitive_closure edges) |> List.sort compare in
  let plan = Fault.plan [ Fault.spec ~p:1.0 ~limit:1 Fault.Shuffle_drop ] in
  let res =
    Inject.with_plan plan (fun () ->
        (* force repartition traffic so the drop probe has messages to hit *)
        run_sharded ~shards:4 ~colocation:false Programs.tc
          [ ("arc", Refs.relation_of_edges edges) ])
  in
  check "recovered from dropped shuffle" true (res.Shard_exec.recoveries > 0);
  check "result correct" true (Refs.sorted_pairs (sharded_rows res "tc") = expected)

let test_recovery_exhaustion () =
  let edges = List.init 40 (fun i -> (i, (i + 1) mod 40)) in
  let plan = Fault.plan [ Fault.spec ~p:1.0 Fault.Node_loss ] in
  check "persistent node loss escapes after max recoveries" true
    (Inject.with_plan plan (fun () ->
         match run_sharded ~shards:4 Programs.tc [ ("arc", Refs.relation_of_edges edges) ] with
         | _ -> false
         | exception Fault.Injected { cls = Fault.Node_loss; _ } -> true))

(* --- aggregates gate --------------------------------------------------- *)

let test_aggregates_unsupported () =
  check "aggregate program raises Unsupported" true
    (match run_sharded ~shards:2 Programs.gtc [ ("arc", big_arc 20) ] with
    | _ -> false
    | exception Shard_exec.Unsupported _ -> true)

let suite =
  [
    Alcotest.test_case "partitioner: hash routing stable" `Quick test_partitioner_hash_stable;
    Alcotest.test_case "partitioner: reference tables" `Quick test_partitioner_reference;
    Alcotest.test_case "partitioner: wide keys / nullary idb" `Quick test_partitioner_wide_keys;
    QCheck_alcotest.to_alcotest prop_sharded_tc_agrees;
    QCheck_alcotest.to_alcotest prop_sharded_sg_agrees;
    QCheck_alcotest.to_alcotest prop_sharded_negation_agrees;
    QCheck_alcotest.to_alcotest prop_sharded_mutual_recursion_agrees;
    QCheck_alcotest.to_alcotest prop_no_colocation_same_output;
    Alcotest.test_case "TC classification and exchange counters" `Quick test_tc_classification;
    Alcotest.test_case "forced shuffle degrades makespan" `Quick test_forced_shuffle_is_slower;
    Alcotest.test_case "rebalancer: balanced plans nothing" `Quick test_rebalancer_plan_balanced;
    Alcotest.test_case "rebalancer: skew plans moves" `Quick test_rebalancer_plan_skewed;
    Alcotest.test_case "rebalancer: dominant bucket stays" `Quick test_rebalancer_plan_no_swap;
    Alcotest.test_case "rebalance end-to-end (Zipf TC)" `Quick test_rebalance_end_to_end;
    Alcotest.test_case "chaos: node loss recovery" `Quick test_node_loss_recovery;
    Alcotest.test_case "chaos: shuffle drop recovery" `Quick test_shuffle_drop_recovery;
    Alcotest.test_case "chaos: recovery exhaustion escapes" `Quick test_recovery_exhaustion;
    Alcotest.test_case "aggregates are rejected" `Quick test_aggregates_unsupported;
  ]
