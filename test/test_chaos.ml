(* rs_chaos: plan syntax, deterministic scoped injection, the instrumented
   fault points, the typed retry ladder, and end-to-end recovery through the
   service — including the frozen chaos corpus. *)

module Fault = Rs_chaos.Fault
module Inject = Rs_chaos.Inject
module Memtrack = Rs_storage.Memtrack
module Pool = Rs_parallel.Pool
module Relation = Rs_relation.Relation
module Retry = Rs_service.Retry
module Service = Rs_service.Service
module Edb_store = Rs_service.Edb_store
module Result_cache = Rs_service.Result_cache
module Gen = Rs_fuzz.Gen
module Differ = Rs_fuzz.Differ
module Chaos_harness = Rs_fuzz.Chaos_harness
module Parser = Recstep.Parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- plan syntax --------------------------------------------------------- *)

let test_plan_syntax () =
  let p = Fault.plan_of_string ~seed:9 "mem:p=0.5,threshold=4096;crash:limit=1;stall:factor=8" in
  check_int "three specs" 3 (List.length p.Fault.specs);
  check_int "seed kept" 9 p.Fault.seed;
  let rt = Fault.plan_of_string ~seed:9 (Fault.plan_to_string p) in
  check "round-trips" true (rt = p);
  let mem = List.find (fun s -> s.Fault.cls = Fault.Mem) p.Fault.specs in
  check "p parsed" true (mem.Fault.p = 0.5);
  check_int "threshold parsed" 4096 mem.Fault.threshold;
  let expect_error s =
    match Fault.plan_of_string s with
    | exception Fault.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted bad plan %S" s)
  in
  expect_error "bogus:p=1";
  expect_error "mem:p=abc";
  expect_error "mem:p=1;mem:p=0.5";
  expect_error "mem:p=2";
  (match Fault.plan [ Fault.spec Fault.Txn; Fault.spec Fault.Txn ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate class accepted");
  List.iter
    (fun c -> check "cls_of_name inverts cls_name" true
        (Fault.cls_of_name (Fault.cls_name c) = Some c))
    Fault.all_classes

(* --- deterministic, scoped activation ------------------------------------ *)

let test_inject_determinism () =
  let plan seed = Fault.plan ~seed [ Fault.spec ~p:0.3 Fault.Dedup_drop ] in
  let pattern seed =
    Inject.with_plan (plan seed) (fun () ->
        List.init 512 (fun k -> Inject.dedup_drops ~key:(k * 7919)))
  in
  check "same seed, same decisions" true (pattern 42 = pattern 42);
  check "different seed, different decisions" true (pattern 42 <> pattern 43);
  check "some keys dropped" true (List.exists Fun.id (pattern 42));
  check "some keys kept" true (List.exists not (pattern 42));
  (* probe-ordinal streams are equally reproducible *)
  let stalls () =
    Inject.with_plan (Fault.plan ~seed:7 [ Fault.spec ~p:0.5 ~factor:8.0 Fault.Stall ])
      (fun () -> List.init 64 (fun _ -> Inject.stall_factor ()))
  in
  check "stall stream reproducible" true (stalls () = stalls ())

let test_with_plan_scoping () =
  check "inactive outside" false (Inject.active ());
  (* probes are no-ops without a plan *)
  Inject.txn_should_abort ~point:"t";
  Inject.crash_point ~point:"c";
  check "no drop without plan" false (Inject.dedup_drops ~key:1);
  check "no stall without plan" true (Inject.stall_factor () = 1.0);
  check "no fires without plan" true (Inject.fires () = []);
  let plan = Fault.plan ~seed:1 [ Fault.spec Fault.Txn ] in
  (* restored on normal exit *)
  Inject.with_plan plan (fun () -> check "active inside" true (Inject.active ()));
  check "inactive after" false (Inject.active ());
  (* restored on the exception path too *)
  (match Inject.with_plan plan (fun () -> Inject.txn_should_abort ~point:"x") with
  | () -> Alcotest.fail "armed txn abort did not fire"
  | exception Fault.Injected { cls = Fault.Txn; point = "x" } -> ()
  | exception e -> raise e);
  check "inactive after exception" false (Inject.active ());
  (* nested plans shadow and restore *)
  Inject.with_plan plan (fun () ->
      let inner = Fault.plan ~seed:2 [ Fault.spec ~factor:3.0 Fault.Stall ] in
      Inject.with_plan inner (fun () ->
          check "inner plan shadows" true (Inject.stall_factor () = 3.0));
      check "outer restored" true (Inject.stall_factor () = 1.0))

(* --- instrumented fault points ------------------------------------------- *)

let test_memtrack_probe () =
  Memtrack.hard_reset ();
  Memtrack.set_budget None;
  Memtrack.alloc 512;
  let plan = Fault.plan ~seed:1 [ Fault.spec ~threshold:1000 ~limit:1 Fault.Mem ] in
  Inject.with_plan plan (fun () ->
      (* below the threshold: doesn't count *)
      Memtrack.alloc 100;
      Memtrack.free 100;
      check_int "live intact below threshold" 512 (Memtrack.live ());
      (match Memtrack.alloc 600 with
      | () -> Alcotest.fail "armed mem fault did not fire"
      | exception Memtrack.Simulated_oom { requested; live; _ } ->
          check_int "requested" 600 requested;
          check_int "live reported pre-alloc" 512 live);
      check_int "live rolled back" 512 (Memtrack.live ());
      (* limit=1: the second crossing succeeds *)
      Memtrack.alloc 600;
      check_int "post-limit alloc lands" 1112 (Memtrack.live ());
      check "mem fire counted" true (List.assoc_opt Fault.Mem (Inject.fires ()) = Some 1));
  Memtrack.hard_reset ()

let test_pool_stall_inflates_vtime () =
  let work pool =
    Pool.begin_run pool;
    let acc = Atomic.make 0 in
    Pool.parallel_for pool 0 100_000 (fun lo hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + (i land 31)
        done;
        Atomic.set acc (Atomic.get acc + !s));
    Pool.vtime_now pool
  in
  let plain = work (Pool.create ~workers:4 ()) in
  let stalled =
    Inject.with_plan
      (Fault.plan ~seed:1 [ Fault.spec ~factor:1e6 Fault.Stall ])
      (fun () -> work (Pool.create ~workers:4 ()))
  in
  check "stall inflates the virtual clock" true (stalled > plain *. 100.0)

let test_pool_crash_then_recover () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let plan = Fault.plan ~seed:1 [ Fault.spec ~limit:1 Fault.Crash ] in
  Inject.with_plan plan (fun () ->
      (match Pool.parallel_for pool 0 100 (fun _ _ -> ()) with
      | () -> Alcotest.fail "armed crash did not fire"
      | exception Fault.Injected { cls = Fault.Crash; point = "pool.parallel_for" } -> ());
      (* the pool survives its dead chunk: the next batch runs to completion *)
      let acc = Atomic.make 0 in
      Pool.parallel_for pool 0 100 (fun lo hi ->
          Atomic.set acc (Atomic.get acc + (hi - lo)));
      check_int "pool usable after crash" 100 (Atomic.get acc))

(* --- the retry policy ---------------------------------------------------- *)

let test_retry_backoff_sequence () =
  let b r = Retry.backoff_s Retry.default ~retry:r in
  check "backoff 1" true (b 1 = 1e-3);
  check "backoff 2" true (b 2 = 2e-3);
  check "backoff 3" true (b 3 = 4e-3);
  check "backoff caps" true (b 9 = 0.25 && b 20 = 0.25);
  match Retry.backoff_s Retry.default ~retry:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "retry 0 accepted"

let test_retry_ladder_knobs () =
  check "ladder order" true
    (Retry.all_rungs
    = [ Retry.Full; Retry.Half_workers; Retry.No_persistent_indexes; Retry.No_fast_path ]);
  check "ladder chain" true
    (Retry.next_rung Retry.Full = Some Retry.Half_workers
    && Retry.next_rung Retry.Half_workers = Some Retry.No_persistent_indexes
    && Retry.next_rung Retry.No_persistent_indexes = Some Retry.No_fast_path
    && Retry.next_rung Retry.No_fast_path = None);
  let k = Retry.knobs ~workers:8 in
  check "full" true (k Retry.Full = { Retry.k_workers = 8; k_persistent_indexes = true; k_fast_path = true });
  check "half keeps options" true
    (k Retry.Half_workers = { Retry.k_workers = 4; k_persistent_indexes = true; k_fast_path = true });
  check "no indexes keeps half workers" true
    (k Retry.No_persistent_indexes
    = { Retry.k_workers = 4; k_persistent_indexes = false; k_fast_path = true });
  check "bottom rung is cumulative" true
    (k Retry.No_fast_path
    = { Retry.k_workers = 4; k_persistent_indexes = false; k_fast_path = false });
  check "worker floor" true ((Retry.knobs ~workers:1 Retry.Half_workers).Retry.k_workers = 1)

let test_retry_class_retryability () =
  check "oom retryable" true (Retry.retryable Retry.Oom_failure);
  List.iter
    (fun c -> check (Fault.cls_name c ^ " retryable") true
        (Retry.retryable (Retry.Fault_failure c)))
    [ Fault.Txn; Fault.Crash; Fault.Dedup_fail; Fault.Index_fail ];
  List.iter
    (fun c -> check (Fault.cls_name c ^ " not retryable") false
        (Retry.retryable (Retry.Fault_failure c)))
    [ Fault.Mem; Fault.Stall; Fault.Dedup_drop; Fault.Cache_corrupt ]

let test_retry_decisions () =
  let p = Retry.default in
  (* OOM walks down the ladder *)
  check "oom advances rung" true
    (Retry.next p ~attempt:1 ~rung:Retry.Full Retry.Oom_failure
    = Retry.Retry { rung = Retry.Half_workers; backoff_s = 1e-3 });
  check "oom at the bottom gives up" true
    (Retry.next p ~attempt:2 ~rung:Retry.No_fast_path Retry.Oom_failure = Retry.Give_up);
  (* transient faults retry in place, with growing backoff *)
  check "fault retries same rung" true
    (Retry.next p ~attempt:2 ~rung:Retry.Half_workers (Retry.Fault_failure Fault.Crash)
    = Retry.Retry { rung = Retry.Half_workers; backoff_s = 2e-3 });
  (* attempt budget exhausts *)
  check "max attempts gives up" true
    (Retry.next p ~attempt:4 ~rung:Retry.Full (Retry.Fault_failure Fault.Txn)
    = Retry.Give_up);
  (* non-retryable classes give up immediately *)
  check "stall gives up" true
    (Retry.next p ~attempt:1 ~rung:Retry.Full (Retry.Fault_failure Fault.Stall)
    = Retry.Give_up)

(* --- result-cache integrity guards --------------------------------------- *)

let cache_key = { Result_cache.program = "p"; edb = "g"; edb_version = 0 }
let cache_value : Result_cache.value = [ ("out", [ [| 1; 2 |]; [| 3; 4 |] ]) ]

let test_cache_detects_corruption () =
  let c = Result_cache.create ~budget_bytes:(1 lsl 20) in
  Inject.with_plan
    (Fault.plan ~seed:1 [ Fault.spec ~limit:1 Fault.Cache_corrupt ])
    (fun () ->
      Result_cache.add c cache_key cache_value ~canonical:"p";
      check "corrupted entry deflected to miss" true
        (Result_cache.find c cache_key ~canonical:"p" = None);
      check_int "corruption counted" 1 (Result_cache.stats c).Result_cache.corruptions;
      (* limit consumed: a fresh insert is stored intact *)
      Result_cache.add c cache_key cache_value ~canonical:"p";
      check "reinserted entry verifies" true
        (Result_cache.find c cache_key ~canonical:"p" = Some cache_value))

let test_cache_refuses_stale_and_degraded () =
  let c = Result_cache.create ~budget_bytes:(1 lsl 20) in
  Result_cache.add c cache_key cache_value ~canonical:"p" ~stale:true;
  check "stale result not cached" true (Result_cache.find c cache_key ~canonical:"p" = None);
  Result_cache.add c cache_key cache_value ~canonical:"p" ~degraded:true;
  check "degraded result not cached" true
    (Result_cache.find c cache_key ~canonical:"p" = None);
  check_int "both refusals counted" 2 (Result_cache.stats c).Result_cache.skipped;
  Result_cache.add c cache_key cache_value ~canonical:"p";
  check "clean result cached" true
    (Result_cache.find c cache_key ~canonical:"p" = Some cache_value)

(* --- service recovery, end to end ----------------------------------------- *)

let tc = Recstep.Programs.parsed Recstep.Programs.tc

let ring n =
  let rows = List.init n (fun i -> [| i; (i + 1) mod n |]) in
  let r = Relation.of_rows ~name:"arc" 2 rows in
  Relation.account r;
  r

let store () =
  let t = Edb_store.create () in
  Edb_store.define t "g" [ ("arc", ring 6) ];
  t

let counter report name = List.assoc name report.Service.counters

let run_one ?deadline_vs ?retry plan_specs =
  Memtrack.hard_reset ();
  Memtrack.set_budget None;
  let store = store () in
  let baseline = Memtrack.live () in
  let config = Service.config ~workers:8 ~seed:1 ?retry () in
  let sub = Service.Submit (Service.submission ?deadline_vs ~tenant:"t" ~edb:"g" tc) in
  let report =
    Inject.with_plan (Fault.plan ~seed:1 plan_specs) (fun () ->
        Service.run ~config ~edb:store [ sub ])
  in
  check_int "live bytes back to baseline" baseline (Memtrack.live ());
  (report, List.hd report.Service.completions)

let test_service_retries_txn_abort () =
  let report, c = run_one [ Fault.spec ~limit:1 Fault.Txn ] in
  (match c.Service.c_outcome with
  | Service.Done _ -> ()
  | o -> Alcotest.fail ("expected done, got " ^ Service.outcome_label o));
  check_int "one retry" 1 c.Service.c_retries;
  check "not degraded (same rung)" true (c.Service.c_degraded = None);
  check_int "retried counter" 1 (counter report "retried");
  check_int "no fault surfaced" 0 (counter report "fault")

let test_service_degrades_on_mem_fault () =
  (* one allocation failure past the current working set: attempt 1 dies
     with OOM, attempt 2 runs a rung down and completes *)
  Memtrack.hard_reset ();
  let s = store () in
  let threshold = Memtrack.live () + 256 in
  let config = Service.config ~workers:8 ~seed:1 () in
  let sub = Service.Submit (Service.submission ~tenant:"t" ~edb:"g" tc) in
  let report =
    Inject.with_plan
      (Fault.plan ~seed:1 [ Fault.spec ~threshold ~limit:1 Fault.Mem ])
      (fun () -> Service.run ~config ~edb:s [ sub ])
  in
  let c = List.hd report.Service.completions in
  (match c.Service.c_outcome with
  | Service.Done _ -> ()
  | o -> Alcotest.fail ("expected done, got " ^ Service.outcome_label o));
  check "degraded one rung" true (c.Service.c_degraded = Some "half_workers");
  check_int "degraded counter" 1 (counter report "degraded");
  check_int "degraded run not cached" 0 report.Service.cache.Result_cache.insertions

let test_service_backoff_exhausts_deadline () =
  (* a transient fault is retryable, but the backoff lands past the
     deadline: the service must report a typed Timeout, not sleep through *)
  let retry = Retry.policy ~backoff_base_s:10.0 ~backoff_cap_s:10.0 () in
  let report, c = run_one ~deadline_vs:0.5 ~retry [ Fault.spec Fault.Txn ] in
  check "typed timeout" true (c.Service.c_outcome = Service.Timeout);
  check_int "deadline miss counted" 1 (counter report "deadline_miss")

let test_service_typed_fault_after_budget () =
  let report, c = run_one [ Fault.spec Fault.Crash ] in
  (match c.Service.c_outcome with
  | Service.Fault { cls = Fault.Crash; _ } -> ()
  | o -> Alcotest.fail ("expected fault, got " ^ Service.outcome_label o));
  check_int "fault counter" 1 (counter report "fault");
  check_int "all attempts burned" 3 c.Service.c_retries;
  check "submitted = admitted + rejected" true
    (counter report "submitted" = counter report "admitted" + counter report "rejected");
  check "admitted partitions into outcomes" true
    (counter report "admitted"
    = counter report "done" + counter report "oom" + counter report "timeout"
      + counter report "unsupported" + counter report "fault")

(* --- the harness and the frozen corpus ----------------------------------- *)

let test_harness_small_campaign_clean () =
  let r = Chaos_harness.run ~seed:7 ~iters:5 () in
  check "campaign clean" true (Chaos_harness.clean r);
  check "faults actually fired" true (r.Chaos_harness.injected <> []);
  check_int "no leaks" 0 r.Chaos_harness.leaks

let test_harness_selftest_trips () =
  (* silent dedup corruption must be caught by the oracle: a campaign that
     stays green under it would prove nothing *)
  let r = Chaos_harness.run ~plan:"dedup_drop:p=0.5" ~seed:7 ~iters:5 () in
  check "self-test plan trips violations" false (Chaos_harness.clean r)

let test_chaos_corpus () =
  let case =
    { Gen.case_seed = 0; program = Parser.parse Refs.chaos_src; edb = Refs.chaos_edb }
  in
  let oracle = Differ.oracle_of_case case in
  List.iter
    (fun (tag, plan_str, expected) ->
      let cr, vs = Chaos_harness.run_case ~iter:0 ~cseed:1 ~plan_str case oracle in
      check (tag ^ ": no violations") true (vs = []);
      check (tag ^ ": case ok") true cr.Chaos_harness.cr_ok;
      Alcotest.(check (list string)) (tag ^ ": frozen outcomes") expected
        cr.Chaos_harness.cr_outcomes)
    Refs.chaos_corpus

let suite =
  [
    Alcotest.test_case "plan syntax round-trips and rejects" `Quick test_plan_syntax;
    Alcotest.test_case "injection is deterministic per seed" `Quick test_inject_determinism;
    Alcotest.test_case "with_plan scopes and restores" `Quick test_with_plan_scoping;
    Alcotest.test_case "memtrack probe fires and rolls back" `Quick test_memtrack_probe;
    Alcotest.test_case "pool stall inflates the virtual clock" `Quick
      test_pool_stall_inflates_vtime;
    Alcotest.test_case "pool crash is typed and survivable" `Quick
      test_pool_crash_then_recover;
    Alcotest.test_case "retry: backoff sequence" `Quick test_retry_backoff_sequence;
    Alcotest.test_case "retry: ladder and knobs are cumulative" `Quick
      test_retry_ladder_knobs;
    Alcotest.test_case "retry: per-class retryability" `Quick test_retry_class_retryability;
    Alcotest.test_case "retry: decisions" `Quick test_retry_decisions;
    Alcotest.test_case "cache detects corrupted entries" `Quick test_cache_detects_corruption;
    Alcotest.test_case "cache refuses stale and degraded results" `Quick
      test_cache_refuses_stale_and_degraded;
    Alcotest.test_case "service retries a txn abort" `Quick test_service_retries_txn_abort;
    Alcotest.test_case "service degrades on memory faults" `Quick
      test_service_degrades_on_mem_fault;
    Alcotest.test_case "service turns exhausted backoff into timeout" `Quick
      test_service_backoff_exhausts_deadline;
    Alcotest.test_case "service types a persistent crash" `Quick
      test_service_typed_fault_after_budget;
    Alcotest.test_case "harness: small campaign is clean" `Quick
      test_harness_small_campaign_clean;
    Alcotest.test_case "harness: dedup_drop self-test trips" `Quick
      test_harness_selftest_trips;
    Alcotest.test_case "frozen chaos corpus" `Quick test_chaos_corpus;
  ]
