module Ast = Recstep.Ast
module Parser = Recstep.Parser
module Analyzer = Recstep.Analyzer
module Interpreter = Recstep.Interpreter
module Frontend = Recstep.Frontend
module Programs = Recstep.Programs
module Provenance = Recstep.Provenance
module Explain = Recstep.Explain
module Relation = Rs_relation.Relation

let check = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Run program text with provenance recording on, return the pieces explain
   needs: the analysis, a rows lookup over the final database, and the tag
   store. *)
let run_with_prov ?options src edges =
  let prov = Provenance.create () in
  let options =
    match options with
    | Some o -> { o with Interpreter.provenance = Some prov }
    | None -> Interpreter.options ~provenance:prov ()
  in
  let result, _ = Frontend.run_text ~options ~edb:[ ("arc", Frontend.edges edges) ] src in
  let an = Analyzer.analyze (Parser.parse src) in
  let rows p =
    Relation.sorted_distinct_rows (result.Interpreter.relation_of p) |> List.map Array.to_list
  in
  (an, rows, prov, result)

let chain = [ (1, 2); (2, 3); (3, 4) ]

let explained = function Explain.Explained n -> n | _ -> Alcotest.fail "expected Explained"

(* --- basic chains --- *)

let test_tc_chain () =
  let an, rows, prov, _ = run_with_prov Programs.tc chain in
  let n = explained (Explain.explain ~prov ~an ~rows "tc" [ 1; 4 ]) in
  check "uses both rules" true (Explain.rules_used n = [ 1; 2 ]);
  check "depth covers the chain" true (Explain.depth n >= 3);
  (* every leaf of the rendering is an EDB arc *)
  let r = Explain.render ~tags:prov n in
  check "mentions base rule" true (contains r "rule 1");
  check "mentions recursive rule" true (contains r "rule 2");
  check "reaches edb" true (contains r "[edb]");
  check "tags rendered" true (contains r "@s");
  (* the same chain renders identically without tags available *)
  let n2 = explained (Explain.explain ~an ~rows "tc" [ 1; 4 ]) in
  check "tag-free search agrees" true (Explain.render n = Explain.render n2)

let test_edb_leaf_and_absent () =
  let an, rows, _, _ = run_with_prov Programs.tc chain in
  (match Explain.explain ~an ~rows "arc" [ 1; 2 ] with
  | Explain.Explained (Explain.N_edb { pred = "arc"; row = [ 1; 2 ] }) -> ()
  | _ -> Alcotest.fail "edb fact should explain as a leaf");
  check "absent fact" true (Explain.explain ~an ~rows "tc" [ 4; 1 ] = Explain.Absent);
  check "absent renders" true
    (contains
       (Explain.outcome_to_string ~pred:"tc" ~row:[ 4; 1 ] Explain.Absent)
       "not in the database")

let test_sg_chain () =
  (* sg needs a sibling structure: 0 -> {1, 2}, 1 -> 3, 2 -> 4 *)
  let an, rows, prov, _ = run_with_prov Programs.sg [ (0, 1); (0, 2); (1, 3); (2, 4) ] in
  check "sg(3,4) present" true (List.mem [ 3; 4 ] (rows "sg"));
  let n = explained (Explain.explain ~prov ~an ~rows "sg" [ 3; 4 ]) in
  check "recursive sg rule on chain" true (List.mem 2 (Explain.rules_used n));
  check "comparison rendered somewhere" true
    (contains (Explain.render n) "[1 != 2]")

let test_negation_chain () =
  let an, rows, prov, _ = run_with_prov Programs.ntc [ (1, 2); (2, 3) ] in
  (* ntc: pairs of nodes not connected by tc *)
  let pick = List.hd (rows "ntc") in
  let n = explained (Explain.explain ~prov ~an ~rows "ntc" pick) in
  check "absence leaf rendered" true (contains (Explain.render n) "[absent]")

let test_aggregate_witness () =
  (* cc propagates MIN labels; the min witness must be recursively explained *)
  let an, rows, prov, _ = run_with_prov Programs.cc [ (1, 2); (2, 3); (5, 3) ] in
  let n = explained (Explain.explain ~prov ~an ~rows "cc3" [ 3; 1 ]) in
  (match n with
  | Explain.N_rule { agg = Some label; _ } ->
      check "witness label" true (contains label "MIN witness")
  | _ -> Alcotest.fail "aggregate head should explain through a rule");
  check "witness chain reaches edb" true (contains (Explain.render n) "[edb]")

(* --- provenance store behavior --- *)

let test_full_coverage () =
  let _, rows, prov, _ = run_with_prov Programs.tc chain in
  List.iter
    (fun row ->
      check "every tc row tagged" true (Provenance.find prov ~pred:"tc" row <> None))
    (rows "tc");
  check "recorded counter" true (Provenance.recorded prov = List.length (rows "tc"));
  check "nothing skipped at sample 1" true (Provenance.skipped prov = 0)

let test_outputs_identical_with_provenance () =
  let run opts =
    let result, _ = Frontend.run_text ~options:opts ~edb:[ ("arc", Frontend.edges chain) ] Programs.tc in
    List.map
      (fun (p, r) -> (p, Relation.sorted_distinct_rows r))
      result.Interpreter.outputs
  in
  let off = run (Interpreter.options ()) in
  let on = run (Interpreter.options ~provenance:(Provenance.create ()) ()) in
  check "provenance-on output byte-identical" true (off = on)

let test_sampling_deterministic () =
  let tagged_rows sample =
    let prov = Provenance.create ~sample () in
    let options = Interpreter.options ~provenance:prov () in
    let result, _ = Frontend.run_text ~options ~edb:[ ("arc", Frontend.edges chain) ] Programs.tc in
    List.filter
      (fun row -> Provenance.find prov ~pred:"tc" row <> None)
      (Relation.sorted_distinct_rows (result.Interpreter.relation_of "tc") |> List.map Array.to_list)
  in
  check "same sampled subset across runs" true (tagged_rows 0.5 = tagged_rows 0.5);
  check "sample 0 tags nothing" true (tagged_rows 0.0 = []);
  (* the sampling decision is per-tuple content, not per-run state *)
  let prov = Provenance.create ~sample:0.5 () in
  List.iter
    (fun row ->
      let a = Provenance.sampled prov ~pred:"tc" row in
      let b = Provenance.sampled prov ~pred:"tc" row in
      check "sampled is pure" true (a = b))
    (List.map Array.to_list (Relation.sorted_distinct_rows (Frontend.edges chain)));
  check "bad sample rejected" true
    (try
       ignore (Provenance.create ~sample:1.5 ());
       false
     with Invalid_argument _ -> true)

(* --- pathological databases --- *)

let test_no_proof_on_inconsistent_db () =
  let an, rows, _, _ = run_with_prov Programs.tc chain in
  (* inject an underivable tuple, exactly what a fuzz "extra row" looks like *)
  let rows p = if p = "tc" then [ 9; 9 ] :: rows p else rows p in
  check "extra row has no proof" true (Explain.explain ~an ~rows "tc" [ 9; 9 ] = Explain.No_proof)

let test_budget () =
  let edges = List.init 40 (fun i -> (i, i + 1)) in
  let an, rows, _, _ = run_with_prov Programs.tc edges in
  match Explain.explain ~max_steps:3 ~an ~rows "tc" [ 0; 40 ] with
  | Explain.Budget_exceeded n -> check "budget counts steps" true (n >= 3)
  | _ -> Alcotest.fail "expected Budget_exceeded"

let test_json_shape () =
  let an, rows, _, _ = run_with_prov Programs.tc chain in
  let n = explained (Explain.explain ~an ~rows "tc" [ 1; 3 ]) in
  let s = Rs_obs.Json.to_string (Explain.node_json n) in
  check "json has fact" true (contains s "\"fact\"");
  check "json has premises" true (contains s "\"premises\"");
  check "json has edb leaves" true (contains s "\"edb\"")

let suite =
  [
    Alcotest.test_case "tc chain" `Quick test_tc_chain;
    Alcotest.test_case "edb leaf and absent" `Quick test_edb_leaf_and_absent;
    Alcotest.test_case "sg chain" `Quick test_sg_chain;
    Alcotest.test_case "negation chain" `Quick test_negation_chain;
    Alcotest.test_case "aggregate witness" `Quick test_aggregate_witness;
    Alcotest.test_case "full tag coverage" `Quick test_full_coverage;
    Alcotest.test_case "outputs identical with provenance" `Quick test_outputs_identical_with_provenance;
    Alcotest.test_case "sampling deterministic" `Quick test_sampling_deterministic;
    Alcotest.test_case "no proof on inconsistent db" `Quick test_no_proof_on_inconsistent_db;
    Alcotest.test_case "budget" `Quick test_budget;
    Alcotest.test_case "json shape" `Quick test_json_shape;
  ]
