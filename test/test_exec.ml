module Relation = Rs_relation.Relation
module Expr = Rs_exec.Expr
module Plan = Rs_exec.Plan
module Catalog = Rs_exec.Catalog
module Executor = Rs_exec.Executor
module Cost = Rs_exec.Cost
module Pool = Rs_parallel.Pool

let check = Alcotest.(check bool)

let make_exec () =
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let catalog = Catalog.create () in
  (Executor.create ~query_overhead_s:0.0 pool catalog, catalog)

let test_expr_eval () =
  let get = function 0 -> 10 | 1 -> 3 | _ -> 0 in
  Alcotest.(check int) "col" 10 (Expr.eval get (Expr.Col 0));
  Alcotest.(check int) "arith" 37
    (Expr.eval get Expr.(Add (Mul (Col 0, Col 1), Sub (Col 0, Const 3))));
  check "test lt" true (Expr.test get Expr.(Cmp (Lt, Col 1, Col 0)));
  check "test ne" true (Expr.test get Expr.(Cmp (Ne, Col 0, Col 1)));
  Alcotest.(check (list int)) "cols" [ 0; 1; 0 ]
    (Expr.cols Expr.(Add (Mul (Col 0, Col 1), Col 0)));
  Alcotest.(check int) "shift" 7
    (match Expr.shift 5 (Expr.Col 2) with Expr.Col c -> c | _ -> -1)

let test_plan_arity_estimate () =
  let lookup = function "r" -> 2 | "s" -> 3 | _ -> 0 in
  let rows = function "r" -> 100 | "s" -> 10 | _ -> 0 in
  let j = Plan.join2 (Plan.Scan "r") [| 1 |] (Plan.Scan "s") [| 0 |] in
  Alcotest.(check int) "join arity" 5 (Plan.arity lookup j);
  Alcotest.(check int) "join estimate" 100 (Plan.estimate rows j);
  let p = Plan.Project ([| Expr.Col 0 |], j) in
  Alcotest.(check int) "project arity" 1 (Plan.arity lookup p);
  let u = Plan.UnionAll [ Plan.Scan "r"; Plan.Scan "r" ] in
  Alcotest.(check int) "union estimate" 200 (Plan.estimate rows u);
  check "to_string nonempty" true (String.length (Plan.to_string j) > 0)

let gen_rel arity vals =
  QCheck2.Gen.(list_size (int_range 0 25) (list_repeat arity (int_range 0 vals)))

let run_join pairs_l pairs_r lk rk =
  let exec, catalog = make_exec () in
  let l = Relation.of_rows 2 (List.map Array.of_list pairs_l) in
  let r = Relation.of_rows 2 (List.map Array.of_list pairs_r) in
  Catalog.register catalog "l" l;
  Catalog.register catalog "r" r;
  let plan = Plan.join2 (Plan.Scan "l") [| lk |] (Plan.Scan "r") [| rk |] in
  let out = Executor.run_query exec plan in
  List.sort compare (Relation.to_rows out |> List.map Array.to_list)

let nested_loop_join pairs_l pairs_r lk rk =
  List.concat_map
    (fun lrow ->
      List.filter_map
        (fun rrow ->
          if List.nth lrow lk = List.nth rrow rk then Some (lrow @ rrow) else None)
        pairs_r)
    pairs_l
  |> List.sort compare

let prop_hash_join_eq_nested_loop =
  QCheck2.Test.make ~name:"hash join = nested loop" ~count:150
    QCheck2.Gen.(tup4 (gen_rel 2 8) (gen_rel 2 8) (int_range 0 1) (int_range 0 1))
    (fun (l, r, lk, rk) -> run_join l r lk rk = nested_loop_join l r lk rk)

let prop_join_extra_preds =
  QCheck2.Test.make ~name:"join residual predicate" ~count:100
    QCheck2.Gen.(pair (gen_rel 2 6) (gen_rel 2 6))
    (fun (l, r) ->
      let exec, catalog = make_exec () in
      Catalog.register catalog "l" (Relation.of_rows 2 (List.map Array.of_list l));
      Catalog.register catalog "r" (Relation.of_rows 2 (List.map Array.of_list r));
      let plan =
        Plan.Join
          {
            l = Plan.Scan "l";
            r = Plan.Scan "r";
            lkeys = [| 0 |];
            rkeys = [| 0 |];
            extra = [ Expr.Cmp (Expr.Ne, Expr.Col 1, Expr.Col 3) ];
            out = Some [| Expr.Col 1; Expr.Col 3 |];
          }
      in
      let out = Executor.run_query exec plan in
      let expected =
        List.concat_map
          (fun lr ->
            List.filter_map
              (fun rr ->
                if List.nth lr 0 = List.nth rr 0 && List.nth lr 1 <> List.nth rr 1 then
                  Some [ List.nth lr 1; List.nth rr 1 ]
                else None)
              r)
          l
        |> List.sort compare
      in
      List.sort compare (Relation.to_rows out |> List.map Array.to_list) = expected)

let prop_opsd_eq_tpsd =
  QCheck2.Test.make ~name:"OPSD = TPSD = reference set difference" ~count:150
    QCheck2.Gen.(pair (gen_rel 2 6) (gen_rel 2 6))
    (fun (delta_rows, r_rows) ->
      let exec, _ = make_exec () in
      let distinct rows = List.sort_uniq compare rows in
      let rdelta = Relation.of_rows 2 (List.map Array.of_list (distinct delta_rows)) in
      let r = Relation.of_rows 2 (List.map Array.of_list (distinct r_rows)) in
      let o, oi = Executor.opsd exec ~rdelta ~r () in
      let t, ti = Executor.tpsd exec ~rdelta ~r () in
      let norm rel = List.sort compare (Relation.to_rows rel |> List.map Array.to_list) in
      let expected =
        List.filter (fun row -> not (List.mem row (distinct r_rows))) (distinct delta_rows)
        |> List.sort compare
      in
      norm o = expected && norm t = expected && oi = ti)

let test_filter_project_union () =
  let exec, catalog = make_exec () in
  Catalog.register catalog "t"
    (Relation.of_rows 2 [ [| 1; 5 |]; [| 2; 6 |]; [| 3; 7 |] ]);
  let plan =
    Plan.UnionAll
      [
        Plan.Project
          ([| Expr.Col 1 |], Plan.Filter ([ Expr.Cmp (Expr.Gt, Expr.Col 0, Expr.Const 1) ], Plan.Scan "t"));
        Plan.Project ([| Expr.Col 0 |], Plan.Scan "t");
      ]
  in
  let out = Executor.run_query exec plan in
  Alcotest.(check (list int))
    "filter+project+union" [ 1; 2; 3; 6; 7 ]
    (List.sort compare (Relation.to_rows out |> List.map (fun a -> a.(0))))

let test_anti_join () =
  let exec, catalog = make_exec () in
  Catalog.register catalog "l" (Relation.of_rows 2 [ [| 1; 1 |]; [| 2; 2 |]; [| 3; 3 |] ]);
  Catalog.register catalog "r" (Relation.of_rows 1 [ [| 2 |] ]);
  let plan =
    Plan.AntiJoin { al = Plan.Scan "l"; ar = Plan.Scan "r"; alkeys = [| 0 |]; arkeys = [| 0 |] }
  in
  let out = Executor.run_query exec plan in
  Alcotest.(check (list int)) "anti join" [ 1; 3 ]
    (List.sort compare (Relation.to_rows out |> List.map (fun a -> a.(0))))

let test_aggregate_ops () =
  let exec, catalog = make_exec () in
  Catalog.register catalog "t"
    (Relation.of_rows 2 [ [| 1; 5 |]; [| 1; 7 |]; [| 2; 6 |]; [| 1; 6 |] ]);
  let agg ops =
    let plan =
      Plan.Aggregate
        { group = [| Expr.Col 0 |]; aggs = Array.of_list (List.map (fun op -> (op, Expr.Col 1)) ops);
          src = Plan.Scan "t" }
    in
    let out = Executor.run_query exec plan in
    List.sort compare (Relation.to_rows out |> List.map Array.to_list)
  in
  Alcotest.(check (list (list int))) "min/max/sum/count/avg"
    [ [ 1; 5; 7; 18; 3; 6 ]; [ 2; 6; 6; 6; 1; 6 ] ]
    (agg [ Plan.Min; Plan.Max; Plan.Sum; Plan.Count; Plan.Avg ])

let test_catalog_stats () =
  let pool = Pool.create ~workers:2 () in
  Pool.begin_run pool;
  let catalog = Catalog.create () in
  let r = Relation.of_rows 2 [ [| 1; 10 |]; [| 5; 2 |] ] in
  Catalog.register catalog "t" r;
  Alcotest.(check int) "initial stat" 2 (Catalog.stat_rows catalog "t");
  Relation.push2 r 9 9;
  Alcotest.(check int) "stale until analyze" 2 (Catalog.stat_rows catalog "t");
  Catalog.analyze_rows catalog "t";
  Alcotest.(check int) "fresh" 3 (Catalog.stat_rows catalog "t");
  Catalog.analyze_full catalog pool "t";
  (match (Catalog.find catalog "t").Catalog.full with
  | Some fs ->
      Alcotest.(check int) "min col0" 1 fs.Catalog.col_min.(0);
      Alcotest.(check int) "max col1" 10 fs.Catalog.col_max.(1)
  | None -> Alcotest.fail "full stats missing");
  Catalog.drop catalog "t";
  check "dropped" false (Catalog.mem catalog "t")

let test_cost_choose_regions () =
  (* β <= 1 → OPSD regardless *)
  check "beta<=1" true (Cost.choose ~alpha:2.0 ~r_rows:5 ~rdelta_rows:10 ~mu_prev:None = Cost.Opsd);
  (* β above threshold 2α/(α-1) = 4 → TPSD *)
  check "beta large" true (Cost.choose ~alpha:2.0 ~r_rows:100 ~rdelta_rows:10 ~mu_prev:None = Cost.Tpsd);
  (* uncertain band without µ → OPSD *)
  check "band no mu" true (Cost.choose ~alpha:2.0 ~r_rows:30 ~rdelta_rows:10 ~mu_prev:None = Cost.Opsd);
  (* uncertain band, µ large: sign of β(α-1) - (α + α/µ) decides *)
  check "band large mu" true
    (Cost.choose ~alpha:2.0 ~r_rows:35 ~rdelta_rows:10 ~mu_prev:(Some 100.0) = Cost.Tpsd);
  check "empty delta" true (Cost.choose ~alpha:2.0 ~r_rows:35 ~rdelta_rows:0 ~mu_prev:None = Cost.Opsd)

let test_observed_mu () =
  check "mu" true (abs_float (Cost.observed_mu ~rdelta_rows:10 ~intersection_rows:5 -. 2.0) < 1e-9);
  check "mu no intersection" true (Cost.observed_mu ~rdelta_rows:10 ~intersection_rows:0 = 10.0)

let test_share_builds_cache () =
  (* the same scan+keys twice in one query must reuse the build *)
  let pool = Pool.create ~workers:2 () in
  Pool.begin_run pool;
  let catalog = Catalog.create () in
  Catalog.register catalog "e" (Relation.of_rows 2 [ [| 1; 2 |]; [| 2; 3 |] ]);
  let exec = Executor.create ~query_overhead_s:0.0 ~share_builds:true pool catalog in
  let sub = Plan.join2 (Plan.Scan "e") [| 1 |] (Plan.Scan "e") [| 0 |] in
  let out = Executor.run_query exec (Plan.UnionAll [ sub; sub ]) in
  Alcotest.(check int) "both subplans produced" 2 (Relation.nrows out)

module Index_manager = Rs_exec.Index_manager
module Hash_index = Rs_relation.Hash_index

let test_index_manager_lifecycle () =
  Rs_storage.Memtrack.hard_reset ();
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let m = Index_manager.create ~persistent:(fun n -> n = "tc" || n = "arc") pool in
  check "eligible" true (Index_manager.eligible m "tc");
  check "not eligible" false (Index_manager.eligible m "delta_tc");
  let r = Relation.of_rows 2 [ [| 1; 2 |]; [| 2; 3 |] ] in
  let i1 = Index_manager.get m ~name:"tc" r [| 0 |] in
  Alcotest.(check int) "one build" 1 (Index_manager.builds m);
  (* unchanged relation: same physical index back, counted as a reuse hit *)
  let i2 = Index_manager.get m ~name:"tc" r [| 0 |] in
  check "reused physically" true (i1 == i2);
  Alcotest.(check int) "reuse hit" 1 (Index_manager.reuse_hits m);
  (* grown relation: delta-append, not rebuild *)
  Relation.push2 r 3 4;
  let i3 = Index_manager.get m ~name:"tc" r [| 0 |] in
  check "appended in place" true (i1 == i3);
  Alcotest.(check int) "append counted" 1 (Index_manager.appends m);
  Alcotest.(check int) "still one build" 1 (Index_manager.builds m);
  Alcotest.(check int) "covers appended row" 3 (Hash_index.indexed_rows i3);
  (* distinct key columns are a distinct entry *)
  ignore (Index_manager.get m ~name:"tc" r [| 1 |]);
  Alcotest.(check int) "second pattern builds" 2 (Index_manager.builds m);
  (* generation bump (in-place rewrite) invalidates *)
  Relation.clear r;
  Relation.push2 r 9 9;
  ignore (Index_manager.get m ~name:"tc" r [| 0 |]);
  Alcotest.(check int) "rebuild after clear" 3 (Index_manager.builds m);
  (* identity change (catalog replace_table churn) invalidates *)
  let r' = Relation.of_rows 2 [ [| 5; 5 |] ] in
  ignore (Index_manager.get m ~name:"tc" r' [| 0 |]);
  Alcotest.(check int) "rebuild after replace" 4 (Index_manager.builds m);
  check "bytes accounted" true (Rs_storage.Memtrack.live () > 0);
  Index_manager.release_all m;
  Alcotest.(check int) "release_all returns bytes" 0 (Rs_storage.Memtrack.live ())

(* Regression for the invalidation contract: a clear-then-repopulate that
   ends at MORE rows than were indexed. Identity is unchanged and
   [indexed_rows <= nrows] holds, so only the generation bump in
   [Relation.clear] forces the rebuild — remove the [touch] there and the
   manager append-extends the stale index: rows 0..1 stay linked under the
   old tuples' hash buckets and the lookups below go wrong. *)
let test_index_manager_clear_repopulate () =
  Rs_storage.Memtrack.hard_reset ();
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let m = Index_manager.create ~persistent:(fun _ -> true) pool in
  let r = Relation.of_rows 2 [ [| 1; 2 |]; [| 3; 4 |] ] in
  let i1 = Index_manager.get m ~name:"scratch" r [| 0 |] in
  Alcotest.(check int) "initial build" 1 (Index_manager.builds m);
  check "old key present" true (Hash_index.mem i1 [| 1; 2 |]);
  (* scratch-table pattern of a multi-stratum program: same physical
     relation cleared and refilled within one fixpoint, growing past the
     previously indexed count *)
  Relation.clear r;
  Relation.push2 r 5 6;
  Relation.push2 r 7 8;
  Relation.push2 r 9 10;
  let i2 = Index_manager.get m ~name:"scratch" r [| 0 |] in
  Alcotest.(check int) "rewrite forces a rebuild, not an append" 2
    (Index_manager.builds m);
  Alcotest.(check int) "no stale append" 0 (Index_manager.appends m);
  Alcotest.(check int) "index covers the new rows only" 3 (Hash_index.indexed_rows i2);
  check "new keys found" true
    (Hash_index.mem i2 [| 5; 6 |] && Hash_index.mem i2 [| 7; 8 |]
    && Hash_index.mem i2 [| 9; 10 |]);
  check "old keys gone" false (Hash_index.mem i2 [| 1; 2 |]);
  Index_manager.release_all m

(* The serving-layer contract behind shared indexes: a store-lifetime parent
   manager holds base-relation indexes across run-local child managers, an
   insert-only replacement is absorbed by rebase + delta-append (generation
   audit: the entry adopts the replacement's generation, no rebuild), and a
   retraction invalidates so the next access rebuilds. *)
let test_index_manager_parent_rebase () =
  Rs_storage.Memtrack.hard_reset ();
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let parent = Index_manager.create ~persistent:(fun n -> n = "arc") pool in
  let child = Index_manager.create ~parent ~persistent:(fun _ -> true) pool in
  let arc = Relation.of_rows 2 [ [| 1; 2 |]; [| 2; 3 |] ] in
  let i1 = Index_manager.get child ~name:"arc" arc [| 0 |] in
  Alcotest.(check int) "build lands in the parent" 1 (Index_manager.builds parent);
  Alcotest.(check int) "no build in the child" 0 (Index_manager.builds child);
  (* a fresh child (the next interpreter run) still sees the parent's entry *)
  Index_manager.release_all child;
  let child2 = Index_manager.create ~parent ~persistent:(fun _ -> true) pool in
  let i2 = Index_manager.get child2 ~name:"arc" arc [| 0 |] in
  check "index survives the child's release" true (i1 == i2);
  Alcotest.(check int) "still one build" 1 (Index_manager.builds parent);
  Alcotest.(check int) "reuse hit in the parent" 1 (Index_manager.reuse_hits parent);
  (* insert-only replacement (Edb_store.apply staging keeps old rows as a
     prefix): rebase re-points the entry and adopts the new generation *)
  let arc2 = Relation.copy arc in
  Relation.push2 arc2 3 4;
  Index_manager.rebase_to parent ~name:"arc" arc2;
  Alcotest.(check int) "rebase counted" 1 (Index_manager.rebases parent);
  let i3 = Index_manager.get child2 ~name:"arc" arc2 [| 0 |] in
  check "rebased entry reused" true (i1 == i3);
  Alcotest.(check int) "suffix covered by append, not rebuild" 1
    (Index_manager.appends parent);
  Alcotest.(check int) "no rebuild after rebase" 1 (Index_manager.builds parent);
  check "generation adopted from the replacement" true
    (Hash_index.generation i3 = Relation.generation arc2);
  Alcotest.(check int) "covers the appended row" 3 (Hash_index.indexed_rows i3);
  check "new key reachable" true (Hash_index.mem i3 [| 3; 4 |]);
  (* a retraction does not preserve the indexed prefix: invalidate, rebuild *)
  let arc3 = Relation.of_rows 2 [ [| 2; 3 |] ] in
  Index_manager.invalidate parent ~name:"arc";
  Alcotest.(check int) "invalidation counted" 1 (Index_manager.invalidations parent);
  ignore (Index_manager.get child2 ~name:"arc" arc3 [| 0 |]);
  Alcotest.(check int) "rebuild after invalidate" 2 (Index_manager.builds parent);
  (* rebase refuses a shrinking replacement on its own: the entry is dropped
     and counted as an invalidation instead of silently going stale *)
  Index_manager.rebase_to parent ~name:"arc" (Relation.of_rows 2 []);
  Alcotest.(check int) "refused rebase drops the entry" 2
    (Index_manager.invalidations parent);
  Alcotest.(check int) "refused rebase is not a rebase" 1 (Index_manager.rebases parent);
  check "parent bytes tracked" true (Index_manager.bytes parent >= 0);
  Index_manager.release_all child2;
  Index_manager.release_all parent;
  Alcotest.(check int) "all bytes returned" 0 (Rs_storage.Memtrack.live ())

let test_executor_uses_manager () =
  (* a join against a managed table twice: second query must be a reuse hit,
     and results must match the unmanaged executor exactly *)
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let catalog = Catalog.create () in
  Catalog.register catalog "e"
    (Relation.of_rows 2 [ [| 1; 2 |]; [| 2; 3 |]; [| 3; 1 |] ]);
  Catalog.register catalog "d" (Relation.of_rows 2 [ [| 0; 1 |]; [| 0; 2 |] ]);
  let m = Index_manager.create ~persistent:(fun n -> n = "e") pool in
  let exec = Executor.create ~query_overhead_s:0.0 ~index_manager:m pool catalog in
  let plan = Plan.join2 (Plan.Scan "d") [| 1 |] (Plan.Scan "e") [| 0 |] in
  let out1 = Executor.run_query exec plan in
  let out2 = Executor.run_query exec plan in
  Alcotest.(check int) "one build across two queries" 1 (Index_manager.builds m);
  check "second query reused" true (Index_manager.reuse_hits m >= 1);
  let exec_plain = Executor.create ~query_overhead_s:0.0 pool catalog in
  let ref_out = Executor.run_query exec_plain plan in
  let rows rel = Relation.to_rows rel |> List.map Array.to_list in
  (* the manager may flip the build side (it prefers the persistent side),
     which permutes row order but never the bag of rows *)
  Alcotest.(check (list (list int))) "managed = unmanaged rows"
    (List.sort compare (rows ref_out))
    (List.sort compare (rows out1));
  Alcotest.(check (list (list int))) "stable across reuse" (rows out1) (rows out2);
  Index_manager.release_all m

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_hash_join_eq_nested_loop; prop_join_extra_preds; prop_opsd_eq_tpsd ]

let suite =
  [
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "plan arity/estimate" `Quick test_plan_arity_estimate;
    Alcotest.test_case "filter/project/union" `Quick test_filter_project_union;
    Alcotest.test_case "anti join" `Quick test_anti_join;
    Alcotest.test_case "aggregate ops" `Quick test_aggregate_ops;
    Alcotest.test_case "catalog stats" `Quick test_catalog_stats;
    Alcotest.test_case "cost model regions" `Quick test_cost_choose_regions;
    Alcotest.test_case "observed mu" `Quick test_observed_mu;
    Alcotest.test_case "build cache sharing" `Quick test_share_builds_cache;
    Alcotest.test_case "index manager lifecycle" `Quick test_index_manager_lifecycle;
    Alcotest.test_case "index manager clear-repopulate" `Quick
      test_index_manager_clear_repopulate;
    Alcotest.test_case "index manager parent chain and rebase" `Quick
      test_index_manager_parent_rebase;
    Alcotest.test_case "executor reuses managed index" `Quick test_executor_uses_manager;
  ]
  @ qsuite
