(* The RecStep command-line interface.

     recstep run program.datalog --fact arc=edges.tsv --out results/
     recstep run program.datalog --fact arc=edges.tsv --engine Souffle-like
     recstep serve workload.serve --report report.json
     recstep gen gnp -n 1000 -p 0.01 -o arc.tsv
     recstep gen rmat -n 65536 -m 655360 -o arc.tsv

   Programs use the paper's syntax (see lib/core/parser.mli); facts are
   whitespace-separated integer tuples, one per line; serve replays a
   workload script (see lib/service/script.mli) through the multi-tenant
   query service. *)

open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("recstep: " ^ msg);
      exit 1)
    fmt

let load_facts an specs =
  List.map
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          let arity = Recstep.Analyzer.arity an name in
          (name, Recstep.Frontend.load_tsv ~name ~arity path)
      | None -> die "bad --fact %S (expected name=path)" spec)
    specs

let explain_plan program =
  let an = Recstep.Analyzer.analyze program in
  List.iter
    (fun (s : Recstep.Analyzer.stratum) ->
      Printf.printf "stratum %d%s: %s\n" s.Recstep.Analyzer.index
        (if s.Recstep.Analyzer.recursive then " (recursive)" else "")
        (String.concat ", " s.Recstep.Analyzer.preds);
      List.iter
        (fun rule ->
          Printf.printf "  rule: %s\n" (Recstep.Ast.rule_to_string rule);
          match Recstep.Planner.compile_rule an s rule with
          | Recstep.Planner.Fact t ->
              Printf.printf "    fact (%s)\n"
                (String.concat ", " (Array.to_list (Array.map string_of_int t)))
          | Recstep.Planner.Query { base; deltas } ->
              Printf.printf "    base plan:\n%s" (Rs_exec.Plan.to_string base);
              List.iteri
                (fun i (dpred, d) ->
                  Printf.printf "    delta plan %d (Δ%s):\n%s" i dpred
                    (Rs_exec.Plan.to_string d))
                deltas)
        s.Recstep.Analyzer.rules)
    an.Recstep.Analyzer.strata

(* Malformed inputs are user errors: one precise line on stderr, exit 1. *)
let with_input_errors f =
  try f () with
  | Recstep.Frontend.Parse_error { path; line; msg } ->
      die "parse error: %s:%d: %s" path line msg
  | Rs_service.Script.Script_error { path; line; msg } ->
      die "script error: %s:%d: %s" path line msg

(* Parser/lexer errors carry a line but no path; attach it here so every
   syntax error reaches the user as path:line. *)
let parse_program path =
  try Recstep.Parser.parse_file path with
  | Recstep.Parser.Error { line; message } ->
      raise (Recstep.Frontend.Parse_error { path; line; msg = message })
  | Recstep.Lexer.Error { line; message } ->
      raise (Recstep.Frontend.Parse_error { path; line; msg = message })

let run_cmd program_path facts out_dir engine workers verbose explain_only profile dsd
    no_pbme no_kernels no_persistent_indexes shards no_colocation rebalance =
  with_input_errors @@ fun () ->
  let program = parse_program program_path in
  if explain_only then explain_plan program
  else begin
  let an = Recstep.Analyzer.analyze program in
  let edb = load_facts an facts in
  let pool = Rs_parallel.Pool.create ~workers () in
  Rs_parallel.Pool.begin_run pool;
  let trace =
    match profile with
    | Some _ ->
        Some (Rs_obs.Trace.create ~now:(fun () -> Rs_parallel.Pool.vtime_now pool) ())
    | None -> None
  in
  let dsd =
    match dsd with
    | "dynamic" -> Recstep.Interpreter.Dsd_dynamic
    | "opsd" -> Recstep.Interpreter.Dsd_force_opsd
    | "tpsd" -> Recstep.Interpreter.Dsd_force_tpsd
    | other -> die "bad --dsd %S (expected dynamic, opsd or tpsd)" other
  in
  let lookup =
    match engine with
    | None when shards > 1 -> (
        (* sharded execution: hash-partitioned simulated nodes with
           colocation-aware planning (see DESIGN.md §13) *)
        let options =
          Rs_shard.Shard_exec.options ~shards ~colocation:(not no_colocation) ~rebalance
            ~dsd ~persistent_indexes:(not no_persistent_indexes) ?trace ()
        in
        match Rs_shard.Shard_exec.run ~options ~pool ~edb program with
        | result ->
            if verbose then
              Printf.printf
                "iterations=%d queries=%d supersteps=%d rules: colocated=%d \
                 broadcast=%d shuffled=%d  shuffle_tuples=%d broadcast_tuples=%d \
                 rebalance_moves=%d recoveries=%d\n"
                result.Rs_shard.Shard_exec.iterations result.Rs_shard.Shard_exec.queries
                result.Rs_shard.Shard_exec.supersteps
                result.Rs_shard.Shard_exec.colocated_rules
                result.Rs_shard.Shard_exec.broadcast_rules
                result.Rs_shard.Shard_exec.shuffled_rules
                result.Rs_shard.Shard_exec.shuffle_tuples
                result.Rs_shard.Shard_exec.broadcast_tuples
                result.Rs_shard.Shard_exec.rebalance_moves
                result.Rs_shard.Shard_exec.recoveries;
            result.Rs_shard.Shard_exec.relation_of
        | exception Rs_shard.Shard_exec.Unsupported m -> die "unsupported program: %s" m)
    | None ->
        let options =
          Recstep.Interpreter.options ~dsd ~pbme:(not no_pbme)
            ~compiled_kernels:(not no_kernels)
            ~persistent_indexes:(not no_persistent_indexes) ?trace ()
        in
        let result = Recstep.Interpreter.run ~options ~pool ~edb program in
        if verbose then
          Printf.printf "iterations=%d queries=%d pbme_strata=%d io_bytes=%d\n"
            result.Recstep.Interpreter.iterations result.Recstep.Interpreter.queries
            result.Recstep.Interpreter.pbme_strata result.Recstep.Interpreter.io_bytes;
        result.Recstep.Interpreter.relation_of
    | Some name -> (
        match Rs_engines.Engines.by_name name with
        | Some engine -> (
            match Rs_engines.Engine_intf.run_guarded engine ~pool ?trace ~edb program with
            | Rs_engines.Engine_intf.Done result ->
                if verbose then
                  Printf.printf "iterations=%d queries=%d\n"
                    result.Rs_engines.Engine_intf.iterations
                    result.Rs_engines.Engine_intf.queries;
                result.Rs_engines.Engine_intf.relation_of
            | Oom -> die "%s: out of (simulated) memory" name
            | Timeout -> die "%s: simulated deadline exceeded" name
            | Unsupported m -> die "unsupported program: %s" m
            | Fault { cls; point } ->
                die "%s: injected fault %s at %s" name (Rs_chaos.Fault.cls_name cls) point)
        | None ->
            die "unknown engine %S (known: %s)" name
              (String.concat ", " (List.map Rs_engines.Engines.name Rs_engines.Engines.all)))
  in
  let stats = Rs_parallel.Pool.stats pool in
  (match (profile, trace) with
  | Some path, Some tr ->
      List.iter
        (fun e ->
          Rs_obs.Trace.add_batch tr ~start:e.Rs_parallel.Pool.ev_vstart
            ~len:e.Rs_parallel.Pool.ev_vlen ~busy:e.Rs_parallel.Pool.ev_busy)
        (Rs_parallel.Pool.events pool);
      (try Rs_obs.Trace.dump tr ~path
       with Sys_error msg -> die "cannot write profile: %s" msg);
      if verbose then print_string (Rs_obs.Trace.summary tr)
  | _ -> ());
  let outputs = if program.Recstep.Ast.outputs = [] then an.Recstep.Analyzer.idbs else program.Recstep.Ast.outputs in
  List.iter
    (fun name ->
      let rel = lookup name in
      (match out_dir with
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          Recstep.Frontend.save_tsv rel (Filename.concat dir (name ^ ".tsv"))
      | None -> ());
      Printf.printf "%-16s %d tuples\n" name (Rs_relation.Relation.nrows rel))
    outputs;
  Printf.printf "done in %.4fs simulated on %d workers (%.4fs wall)\n" stats.Rs_parallel.Pool.vtime
    stats.Rs_parallel.Pool.workers stats.Rs_parallel.Pool.wall
  end

(* "tc(1, 3)" → ("tc", [1; 3]) *)
let parse_fact spec =
  let malformed () = die "bad FACT %S (expected pred(v1, ..., vk))" spec in
  match String.index_opt spec '(' with
  | None -> malformed ()
  | Some i ->
      let pred = String.trim (String.sub spec 0 i) in
      let rest = String.trim (String.sub spec (i + 1) (String.length spec - i - 1)) in
      let n = String.length rest in
      if pred = "" || n = 0 || rest.[n - 1] <> ')' then malformed ();
      let inner = String.trim (String.sub rest 0 (n - 1)) in
      let row =
        if inner = "" then []
        else
          List.map
            (fun f ->
              match int_of_string_opt (String.trim f) with
              | Some v -> v
              | None -> die "bad FACT %S (non-integer field %S)" spec f)
            (String.split_on_char ',' inner)
      in
      (pred, row)

(* Why-provenance: evaluate once with tagging on, then walk the derivation
   chain of one fact down to its EDB leaves. Exit 0 iff the fact is
   explained; 1 for absent / no proof / budget, so CI can smoke it. *)
let explain_cmd program_path fact_spec facts workers sample no_provenance max_steps
    json_out verbose =
  with_input_errors @@ fun () ->
  let program = parse_program program_path in
  let pred, row = parse_fact fact_spec in
  let an = Recstep.Analyzer.analyze program in
  let edb = load_facts an facts in
  let pool = Rs_parallel.Pool.create ~workers () in
  Rs_parallel.Pool.begin_run pool;
  let prov =
    if no_provenance then None else Some (Recstep.Provenance.create ~sample ())
  in
  let options = Recstep.Interpreter.options ?provenance:prov () in
  let result = Recstep.Interpreter.run ~options ~pool ~edb program in
  let rows p =
    List.map Array.to_list
      (Rs_relation.Relation.sorted_distinct_rows (result.Recstep.Interpreter.relation_of p))
  in
  if verbose then
    Printf.printf "evaluated: iterations=%d queries=%d%s\n"
      result.Recstep.Interpreter.iterations result.Recstep.Interpreter.queries
      (match prov with
      | Some p ->
          Printf.sprintf " tagged=%d (sample %g)" (Recstep.Provenance.recorded p)
            (Recstep.Provenance.sample p)
      | None -> "");
  let outcome = Recstep.Explain.explain ?prov ~max_steps ~an ~rows pred row in
  (match outcome with
  | Recstep.Explain.Explained node ->
      if json_out then
        print_endline
          (Rs_obs.Json.to_string
             (Rs_obs.Json.Obj
                [
                  ("fact", Rs_obs.Json.String (Recstep.Explain.fact_to_string pred row));
                  ("status", Rs_obs.Json.String "explained");
                  ( "rules",
                    Rs_obs.Json.List
                      (List.map
                         (fun i -> Rs_obs.Json.Int i)
                         (Recstep.Explain.rules_used node)) );
                  ("depth", Rs_obs.Json.Int (Recstep.Explain.depth node));
                  ("chain", Recstep.Explain.node_json node);
                ]))
      else begin
        print_string (Recstep.Explain.render ?tags:prov node);
        Printf.printf "rules used: %s  depth: %d\n"
          (String.concat ", "
             (List.map string_of_int (Recstep.Explain.rules_used node)))
          (Recstep.Explain.depth node)
      end
  | o ->
      print_endline (Recstep.Explain.outcome_to_string ~pred ~row o);
      exit 1);
  ignore (Rs_parallel.Pool.stats pool)

let serve_cmd script_path workers queue cache_bytes no_cache seed mem_budget no_ivm
    ivm_max_delta shards no_kernels autoscale_flag autoscale_min autoscale_max
    report_path verbose =
  with_input_errors @@ fun () ->
  let script = Rs_service.Script.load script_path in
  let setting key = List.assoc_opt key script.Rs_service.Script.settings in
  let int_setting key = Option.bind (setting key) int_of_string_opt in
  let float_setting key = Option.bind (setting key) float_of_string_opt in
  (* precedence: explicit flag > script [set] line > built-in default *)
  let pick cli s default = match cli with Some v -> v | None -> Option.value s ~default in
  let workers = pick workers (int_setting "workers") 8 in
  let queue_capacity = pick queue (int_setting "queue") 64 in
  let cache_bytes =
    if no_cache then 0 else pick cache_bytes (int_setting "cache_bytes") (64 * 1024 * 1024)
  in
  let seed = pick seed (int_setting "seed") 1 in
  let mem_budget =
    match mem_budget with Some b -> Some b | None -> int_setting "budget"
  in
  let cache_hit_cost_s = Option.value (float_setting "hit_cost") ~default:1e-4 in
  let ivm =
    if no_ivm then false
    else
      Option.value (Option.bind (setting "ivm") bool_of_string_opt) ~default:true
  in
  let ivm_max_delta = pick ivm_max_delta (int_setting "ivm_max_delta") 512 in
  let shards = pick shards (int_setting "shards") 1 in
  let kernels =
    if no_kernels then false
    else
      Option.value (Option.bind (setting "kernels") bool_of_string_opt) ~default:true
  in
  let autoscale_on =
    autoscale_flag
    || Option.value (Option.bind (setting "autoscale") bool_of_string_opt) ~default:false
  in
  let autoscale =
    if not autoscale_on then None
    else begin
      let min_workers = pick autoscale_min (int_setting "autoscale_min") 1 in
      let max_workers =
        pick autoscale_max (int_setting "autoscale_max") (max workers (4 * workers))
      in
      let tail_target_s =
        Option.value (float_setting "autoscale_target_ms") ~default:500.0 /. 1000.0
      in
      Some
        (Rs_service.Autoscale.policy ~min_workers ~max_workers ~tail_target_s
           ~cache_max_bytes:(max cache_bytes (4 * cache_bytes)) ())
    end
  in
  let store = Rs_service.Edb_store.create () in
  List.iter
    (fun (name, rels) -> Rs_service.Edb_store.define store name rels)
    script.Rs_service.Script.defs;
  let config =
    Rs_service.Service.config ~workers ~queue_capacity ?mem_budget ~cache_bytes
      ~cache_hit_cost_s ~seed ~ivm ~ivm_max_delta ~shards ~kernels ?autoscale ()
  in
  let report = Rs_service.Service.run ~config ~edb:store script.Rs_service.Script.events in
  print_string (Rs_service.Service.report_summary report);
  (match report_path with
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Rs_obs.Json.to_string (Rs_service.Service.report_json report));
        output_char oc '\n';
        close_out oc
      with Sys_error msg -> die "cannot write report: %s" msg)
  | None -> ());
  if verbose then print_string (Rs_obs.Trace.summary report.Rs_service.Service.trace)

(* "gold=50,silver=200,bronze=1000" → per-class SLO targets in seconds *)
let parse_slo_ms spec (dg, ds, db) =
  let gold = ref dg and silver = ref ds and bronze = ref db in
  String.split_on_char ',' spec
  |> List.iter (fun part ->
         if String.trim part <> "" then
           match String.index_opt part '=' with
           | Some i ->
               let k = String.trim (String.sub part 0 i) in
               let v = String.sub part (i + 1) (String.length part - i - 1) in
               let ms =
                 match float_of_string_opt (String.trim v) with
                 | Some f when f > 0.0 -> f
                 | _ -> die "bad --slo-ms %S (positive milliseconds expected)" part
               in
               let s = ms /. 1000.0 in
               (match k with
               | "gold" -> gold := s
               | "silver" -> silver := s
               | "bronze" -> bronze := s
               | _ -> die "bad --slo-ms class %S (gold, silver or bronze)" k)
           | None -> die "bad --slo-ms %S (expected class=ms)" part);
  (!gold, !silver, !bronze)

let load_cmd tenants queries seed duration skew burstiness bursts deltas slo_ms
    workers max_workers no_autoscale cache_bytes queue deadlines plan report_path
    verbose =
  with_input_errors @@ fun () ->
  let slo_gold_s, slo_silver_s, slo_bronze_s =
    parse_slo_ms slo_ms (0.05, 0.2, 1.0)
  in
  let spec =
    Rs_load.Load.spec ~tenants ~queries ~seed ~duration_s:duration ~skew ~burstiness
      ~bursts ~deltas ~slo_gold_s ~slo_silver_s ~slo_bronze_s ~deadlines ()
  in
  let load = Rs_load.Load.generate spec in
  let autoscale =
    if no_autoscale then None
    else
      Some
        (Rs_service.Autoscale.policy ~min_workers:workers
           ~max_workers:(max workers max_workers) ~window:16 ~queue_hi:2.0
           ~queue_lo:0.5 ~tail_target_s:slo_gold_s ~cooldown:2
           ~cache_min_bytes:(min cache_bytes (1 * 1024 * 1024))
           ~cache_max_bytes:(max cache_bytes (4 * cache_bytes)) ())
  in
  let config =
    Rs_service.Service.config ~workers
      ~queue_capacity:(match queue with Some q -> q | None -> queries + 8)
      ~cache_bytes ~seed ?autoscale ()
  in
  (* build the store before arming any fault plan: dataset generation is
     setup, not the system under test — only the serve loop (whose retry
     ladder and typed outcomes absorb the faults) runs inside the storm *)
  let store = load.Rs_load.Load.make_store () in
  let run_service () =
    Rs_service.Service.run ~config ~edb:store load.Rs_load.Load.events
  in
  let report =
    match plan with
    | None -> run_service ()
    | Some p -> (
        (* fault storm under load: the SLO scorecard shows what the burst
           train looks like through a chaos plan *)
        match Rs_chaos.Fault.plan_of_string ~seed p with
        | plan -> Rs_chaos.Inject.with_plan plan run_service
        | exception Rs_chaos.Fault.Parse_error m -> die "bad --plan: %s" m)
  in
  print_string (Rs_load.Load.slo_summary load report);
  (match report_path with
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Rs_obs.Json.to_string (Rs_load.Load.slo_json load report));
        output_char oc '\n';
        close_out oc
      with Sys_error msg -> die "cannot write report: %s" msg)
  | None -> ());
  if verbose then print_string (Rs_service.Service.report_summary report)

(* Delta-sequence mode: random insert/retract streams maintained through the
   IVM and diffed against a from-scratch recompute at every version. *)
let delta_fuzz_cmd seed iters deltas report_path verbose =
  let log = if verbose then prerr_endline else fun (_ : string) -> () in
  let report = Rs_fuzz.Delta_fuzz.run ~log ~seed ~iters ~deltas () in
  Printf.printf
    "fuzz --delta-stream: seed=%d cases=%d (invalid=%d) versions=%d ops=%d diverged=%d\n"
    report.Rs_fuzz.Delta_fuzz.seed report.Rs_fuzz.Delta_fuzz.cases
    report.Rs_fuzz.Delta_fuzz.invalid report.Rs_fuzz.Delta_fuzz.versions
    report.Rs_fuzz.Delta_fuzz.ops
    (List.length report.Rs_fuzz.Delta_fuzz.divergences);
  List.iter
    (fun (d : Rs_fuzz.Delta_fuzz.divergence) ->
      Printf.printf "  DIVERGENCE seed=%d version=%d pred=%s missing=%d extra=%d\n"
        d.Rs_fuzz.Delta_fuzz.div_seed d.Rs_fuzz.Delta_fuzz.div_version
        d.Rs_fuzz.Delta_fuzz.div_pred
        (List.length d.Rs_fuzz.Delta_fuzz.div_missing)
        (List.length d.Rs_fuzz.Delta_fuzz.div_extra))
    report.Rs_fuzz.Delta_fuzz.divergences;
  (match report_path with
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Rs_obs.Json.to_string (Rs_fuzz.Delta_fuzz.report_json report));
        output_char oc '\n';
        close_out oc
      with Sys_error msg -> die "cannot write report: %s" msg)
  | None -> ());
  if not (Rs_fuzz.Delta_fuzz.clean report) then exit 1

let fuzz_cmd seed iters out_dir report_path verbose inject_dedup_fault delta_stream
    deltas =
  if delta_stream then delta_fuzz_cmd seed iters deltas report_path verbose
  else
  let log = if verbose then prerr_endline else fun (_ : string) -> () in
  let campaign () = Rs_fuzz.Fuzz.run ~log ~seed ~iters () in
  let report =
    (* self-test: arm a scoped dedup-drop plan for exactly the campaign; the
       scope (not a bare global flag) guarantees nothing stays injected if
       the campaign dies halfway *)
    if inject_dedup_fault then
      Rs_chaos.Inject.with_plan
        (Rs_chaos.Fault.plan ~seed
           [ Rs_chaos.Fault.spec ~p:0.25 Rs_chaos.Fault.Dedup_drop ])
        campaign
    else campaign ()
  in
  Printf.printf
    "fuzz: seed=%d cases=%d (invalid=%d) runners=%d runs=%d: ok=%d skipped=%d \
     diverged=%d failed=%d\n"
    report.Rs_fuzz.Fuzz.seed report.Rs_fuzz.Fuzz.cases report.Rs_fuzz.Fuzz.invalid
    report.Rs_fuzz.Fuzz.n_runners report.Rs_fuzz.Fuzz.runs_total report.Rs_fuzz.Fuzz.runs_ok
    report.Rs_fuzz.Fuzz.runs_skipped report.Rs_fuzz.Fuzz.runs_diverged
    report.Rs_fuzz.Fuzz.runs_failed;
  (match out_dir with
  | Some dir ->
      List.iter
        (fun path -> Printf.printf "reproducer: %s\n" path)
        (Rs_fuzz.Fuzz.dump_divergences ~dir report)
  | None -> ());
  (match report_path with
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Rs_obs.Json.to_string (Rs_fuzz.Fuzz.report_json report));
        output_char oc '\n';
        close_out oc
      with Sys_error msg -> die "cannot write report: %s" msg)
  | None -> ());
  if not (Rs_fuzz.Fuzz.clean report) then exit 1

let chaos_cmd seed iters plan report_path verbose =
  let log = if verbose then prerr_endline else fun (_ : string) -> () in
  let report =
    match Rs_fuzz.Chaos_harness.run ~log ?plan ~seed ~iters () with
    | r -> r
    | exception Rs_chaos.Fault.Parse_error m -> die "bad --plan: %s" m
  in
  Printf.printf
    "chaos: seed=%d cases=%d (invalid=%d) classes=%d recovered=%d typed_rejections=%d \
     leaks=%d violations=%d\n"
    report.Rs_fuzz.Chaos_harness.seed report.Rs_fuzz.Chaos_harness.cases
    report.Rs_fuzz.Chaos_harness.invalid
    (List.length report.Rs_fuzz.Chaos_harness.injected)
    report.Rs_fuzz.Chaos_harness.recovered report.Rs_fuzz.Chaos_harness.rejected_typed
    report.Rs_fuzz.Chaos_harness.leaks
    (List.length report.Rs_fuzz.Chaos_harness.violations);
  List.iter
    (fun (c, n) -> Printf.printf "  injected %-10s %d\n" (Rs_chaos.Fault.cls_name c) n)
    report.Rs_fuzz.Chaos_harness.injected;
  List.iter
    (fun v ->
      Printf.printf "  VIOLATION case %d (seed %d, plan %s): %s\n"
        v.Rs_fuzz.Chaos_harness.v_iter v.Rs_fuzz.Chaos_harness.v_seed
        v.Rs_fuzz.Chaos_harness.v_plan v.Rs_fuzz.Chaos_harness.v_msg;
      List.iter
        (fun w ->
          List.iter
            (fun line -> if line <> "" then Printf.printf "    why: %s\n" line)
            (String.split_on_char '\n' w))
        v.Rs_fuzz.Chaos_harness.v_why)
    report.Rs_fuzz.Chaos_harness.violations;
  (match report_path with
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc
          (Rs_obs.Json.to_string (Rs_fuzz.Chaos_harness.report_json report));
        output_char oc '\n';
        close_out oc
      with Sys_error msg -> die "cannot write report: %s" msg)
  | None -> ());
  if not (Rs_fuzz.Chaos_harness.clean report) then exit 1

let gen_cmd kind n m p seed out =
  let rel =
    match kind with
    | "gnp" -> Rs_datagen.Graphs.gnp ~seed ~n ~p
    | "rmat" -> Rs_datagen.Graphs.rmat ~seed ~n ~m:(if m = 0 then 10 * n else m)
    | other -> (
        match List.assoc_opt other Rs_datagen.Graphs.real_world_profiles with
        | Some _ -> Rs_datagen.Graphs.real_world_like ~seed ~scale:1 other
        | None -> failwith (Printf.sprintf "unknown generator %S (gnp, rmat, or a preset)" other))
  in
  Recstep.Frontend.save_tsv rel out;
  Printf.printf "wrote %d edges to %s\n" (Rs_relation.Relation.nrows rel) out

(* --- cmdliner wiring --- *)

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Datalog program file")

let facts_arg =
  Arg.(value & opt_all string [] & info [ "fact"; "f" ] ~docv:"NAME=PATH" ~doc:"input relation from a TSV file")

let out_arg = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc:"write output relations as TSV under DIR")

let engine_arg =
  Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"NAME" ~doc:"evaluate with one of the seven registry engines instead of the stock interpreter: RecStep, Souffle-like, bddbddb-like, Graspan-like, BigDatalog-like, Distributed-BigDatalog, Sharded-RecStep")

let workers_arg = Arg.(value & opt int 16 & info [ "workers"; "j" ] ~doc:"simulated worker count")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print engine statistics")

let explain_arg =
  Arg.(value & flag & info [ "explain" ] ~doc:"print the stratification and generated query plans instead of evaluating")

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc:"record an execution trace (spans, counters, per-iteration deltas) and write it to FILE as JSON; with --verbose also print a summary")

let dsd_arg =
  Arg.(value & opt string "dynamic" & info [ "dsd" ] ~docv:"MODE" ~doc:"set-difference strategy: dynamic (cost model), opsd, or tpsd")

let no_pbme_arg =
  Arg.(value & flag & info [ "no-pbme" ] ~doc:"disable the bit-matrix kernels for TC/SG-shaped strata (forces the relational path)")

let no_kernels_arg =
  Arg.(value & flag & info [ "no-kernels" ] ~doc:"disable the compiled rule kernels (fused join-project-dedup closures for hot recursive rules); every rule takes the interpreted plan path")

let no_persistent_indexes_arg =
  Arg.(value & flag & info [ "no-persistent-indexes" ] ~doc:"disable the fixpoint-lifetime index manager (rebuild join indexes per query, the pre-optimization behavior)")

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc:"evaluate on N simulated shard nodes with hash partitioning and colocation-aware join planning (1 = single-node interpreter)")

let no_colocation_arg =
  Arg.(value & flag & info [ "no-colocation" ] ~doc:"charge every derived tuple as a repartition shuffle even when colocation would keep it node-local (cost-model ablation; results are unchanged)")

let rebalance_arg =
  Arg.(value & flag & info [ "rebalance" ] ~doc:"detect load skew between fixpoint strata and migrate hot partition buckets to colder shard nodes")

let run_term =
  Term.(const run_cmd $ program_arg $ facts_arg $ out_arg $ engine_arg $ workers_arg $ verbose_arg $ explain_arg $ profile_arg $ dsd_arg $ no_pbme_arg $ no_kernels_arg $ no_persistent_indexes_arg $ shards_arg $ no_colocation_arg $ rebalance_arg)

let fact_pos_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"FACT" ~doc:"the fact to explain, e.g. 'tc(1, 3)'")

let sample_arg =
  Arg.(value & opt float 1.0 & info [ "sample" ] ~docv:"RATE" ~doc:"provenance sampling rate in [0,1]: the fraction of tuples tagged (deterministic per tuple content); explain still works below 1.0, tags just stop guiding the search")

let no_provenance_arg =
  Arg.(value & flag & info [ "no-provenance" ] ~doc:"evaluate without recording derivation tags; the explanation is reconstructed by top-down search alone (results are byte-identical either way)")

let max_steps_arg =
  Arg.(value & opt int 200_000 & info [ "max-steps" ] ~docv:"N" ~doc:"proof-search step budget before giving up")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"print the derivation chain as JSON instead of the indented rendering")

let explain_term =
  Term.(
    const explain_cmd $ program_arg $ fact_pos_arg $ facts_arg $ workers_arg
    $ sample_arg $ no_provenance_arg $ max_steps_arg $ json_arg $ verbose_arg)

let script_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"workload script: EDB definitions plus a stream of submit/delta events (see lib/service/script.mli)")

let serve_workers_arg =
  Arg.(value & opt (some int) None & info [ "workers"; "j" ] ~doc:"simulated worker count (default: script setting or 8)")

let queue_arg =
  Arg.(value & opt (some int) None & info [ "queue" ] ~docv:"N" ~doc:"admission queue capacity (default: script setting or 64)")

let cache_bytes_arg =
  Arg.(value & opt (some int) None & info [ "cache-bytes" ] ~docv:"BYTES" ~doc:"result-cache budget in bytes (default: script setting or 64 MiB)")

let no_cache_arg = Arg.(value & flag & info [ "no-cache" ] ~doc:"disable the result cache")

let serve_seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"scheduler seed (default: script setting or 1)")

let mem_budget_arg =
  Arg.(value & opt (some int) None & info [ "mem-budget" ] ~docv:"BYTES" ~doc:"admission + OOM memory budget in bytes (default: script setting or unlimited)")

let report_arg =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc:"write the service report (counters, latency percentiles, per-query dispositions) to FILE as JSON")

let no_ivm_arg =
  Arg.(value & flag & info [ "no-ivm" ] ~doc:"disable incremental view maintenance: deltas always invalidate cached results instead of refreshing them")

let ivm_max_delta_arg =
  Arg.(value & opt (some int) None & info [ "ivm-max-delta" ] ~docv:"OPS" ~doc:"net delta size above which warm refresh falls back to invalidation (default: script setting or 512)")

let serve_shards_arg =
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc:"run engine-less submissions on N simulated shard nodes and report per-shard utilization (default: script setting or 1)")

let serve_no_kernels_arg =
  Arg.(value & flag & info [ "no-kernels" ] ~doc:"disable the compiled rule kernels for engine-less submissions (default: script 'kernels' setting or enabled)")

let serve_autoscale_arg =
  Arg.(value & flag & info [ "autoscale" ] ~doc:"let the service resize its virtual worker pool and cache budget from queue depth and windowed tail latency (default: script 'autoscale' setting or off); --workers becomes the starting size")

let serve_autoscale_min_arg =
  Arg.(value & opt (some int) None & info [ "autoscale-min" ] ~docv:"N" ~doc:"autoscaler worker floor (default: script setting or 1)")

let serve_autoscale_max_arg =
  Arg.(value & opt (some int) None & info [ "autoscale-max" ] ~docv:"N" ~doc:"autoscaler worker ceiling (default: script setting or 4x --workers)")

let serve_term =
  Term.(
    const serve_cmd $ script_arg $ serve_workers_arg $ queue_arg $ cache_bytes_arg
    $ no_cache_arg $ serve_seed_arg $ mem_budget_arg $ no_ivm_arg $ ivm_max_delta_arg
    $ serve_shards_arg $ serve_no_kernels_arg $ serve_autoscale_arg
    $ serve_autoscale_min_arg $ serve_autoscale_max_arg $ report_arg $ verbose_arg)

let tenants_arg =
  Arg.(value & opt int 10_000 & info [ "tenants" ] ~docv:"N" ~doc:"tenant population size (Zipf ranks)")

let load_queries_arg =
  Arg.(value & opt int 400 & info [ "queries"; "n" ] ~docv:"K" ~doc:"total submissions over the horizon")

let load_seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"workload + scheduler seed")

let duration_arg =
  Arg.(value & opt float 0.5 & info [ "duration" ] ~docv:"S" ~doc:"arrival horizon in simulated seconds")

let skew_arg =
  Arg.(value & opt float 1.1 & info [ "skew" ] ~docv:"S" ~doc:"Zipf exponent of the tenant traffic distribution (0 = uniform)")

let burstiness_arg =
  Arg.(value & opt float 0.7 & info [ "burstiness" ] ~docv:"F" ~doc:"fraction of arrivals inside burst windows (0..1)")

let bursts_arg =
  Arg.(value & opt int 4 & info [ "bursts" ] ~docv:"K" ~doc:"burst windows across the horizon")

let load_deltas_arg =
  Arg.(value & opt int 4 & info [ "deltas" ] ~docv:"K" ~doc:"EDB churn events spread over the horizon")

let slo_ms_arg =
  Arg.(value & opt string "" & info [ "slo-ms" ] ~docv:"SPEC" ~doc:"per-class SLO latency targets in milliseconds, e.g. 'gold=50,silver=200,bronze=1000' (defaults 50/200/1000)")

let load_workers_arg =
  Arg.(value & opt int 2 & info [ "workers"; "j" ] ~doc:"initial (and autoscaler floor) simulated worker count")

let load_max_workers_arg =
  Arg.(value & opt int 16 & info [ "max-workers" ] ~docv:"N" ~doc:"autoscaler worker ceiling")

let no_autoscale_arg =
  Arg.(value & flag & info [ "no-autoscale" ] ~doc:"hold the worker count and cache budget fixed at their initial sizes")

let load_cache_bytes_arg =
  Arg.(value & opt int (1 * 1024 * 1024) & info [ "cache-bytes" ] ~docv:"BYTES" ~doc:"initial result-cache budget (0 disables)")

let load_queue_arg =
  Arg.(value & opt (some int) None & info [ "queue" ] ~docv:"N" ~doc:"admission queue capacity (default: admit the whole workload)")

let deadlines_arg =
  Arg.(value & flag & info [ "deadlines" ] ~doc:"attach hard per-query deadlines at 8x the class SLO target")

let load_report_arg =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc:"write the SLO report (per-class latency histograms, attainment, autoscale counters, busiest tenants) to FILE as JSON")

let kind_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc:"gnp | rmat | livejournal | orkut | arabic | twitter")

let n_arg = Arg.(value & opt int 1000 & info [ "n"; "num-vertices" ] ~doc:"vertex count")

let m_arg = Arg.(value & opt int 0 & info [ "m"; "num-edges" ] ~doc:"edge count (rmat; default 10n)")

let p_arg = Arg.(value & opt float 0.001 & info [ "p"; "prob" ] ~doc:"edge probability (gnp)")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")

let gen_out_arg = Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH" ~doc:"output TSV path")

let gen_term = Term.(const gen_cmd $ kind_arg $ n_arg $ m_arg $ p_arg $ seed_arg $ gen_out_arg)

let fuzz_seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"campaign seed (per-case seeds derive from it deterministically)")

let iters_arg = Arg.(value & opt int 50 & info [ "iters"; "n" ] ~docv:"K" ~doc:"number of random cases to generate and diff")

let fuzz_out_arg =
  Arg.(value & opt (some string) None & info [ "out-dir" ] ~docv:"DIR" ~doc:"dump each shrunk reproducer under DIR as a runnable .dl plus one .tsv per input relation")

let fuzz_report_arg =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc:"write the campaign report (counters, divergences, failures) to FILE as JSON")

let inject_dedup_fault_arg =
  Arg.(value & flag & info [ "inject-dedup-fault" ] ~doc:"self-test: deterministically drop a fraction of fresh keys in the fast dedup paths; the campaign must catch and shrink the resulting divergences")

let delta_stream_arg =
  Arg.(value & flag & info [ "delta-stream" ] ~doc:"delta-sequence mode: per case, stream random insert/retract deltas through incremental view maintenance and diff the maintained IDBs against a from-scratch recompute at every version")

let deltas_arg =
  Arg.(value & opt int 8 & info [ "deltas" ] ~docv:"K" ~doc:"delta-stream mode: versions (deltas) per case")

let fuzz_term =
  Term.(
    const fuzz_cmd $ fuzz_seed_arg $ iters_arg $ fuzz_out_arg $ fuzz_report_arg
    $ verbose_arg $ inject_dedup_fault_arg $ delta_stream_arg $ deltas_arg)

let chaos_iters_arg =
  Arg.(value & opt int 50 & info [ "iters"; "n" ] ~docv:"K" ~doc:"number of chaos cases (program x fault plan) to run")

let plan_arg =
  Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"PLAN" ~doc:"force one fault plan for every case instead of the builtin rotation; syntax: 'class:key=value,...;class:...' with classes mem, txn, stall, crash, dedup, dedup_drop, index, cache, delta, node_loss, shuffle_drop, kernel — e.g. 'mem:p=1,threshold=65536,limit=1;crash:p=0.5'")

let chaos_report_arg =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc:"write the campaign report (per-class fire counts, outcome histogram, violations, leaks) to FILE as JSON")

let chaos_term =
  Term.(
    const chaos_cmd $ fuzz_seed_arg $ chaos_iters_arg $ plan_arg $ chaos_report_arg
    $ verbose_arg)

let load_term =
  Term.(
    const load_cmd $ tenants_arg $ load_queries_arg $ load_seed_arg $ duration_arg
    $ skew_arg $ burstiness_arg $ bursts_arg $ load_deltas_arg $ slo_ms_arg
    $ load_workers_arg $ load_max_workers_arg $ no_autoscale_arg
    $ load_cache_bytes_arg $ load_queue_arg $ deadlines_arg $ plan_arg
    $ load_report_arg $ verbose_arg)

let () =
  let run = Cmd.v (Cmd.info "run" ~doc:"evaluate a Datalog program") run_term in
  let serve =
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "replay a multi-tenant query workload through the serving layer (admission \
            control, tenant-fair scheduling, result cache)")
      serve_term
  in
  let explain =
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "why-provenance: evaluate the program and print the full rule + premise \
            derivation chain of one fact, down to the EDB leaves (exit 1 if the fact \
            is absent or underivable)")
      explain_term
  in
  let gen = Cmd.v (Cmd.info "gen" ~doc:"generate benchmark datasets") gen_term in
  let fuzz =
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "differential fuzzing: random stratified programs diffed against a naive \
            reference evaluator across every baseline engine and the full \
            optimization-toggle matrix; failing cases are shrunk to minimal \
            reproducers (exit 1 on any divergence or failure)")
      fuzz_term
  in
  let chaos =
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "chaos campaign: generated programs run through the serving stack under \
            seeded fault plans (allocation failures, txn aborts, worker stalls and \
            crashes, dedup/index failures, cache corruption); every case must end in \
            a correct result or a typed rejection with no memory leaked (exit 1 \
            otherwise)")
      chaos_term
  in
  let load =
    Cmd.v
      (Cmd.info "load"
         ~doc:
           "drive the serving layer with a synthetic multi-tenant load model: \
            Zipf-skewed tenant traffic in bursty open-loop arrivals over shared \
            size-class databases, per-class SLO targets, and (by default) the \
            autoscaler resizing workers and cache from queue depth and tail \
            latency; prints the per-class SLO scorecard")
      load_term
  in
  let main = Cmd.group (Cmd.info "recstep" ~doc:"RecStep: Datalog on a parallel relational backend") [ run; explain; serve; load; gen; fuzz; chaos ] in
  exit (Cmd.eval main)
