(* The RecStep command-line interface.

     recstep run program.datalog --fact arc=edges.tsv --out results/
     recstep run program.datalog --fact arc=edges.tsv --engine Souffle-like
     recstep gen gnp -n 1000 -p 0.01 -o arc.tsv
     recstep gen rmat -n 65536 -m 655360 -o arc.tsv

   Programs use the paper's syntax (see lib/core/parser.mli); facts are
   whitespace-separated integer tuples, one per line. *)

open Cmdliner

let load_facts an specs =
  List.map
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          let arity = Recstep.Analyzer.arity an name in
          (name, Recstep.Frontend.load_tsv ~name ~arity path)
      | None -> failwith (Printf.sprintf "bad --fact %S (expected name=path)" spec))
    specs

let explain program =
  let an = Recstep.Analyzer.analyze program in
  List.iter
    (fun (s : Recstep.Analyzer.stratum) ->
      Printf.printf "stratum %d%s: %s\n" s.Recstep.Analyzer.index
        (if s.Recstep.Analyzer.recursive then " (recursive)" else "")
        (String.concat ", " s.Recstep.Analyzer.preds);
      List.iter
        (fun rule ->
          Printf.printf "  rule: %s\n" (Recstep.Ast.rule_to_string rule);
          match Recstep.Planner.compile_rule an s rule with
          | Recstep.Planner.Fact t ->
              Printf.printf "    fact (%s)\n"
                (String.concat ", " (Array.to_list (Array.map string_of_int t)))
          | Recstep.Planner.Query { base; deltas } ->
              Printf.printf "    base plan:\n%s" (Rs_exec.Plan.to_string base);
              List.iteri
                (fun i d -> Printf.printf "    delta plan %d:\n%s" i (Rs_exec.Plan.to_string d))
                deltas)
        s.Recstep.Analyzer.rules)
    an.Recstep.Analyzer.strata

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("recstep: " ^ msg);
      exit 1)
    fmt

let run_cmd program_path facts out_dir engine workers verbose explain_only profile =
  let program = Recstep.Parser.parse_file program_path in
  if explain_only then explain program
  else begin
  let an = Recstep.Analyzer.analyze program in
  let edb = load_facts an facts in
  let pool = Rs_parallel.Pool.create ~workers () in
  Rs_parallel.Pool.begin_run pool;
  let trace =
    match profile with
    | Some _ ->
        Some (Rs_obs.Trace.create ~now:(fun () -> Rs_parallel.Pool.vtime_now pool) ())
    | None -> None
  in
  let lookup =
    match engine with
    | None ->
        let options = Recstep.Interpreter.options ?trace () in
        let result = Recstep.Interpreter.run ~options ~pool ~edb program in
        if verbose then
          Printf.printf "iterations=%d queries=%d pbme_strata=%d io_bytes=%d\n"
            result.Recstep.Interpreter.iterations result.Recstep.Interpreter.queries
            result.Recstep.Interpreter.pbme_strata result.Recstep.Interpreter.io_bytes;
        result.Recstep.Interpreter.relation_of
    | Some name -> (
        match Rs_engines.Engines.by_name name with
        | Some engine -> (
            match Rs_engines.Engine_intf.run_guarded engine ~pool ?trace ~edb program with
            | Rs_engines.Engine_intf.Done result ->
                if verbose then
                  Printf.printf "iterations=%d queries=%d\n"
                    result.Rs_engines.Engine_intf.iterations
                    result.Rs_engines.Engine_intf.queries;
                result.Rs_engines.Engine_intf.relation_of
            | Oom -> die "%s: out of (simulated) memory" name
            | Timeout -> die "%s: simulated deadline exceeded" name
            | Unsupported m -> die "unsupported program: %s" m)
        | None ->
            die "unknown engine %S (known: %s)" name
              (String.concat ", " (List.map Rs_engines.Engines.name Rs_engines.Engines.all)))
  in
  let stats = Rs_parallel.Pool.stats pool in
  (match (profile, trace) with
  | Some path, Some tr ->
      List.iter
        (fun e ->
          Rs_obs.Trace.add_batch tr ~start:e.Rs_parallel.Pool.ev_vstart
            ~len:e.Rs_parallel.Pool.ev_vlen ~busy:e.Rs_parallel.Pool.ev_busy)
        (Rs_parallel.Pool.events pool);
      (try Rs_obs.Trace.dump tr ~path
       with Sys_error msg -> die "cannot write profile: %s" msg);
      if verbose then print_string (Rs_obs.Trace.summary tr)
  | _ -> ());
  let outputs = if program.Recstep.Ast.outputs = [] then an.Recstep.Analyzer.idbs else program.Recstep.Ast.outputs in
  List.iter
    (fun name ->
      let rel = lookup name in
      (match out_dir with
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          Recstep.Frontend.save_tsv rel (Filename.concat dir (name ^ ".tsv"))
      | None -> ());
      Printf.printf "%-16s %d tuples\n" name (Rs_relation.Relation.nrows rel))
    outputs;
  Printf.printf "done in %.4fs simulated on %d workers (%.4fs wall)\n" stats.Rs_parallel.Pool.vtime
    stats.Rs_parallel.Pool.workers stats.Rs_parallel.Pool.wall
  end

let gen_cmd kind n m p seed out =
  let rel =
    match kind with
    | "gnp" -> Rs_datagen.Graphs.gnp ~seed ~n ~p
    | "rmat" -> Rs_datagen.Graphs.rmat ~seed ~n ~m:(if m = 0 then 10 * n else m)
    | other -> (
        match List.assoc_opt other Rs_datagen.Graphs.real_world_profiles with
        | Some _ -> Rs_datagen.Graphs.real_world_like ~seed ~scale:1 other
        | None -> failwith (Printf.sprintf "unknown generator %S (gnp, rmat, or a preset)" other))
  in
  Recstep.Frontend.save_tsv rel out;
  Printf.printf "wrote %d edges to %s\n" (Rs_relation.Relation.nrows rel) out

(* --- cmdliner wiring --- *)

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Datalog program file")

let facts_arg =
  Arg.(value & opt_all string [] & info [ "fact"; "f" ] ~docv:"NAME=PATH" ~doc:"input relation from a TSV file")

let out_arg = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc:"write output relations as TSV under DIR")

let engine_arg =
  Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"NAME" ~doc:"evaluate with a baseline engine instead of RecStep")

let workers_arg = Arg.(value & opt int 16 & info [ "workers"; "j" ] ~doc:"simulated worker count")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print engine statistics")

let explain_arg =
  Arg.(value & flag & info [ "explain" ] ~doc:"print the stratification and generated query plans instead of evaluating")

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc:"record an execution trace (spans, counters, per-iteration deltas) and write it to FILE as JSON; with --verbose also print a summary")

let run_term =
  Term.(const run_cmd $ program_arg $ facts_arg $ out_arg $ engine_arg $ workers_arg $ verbose_arg $ explain_arg $ profile_arg)

let kind_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc:"gnp | rmat | livejournal | orkut | arabic | twitter")

let n_arg = Arg.(value & opt int 1000 & info [ "n"; "num-vertices" ] ~doc:"vertex count")

let m_arg = Arg.(value & opt int 0 & info [ "m"; "num-edges" ] ~doc:"edge count (rmat; default 10n)")

let p_arg = Arg.(value & opt float 0.001 & info [ "p"; "prob" ] ~doc:"edge probability (gnp)")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")

let gen_out_arg = Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH" ~doc:"output TSV path")

let gen_term = Term.(const gen_cmd $ kind_arg $ n_arg $ m_arg $ p_arg $ seed_arg $ gen_out_arg)

let () =
  let run = Cmd.v (Cmd.info "run" ~doc:"evaluate a Datalog program") run_term in
  let gen = Cmd.v (Cmd.info "gen" ~doc:"generate benchmark datasets") gen_term in
  let main = Cmd.group (Cmd.info "recstep" ~doc:"RecStep: Datalog on a parallel relational backend") [ run; gen ] in
  exit (Cmd.eval main)
