(* Cross-engine comparison on one workload (a miniature of Figure 10).

     dune exec examples/engine_comparison.exe

   Runs every reimplemented engine on transitive closure over a dense
   generated graph and prints time, result size and capability differences —
   including which engines refuse which programs (Table 1's envelope). *)

module Engine_intf = Rs_engines.Engine_intf

let () =
  let program = Recstep.Parser.parse Recstep.Programs.tc in
  let make_arc () = Rs_datagen.Graphs.gnp ~seed:42 ~n:300 ~p:0.03 in
  Printf.printf "%-24s %10s %10s\n" "engine" "time (s)" "|tc|";
  print_endline (String.make 46 '-');
  List.iter
    (fun ((module E : Engine_intf.S) as engine) ->
      let pool = Rs_parallel.Pool.create ~workers:16 () in
      Rs_parallel.Pool.begin_run pool;
      match Engine_intf.run_guarded engine ~pool ~edb:[ ("arc", make_arc ()) ] program with
      | Engine_intf.Done result ->
          let stats = Rs_parallel.Pool.stats pool in
          Printf.printf "%-24s %10.4f %10d\n" E.name stats.Rs_parallel.Pool.vtime
            (List.length
               (Rs_relation.Relation.sorted_distinct_rows
                  (result.Engine_intf.relation_of "tc")))
      | Engine_intf.Unsupported msg -> Printf.printf "%-24s %s\n" E.name msg
      | Engine_intf.Oom -> Printf.printf "%-24s OOM\n" E.name
      | Engine_intf.Timeout -> Printf.printf "%-24s timeout\n" E.name
      | Engine_intf.Fault { cls; _ } ->
          Printf.printf "%-24s fault:%s\n" E.name (Rs_chaos.Fault.cls_name cls))
    Rs_engines.Engines.all;

  (* capability envelope: who refuses what *)
  print_endline "\nprograms outside each engine's fragment:";
  let try_run ((module E : Engine_intf.S) as engine) name src edb =
    let pool = Rs_parallel.Pool.create ~workers:4 () in
    Rs_parallel.Pool.begin_run pool;
    match Engine_intf.run_guarded engine ~pool ~edb (Recstep.Parser.parse src) with
    | Engine_intf.Unsupported _ -> Printf.printf "  %-24s rejects %s\n" E.name name
    | _ -> ()
  in
  let arc = Recstep.Frontend.edges [ (1, 2) ] in
  let deref = Recstep.Frontend.edges ~name:"dereference" [ (1, 2) ] in
  List.iter
    (fun e ->
      try_run e "CC (recursive aggregation)" Recstep.Programs.cc
        [ ("arc", Rs_relation.Relation.copy arc) ];
      try_run e "CSPA (mutual recursion)" Recstep.Programs.cspa
        [ ("assign", Rs_relation.Relation.copy arc); ("dereference", Rs_relation.Relation.copy deref) ])
    Rs_engines.Engines.all
