(** Workload scripts for the CLI's serve mode.

    A script is a line-oriented replay of service traffic — the databases to
    install, then a stream of submissions and EDB deltas in simulated time:

    {v
    # settings the CLI takes as defaults (flags override)
    set workers 8
    set cache_bytes 67108864
    set shards 4

    # databases: inline rows, or a fact file (same TSV format as --fact)
    edb g1 arc:2 = 0 1; 1 2; 2 3; 3 4
    edb g2 arc:2 @ facts/arc.tsv

    # submissions; repeat/every expand into a train of identical queries
    submit at=0 tenant=alice edb=g1 program=tc.datalog repeat=3 every=0.01
    submit at=0 tenant=bob edb=g1 program=sg.datalog deadline=5 mem=medium

    # updates at t=1: a typed delta stream — inserts and retracts
    delta at=1 g1 arc = 4 5; 5 6
    retract at=1.5 g1 arc = 0 1
    v}

    [delta] inserts rows, [retract] removes them (both net out against the
    store's current contents — see {!Edb_store.apply}); each line becomes
    one {!Service.Delta} event.

    [submit] keys: [tenant], [edb], [program] (path, relative to the
    script) are required; [at], [deadline], [mem] (small/medium/large),
    [engine], [id], [repeat], [every] are optional. Program files are
    parsed once and shared across submissions. *)

exception Script_error of { path : string; line : int; msg : string }
(** Malformed script line, with its position — reported by the CLI as a
    one-line error, like [Recstep.Frontend.Parse_error]. *)

type t = {
  settings : (string * string) list;  (** [set] lines, in order *)
  defs : (string * (string * Rs_relation.Relation.t) list) list;
      (** databases to install in the {!Edb_store}, in order *)
  events : Service.event list;  (** submissions and deltas, in script order *)
}

val parse : ?path:string -> string -> t
(** Parse script text; [path] is used in errors and as the base directory
    for [program] and [@] fact-file references (default: current dir). *)

val load : string -> t
(** Read and {!parse} a script file. *)

val render_delta : at:float -> edb:string -> Rs_relation.Delta.t -> string list
(** Script lines ([delta] / [retract], one per relation and sign) that
    parse back to events with the same timestamp, database and ops — the
    renderer half of the DSL round-trip. *)
