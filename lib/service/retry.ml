type rung = Full | Half_workers | No_persistent_indexes | No_fast_path

let all_rungs = [ Full; Half_workers; No_persistent_indexes; No_fast_path ]

let rung_name = function
  | Full -> "full"
  | Half_workers -> "half_workers"
  | No_persistent_indexes -> "no_persistent_indexes"
  | No_fast_path -> "no_fast_path"

let next_rung = function
  | Full -> Some Half_workers
  | Half_workers -> Some No_persistent_indexes
  | No_persistent_indexes -> Some No_fast_path
  | No_fast_path -> None

type knobs = { k_workers : int; k_persistent_indexes : bool; k_fast_path : bool }

(* The ladder is cumulative: each rung keeps every degradation above it, so
   the bottom rung is the smallest configuration the service will try before
   rejecting. *)
let knobs ~workers = function
  | Full -> { k_workers = workers; k_persistent_indexes = true; k_fast_path = true }
  | Half_workers ->
      { k_workers = max 1 (workers / 2); k_persistent_indexes = true; k_fast_path = true }
  | No_persistent_indexes ->
      { k_workers = max 1 (workers / 2); k_persistent_indexes = false; k_fast_path = true }
  | No_fast_path ->
      { k_workers = max 1 (workers / 2); k_persistent_indexes = false; k_fast_path = false }

type failure = Oom_failure | Fault_failure of Rs_chaos.Fault.cls

let failure_name = function
  | Oom_failure -> "oom"
  | Fault_failure c -> "fault:" ^ Rs_chaos.Fault.cls_name c

(* Which failures are worth another attempt. OOM is retryable because the
   ladder shrinks the working set (fewer workers → fewer concurrent
   fragments; no persistent indexes / no fast path → smaller resident
   structures). Transient injected faults (an aborted flush, a dead worker
   chunk, a failed table build) are retryable in place. Silent-corruption
   classes never surface as failures, and a timeout is final by definition:
   the deadline that killed attempt n has even less room for attempt n+1. *)
let retryable = function
  | Oom_failure -> true
  | Fault_failure (Rs_chaos.Fault.Txn | Crash | Dedup_fail | Index_fail) -> true
  (* A lost shard node or dropped shuffle message that exhausted the sharded
     executor's own stratum retries is still transient at the service level:
     a fresh attempt re-runs from the committed store. *)
  | Fault_failure (Rs_chaos.Fault.Node_loss | Shuffle_drop) -> true
  (* Delta_abort fires at delta application, not query execution: the store
     rolls back atomically and the retry ladder has nothing to re-run.
     Kernel_fail is recovered inside the interpreter (fallback to the
     interpreted plan) and never surfaces as a failure here. *)
  | Fault_failure
      (Rs_chaos.Fault.Mem | Stall | Dedup_drop | Cache_corrupt | Delta_abort | Kernel_fail)
    -> false

type policy = { max_attempts : int; backoff_base_s : float; backoff_cap_s : float }

let policy ?(max_attempts = 4) ?(backoff_base_s = 1e-3) ?(backoff_cap_s = 0.25) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts < 1";
  if backoff_base_s < 0.0 || backoff_cap_s < 0.0 then
    invalid_arg "Retry.policy: negative backoff";
  { max_attempts; backoff_base_s; backoff_cap_s }

let default = policy ()

(* Simulated seconds to wait before retry number [retry] (1-based):
   exponential, capped. Simulated time only — the wall clock never sleeps. *)
let backoff_s p ~retry =
  if retry < 1 then invalid_arg "Retry.backoff_s";
  min p.backoff_cap_s (p.backoff_base_s *. (2.0 ** float_of_int (retry - 1)))

type decision = Retry of { rung : rung; backoff_s : float } | Give_up

(* [attempt] is the 1-based number of the attempt that just failed at
   [rung]. OOM climbs down the ladder (same configuration again would meet
   the same wall); transient faults retry the same configuration. *)
let next p ~attempt ~rung failure =
  if (not (retryable failure)) || attempt >= p.max_attempts then Give_up
  else
    match failure with
    | Oom_failure -> (
        match next_rung rung with
        | None -> Give_up
        | Some r -> Retry { rung = r; backoff_s = backoff_s p ~retry:attempt })
    | Fault_failure _ -> Retry { rung; backoff_s = backoff_s p ~retry:attempt }
