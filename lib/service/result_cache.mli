(** Result cache: (canonical program hash, EDB version) → output relations.

    Repeated analytic queries are the serving workload's common case; the
    cache stores the {e canonical rows} of a finished query's outputs so an
    identical resubmission is answered without touching the engines. The key
    is exact — same canonicalized program ({!Program_key}), same database,
    same version — so a stale hit is impossible by construction; eager
    invalidation on a registered delta ({!invalidate_edb}) exists to free
    the bytes, not for correctness.

    Eviction is LRU under a byte budget: every entry carries an estimate of
    its row storage, and inserting past the budget evicts least-recently-hit
    entries first. A budget of [0] disables the cache ([find] never hits,
    [add] never stores) — the cache-off arm of the benchmark. *)

type key = { program : string; edb : string; edb_version : int }

type value = (string * int array list) list
(** Output relation name → sorted distinct rows. *)

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidations : int;  (** entries dropped by {!invalidate_edb} *)
}

type t

val create : budget_bytes:int -> t

val find : t -> key -> value option
(** Refreshes the entry's recency on a hit; counts hit/miss. *)

val add : t -> key -> value -> unit
(** Inserts (replacing any previous entry at [key]) and evicts LRU entries
    until the budget holds. A value larger than the whole budget is not
    stored. *)

val invalidate_edb : t -> string -> int
(** Drop every entry for the named database, any version; returns how many
    were dropped. *)

val value_bytes : value -> int
(** The size estimate used for budgeting. *)

val stats : t -> stats
