(** Result cache: (canonical program hash, EDB version) → output relations.

    Repeated analytic queries are the serving workload's common case; the
    cache stores the {e canonical rows} of a finished query's outputs so an
    identical resubmission is answered without touching the engines. The
    key's program component is a 60-bit FNV-1a digest ({!Program_key.hash})
    — a digest, not an identity — so every entry also carries the full
    canonical program text and {!find} verifies it on lookup: a hash
    collision is counted ([collisions]) and served as a miss, never as
    another program's rows. With the text verified (and the EDB version in
    the key), a stale or cross-program hit is impossible; eager invalidation
    on a registered delta ({!invalidate_edb}) exists to free the bytes, not
    for correctness.

    Eviction is LRU under a byte budget: every entry carries an estimate of
    its row storage, and inserting past the budget evicts least-recently-hit
    entries first. A budget of [0] disables the cache ([find] never hits,
    [add] never stores) — the cache-off arm of the benchmark.

    Two further integrity guards: every entry stores a content checksum of
    its rows, verified on lookup — a corrupted entry (the
    {!Rs_chaos.Fault.Cache_corrupt} fault point lives in {!add}) is dropped
    and served as a miss, so the query recomputes rather than receiving
    damaged rows. And {!add} refuses values from runs flagged [stale] (the
    deadline expired before the result landed) or [degraded] (produced under
    a reduced retry-ladder configuration): such an entry would outlive the
    incident and keep serving at full-confidence latency. *)

type key = { program : string; edb : string; edb_version : int }

type value = (string * int array list) list
(** Output relation name → sorted distinct rows. *)

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidations : int;  (** entries dropped by {!invalidate_edb} *)
  collisions : int;
      (** lookups whose key matched but whose canonical text did not — hash
          collisions deflected to misses *)
  corruptions : int;
      (** verified lookups whose stored rows failed the content checksum —
          dropped and deflected to misses *)
  skipped : int;  (** inserts refused because the run was stale or degraded *)
  refreshes : int;  (** entries re-keyed to a new EDB version by {!refresh_edb} *)
}

type t

val create : budget_bytes:int -> t

val find : t -> key -> canonical:string -> value option
(** Refreshes the entry's recency on a verified hit; counts hit/miss. A key
    match whose stored canonical text differs from [canonical] is a hash
    collision: counted in [collisions] and returned as a miss. A text match
    whose rows fail the stored checksum is a corruption: counted in
    [corruptions], the entry dropped, and returned as a miss. *)

val add : ?stale:bool -> ?degraded:bool -> t -> key -> value -> canonical:string -> unit
(** Inserts (replacing any previous entry at [key]) and evicts LRU entries
    until the budget holds; [canonical] is stored for lookup verification
    and charged to the entry's bytes. A value larger than the whole budget
    is not stored. When [stale] or [degraded] is set the insert is refused
    and counted in [skipped] — the caller still returns the rows to its
    client, they just don't enter the cache. *)

val invalidate_edb : t -> string -> int
(** Drop every entry for the named database, any version; returns how many
    were dropped. *)

val refresh_edb :
  t -> string -> version:int -> (canonical:string -> value option) -> int
(** [refresh_edb t edb ~version refresher] visits every entry of [edb] not
    already at [version]. Entries the [refresher] can answer (keyed by their
    stored canonical program text) are re-keyed to [version] with the
    returned rows — checksum and byte accounting recomputed, recency
    preserved — and counted in [refreshes]; the rest are dropped and counted
    in [invalidations]. Evicts LRU entries afterwards if the refreshed rows
    outgrew the budget. Returns the number refreshed. This is how the
    serving layer keeps tenants' materialized results warm across EDB
    versions instead of cold-dropping them on every delta. *)

val set_budget : t -> int -> unit
(** Retarget the byte budget in place — the autoscaler grows and shrinks
    the cache alongside the worker count. Shrinking below the live bytes
    evicts LRU entries immediately; setting [0] disables the cache (and
    empties it). Statistics and surviving entries' recency carry over. *)

val value_bytes : value -> int
(** The size estimate used for budgeting. *)

val value_checksum : value -> int
(** Order-sensitive content digest of a value — the integrity checksum the
    cache verifies on lookup, exported so reports can carry a comparable
    fingerprint of served rows. *)

val stats : t -> stats
