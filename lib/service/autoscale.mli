(** Reactive autoscaler for the serving loop's virtual machine size.

    The service simulates one k-worker machine ({!Rs_parallel.Pool}) and a
    byte-budgeted result cache. Under the load model's bursty Zipf arrivals
    a fixed [k] is wrong twice: too small while a burst queues behind it,
    too large (paying coordination overhead and cache bytes) in the valleys
    between bursts. This module is the policy loop that resizes both from
    the two signals the service already observes — ready-queue depth and
    served tail latency.

    Mechanics: completions stream into a fixed-size evaluation window (a
    {!Rs_obs.Histogram} plus the max queue depth seen). When the window
    fills it is evaluated and reset:

    - {e scale up} (double the workers, clamp to [max_workers]) when the
      window's queue depth per worker reached [queue_hi] or its p95 latency
      exceeded [tail_target_s];
    - {e scale down} (halve, clamp to [min_workers]) only after [cooldown]
      {e consecutive} calm windows — queue depth per worker at most
      [queue_lo] {e and} p95 within target. One hot window resets the
      streak.

    The gap between [queue_hi] and [queue_lo] plus the cooldown is the
    hysteresis: a burst train cannot make the scaler flap. The cache byte
    budget moves with the worker count (linear between [cache_min_bytes]
    and [cache_max_bytes]) so capacity and state shrink together.

    Composition with the retry ladder: the scaler owns the {e base} worker
    count, and each attempt's knobs are derived from it through
    {!Retry.knobs} — a [Half_workers] retry under a scaled-up service halves
    the scaled-up count, exactly as it halved the configured count before.

    Decisions take effect at the {e next} dispatch (the pool's worker count
    is applied per attempt), matching the pool's own set-workers
    semantics. Everything is deterministic: same completions in, same
    decisions out. *)

type policy = {
  min_workers : int;
  max_workers : int;
  queue_hi : float;  (** queued items per worker that makes a window hot *)
  queue_lo : float;  (** per-worker depth a calm window must stay under *)
  tail_target_s : float;  (** windowed p95 latency budget, simulated s *)
  window : int;  (** completions per evaluation *)
  cooldown : int;  (** consecutive calm windows before a scale-down *)
  cache_min_bytes : int;  (** cache budget at [min_workers] *)
  cache_max_bytes : int;  (** cache budget at [max_workers] *)
}

val policy :
  ?min_workers:int ->
  ?max_workers:int ->
  ?queue_hi:float ->
  ?queue_lo:float ->
  ?tail_target_s:float ->
  ?window:int ->
  ?cooldown:int ->
  ?cache_min_bytes:int ->
  ?cache_max_bytes:int ->
  unit ->
  policy
(** Defaults: workers in [1, 64]; hot at 4 queued per worker, calm under 1;
    p95 target 0.5 s; 32-completion windows; 3 calm windows before scaling
    down; cache budget 16–256 MiB. *)

type direction = Up | Down

type decision = {
  d_dir : direction;
  d_workers_from : int;
  d_workers_to : int;
  d_cache_from : int;
  d_cache_to : int;
  d_p95_s : float;  (** the window p95 that drove the decision *)
  d_queue_per_worker : float;  (** the window's max depth per worker *)
}

type t

val create : policy -> workers:int -> cache_bytes:int -> t
(** Start from the service's configured size; [workers] is clamped into
    the policy's range (the initial cache budget is taken as configured). *)

val workers : t -> int
(** Current base worker count — what {!Retry.knobs} should derive from. *)

val cache_bytes : t -> int
(** Current cache byte budget. *)

val evals : t -> int
(** Windows evaluated so far. *)

val note : t -> queue_depth:int -> latency_s:float -> decision option
(** Record one served completion (its end-to-end latency and the ready-queue
    depth at completion time). Returns a decision exactly when this
    completion closed a window whose evaluation changed the size. The
    returned sizes are already applied to [t]. *)
