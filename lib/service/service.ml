module Trace = Rs_obs.Trace
module Json = Rs_obs.Json
module Histogram = Rs_obs.Histogram
module Pool = Rs_parallel.Pool
module Memtrack = Rs_storage.Memtrack
module Engine_intf = Rs_engines.Engine_intf
module Engines = Rs_engines.Engines
module Relation = Rs_relation.Relation
module Ast = Recstep.Ast
module Interpreter = Recstep.Interpreter
module Ivm = Recstep.Ivm
module Provenance = Recstep.Provenance
module Explain = Recstep.Explain
module Delta = Rs_relation.Delta
module Fault = Rs_chaos.Fault

type submission = {
  sub_id : string;
  tenant : string;
  program : Ast.program;
  edb : string;
  at : float;
  deadline_vs : float option;
  mem : Admission.memclass;
  engine : string option;
}

let submission ?(id = "") ?(at = 0.0) ?deadline_vs ?(mem = Admission.Small) ?engine
    ~tenant ~edb program =
  { sub_id = id; tenant; program; edb; at; deadline_vs; mem; engine }

type explain_request = {
  ex_at : float;
  ex_tenant : string;
  ex_edb : string;
  ex_program : Ast.program;
  ex_pred : string;
  ex_row : int list;
}

type event =
  | Submit of submission
  | Delta of { at : float; edb : string; delta : Delta.t }
  | Explain of explain_request

let event_time = function Submit s -> s.at | Delta d -> d.at | Explain r -> r.ex_at

let delta_event ~at ~edb delta = Delta { at; edb; delta }

let explain_event ?(at = 0.0) ~tenant ~edb ~pred ~row program =
  Explain { ex_at = at; ex_tenant = tenant; ex_edb = edb; ex_program = program; ex_pred = pred; ex_row = row }

type outcome =
  | Done of Result_cache.value
  | Oom
  | Timeout
  | Unsupported of string
  | Fault of { cls : Fault.cls; point : string }
  | Rejected of Admission.reason

let outcome_label = function
  | Done _ -> "done"
  | Oom -> "oom"
  | Timeout -> "timeout"
  | Unsupported _ -> "unsupported"
  | Fault _ -> "fault"
  | Rejected _ -> "rejected"

type completion = {
  c_id : string;
  c_tenant : string;
  c_edb : string;
  c_at : float;
  c_started : float option;
  c_finished : float;
  c_outcome : outcome;
  c_cache_hit : bool;
  c_retries : int;
  c_degraded : string option;
      (* rung name when the final attempt ran below Retry.Full *)
}

type config = {
  workers : int;
  queue_capacity : int;
  mem_budget : int option;
  cache_bytes : int;
  cache_hit_cost_s : float;
  seed : int;
  retry : Retry.policy;
  ivm : bool;
  ivm_max_delta : int;
  shards : int;
  kernels : bool;
  autoscale : Autoscale.policy option;
}

let config ?(workers = 8) ?(queue_capacity = 64) ?mem_budget
    ?(cache_bytes = 64 * 1024 * 1024) ?(cache_hit_cost_s = 1e-4) ?(seed = 1)
    ?(retry = Retry.default) ?(ivm = true) ?(ivm_max_delta = 512) ?(shards = 1)
    ?(kernels = true) ?autoscale () =
  {
    workers;
    queue_capacity;
    mem_budget;
    cache_bytes;
    cache_hit_cost_s;
    seed;
    retry;
    ivm;
    ivm_max_delta;
    shards = max 1 shards;
    kernels;
    autoscale;
  }

type shard_stat = {
  sh_shard : int;
  sh_queries : int;
  sh_busy_s : float;
  sh_sim_s : float;
  sh_rows : int;
}

type latency_note = {
  ln_query : string;
  ln_outcome : string;
  ln_latency : float;
  ln_spans : (string * float) list;
}

type explanation = {
  x_at : float;
  x_tenant : string;
  x_edb : string;
  x_fact : string;
  x_status : string;
  x_rules : int list;
  x_depth : int;
  x_from_view : bool;
  x_text : string;
  x_latency : latency_note option;
}

type report = {
  completions : completion list;
  explanations : explanation list;
  counters : (string * int) list;
  cache : Result_cache.stats;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  p999_latency : float;
  served_degraded : int;
  throughput : float;
  vtime : float;
  shard_stats : shard_stat list;
  trace : Trace.t;
}

let counter_names =
  [
    "submitted"; "admitted"; "rejected"; "done"; "oom"; "timeout"; "unsupported";
    "fault"; "cache_hit"; "cache_miss"; "retried"; "degraded"; "deadline_miss";
    "delta_applied"; "delta_noop"; "delta_fault"; "refreshed"; "view_built";
    "view_dropped"; "explain"; "autoscale.evals"; "autoscale.up"; "autoscale.down";
    "autoscale.cache_up"; "autoscale.cache_down";
  ]

(* The declared outputs of a program, or all its IDBs — same convention as
   the CLI's run command. *)
let output_names program =
  if program.Ast.outputs <> [] then program.Ast.outputs
  else (Recstep.Analyzer.analyze program).Recstep.Analyzer.idbs

(* A maintained view: the incremental twin of one (edb, canonical program)
   cache-entry family. [v_edbs] is the program's own input set — a store
   delta is filtered to it before Ivm.apply, so deltas touching relations
   the program never reads refresh its entries for free. *)
type view = { v_ivm : Ivm.t; v_edbs : string list; v_outputs : string list }

let view_value v =
  List.map
    (fun n -> (n, List.map Array.of_list (Ivm.rows v.v_ivm n)))
    v.v_outputs

let run ?(config = config ()) ~edb:store events =
  let pool = Pool.create ~workers:config.workers () in
  let clock = ref 0.0 in
  let now_impl = ref (fun () -> !clock) in
  let trace = Trace.create ~now:(fun () -> !now_impl ()) () in
  let counts = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace counts n 0) counter_names;
  let bump name n =
    Hashtbl.replace counts name (n + Option.value ~default:0 (Hashtbl.find_opt counts name));
    Trace.count trace ("service." ^ name) n
  in
  let cache = Result_cache.create ~budget_bytes:config.cache_bytes in
  (* The autoscaler owns the base worker count when enabled; the retry
     ladder's knobs derive from it per attempt, so [Half_workers] halves
     whatever the scaler has currently granted. *)
  let scaler =
    Option.map
      (fun p -> Autoscale.create p ~workers:config.workers ~cache_bytes:config.cache_bytes)
      config.autoscale
  in
  let base_workers () =
    match scaler with Some s -> Autoscale.workers s | None -> config.workers
  in
  (* Store-lifetime persistent join indexes: keyed by base-relation name,
     shared across every interpreter run of the service and kept live
     across EDB deltas by the store's rebase/invalidate commit hook. *)
  let shared_indexes =
    let base_names = Hashtbl.create 16 in
    List.iter
      (fun db ->
        List.iter (fun (rl, _) -> Hashtbl.replace base_names rl ()) (Edb_store.lookup store db))
      (Edb_store.names store);
    Rs_exec.Index_manager.create ~trace ~persistent:(Hashtbl.mem base_names) pool
  in
  Edb_store.attach_index_manager store shared_indexes;
  (* per-shard utilization across every sharded run of the session *)
  let shard_queries = Array.make config.shards 0 in
  let shard_busy = Array.make config.shards 0.0 in
  let shard_sim = Array.make config.shards 0.0 in
  let shard_rows = Array.make config.shards 0 in
  let note_shards (stats : Rs_shard.Shard_exec.node_stats list) =
    List.iter
      (fun (ns : Rs_shard.Shard_exec.node_stats) ->
        let i = ns.Rs_shard.Shard_exec.ns_node in
        if i < config.shards then begin
          shard_queries.(i) <- shard_queries.(i) + ns.Rs_shard.Shard_exec.ns_queries;
          shard_busy.(i) <- shard_busy.(i) +. ns.Rs_shard.Shard_exec.ns_busy_s;
          shard_sim.(i) <- shard_sim.(i) +. ns.Rs_shard.Shard_exec.ns_sim_s;
          shard_rows.(i) <- ns.Rs_shard.Shard_exec.ns_rows
        end)
      stats
  in
  (* Maintained views: one {!Recstep.Ivm} instance per (database, canonical
     program) that has produced a cacheable result. On a registered delta
     the views absorb the net change and hand the result cache its entries'
     rows at the new version — warm refresh instead of cold invalidation. *)
  let views : (string * string, view) Hashtbl.t = Hashtbl.create 16 in
  let sched = Scheduler.create ~seed:config.seed in
  let completions = ref [] in
  (* auto ids in event order, before time-sorting *)
  let next_id = ref 0 in
  let events =
    List.map
      (function
        | Submit s when s.sub_id = "" ->
            incr next_id;
            Submit { s with sub_id = Printf.sprintf "q%d" !next_id }
        | e -> e)
      events
  in
  let pending = ref (List.stable_sort (fun a b -> compare (event_time a) (event_time b)) events) in
  let reject sub reason =
    bump "rejected" 1;
    completions :=
      {
        c_id = sub.sub_id;
        c_tenant = sub.tenant;
        c_edb = sub.edb;
        c_at = sub.at;
        c_started = None;
        c_finished = !clock;
        c_outcome = Rejected reason;
        c_cache_hit = false;
        c_retries = 0;
        c_degraded = None;
      }
      :: !completions
  in
  let admit sub =
    bump "submitted" 1;
    let decision =
      if not (Edb_store.mem store sub.edb) then
        Admission.Reject (Admission.Unknown_edb sub.edb)
      else
        Admission.decide ~queue_len:(Scheduler.length sched)
          ~queue_capacity:config.queue_capacity ~mem:sub.mem ~budget:config.mem_budget
          ~live:(Memtrack.live ())
    in
    match decision with
    | Admission.Admit ->
        bump "admitted" 1;
        Scheduler.push sched ~tenant:sub.tenant sub
    | Admission.Reject reason -> reject sub reason
  in
  let drop_views edb =
    let doomed =
      Hashtbl.fold (fun (e, c) _ acc -> if e = edb then (e, c) :: acc else acc) views []
    in
    List.iter (Hashtbl.remove views) doomed;
    List.length doomed
  in
  let apply_delta d =
    match d with
    | Delta { edb; delta; _ } ->
        (* operator-applied state change: not subject to the query budget *)
        let saved = Memtrack.budget () in
        Memtrack.set_budget None;
        let applied =
          match Edb_store.apply store edb delta with
          | r -> Ok r
          | exception Fault.Injected { cls; point } -> Error (cls, point)
          | exception Memtrack.Simulated_oom _ ->
              (* a chaos Mem probe tripped while accounting the staged
                 relations; the store released them and rolled back *)
              Error (Fault.Mem, "edb_store.apply")
        in
        Memtrack.set_budget saved;
        (match applied with
        | Error (cls, point) ->
            (* the store rolled back atomically: version, cache and views
               all still agree on the pre-delta state *)
            bump "delta_fault" 1;
            Trace.event trace ~kind:"service" "edb_delta_fault"
              [ ("cls", float_of_int (Fault.cls_index cls)) ];
            ignore point
        | Ok (_, net) when Delta.is_empty net ->
            (* insert-of-present / retract-of-absent: no version bump, every
               cached result is still exact *)
            bump "delta_noop" 1
        | Ok (version, net) ->
            bump "delta_applied" 1;
            if config.ivm && Delta.size net <= config.ivm_max_delta then begin
              (* warm path: fold the net change into every view of this
                 database, then re-key its cache entries to [version]. A
                 view whose maintenance raises — Ivm.Unsupported from a
                 program the support check mispredicted, a count underflow,
                 an arity clash — must degrade to invalidation of that one
                 view, never surface to the tenant: the store commit already
                 happened, and the refresher below recomputes anything the
                 dropped view can no longer answer *)
              let doomed = ref [] in
              Hashtbl.iter
                (fun (e, c) v ->
                  if e = edb then
                    let mine = List.filter (fun (rl, _) -> List.mem rl v.v_edbs) net in
                    match Ivm.apply v.v_ivm mine with
                    | _ -> ()
                    | exception _ -> doomed := (e, c) :: !doomed)
                views;
              List.iter
                (fun key ->
                  Hashtbl.remove views key;
                  bump "view_dropped" 1;
                  Trace.event trace ~kind:"service" "view_maintenance_failed" [])
                !doomed;
              let refreshed =
                Result_cache.refresh_edb cache edb ~version (fun ~canonical ->
                    Option.map view_value (Hashtbl.find_opt views (edb, canonical)))
              in
              bump "refreshed" refreshed;
              Trace.event trace ~kind:"service" "edb_delta"
                [
                  ("ops", float_of_int (Delta.size net));
                  ("refreshed", float_of_int refreshed);
                ]
            end
            else begin
              (* fallback: the delta is too large for incremental refresh to
                 pay off (or maintenance is off) — drop views and entries,
                 queries recompute against the new version *)
              bump "view_dropped" (drop_views edb);
              let dropped = Result_cache.invalidate_edb cache edb in
              Trace.event trace ~kind:"service" "edb_delta"
                [
                  ("ops", float_of_int (Delta.size net));
                  ("invalidated", float_of_int dropped);
                ]
            end)
    | Submit _ | Explain _ -> assert false
  in
  let explanations = ref [] in
  (* Join the derivation answer with the serving timeline: the tenant's
     latest dispatched query on this database, its end-to-end latency, and
     the slowest spans nested under its service span — "why is this fact
     here" and "where did the time go" in one report entry. *)
  let latency_note (r : explain_request) =
    match
      List.find_opt
        (fun c -> c.c_tenant = r.ex_tenant && c.c_edb = r.ex_edb && c.c_started <> None)
        !completions
    with
    | None -> None
    | Some c ->
        let name = c.c_tenant ^ "/" ^ c.c_id in
        let arr = Array.of_list (Trace.spans trace) in
        let idx = ref (-1) in
        Array.iteri
          (fun i (s : Trace.span) ->
            if s.Trace.sp_kind = "service" && s.Trace.sp_name = name then idx := i)
          arr;
        let spans =
          if !idx < 0 then []
          else begin
            let me = arr.(!idx) in
            let dur (s : Trace.span) =
              match s.Trace.sp_stop with Some e -> e -. s.Trace.sp_start | None -> 0.0
            in
            let children = ref [] in
            (try
               for i = !idx + 1 to Array.length arr - 1 do
                 let s = arr.(i) in
                 if s.Trace.sp_depth <= me.Trace.sp_depth then raise Exit;
                 children := (s.Trace.sp_kind ^ ":" ^ s.Trace.sp_name, dur s) :: !children
               done
             with Exit -> ());
            List.filteri
              (fun i _ -> i < 3)
              (List.sort (fun (_, a) (_, b) -> compare (b : float) a) !children)
          end
        in
        Some
          {
            ln_query = c.c_id;
            ln_outcome = outcome_label c.c_outcome;
            ln_latency = c.c_finished -. c.c_at;
            ln_spans = spans;
          }
  in
  let explain_one (r : explain_request) =
    bump "explain" 1;
    let canonical = Program_key.canonical r.ex_program in
    let answer () =
      match Hashtbl.find_opt views (r.ex_edb, canonical) with
      | Some v ->
          (* warm: the maintained view's materialized rows and its tag
             store, kept current across deltas by Ivm.apply *)
          Ok (Ivm.analyzer v.v_ivm, Ivm.rows v.v_ivm, Ivm.provenance v.v_ivm, true)
      | None ->
          if not (Edb_store.mem store r.ex_edb) then
            Error (Printf.sprintf "unknown EDB %S" r.ex_edb)
          else begin
            (* cold: one provenance-enabled evaluation against the current
               store version — an operator/debug action, off the query
               budget like the delta path *)
            let prov = Provenance.create () in
            let saved = Memtrack.budget () in
            Memtrack.set_budget None;
            Fun.protect
              ~finally:(fun () -> Memtrack.set_budget saved)
              (fun () ->
                Pool.begin_run pool;
                match
                  Interpreter.run
                    ~options:(Interpreter.options ~provenance:prov ())
                    ~pool
                    ~edb:(Edb_store.lookup store r.ex_edb)
                    r.ex_program
                with
                | result ->
                    let an = Recstep.Analyzer.analyze r.ex_program in
                    let rows p =
                      List.map Array.to_list
                        (Relation.sorted_distinct_rows (result.Interpreter.relation_of p))
                    in
                    Ok (an, rows, Some prov, false)
                | exception Recstep.Analyzer.Analysis_error m ->
                    Error ("analysis error: " ^ m))
          end
    in
    let fact = Explain.fact_to_string r.ex_pred r.ex_row in
    let status, rules, depth, from_view, text =
      match answer () with
      | Error m -> ("error", [], 0, false, m)
      | Ok (an, rows, prov, from_view) -> (
          match Explain.explain ?prov ~an ~rows r.ex_pred r.ex_row with
          | Explain.Explained n ->
              ( "explained",
                Explain.rules_used n,
                Explain.depth n,
                from_view,
                Explain.render ?tags:prov n )
          | Explain.Absent as o ->
              ("absent", [], 0, from_view, Explain.outcome_to_string ~pred:r.ex_pred ~row:r.ex_row o)
          | Explain.No_proof as o ->
              ("no_proof", [], 0, from_view, Explain.outcome_to_string ~pred:r.ex_pred ~row:r.ex_row o)
          | Explain.Budget_exceeded _ as o ->
              ("budget", [], 0, from_view, Explain.outcome_to_string ~pred:r.ex_pred ~row:r.ex_row o)
          | exception exn -> ("error", [], 0, from_view, Printexc.to_string exn))
    in
    explanations :=
      {
        x_at = !clock;
        x_tenant = r.ex_tenant;
        x_edb = r.ex_edb;
        x_fact = fact;
        x_status = status;
        x_rules = rules;
        x_depth = depth;
        x_from_view = from_view;
        x_text = text;
        x_latency = latency_note r;
      }
      :: !explanations
  in
  let apply_due () =
    let rec go () =
      match !pending with
      | e :: rest when event_time e <= !clock ->
          pending := rest;
          (match e with
          | Submit s -> admit s
          | Delta _ -> apply_delta e
          | Explain r -> explain_one r);
          go ()
      | _ -> ()
    in
    go ()
  in
  (* one engine attempt under the rung's knobs; engine spans and pool batches
     land on the service timeline at offset [base] *)
  let run_attempt sub rels (knobs : Retry.knobs) deadline_left base =
    Pool.set_workers pool knobs.Retry.k_workers;
    Pool.begin_run pool;
    now_impl := (fun () -> base +. Pool.vtime_now pool);
    let res =
      match
        match sub.engine with
        | None when config.shards > 1 ->
            (* Sharded default path: the distributed executor with the
               ladder's degradable knobs mapped onto its options. *)
            Engine_intf.guard (fun () ->
                let options =
                  Rs_shard.Shard_exec.options ~shards:config.shards
                    ?timeout_vs:deadline_left ~trace
                    ~persistent_indexes:knobs.Retry.k_persistent_indexes
                    ~fast_dedup:knobs.Retry.k_fast_path ()
                in
                match Rs_shard.Shard_exec.run ~options ~pool ~edb:rels sub.program with
                | r ->
                    note_shards r.Rs_shard.Shard_exec.node_stats;
                    Engine_intf.mk_result ~pool ~trace
                      ~iterations:r.Rs_shard.Shard_exec.iterations
                      ~queries:r.Rs_shard.Shard_exec.queries
                      r.Rs_shard.Shard_exec.relation_of
                | exception Rs_shard.Shard_exec.Unsupported m ->
                    Engine_intf.unsupported "%s" m)
        | None ->
            (* Default path: drive the RecStep interpreter directly, so the
               ladder's lower rungs can turn engine structures off. At
               {!Retry.Full} the options equal Engines.recstep's. *)
            Engine_intf.guard (fun () ->
                let options =
                  Interpreter.options ?timeout_vs:deadline_left ~trace
                    ~persistent_indexes:knobs.Retry.k_persistent_indexes
                    ~shared_indexes ~pbme:knobs.Retry.k_fast_path
                    ~fast_dedup:knobs.Retry.k_fast_path
                    ~compiled_kernels:(config.kernels && knobs.Retry.k_fast_path) ()
                in
                let r = Interpreter.run ~options ~pool ~edb:rels sub.program in
                Engine_intf.mk_result ~pool ~trace ~iterations:r.Interpreter.iterations
                  ~queries:r.Interpreter.queries r.Interpreter.relation_of)
        | Some name -> (
            match Engines.by_name name with
            | None ->
                Engine_intf.Unsupported (Printf.sprintf "unknown engine %S" name)
            | Some e ->
                (* named baseline engines have no knob surface; the ladder
                   degrades them through the pool's worker count only *)
                Engine_intf.run_guarded e ~pool ?deadline_vs:deadline_left ~trace
                  ~edb:rels sub.program)
      with
      | o -> o
      | exception Recstep.Analyzer.Analysis_error m ->
          Engine_intf.Unsupported ("analysis error: " ^ m)
    in
    now_impl := (fun () -> !clock);
    List.iter
      (fun (e : Pool.event) ->
        Trace.add_batch trace ~start:(base +. e.Pool.ev_vstart) ~len:e.Pool.ev_vlen
          ~busy:e.Pool.ev_busy)
      (Pool.events pool);
    (res, (Pool.stats pool).Pool.vtime)
  in
  let execute sub =
    let started = !clock in
    Trace.begin_span trace ~kind:"service" (sub.tenant ^ "/" ^ sub.sub_id);
    let version = Edb_store.version store sub.edb in
    (* hash once, keep the canonical text: the cache verifies it on lookup
       so an FNV-1a collision between tenants can never serve foreign rows *)
    let canonical = Program_key.canonical sub.program in
    let key =
      {
        Result_cache.program = Program_key.hash_of_canonical canonical;
        edb = sub.edb;
        edb_version = version;
      }
    in
    let deadline0 = Option.map (fun d -> d -. (started -. sub.at)) sub.deadline_vs in
    let outcome, cost, cache_hit, retries, degraded =
      match deadline0 with
      | Some d when d <= 0.0 -> (Timeout, 0.0, false, 0, None)
      | _ -> (
          match Result_cache.find cache key ~canonical with
          | Some v ->
              bump "cache_hit" 1;
              (Done v, config.cache_hit_cost_s, true, 0, None)
          | None ->
              bump "cache_miss" 1;
              let rels = Edb_store.lookup store sub.edb in
              let mem_before = Memtrack.live () in
              let shared_before = Rs_exec.Index_manager.bytes shared_indexes in
              let left_after elapsed = Option.map (fun d -> d -. elapsed) deadline0 in
              (* Walk the retry policy. [attempt] is 1-based; [elapsed] is
                 simulated seconds since [started] including backoffs. *)
              let rec attempts rung attempt elapsed =
                let res, cost =
                  run_attempt sub rels
                    (Retry.knobs ~workers:(base_workers ()) rung)
                    (left_after elapsed) (started +. elapsed)
                in
                (* every exit path — success or any fault class — restores
                   the tracker to the pre-query baseline immediately, so a
                   retry never runs with the failed attempt's leak still
                   counted against its headroom (the seed freed it only
                   after the last attempt); bytes the shared index manager
                   deliberately grew by are not a leak and stay accounted *)
                let shared_growth =
                  Rs_exec.Index_manager.bytes shared_indexes - shared_before
                in
                let leak = Memtrack.live () - mem_before - max 0 shared_growth in
                if leak > 0 then Memtrack.free leak;
                let elapsed = elapsed +. cost in
                match res with
                | Engine_intf.Done _ | Engine_intf.Timeout | Engine_intf.Unsupported _ ->
                    (res, elapsed, attempt - 1, rung)
                | Engine_intf.Oom | Engine_intf.Fault _ -> (
                    let failure =
                      match res with
                      | Engine_intf.Oom -> Retry.Oom_failure
                      | Engine_intf.Fault { cls; _ } -> Retry.Fault_failure cls
                      | _ -> assert false
                    in
                    match Retry.next config.retry ~attempt ~rung failure with
                    | Retry.Give_up -> (res, elapsed, attempt - 1, rung)
                    | Retry.Retry { rung = rung'; backoff_s } -> (
                        bump "retried" 1;
                        let elapsed = elapsed +. backoff_s in
                        match left_after elapsed with
                        | Some d when d <= 0.0 ->
                            (* retry budget exhausted: typed, not an
                               exception — attempt count includes the retry
                               we could not afford *)
                            (Engine_intf.Timeout, elapsed, attempt, rung)
                        | _ -> attempts rung' (attempt + 1) elapsed))
              in
              let res, cost, retries, rung = attempts Retry.Full 1 0.0 in
              let degraded =
                if rung <> Retry.Full then Some (Retry.rung_name rung) else None
              in
              let outcome =
                match res with
                | Engine_intf.Done result ->
                    let rows =
                      List.map
                        (fun n ->
                          (n, Relation.sorted_distinct_rows (result.Engine_intf.relation_of n)))
                        (output_names sub.program)
                    in
                    (* a result that lands after its deadline, or from a
                       degraded rung, is returned to the client but must not
                       enter the cache *)
                    let stale =
                      match sub.deadline_vs with
                      | Some d -> started +. cost -. sub.at > d
                      | None -> false
                    in
                    Result_cache.add cache key rows ~canonical ~stale
                      ~degraded:(degraded <> None);
                    (* register the incremental twin for whatever entered
                       the cache: a full-confidence result of a maintainable
                       program gets a view that will track future deltas *)
                    if
                      config.ivm && (not stale) && degraded = None
                      && (not (Hashtbl.mem views (sub.edb, canonical)))
                      && Ivm.supported sub.program
                    then begin
                      let edb_rows =
                        List.map
                          (fun (n, r) ->
                            (n, List.map Array.to_list (Relation.to_rows r)))
                          rels
                      in
                      match Ivm.create ~prov:(Provenance.create ()) ~edb:edb_rows sub.program with
                      | ivm ->
                          Hashtbl.replace views (sub.edb, canonical)
                            {
                              v_ivm = ivm;
                              v_edbs =
                                (Recstep.Analyzer.analyze sub.program)
                                  .Recstep.Analyzer.edbs;
                              v_outputs = output_names sub.program;
                            };
                          bump "view_built" 1
                      | exception Ivm.Unsupported _ -> ()
                    end;
                    Done rows
                | Engine_intf.Oom -> Oom
                | Engine_intf.Timeout -> Timeout
                | Engine_intf.Unsupported m -> Unsupported m
                | Engine_intf.Fault { cls; point } -> Fault { cls; point }
              in
              (outcome, cost, false, retries, degraded))
    in
    clock := started +. cost;
    Trace.end_span trace;
    bump (outcome_label outcome) 1;
    (match outcome with Timeout -> bump "deadline_miss" 1 | _ -> ());
    if degraded <> None then bump "degraded" 1;
    completions :=
      {
        c_id = sub.sub_id;
        c_tenant = sub.tenant;
        c_edb = sub.edb;
        c_at = sub.at;
        c_started = Some started;
        c_finished = !clock;
        c_outcome = outcome;
        c_cache_hit = cache_hit;
        c_retries = retries;
        c_degraded = degraded;
      }
      :: !completions;
    match scaler with
    | None -> ()
    | Some s ->
        let before = Autoscale.evals s in
        let decision =
          Autoscale.note s ~queue_depth:(Scheduler.length sched)
            ~latency_s:(!clock -. sub.at)
        in
        let evaluated = Autoscale.evals s - before in
        if evaluated > 0 then bump "autoscale.evals" evaluated;
        (match decision with
        | None -> ()
        | Some d ->
            (match d.Autoscale.d_dir with
            | Autoscale.Up -> bump "autoscale.up" 1
            | Autoscale.Down -> bump "autoscale.down" 1);
            (* a zero initial budget means the cache is off for the whole
               run — the scaler must not resurrect it *)
            if config.cache_bytes > 0 && d.Autoscale.d_cache_to <> d.Autoscale.d_cache_from
            then begin
              Result_cache.set_budget cache d.Autoscale.d_cache_to;
              bump
                (if d.Autoscale.d_cache_to > d.Autoscale.d_cache_from then
                   "autoscale.cache_up"
                 else "autoscale.cache_down")
                1
            end;
            Trace.event trace ~kind:"service" "autoscale"
              [
                ("workers", float_of_int d.Autoscale.d_workers_to);
                ("cache_bytes", float_of_int d.Autoscale.d_cache_to);
                ("p95", d.Autoscale.d_p95_s);
                ("queue_per_worker", d.Autoscale.d_queue_per_worker);
              ])
  in
  let prev_budget = Memtrack.budget () in
  Memtrack.set_budget config.mem_budget;
  Fun.protect
    ~finally:(fun () ->
      Rs_exec.Index_manager.release_all shared_indexes;
      Memtrack.set_budget prev_budget)
    (fun () ->
      let rec loop () =
        apply_due ();
        match Scheduler.pop sched with
        | Some (_, sub) ->
            execute sub;
            loop ()
        | None -> (
            match !pending with
            | [] -> ()
            | e :: _ ->
                clock := max !clock (event_time e);
                loop ())
      in
      loop ());
  let completions = List.rev !completions in
  (* every served result counts toward the latency distribution, degraded
     ones included — the tenant waited for those bytes too; the report
     carries [served_degraded] so SLO accounting can split them out *)
  let served_latencies =
    List.filter_map
      (fun c -> match c.c_outcome with Done _ -> Some (c.c_finished -. c.c_at) | _ -> None)
      completions
    |> List.sort compare |> Array.of_list
  in
  let served_degraded =
    List.fold_left
      (fun acc c ->
        match c.c_outcome with
        | Done _ when c.c_degraded <> None -> acc + 1
        | _ -> acc)
      0 completions
  in
  let counters =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  let served = Array.length served_latencies in
  let shard_stats =
    if config.shards <= 1 then []
    else
      List.init config.shards (fun i ->
          {
            sh_shard = i;
            sh_queries = shard_queries.(i);
            sh_busy_s = shard_busy.(i);
            sh_sim_s = shard_sim.(i);
            sh_rows = shard_rows.(i);
          })
  in
  {
    completions;
    explanations = List.rev !explanations;
    counters;
    cache = Result_cache.stats cache;
    p50_latency = Histogram.percentile_sorted served_latencies 50.0;
    p95_latency = Histogram.percentile_sorted served_latencies 95.0;
    p99_latency = Histogram.percentile_sorted served_latencies 99.0;
    p999_latency = Histogram.percentile_sorted served_latencies 99.9;
    served_degraded;
    throughput = (if !clock > 0.0 then float_of_int served /. !clock else 0.0);
    vtime = !clock;
    shard_stats;
    trace;
  }

let counter report name = Option.value ~default:0 (List.assoc_opt name report.counters)

let outcome_detail = function
  | Unsupported m -> Some m
  | Rejected r -> Some (Admission.reason_to_string r)
  | Fault { cls; point } -> Some (Fault.cls_name cls ^ "@" ^ point)
  | Done _ | Oom | Timeout -> None

let report_json r =
  let query c =
    Json.Obj
      ([
         ("id", Json.String c.c_id);
         ("tenant", Json.String c.c_tenant);
         ("edb", Json.String c.c_edb);
         ("at", Json.Float c.c_at);
         ("started", match c.c_started with Some s -> Json.Float s | None -> Json.Null);
         ("finished", Json.Float c.c_finished);
         ("outcome", Json.String (outcome_label c.c_outcome));
         ("cache_hit", Json.Bool c.c_cache_hit);
         ("retries", Json.Int c.c_retries);
         ( "degraded",
           match c.c_degraded with Some d -> Json.String d | None -> Json.Null );
         ( "latency",
           match c.c_outcome with
           | Rejected _ -> Json.Null
           | _ -> Json.Float (c.c_finished -. c.c_at) );
       ]
      @ (match c.c_outcome with
        | Done v ->
            (* row count and content fingerprint of the served value, so an
               external check can assert that incrementally-refreshed
               results are byte-identical to recomputed ones *)
            [
              ( "rows",
                Json.Int (List.fold_left (fun a (_, rs) -> a + List.length rs) 0 v) );
              ( "checksum",
                Json.String (Printf.sprintf "%x" (Result_cache.value_checksum v)) );
            ]
        | _ -> [])
      @ match outcome_detail c.c_outcome with
        | Some d -> [ ("detail", Json.String d) ]
        | None -> [])
  in
  let cache = r.cache in
  Json.Obj
    ([
      ("version", Json.Int 1);
      ("vtime", Json.Float r.vtime);
      ("throughput", Json.Float r.throughput);
      ( "latency",
        Json.Obj
          [
            ("p50", Json.Float r.p50_latency);
            ("p95", Json.Float r.p95_latency);
            ("p99", Json.Float r.p99_latency);
            ("p999", Json.Float r.p999_latency);
            ("served_degraded", Json.Int r.served_degraded);
          ] );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters));
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Int cache.Result_cache.entries);
            ("bytes", Json.Int cache.Result_cache.bytes);
            ("hits", Json.Int cache.Result_cache.hits);
            ("misses", Json.Int cache.Result_cache.misses);
            ("insertions", Json.Int cache.Result_cache.insertions);
            ("evictions", Json.Int cache.Result_cache.evictions);
            ("invalidations", Json.Int cache.Result_cache.invalidations);
            ("collisions", Json.Int cache.Result_cache.collisions);
            ("corruptions", Json.Int cache.Result_cache.corruptions);
            ("skipped", Json.Int cache.Result_cache.skipped);
            ("refreshes", Json.Int cache.Result_cache.refreshes);
          ] );
      ("queries", Json.List (List.map query r.completions));
      ( "explanations",
        Json.List
          (List.map
             (fun x ->
               Json.Obj
                 ([
                    ("at", Json.Float x.x_at);
                    ("tenant", Json.String x.x_tenant);
                    ("edb", Json.String x.x_edb);
                    ("fact", Json.String x.x_fact);
                    ("status", Json.String x.x_status);
                    ("rules", Json.List (List.map (fun i -> Json.Int i) x.x_rules));
                    ("depth", Json.Int x.x_depth);
                    ("from_view", Json.Bool x.x_from_view);
                    ("chain", Json.String x.x_text);
                  ]
                 @
                 match x.x_latency with
                 | None -> []
                 | Some ln ->
                     [
                       ( "latest_query",
                         Json.Obj
                           [
                             ("id", Json.String ln.ln_query);
                             ("outcome", Json.String ln.ln_outcome);
                             ("latency", Json.Float ln.ln_latency);
                             ( "slowest_spans",
                               Json.List
                                 (List.map
                                    (fun (n, d) ->
                                      Json.Obj
                                        [ ("span", Json.String n); ("seconds", Json.Float d) ])
                                    ln.ln_spans) );
                           ] );
                     ]))
             r.explanations) );
    ]
    @
    match r.shard_stats with
    | [] -> []
    | stats ->
        [
          ( "shards",
            Json.List
              (List.map
                 (fun s ->
                   Json.Obj
                     [
                       ("shard", Json.Int s.sh_shard);
                       ("queries", Json.Int s.sh_queries);
                       ("busy_s", Json.Float s.sh_busy_s);
                       ("sim_s", Json.Float s.sh_sim_s);
                       ("rows", Json.Int s.sh_rows);
                       ( "utilization",
                         Json.Float
                           (if s.sh_sim_s > 0.0 then s.sh_busy_s /. s.sh_sim_s else 0.0) );
                     ])
                 stats) );
        ])

let report_summary r =
  let rows =
    List.map
      (fun c ->
        [
          c.c_id;
          c.c_tenant;
          c.c_edb;
          outcome_label c.c_outcome;
          (if c.c_cache_hit then "hit" else "-");
          string_of_int c.c_retries;
          Option.value ~default:"-" c.c_degraded;
          (match c.c_outcome with
          | Rejected _ -> "-"
          | _ -> Printf.sprintf "%.4f" (c.c_finished -. c.c_at));
        ])
      r.completions
  in
  let table =
    Rs_util.Table_printer.render
      ~header:
        [ "query"; "tenant"; "edb"; "outcome"; "cache"; "retries"; "degraded"; "latency (s)" ]
      rows
  in
  let counters =
    String.concat "  " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.counters)
  in
  let shards =
    match r.shard_stats with
    | [] -> ""
    | stats ->
        "shards: "
        ^ String.concat "  "
            (List.map
               (fun s ->
                 Printf.sprintf "s%d q=%d rows=%d util=%.2f" s.sh_shard s.sh_queries
                   s.sh_rows
                   (if s.sh_sim_s > 0.0 then s.sh_busy_s /. s.sh_sim_s else 0.0))
               stats)
        ^ "\n"
  in
  let explanations =
    match r.explanations with
    | [] -> ""
    | xs ->
        String.concat ""
          (List.map
             (fun x ->
               let note =
                 match x.x_latency with
                 | None -> ""
                 | Some ln ->
                     Printf.sprintf "  latest query %s: %s in %.4fs%s\n" ln.ln_query
                       ln.ln_outcome ln.ln_latency
                       (match ln.ln_spans with
                       | [] -> ""
                       | (n, d) :: _ -> Printf.sprintf " (slowest span %s %.4fs)" n d)
               in
               Printf.sprintf "explain %s for %s@%s: %s%s\n%s%s" x.x_fact x.x_tenant
                 x.x_edb x.x_status
                 (if x.x_from_view then " [warm view]" else "")
                 (if x.x_status = "explained" then x.x_text else "  " ^ x.x_text ^ "\n")
                 note)
             xs)
  in
  Printf.sprintf
    "%s%s\n%s%slatency p50=%.4fs p95=%.4fs p99=%.4fs  throughput=%.2f q/s  vtime=%.4fs\n"
    table counters shards explanations r.p50_latency r.p95_latency r.p99_latency
    r.throughput r.vtime
