module Relation = Rs_relation.Relation
module Delta = Rs_relation.Delta

exception Script_error of { path : string; line : int; msg : string }

type t = {
  settings : (string * string) list;
  defs : (string * (string * Relation.t) list) list;
  events : Service.event list;
}

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* Helpers signal malformed input with [Failure msg]; the per-line
   dispatcher in [parse] turns that into a positioned [Script_error]. *)

(* "rel:arity" *)
let parse_spec spec =
  match String.index_opt spec ':' with
  | Some i -> (
      let rel = String.sub spec 0 i in
      let a = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt a with
      | Some arity when arity >= 1 && rel <> "" -> (rel, arity)
      | _ -> failwith (Printf.sprintf "bad relation spec %S (expected name:arity)" spec))
  | None -> failwith (Printf.sprintf "bad relation spec %S (expected name:arity)" spec)

(* "0 1; 1 2; 2 3" with a fixed arity *)
let parse_rows ~arity s =
  String.split_on_char ';' s
  |> List.filter_map (fun row ->
         match tokens row with
         | [] -> None
         | fields ->
             let vals =
               List.map
                 (fun f ->
                   match int_of_string_opt f with
                   | Some v -> v
                   | None -> failwith (Printf.sprintf "not an integer: %S" f))
                 fields
             in
             if List.length vals <> arity then
               failwith
                 (Printf.sprintf "expected %d fields, got %d in row %S" arity
                    (List.length vals) row)
             else Some (Array.of_list vals))

(* split a line at its first [c], trimming both halves *)
let split_at line c what =
  match String.index_opt line c with
  | Some i ->
      ( String.trim (String.sub line 0 i),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  | None -> failwith (Printf.sprintf "missing %c in %s line" c what)

let kv_args toks =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> failwith (Printf.sprintf "expected key=value, got %S" tok))
    toks

let parse ?(path = "<script>") src =
  let dir = Filename.dirname path in
  let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
  let programs = Hashtbl.create 8 in
  let program_of p =
    let p = resolve p in
    match Hashtbl.find_opt programs p with
    | Some ast -> ast
    | None ->
        let ast = Recstep.Parser.parse_file p in
        Hashtbl.add programs p ast;
        ast
  in
  let settings = ref [] and defs = ref [] and events = ref [] in
  let arity_of name rel =
    match List.assoc_opt name !defs with
    | Some rels -> (
        match List.assoc_opt rel rels with
        | Some r -> Relation.arity r
        | None -> failwith (Printf.sprintf "unknown relation %s.%s" name rel))
    | None -> failwith (Printf.sprintf "unknown EDB %S" name)
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let fail msg = raise (Script_error { path; line = lineno; msg }) in
      let err fmt = Printf.ksprintf fail fmt in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then
        try
        match tokens line with
        | "set" :: key :: value :: [] -> settings := (key, value) :: !settings
        | "set" :: _ -> err "set takes exactly: set KEY VALUE"
        | "edb" :: name :: spec :: rest -> (
            let rel, arity = parse_spec spec in
            let r =
              match rest with
              | "@" :: path_tok :: [] ->
                  Recstep.Frontend.load_tsv ~name:rel ~arity (resolve path_tok)
              | _ when List.exists (fun t -> String.contains t '=') (spec :: rest) ->
                  let _, rhs = split_at line '=' "edb" in
                  let rows = parse_rows ~arity rhs in
                  let r = Relation.of_rows ~name:rel arity rows in
                  Relation.account r;
                  r
              | _ -> err "edb needs '= rows' or '@ file'"
            in
            let rels = (rel, r) :: Option.value ~default:[] (List.assoc_opt name !defs) in
            defs := (name, rels) :: List.remove_assoc name !defs)
        | (("delta" | "retract") as verb) :: rest -> (
            let mk = if verb = "delta" then Delta.of_inserts else Delta.of_retracts in
            let at, rest =
              match rest with
              | tok :: more when String.length tok > 3 && String.sub tok 0 3 = "at=" -> (
                  match float_of_string_opt (String.sub tok 3 (String.length tok - 3)) with
                  | Some t -> (t, more)
                  | None -> err "bad at= value in %S" tok)
              | _ -> (0.0, rest)
            in
            match rest with
            | name :: rel :: "@" :: path_tok :: [] ->
                let arity = arity_of name rel in
                let r = Recstep.Frontend.load_tsv ~name:rel ~arity (resolve path_tok) in
                events :=
                  Service.delta_event ~at ~edb:name (mk rel (Relation.to_rows r)) :: !events
            | name :: rel :: "=" :: _ ->
                let arity = arity_of name rel in
                (* rows contain no '=', so the last '=' is the separator
                   (an at= pair earlier in the line has its own) *)
                let j = String.rindex line '=' in
                let rhs = String.trim (String.sub line (j + 1) (String.length line - j - 1)) in
                let rows = parse_rows ~arity rhs in
                events := Service.delta_event ~at ~edb:name (mk rel rows) :: !events
            | _ -> err "%s takes: %s [at=T] EDB REL = rows | @ file" verb verb)
        | "submit" :: rest ->
            let args = kv_args rest in
            let get k = List.assoc_opt k args in
            let require k =
              match get k with Some v -> v | None -> err "submit is missing %s=" k
            in
            let tenant = require "tenant" and edb = require "edb" in
            let program = program_of (require "program") in
            let flt k =
              Option.map
                (fun v ->
                  match float_of_string_opt v with
                  | Some f -> f
                  | None -> err "bad %s= value %S" k v)
                (get k)
            in
            let mem =
              match get "mem" with
              | None -> Admission.Small
              | Some v -> (
                  match Admission.memclass_of_string v with
                  | Some m -> m
                  | None -> err "bad mem= value %S (small|medium|large)" v)
            in
            let repeat =
              match get "repeat" with
              | None -> 1
              | Some v -> (
                  match int_of_string_opt v with
                  | Some n when n >= 1 -> n
                  | _ -> err "bad repeat= value %S" v)
            in
            let at = Option.value ~default:0.0 (flt "at") in
            let every = Option.value ~default:0.0 (flt "every") in
            for k = 0 to repeat - 1 do
              let id =
                match get "id" with
                | None -> ""
                | Some id -> if repeat = 1 then id else Printf.sprintf "%s#%d" id (k + 1)
              in
              events :=
                Service.Submit
                  (Service.submission ~id ~at:(at +. (float_of_int k *. every))
                     ?deadline_vs:(flt "deadline") ~mem ?engine:(get "engine") ~tenant ~edb
                     program)
                :: !events
            done
        | cmd :: _ -> err "unknown directive %S" cmd
        | [] -> ()
        with Failure msg -> fail msg)
    lines;
  { settings = List.rev !settings; defs = List.rev !defs; events = List.rev !events }

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse ~path src

(* Render a typed delta back to script lines — one line per relation and
   sign, preserving op order within each line. Parsing the lines back and
   merging the events' deltas (in order) reproduces the input's net effect;
   the round-trip test in test_service.ml holds the parser and this
   renderer to that contract. *)
let render_delta ~at ~edb (d : Delta.t) =
  let row_str row =
    String.concat " " (List.map string_of_int (Array.to_list row))
  in
  List.concat_map
    (fun rel ->
      let ops = Delta.ops d rel in
      let part sign verb =
        match List.filter (fun (o : Delta.op) -> o.Delta.sign = sign) ops with
        | [] -> []
        | os ->
            [
              Printf.sprintf "%s at=%g %s %s = %s" verb at edb rel
                (String.concat "; " (List.map (fun (o : Delta.op) -> row_str o.Delta.row) os));
            ]
      in
      part Delta.Insert "delta" @ part Delta.Retract "retract")
    (Delta.rels d)
