(** Canonical cache keys for Datalog programs.

    Two submissions must hit the same cache line whenever they denote the
    same program, even if one was written with different variable names or
    its rules in a different order. [canonical] therefore renames every
    rule's variables to [v0, v1, ...] in first-occurrence order (head first,
    then body), prints each rule, and sorts the rule strings; the declared
    inputs and outputs are folded in sorted as well, since they change what
    a run reports. [hash] is an FNV-1a 64-bit digest of that canonical text
    — the "canonical program hash" half of the service's cache key (the
    other half is the EDB version, see {!Result_cache.key}). *)

val canonical : Recstep.Ast.program -> string
(** Canonical text: sorted renamed rules, one per line, followed by the
    sorted input and output declarations. *)

val hash : Recstep.Ast.program -> string
(** 16-hex-digit FNV-1a digest of {!canonical}. A digest is {e not} an
    identity: the cache stores the canonical text alongside each entry and
    verifies it on lookup (see {!Result_cache.find}). *)

val hash_of_canonical : string -> string
(** The digest of an already-canonicalized text ([hash p] is
    [hash_of_canonical (canonical p)]). Exposed so tests can force
    collisions and callers can hash once and reuse both forms. *)
