(** Named, versioned EDB snapshots shared by the queries of a service.

    A serving process holds its input databases resident: many queries run
    against the same facts, so the store keeps one relation set per database
    name and a monotone {e version} that bumps on every redefinition or
    delta. The (name, version) pair is what the result cache keys on — a
    delta makes every cached result computed against the old version
    unreachable without touching the cache itself (the service additionally
    drops those entries eagerly, see {!Result_cache.invalidate_edb}). *)

module Relation = Rs_relation.Relation

type t

exception Unknown_edb of string

val create : unit -> t

val define : t -> string -> (string * Relation.t) list -> unit
(** [define t name rels] installs (or replaces) database [name]. The
    version starts at 1 and bumps on redefinition. *)

val delta : t -> string -> rel:string -> int array list -> unit
(** [delta t name ~rel rows] appends [rows] to relation [rel] of database
    [name] (FlowLog-style incremental update at the granularity a serving
    cache needs: the version bump is what matters) and re-accounts the
    relation's bytes. Raises {!Unknown_edb} if [name] or [rel] is not
    defined. *)

val lookup : t -> string -> (string * Relation.t) list
(** Raises {!Unknown_edb}. *)

val version : t -> string -> int
(** Current version of a database; raises {!Unknown_edb}. *)

val mem : t -> string -> bool

val names : t -> string list
(** Defined database names, sorted. *)
