(** Named, versioned EDB snapshots shared by the queries of a service.

    A serving process holds its input databases resident: many queries run
    against the same facts, so the store keeps one relation set per database
    name and a monotone {e version} that bumps on every redefinition or
    applied delta. The (name, version) pair is what the result cache keys
    on; on a delta the service either incrementally refreshes cached entries
    to the new version or drops them (see {!Result_cache}).

    {b API change}: the old append-only [delta : int array list -> unit]
    surface is gone. Updates arrive as a typed {!Rs_relation.Delta.t} of
    inserts {e and retracts} through {!apply}, which is atomic and reports
    the net change it committed. *)

module Relation = Rs_relation.Relation

type t

exception Unknown_edb of string

val create : unit -> t

val attach_index_manager : t -> Rs_exec.Index_manager.t -> unit
(** Attach a store-lifetime persistent index manager. From then on every
    committed {!apply} keeps the manager's entries for the touched
    relations live: an insert-only replacement is {e rebased} (the staged
    copy preserves the old row order as a prefix, so indexes re-point and
    later extend over the inserted suffix), anything with retractions is
    invalidated. {!define} always invalidates the redefined names. *)

val define : t -> string -> (string * Relation.t) list -> unit
(** [define t name rels] installs (or replaces) database [name]. The
    version starts at 1 and bumps on redefinition. *)

val apply : t -> string -> Rs_relation.Delta.t -> int * Rs_relation.Delta.t
(** [apply t name d] applies a typed delta to database [name] and returns
    [(version, net)] — the database's version after the apply and the net
    delta actually committed.

    Set-level semantics: inserting a row already present or retracting one
    that is absent is a counted no-op, and flip-flops within [d] cancel
    ({!Rs_relation.Delta.normalize}); a retraction removes {e every} stored
    duplicate of its row. When the whole delta nets to nothing the version
    is unchanged and [net] is empty.

    Atomicity: replacement relations are fully staged before anything
    becomes visible, then committed with a single pointer swap and one
    version bump. A chaos-injected abort ({!Rs_chaos.Fault.Delta_abort}) or
    an OOM while accounting the staged copies leaves the store — version,
    rows, and Memtrack accounting — exactly at its pre-delta state.

    Raises {!Unknown_edb} if [name] or a relation named in [d] is not
    defined, [Invalid_argument] on arity mismatch. *)

val lookup : t -> string -> (string * Relation.t) list
(** Raises {!Unknown_edb}. *)

val version : t -> string -> int
(** Current version of a database; raises {!Unknown_edb}. *)

val mem : t -> string -> bool

val names : t -> string list
(** Defined database names, sorted. *)
