(** The query-serving loop: many tenants, one engine substrate.

    Everything below {!run} the repo already had — engines behind
    [Rs_engines.Engine_intf.run_guarded], the shared [Rs_parallel.Pool], the
    [Rs_storage.Memtrack] budget, [rs_obs] tracing. This module multiplexes
    a stream of submitted queries over them in {e simulated time}: the
    service owns a virtual clock; each dispatched query runs to completion
    on the pool and advances the clock by its simulated makespan, while
    arrivals, admission, tenant-fair scheduling and cache hits interleave
    between dispatches. Deterministic where it matters: same events, same
    seed, same config ⇒ the same admissions, dispatch order, cache hits and
    outcomes (durations are simulated from measured execution, so the float
    timings vary at microsecond scale run to run).

    Per query the service applies, in order: admission ({!Admission}: queue
    bound, memory-class headroom, EDB existence), the result cache
    ({!Result_cache}, keyed by canonical program hash × EDB version),
    deadline enforcement (the per-query budget shrinks by the time spent
    waiting in the queue; an expired deadline is a {!Timeout} without
    touching the engine), and the typed retry policy ({!Retry}): retryable
    failures — OOM and transient injected faults — are reattempted with
    exponential backoff in simulated time, OOM walking down the degradation
    ladder (half workers → no persistent indexes → no PBME/FAST-DEDUP)
    until the policy gives up and the last typed failure is reported.
    Results produced after the deadline or under a degraded rung are served
    but never cached. Every completion is a typed {!outcome} —
    the engine vocabulary extended with [Fault] and [Rejected] — and the run yields a
    {!report} with service counters, latency percentiles and a full
    [rs_obs] trace whose spans nest each engine run under its query. *)

module Trace = Rs_obs.Trace
module Json = Rs_obs.Json

type submission = {
  sub_id : string;
  tenant : string;
  program : Recstep.Ast.program;
  edb : string;  (** database name in the {!Edb_store} *)
  at : float;  (** arrival, simulated seconds *)
  deadline_vs : float option;  (** budget from arrival to completion *)
  mem : Admission.memclass;
  engine : string option;  (** engine name; [None] = RecStep *)
}

val submission :
  ?id:string ->
  ?at:float ->
  ?deadline_vs:float ->
  ?mem:Admission.memclass ->
  ?engine:string ->
  tenant:string ->
  edb:string ->
  Recstep.Ast.program ->
  submission
(** Defaults: auto id ("q1", "q2", ... in event order), arrival 0, no
    deadline, [Small], RecStep. *)

type explain_request = {
  ex_at : float;
  ex_tenant : string;
  ex_edb : string;
  ex_program : Recstep.Ast.program;
  ex_pred : string;
  ex_row : int list;
}

type event =
  | Submit of submission
  | Delta of { at : float; edb : string; delta : Rs_relation.Delta.t }
      (** A typed EDB update — inserts {e and retracts} — registered at a
          point in simulated time. Applied atomically through
          {!Edb_store.apply}; when it nets to a real change the service
          either incrementally refreshes that database's cached results
          through its maintained views (small deltas, supported programs)
          or drops them and lets queries recompute. *)
  | Explain of explain_request
      (** "Why is this fact here?" — answered from the tenant's maintained
          view when one exists (its tag store is kept current across
          deltas), otherwise by one provenance-enabled evaluation against
          the current store version. The resulting {!explanation} carries
          the full rule + premise chain to EDB leaves and, when the tenant
          has a completed query on that database, the latency + slowest
          trace spans of its latest one — the self-debugging join of
          derivation and timeline. *)

val event_time : event -> float

val delta_event : at:float -> edb:string -> Rs_relation.Delta.t -> event
(** Convenience constructor for {!Delta}. *)

val explain_event :
  ?at:float ->
  tenant:string ->
  edb:string ->
  pred:string ->
  row:int list ->
  Recstep.Ast.program ->
  event
(** Convenience constructor for {!Explain}. *)

type outcome =
  | Done of Result_cache.value  (** output name → sorted distinct rows *)
  | Oom  (** still over budget when the retry policy gave up *)
  | Timeout  (** per-query deadline missed (queue wait and backoff count) *)
  | Unsupported of string
  | Fault of { cls : Rs_chaos.Fault.cls; point : string }
      (** an injected fault survived the retry policy *)
  | Rejected of Admission.reason

val outcome_label : outcome -> string
(** "done" / "oom" / "timeout" / "unsupported" / "fault" / "rejected". *)

type completion = {
  c_id : string;
  c_tenant : string;
  c_edb : string;
  c_at : float;
  c_started : float option;  (** dispatch time; [None] if rejected *)
  c_finished : float;
  c_outcome : outcome;
  c_cache_hit : bool;
  c_retries : int;
  c_degraded : string option;
      (** {!Retry.rung_name} of the final attempt's rung when it ran below
          [Full]; [None] for an undegraded query *)
}

type config = {
  workers : int;
  queue_capacity : int;
  mem_budget : int option;  (** admission headroom + per-run OOM budget *)
  cache_bytes : int;  (** result-cache budget; 0 disables the cache *)
  cache_hit_cost_s : float;  (** simulated cost of serving from cache *)
  seed : int;  (** scheduler ring seed *)
  retry : Retry.policy;
  ivm : bool;  (** maintain views and refresh the cache across deltas *)
  ivm_max_delta : int;
      (** net delta size (ops) above which warm refresh falls back to
          invalidation — past this point recomputation tends to beat
          maintenance, and the view bootstrap cost stops amortizing *)
  shards : int;
      (** > 1 routes engine-less submissions through the sharded executor
          ({!Rs_shard.Shard_exec}) with this many simulated nodes; the
          report then carries per-shard utilization *)
  kernels : bool;
      (** compiled rule kernels for engine-less unsharded submissions; the
          retry ladder's [No_fast_path] rung disables them together with the
          other fast-path structures *)
  autoscale : Autoscale.policy option;
      (** when set, an {!Autoscale} loop owns the base worker count and the
          cache byte budget: [workers]/[cache_bytes] become the initial
          sizes, and each completion feeds the scaler, which resizes within
          the policy's range from queue depth and windowed tail latency.
          The retry ladder composes — [Half_workers] halves the scaled
          count. [None] (the default) keeps the configured sizes fixed. *)
}

val config :
  ?workers:int ->
  ?queue_capacity:int ->
  ?mem_budget:int ->
  ?cache_bytes:int ->
  ?cache_hit_cost_s:float ->
  ?seed:int ->
  ?retry:Retry.policy ->
  ?ivm:bool ->
  ?ivm_max_delta:int ->
  ?shards:int ->
  ?kernels:bool ->
  ?autoscale:Autoscale.policy ->
  unit ->
  config
(** Defaults: 8 workers, queue capacity 64, no memory budget, 64 MiB cache,
    100 µs per cache hit, seed 1, {!Retry.default}, maintenance on with a
    512-op refresh threshold, 1 shard (unsharded), compiled kernels on. *)

type shard_stat = {
  sh_shard : int;
  sh_queries : int;  (** backend queries this shard node executed *)
  sh_busy_s : float;  (** summed worker-busy seconds across runs *)
  sh_sim_s : float;  (** summed simulated wall seconds across runs *)
  sh_rows : int;  (** resident rows after the last sharded run *)
}

type latency_note = {
  ln_query : string;  (** the tenant's latest dispatched query on the EDB *)
  ln_outcome : string;
  ln_latency : float;  (** end-to-end, arrival to completion *)
  ln_spans : (string * float) list;
      (** up to three slowest trace spans nested under its service span,
          as ["kind:name"] with their simulated durations *)
}

type explanation = {
  x_at : float;  (** service clock when the request was processed *)
  x_tenant : string;
  x_edb : string;
  x_fact : string;  (** rendered goal, e.g. ["tc(1, 3)"] *)
  x_status : string;
      (** ["explained"] / ["absent"] / ["no_proof"] / ["budget"] /
          ["error"] *)
  x_rules : int list;  (** distinct 1-based rule indexes on the chain *)
  x_depth : int;
  x_from_view : bool;  (** answered from a maintained view's tag store *)
  x_text : string;  (** the rendered chain, or the failure report *)
  x_latency : latency_note option;
}

type report = {
  completions : completion list;  (** in completion order *)
  explanations : explanation list;  (** in request order *)
  counters : (string * int) list;  (** sorted by name, see below *)
  cache : Result_cache.stats;
  p50_latency : float;
      (** over {e all} served (Done) queries, degraded ones included —
          nearest-rank over the sorted latencies; 0 if none *)
  p95_latency : float;
  p99_latency : float;
  p999_latency : float;
  served_degraded : int;
      (** served (Done) completions whose final attempt ran below
          [Retry.Full] — part of the latency population above, split out so
          SLO accounting can flag them *)
  throughput : float;  (** served queries per simulated second *)
  vtime : float;  (** service clock when the last event settled *)
  shard_stats : shard_stat list;  (** per-shard utilization; [] when unsharded *)
  trace : Trace.t;  (** service + nested engine spans, service counters *)
}
(** Counters: [submitted], [admitted], [rejected], [done], [oom],
    [timeout], [unsupported], [fault], [cache_hit], [cache_miss],
    [retried], [degraded], [deadline_miss], plus the delta-stream set:
    [delta_applied] (net store changes committed), [delta_noop] (deltas
    that normalized away), [delta_fault] (applies aborted by an injected
    fault or a memory probe, store rolled back), [refreshed] (cache entries
    incrementally re-keyed),
    [view_built], [view_dropped] (also counts views discarded because their
    maintenance raised — the warm path degrades to invalidation instead of
    surfacing the exception), [explain] (explain requests processed), plus
    the autoscaler set:
    [autoscale.evals] (windows evaluated), [autoscale.up]/[autoscale.down]
    (worker resizes applied) and [autoscale.cache_up]/[autoscale.cache_down]
    (cache-budget moves) — all zero when [config.autoscale] is [None]. Two
    identities hold by construction and
    are checked by the CI smoke: [submitted = admitted + rejected] and
    [admitted = done + oom + timeout + unsupported + fault]. *)

val run : ?config:config -> edb:Edb_store.t -> event list -> report
(** Replays [events] (sorted by {!event_time}, ties in list order) to
    quiescence. Mutates the store (deltas) and the global [Memtrack] budget
    during the run; the previous budget is restored on exit. *)

val counter : report -> string -> int
(** 0 when absent. *)

val report_json : report -> Json.t
(** The service report: {v
    {"version": 1, "vtime": _, "throughput": _,
     "latency": {"p50": _, "p95": _, "p99": _, "p999": _,
                 "served_degraded": _},
     "counters": {...}, "cache": {...},
     "queries": [{"id", "tenant", "edb", "at", "started", "finished",
                  "outcome", "cache_hit", "retries", "degraded",
                  "latency", ...}]} v} *)

val report_summary : report -> string
(** ASCII table of per-query dispositions plus the counter/latency lines. *)
