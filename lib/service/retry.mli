(** Typed retry policy with a degradation ladder.

    The seed service had exactly one recovery move: on OOM, retry once at
    half the workers. This module generalizes it into a policy the chaos
    harness can exercise: per-failure-class retryability, exponential
    backoff in {e simulated} seconds, and a cumulative degradation ladder
    the service walks down before rejecting a query —

    {ol
    {- {!Full}: the configured workers, all optimizations on;}
    {- {!Half_workers}: half the workers (the seed's single move);}
    {- {!No_persistent_indexes}: also drop the cross-iteration join
       indexes;}
    {- {!No_fast_path}: also run with PBME and FAST-DEDUP off — the
       smallest-footprint configuration the engine has.}}

    OOM failures advance down the ladder (the same configuration would hit
    the same wall); transient injected faults (aborted flush, dead worker
    chunk, failed table build) retry the current rung. Timeouts are never
    retried: the deadline that ended attempt [n] has less room for attempt
    [n+1]. When attempts or rungs run out, {!next} says {!Give_up} and the
    caller reports the typed failure it last saw. *)

type rung = Full | Half_workers | No_persistent_indexes | No_fast_path

val all_rungs : rung list
(** Ladder order, top ({!Full}) first. *)

val rung_name : rung -> string

val next_rung : rung -> rung option
(** One step down the ladder; [None] below {!No_fast_path}. *)

type knobs = { k_workers : int; k_persistent_indexes : bool; k_fast_path : bool }
(** Concrete engine configuration at a rung. [k_fast_path] gates both PBME
    and FAST-DEDUP. *)

val knobs : workers:int -> rung -> knobs
(** Cumulative: every rung keeps the degradations of the rungs above it. *)

type failure = Oom_failure | Fault_failure of Rs_chaos.Fault.cls

val failure_name : failure -> string

val retryable : failure -> bool

type policy = {
  max_attempts : int;  (** total attempts including the first *)
  backoff_base_s : float;  (** simulated seconds before the first retry *)
  backoff_cap_s : float;  (** exponential growth is capped here *)
}

val policy :
  ?max_attempts:int -> ?backoff_base_s:float -> ?backoff_cap_s:float -> unit -> policy
(** Defaults: 4 attempts (one per rung), base 1 ms, cap 250 ms. *)

val default : policy

val backoff_s : policy -> retry:int -> float
(** Wait before retry number [retry] (1-based):
    [min cap (base * 2^(retry-1))]. Simulated time — nothing sleeps. *)

type decision = Retry of { rung : rung; backoff_s : float } | Give_up

val next : policy -> attempt:int -> rung:rung -> failure -> decision
(** [next p ~attempt ~rung f]: what to do after 1-based attempt [attempt]
    failed with [f] while running at [rung]. *)
