type memclass = Small | Medium | Large

let mib = 1024 * 1024

let memclass_bytes = function
  | Small -> mib
  | Medium -> 16 * mib
  | Large -> 128 * mib

let memclass_of_string s =
  match String.lowercase_ascii s with
  | "small" -> Some Small
  | "medium" -> Some Medium
  | "large" -> Some Large
  | _ -> None

let memclass_to_string = function
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

type reason =
  | Queue_full of { capacity : int }
  | Over_memory of { need : int; available : int }
  | Unknown_edb of string

let reason_to_string = function
  | Queue_full { capacity } -> Printf.sprintf "queue full (capacity %d)" capacity
  | Over_memory { need; available } ->
      Printf.sprintf "over memory budget (need %d bytes, %d available)" need available
  | Unknown_edb name -> Printf.sprintf "unknown EDB %S" name

type decision = Admit | Reject of reason

let decide ~queue_len ~queue_capacity ~mem ~budget ~live =
  if queue_len >= queue_capacity then Reject (Queue_full { capacity = queue_capacity })
  else
    match budget with
    | None -> Admit
    | Some b ->
        let need = memclass_bytes mem in
        let available = max 0 (b - live) in
        if need > available then Reject (Over_memory { need; available }) else Admit
