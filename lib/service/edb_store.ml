module Relation = Rs_relation.Relation
module Delta = Rs_relation.Delta
module Inject = Rs_chaos.Inject

exception Unknown_edb of string

type db = { mutable version : int; mutable rels : (string * Relation.t) list }

type t = {
  dbs : (string, db) Hashtbl.t;
  mutable index_manager : Rs_exec.Index_manager.t option;
}

let create () : t = { dbs = Hashtbl.create 8; index_manager = None }

let attach_index_manager t im = t.index_manager <- Some im

let define t name rels =
  (match t.index_manager with
  | Some im -> List.iter (fun (rl, _) -> Rs_exec.Index_manager.invalidate im ~name:rl) rels
  | None -> ());
  match Hashtbl.find_opt t.dbs name with
  | Some db ->
      db.version <- db.version + 1;
      db.rels <- rels
  | None -> Hashtbl.add t.dbs name { version = 1; rels }

let find t name =
  match Hashtbl.find_opt t.dbs name with
  | Some db -> db
  | None -> raise (Unknown_edb name)

(* Atomic typed delta: stage complete replacement relations for every
   changed input, then commit them with one pointer swap and one version
   bump. Nothing observable changes until the swap, so a chaos abort (or a
   Memtrack OOM while accounting the staged copies) leaves the database at
   its pre-delta version with no accounting drift — the invariant the
   "delta" fault class of the chaos harness checks. *)
let apply t name (d : Delta.t) =
  let db = find t name in
  let touched = Delta.rels d in
  List.iter
    (fun rl ->
      if not (List.mem_assoc rl db.rels) then raise (Unknown_edb (name ^ "." ^ rl)))
    touched;
  List.iter
    (fun rl ->
      let arity = Relation.arity (List.assoc rl db.rels) in
      List.iter
        (fun (o : Delta.op) ->
          if Array.length o.Delta.row <> arity then
            invalid_arg
              (Printf.sprintf "Edb_store.apply: %s.%s expects arity %d" name rl arity))
        (Delta.ops d rl))
    touched;
  (* set-level normalization against current membership: inserting a
     present row or retracting an absent one is a no-op and does not bump
     the version *)
  let members =
    List.map
      (fun rl ->
        let r = List.assoc rl db.rels in
        let h = Hashtbl.create (max 16 (Relation.nrows r)) in
        List.iter (fun row -> Hashtbl.replace h (Array.to_list row) ()) (Relation.to_rows r);
        (rl, h))
      touched
  in
  let changes =
    Delta.normalize
      ~mem:(fun rl row -> Hashtbl.mem (List.assoc rl members) (Array.to_list row))
      d
  in
  if changes = [] then (db.version, Delta.empty)
  else begin
    (* stage: unaccounted replacement relations; a retraction removes every
       stored instance of the row (relations are bags, deltas are sets) *)
    let staged =
      List.map
        (fun (rl, (c : Delta.change)) ->
          Inject.delta_should_abort ~point:(Printf.sprintf "edb_store.apply:%s.%s" name rl);
          let old_r = List.assoc rl db.rels in
          let dels = Hashtbl.create 16 in
          List.iter (fun row -> Hashtbl.replace dels (Array.to_list row) ()) c.Delta.retract;
          let fresh = Relation.create ~name:(Relation.name old_r) (Relation.arity old_r) in
          List.iter
            (fun row ->
              if not (Hashtbl.mem dels (Array.to_list row)) then Relation.push_row fresh row)
            (Relation.to_rows old_r);
          List.iter (fun row -> Relation.push_row fresh row) c.Delta.insert;
          (rl, fresh))
        changes
    in
    (* account the staged copies; on any failure give back what was already
       accounted so an aborted apply leaves Memtrack exactly where it was *)
    let accounted = ref [] in
    (try
       List.iter
         (fun (_, r) ->
           Relation.account r;
           accounted := r :: !accounted)
         staged
     with e ->
       List.iter Relation.release !accounted;
       raise e);
    (* commit: swap pointers, bump the version once, drop the old copies *)
    let old_rels = db.rels in
    db.rels <-
      List.map
        (fun (rl, r) ->
          match List.assoc_opt rl staged with Some fresh -> (rl, fresh) | None -> (rl, r))
        db.rels;
    db.version <- db.version + 1;
    (* keep any attached persistent join indexes in step with the swap: an
       insert-only replacement preserves the old row order as a prefix, so
       the index can be re-pointed wholesale (rebase) and extended lazily;
       a retraction breaks the prefix and forces a rebuild on next use *)
    (match t.index_manager with
    | Some im ->
        List.iter
          (fun (rl, fresh) ->
            match List.assoc_opt rl changes with
            | Some c when c.Delta.retract = [] ->
                Rs_exec.Index_manager.rebase_to im ~name:rl fresh
            | _ -> Rs_exec.Index_manager.invalidate im ~name:rl)
          staged
    | None -> ());
    List.iter
      (fun (rl, _) ->
        match List.assoc_opt rl old_rels with
        | Some old_r -> Relation.release old_r
        | None -> ())
      staged;
    (db.version, Delta.of_changes changes)
  end

let lookup t name = (find t name).rels

let version t name = (find t name).version

let mem t name = Hashtbl.mem t.dbs name

let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.dbs [])
