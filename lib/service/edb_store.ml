module Relation = Rs_relation.Relation

exception Unknown_edb of string

type db = { mutable version : int; mutable rels : (string * Relation.t) list }

type t = (string, db) Hashtbl.t

let create () : t = Hashtbl.create 8

let define t name rels =
  match Hashtbl.find_opt t name with
  | Some db ->
      db.version <- db.version + 1;
      db.rels <- rels
  | None -> Hashtbl.add t name { version = 1; rels }

let find t name =
  match Hashtbl.find_opt t name with
  | Some db -> db
  | None -> raise (Unknown_edb name)

let delta t name ~rel rows =
  let db = find t name in
  let r =
    match List.assoc_opt rel db.rels with
    | Some r -> r
    | None -> raise (Unknown_edb (name ^ "." ^ rel))
  in
  List.iter (Relation.push_row r) rows;
  Relation.account r;
  db.version <- db.version + 1

let lookup t name = (find t name).rels

let version t name = (find t name).version

let mem t name = Hashtbl.mem t name

let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
