(* The ring is a dynamic array of arrival-ordered slots, kept across pops
   instead of being rebuilt from a list on every pop (the seed behavior —
   O(tenants) per dequeue, quadratic under a tenant-scale load, and drained
   tenants were never retired, so a long-running serve leaked one queue and
   one ring slot per tenant ever seen).

   Invariants:
   - every live (non-retired) slot's tenant has a non-empty queue in
     [queues]; a queue that drains on pop is retired immediately (queue
     removed, slot marked dead);
   - a tenant that re-submits after retirement gets a fresh slot at the
     ring's tail — round-robin order stays arrival order;
   - when more than half the slots of a large ring are dead the ring is
     compacted in place (live slots keep their relative order, the cursor
     is remapped to the same next-to-serve slot), so ring memory tracks the
     set of tenants with queued work, not the set ever seen.

   [probes] counts slots examined by [pop]: the regression tests assert it
   stays linear in pops at 50k tenants, which is what rules the quadratic
   rebuild out for good. *)

type slot = { s_tenant : string; mutable s_dead : bool }

let filler = { s_tenant = ""; s_dead = true }

(* rings smaller than this never compact: the arithmetic of small serves —
   everything the frozen corpora cover — is untouched by retirement *)
let min_compact = 64

type 'a t = {
  queues : (string, 'a Queue.t) Hashtbl.t;
  mutable ring : slot array;
  mutable len : int;  (* slots in use, live or dead *)
  mutable live : int;  (* slots whose tenant has queued work *)
  mutable cursor : int;  (* next ring position to serve *)
  rng : Rs_util.Rng.t;
  mutable cursor_seeded : bool;
  mutable total : int;
  mutable probes : int;
  mutable pops : int;
}

let create ~seed =
  {
    queues = Hashtbl.create 8;
    ring = [||];
    len = 0;
    live = 0;
    cursor = 0;
    rng = Rs_util.Rng.create seed;
    cursor_seeded = false;
    total = 0;
    probes = 0;
    pops = 0;
  }

let push t ~tenant x =
  (match Hashtbl.find_opt t.queues tenant with
  | Some q -> Queue.push x q
  | None ->
      let q = Queue.create () in
      Queue.push x q;
      Hashtbl.add t.queues tenant q;
      if t.len = Array.length t.ring then begin
        let grown = Array.make (max 8 (2 * t.len)) filler in
        Array.blit t.ring 0 grown 0 t.len;
        t.ring <- grown
      end;
      t.ring.(t.len) <- { s_tenant = tenant; s_dead = false };
      t.len <- t.len + 1;
      t.live <- t.live + 1);
  t.total <- t.total + 1

let length t = t.total
let tenants t = t.live
let ring_slots t = t.len
let probes t = t.probes
let pops t = t.pops

(* Drop dead slots, preserving live order. The cursor is remapped to the
   count of live slots before it, which is exactly the new index of the
   next live slot at-or-after the old cursor position (mod the new
   length) — the walk resumes at the same tenant it would have served. *)
let compact t =
  let kept = Array.make (max 8 t.live) filler in
  let j = ref 0 and cursor' = ref 0 in
  for i = 0 to t.len - 1 do
    let s = t.ring.(i) in
    if not s.s_dead then begin
      if i < t.cursor then incr cursor';
      kept.(!j) <- s;
      incr j
    end
  done;
  t.ring <- kept;
  t.len <- t.live;
  t.cursor <- (if t.len = 0 then 0 else !cursor' mod t.len)

let pop t =
  if t.total = 0 then None
  else begin
    if not t.cursor_seeded then begin
      (* one seeded draw fixes where the ring walk starts; before the first
         pop every slot is live, so [len] equals the seed code's ring size
         and the draw is bit-identical on existing seeds *)
      t.cursor <- Rs_util.Rng.int t.rng (max 1 t.len);
      t.cursor_seeded <- true
    end;
    let n = t.len in
    let rec find i =
      let p = (t.cursor + i) mod n in
      let s = t.ring.(p) in
      t.probes <- t.probes + 1;
      if s.s_dead then find (i + 1)
      else begin
        let q = Hashtbl.find t.queues s.s_tenant in
        let x = Queue.pop q in
        t.cursor <- (p + 1) mod n;
        t.total <- t.total - 1;
        t.pops <- t.pops + 1;
        if Queue.is_empty q then begin
          Hashtbl.remove t.queues s.s_tenant;
          s.s_dead <- true;
          t.live <- t.live - 1;
          if t.len >= min_compact && 2 * t.live < t.len then compact t
        end;
        Some (s.s_tenant, x)
      end
    in
    find 0
  end
