type 'a t = {
  queues : (string, 'a Queue.t) Hashtbl.t;
  mutable ring : string list;  (* reversed arrival order *)
  mutable cursor : int;  (* next ring position to serve *)
  rng : Rs_util.Rng.t;
  mutable cursor_seeded : bool;
  mutable total : int;
}

let create ~seed =
  {
    queues = Hashtbl.create 8;
    ring = [];
    cursor = 0;
    rng = Rs_util.Rng.create seed;
    cursor_seeded = false;
    total = 0;
  }

let push t ~tenant x =
  let q =
    match Hashtbl.find_opt t.queues tenant with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.queues tenant q;
        t.ring <- tenant :: t.ring;
        q
  in
  Queue.push x q;
  t.total <- t.total + 1

let length t = t.total

let pop t =
  if t.total = 0 then None
  else begin
    let ring = Array.of_list (List.rev t.ring) in
    let n = Array.length ring in
    if not t.cursor_seeded then begin
      (* one seeded draw fixes where the ring walk starts *)
      t.cursor <- Rs_util.Rng.int t.rng (max 1 n);
      t.cursor_seeded <- true
    end;
    let rec find i =
      let tenant = ring.((t.cursor + i) mod n) in
      let q = Hashtbl.find t.queues tenant in
      if Queue.is_empty q then find (i + 1)
      else begin
        t.cursor <- (t.cursor + i + 1) mod n;
        t.total <- t.total - 1;
        Some (tenant, Queue.pop q)
      end
    in
    find 0
  end
