module Histogram = Rs_obs.Histogram

type policy = {
  min_workers : int;
  max_workers : int;
  queue_hi : float;
  queue_lo : float;
  tail_target_s : float;
  window : int;
  cooldown : int;
  cache_min_bytes : int;
  cache_max_bytes : int;
}

let policy ?(min_workers = 1) ?(max_workers = 64) ?(queue_hi = 4.0)
    ?(queue_lo = 1.0) ?(tail_target_s = 0.5) ?(window = 32) ?(cooldown = 3)
    ?(cache_min_bytes = 16 * 1024 * 1024) ?(cache_max_bytes = 256 * 1024 * 1024)
    () =
  let min_workers = max 1 min_workers in
  {
    min_workers;
    max_workers = max min_workers max_workers;
    queue_hi;
    queue_lo = min queue_lo queue_hi;
    tail_target_s;
    window = max 1 window;
    cooldown = max 1 cooldown;
    cache_min_bytes = max 0 cache_min_bytes;
    cache_max_bytes = max (max 0 cache_min_bytes) cache_max_bytes;
  }

type direction = Up | Down

type decision = {
  d_dir : direction;
  d_workers_from : int;
  d_workers_to : int;
  d_cache_from : int;
  d_cache_to : int;
  d_p95_s : float;
  d_queue_per_worker : float;
}

type t = {
  pol : policy;
  mutable cur_workers : int;
  mutable cur_cache : int;
  mutable win : Histogram.t;
  mutable win_n : int;
  mutable win_queue_max : int;
  mutable calm : int;  (* consecutive calm windows *)
  mutable n_evals : int;
}

let create pol ~workers ~cache_bytes =
  {
    pol;
    cur_workers = min pol.max_workers (max pol.min_workers workers);
    cur_cache = cache_bytes;
    win = Histogram.create ();
    win_n = 0;
    win_queue_max = 0;
    calm = 0;
    n_evals = 0;
  }

let workers t = t.cur_workers
let cache_bytes t = t.cur_cache
let evals t = t.n_evals

(* cache budget tracks the worker count linearly through the policy's
   range, so scaling capacity up also grants the state to feed it *)
let cache_for pol w =
  if pol.max_workers = pol.min_workers then pol.cache_max_bytes
  else
    pol.cache_min_bytes
    + (pol.cache_max_bytes - pol.cache_min_bytes)
      * (w - pol.min_workers)
      / (pol.max_workers - pol.min_workers)

let resize t dir w' ~p95 ~per_worker =
  let d =
    {
      d_dir = dir;
      d_workers_from = t.cur_workers;
      d_workers_to = w';
      d_cache_from = t.cur_cache;
      d_cache_to = cache_for t.pol w';
      d_p95_s = p95;
      d_queue_per_worker = per_worker;
    }
  in
  t.cur_workers <- w';
  t.cur_cache <- d.d_cache_to;
  Some d

let note t ~queue_depth ~latency_s =
  Histogram.add t.win latency_s;
  t.win_n <- t.win_n + 1;
  if queue_depth > t.win_queue_max then t.win_queue_max <- queue_depth;
  if t.win_n < t.pol.window then None
  else begin
    let p95 = Histogram.percentile t.win 95.0 in
    let per_worker = float_of_int t.win_queue_max /. float_of_int t.cur_workers in
    t.win <- Histogram.create ();
    t.win_n <- 0;
    t.win_queue_max <- 0;
    t.n_evals <- t.n_evals + 1;
    let hot = per_worker >= t.pol.queue_hi || p95 > t.pol.tail_target_s in
    let calm = per_worker <= t.pol.queue_lo && p95 <= t.pol.tail_target_s in
    if hot then begin
      t.calm <- 0;
      if t.cur_workers < t.pol.max_workers then
        resize t Up (min t.pol.max_workers (2 * t.cur_workers)) ~p95 ~per_worker
      else None
    end
    else if calm then begin
      t.calm <- t.calm + 1;
      if t.calm >= t.pol.cooldown && t.cur_workers > t.pol.min_workers then begin
        t.calm <- 0;
        resize t Down (max t.pol.min_workers (t.cur_workers / 2)) ~p95 ~per_worker
      end
      else None
    end
    else begin
      (* neither hot nor calm: hold, and break any calm streak *)
      t.calm <- 0;
      None
    end
  end
