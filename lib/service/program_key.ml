module Ast = Recstep.Ast

(* Per-rule variable renaming: head first, then body, in first-occurrence
   order. Wildcards stay wildcards (each occurrence is already fresh). *)

let rename_rule (r : Ast.rule) : Ast.rule =
  let tbl = Hashtbl.create 8 in
  let fresh v =
    match Hashtbl.find_opt tbl v with
    | Some v' -> v'
    | None ->
        let v' = Printf.sprintf "v%d" (Hashtbl.length tbl) in
        Hashtbl.add tbl v v';
        v'
  in
  let term = function
    | Ast.Var v -> Ast.Var (fresh v)
    | (Ast.Const _ | Ast.Wildcard) as t -> t
  in
  let rec expr = function
    | Ast.T t -> Ast.T (term t)
    | Ast.Add (a, b) -> Ast.Add (expr a, expr b)
    | Ast.Sub (a, b) -> Ast.Sub (expr a, expr b)
    | Ast.Mul (a, b) -> Ast.Mul (expr a, expr b)
  in
  let head_term = function
    | Ast.H_term t -> Ast.H_term (term t)
    | Ast.H_agg (op, e) -> Ast.H_agg (op, expr e)
  in
  let atom (a : Ast.atom) = { a with Ast.args = List.map term a.Ast.args } in
  let literal = function
    | Ast.L_pos a -> Ast.L_pos (atom a)
    | Ast.L_neg a -> Ast.L_neg (atom a)
    | Ast.L_cmp (op, a, b) -> Ast.L_cmp (op, expr a, expr b)
  in
  let head_args = List.map head_term r.Ast.head_args in
  let body = List.map literal r.Ast.body in
  { r with Ast.head_args; body }

let canonical (p : Ast.program) =
  let rules =
    List.sort compare (List.map (fun r -> Ast.rule_to_string (rename_rule r)) p.Ast.rules)
  in
  let inputs =
    List.sort compare
      (List.map (fun (n, a) -> Printf.sprintf ".input %s/%d" n a) p.Ast.inputs)
  in
  let outputs = List.sort compare (List.map (fun n -> ".output " ^ n) p.Ast.outputs) in
  String.concat "\n" (rules @ inputs @ outputs)

(* FNV-1a, 64-bit. OCaml ints are 63-bit; masking to 60 bits keeps the fold
   well inside the native range while preserving avalanche behaviour good
   enough for cache keying. *)
let hash_of_canonical s =
  let h = ref 0xbf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land 0xFFFFFFFFFFFFFFF)
    s;
  Printf.sprintf "%016x" !h

let hash p = hash_of_canonical (canonical p)
