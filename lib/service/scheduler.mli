(** Tenant-fair ready queue.

    Admitted queries wait here until the (serial, simulated-time) dispatch
    loop picks the next one. Fairness is round-robin over tenants: each
    tenant has a FIFO of its own submissions, and successive pops walk the
    tenant ring so one chatty tenant cannot starve the others. The starting
    point of the ring walk is drawn once from the seed, making the whole
    dispatch order a deterministic function of (seed, submission order) —
    the property the determinism test pins down. *)

type 'a t

val create : seed:int -> 'a t

val push : 'a t -> tenant:string -> 'a -> unit
(** Enqueue at the tail of the tenant's FIFO; first-seen tenants join the
    ring in arrival order. *)

val pop : 'a t -> (string * 'a) option
(** Next (tenant, item) in round-robin order; [None] when empty. *)

val length : 'a t -> int
(** Total queued items across tenants. *)
