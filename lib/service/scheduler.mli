(** Tenant-fair ready queue.

    Admitted queries wait here until the (serial, simulated-time) dispatch
    loop picks the next one. Fairness is round-robin over tenants: each
    tenant has a FIFO of its own submissions, and successive pops walk the
    tenant ring so one chatty tenant cannot starve the others. The starting
    point of the ring walk is drawn once from the seed, making the whole
    dispatch order a deterministic function of (seed, submission order) —
    the property the determinism tests pin down.

    Scale: the ring is a persistent dynamic array (the seed rebuilt it from
    a list on {e every} pop — quadratic in tenant count under the load
    model), a tenant whose FIFO drains is retired immediately (its queue
    and, after lazy compaction, its ring slot are reclaimed), and {!probes}
    exposes the slots-examined count the 50k-tenant regression test holds
    linear in {!pops}. *)

type 'a t

val create : seed:int -> 'a t

val push : 'a t -> tenant:string -> 'a -> unit
(** Enqueue at the tail of the tenant's FIFO; tenants without queued work
    (first-seen, or re-submitting after their FIFO drained) join the ring
    at the tail, in arrival order. *)

val pop : 'a t -> (string * 'a) option
(** Next (tenant, item) in round-robin order; [None] when empty. A tenant
    whose FIFO drains is retired from the ring on the spot. *)

val length : 'a t -> int
(** Total queued items across tenants. *)

val tenants : 'a t -> int
(** Tenants currently holding queued work (= live ring slots). *)

val ring_slots : 'a t -> int
(** Current ring slots including retired ones not yet compacted away —
    bounded by twice {!tenants} once the ring is large, and by a small
    constant after a full drain. *)

val probes : 'a t -> int
(** Ring slots examined by {!pop} since creation — the scheduler's work
    counter. Sub-quadratic behavior means [probes = O(pops + tenants)]. *)

val pops : 'a t -> int
(** Successful {!pop}s since creation. *)
