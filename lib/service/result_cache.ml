module Int_key = Rs_util.Int_key

type key = { program : string; edb : string; edb_version : int }

type value = (string * int array list) list

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidations : int;
  collisions : int;
  corruptions : int;
  skipped : int;
  refreshes : int;
}

type entry = {
  value : value;
  canonical : string;  (* full canonical program text, verified on lookup *)
  checksum : int;  (* content digest of [value], verified on lookup *)
  vbytes : int;
  mutable last_use : int;
}

type t = {
  mutable budget : int;
  table : (key, entry) Hashtbl.t;
  mutable live_bytes : int;
  mutable tick : int;  (* logical recency clock *)
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable collisions : int;
  mutable corruptions : int;
  mutable skipped : int;
  mutable refreshes : int;
}

let create ~budget_bytes =
  {
    budget = max 0 budget_bytes;
    table = Hashtbl.create 64;
    live_bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    invalidations = 0;
    collisions = 0;
    corruptions = 0;
    skipped = 0;
    refreshes = 0;
  }

(* Rows live on the OCaml heap, not in Memtrack: header + pointer per row
   plus a boxed int array of [arity] words. *)
let value_bytes (v : value) =
  List.fold_left
    (fun acc (name, rows) ->
      let per_row =
        match rows with [] -> 24 | r :: _ -> 24 + (8 * Array.length r)
      in
      acc + 64 + String.length name + (per_row * List.length rows))
    0 v

(* Order-sensitive digest over every attribute of every row, plus names and
   shapes, so any single-bit corruption of a stored entry flips it. *)
let checksum (v : value) =
  List.fold_left
    (fun acc (name, rows) ->
      let acc = Int_key.hash_combine acc (Hashtbl.hash name) in
      List.fold_left
        (fun acc row ->
          Array.fold_left Int_key.hash_combine
            (Int_key.hash_combine acc (Array.length row))
            row)
        acc rows)
    0x811C9DC5 v

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      Hashtbl.remove t.table k;
      t.live_bytes <- t.live_bytes - e.vbytes
  | None -> ()

let find t k ~canonical =
  if t.budget = 0 then None
  else
    match Hashtbl.find_opt t.table k with
    | Some e when String.equal e.canonical canonical ->
        if checksum e.value <> e.checksum then begin
          (* The stored rows no longer match the digest taken at insert:
             the entry is corrupt. Serving it would hand the tenant wrong
             rows silently — drop it and miss, so the query recomputes. *)
          t.corruptions <- t.corruptions + 1;
          t.misses <- t.misses + 1;
          remove t k;
          None
        end
        else begin
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          t.hits <- t.hits + 1;
          Some e.value
        end
    | Some _ ->
        (* 60-bit FNV-1a hash collision: the key matched but the program is
           a different one. Serving the entry would hand this tenant another
           program's rows — count it and miss. *)
        t.collisions <- t.collisions + 1;
        t.misses <- t.misses + 1;
        None
    | None ->
        t.misses <- t.misses + 1;
        None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.last_use <= e.last_use -> acc
        | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | Some (k, _) ->
      remove t k;
      t.evictions <- t.evictions + 1
  | None -> ()

(* Chaos fault point: store a corrupted private copy of the value. The
   checksum is taken from the caller's rows first, so {!find} detects the
   damage; the copy keeps the caller's arrays (which it has already handed
   to the client as the query's answer) intact. *)
let maybe_corrupt (v : value) =
  if not (Rs_chaos.Inject.cache_should_corrupt ()) then v
  else
    let copy = List.map (fun (n, rows) -> (n, List.map Array.copy rows)) v in
    (match
       List.find_opt (fun (_, rows) -> List.exists (fun r -> Array.length r > 0) rows) copy
     with
    | Some (_, rows) ->
        let row = List.find (fun r -> Array.length r > 0) rows in
        row.(0) <- row.(0) lxor 1
    | None -> ());
    copy

let add ?(stale = false) ?(degraded = false) t k v ~canonical =
  if stale || degraded then
    (* A run that beat its deadline but finished after it expired, or ran
       under a degraded configuration, must not populate the cache: the
       entry would outlive the incident and serve a possibly-reduced answer
       at full-confidence latency forever after. *)
    t.skipped <- t.skipped + 1
  else if t.budget > 0 then begin
    let vbytes = value_bytes v + String.length canonical in
    if vbytes <= t.budget then begin
      let sum = checksum v in
      let v = maybe_corrupt v in
      remove t k;
      while t.live_bytes + vbytes > t.budget && Hashtbl.length t.table > 0 do
        evict_lru t
      done;
      t.tick <- t.tick + 1;
      Hashtbl.add t.table k { value = v; canonical; checksum = sum; vbytes; last_use = t.tick };
      t.live_bytes <- t.live_bytes + vbytes;
      t.insertions <- t.insertions + 1
    end
  end

let invalidate_edb t edb =
  let doomed =
    Hashtbl.fold (fun k _ acc -> if k.edb = edb then k :: acc else acc) t.table []
  in
  List.iter (remove t) doomed;
  let n = List.length doomed in
  t.invalidations <- t.invalidations + n;
  n

(* Warm refresh: instead of dropping a database's entries on a delta, ask
   the caller for each entry's rows at the new version (the serving layer
   answers from its maintained views) and re-key the entry. Entries the
   refresher cannot answer — no view, unsupported program — fall back to
   plain invalidation. Recency is preserved: a refresh is bookkeeping, not
   a hit. *)
let refresh_edb t edb ~version refresher =
  let affected =
    Hashtbl.fold
      (fun k e acc -> if k.edb = edb && k.edb_version <> version then (k, e) :: acc else acc)
      t.table []
  in
  let refreshed = ref 0 in
  List.iter
    (fun (k, e) ->
      match refresher ~canonical:e.canonical with
      | Some v ->
          remove t k;
          let vbytes = value_bytes v + String.length e.canonical in
          Hashtbl.add t.table
            { k with edb_version = version }
            {
              value = v;
              canonical = e.canonical;
              checksum = checksum v;
              vbytes;
              last_use = e.last_use;
            };
          t.live_bytes <- t.live_bytes + vbytes;
          incr refreshed;
          t.refreshes <- t.refreshes + 1
      | None ->
          remove t k;
          t.invalidations <- t.invalidations + 1)
    affected;
  (* refreshed rows may be larger than the ones they replaced *)
  while t.live_bytes > t.budget && Hashtbl.length t.table > 0 do
    evict_lru t
  done;
  !refreshed

let set_budget t budget_bytes =
  t.budget <- max 0 budget_bytes;
  while t.live_bytes > t.budget && Hashtbl.length t.table > 0 do
    evict_lru t
  done

let value_checksum = checksum

let stats t =
  {
    entries = Hashtbl.length t.table;
    bytes = t.live_bytes;
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
    invalidations = t.invalidations;
    collisions = t.collisions;
    corruptions = t.corruptions;
    skipped = t.skipped;
    refreshes = t.refreshes;
  }
