(** Admission control: the service never queues unboundedly.

    A submission is admitted only if (1) the pending queue has a free slot
    and (2) its declared memory class fits in the headroom the
    [Rs_storage.Memtrack] budget still has. Anything else is {e rejected}
    with a typed reason — backpressure the client can see — rather than
    parked on an unbounded queue that would itself be a memory leak. *)

type memclass = Small | Medium | Large

val memclass_bytes : memclass -> int
(** The admission estimate a query of this class reserves against the
    budget: 1 MiB / 16 MiB / 128 MiB. *)

val memclass_of_string : string -> memclass option
(** "small" / "medium" / "large" (case-insensitive). *)

val memclass_to_string : memclass -> string

type reason =
  | Queue_full of { capacity : int }
  | Over_memory of { need : int; available : int }
  | Unknown_edb of string

val reason_to_string : reason -> string

type decision = Admit | Reject of reason

val decide :
  queue_len:int ->
  queue_capacity:int ->
  mem:memclass ->
  budget:int option ->
  live:int ->
  decision
(** Pure policy: reject on a full queue first, then on insufficient memory
    headroom ([budget = None] means memory never rejects). The EDB-existence
    check is the service's, since only it holds the store. *)
