type span = {
  sp_kind : string;
  sp_name : string;
  sp_depth : int;
  sp_start : float;
  sp_stop : float option;
}

type iteration = {
  it_stratum : int;
  it_iteration : int;
  it_idb : string;
  it_delta_rows : int;
  it_vtime : float;
}

type event = {
  ev_kind : string;
  ev_name : string;
  ev_vtime : float;
  ev_fields : (string * float) list;
}

type batch = { bt_start : float; bt_len : float; bt_busy : float }

(* open spans live in [stack] as mutable cells; on close they move to [done_]
   (newest first). Slot numbers keep the global open order so [spans] can
   interleave closed and still-open spans correctly. *)
type open_span = { os_kind : string; os_name : string; os_depth : int; os_start : float; os_slot : int }

type t = {
  now : unit -> float;
  mutable stack : open_span list;
  mutable done_ : (int * span) list;  (* slot * span, newest first *)
  mutable next_slot : int;
  counters : (string, int ref) Hashtbl.t;
  mutable iters : iteration list;  (* newest first *)
  mutable events : event list;  (* newest first *)
  mutable batches : batch list;  (* newest first *)
}

let create ~now () =
  {
    now;
    stack = [];
    done_ = [];
    next_slot = 0;
    counters = Hashtbl.create 16;
    iters = [];
    events = [];
    batches = [];
  }

let now t = t.now ()

(* ---------- spans ---------- *)

let begin_span t ~kind name =
  let os =
    {
      os_kind = kind;
      os_name = name;
      os_depth = List.length t.stack;
      os_start = t.now ();
      os_slot = t.next_slot;
    }
  in
  t.next_slot <- t.next_slot + 1;
  t.stack <- os :: t.stack

let close os stop =
  {
    sp_kind = os.os_kind;
    sp_name = os.os_name;
    sp_depth = os.os_depth;
    sp_start = os.os_start;
    sp_stop = stop;
  }

let end_span t =
  match t.stack with
  | [] -> ()
  | os :: rest ->
      t.stack <- rest;
      t.done_ <- (os.os_slot, close os (Some (t.now ()))) :: t.done_

let span t ~kind name f =
  begin_span t ~kind name;
  Fun.protect ~finally:(fun () -> end_span t) f

let open_spans t = List.length t.stack

let spans t =
  let all = List.rev_append (List.rev_map (fun os -> (os.os_slot, close os None)) t.stack) t.done_ in
  List.sort (fun (a, _) (b, _) -> compare a b) all |> List.map snd

(* ---------- counters ---------- *)

let count t name n =
  if n < 0 then invalid_arg "Trace.count: counters are monotone";
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---------- iterations / events / batches ---------- *)

let iteration t it = t.iters <- it :: t.iters
let iterations t = List.rev t.iters

let event t ~kind name fields =
  t.events <- { ev_kind = kind; ev_name = name; ev_vtime = t.now (); ev_fields = fields } :: t.events

let events t = List.rev t.events
let add_batch t ~start ~len ~busy = t.batches <- { bt_start = start; bt_len = len; bt_busy = busy } :: t.batches
let batches t = List.rev t.batches

(* ---------- output ---------- *)

let to_json t =
  let span_json s =
    Json.Obj
      [
        ("kind", Json.String s.sp_kind);
        ("name", Json.String s.sp_name);
        ("depth", Json.Int s.sp_depth);
        ("start", Json.Float s.sp_start);
        ("end", match s.sp_stop with Some e -> Json.Float e | None -> Json.Null);
      ]
  in
  let iter_json it =
    Json.Obj
      [
        ("stratum", Json.Int it.it_stratum);
        ("iteration", Json.Int it.it_iteration);
        ("idb", Json.String it.it_idb);
        ("delta_rows", Json.Int it.it_delta_rows);
        ("vtime", Json.Float it.it_vtime);
      ]
  in
  let event_json e =
    Json.Obj
      [
        ("kind", Json.String e.ev_kind);
        ("name", Json.String e.ev_name);
        ("vtime", Json.Float e.ev_vtime);
        ("fields", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.ev_fields));
      ]
  in
  let batch_json b =
    Json.Obj
      [ ("start", Json.Float b.bt_start); ("len", Json.Float b.bt_len); ("busy", Json.Float b.bt_busy) ]
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("spans", Json.List (List.map span_json (spans t)));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("iterations", Json.List (List.map iter_json (iterations t)));
      ("events", Json.List (List.map event_json (events t)));
      ("batches", Json.List (List.map batch_json (batches t)));
    ]

let dump t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let summary t =
  let buf = Buffer.create 512 in
  let dur s = match s.sp_stop with Some e -> e -. s.sp_start | None -> now t -. s.sp_start in
  let all = spans t in
  (* totals by kind *)
  let by_kind = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let c, tot = try Hashtbl.find by_kind s.sp_kind with Not_found -> (0, 0.0) in
      Hashtbl.replace by_kind s.sp_kind (c + 1, tot +. dur s))
    all;
  let kind_rows =
    Hashtbl.fold (fun k (c, tot) acc -> (k, c, tot) :: acc) by_kind []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    |> List.map (fun (k, c, tot) -> [ k; string_of_int c; Printf.sprintf "%.6f" tot ])
  in
  Buffer.add_string buf "-- span totals by kind --\n";
  Buffer.add_string buf (Rs_util.Table_printer.render ~header:[ "kind"; "spans"; "total_s" ] kind_rows);
  (* flame-style: hottest (kind, name) pairs, indented by their minimum depth *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let key = (s.sp_kind, s.sp_name) in
      let c, tot, d = try Hashtbl.find by_name key with Not_found -> (0, 0.0, max_int) in
      Hashtbl.replace by_name key (c + 1, tot +. dur s, min d s.sp_depth))
    all;
  let name_rows =
    Hashtbl.fold (fun (k, n) (c, tot, d) acc -> (k, n, c, tot, d) :: acc) by_name []
    |> List.sort (fun (_, _, _, a, _) (_, _, _, b, _) -> compare b a)
    |> (fun l -> List.filteri (fun i _ -> i < 20) l)
    |> List.map (fun (k, n, c, tot, d) ->
           [ String.make (2 * d) ' ' ^ k ^ "/" ^ n; string_of_int c; Printf.sprintf "%.6f" tot ])
  in
  if name_rows <> [] then begin
    Buffer.add_string buf "-- hottest spans (indent = nesting depth) --\n";
    Buffer.add_string buf
      (Rs_util.Table_printer.render ~header:[ "span"; "count"; "total_s" ] name_rows)
  end;
  let counter_rows = List.map (fun (k, v) -> [ k; string_of_int v ]) (counters t) in
  if counter_rows <> [] then begin
    Buffer.add_string buf "-- counters --\n";
    Buffer.add_string buf (Rs_util.Table_printer.render ~header:[ "counter"; "value" ] counter_rows)
  end;
  Buffer.add_string buf
    (Printf.sprintf "iterations recorded: %d, events: %d, pool batches: %d\n"
       (List.length t.iters) (List.length t.events) (List.length t.batches));
  Buffer.contents buf
