(** Minimal self-contained JSON values: enough to serialize traces and read
    them back in tests, with no external dependency. Numbers are kept as
    [Int]/[Float] on construction; the parser returns [Int] when the literal
    has no fraction or exponent. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering. Non-finite floats are rendered as [null]
    so the output is always standard JSON. *)

val of_string : string -> t
(** Parse a complete JSON document; raises {!Parse_error} on malformed input
    or trailing garbage. *)

val member : string -> t -> t
(** [member k (Obj kvs)] is the value bound to [k], or [Null] when absent or
    when the value is not an object. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] for anything else. *)

val to_int : t -> int
(** [Int n] or a whole [Float]; raises [Parse_error] otherwise. *)

val to_float : t -> float

val to_str : t -> string
