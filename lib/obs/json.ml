type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ---------- parsing (recursive descent) ---------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; loop ()
        | Some 'u' ->
            if st.pos + 5 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
            in
            (* trace strings are ASCII; anything else degrades to '?' *)
            Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
            st.pos <- st.pos + 5;
            loop ()
        | Some c -> Buffer.add_char buf c; st.pos <- st.pos + 1; loop ()
        | None -> fail st "unterminated escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  let fractional = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  if fractional then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt s with Some f -> Float f | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member k = function
  | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function List xs -> xs | _ -> []

let to_int = function
  | Int n -> n
  | Float f when Float.is_integer f -> int_of_float f
  | v -> raise (Parse_error ("not an int: " ^ to_string v))

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> raise (Parse_error ("not a number: " ^ to_string v))

let to_str = function
  | String s -> s
  | v -> raise (Parse_error ("not a string: " ^ to_string v))
