(** Low-overhead tracing and metrics on the simulated clock.

    A [Trace.t] is carried explicitly (never through a global) from
    [Measure.run] / the CLI down through the interpreter, executor, relation
    and storage layers. It records four kinds of facts:

    - {b spans}: named intervals with a subsystem [kind] ("interpreter",
      "executor", "dedup", "storage", "engine", ...), nested via a stack so
      every [end_span] closes the most recent open span;
    - {b counters}: named monotone totals (dedup probes/hits, index builds,
      flush bytes, ...);
    - {b iterations}: one record per fixpoint iteration per IDB — the
      stratum/iteration/delta-cardinality timeline of the run;
    - {b events}: timestamped points with float-valued fields, used for
      per-query cardinality estimates and OPSD/TPSD decisions with their
      cost-model inputs.

    Pool batches (the existing [Rs_parallel.Pool.event]s) are mirrored in via
    {!add_batch} after a run, so the profile is self-contained.

    Timestamps come from the [now] closure supplied at creation — normally
    the owning pool's virtual clock — so the trace layer depends only on
    [rs_util] and can be used from any layer without dependency cycles. *)

type span = {
  sp_kind : string;
  sp_name : string;
  sp_depth : int;  (** nesting depth at the time the span opened; 0 = top level *)
  sp_start : float;
  sp_stop : float option;  (** [None] while the span is still open *)
}

type iteration = {
  it_stratum : int;
  it_iteration : int;
  it_idb : string;
  it_delta_rows : int;
  it_vtime : float;
}

type event = {
  ev_kind : string;
  ev_name : string;
  ev_vtime : float;
  ev_fields : (string * float) list;
}

type batch = { bt_start : float; bt_len : float; bt_busy : float }

type t

val create : now:(unit -> float) -> unit -> t
(** [create ~now ()] makes an empty trace reading timestamps from [now]
    (normally [fun () -> Pool.vtime_now pool]). *)

val now : t -> float

(** {2 Spans} *)

val begin_span : t -> kind:string -> string -> unit

val end_span : t -> unit
(** Closes the most recently opened span. No-op if none is open. *)

val span : t -> kind:string -> string -> (unit -> 'a) -> 'a
(** [span t ~kind name f] runs [f] inside a span, closing it even if [f]
    raises. *)

val open_spans : t -> int
(** Number of currently open (unbalanced) spans. *)

val spans : t -> span list
(** All spans in open order, including any still open. *)

(** {2 Counters} *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to the named counter. Counters are monotone;
    raises [Invalid_argument] if [n < 0]. *)

val counter : t -> string -> int
(** Current value; 0 if never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Iterations and events} *)

val iteration : t -> iteration -> unit
val iterations : t -> iteration list
(** In recording order. *)

val event : t -> kind:string -> string -> (string * float) list -> unit
val events : t -> event list

val add_batch : t -> start:float -> len:float -> busy:float -> unit
(** Mirror one pool batch event into the trace. *)

val batches : t -> batch list

(** {2 Output} *)

val to_json : t -> Json.t
(** Self-contained profile: [{"version"; "spans"; "counters"; "iterations";
    "events"; "batches"}]. Open spans serialize with ["end"] null. *)

val dump : t -> path:string -> unit
(** Write [to_json] to [path] (single line, trailing newline). *)

val summary : t -> string
(** ASCII flame-style summary rendered with [Rs_util.Table_printer]: span
    totals grouped by kind then by the hottest (kind, name) pairs, followed
    by the counter table. *)
