(** Latency histograms for the serving layer's SLO accounting.

    The service used to keep every served latency in a sorted list and walk
    it with [List.nth] per percentile — O(n) per quantile per call, which
    the million-tenant load model turns into a hot path. This module gives
    both replacements:

    - {!percentile_sorted}: the exact nearest-rank quantile over a sorted
      array, O(1) per call after one O(n log n) sort. Same rank convention
      as the old list walk ([ceil (p/100 · n)], clamped), so existing
      report values are unchanged.
    - {!t}: a fixed-size log-bucketed histogram (≈ 9% relative resolution
      over [1 µs, ~30 h]) for populations too large or too long-lived to
      keep raw samples — per-SLO-class latency distributions across a
      million-tenant run. O(1) record, O(buckets) quantile, constant
      memory, mergeable.

    Everything is deterministic: no clocks, no randomness — a histogram is
    a pure fold over the recorded values. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one value (seconds). Negative values clamp to the lowest
    bucket. *)

val merge : into:t -> t -> unit
(** Fold the second histogram's population into [into]. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** Exact smallest recorded value; 0 when empty. *)

val max_value : t -> float
(** Exact largest recorded value; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100]: the nearest-rank quantile, read
    from the bucket containing the rank and reported at the bucket's
    geometric midpoint, clamped to the exact recorded [min]/[max] so p0 and
    p100 are exact. 0 when empty. *)

val rank_of : n:int -> float -> int
(** The shared nearest-rank convention: 0-based index of the [p]-th
    percentile in a population of [n], [ceil (p/100 · n) - 1] clamped to
    [\[0, n-1\]]. *)

val percentile_sorted : float array -> float -> float
(** Exact nearest-rank percentile over an ascending-sorted array; 0 when
    empty. This is the replacement for the service report's old
    [List.length]/[List.nth] walk. *)

val quantile_json : t -> Json.t
(** [{"count"; "mean"; "min"; "max"; "p50"; "p95"; "p99"; "p999"}] — the
    fixed quantile set the SLO reports carry. An {e empty} histogram emits
    only [{"count": 0}]: a zero-sample population has no quantiles, and
    fabricated zeros would read as real zero-latency measurements in SLO
    JSON. Consumers must branch on [count]. *)
