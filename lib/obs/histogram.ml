(* Log-bucketed histogram: bucket [i] covers [lo·g^i, lo·g^(i+1)) with
   g = 2^(1/8), i.e. 8 buckets per octave — ≈ 9% worst-case relative error
   on any reported quantile, which is far below the run-to-run jitter of
   simulated latencies. 280 buckets span 1 µs to ~1e5 s. *)

let lo = 1e-6
let buckets = 280
let log_g = log 2.0 /. 8.0

type t = {
  counts : int array;
  mutable n : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { counts = Array.make buckets 0; n = 0; total = 0.0; min_v = infinity; max_v = neg_infinity }

let bucket_of v =
  if v <= lo then 0
  else
    let i = int_of_float (log (v /. lo) /. log_g) in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i

(* geometric midpoint of bucket [i] *)
let bucket_mid i = lo *. exp (log_g *. (float_of_int i +. 0.5))

let add t v =
  let v = if Float.is_nan v then 0.0 else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let merge ~into src =
  for i = 0 to buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.total <- into.total +. src.total;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n
let min_value t = if t.n = 0 then 0.0 else t.min_v
let max_value t = if t.n = 0 then 0.0 else t.max_v

(* Nearest-rank, the exact convention the service report has always used:
   rank = ceil (p/100 · n), 1-based, returned 0-based and clamped. *)
let rank_of ~n p =
  let rank = int_of_float (ceil (p *. float_of_int n /. 100.0)) - 1 in
  min (n - 1) (max 0 rank)

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(rank_of ~n p)

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let rank = rank_of ~n:t.n p in
    let i = ref 0 and seen = ref 0 in
    while !seen + t.counts.(!i) <= rank do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    (* clamp to the exact extrema so p0/p100 are precise and a
       single-bucket population reports its true value range *)
    min t.max_v (max t.min_v (bucket_mid !i))
  end

let quantile_json t =
  (* a zero-sample population has no quantiles: emitting min/max/p50 of 0.0
     would read as "every query returned instantly" in an SLO report, so
     the empty histogram carries only its count and consumers branch on it *)
  if t.n = 0 then Json.Obj [ ("count", Json.Int 0) ]
  else
    Json.Obj
      [
        ("count", Json.Int t.n);
        ("mean", Json.Float (mean t));
        ("min", Json.Float (min_value t));
        ("max", Json.Float (max_value t));
        ("p50", Json.Float (percentile t 50.0));
        ("p95", Json.Float (percentile t 95.0));
        ("p99", Json.Float (percentile t 99.0));
        ("p999", Json.Float (percentile t 99.9));
      ]
