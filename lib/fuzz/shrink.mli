(** Greedy shrinking of failing fuzz cases.

    Fixed order, per the harness contract: drop whole rules (with a cascade
    removing rules orphaned by the drop and re-deriving the outputs), then
    drop EDB tuples (halves, then singles), then shrink constants (each
    value to 0, else one step down) — looped to a fixpoint. Every accepted
    candidate both strictly decreases the (#rules, #tuples, constant-sum)
    measure and still satisfies [check], so minimization terminates and the
    result provably still fails. *)

val minimize : check:(Gen.case -> bool) -> Gen.case -> Gen.case
(** [minimize ~check c] assumes [check c = true] (the case fails) and
    returns a minimal failing case. [check] must be deterministic — it is
    re-run on every candidate. *)
