module Json = Rs_obs.Json

(* One recorded divergence: which case, which runner, what it got wrong,
   and the shrunk reproducer (the first diverging runner per case is used
   as the shrinking predicate; the others are recorded unshrunk — the
   reproducer almost always reproduces them too). *)
type divergence = {
  div_iter : int;
  div_seed : int;
  div_runner : string;
  div_mismatches : Differ.mismatch list;
  div_shrunk : Gen.case option;
  div_why : string list;
      (** per mismatched tuple: the reference evaluator's derivation chain
          (missing rows) or the statement that no proof exists (extra
          rows) — the reproducer explains itself *)
}

(* The self-explaining half of a reproducer. Missing tuples (the reference
   derived them, the engine did not) get the reference's full rule chain
   down to EDB leaves; extra tuples (the engine invented them) get the
   proof-search verdict against the reference database. Computed from the
   naive oracle only, so the text is engine-independent. *)
let why_of_case (c : Gen.case) (ms : Differ.mismatch list) =
  match Recstep.Naive.run ~edb:c.Gen.edb c.Gen.program with
  | exception _ -> []
  | _, rows_of -> (
      match Recstep.Analyzer.analyze c.Gen.program with
      | exception _ -> []
      | an ->
          let edbs = an.Recstep.Analyzer.edbs in
          let rows p =
            if List.mem p edbs then Option.value ~default:[] (List.assoc_opt p c.Gen.edb)
            else rows_of p
          in
          let cap = 2 in
          let take l = List.filteri (fun i _ -> i < cap) l in
          let explain pred row =
            match Recstep.Explain.explain ~an ~rows pred row with
            | Recstep.Explain.Explained n ->
                Printf.sprintf "reference derivation:\n%s" (Recstep.Explain.render n)
            | o -> Recstep.Explain.outcome_to_string ~pred ~row o
          in
          List.concat_map
            (fun (m : Differ.mismatch) ->
              List.map
                (fun row ->
                  Printf.sprintf "missing %s: %s"
                    (Recstep.Explain.fact_to_string m.Differ.pred row)
                    (explain m.Differ.pred row))
                (take m.Differ.missing)
              @ List.map
                  (fun row ->
                    Printf.sprintf "extra %s: %s"
                      (Recstep.Explain.fact_to_string m.Differ.pred row)
                      (explain m.Differ.pred row))
                  (take m.Differ.extra))
            ms)

type failure = { fail_iter : int; fail_seed : int; fail_runner : string; fail_msg : string }

type report = {
  seed : int;
  iters : int;
  n_runners : int;
  cases : int;  (** = iters *)
  invalid : int;  (** cases the oracle rejected; never counted as runs *)
  runs_total : int;  (** = (cases - invalid) * n_runners *)
  runs_ok : int;
  runs_skipped : int;
  runs_diverged : int;
  runs_failed : int;
  divergences : divergence list;
  failures : failure list;
}

let case_seed ~seed i = (seed * 1_000_003) + i

let run ?(log = fun (_ : string) -> ()) ?(shrink = true) ?runners ~seed ~iters () =
  let runners = match runners with Some rs -> rs | None -> Differ.all_runners () in
  let n_runners = List.length runners in
  let invalid = ref 0 in
  let ok = ref 0 and skipped = ref 0 and diverged = ref 0 and failed = ref 0 in
  let total = ref 0 in
  let divergences = ref [] and failures = ref [] in
  for i = 0 to iters - 1 do
    let cseed = case_seed ~seed i in
    let case = Gen.gen_case ~seed:cseed in
    match Differ.oracle_of_case case with
    | exception _ -> incr invalid
    | oracle ->
        let shrunk_this_case = ref false in
        List.iter
          (fun (r : Differ.runner) ->
            incr total;
            match r.Differ.run case oracle with
            | Differ.Agree -> incr ok
            | Differ.Skipped _ -> incr skipped
            | Differ.Failed m ->
                incr failed;
                log (Printf.sprintf "case %d (seed %d): %s FAILED: %s" i cseed r.Differ.rname m);
                failures :=
                  { fail_iter = i; fail_seed = cseed; fail_runner = r.Differ.rname; fail_msg = m }
                  :: !failures
            | Differ.Diverged ms ->
                incr diverged;
                log
                  (Printf.sprintf "case %d (seed %d): %s DIVERGED on %s" i cseed r.Differ.rname
                     (String.concat ", " (List.map (fun m -> m.Differ.pred) ms)));
                let div_shrunk =
                  if shrink && not !shrunk_this_case then begin
                    shrunk_this_case := true;
                    let minimal = Shrink.minimize ~check:(Differ.diverges r) case in
                    let rules, tuples = Gen.size minimal in
                    log (Printf.sprintf "  shrunk to %d rules, %d tuples" rules tuples);
                    Some minimal
                  end
                  else None
                in
                (* the why-chains describe the dumped reproducer: re-diff the
                   shrunk case for its own mismatches when we have one *)
                let div_why =
                  match div_shrunk with
                  | Some minimal -> (
                      match
                        let o = Differ.oracle_of_case minimal in
                        r.Differ.run minimal o
                      with
                      | Differ.Diverged ms' -> why_of_case minimal ms'
                      | _ | (exception _) -> why_of_case case ms)
                  | None -> why_of_case case ms
                in
                List.iter (fun w -> log ("  why: " ^ w)) div_why;
                divergences :=
                  {
                    div_iter = i;
                    div_seed = cseed;
                    div_runner = r.Differ.rname;
                    div_mismatches = ms;
                    div_shrunk;
                    div_why;
                  }
                  :: !divergences)
          runners
  done;
  {
    seed;
    iters;
    n_runners;
    cases = iters;
    invalid = !invalid;
    runs_total = !total;
    runs_ok = !ok;
    runs_skipped = !skipped;
    runs_diverged = !diverged;
    runs_failed = !failed;
    divergences = List.rev !divergences;
    failures = List.rev !failures;
  }

(* --- reproducer dumping ------------------------------------------------- *)

(* Writes case<iter>.dl plus one .tsv per EDB into [dir]; the .dl header
   says how to replay it and, when [why] chains are given, what diverged and
   how the reference derives it — the reproducer explains itself. Returns
   the .dl path. *)
let dump_case ?(why = []) ~dir ~tag (c : Gen.case) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base = Filename.concat dir (Printf.sprintf "case%s" tag) in
  let facts =
    List.map (fun (n, _) -> Printf.sprintf "--fact %s=%s.%s.tsv" n base n) c.Gen.edb
  in
  let dl = base ^ ".dl" in
  let oc = open_out dl in
  Printf.fprintf oc "%% rs_fuzz reproducer (case seed %d)\n" c.Gen.case_seed;
  Printf.fprintf oc "%% replay: recstep run %s %s\n" dl (String.concat " " facts);
  List.iter
    (fun w ->
      List.iter
        (fun line -> if line <> "" then Printf.fprintf oc "%% why: %s\n" line)
        (String.split_on_char '\n' w))
    why;
  output_string oc (Gen.case_to_source c);
  close_out oc;
  List.iter
    (fun (n, rows) ->
      let oc = open_out (Printf.sprintf "%s.%s.tsv" base n) in
      output_string oc (Gen.rows_to_tsv rows);
      close_out oc)
    c.Gen.edb;
  dl

let dump_divergences ~dir (r : report) =
  List.filter_map
    (fun d ->
      match d.div_shrunk with
      | None -> None
      | Some c -> Some (dump_case ~why:d.div_why ~dir ~tag:(string_of_int d.div_iter) c))
    r.divergences

(* --- JSON report -------------------------------------------------------- *)

let mismatch_json (m : Differ.mismatch) =
  let rows l = Json.List (List.map (fun r -> Json.List (List.map (fun v -> Json.Int v) r)) l) in
  Json.Obj
    [ ("pred", Json.String m.Differ.pred); ("missing", rows m.Differ.missing);
      ("extra", rows m.Differ.extra) ]

let report_json (r : report) =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("iters", Json.Int r.iters);
      ("runners", Json.Int r.n_runners);
      ("cases", Json.Int r.cases);
      ("invalid", Json.Int r.invalid);
      ( "runs",
        Json.Obj
          [
            ("total", Json.Int r.runs_total);
            ("ok", Json.Int r.runs_ok);
            ("skipped", Json.Int r.runs_skipped);
            ("diverged", Json.Int r.runs_diverged);
            ("failed", Json.Int r.runs_failed);
          ] );
      ( "divergences",
        Json.List
          (List.map
             (fun d ->
               let size =
                 match d.div_shrunk with
                 | Some c ->
                     let rules, tuples = Gen.size c in
                     [ ("shrunk_rules", Json.Int rules); ("shrunk_tuples", Json.Int tuples) ]
                 | None -> []
               in
               Json.Obj
                 ([
                    ("case", Json.Int d.div_iter);
                    ("seed", Json.Int d.div_seed);
                    ("runner", Json.String d.div_runner);
                    ("mismatches", Json.List (List.map mismatch_json d.div_mismatches));
                    ("why", Json.List (List.map (fun w -> Json.String w) d.div_why));
                  ]
                 @ size))
             r.divergences) );
      ( "failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("case", Json.Int f.fail_iter);
                   ("seed", Json.Int f.fail_seed);
                   ("runner", Json.String f.fail_runner);
                   ("error", Json.String f.fail_msg);
                 ])
             r.failures) );
    ]

let clean (r : report) = r.runs_diverged = 0 && r.runs_failed = 0
