(** Chaos campaign: fault plans composed with the differential fuzzer.

    Each case pairs a generated program ({!Gen}) with a fault plan and runs
    it through the full serving stack ({!Rs_service.Service}: admission,
    result cache, typed retry/degradation). The oracle ({!Recstep.Naive})
    is computed {e outside} the chaos scope; the service runs {e inside}
    {!Rs_chaos.Inject.with_plan}. Two identical submissions per case drive
    the result cache through the plan, with a deterministic typed EDB delta
    (one retract + one insert, derived from the case seed) registered
    between them — so every plan also crosses the store's atomic apply and
    the cache's warm-refresh path.

    The guarantee asserted per case — the PR's recovery contract:

    - every submission either returns exactly the rows of a from-scratch
      recompute against the store's state at its arrival (the pre-delta
      oracle for the first, the store's final contents for the second) or
      ends in a {e typed} rejection (oom / timeout / unsupported / fault /
      rejected); wrong rows or an escaped exception is a violation;
    - the delta's disposition is consistent: applied, normalized away, or
      rolled back by an injected {!Rs_chaos.Fault.Delta_abort} — and the
      store's version and rows must agree with whichever happened;
    - [Memtrack] live bytes return to the pre-case baseline (net of the
      store's own byte drift from a committed delta): a faulted run may not
      leak its working set, its indexes or its scratch state.

    Without an explicit plan the campaign cycles a builtin rotation that
    covers every fault class — recovered single faults, unrecoverable
    storms, a silent stall, a corrupted cache entry, an aborted delta, and
    the shard classes ([node_loss], [shuffle_drop]), whose cases run
    through the sharded executor (4 nodes) so the plans have probe points.
    Forcing [~plan:"dedup_drop:p=0.5"] is the harness's self-test: silent
    dedup corruption must produce violations (a campaign that stays green
    under it proves nothing). *)

type violation = {
  v_iter : int;
  v_seed : int;
  v_plan : string;
  v_msg : string;
  v_why : string list;
      (** for wrong-rows violations: per mismatched tuple (capped), the
          reference derivation chain the service lost or the no-proof
          verdict for a row it invented — computed against the EDB the
          submission actually ran on (post-delta store contents for the
          second submission). [[]] for non-row violations. *)
}

type case_result = {
  cr_iter : int;
  cr_seed : int;
  cr_plan : string;
  cr_fires : (Rs_chaos.Fault.cls * int) list;
  cr_outcomes : string list;  (** outcome label per submission *)
  cr_leak : int;  (** live bytes left behind by the case; must be 0 *)
  cr_ok : bool;  (** every submission correct or typed-rejected, no leak *)
}

type report = {
  seed : int;
  iters : int;
  plan : string option;  (** the forced plan, when the rotation was bypassed *)
  cases : int;
  invalid : int;  (** cases the oracle rejected; nothing was injected *)
  injected : (Rs_chaos.Fault.cls * int) list;  (** total fires by class *)
  outcomes : (string * int) list;  (** submission-outcome histogram *)
  recovered : int;
      (** cases where faults fired yet every submission was served correctly *)
  rejected_typed : int;  (** submissions that ended in a typed non-Done outcome *)
  leaks : int;  (** cases that left live bytes behind *)
  violations : violation list;
  case_results : case_result list;
}

val builtin_plans : string array
(** The default rotation, in plan syntax ({!Rs_chaos.Fault.plan_of_string}).
    [Mem] thresholds are relative to the pre-case live bytes. *)

val case_seed : seed:int -> int -> int
(** Same derivation as the fuzz campaign: case [i] of seed [s] is
    reproducible in isolation. *)

val run_case :
  iter:int ->
  cseed:int ->
  plan_str:string ->
  Gen.case ->
  Differ.oracle ->
  case_result * violation list
(** One case under one plan: oracle outside the chaos scope, two identical
    service submissions with the seed-derived delta between them inside it,
    version-consistency and leak checks afterwards. Exposed for the frozen
    chaos-corpus regression. *)

val run :
  ?log:(string -> unit) -> ?plan:string -> seed:int -> iters:int -> unit -> report
(** Runs [iters] cases. [plan] forces one plan string for every case
    instead of the builtin rotation. [log] receives one line per case. *)

val clean : report -> bool
(** No violations and no leaks — the campaign's pass/fail bit. *)

val report_json : report -> Rs_obs.Json.t
