module Ast = Recstep.Ast
module Ivm = Recstep.Ivm
module Naive = Recstep.Naive
module Delta = Rs_relation.Delta
module Rng = Rs_util.Rng
module Json = Rs_obs.Json

type divergence = {
  div_seed : int;
  div_version : int;  (* 0 = bootstrap, k = after the k-th delta *)
  div_pred : string;
  div_missing : int list list;
  div_extra : int list list;
}

type report = {
  seed : int;
  cases : int;
  invalid : int;
  versions : int;  (* deltas applied and checked across all cases *)
  ops : int;  (* total insert/retract operations streamed *)
  divergences : divergence list;
}

(* --- delta-stream generation -------------------------------------------- *)

(* Arities as the differ recovers them: a [.input] without an explicit
   arity parses as 0, the analyzer infers the real one from the rules. *)
let input_arities (program : Ast.program) =
  let an = lazy (Recstep.Analyzer.analyze program) in
  List.map
    (fun (name, arity) ->
      (name, if arity > 0 then arity else Recstep.Analyzer.arity (Lazy.force an) name))
    program.Ast.inputs

(* A random delta against the mirror's current contents: mostly inserts of
   small-domain rows, retracts split between rows that exist (real
   deletions) and rows that may not (the no-op edge case), plus an
   occasional retract-then-reinsert of a held row inside one delta — the
   flip-flop [normalize] must cancel. The mirror is updated set-level, in
   op order, exactly like [Edb_store.apply]. *)
let gen_delta rng arities mirror =
  let n_ops = 1 + Rng.int rng 6 in
  let ops = ref [] in
  for _ = 1 to n_ops do
    let rel, arity = List.nth arities (Rng.int rng (List.length arities)) in
    let tbl = Hashtbl.find mirror rel in
    let existing () =
      let rows = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
      match rows with
      | [] -> None
      | _ -> Some (List.nth (List.sort compare rows) (Rng.int rng (List.length rows)))
    in
    let random_row () = List.init arity (fun _ -> Rng.int rng 8) in
    let emit sign row =
      ops := (rel, { Delta.sign; row = Array.of_list row }) :: !ops;
      match sign with
      | Delta.Insert -> Hashtbl.replace tbl row ()
      | Delta.Retract -> Hashtbl.remove tbl row
    in
    let r = Rng.float rng 1.0 in
    if r < 0.45 then emit Delta.Insert (random_row ())
    else if r < 0.7 then (
      match existing () with
      | Some row -> emit Delta.Retract row
      | None -> emit Delta.Insert (random_row ()))
    else if r < 0.9 then emit Delta.Retract (random_row ())
    else
      (* flip-flop: retract then reinsert a held row within one delta *)
      match existing () with
      | Some row ->
          emit Delta.Retract row;
          emit Delta.Insert row
      | None -> emit Delta.Insert (random_row ())
  done;
  (* group the op stream per relation, preserving order *)
  List.fold_left
    (fun acc (rel, op) -> Delta.merge acc [ (rel, [ op ]) ])
    Delta.empty (List.rev !ops)

(* --- the oracle check ---------------------------------------------------- *)

let sorted rows = List.sort_uniq compare rows

(* Diff the maintained state against a from-scratch naive recompute on the
   mirrored EDB: every IDB, at one version. *)
let check_version ~cseed ~version ivm mirror_rows program =
  let idbs, rows_of = Naive.run ~edb:mirror_rows program in
  List.filter_map
    (fun pred ->
      let expect = sorted (rows_of pred) in
      let got = sorted (Ivm.rows ivm pred) in
      if expect = got then None
      else
        Some
          {
            div_seed = cseed;
            div_version = version;
            div_pred = pred;
            div_missing = List.filter (fun r -> not (List.mem r got)) expect;
            div_extra = List.filter (fun r -> not (List.mem r expect)) got;
          })
    idbs

let mirror_rows mirror arities =
  List.map
    (fun (rel, _) ->
      let tbl = Hashtbl.find mirror rel in
      (rel, List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])))
    arities

(* Stream [deltas] random updates through one case's IVM, checking every
   version against the naive oracle. Returns (versions, ops, divergences);
   raises nothing — an oracle rejection is reported by the caller. *)
let run_case ~cseed ~deltas (case : Gen.case) =
  let program = case.Gen.program in
  let arities = input_arities program in
  let mirror = Hashtbl.create 8 in
  List.iter
    (fun (rel, _) ->
      let tbl = Hashtbl.create 32 in
      let rows = try List.assoc rel case.Gen.edb with Not_found -> [] in
      List.iter (fun row -> Hashtbl.replace tbl row ()) rows;
      Hashtbl.add mirror rel tbl)
    arities;
  let ivm = Ivm.create ~edb:(mirror_rows mirror arities) program in
  let rng = Rng.create (cseed lxor 0x5eed) in
  let divs = ref (check_version ~cseed ~version:0 ivm (mirror_rows mirror arities) program) in
  let ops = ref 0 in
  let v = ref 0 in
  while !v < deltas && !divs = [] do
    incr v;
    let d = gen_delta rng arities mirror in
    ops := !ops + Delta.size d;
    ignore (Ivm.apply ivm d);
    divs := check_version ~cseed ~version:!v ivm (mirror_rows mirror arities) program
  done;
  (!v, !ops, !divs)

let case_seed ~seed i = (seed * 998_244_353) + i

let run ?(log = fun (_ : string) -> ()) ~seed ~iters ?(deltas = 8) () =
  let invalid = ref 0 and versions = ref 0 and ops = ref 0 in
  let divergences = ref [] in
  for i = 0 to iters - 1 do
    let cseed = case_seed ~seed i in
    let case = Gen.gen_case ~seed:cseed in
    match run_case ~cseed ~deltas case with
    | v, o, divs ->
        versions := !versions + v;
        ops := !ops + o;
        List.iter
          (fun d ->
            log
              (Printf.sprintf "case %d (seed %d): %s DIVERGED at version %d" i cseed d.div_pred
                 d.div_version))
          divs;
        divergences := !divergences @ divs
    | exception _ -> incr invalid
  done;
  {
    seed;
    cases = iters;
    invalid = !invalid;
    versions = !versions;
    ops = !ops;
    divergences = !divergences;
  }

let clean (r : report) = r.divergences = []

let report_json (r : report) =
  let rows l = Json.List (List.map (fun x -> Json.List (List.map (fun v -> Json.Int v) x)) l) in
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("cases", Json.Int r.cases);
      ("invalid", Json.Int r.invalid);
      ("versions", Json.Int r.versions);
      ("ops", Json.Int r.ops);
      ( "divergences",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("seed", Json.Int d.div_seed);
                   ("version", Json.Int d.div_version);
                   ("pred", Json.String d.div_pred);
                   ("missing", rows d.div_missing);
                   ("extra", rows d.div_extra);
                 ])
             r.divergences) );
    ]
