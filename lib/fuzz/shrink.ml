module Ast = Recstep.Ast

(* Greedy delta-debugging over a failing case, in the fixed order
   rules -> EDB tuples -> constants. Every accepted candidate strictly
   decreases the lexicographic measure (#rules, #tuples, sum of constants),
   so the loop terminates; every candidate is re-checked against the same
   failure predicate, so the minimized case provably still fails. *)

(* Dropping a rule can orphan a predicate: body atoms referencing an IDB
   that lost all its rules would turn it into an undeclared EDB and make
   the case invalid. Cascade-drop such rules and re-derive the outputs. *)
let normalize_program (p : Ast.program) =
  let declared = List.map fst p.Ast.inputs in
  let rec go rules =
    let heads = List.sort_uniq compare (List.map (fun r -> r.Ast.head_pred) rules) in
    let defined q = List.mem q declared || List.mem q heads in
    let rules' = List.filter (fun r -> List.for_all defined (Ast.rule_body_preds r)) rules in
    if List.length rules' = List.length rules then rules else go rules'
  in
  let rules = go p.Ast.rules in
  let heads = List.sort_uniq compare (List.map (fun r -> r.Ast.head_pred) rules) in
  { p with Ast.rules; outputs = List.filter (fun o -> List.mem o heads) p.Ast.outputs }

let with_program (c : Gen.case) p = { c with Gen.program = normalize_program p }

(* --- candidate streams -------------------------------------------------- *)

let drop_rule_candidates (c : Gen.case) =
  let rules = c.Gen.program.Ast.rules in
  List.init (List.length rules) (fun i ->
      with_program c
        { c.Gen.program with Ast.rules = List.filteri (fun j _ -> j <> i) rules })

(* For each EDB: first halves (fast for big relations), then singles. *)
let drop_tuple_candidates (c : Gen.case) =
  List.concat_map
    (fun (name, rows) ->
      let n = List.length rows in
      let without keep =
        {
          c with
          Gen.edb =
            List.map
              (fun (n', rows') -> if n' = name then (n', keep rows') else (n', rows'))
              c.Gen.edb;
        }
      in
      let halves =
        if n >= 4 then
          [
            without (fun rows -> List.filteri (fun i _ -> i >= n / 2) rows);
            without (fun rows -> List.filteri (fun i _ -> i < n / 2) rows);
          ]
        else []
      in
      let singles =
        List.init n (fun i -> without (List.filteri (fun j _ -> j <> i)))
      in
      halves @ singles)
    c.Gen.edb

(* Constant shrinking: rewrite one constant value [v] to [v'] everywhere —
   program text and EDB data together, so the case stays self-consistent. *)
let map_consts f (c : Gen.case) =
  let term = function Ast.Const k -> Ast.Const (f k) | t -> t in
  let rec expr = function
    | Ast.T t -> Ast.T (term t)
    | Ast.Add (a, b) -> Ast.Add (expr a, expr b)
    | Ast.Sub (a, b) -> Ast.Sub (expr a, expr b)
    | Ast.Mul (a, b) -> Ast.Mul (expr a, expr b)
  in
  let atom a = { a with Ast.args = List.map term a.Ast.args } in
  let literal = function
    | Ast.L_pos a -> Ast.L_pos (atom a)
    | Ast.L_neg a -> Ast.L_neg (atom a)
    | Ast.L_cmp (op, a, b) -> Ast.L_cmp (op, expr a, expr b)
  in
  let head_term = function
    | Ast.H_term t -> Ast.H_term (term t)
    | Ast.H_agg (op, e) -> Ast.H_agg (op, expr e)
  in
  let rule r =
    {
      r with
      Ast.head_args = List.map head_term r.Ast.head_args;
      body = List.map literal r.Ast.body;
    }
  in
  {
    c with
    Gen.program = { c.Gen.program with Ast.rules = List.map rule c.Gen.program.Ast.rules };
    edb = List.map (fun (n, rows) -> (n, List.map (List.map f) rows)) c.Gen.edb;
  }

(* Every constant occurrence in the case (program text and EDB data). *)
let iter_consts f (c : Gen.case) =
  let term = function Ast.Const k -> f k | _ -> () in
  let rec expr = function
    | Ast.T t -> term t
    | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) -> expr a; expr b
  in
  List.iter
    (fun r ->
      List.iter (function Ast.H_term t -> term t | Ast.H_agg (_, e) -> expr e) r.Ast.head_args;
      List.iter
        (function
          | Ast.L_pos a | Ast.L_neg a -> List.iter term a.Ast.args
          | Ast.L_cmp (_, a, b) -> expr a; expr b)
        r.Ast.body)
    c.Gen.program.Ast.rules;
  List.iter (fun (_, rows) -> List.iter (List.iter f) rows) c.Gen.edb

let constants c =
  let acc = ref [] in
  iter_consts (fun k -> acc := k :: !acc) c;
  List.sort_uniq compare !acc

let const_sum c =
  let s = ref 0 in
  iter_consts (fun k -> s := !s + max k 0) c;
  !s

let shrink_const_candidates (c : Gen.case) =
  List.concat_map
    (fun v ->
      if v <= 0 then []
      else
        (* straight to 0 first (largest jump), then one step down *)
        [
          map_consts (fun k -> if k = v then 0 else k) c;
          map_consts (fun k -> if k = v then v - 1 else k) c;
        ])
    (List.rev (constants c))

(* --- the greedy loop ---------------------------------------------------- *)

let measure c =
  let rules, tuples = Gen.size c in
  (rules, tuples, const_sum c)

let minimize ~check (c0 : Gen.case) =
  let accept cur cand = measure cand < measure cur && check cand in
  let rec pass cur candidates_of =
    match List.find_opt (accept cur) (candidates_of cur) with
    | Some better -> pass better candidates_of
    | None -> cur
  in
  (* a smaller EDB may unlock further rule drops (and vice versa); loop the
     whole chain to a fixpoint — the measure strictly decreases on every
     acceptance, so it ends *)
  let rec outer cur =
    let next =
      pass
        (pass (pass cur drop_rule_candidates) drop_tuple_candidates)
        shrink_const_candidates
    in
    if measure next < measure cur then outer next else next
  in
  outer c0
