module Json = Rs_obs.Json
module Fault = Rs_chaos.Fault
module Inject = Rs_chaos.Inject
module Memtrack = Rs_storage.Memtrack
module Relation = Rs_relation.Relation
module Delta = Rs_relation.Delta
module Naive = Recstep.Naive
module Service = Rs_service.Service
module Edb_store = Rs_service.Edb_store
module Result_cache = Rs_service.Result_cache

(* The builtin rotation: one plan string per case, cycled. Together the
   rotation exercises every fault class at least once over a handful of
   cases — recovered single faults, hard unrecoverable storms, a silent
   stall, a corrupted cache entry — so a default campaign proves both sides
   of the guarantee: faulted runs that recover must be byte-correct, runs
   that cannot recover must end in a typed rejection. Mem thresholds are
   relative to the pre-case live bytes (the harness absolutizes them). *)
let builtin_plans =
  [|
    "mem:p=1,threshold=1024,limit=1";
    "txn:p=1,limit=1";
    "crash:p=1,limit=1";
    "index:p=1,limit=1";
    "dedup:p=1,limit=1";
    "cache:p=1,limit=2";
    "stall:p=0.5,factor=64";
    "mem:p=1,threshold=512";
    "crash:p=1";
    "delta:p=1,limit=1";
    "delta:p=1";
    "txn:p=0.4,limit=2;crash:p=0.3,limit=1;index:p=0.5,limit=1;mem:p=1,threshold=8192,limit=1";
    (* shard classes: the harness runs these cases through the sharded
       executor (4 nodes), where the classes have probe points *)
    "node_loss:p=1,limit=1";
    "shuffle_drop:p=1,limit=2";
    "node_loss:p=1";
    (* kernel faults: compile-time fires demote rules to the interpreted
       path, exec-time fires degrade mid-fixpoint — both must recover with
       identical results *)
    "kernel:p=1,limit=1";
    "kernel:p=0.5";
  |]

type violation = {
  v_iter : int;
  v_seed : int;
  v_plan : string;
  v_msg : string;
  v_why : string list;
}

type case_result = {
  cr_iter : int;
  cr_seed : int;
  cr_plan : string;
  cr_fires : (Fault.cls * int) list;
  cr_outcomes : string list;  (** outcome label per submission *)
  cr_leak : int;  (** live bytes left behind by the case; must be 0 *)
  cr_ok : bool;  (** every submission correct or typed-rejected, no leak *)
}

type report = {
  seed : int;
  iters : int;
  plan : string option;  (** the forced plan, when the rotation was bypassed *)
  cases : int;
  invalid : int;
  injected : (Fault.cls * int) list;  (** total fires by class, fired-only *)
  outcomes : (string * int) list;  (** submission-outcome histogram *)
  recovered : int;
      (** cases where faults fired yet every submission was served correctly *)
  rejected_typed : int;  (** submissions that ended in a typed non-Done outcome *)
  leaks : int;  (** cases that left live bytes behind *)
  violations : violation list;
  case_results : case_result list;
}

let case_seed ~seed i = Fuzz.case_seed ~seed i

(* Mem thresholds in plan syntax are "bytes above the pre-case baseline":
   absolute live-byte levels would be meaningless across cases whose EDBs
   differ in size. *)
let absolutize ~baseline (plan : Fault.plan) =
  {
    plan with
    Fault.specs =
      List.map
        (fun (s : Fault.spec) ->
          if s.Fault.cls = Fault.Mem then
            { s with Fault.threshold = baseline + s.Fault.threshold }
          else s)
        plan.Fault.specs;
  }

let canon_rows rows = List.map Array.to_list rows

(* The deterministic mid-case delta: retract the first stored row of the
   first EDB relation and insert a fresh high-domain row. Derived from the
   case seed only, so a frozen case replays the same stream. *)
let case_delta ~cseed rels =
  match rels with
  | [] -> Delta.empty
  | (name, r) :: _ ->
      let arity = Relation.arity r in
      let retracts = match Relation.to_rows r with [] -> [] | row :: _ -> [ row ] in
      let inserts = [ Array.init arity (fun j -> 90 + ((cseed + j) mod 8)) ] in
      Delta.merge (Delta.of_retracts name retracts) (Delta.of_inserts name inserts)

(* One case: oracle outside the chaos scope, the service inside it — two
   identical submissions with a typed EDB delta between them (sub@0,
   delta@50, sub@100), driving the result cache and the view-maintenance
   path through the fault plan. Everything the case may legitimately keep
   alive (the EDB store) is allocated before the baseline is taken and the
   store's own byte drift from a committed delta is netted out, so any
   remaining live-byte delta after the service returns is a leak. *)
let run_case ~iter ~cseed ~plan_str (case : Gen.case) (oracle : Differ.oracle) =
  Memtrack.hard_reset ();
  Memtrack.set_budget None;
  let store = Edb_store.create () in
  let rels = Differ.relations_of_case case in
  Edb_store.define store "g" rels;
  let store_rows () =
    List.map
      (fun (n, r) ->
        (n, List.sort_uniq compare (List.map Array.to_list (Relation.to_rows r))))
      (Edb_store.lookup store "g")
  in
  let store_bytes () =
    List.fold_left (fun acc (_, r) -> acc + Relation.bytes r) 0 (Edb_store.lookup store "g")
  in
  let rows0 = store_rows () and bytes0 = store_bytes () in
  let baseline = Memtrack.live () in
  let plan =
    absolutize ~baseline (Fault.plan_of_string ~seed:cseed plan_str)
  in
  let has_stall =
    List.exists (fun (s : Fault.spec) -> s.Fault.cls = Fault.Stall) plan.Fault.specs
  in
  (* shard fault classes only have probe points inside the sharded
     executor: route those cases through it so the plan can fire *)
  let has_shard_fault =
    List.exists
      (fun (s : Fault.spec) ->
        s.Fault.cls = Fault.Node_loss || s.Fault.cls = Fault.Shuffle_drop)
      plan.Fault.specs
  in
  (* only the stall plan gets a deadline: a tight budget elsewhere would
     turn unrelated cases into timeouts and hide the class under test *)
  let deadline_vs = if has_stall then Some 0.05 else None in
  let sub ~at =
    Service.Submit
      (Service.submission ~at ?deadline_vs ~tenant:"chaos" ~edb:"g" case.Gen.program)
  in
  let config =
    Service.config ~workers:8 ~seed:1 ~shards:(if has_shard_fault then 4 else 1) ()
  in
  let ran =
    Inject.with_plan plan (fun () ->
        match
          Service.run ~config ~edb:store
            [
              sub ~at:0.0;
              Service.delta_event ~at:50.0 ~edb:"g" (case_delta ~cseed rels);
              sub ~at:100.0;
            ]
        with
        | report -> Ok (report, Inject.fires ())
        | exception e -> Error (Printexc.to_string e))
  in
  let leak = Memtrack.live () - baseline - (store_bytes () - bytes0) in
  match ran with
  | Error msg ->
      let v = Printf.sprintf "exception escaped the service: %s" msg in
      {
        cr_iter = iter;
        cr_seed = cseed;
        cr_plan = plan_str;
        cr_fires = [];
        cr_outcomes = [ "crash" ];
        cr_leak = leak;
        cr_ok = false;
      },
      [ { v_iter = iter; v_seed = cseed; v_plan = plan_str; v_msg = v; v_why = [] } ]
  | Ok (report, fires) ->
      let violations = ref [] in
      let note ?(why = []) fmt =
        Printf.ksprintf
          (fun m ->
            violations :=
              { v_iter = iter; v_seed = cseed; v_plan = plan_str; v_msg = m; v_why = why }
              :: !violations)
          fmt
      in
      (* Delta accounting: exactly one delta event was registered, so it was
         either committed, normalized away, or atomically rolled back by an
         injected fault — and the store's version must say which. *)
      let applied = Service.counter report "delta_applied"
      and noop = Service.counter report "delta_noop"
      and aborted = Service.counter report "delta_fault" in
      if applied + noop + aborted <> 1 then
        note "delta accounting off: applied=%d noop=%d fault=%d" applied noop aborted;
      let version = Edb_store.version store "g" in
      if version <> (if applied = 1 then 2 else 1) then
        note "store version %d inconsistent with delta disposition (applied=%d)" version
          applied;
      if aborted = 1 && store_rows () <> rows0 then
        note "aborted delta mutated the store";
      (* Expected rows: the first submission settles before the delta and
         answers against the original EDB (the oracle); the second answers
         against whatever the store holds after the delta's disposition —
         a from-scratch naive recompute on the final store contents. The
         post-delta check is what holds the refreshed cache and the store
         to the same version. *)
      let post_rows_of =
        lazy
          (match Naive.run ~edb:(store_rows ()) case.Gen.program with
          | _, rows_of -> rows_of
          | exception _ ->
              note "oracle rejected the post-delta EDB";
              fun _ -> [])
      in
      List.iter
        (fun (c : Service.completion) ->
          match c.Service.c_outcome with
          | Service.Done value ->
              let expect_of =
                if c.Service.c_at < 50.0 then oracle.Differ.rows_of
                else Lazy.force post_rows_of
              in
              List.iter
                (fun (name, rows) ->
                  let got = canon_rows rows in
                  let expect = expect_of name in
                  if got <> expect then begin
                    (* explain the divergence from the reference: chains for
                       rows the service lost, no-proof verdicts for rows it
                       invented — against the EDB the submission ran on *)
                    let missing = List.filter (fun r -> not (List.mem r got)) expect
                    and extra = List.filter (fun r -> not (List.mem r expect)) got in
                    let why_case =
                      if c.Service.c_at < 50.0 then case
                      else { case with Gen.edb = store_rows () }
                    in
                    let why =
                      Fuzz.why_of_case why_case
                        [ { Differ.pred = name; missing; extra } ]
                    in
                    note ~why "%s: wrong rows for %s (%d got, %d expected)"
                      c.Service.c_id name (List.length got) (List.length expect)
                  end)
                value
          | Service.Oom | Service.Timeout | Service.Unsupported _
          | Service.Fault _ | Service.Rejected _ ->
              (* a typed rejection honors the contract *) ())
        report.Service.completions;
      if leak <> 0 then note "case left %d live bytes behind" leak;
      let outcomes =
        List.map
          (fun (c : Service.completion) -> Service.outcome_label c.Service.c_outcome)
          report.Service.completions
      in
      ( {
          cr_iter = iter;
          cr_seed = cseed;
          cr_plan = plan_str;
          cr_fires = fires;
          cr_outcomes = outcomes;
          cr_leak = leak;
          cr_ok = !violations = [];
        },
        List.rev !violations )

let run ?(log = fun (_ : string) -> ()) ?plan ~seed ~iters () =
  let invalid = ref 0 in
  let results = ref [] and violations = ref [] in
  for i = 0 to iters - 1 do
    let cseed = case_seed ~seed i in
    let case = Gen.gen_case ~seed:cseed in
    match Differ.oracle_of_case case with
    | exception _ -> incr invalid
    | oracle ->
        let plan_str =
          match plan with
          | Some p -> p
          | None -> builtin_plans.(i mod Array.length builtin_plans)
        in
        let cr, vs = run_case ~iter:i ~cseed ~plan_str case oracle in
        log
          (Printf.sprintf "case %d (seed %d) plan=%s fires=[%s] outcomes=[%s]%s" i cseed
             plan_str
             (String.concat ","
                (List.map
                   (fun (c, n) -> Printf.sprintf "%s:%d" (Fault.cls_name c) n)
                   cr.cr_fires))
             (String.concat "," cr.cr_outcomes)
             (if cr.cr_ok then "" else " VIOLATION"));
        results := cr :: !results;
        violations := List.rev_append vs !violations
  done;
  let results = List.rev !results in
  let injected =
    List.filter_map
      (fun cls ->
        let n =
          List.fold_left
            (fun acc cr ->
              acc + Option.value ~default:0 (List.assoc_opt cls cr.cr_fires))
            0 results
        in
        if n > 0 then Some (cls, n) else None)
      Fault.all_classes
  in
  let outcomes =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun cr ->
        List.iter
          (fun o ->
            Hashtbl.replace tbl o (1 + Option.value ~default:0 (Hashtbl.find_opt tbl o)))
          cr.cr_outcomes)
      results;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let recovered =
    List.length
      (List.filter
         (fun cr ->
           cr.cr_ok && cr.cr_fires <> []
           && List.for_all (fun o -> o = "done") cr.cr_outcomes)
         results)
  in
  let rejected_typed =
    List.fold_left
      (fun acc cr ->
        acc + List.length (List.filter (fun o -> o <> "done" && o <> "crash") cr.cr_outcomes))
      0 results
  in
  let leaks = List.length (List.filter (fun cr -> cr.cr_leak <> 0) results) in
  {
    seed;
    iters;
    plan;
    cases = iters;
    invalid = !invalid;
    injected;
    outcomes;
    recovered;
    rejected_typed;
    leaks;
    violations = List.rev !violations;
    case_results = results;
  }

let clean r = r.violations = [] && r.leaks = 0

let report_json (r : report) =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("iters", Json.Int r.iters);
      ("plan", match r.plan with Some p -> Json.String p | None -> Json.Null);
      ("cases", Json.Int r.cases);
      ("invalid", Json.Int r.invalid);
      ("fault_classes", Json.Int (List.length r.injected));
      ( "injected",
        Json.Obj (List.map (fun (c, n) -> (Fault.cls_name c, Json.Int n)) r.injected) );
      ("outcomes", Json.Obj (List.map (fun (o, n) -> (o, Json.Int n)) r.outcomes));
      ("recovered", Json.Int r.recovered);
      ("rejected_typed", Json.Int r.rejected_typed);
      ("leaks", Json.Int r.leaks);
      ( "violations",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("case", Json.Int v.v_iter);
                   ("seed", Json.Int v.v_seed);
                   ("plan", Json.String v.v_plan);
                   ("error", Json.String v.v_msg);
                   ("why", Json.List (List.map (fun w -> Json.String w) v.v_why));
                 ])
             r.violations) );
      ("clean", Json.Bool (clean r));
      ( "cases_detail",
        Json.List
          (List.map
             (fun cr ->
               Json.Obj
                 [
                   ("case", Json.Int cr.cr_iter);
                   ("seed", Json.Int cr.cr_seed);
                   ("plan", Json.String cr.cr_plan);
                   ( "fires",
                     Json.Obj
                       (List.map
                          (fun (c, n) -> (Fault.cls_name c, Json.Int n))
                          cr.cr_fires) );
                   ( "outcomes",
                     Json.List (List.map (fun o -> Json.String o) cr.cr_outcomes) );
                   ("leak", Json.Int cr.cr_leak);
                   ("ok", Json.Bool cr.cr_ok);
                 ])
             r.case_results) );
    ]
