module Ast = Recstep.Ast
module Rng = Rs_util.Rng

type case = {
  case_seed : int;
  program : Ast.program;
  edb : (string * int list list) list;  (* one entry per declared input *)
}

(* --- helpers ------------------------------------------------------------ *)

let pick rng l = List.nth l (Rng.int rng (List.length l))

let var_pool = [ "x"; "y"; "z"; "w" ]

let gen_rows rng ~arity ~dom ~n =
  List.init n (fun _ -> List.init arity (fun _ -> Rng.int rng dom))

(* --- the TC template ----------------------------------------------------
   A quarter of the corpus is transitive closure over a generated graph:
   the shape every engine fragment accepts (all-binary chains for Graspan,
   arity <= 2 for bddbddb) and the one PBME collapses, so the bit-matrix
   kernels and the empty-delta path get steady coverage. The graph is
   sometimes two disconnected clusters — the disconnected-graph TC case of
   the empty-delta satellite. *)

let tc_template rng case_seed =
  let n = 3 + Rng.int rng 6 in
  let p = 0.15 +. Rng.float rng 0.35 in
  let split = if Rng.bool rng 0.5 then Some (1 + Rng.int rng (n - 1)) else None in
  let same_cluster u v =
    match split with None -> true | Some k -> u < k = (v < k)
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && same_cluster u v && Rng.bool rng p then edges := [ u; v ] :: !edges
    done
  done;
  let var v = Ast.Var v in
  let atom pred args = { Ast.pred; args } in
  let rule head_pred head_args body =
    { Ast.head_pred; head_args = List.map (fun t -> Ast.H_term t) head_args; body }
  in
  let base = rule "p0" [ var "x"; var "y" ] [ Ast.L_pos (atom "e0" [ var "x"; var "y" ]) ] in
  let step =
    if Rng.bool rng 0.4 then
      (* non-linear: two recursive occurrences *)
      rule "p0" [ var "x"; var "y" ]
        [
          Ast.L_pos (atom "p0" [ var "x"; var "z" ]);
          Ast.L_pos (atom "p0" [ var "z"; var "y" ]);
        ]
    else
      rule "p0" [ var "x"; var "y" ]
        [
          Ast.L_pos (atom "p0" [ var "x"; var "z" ]);
          Ast.L_pos (atom "e0" [ var "z"; var "y" ]);
        ]
  in
  let extra =
    (* a negation stratum on top: shrinks every fragment but RecStep/Souffle *)
    if Rng.bool rng 0.4 then
      [
        rule "p1" [ var "x"; var "y" ]
          [
            Ast.L_pos (atom "p0" [ var "x"; var "y" ]);
            Ast.L_neg (atom "e0" [ var "x"; var "y" ]);
          ];
      ]
    else []
  in
  let outputs = "p0" :: (if extra = [] then [] else [ "p1" ]) in
  {
    case_seed;
    program =
      { Ast.rules = (base :: step :: extra); inputs = [ ("e0", 2) ]; outputs };
    edb = [ ("e0", !edges) ];
  }

(* --- the general random program ----------------------------------------
   Stratified Datalog, safety-respecting by construction:

   - 1-2 EDBs (e0 always binary; e1 arity 1-3) over a small constant domain;
   - 1-4 IDBs p0.. each assigned a layer; rule bodies draw positive atoms
     from EDBs and IDBs of a layer <= their own (same layer = linear,
     non-linear or mutual recursion), negated atoms only from EDBs and
     strictly lower layers (stratified by construction), head / negation /
     comparison variables only from positive-atom bindings (safe by
     construction);
   - occasional duplicate rules, constants and wildcards in atom positions,
     comparisons with arithmetic. *)

let gen_pos_atom rng ~preds =
  let name, arity = pick rng preds in
  let args =
    List.init arity (fun _ ->
        let r = Rng.float rng 1.0 in
        if r < 0.70 then Ast.Var (pick rng var_pool)
        else if r < 0.85 then Ast.Const (Rng.int rng 8)
        else Ast.Wildcard)
  in
  { Ast.pred = name; args }

let bound_vars body =
  List.concat_map
    (function Ast.L_pos a -> Ast.atom_vars a | Ast.L_neg _ | Ast.L_cmp _ -> [])
    body
  |> List.sort_uniq compare

let gen_rule rng ~dom ~head ~head_arity ~pos_pool ~neg_pool =
  if Rng.bool rng 0.1 then
    (* a fact *)
    {
      Ast.head_pred = head;
      head_args = List.init head_arity (fun _ -> Ast.H_term (Ast.Const (Rng.int rng dom)));
      body = [];
    }
  else begin
    let n_pos = 1 + Rng.int rng 3 in
    let pos =
      List.init n_pos (fun i ->
          (* bias the first atom toward an EDB so bodies tend to be
             satisfiable; later atoms roam the whole pool *)
          let preds =
            if i = 0 && Rng.bool rng 0.6 then
              match List.filter (fun (n, _) -> n.[0] = 'e') pos_pool with
              | [] -> pos_pool
              | edbs -> edbs
            else pos_pool
          in
          Ast.L_pos (gen_pos_atom rng ~preds))
    in
    let bound = bound_vars pos in
    let bound_term rng =
      if bound <> [] && Rng.bool rng 0.75 then Ast.Var (pick rng bound)
      else Ast.Const (Rng.int rng dom)
    in
    let negs =
      if neg_pool <> [] && Rng.bool rng 0.3 then
        let name, arity = pick rng neg_pool in
        [ Ast.L_neg { Ast.pred = name; args = List.init arity (fun _ -> bound_term rng) } ]
      else []
    in
    let cmps =
      if bound <> [] && Rng.bool rng 0.35 then
        let v = Ast.T (Ast.Var (pick rng bound)) in
        let rhs =
          let r = Rng.float rng 1.0 in
          if r < 0.4 then Ast.T (Ast.Const (Rng.int rng dom))
          else if r < 0.8 then Ast.T (bound_term rng)
          else Ast.Add (Ast.T (bound_term rng), Ast.T (Ast.Const (Rng.int rng 3)))
        in
        let op = pick rng [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
        [ Ast.L_cmp (op, v, rhs) ]
      else []
    in
    let head_args =
      List.init head_arity (fun _ ->
          if bound <> [] && Rng.bool rng 0.85 then Ast.H_term (Ast.Var (pick rng bound))
          else Ast.H_term (Ast.Const (Rng.int rng dom)))
    in
    { Ast.head_pred = head; head_args; body = pos @ negs @ cmps }
  end

let random_program rng case_seed =
  let dom = 2 + Rng.int rng 6 in
  let n_edb = 1 + Rng.int rng 2 in
  let edbs =
    List.init n_edb (fun i ->
        let arity = if i = 0 then 2 else pick rng [ 1; 2; 2; 3 ] in
        (Printf.sprintf "e%d" i, arity))
  in
  let edb =
    List.map
      (fun (name, arity) -> (name, gen_rows rng ~arity ~dom ~n:(Rng.int rng 11)))
      edbs
  in
  let n_idb = 1 + Rng.int rng 4 in
  let idbs =
    let layer = ref 0 in
    List.init n_idb (fun i ->
        if i > 0 && not (Rng.bool rng 0.4) then incr layer;
        (Printf.sprintf "p%d" i, pick rng [ 1; 2; 2; 2; 3 ], !layer))
  in
  let rules =
    List.concat_map
      (fun (name, arity, layer) ->
        let pos_pool =
          edbs @ List.filter_map (fun (n, a, l) -> if l <= layer then Some (n, a) else None) idbs
        in
        let neg_pool =
          edbs @ List.filter_map (fun (n, a, l) -> if l < layer then Some (n, a) else None) idbs
        in
        let n_rules = 1 + Rng.int rng 3 in
        let rs =
          List.init n_rules (fun _ ->
              gen_rule rng ~dom ~head:name ~head_arity:arity ~pos_pool ~neg_pool)
        in
        (* duplicate-identical-rule coverage *)
        if Rng.bool rng 0.15 then rs @ [ List.hd rs ] else rs)
      idbs
  in
  {
    case_seed;
    program =
      { Ast.rules; inputs = edbs; outputs = List.map (fun (n, _, _) -> n) idbs };
    edb;
  }

let gen_case ~seed =
  let rng = Rng.create seed in
  if Rng.bool rng 0.25 then tc_template rng seed else random_program rng seed

(* --- reproducer printing ------------------------------------------------ *)

(* [Ast.rule_to_string] prints facts as "p(1) :- ." which does not reparse;
   reproducers must round-trip through the frontend. *)
let rule_to_source (r : Ast.rule) =
  if r.Ast.body = [] then
    Printf.sprintf "%s(%s)." r.Ast.head_pred
      (String.concat ", " (List.map Ast.head_term_to_string r.Ast.head_args))
  else Ast.rule_to_string r

let case_to_source c =
  let b = Buffer.create 256 in
  List.iter
    (fun (n, arity) ->
      (* explicit arity, so the printed case reparses with the declared
         schema even for an input no rule happens to mention *)
      if arity > 0 then Buffer.add_string b (Printf.sprintf ".input %s %d\n" n arity)
      else Buffer.add_string b (Printf.sprintf ".input %s\n" n))
    c.program.Ast.inputs;
  List.iter (fun r -> Buffer.add_string b (rule_to_source r ^ "\n")) c.program.Ast.rules;
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf ".output %s\n" n))
    c.program.Ast.outputs;
  Buffer.contents b

let rows_to_tsv rows =
  String.concat "" (List.map (fun r -> String.concat "\t" (List.map string_of_int r) ^ "\n") rows)

let size c =
  ( List.length c.program.Ast.rules,
    List.fold_left (fun acc (_, rows) -> acc + List.length rows) 0 c.edb )
