(** Delta-sequence fuzzing: incremental maintenance vs recompute.

    Where {!Fuzz} diffs engines on a single evaluation, this mode diffs
    {e maintenance over time}: each generated case gets a random stream of
    typed insert/retract deltas ({!Rs_relation.Delta.t}), applied through
    the counting/DRed IVM ({!Recstep.Ivm}), and at {e every} version the
    maintained IDB state is compared against a from-scratch naive recompute
    on a set-level mirror of the EDB. The streams deliberately cover the
    retraction edge cases: retracting absent rows, retract-then-reinsert of
    a held row within one delta, and deletions that empty a relation.
    Deterministic per seed — the CI smoke pins one. *)

type divergence = {
  div_seed : int;  (** the case seed, for replay *)
  div_version : int;  (** 0 = bootstrap, k = after the k-th delta *)
  div_pred : string;
  div_missing : int list list;  (** oracle rows the IVM lost *)
  div_extra : int list list;  (** IVM rows the oracle refutes *)
}

type report = {
  seed : int;
  cases : int;
  invalid : int;  (** cases the naive oracle rejected at bootstrap *)
  versions : int;  (** deltas applied and checked, across all cases *)
  ops : int;  (** total insert/retract operations streamed *)
  divergences : divergence list;
}

val case_seed : seed:int -> int -> int
(** The derived per-case seed (the {!Gen.gen_case} input) for iteration
    [i]. *)

val run_case :
  cseed:int -> deltas:int -> Gen.case -> int * int * divergence list
(** Stream [deltas] random updates through one case, checking every version;
    returns (versions checked, ops streamed, divergences). Stops at the
    first diverging version. *)

val run :
  ?log:(string -> unit) -> seed:int -> iters:int -> ?deltas:int -> unit -> report
(** [iters] cases, [deltas] (default 8) versions each. *)

val clean : report -> bool

val report_json : report -> Rs_obs.Json.t
