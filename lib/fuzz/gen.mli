(** Seeded random-program generator for the differential fuzzer.

    Programs are stratified Datalog with negation and linear / non-linear /
    mutual recursion over generated EDBs, safety-respecting and stratified
    {e by construction}: head, negation and comparison variables are drawn
    only from positive-atom bindings, and negated predicates only from EDBs
    or strictly lower layers. A quarter of the corpus is a transitive-closure
    template (sometimes over a disconnected graph) — the shape every engine
    fragment accepts and PBME collapses. *)

type case = {
  case_seed : int;
  program : Recstep.Ast.program;
  edb : (string * int list list) list;  (** one entry per declared input *)
}

val gen_case : seed:int -> case
(** Deterministic: equal seeds yield equal cases. *)

val case_to_source : case -> string
(** Runnable [.dl] text (inputs, rules, outputs) that round-trips through
    the frontend — facts are printed as ["p(1)."], not the
    non-reparsable [Ast.rule_to_string] form. *)

val rows_to_tsv : int list list -> string
(** TSV text for one EDB relation, one row per line. *)

val size : case -> int * int
(** (rules, total EDB tuples) — the shrinker's progress measure. *)
