(** The fuzz campaign driver: generate, diff, shrink, report.

    [run] draws [iters] seeded cases, diffs each across every runner
    (baseline engines + toggle matrix, unless a subset is given), shrinks
    the first diverging runner's case to a minimal reproducer, and returns
    the aggregate {!report}. The counters satisfy
    [runs_total = (cases - invalid) * n_runners] and
    [runs_total = runs_ok + runs_skipped + runs_diverged + runs_failed] —
    the identities the CI smoke asserts. *)

type divergence = {
  div_iter : int;
  div_seed : int;
  div_runner : string;
  div_mismatches : Differ.mismatch list;
  div_shrunk : Gen.case option;
      (** minimal reproducer; [None] for runners after the first diverging
          one on the same case (only the first is shrunk) *)
  div_why : string list;
      (** the offending rule chains, from the naive reference evaluator:
          for each mismatched tuple (capped per mismatch), either the full
          derivation the engine missed — rendered by {!Recstep.Explain} down
          to EDB leaves — or the verdict that no proof exists for a tuple it
          invented. Describes the shrunk reproducer when there is one. *)
}

type failure = { fail_iter : int; fail_seed : int; fail_runner : string; fail_msg : string }

type report = {
  seed : int;
  iters : int;
  n_runners : int;
  cases : int;
  invalid : int;
  runs_total : int;
  runs_ok : int;
  runs_skipped : int;
  runs_diverged : int;
  runs_failed : int;
  divergences : divergence list;
  failures : failure list;
}

val case_seed : seed:int -> int -> int
(** The derived per-case seed ([Gen.gen_case] input) for iteration [i]. *)

val run :
  ?log:(string -> unit) ->
  ?shrink:bool ->
  ?runners:Differ.runner list ->
  seed:int ->
  iters:int ->
  unit ->
  report

val dump_case : ?why:string list -> dir:string -> tag:string -> Gen.case -> string
(** Write [case<tag>.dl] plus one [.tsv] per EDB under [dir] (created if
    missing); the [.dl] header comments carry the replay command line and,
    with [why], one [% why:] line per chain line — a reproducer that states
    the offending rule chain instead of a bare diff. Returns the [.dl]
    path. *)

val why_of_case : Gen.case -> Differ.mismatch list -> string list
(** The self-explaining text for a diverging case: per mismatched tuple
    (capped), the reference derivation chain (missing) or the no-proof
    verdict (extra). [[]] if the reference evaluator rejects the case. *)

val dump_divergences : dir:string -> report -> string list
(** Dump every shrunk reproducer; returns the [.dl] paths. *)

val report_json : report -> Rs_obs.Json.t

val clean : report -> bool
(** No divergences and no failures. *)
