(** Differential driver: one case, many engine configurations, one oracle.

    Each {!runner} evaluates a generated case and diffs every IDB's
    canonical rows against the naive reference evaluator
    ({!Recstep.Naive}). Runners cover the seven registry engines (via
    {!Rs_engines.Engine_intf.run_guarded}) and the RecStep interpreter
    pinned to every point of the optimization-toggle matrix
    (persistent_indexes x dsd x pbme x dedup backend x compiled kernels x
    shards ∈ {1, 4} — 96 configurations; the sharded points run
    {!Rs_shard.Shard_exec}).
    Programs outside a runner's fragment are {!Skipped}; any crash, OOM or
    timeout is {!Failed} (cases are tiny — those are bugs, not limits). *)

type mismatch = {
  pred : string;
  missing : int list list;  (** oracle rows the runner lost *)
  extra : int list list;  (** runner rows the oracle never derived *)
}

type verdict =
  | Agree
  | Skipped of string
  | Diverged of mismatch list
  | Failed of string

type oracle = { idbs : string list; rows_of : string -> int list list }

type runner = { rname : string; run : Gen.case -> oracle -> verdict }

val oracle_of_case : Gen.case -> oracle
(** Runs the naive evaluator; raises whatever it raises (analysis errors,
    unsupported features) — callers treat that as an invalid case. *)

val relations_of_case : Gen.case -> (string * Rs_relation.Relation.t) list
(** The case's EDB as accounted relations, one per declared input (arities
    recovered from the analyzer when the declaration omits them). Shared
    with the chaos harness, which loads them into an {!Rs_service.Edb_store}. *)

val engine_runner : Rs_engines.Engine_intf.engine -> runner

type toggles = {
  persistent_indexes : bool;
  dsd : Recstep.Interpreter.dsd_mode;
  pbme : bool;
  fast_dedup : bool;
  kernels : bool;  (** compiled rule kernels ({!Rs_exec.Kernel}) *)
  shards : int;  (** 1 = the stock interpreter; > 1 = {!Rs_shard.Shard_exec} *)
}

val toggle_matrix : toggles list
(** The full 2 x 3 x 2 x 2 x 2 x 2 cross product (shards ∈ [{1; 4}]) —
    96 configurations. Sharded points skip aggregate programs (outside the
    shard fragment) and ignore [pbme]/[kernels], which have no shard-side
    analogue. *)

val toggle_label : toggles -> string

val toggle_runner : toggles -> runner

val all_runners : unit -> runner list
(** The registry engines (including stock RecStep) followed by the 96
    toggle-matrix configurations. *)

val diff_runner : runner -> Gen.case -> verdict
(** Convenience: build the oracle and run one runner; [Skipped] if the
    oracle itself rejects the case. *)

val diverges : runner -> Gen.case -> bool
(** The shrinker's check: does this runner still diverge on the case? *)
