module Ast = Recstep.Ast
module Interpreter = Recstep.Interpreter
module Naive = Recstep.Naive
module Relation = Rs_relation.Relation
module Pool = Rs_parallel.Pool
module Memtrack = Rs_storage.Memtrack
module Engine_intf = Rs_engines.Engine_intf
module Engines = Rs_engines.Engines

type mismatch = { pred : string; missing : int list list; extra : int list list }

type verdict =
  | Agree
  | Skipped of string  (** program outside the runner's fragment *)
  | Diverged of mismatch list
  | Failed of string  (** crash / simulated OOM / timeout — never expected *)

type oracle = { idbs : string list; rows_of : string -> int list list }

(* A runner is one configuration under test: a baseline engine, or the
   RecStep interpreter pinned to one point of the optimization-toggle
   matrix. Given a case and the oracle's verdicts it diffs every IDB. *)
type runner = { rname : string; run : Gen.case -> oracle -> verdict }

let oracle_of_case (c : Gen.case) =
  let idbs, rows_of = Naive.run ~edb:c.Gen.edb c.Gen.program in
  { idbs; rows_of }

(* --- shared run plumbing ------------------------------------------------ *)

let relations_of_case (c : Gen.case) =
  (* an [.input] without an explicit arity parses as 0; recover it from the
     analyzer's inference over the rule bodies *)
  let an = lazy (Recstep.Analyzer.analyze c.Gen.program) in
  List.map
    (fun (name, arity) ->
      let arity =
        if arity > 0 then arity else Recstep.Analyzer.arity (Lazy.force an) name
      in
      let rows = try List.assoc name c.Gen.edb with Not_found -> [] in
      (name, Relation.of_rows ~name arity (List.map Array.of_list rows)))
    c.Gen.program.Ast.inputs

let canon rel =
  List.sort_uniq compare (List.map Array.to_list (Relation.sorted_distinct_rows rel))

let compare_results ~(oracle : oracle) results =
  let mismatches =
    List.filter_map
      (fun (p, got) ->
        let expect = oracle.rows_of p in
        if expect = got then None
        else
          Some
            {
              pred = p;
              missing = List.filter (fun r -> not (List.mem r got)) expect;
              extra = List.filter (fun r -> not (List.mem r expect)) got;
            })
      results
  in
  match mismatches with [] -> Agree | ms -> Diverged ms

(* Every run starts from a clean simulated machine: fuzz cases are tiny, so
   no memory budget and no deadline — an OOM or timeout here is a bug and
   is reported as [Failed], never silently skipped. The IDB relations are
   fetched inside the guard too, so a crash in [relation_of] surfaces as
   [Failed] instead of killing the whole campaign. *)
let guarded_run eval (case : Gen.case) (oracle : oracle) =
  Memtrack.hard_reset ();
  Memtrack.set_budget None;
  let pool = Pool.create ~workers:4 () in
  Pool.begin_run pool;
  let outcome =
    match
      Engine_intf.guard (fun () ->
          let edb = relations_of_case case in
          let fetch = eval pool edb case.Gen.program in
          List.map (fun p -> (p, fetch p)) oracle.idbs)
    with
    | o -> `Guarded o
    | exception e -> `Crashed (Printexc.to_string e)
  in
  match outcome with
  | `Guarded (Engine_intf.Done results) -> compare_results ~oracle results
  | `Guarded (Engine_intf.Unsupported m) -> Skipped m
  | `Guarded Engine_intf.Oom -> Failed "simulated OOM"
  | `Guarded Engine_intf.Timeout -> Failed "simulated timeout"
  | `Guarded (Engine_intf.Fault { cls; point }) ->
      Failed (Printf.sprintf "injected fault %s at %s" (Rs_chaos.Fault.cls_name cls) point)
  | `Crashed m -> Failed m

(* --- baseline engines --------------------------------------------------- *)

let engine_runner (module E : Engine_intf.S) =
  {
    rname = E.name;
    run =
      guarded_run (fun pool edb program ->
          let result = E.run ~pool ~edb program in
          fun p -> canon (result.Engine_intf.relation_of p));
  }

(* --- the optimization-toggle matrix ------------------------------------- *)

type toggles = {
  persistent_indexes : bool;
  dsd : Interpreter.dsd_mode;
  pbme : bool;
  fast_dedup : bool;
  kernels : bool;
  shards : int;  (** 1 = the stock interpreter; > 1 = {!Rs_shard.Shard_exec} *)
}

let toggle_matrix =
  List.concat_map
    (fun persistent_indexes ->
      List.concat_map
        (fun dsd ->
          List.concat_map
            (fun pbme ->
              List.concat_map
                (fun fast_dedup ->
                  List.concat_map
                    (fun kernels ->
                      List.map
                        (fun shards ->
                          { persistent_indexes; dsd; pbme; fast_dedup; kernels; shards })
                        [ 1; 4 ])
                    [ true; false ])
                [ true; false ])
            [ true; false ])
        [ Interpreter.Dsd_dynamic; Interpreter.Dsd_force_opsd; Interpreter.Dsd_force_tpsd ])
    [ true; false ]

let toggle_label t =
  Printf.sprintf "recstep[pi=%s,dsd=%s,pbme=%s,dedup=%s,kern=%s,shards=%d]"
    (if t.persistent_indexes then "on" else "off")
    (match t.dsd with
    | Interpreter.Dsd_dynamic -> "dyn"
    | Interpreter.Dsd_force_opsd -> "opsd"
    | Interpreter.Dsd_force_tpsd -> "tpsd")
    (if t.pbme then "on" else "off")
    (if t.fast_dedup then "fast" else "boxed")
    (if t.kernels then "on" else "off")
    t.shards

let toggle_runner t =
  {
    rname = toggle_label t;
    run =
      guarded_run (fun pool edb program ->
          if t.shards > 1 then (
            (* [pbme] and [kernels] have no shard-side analogue: each node
               always builds its fragments from scratch through the
               interpreted superstep loop, so those toggles only pick the
               matrix point's label apart. *)
            let options =
              Rs_shard.Shard_exec.options ~shards:t.shards
                ~persistent_indexes:t.persistent_indexes ~dsd:t.dsd
                ~fast_dedup:t.fast_dedup ()
            in
            match Rs_shard.Shard_exec.run ~options ~pool ~edb program with
            | result ->
                fun p -> canon (result.Rs_shard.Shard_exec.relation_of p)
            | exception Rs_shard.Shard_exec.Unsupported m ->
                Engine_intf.unsupported "%s" m)
          else
            let options =
              Interpreter.options ~persistent_indexes:t.persistent_indexes ~dsd:t.dsd
                ~pbme:t.pbme ~fast_dedup:t.fast_dedup ~compiled_kernels:t.kernels ()
            in
            let result = Interpreter.run ~options ~pool ~edb program in
            fun p -> canon (result.Interpreter.relation_of p));
  }

(* All runners: the baseline engines (including the stock RecStep
   configuration) plus the full 2 x 3 x 2 x 2 x 2 x 2 toggle matrix. *)
let all_runners () =
  List.map (fun (module E : Engine_intf.S) -> engine_runner (module E)) Engines.all
  @ List.map toggle_runner toggle_matrix

(* --- entry points ------------------------------------------------------- *)

let diff_runner (r : runner) (c : Gen.case) =
  match oracle_of_case c with
  | exception _ -> Skipped "oracle rejected the case"
  | oracle -> r.run c oracle

let diverges (r : runner) (c : Gen.case) =
  match diff_runner r c with Diverged _ -> true | _ -> false
