(** Virtual-time worker pool.

    QuickStep parallelizes each relational operator over a pool of worker
    threads. The evaluation container for this reproduction has a single CPU
    core, so instead of wall-clock multi-threading this pool executes task
    batches deterministically and *simulates* a [k]-worker machine: each
    task's measured cost is assigned to the least-loaded virtual worker
    (greedy LPT-style scheduling) and the batch advances the simulated clock
    by the resulting makespan. Time outside batches (serial sections) passes
    through at its real cost, occupying one virtual worker.

    All engines in this repository — RecStep and the reimplemented baselines —
    run on the same pool, so their reported times are comparable simulated
    wall-clocks of the same k-core machine, and CPU utilization is
    [busy / (k * elapsed)] exactly as in the paper's Figures 7 and 16. *)

type t

type stats = {
  workers : int;
  vtime : float;  (** simulated elapsed seconds since {!begin_run} *)
  busy : float;  (** total worker-busy seconds (batches + serial) *)
  wall : float;  (** real elapsed seconds *)
  utilization : float;  (** busy / (workers * vtime) *)
}

type event = {
  ev_vstart : float;  (** batch start on the simulated clock *)
  ev_vlen : float;  (** batch length on the simulated clock (makespan) *)
  ev_busy : float;  (** total task-seconds inside the batch *)
}
(** One parallel batch, for reconstructing utilization timelines. *)

val create : ?workers:int -> unit -> t
(** [create ~workers ()] makes a pool simulating [workers] cores (default 16,
    overridable with the [RECSTEP_WORKERS] environment variable). *)

val workers : t -> int

val set_workers : t -> int -> unit
(** Change the simulated core count (used by the core-scaling experiment).
    Takes effect from the next batch. *)

val begin_run : t -> unit
(** Resets the simulated clock and counters; call before a measured run. *)

val parallel_for : t -> ?chunks:int -> int -> int -> (int -> int -> unit) -> unit
(** [parallel_for t lo hi f] covers [\[lo, hi)] with [chunks] subranges
    (default [4 * workers]), invoking [f sub_lo sub_hi] for each and charging
    each subrange's measured cost to a virtual worker. *)

val add_serial : t -> float -> unit
(** [add_serial t s] advances the simulated clock by [s] seconds of modeled
    serial work (occupying one worker) without consuming real wall time.
    Used for modeled fixed costs: per-query dispatch overhead in the RDBMS
    backend, per-stage scheduling overhead in the BigDatalog-like engine. *)

val consumed : t -> float * float * float
(** [(real, sim, busy)] accumulated in batches since {!begin_run}. Diffing
    two snapshots brackets a section of work on this pool; the sharded
    executor uses this to re-account per-node work onto the coordinator's
    clock via {!absorb}. *)

val absorb : t -> real:float -> sim:float -> busy:float -> unit
(** [absorb t ~real ~sim ~busy] books one batch whose makespan was computed
    elsewhere: [real] wall seconds (already elapsed inside sub-domain pools)
    are moved off this pool's serial account and [sim] simulated seconds are
    charged in their place, with [busy] worker-busy seconds. The sharded
    coordinator uses this to charge each superstep at the slowest node's
    cost while counting every node's busy time. *)

val map_tasks : t -> (unit -> 'a) list -> 'a list
(** Runs heterogeneous tasks as one batch and returns their results in
    order. *)

val makespan : workers:int -> float list -> float
(** The scheduling kernel behind batch accounting: greedily assigns each
    duration (in list order) to the least-loaded of [workers] virtual
    workers — a binary min-heap of loads, O(log workers) per task — and
    returns the maximum worker load. Exposed for testing the scheduler
    against a reference implementation. *)

val vtime_now : t -> float
(** Current simulated clock (seconds since {!begin_run}). *)

val on_progress : t -> (float -> unit) -> unit
(** [on_progress t f] registers [f] to be called with the simulated clock
    after every batch — the hook used by memory/CPU samplers. *)

val clear_progress : t -> unit

val stats : t -> stats

val events : t -> event list
(** Batches of the current run, oldest first. *)
