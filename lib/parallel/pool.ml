type event = { ev_vstart : float; ev_vlen : float; ev_busy : float }

type stats = {
  workers : int;
  vtime : float;
  busy : float;
  wall : float;
  utilization : float;
}

type t = {
  mutable workers : int;
  mutable run_start : float;  (* wall clock at begin_run *)
  mutable real_in_batches : float;
  mutable sim_in_batches : float;
  mutable busy : float;
  mutable events : event list;  (* newest first *)
  mutable progress : (float -> unit) list;
  mutable depth : int;  (* nested batches run inline, charged to the enclosing chunk *)
}

let default_workers () =
  match Sys.getenv_opt "RECSTEP_WORKERS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 16)
  | None -> 16

let create ?workers () =
  let workers = match workers with Some w -> max 1 w | None -> default_workers () in
  {
    workers;
    run_start = Rs_util.Clock.now ();
    real_in_batches = 0.0;
    sim_in_batches = 0.0;
    busy = 0.0;
    events = [];
    progress = [];
    depth = 0;
  }

let workers t = t.workers

let set_workers t w = t.workers <- max 1 w

let begin_run t =
  t.run_start <- Rs_util.Clock.now ();
  t.real_in_batches <- 0.0;
  t.sim_in_batches <- 0.0;
  t.busy <- 0.0;
  t.events <- []

let vtime_now t =
  Rs_util.Clock.now () -. t.run_start -. t.real_in_batches +. t.sim_in_batches

let on_progress t f = t.progress <- f :: t.progress

let clear_progress t = t.progress <- []

(* Greedy assignment of task durations to the least-loaded virtual worker,
   via a binary min-heap of worker loads: O(log k) per task instead of the
   old O(k) linear scan. Which of several equally-loaded workers receives a
   task is irrelevant to the makespan (the load multiset evolves
   identically), so the heap reproduces the linear scan's makespan
   exactly. *)
let makespan ~workers durations =
  let k = max 1 workers in
  let heap = Array.make k 0.0 in
  (* all-zero loads satisfy the heap property *)
  let sift_down i =
    let i = ref i in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < k && heap.(l) < heap.(!smallest) then smallest := l;
      if r < k && heap.(r) < heap.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let tmp = heap.(!i) in
        heap.(!i) <- heap.(!smallest);
        heap.(!smallest) <- tmp;
        i := !smallest
      end
    done
  in
  List.iter
    (fun d ->
      heap.(0) <- heap.(0) +. d;
      sift_down 0)
    durations;
  Array.fold_left max 0.0 heap

let record_batch t durations =
  let makespan = makespan ~workers:t.workers durations in
  (* Chaos fault point: a stalled worker inflates this batch's simulated
     makespan by the plan's factor — the straggler from the paper's skewed
     workloads, reproduced on demand. Real wall time is untouched, so the
     stall only shows up where it should: on the virtual clock (and hence in
     deadline checks). *)
  let makespan = makespan *. Rs_chaos.Inject.stall_factor () in
  let real = List.fold_left ( +. ) 0.0 durations in
  (* The batch's real duration is already on the wall clock but not yet in
     [real_in_batches]; subtract it so the event starts where the batch
     started on the simulated clock. *)
  let vstart = vtime_now t -. real in
  t.real_in_batches <- t.real_in_batches +. real;
  t.sim_in_batches <- t.sim_in_batches +. makespan;
  t.busy <- t.busy +. real;
  t.events <- { ev_vstart = vstart; ev_vlen = makespan; ev_busy = real } :: t.events;
  let v = vtime_now t in
  List.iter (fun f -> f v) t.progress

let consumed t = (t.real_in_batches, t.sim_in_batches, t.busy)

let absorb t ~real ~sim ~busy =
  (* Like [record_batch] with the makespan computed elsewhere: [real] wall
     seconds already spent inside sub-domain batches are lifted off this
     pool's serial account and replaced by [sim] simulated seconds. No stall
     factor — faults fire inside the sub-domain pools where the work ran. *)
  if real > 0.0 || sim > 0.0 then begin
    let vstart = vtime_now t -. real in
    t.real_in_batches <- t.real_in_batches +. real;
    t.sim_in_batches <- t.sim_in_batches +. sim;
    t.busy <- t.busy +. busy;
    t.events <- { ev_vstart = vstart; ev_vlen = sim; ev_busy = busy } :: t.events;
    let v = vtime_now t in
    List.iter (fun f -> f v) t.progress
  end

let add_serial t s =
  if s > 0.0 then begin
    let vstart = vtime_now t in
    t.sim_in_batches <- t.sim_in_batches +. s;
    t.busy <- t.busy +. s;
    t.events <- { ev_vstart = vstart; ev_vlen = s; ev_busy = s } :: t.events
  end

let parallel_for t ?chunks lo hi f =
  if hi > lo then
    if t.depth > 0 then f lo hi
    else begin
      let n = hi - lo in
      let chunks = match chunks with Some c -> max 1 c | None -> 4 * t.workers in
      let chunks = min chunks n in
      let size = (n + chunks - 1) / chunks in
      let durations = ref [] in
      t.depth <- t.depth + 1;
      Fun.protect
        ~finally:(fun () -> t.depth <- t.depth - 1)
        (fun () ->
          let sub = ref lo in
          while !sub < hi do
            let sub_hi = min hi (!sub + size) in
            let t0 = Rs_util.Clock.now () in
            (* Chaos fault point: this worker chunk dies. The exception
               unwinds through the Fun.protect above, so the depth guard is
               restored and the pool stays usable for the retry. *)
            Rs_chaos.Inject.crash_point ~point:"pool.parallel_for";
            f !sub sub_hi;
            durations := (Rs_util.Clock.now () -. t0) :: !durations;
            sub := sub_hi
          done);
      record_batch t !durations
    end

let map_tasks t fs =
  if t.depth > 0 then List.map (fun f -> f ()) fs
  else begin
    t.depth <- t.depth + 1;
    let timed =
      Fun.protect
        ~finally:(fun () -> t.depth <- t.depth - 1)
        (fun () ->
          List.map
            (fun f ->
              let t0 = Rs_util.Clock.now () in
              Rs_chaos.Inject.crash_point ~point:"pool.map_tasks";
              let r = f () in
              (r, Rs_util.Clock.now () -. t0))
            fs)
    in
    record_batch t (List.map snd timed);
    List.map fst timed
  end

let stats t =
  let wall = Rs_util.Clock.now () -. t.run_start in
  let vtime = wall -. t.real_in_batches +. t.sim_in_batches in
  (* Serial time occupies one virtual worker. *)
  let serial = wall -. t.real_in_batches in
  let busy = t.busy +. serial in
  let utilization = if vtime > 0.0 then busy /. (float_of_int t.workers *. vtime) else 0.0 in
  { workers = t.workers; vtime; busy; wall; utilization }

let events t = List.rev t.events
