module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
type choice = Opsd | Tpsd

let default_alpha = 1.3

(* Self-contained set-difference micro-kernels for calibration (mirrors of
   Algorithms 4 and 5 without the executor plumbing). *)
let mini_opsd ~rdelta ~r =
  let keys = [| 0; 1 |] in
  let idx = Hash_index.build r keys in
  let kept = ref 0 in
  let key = Array.make 2 0 in
  for row = 0 to Relation.nrows rdelta - 1 do
    key.(0) <- Relation.get rdelta ~row ~col:0;
    key.(1) <- Relation.get rdelta ~row ~col:1;
    if not (Hash_index.mem idx key) then incr kept
  done;
  !kept

let mini_tpsd ~rdelta ~r =
  let keys = [| 0; 1 |] in
  let build, probe =
    if Relation.nrows r <= Relation.nrows rdelta then (r, rdelta) else (rdelta, r)
  in
  let hb = Hash_index.build build keys in
  let inter = Relation.create 2 in
  let key = Array.make 2 0 in
  for row = 0 to Relation.nrows probe - 1 do
    key.(0) <- Relation.get probe ~row ~col:0;
    key.(1) <- Relation.get probe ~row ~col:1;
    if Hash_index.mem hb key then Relation.push2 inter key.(0) key.(1)
  done;
  let hr = Hash_index.build inter keys in
  let kept = ref 0 in
  for row = 0 to Relation.nrows rdelta - 1 do
    key.(0) <- Relation.get rdelta ~row ~col:0;
    key.(1) <- Relation.get rdelta ~row ~col:1;
    if not (Hash_index.mem hr key) then incr kept
  done;
  !kept

(* Offline training (the paper's pre-computed α): run both set-difference
   translations on synthetic (R, Rδ) pairs of growing β = |R|/|Rδ| and fit α
   from the observed cost crossover β*, using the model's own threshold
   β* = 2α/(α-1)  ⇔  α = β*/(β*-2). *)
let calibrate pool () =
  ignore pool;
  let n_delta = 1 lsl 14 in
  let rng = Rs_util.Rng.create 0xca11b8 in
  let make_pair beta =
    let n_r = int_of_float (beta *. float_of_int n_delta) in
    let r = Relation.create 2 in
    for i = 0 to n_r - 1 do
      Relation.push2 r i (Rs_util.Rng.int rng 1_000_000)
    done;
    let rdelta = Relation.create 2 in
    for i = 0 to n_delta - 1 do
      if i land 1 = 0 && n_r > 0 then begin
        let row = Rs_util.Rng.int rng n_r in
        Relation.push2 rdelta (Relation.get r ~row ~col:0) (Relation.get r ~row ~col:1)
      end
      else Relation.push2 rdelta (1_000_000 + i) (Rs_util.Rng.int rng 1_000_000)
    done;
    (r, rdelta)
  in
  let diff_at beta =
    let r, rdelta = make_pair beta in
    let time f =
      let t0 = Rs_util.Clock.now () in
      ignore (f ());
      Rs_util.Clock.now () -. t0
    in
    (* interleave 2 runs of each to damp noise *)
    let to_ = time (fun () -> mini_opsd ~rdelta ~r) +. time (fun () -> mini_opsd ~rdelta ~r) in
    let tt = time (fun () -> mini_tpsd ~rdelta ~r) +. time (fun () -> mini_tpsd ~rdelta ~r) in
    to_ -. tt
  in
  let betas = [ 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ] in
  let diffs = List.map (fun b -> (b, diff_at b)) betas in
  (* find the first sign change and interpolate the crossover *)
  let rec crossover = function
    | (b1, d1) :: ((b2, d2) :: _ as rest) ->
        if d1 <= 0.0 && d2 > 0.0 then
          let t = d1 /. (d1 -. d2) in
          Some (b1 +. (t *. (b2 -. b1)))
        else crossover rest
    | _ -> None
  in
  let beta_star =
    match crossover diffs with
    | Some b -> b
    | None -> if List.for_all (fun (_, d) -> d > 0.0) diffs then 2.5 else 64.0
  in
  let beta_star = if beta_star < 2.5 then 2.5 else if beta_star > 64.0 then 64.0 else beta_star in
  beta_star /. (beta_star -. 2.0)

let choose ~alpha ~r_rows ~rdelta_rows ~mu_prev =
  if rdelta_rows = 0 then Opsd
  else begin
    let beta = float_of_int r_rows /. float_of_int rdelta_rows in
    if beta <= 1.0 then Opsd
    else begin
      let alpha = if alpha <= 1.0 then 1.1 else alpha in
      let threshold = 2.0 *. alpha /. (alpha -. 1.0) in
      if beta >= threshold then Tpsd
      else
        match mu_prev with
        | None -> Opsd
        | Some mu ->
            let mu = if mu < 1.0 then 1.0 else mu in
            (* Sign of equation (5): positive → OPSD costlier → pick TPSD. *)
            if (beta *. (alpha -. 1.0)) -. (alpha +. (alpha /. mu)) > 0.0 then Tpsd else Opsd
    end
  end

let observed_mu ~rdelta_rows ~intersection_rows =
  if intersection_rows = 0 then float_of_int (max 1 rdelta_rows)
  else float_of_int rdelta_rows /. float_of_int intersection_rows

(* --- compiled-kernel admission gate ------------------------------------ *)

let kernel_max_arity = 3

(* The compiler monomorphizes emitters up to arity 3; beyond that the
   generic row path erases the win over the interpreter. Cold rules
   (non-recursive strata run exactly once) never amortize compilation, and
   aggregates need the interpreter's grouping machinery. Shape-level
   reasons (negation, deep join trees) are reported by the compiler itself;
   this gate only holds the facts the interpreter knows before looking at
   plans. *)
let kernel_gate ~recursive ~has_agg ~head_arity =
  if not recursive then Error "cold"
  else if has_agg then Error "aggregate"
  else if head_arity > kernel_max_arity then Error "arity"
  else Ok ()
