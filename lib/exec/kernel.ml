module Relation = Rs_relation.Relation
module Dedup = Rs_relation.Dedup
module Pool = Rs_parallel.Pool
module Fault = Rs_chaos.Fault
module Inject = Rs_chaos.Inject

exception Degraded of string

let () =
  Printexc.register_printer (function
    | Degraded point -> Some (Printf.sprintf "Rs_exec.Kernel.Degraded(%s)" point)
    | _ -> None)

(* A scan side reduced to its table plus the filters sitting on it; the
   predicates use the table's local column frame. *)
type probe_side = { p_name : string; p_preds : Expr.pred list }

type binary = {
  b_probe : probe_side;  (* the Δ-side, scanned row by row *)
  b_build_name : string;  (* the indexed side *)
  b_probe_keys : int array;
  b_build_keys : int array;
  b_extra : Expr.pred list;  (* over the combined l++r frame *)
  b_la : int;  (* left arity of the combined frame *)
  b_probe_is_left : bool;
}

type shape = Binary of binary | Unary of probe_side

type t = { shape : shape; out : Expr.t array; arity : int }

let arity k = k.arity

(* Collapse Filter* over a Scan; anything deeper is not kernel-shaped. *)
let rec flatten_scan preds = function
  | Plan.Scan name -> Some (name, preds)
  | Plan.Filter (ps, src) -> flatten_scan (preds @ ps) src
  | _ -> None

let compile_shape (ex : Executor.t) ~probe_table plan =
  let table_arity name = Relation.arity (Catalog.rel ex.catalog name) in
  match plan with
  | Plan.Project (out, src) -> (
      match flatten_scan [] src with
      | Some (name, preds) when name = probe_table ->
          Ok { shape = Unary { p_name = name; p_preds = preds }; out; arity = Array.length out }
      | Some _ -> Error "probe"
      | None -> Error "shape")
  | Plan.Join { l; r; lkeys; rkeys; extra; out = Some out } -> (
      match (flatten_scan [] l, flatten_scan [] r) with
      | Some (lname, lpreds), Some (rname, rpreds) -> (
          if Array.length lkeys = 0 then Error "cross"
          else
            match (lname = probe_table, rname = probe_table) with
            | true, true | false, false -> Error "probe"
            | probe_is_left, _ ->
                let la = table_arity lname in
                let probe, probe_keys, build_name, build_keys, build_preds =
                  if probe_is_left then
                    (* build side is the right table: lift its local filters
                       into the combined frame *)
                    ( { p_name = lname; p_preds = lpreds },
                      lkeys,
                      rname,
                      rkeys,
                      List.map (Expr.shift_pred la) rpreds )
                  else
                    ({ p_name = rname; p_preds = rpreds }, rkeys, lname, lkeys, lpreds)
                in
                Ok
                  {
                    shape =
                      Binary
                        {
                          b_probe = probe;
                          b_build_name = build_name;
                          b_probe_keys = probe_keys;
                          b_build_keys = build_keys;
                          b_extra = build_preds @ extra;
                          b_la = la;
                          b_probe_is_left = probe_is_left;
                        };
                    out;
                    arity = Array.length out;
                  })
      | _ -> Error "shape")
  | Plan.Join { out = None; _ } -> Error "shape"
  | Plan.AntiJoin _ -> Error "negation"
  | Plan.Aggregate _ -> Error "aggregate"
  | _ -> Error "shape"

let compile ex ~probe_table plan =
  match Inject.kernel_should_fail ~point:"kernel.compile" with
  | () -> compile_shape ex ~probe_table plan
  | exception Fault.Injected _ -> Error "chaos"

let count (ex : Executor.t) name n =
  match ex.trace with Some tr -> Rs_obs.Trace.count tr name n | None -> ()

let run (ex : Executor.t) k ~dedup ~out =
  (* The exec probe sits before any write, so a fired fault leaves [dedup]
     and [out] untouched and the caller can re-evaluate interpreted. *)
  (match Inject.kernel_should_fail ~point:"kernel.exec" with
  | () -> ()
  | exception Fault.Injected _ -> raise (Degraded "kernel.exec"));
  let emitted = ref 0 in
  let batches = ref 0 in
  (* One emit closure, monomorphized on head arity: evaluate the head
     expressions, claim the tuple in FAST-DEDUP, and append on freshness —
     no intermediate relation ever exists. *)
  let emit =
    match k.out with
    | [| e0 |] ->
        fun get ->
          let v0 = Expr.eval get e0 in
          if Dedup.add1 dedup v0 then begin
            Relation.push1 out v0;
            incr emitted
          end
    | [| e0; e1 |] ->
        fun get ->
          let v0 = Expr.eval get e0 and v1 = Expr.eval get e1 in
          if Dedup.add2 dedup v0 v1 then begin
            Relation.push2 out v0 v1;
            incr emitted
          end
    | [| e0; e1; e2 |] ->
        (* scratch row is chunk-safe: the virtual pool runs chunks
           sequentially, and both dedup layouts copy on insert *)
        let row = Array.make 3 0 in
        fun get ->
          row.(0) <- Expr.eval get e0;
          row.(1) <- Expr.eval get e1;
          row.(2) <- Expr.eval get e2;
          if Dedup.add_row dedup row then begin
            Relation.push3 out row.(0) row.(1) row.(2);
            incr emitted
          end
    | exprs ->
        let a = Array.length exprs in
        let row = Array.make a 0 in
        fun get ->
          for i = 0 to a - 1 do
            row.(i) <- Expr.eval get exprs.(i)
          done;
          if Dedup.add_row dedup row then begin
            Relation.push_row out row;
            incr emitted
          end
  in
  (match k.shape with
  | Unary u ->
      let prel = Catalog.rel ex.catalog u.p_name in
      let n = Relation.nrows prel in
      Pool.parallel_for ex.pool 0 n (fun lo hi ->
          incr batches;
          count ex "kernel.batch_rows" (hi - lo);
          for row = lo to hi - 1 do
            let get c = Relation.get prel ~row ~col:c in
            if List.for_all (Expr.test get) u.p_preds then emit get
          done);
      count ex "kernel.fused_probes" n
  | Binary b ->
      let prel = Catalog.rel ex.catalog b.b_probe.p_name in
      let brel = Catalog.rel ex.catalog b.b_build_name in
      let idx, owned = Executor.acquire_index ex ~scan_name:b.b_build_name brel b.b_build_keys in
      let la = b.b_la in
      let lrel, rrel = if b.b_probe_is_left then (prel, brel) else (brel, prel) in
      let p_preds = b.b_probe.p_preds in
      let has_extra = b.b_extra <> [] in
      let visit prow brow =
        let lrow, rrow = if b.b_probe_is_left then (prow, brow) else (brow, prow) in
        let get c =
          if c < la then Relation.get lrel ~row:lrow ~col:c
          else Relation.get rrel ~row:rrow ~col:(c - la)
        in
        if (not has_extra) || List.for_all (Expr.test get) b.b_extra then emit get
      in
      (* Probe closure monomorphized on key shape: 1- and 2-column keys go
         through the specialized index entry points (no key array). *)
      let probe_row =
        match b.b_probe_keys with
        | [| c0 |] ->
            fun prow ->
              Executor.index_iter_matches1 idx
                (Relation.get prel ~row:prow ~col:c0)
                (fun brow -> visit prow brow)
        | [| c0; c1 |] ->
            fun prow ->
              Executor.index_iter_matches2 idx
                (Relation.get prel ~row:prow ~col:c0)
                (Relation.get prel ~row:prow ~col:c1)
                (fun brow -> visit prow brow)
        | pkeys ->
            let key = Array.make (Array.length pkeys) 0 in
            fun prow ->
              Array.iteri (fun i c -> key.(i) <- Relation.get prel ~row:prow ~col:c) pkeys;
              Executor.index_iter_matches idx key (fun brow -> visit prow brow)
      in
      let n = Relation.nrows prel in
      Pool.parallel_for ex.pool 0 n (fun lo hi ->
          incr batches;
          count ex "kernel.batch_rows" (hi - lo);
          for prow = lo to hi - 1 do
            let pget c = Relation.get prel ~row:prow ~col:c in
            if p_preds = [] || List.for_all (Expr.test pget) p_preds then probe_row prow
          done);
      if owned then Executor.index_release idx;
      count ex "kernel.fused_probes" n);
  count ex "kernel.execs" 1;
  count ex "kernel.batches" !batches;
  count ex "kernel.emitted" !emitted;
  !emitted
