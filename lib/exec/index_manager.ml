module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
module Pool = Rs_parallel.Pool

type t = {
  pool : Pool.t;
  persistent : string -> bool;
  parent : t option;
  tbl : (string * int list, Hash_index.t) Hashtbl.t;
  trace : Rs_obs.Trace.t option;
  mutable builds : int;
  mutable appends : int;
  mutable reuse_hits : int;
  mutable rehashes : int;
  mutable rebases : int;
  mutable invalidations : int;
}

let create ?trace ?parent ~persistent pool =
  { pool; persistent; parent; tbl = Hashtbl.create 16; trace; builds = 0; appends = 0;
    reuse_hits = 0; rehashes = 0; rebases = 0; invalidations = 0 }

let eligible t name =
  t.persistent name
  || match t.parent with Some p -> p.persistent name | None -> false

let count t name n =
  match t.trace with Some tr -> Rs_obs.Trace.count tr name n | None -> ()

let note_build t idx =
  t.builds <- t.builds + 1;
  count t "executor.index_builds" 1;
  count t "executor.index_bytes" (Hash_index.bytes idx)

let rebuild t key rel keys =
  (match Hashtbl.find_opt t.tbl key with
  | Some old -> Hash_index.release old
  | None -> ());
  let idx = Hash_index.build_pool t.pool rel keys in
  Hash_index.account idx;
  note_build t idx;
  Hashtbl.replace t.tbl key idx;
  idx

let rec get t ~name rel keys =
  match t.parent with
  (* Names the parent owns (e.g. the EDB store's base relations, shared
     across interpreter runs) are served from the parent's table so their
     indexes outlive this manager's [release_all]. *)
  | Some p when p.persistent name -> get p ~name rel keys
  | _ -> (
      let key = (name, Array.to_list keys) in
      match Hashtbl.find_opt t.tbl key with
      | Some idx
        (* Validity = same physical relation, same generation, and no shrink.
           The generation check is what catches destructive in-place rewrites
           (Relation.clear bumps it): a clear-then-repopulate within one
           fixpoint changes neither identity nor (necessarily) the row count,
           so without it the appends-only fast path below would extend a stale
           index over rewritten rows. *)
        when Hash_index.relation idx == rel
             && Hash_index.generation idx = Relation.generation rel
             && Hash_index.indexed_rows idx <= Relation.nrows rel ->
          if Hash_index.indexed_rows idx = Relation.nrows rel then begin
            t.reuse_hits <- t.reuse_hits + 1;
            count t "executor.index_reuse_hits" 1;
            idx
          end
          else begin
            (* the relation grew by its delta since the last iteration: extend
               the index over the fresh suffix instead of rebuilding *)
            let r0 = Hash_index.rehashes idx in
            ignore (Hash_index.append_pool t.pool idx);
            let dr = Hash_index.rehashes idx - r0 in
            Hash_index.account idx;
            t.appends <- t.appends + 1;
            t.rehashes <- t.rehashes + dr;
            count t "executor.index_appends" 1;
            if dr > 0 then count t "executor.index_rehashes" dr;
            idx
          end
      | _ ->
          (* never built, or the catalog swapped in a different relation under
             this name, or the relation was destructively mutated *)
          rebuild t key rel keys)

let entries_of t name =
  Hashtbl.fold (fun (n, _ as key) idx acc -> if n = name then (key, idx) :: acc else acc)
    t.tbl []

let invalidate t ~name =
  List.iter
    (fun (key, idx) ->
      Hash_index.release idx;
      Hashtbl.remove t.tbl key;
      t.invalidations <- t.invalidations + 1;
      count t "executor.index_invalidations" 1)
    (entries_of t name)

let rebase_to t ~name rel =
  List.iter
    (fun (key, idx) ->
      match Hash_index.rebase idx rel with
      | () ->
          t.rebases <- t.rebases + 1;
          count t "executor.index_rebases" 1
      | exception Invalid_argument _ ->
          (* replacement does not extend the indexed prefix — fall back to
             dropping the entry; the next access rebuilds *)
          Hash_index.release idx;
          Hashtbl.remove t.tbl key;
          t.invalidations <- t.invalidations + 1;
          count t "executor.index_invalidations" 1)
    (entries_of t name)

let bytes t = Hashtbl.fold (fun _ idx acc -> acc + Hash_index.bytes idx) t.tbl 0

let builds t = t.builds
let appends t = t.appends
let reuse_hits t = t.reuse_hits
let rehashes t = t.rehashes
let rebases t = t.rebases
let invalidations t = t.invalidations

let release_all t =
  (* the parent (if any) is owned by whoever created it: leave it intact *)
  Hashtbl.iter (fun _ idx -> Hash_index.release idx) t.tbl;
  Hashtbl.reset t.tbl
