(** Cost model for Dynamic Set Difference (paper §5.1 and Appendix A).

    Semi-naive evaluation computes [ΔR ← Rδ − R] every iteration. Two
    translations exist: OPSD builds one hash table on the ever-growing [R];
    TPSD first intersects ([r ← Rδ ∩ R], building on the smaller input) and
    then subtracts the intersection. With [α = C_build/C_probe],
    [β = |R|/|Rδ|] and [µ = |Rδ|/|r|], the appendix derives:

    - [β ≤ 1] → OPSD;
    - [β ≥ 2α/(α−1)] → TPSD;
    - otherwise the sign of [β(α−1) − (α + α/µ)] decides, approximating [µ]
      by its value in the previous iteration. *)

val calibrate : Rs_parallel.Pool.t -> unit -> float
(** [calibrate pool ()] estimates α by offline training (the paper
    pre-computes α from join runs on table pairs of several sizes): both
    set-difference translations are timed on synthetic (R, Rδ) pairs of
    growing β, the cost crossover β* is located, and α is recovered from the
    model's own threshold [β* = 2α/(α-1)]. This measures the ratio the model
    actually consumes, rather than assuming per-tuple build/probe costs
    transfer from isolated joins. *)

val default_alpha : float
(** Fallback α when no calibration has run (a typical measured value). *)

type choice = Opsd | Tpsd

val choose : alpha:float -> r_rows:int -> rdelta_rows:int -> mu_prev:float option -> choice
(** The DSD decision rule above. [mu_prev] is |Rδ|/|r| from the previous
    iteration, unknown on the first ([None] → OPSD in the uncertain band,
    since small [µ] favours OPSD and the first iterations have small [R]). *)

val observed_mu : rdelta_rows:int -> intersection_rows:int -> float
(** Helper to fold this iteration's µ for the next decision. *)

(** {2 Compiled-kernel admission gate} *)

val kernel_max_arity : int
(** Largest head arity with a monomorphized emit path (3). *)

val kernel_gate :
  recursive:bool -> has_agg:bool -> head_arity:int -> (unit, string) result
(** Whether a rule is worth compiling to a fused kernel. [Error reason]
    (["cold"] — non-recursive stratum, runs once; ["aggregate"];
    ["arity"] — head wider than {!kernel_max_arity}) means: stay on the
    interpreted path. Shape restrictions (negation, >2-atom join trees)
    are decided later by [Kernel.compile], which sees the plans. *)
