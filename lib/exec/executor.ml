module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
module Pool = Rs_parallel.Pool
module Int_vec = Rs_util.Int_vec

type t = {
  pool : Pool.t;
  catalog : Catalog.t;
  query_overhead_s : float;
  share_builds : bool;
  trace : Rs_obs.Trace.t option;
}

let create ?(query_overhead_s = 0.0005) ?(share_builds = true) ?trace pool catalog =
  { pool; catalog; query_overhead_s; share_builds; trace }

let estimate t p = Plan.estimate (fun name -> Catalog.stat_rows t.catalog name) p

let arity_of t p = Plan.arity (fun name -> Relation.arity (Catalog.rel t.catalog name)) p

(* short operator label for trace spans/events *)
let plan_label = function
  | Plan.Scan n -> "scan:" ^ n
  | Plan.Rel _ -> "rel"
  | Plan.Filter _ -> "filter"
  | Plan.Project _ -> "project"
  | Plan.Join _ -> "join"
  | Plan.AntiJoin _ -> "anti_join"
  | Plan.UnionAll ps -> Printf.sprintf "union_all(%d)" (List.length ps)
  | Plan.Aggregate _ -> "aggregate"

let note_index_build t idx =
  match t.trace with
  | None -> ()
  | Some tr ->
      Rs_obs.Trace.count tr "executor.index_builds" 1;
      Rs_obs.Trace.count tr "executor.index_bytes" (Hash_index.bytes idx)

(* Per-query cache of hash tables built on named tables, keyed by
   (table, key columns). Shared across the subplans of a UNION ALL when
   [share_builds] — the cache-sharing effect of UIE. *)
type cache = (string * int list, Hash_index.t) Hashtbl.t

let build_index t ?(cache : cache option) ?scan_name ~build_fn rel keys =
  match (cache, scan_name) with
  | Some c, Some name ->
      let k = (name, Array.to_list keys) in
      (match Hashtbl.find_opt c k with
      | Some idx ->
          (match t.trace with
          | Some tr -> Rs_obs.Trace.count tr "executor.index_cache_hits" 1
          | None -> ());
          idx
      | None ->
          let idx = build_fn rel keys in
          Hash_index.account idx;
          note_index_build t idx;
          Hashtbl.add c k idx;
          idx)
  | _ ->
      let idx = build_fn rel keys in
      Hash_index.account idx;
      note_index_build t idx;
      idx

let release_cache (c : cache) = Hashtbl.iter (fun _ idx -> Hash_index.release idx) c

(* Merge per-chunk output fragments in chunk order (the virtual pool runs
   chunks sequentially, so a list ref is race-free; chunk order keeps results
   deterministic). *)
let chunked_output t ~arity ~n f =
  let fragments = ref [] in
  Pool.parallel_for t.pool 0 n (fun lo hi ->
      let frag = Relation.create arity in
      f frag lo hi;
      fragments := frag :: !fragments);
  Relation.concat_parallel t.pool arity (List.rev !fragments)

let rec eval t (cache : cache option) plan : Relation.t =
  match plan with
  | Plan.Scan name -> Catalog.rel t.catalog name
  | Plan.Rel r -> r
  | Plan.Filter (preds, src) ->
      let input = eval t cache src in
      let arity = Relation.arity input in
      let n = Relation.nrows input in
      chunked_output t ~arity ~n (fun frag lo hi ->
          for row = lo to hi - 1 do
            let get c = Relation.get input ~row ~col:c in
            if List.for_all (Expr.test get) preds then
              for c = 0 to arity - 1 do
                Int_vec.push (Relation.col frag c) (get c)
              done
          done)
  | Plan.Project (exprs, src) ->
      let input = eval t cache src in
      let arity = Array.length exprs in
      let n = Relation.nrows input in
      chunked_output t ~arity ~n (fun frag lo hi ->
          for row = lo to hi - 1 do
            let get c = Relation.get input ~row ~col:c in
            Array.iteri (fun i e -> Int_vec.push (Relation.col frag i) (Expr.eval get e)) exprs
          done)
  | Plan.Join j -> eval_join t cache j
  | Plan.AntiJoin a -> eval_anti t cache a
  | Plan.UnionAll ps ->
      let arity = arity_of t plan in
      (* Subplans of one query run back to back; with [share_builds] they
         reuse each other's hash tables via [cache]. The final merge is a
         parallel block copy. *)
      let parts = List.map (fun p -> eval t cache p) ps in
      Relation.concat_parallel t.pool arity parts
  | Plan.Aggregate a -> eval_agg t cache a

and eval_join t cache { Plan.l; r; lkeys; rkeys; extra; out } =
  let scan_name = function Plan.Scan n -> Some n | _ -> None in
  let lrel = eval t cache l and rrel = eval t cache r in
  let la = Relation.arity lrel in
  let out_arity =
    match out with Some es -> Array.length es | None -> la + Relation.arity rrel
  in
  (* Build-side choice from optimizer estimates (not true sizes): this is
     the decision OOF keeps honest by refreshing row counts. *)
  let est_l = estimate t l and est_r = estimate t r in
  let build_left = est_l <= est_r in
  let brel, bkeys, bname, prel, pkeys =
    if build_left then (lrel, lkeys, scan_name l, rrel, rkeys)
    else (rrel, rkeys, scan_name r, lrel, lkeys)
  in
  let idx = build_index t ?cache ?scan_name:bname ~build_fn:(Hash_index.build_pool t.pool) brel bkeys in
  let own_index = match (cache, bname) with Some _, Some _ -> false | _ -> true in
  let n = Relation.nrows prel in
  let key = Array.make (Array.length pkeys) 0 in
  let result =
    chunked_output t ~arity:out_arity ~n (fun frag lo hi ->
        for prow = lo to hi - 1 do
          Array.iteri (fun i c -> key.(i) <- Relation.get prel ~row:prow ~col:c) pkeys;
          Hash_index.iter_matches idx key (fun brow ->
              let lrow, rrow = if build_left then (brow, prow) else (prow, brow) in
              let get c =
                if c < la then Relation.get lrel ~row:lrow ~col:c
                else Relation.get rrel ~row:rrow ~col:(c - la)
              in
              if List.for_all (Expr.test get) extra then
                match out with
                | Some exprs ->
                    Array.iteri
                      (fun i e -> Int_vec.push (Relation.col frag i) (Expr.eval get e))
                      exprs
                | None ->
                    for c = 0 to out_arity - 1 do
                      Int_vec.push (Relation.col frag c) (get c)
                    done)
        done)
  in
  if own_index then Hash_index.release idx;
  result

and eval_anti t cache { Plan.al; ar; alkeys; arkeys } =
  let lrel = eval t cache al and rrel = eval t cache ar in
  let arity = Relation.arity lrel in
  let idx = Hash_index.build_pool t.pool rrel arkeys in
  Hash_index.account idx;
  note_index_build t idx;
  let n = Relation.nrows lrel in
  let key = Array.make (Array.length alkeys) 0 in
  let result =
    chunked_output t ~arity ~n (fun frag lo hi ->
        for row = lo to hi - 1 do
          Array.iteri (fun i c -> key.(i) <- Relation.get lrel ~row ~col:c) alkeys;
          if not (Hash_index.mem idx key) then
            for c = 0 to arity - 1 do
              Int_vec.push (Relation.col frag c) (Relation.get lrel ~row ~col:c)
            done
        done)
  in
  ignore cache;
  Hash_index.release idx;
  result

and eval_agg t cache { Plan.group; aggs; src } =
  let input = eval t cache src in
  let n = Relation.nrows input in
  let ngroup = Array.length group and naggs = Array.length aggs in
  (* Chunked partial aggregation, then a serial merge of the partials —
     QuickStep's two-phase parallel aggregation. Accumulators per agg:
     value plus a count (for AVG). *)
  let partials = ref [] in
  Pool.parallel_for t.pool 0 n (fun lo hi ->
      let table : (int list, int array * int array) Hashtbl.t = Hashtbl.create 256 in
      for row = lo to hi - 1 do
        let get c = Relation.get input ~row ~col:c in
        let k = Array.to_list (Array.map (Expr.eval get) group) in
        let vals, counts =
          match Hashtbl.find_opt table k with
          | Some acc -> acc
          | None ->
              let init =
                Array.map
                  (fun (op, _) ->
                    match op with
                    | Plan.Min -> max_int
                    | Plan.Max -> min_int
                    | Plan.Sum | Plan.Count | Plan.Avg -> 0)
                  aggs
              in
              let acc = (init, Array.make naggs 0) in
              Hashtbl.add table k acc;
              acc
        in
        Array.iteri
          (fun i (op, e) ->
            let v = Expr.eval get e in
            counts.(i) <- counts.(i) + 1;
            match op with
            | Plan.Min -> if v < vals.(i) then vals.(i) <- v
            | Plan.Max -> if v > vals.(i) then vals.(i) <- v
            | Plan.Sum | Plan.Avg -> vals.(i) <- vals.(i) + v
            | Plan.Count -> vals.(i) <- vals.(i) + 1)
          aggs
      done;
      partials := table :: !partials);
  let merged : (int list, int array * int array) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun table ->
      Hashtbl.iter
        (fun k (vals, counts) ->
          match Hashtbl.find_opt merged k with
          | None -> Hashtbl.add merged k (Array.copy vals, Array.copy counts)
          | Some (mv, mc) ->
              Array.iteri
                (fun i (op, _) ->
                  mc.(i) <- mc.(i) + counts.(i);
                  match op with
                  | Plan.Min -> if vals.(i) < mv.(i) then mv.(i) <- vals.(i)
                  | Plan.Max -> if vals.(i) > mv.(i) then mv.(i) <- vals.(i)
                  | Plan.Sum | Plan.Count | Plan.Avg -> mv.(i) <- mv.(i) + vals.(i))
                aggs)
        table)
    (List.rev !partials);
  let out = Relation.create (ngroup + naggs) in
  Hashtbl.iter
    (fun k (vals, counts) ->
      List.iteri (fun i v -> Int_vec.push (Relation.col out i) v) k;
      Array.iteri
        (fun i (op, _) ->
          let v =
            match op with
            | Plan.Avg -> if counts.(i) = 0 then 0 else vals.(i) / counts.(i)
            | _ -> vals.(i)
          in
          Int_vec.push (Relation.col out (ngroup + i)) v)
        aggs)
    merged;
  Relation.account out;
  out

let run_query t plan =
  Pool.add_serial t.pool t.query_overhead_s;
  let go () =
    let cache : cache option = if t.share_builds then Some (Hashtbl.create 8) else None in
    let result = eval t cache plan in
    (match cache with Some c -> release_cache c | None -> ());
    result
  in
  match t.trace with
  | None -> go ()
  | Some tr ->
      let label = plan_label plan in
      Rs_obs.Trace.span tr ~kind:"executor" label (fun () ->
          let est = estimate t plan in
          let result = go () in
          let actual = Relation.nrows result in
          Rs_obs.Trace.count tr "executor.queries" 1;
          Rs_obs.Trace.count tr "executor.est_rows" est;
          Rs_obs.Trace.count tr "executor.actual_rows" actual;
          Rs_obs.Trace.event tr ~kind:"executor" label
            [ ("est_rows", float_of_int est); ("actual_rows", float_of_int actual) ];
          result)

(* --- set difference (Algorithms 4 and 5) --- *)

let all_cols rel = Array.init (Relation.arity rel) (fun i -> i)

let opsd_impl t ~rdelta ~r =
  let keys = all_cols rdelta in
  let idx = Hash_index.build_pool t.pool r keys in
  Hash_index.account idx;
  note_index_build t idx;
  let n = Relation.nrows rdelta in
  let arity = Relation.arity rdelta in
  let key = Array.make arity 0 in
  let matched = ref 0 in
  let out =
    chunked_output t ~arity ~n (fun frag lo hi ->
        for row = lo to hi - 1 do
          for c = 0 to arity - 1 do
            key.(c) <- Relation.get rdelta ~row ~col:c
          done;
          if Hash_index.mem idx key then incr matched
          else
            for c = 0 to arity - 1 do
              Int_vec.push (Relation.col frag c) key.(c)
            done
        done)
  in
  Hash_index.release idx;
  (out, !matched)

let tpsd_impl t ~rdelta ~r =
  let arity = Relation.arity rdelta in
  let keys = all_cols rdelta in
  (* Phase 1: intersection, building on the smaller input. *)
  let build, probe =
    if Relation.nrows r <= Relation.nrows rdelta then (r, rdelta) else (rdelta, r)
  in
  let hb = Hash_index.build_pool t.pool build keys in
  Hash_index.account hb;
  note_index_build t hb;
  let inter = Relation.create arity in
  let key = Array.make arity 0 in
  let n = Relation.nrows probe in
  Pool.parallel_for t.pool 0 n (fun lo hi ->
      for row = lo to hi - 1 do
        for c = 0 to arity - 1 do
          key.(c) <- Relation.get probe ~row ~col:c
        done;
        if Hash_index.mem hb key then
          for c = 0 to arity - 1 do
            Int_vec.push (Relation.col inter c) key.(c)
          done
      done);
  Relation.account inter;
  Hash_index.release hb;
  (* The probe side may contain tuples of [r] several times only if [r] had
     duplicates; IDB tables are deduplicated, so [inter] is a set. *)
  (* Phase 2: Rδ − r. *)
  let hr = Hash_index.build_pool t.pool inter keys in
  Hash_index.account hr;
  note_index_build t hr;
  let nd = Relation.nrows rdelta in
  let out =
    chunked_output t ~arity ~n:nd (fun frag lo hi ->
        for row = lo to hi - 1 do
          for c = 0 to arity - 1 do
            key.(c) <- Relation.get rdelta ~row ~col:c
          done;
          if not (Hash_index.mem hr key) then
            for c = 0 to arity - 1 do
              Int_vec.push (Relation.col frag c) key.(c)
            done
        done)
  in
  Hash_index.release hr;
  let inter_n = Relation.nrows inter in
  Relation.release inter;
  (out, inter_n)

let with_span t name f =
  match t.trace with Some tr -> Rs_obs.Trace.span tr ~kind:"executor" name f | None -> f ()

let opsd t ~rdelta ~r = with_span t "opsd" (fun () -> opsd_impl t ~rdelta ~r)
let tpsd t ~rdelta ~r = with_span t "tpsd" (fun () -> tpsd_impl t ~rdelta ~r)
