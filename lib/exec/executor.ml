module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
module Radix_index = Rs_relation.Radix_index
module Pool = Rs_parallel.Pool
module Int_vec = Rs_util.Int_vec

type t = {
  pool : Pool.t;
  catalog : Catalog.t;
  query_overhead_s : float;
  share_builds : bool;
  index_manager : Index_manager.t option;
  radix_min_rows : int;
  trace : Rs_obs.Trace.t option;
}

let create ?(query_overhead_s = 0.0005) ?(share_builds = true) ?index_manager
    ?(radix_min_rows = 16384) ?trace pool catalog =
  { pool; catalog; query_overhead_s; share_builds; index_manager; radix_min_rows; trace }

let estimate t p = Plan.estimate (fun name -> Catalog.stat_rows t.catalog name) p

let arity_of t p = Plan.arity (fun name -> Relation.arity (Catalog.rel t.catalog name)) p

(* short operator label for trace spans/events *)
let plan_label = function
  | Plan.Scan n -> "scan:" ^ n
  | Plan.Rel _ -> "rel"
  | Plan.Filter _ -> "filter"
  | Plan.Project _ -> "project"
  | Plan.Join _ -> "join"
  | Plan.AntiJoin _ -> "anti_join"
  | Plan.UnionAll ps -> Printf.sprintf "union_all(%d)" (List.length ps)
  | Plan.Aggregate _ -> "aggregate"

(* Either index layout behind one probe interface: the executor's cost
   policy picks radix (partitioned open addressing) for large one-shot
   builds and the chained layout for cached / persistent ones. Both
   enumerate matches newest-row-first, so the choice never changes result
   bytes. *)
type built_index = Chained of Hash_index.t | Radix of Radix_index.t

let idx_iter_matches idx key f =
  match idx with
  | Chained i -> Hash_index.iter_matches i key f
  | Radix i -> Radix_index.iter_matches i key f

let idx_iter_matches1 idx k f =
  match idx with
  | Chained i -> Hash_index.iter_matches1 i k f
  | Radix i -> Radix_index.iter_matches1 i k f

let idx_iter_matches2 idx k0 k1 f =
  match idx with
  | Chained i -> Hash_index.iter_matches2 i k0 k1 f
  | Radix i -> Radix_index.iter_matches2 i k0 k1 f

let idx_mem idx key =
  match idx with Chained i -> Hash_index.mem i key | Radix i -> Radix_index.mem i key

let idx_bytes = function Chained i -> Hash_index.bytes i | Radix i -> Radix_index.bytes i

let idx_account = function Chained i -> Hash_index.account i | Radix i -> Radix_index.account i

let idx_release = function Chained i -> Hash_index.release i | Radix i -> Radix_index.release i

let count t name n =
  match t.trace with Some tr -> Rs_obs.Trace.count tr name n | None -> ()

let note_index_build t idx =
  count t "executor.index_builds" 1;
  count t "executor.index_bytes" (idx_bytes idx);
  match idx with Radix _ -> count t "executor.index_radix_builds" 1 | Chained _ -> ()

(* One-shot build for an anonymous (or non-persistent) build side: radix for
   large inputs, chained otherwise. *)
let build_transient t rel keys =
  let idx =
    if Relation.nrows rel >= t.radix_min_rows then Radix (Radix_index.build_pool t.pool rel keys)
    else Chained (Hash_index.build_pool t.pool rel keys)
  in
  idx_account idx;
  note_index_build t idx;
  idx

(* Per-query cache of hash tables built on named tables, keyed by
   (table, key columns). Shared across the subplans of a UNION ALL when
   [share_builds] — the cache-sharing effect of UIE. *)
type cache = (string * int list, Hash_index.t) Hashtbl.t

let managed t = function
  | Some name -> (
      match t.index_manager with
      | Some m when Index_manager.eligible m name -> Some (m, name)
      | _ -> None)
  | None -> None

(* Acquire a build-side index for [rel] keyed by [keys]. Ownership: manager
   indexes persist across queries (the manager releases them); cache indexes
   live until the query's [release_cache]; transient indexes are the
   caller's to release. *)
let build_index t ?(cache : cache option) ?scan_name rel keys =
  match managed t scan_name with
  | Some (m, name) -> (Chained (Index_manager.get m ~name rel keys), false)
  | None -> (
      match (cache, scan_name) with
      | Some c, Some name -> (
          let k = (name, Array.to_list keys) in
          match Hashtbl.find_opt c k with
          | Some idx ->
              count t "executor.index_cache_hits" 1;
              (Chained idx, false)
          | None ->
              let idx = Hash_index.build_pool t.pool rel keys in
              Hash_index.account idx;
              note_index_build t (Chained idx);
              Hashtbl.add c k idx;
              (Chained idx, false))
      | _ -> (build_transient t rel keys, true))

let release_cache (c : cache) = Hashtbl.iter (fun _ idx -> Hash_index.release idx) c

(* Index acquisition for compiled kernels: same three-tier policy as a
   join's build side, minus the per-query cache (a kernel is not a query). *)
let acquire_index t ?scan_name rel keys = build_index t ?scan_name rel keys

let index_iter_matches = idx_iter_matches
let index_iter_matches1 = idx_iter_matches1
let index_iter_matches2 = idx_iter_matches2
let index_release = idx_release

(* Merge per-chunk output fragments in chunk order (the virtual pool runs
   chunks sequentially, so a list ref is race-free; chunk order keeps results
   deterministic). *)
let chunked_output t ~arity ~n f =
  let fragments = ref [] in
  Pool.parallel_for t.pool 0 n (fun lo hi ->
      let frag = Relation.create arity in
      f frag lo hi;
      fragments := frag :: !fragments);
  Relation.concat_parallel t.pool arity (List.rev !fragments)

let rec eval t (cache : cache option) plan : Relation.t =
  match plan with
  | Plan.Scan name -> Catalog.rel t.catalog name
  | Plan.Rel r -> r
  | Plan.Filter (preds, src) ->
      let input = eval t cache src in
      let arity = Relation.arity input in
      let n = Relation.nrows input in
      chunked_output t ~arity ~n (fun frag lo hi ->
          for row = lo to hi - 1 do
            let get c = Relation.get input ~row ~col:c in
            if List.for_all (Expr.test get) preds then
              for c = 0 to arity - 1 do
                Int_vec.push (Relation.col frag c) (get c)
              done
          done)
  | Plan.Project (exprs, src) ->
      let input = eval t cache src in
      let arity = Array.length exprs in
      let n = Relation.nrows input in
      chunked_output t ~arity ~n (fun frag lo hi ->
          for row = lo to hi - 1 do
            let get c = Relation.get input ~row ~col:c in
            Array.iteri (fun i e -> Int_vec.push (Relation.col frag i) (Expr.eval get e)) exprs
          done)
  | Plan.Join j -> eval_join t cache j
  | Plan.AntiJoin a -> eval_anti t cache a
  | Plan.UnionAll ps ->
      let arity = arity_of t plan in
      (* Subplans of one query run back to back; with [share_builds] they
         reuse each other's hash tables via [cache]. The final merge is a
         parallel block copy. *)
      let parts = List.map (fun p -> eval t cache p) ps in
      Relation.concat_parallel t.pool arity parts
  | Plan.Aggregate a -> eval_agg t cache a

and eval_join t cache { Plan.l; r; lkeys; rkeys; extra; out } =
  let scan_name = function Plan.Scan n -> Some n | _ -> None in
  let lrel = eval t cache l and rrel = eval t cache r in
  let la = Relation.arity lrel in
  let out_arity =
    match out with Some es -> Array.length es | None -> la + Relation.arity rrel
  in
  (* Build-side choice from optimizer estimates (not true sizes): this is
     the decision OOF keeps honest by refreshing row counts. A side whose
     index persists across iterations (the manager's tables) trumps the
     estimates — its build cost amortizes to ~zero over the fixpoint, so the
     join degenerates to |probe side| hash probes. *)
  let lname = scan_name l and rname = scan_name r in
  let l_managed = managed t lname <> None and r_managed = managed t rname <> None in
  let build_left =
    match (l_managed, r_managed) with
    | true, false -> true
    | false, true -> false
    | _ ->
        let est_l = estimate t l and est_r = estimate t r in
        est_l <= est_r
  in
  let brel, bkeys, bname, prel, pkeys =
    if build_left then (lrel, lkeys, lname, rrel, rkeys)
    else (rrel, rkeys, rname, lrel, lkeys)
  in
  let idx, own_index = build_index t ?cache ?scan_name:bname brel bkeys in
  let n = Relation.nrows prel in
  let key = Array.make (Array.length pkeys) 0 in
  let result =
    chunked_output t ~arity:out_arity ~n (fun frag lo hi ->
        for prow = lo to hi - 1 do
          Array.iteri (fun i c -> key.(i) <- Relation.get prel ~row:prow ~col:c) pkeys;
          idx_iter_matches idx key (fun brow ->
              let lrow, rrow = if build_left then (brow, prow) else (prow, brow) in
              let get c =
                if c < la then Relation.get lrel ~row:lrow ~col:c
                else Relation.get rrel ~row:rrow ~col:(c - la)
              in
              if List.for_all (Expr.test get) extra then
                match out with
                | Some exprs ->
                    Array.iteri
                      (fun i e -> Int_vec.push (Relation.col frag i) (Expr.eval get e))
                      exprs
                | None ->
                    for c = 0 to out_arity - 1 do
                      Int_vec.push (Relation.col frag c) (get c)
                    done)
        done)
  in
  if own_index then idx_release idx;
  result

and eval_anti t cache { Plan.al; ar; alkeys; arkeys } =
  let scan_name = function Plan.Scan n -> Some n | _ -> None in
  let lrel = eval t cache al and rrel = eval t cache ar in
  let arity = Relation.arity lrel in
  (* The negated side is a lower-stratum table under stratification, so its
     index persists across every iteration of this stratum's fixpoint. *)
  let idx, own_index = build_index t ?cache ?scan_name:(scan_name ar) rrel arkeys in
  let n = Relation.nrows lrel in
  let key = Array.make (Array.length alkeys) 0 in
  let result =
    chunked_output t ~arity ~n (fun frag lo hi ->
        for row = lo to hi - 1 do
          Array.iteri (fun i c -> key.(i) <- Relation.get lrel ~row ~col:c) alkeys;
          if not (idx_mem idx key) then
            for c = 0 to arity - 1 do
              Int_vec.push (Relation.col frag c) (Relation.get lrel ~row ~col:c)
            done
        done)
  in
  if own_index then idx_release idx;
  result

and eval_agg t cache { Plan.group; aggs; src } =
  let input = eval t cache src in
  let n = Relation.nrows input in
  let ngroup = Array.length group and naggs = Array.length aggs in
  (* Chunked partial aggregation, then a serial merge of the partials —
     QuickStep's two-phase parallel aggregation. Accumulators per agg:
     value plus a count (for AVG). *)
  let partials = ref [] in
  Pool.parallel_for t.pool 0 n (fun lo hi ->
      let table : (int list, int array * int array) Hashtbl.t = Hashtbl.create 256 in
      for row = lo to hi - 1 do
        let get c = Relation.get input ~row ~col:c in
        let k = Array.to_list (Array.map (Expr.eval get) group) in
        let vals, counts =
          match Hashtbl.find_opt table k with
          | Some acc -> acc
          | None ->
              let init =
                Array.map
                  (fun (op, _) ->
                    match op with
                    | Plan.Min -> max_int
                    | Plan.Max -> min_int
                    | Plan.Sum | Plan.Count | Plan.Avg -> 0)
                  aggs
              in
              let acc = (init, Array.make naggs 0) in
              Hashtbl.add table k acc;
              acc
        in
        Array.iteri
          (fun i (op, e) ->
            let v = Expr.eval get e in
            counts.(i) <- counts.(i) + 1;
            match op with
            | Plan.Min -> if v < vals.(i) then vals.(i) <- v
            | Plan.Max -> if v > vals.(i) then vals.(i) <- v
            | Plan.Sum | Plan.Avg -> vals.(i) <- vals.(i) + v
            | Plan.Count -> vals.(i) <- vals.(i) + 1)
          aggs
      done;
      partials := table :: !partials);
  let merged : (int list, int array * int array) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun table ->
      Hashtbl.iter
        (fun k (vals, counts) ->
          match Hashtbl.find_opt merged k with
          | None -> Hashtbl.add merged k (Array.copy vals, Array.copy counts)
          | Some (mv, mc) ->
              Array.iteri
                (fun i (op, _) ->
                  mc.(i) <- mc.(i) + counts.(i);
                  match op with
                  | Plan.Min -> if vals.(i) < mv.(i) then mv.(i) <- vals.(i)
                  | Plan.Max -> if vals.(i) > mv.(i) then mv.(i) <- vals.(i)
                  | Plan.Sum | Plan.Count | Plan.Avg -> mv.(i) <- mv.(i) + vals.(i))
                aggs)
        table)
    (List.rev !partials);
  let out = Relation.create (ngroup + naggs) in
  Hashtbl.iter
    (fun k (vals, counts) ->
      List.iteri (fun i v -> Int_vec.push (Relation.col out i) v) k;
      Array.iteri
        (fun i (op, _) ->
          let v =
            match op with
            | Plan.Avg -> if counts.(i) = 0 then 0 else vals.(i) / counts.(i)
            | _ -> vals.(i)
          in
          Int_vec.push (Relation.col out (ngroup + i)) v)
        aggs)
    merged;
  Relation.account out;
  out

let run_query t plan =
  Pool.add_serial t.pool t.query_overhead_s;
  let go () =
    let cache : cache option = if t.share_builds then Some (Hashtbl.create 8) else None in
    let result = eval t cache plan in
    (match cache with Some c -> release_cache c | None -> ());
    result
  in
  match t.trace with
  | None -> go ()
  | Some tr ->
      let label = plan_label plan in
      Rs_obs.Trace.span tr ~kind:"executor" label (fun () ->
          let est = estimate t plan in
          let result = go () in
          let actual = Relation.nrows result in
          Rs_obs.Trace.count tr "executor.queries" 1;
          Rs_obs.Trace.count tr "executor.est_rows" est;
          Rs_obs.Trace.count tr "executor.actual_rows" actual;
          Rs_obs.Trace.event tr ~kind:"executor" label
            [ ("est_rows", float_of_int est); ("actual_rows", float_of_int actual) ];
          result)

(* --- set difference (Algorithms 4 and 5) --- *)

let all_cols rel = Array.init (Relation.arity rel) (fun i -> i)

(* Index over the full table [r] keyed by every column: the dedup /
   anti-probe side of both set-difference translations. When [r] is a
   managed recursive table its index persists across iterations and only
   the delta suffix is appended each round. *)
let full_table_index t ?name r =
  let keys = all_cols r in
  match managed t name with
  | Some (m, name) -> (Chained (Index_manager.get m ~name r keys), false)
  | None -> (build_transient t r keys, true)

let opsd_impl t ?name ~rdelta ~r () =
  let idx, own_index = full_table_index t ?name r in
  let n = Relation.nrows rdelta in
  let arity = Relation.arity rdelta in
  let key = Array.make arity 0 in
  let matched = ref 0 in
  let out =
    chunked_output t ~arity ~n (fun frag lo hi ->
        for row = lo to hi - 1 do
          for c = 0 to arity - 1 do
            key.(c) <- Relation.get rdelta ~row ~col:c
          done;
          if idx_mem idx key then incr matched
          else
            for c = 0 to arity - 1 do
              Int_vec.push (Relation.col frag c) key.(c)
            done
        done)
  in
  if own_index then idx_release idx;
  (out, !matched)

let tpsd_impl t ?name ~rdelta ~r () =
  let arity = Relation.arity rdelta in
  let keys = all_cols rdelta in
  (* Phase 1: intersection, building on the smaller input — unless [r]'s
     persistent index already exists, which makes the build side free. *)
  let r_side = Relation.nrows r <= Relation.nrows rdelta || managed t name <> None in
  let hb, own_hb, probe =
    if r_side then
      let idx, own = full_table_index t ?name r in
      (idx, own, rdelta)
    else (build_transient t rdelta keys, true, r)
  in
  let inter = Relation.create arity in
  let key = Array.make arity 0 in
  let n = Relation.nrows probe in
  Pool.parallel_for t.pool 0 n (fun lo hi ->
      for row = lo to hi - 1 do
        for c = 0 to arity - 1 do
          key.(c) <- Relation.get probe ~row ~col:c
        done;
        if idx_mem hb key then
          for c = 0 to arity - 1 do
            Int_vec.push (Relation.col inter c) key.(c)
          done
      done);
  Relation.account inter;
  if own_hb then idx_release hb;
  (* The probe side may contain tuples of [r] several times only if [r] had
     duplicates; IDB tables are deduplicated, so [inter] is a set. *)
  (* Phase 2: Rδ − r. *)
  let hr = build_transient t inter keys in
  let nd = Relation.nrows rdelta in
  let out =
    chunked_output t ~arity ~n:nd (fun frag lo hi ->
        for row = lo to hi - 1 do
          for c = 0 to arity - 1 do
            key.(c) <- Relation.get rdelta ~row ~col:c
          done;
          if not (idx_mem hr key) then
            for c = 0 to arity - 1 do
              Int_vec.push (Relation.col frag c) key.(c)
            done
        done)
  in
  idx_release hr;
  let inter_n = Relation.nrows inter in
  Relation.release inter;
  (out, inter_n)

let with_span t name f =
  match t.trace with Some tr -> Rs_obs.Trace.span tr ~kind:"executor" name f | None -> f ()

let opsd t ?name ~rdelta ~r () = with_span t "opsd" (opsd_impl t ?name ~rdelta ~r)
let tpsd t ?name ~rdelta ~r () = with_span t "tpsd" (tpsd_impl t ?name ~rdelta ~r)
