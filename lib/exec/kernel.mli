(** Compiled rule kernels: the fused join→project→dedup fast path.

    The interpreter's per-iteration loop issues one "SQL query" per delta
    plan, materializes the bag result, and deduplicates it in a separate
    pass — faithful to RecStep-over-QuickStep, but it pays the per-query
    dispatch overhead and an intermediate relation every iteration.
    "Making Formulog Fast" and the GPU Datalog work (PAPERS.md) both show
    what specialized, fused evaluation buys; this module reproduces that
    shape over the columnar substrate.

    {!compile} turns one delta plan of a hot recursive rule into a closure
    specification: a scan of the Δ-table (batched over the worker pool)
    probing the other side's index — acquired through the executor's
    three-tier policy, so recursive and EDB tables hit the persistent
    {!Index_manager} indexes — with head projection and FAST-DEDUP
    ({!Rs_relation.Dedup}) insertion fused into the probe loop. No
    intermediate relation is materialized and no query is issued.

    Supported shapes: [Join] of two (possibly filtered) scans with the
    Δ-table on exactly one side, and [Project] over a filtered scan of the
    Δ-table (linear single-atom rules). Everything else — negation, deeper
    join trees, aggregates — returns [Error reason] and stays interpreted;
    {!Cost.kernel_gate} screens out cold / aggregate / wide-headed rules
    before plans are even inspected. Specialization is monomorphic in head
    arity (1/2/3 fast paths, generic fallback) and probe-key shape (1/2
    column specializations).

    Chaos: both entry points probe {!Rs_chaos.Inject.kernel_should_fail}.
    A compile-time fire yields [Error "chaos"]; an exec-time fire raises
    {!Degraded} {e before any write}, so the interpreter can always fall
    back to the interpreted plan — a kernel fault can cost time, never
    correctness. *)

exception Degraded of string
(** Raised by {!run} when an armed {!Rs_chaos.Fault.Kernel_fail} plan fires
    at [kernel.exec]. Guaranteed to be raised before the kernel writes to
    its dedup table or output relation. *)

type t
(** A compiled kernel for one delta plan of one rule. *)

val arity : t -> int
(** Head arity — the width of the tuples the kernel emits. *)

val compile :
  Executor.t -> probe_table:string -> Plan.t -> (t, string) result
(** [compile ex ~probe_table plan] compiles [plan] into a fused kernel that
    scans [probe_table] (the rule's Δ-table for this plan) and probes the
    other side. [Error reason] (["shape"] / ["negation"] / ["aggregate"] /
    ["cross"] / ["probe"] / ["chaos"]) means the rule must stay on the
    interpreted path. Compilation never touches table contents — only the
    catalog's arities — so it is safe at stratum setup. *)

val run :
  Executor.t -> t -> dedup:Rs_relation.Dedup.t -> out:Rs_relation.Relation.t -> int
(** [run ex k ~dedup ~out] executes the kernel batch-at-a-time over the
    pool: every surviving match is claimed in [dedup] and appended to [out]
    iff fresh. Returns the number of tuples emitted. The caller owns
    [dedup] and [out] (including {!Relation.account} after the batch).
    Records [kernel.execs] / [kernel.fused_probes] / [kernel.emitted] /
    [kernel.batches] / [kernel.batch_rows] on the executor's trace. May
    raise {!Degraded} (chaos) — always before any write. *)
