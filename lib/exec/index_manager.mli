(** Persistent, delta-maintained join indexes with fixpoint lifetime.

    The dominant per-iteration cost of semi-naive evaluation is rebuilding
    hash tables for joins (the observation behind the paper's UIE sharing).
    This manager generalizes the executor's per-query [share_builds] cache to
    the lifetime of a whole interpreter run: indexes are keyed by
    [(table name, key columns)] and live across queries and iterations.

    - On {e stable} relations (EDBs, and lower-stratum IDB tables) the index
      is built once and every later access is a reuse hit.
    - On {e growing} relations (a recursive IDB's full table, which absorbs
      its delta each iteration) the index is extended over the appended
      suffix with {!Rs_relation.Hash_index.append_pool} — amortized-doubling
      delta maintenance instead of an O(|R|) rebuild per iteration.

    Invalidation is by identity and generation: an entry is reused only if
    the catalog still maps the name to the {e same} [Relation.t] (physical
    equality — [replace_table] churn on delta tables is caught here) {e and}
    the relation's {!Rs_relation.Relation.generation} is unchanged (clears
    and in-place rewrites bump it). Anything else rebuilds.

    The [persistent] predicate supplied at creation decides which table
    names are worth managing (the interpreter passes EDBs and
    non-aggregated IDB full tables; per-iteration delta tables are excluded
    because their backing relation changes identity every iteration).

    All index bytes are accounted against {!Rs_storage.Memtrack}; the owner
    must call {!release_all} when the run ends. With a trace attached the
    manager maintains the [executor.index_builds], [executor.index_appends],
    [executor.index_reuse_hits] and [executor.index_rehashes] counters. *)

type t

val create :
  ?trace:Rs_obs.Trace.t ->
  ?parent:t ->
  persistent:(string -> bool) ->
  Rs_parallel.Pool.t ->
  t
(** With [?parent], accesses to names the parent's predicate accepts are
    delegated to (and cached in) the parent, so those indexes outlive this
    manager's {!release_all} — the serving layer passes a store-lifetime
    manager here so base-relation indexes survive across interpreter runs
    and EDB deltas. *)

val eligible : t -> string -> bool
(** [eligible t name] is the [persistent] predicate: should accesses to
    [name] be routed through the manager? *)

val get : t -> name:string -> Rs_relation.Relation.t -> int array -> Rs_relation.Hash_index.t
(** [get t ~name rel keys] returns a valid index over all current rows of
    [rel], reusing / delta-appending / rebuilding as the invalidation rules
    dictate. The returned index is owned by the manager — callers must not
    release it. *)

val builds : t -> int
(** Full builds performed (first access and every invalidation). *)

val appends : t -> int
(** Delta-append maintenance passes performed. *)

val reuse_hits : t -> int
(** Accesses satisfied by an index that was already up to date. *)

val rehashes : t -> int
(** Bucket-table doublings triggered by appends. *)

val rebase_to : t -> name:string -> Rs_relation.Relation.t -> unit
(** [rebase_to t ~name rel] re-points every index held under [name] at the
    replacement relation [rel] via {!Rs_relation.Hash_index.rebase} — valid
    when [rel]'s prefix preserves the old rows in order (an insert-only
    [Edb_store.apply]). Entries the rebase precondition rejects are dropped
    instead (counted as invalidations). *)

val invalidate : t -> name:string -> unit
(** Release and drop every index held under [name]; the next access
    rebuilds. For replacements that do {e not} preserve the indexed prefix
    (retractions). *)

val rebases : t -> int
val invalidations : t -> int

val bytes : t -> int
(** Accounted footprint of every index currently held (not the parent's) —
    lets an owner distinguish deliberate index growth from a leak. *)

val release_all : t -> unit
(** Return every managed index's bytes to {!Rs_storage.Memtrack} and drop
    all entries ({e not} the parent's, if one was supplied). Call when the
    run ends (normally or by OOM/timeout). *)
