module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
(** Physical execution of logical plans — the parallel RDBMS backend.

    Plays QuickStep's role: each {!run_query} call is one "SQL query" issued
    by the Datalog interpreter. It pays a per-query dispatch overhead,
    optimizes joins with the catalog's (possibly stale) statistics, runs the
    operators chunk-parallel on the worker pool, and materializes a bag
    result ([UNION ALL] semantics — deduplication is the engine's separate
    [dedup] call, as in Algorithm 1).

    Build-side indexes come from three tiers, cheapest first:
    - the {!Index_manager} (when attached): persistent chained indexes on
      named tables, reused across queries and delta-appended across fixpoint
      iterations — a join against a managed table costs only its probes;
    - the per-query [share_builds] cache: one build shared by the subplans
      of a UNION ALL (the cache-sharing effect of UIE);
    - a transient build, released when the operator finishes: chained for
      small inputs, {!Rs_relation.Radix_index} (partitioned open addressing)
      for builds of at least [radix_min_rows] rows, where the pointer-free
      probe path wins. *)

type t = {
  pool : Rs_parallel.Pool.t;
  catalog : Catalog.t;
  query_overhead_s : float;
      (** modeled per-query dispatch cost (parse/plan/catalog bookkeeping) *)
  share_builds : bool;
      (** share hash tables built on the same (table, key) within one query —
          the cache-sharing benefit UIE unlocks (paper §5.1) *)
  index_manager : Index_manager.t option;
      (** when set, indexes on tables the manager deems persistent outlive
          the query; the manager owns and releases them *)
  radix_min_rows : int;
      (** one-shot builds at or above this row count use the radix layout *)
  trace : Rs_obs.Trace.t option;
      (** when set, each query records an ["executor"] span labelled with the
          top plan operator, counters (queries, est/actual rows, index
          builds/appends/reuse) and an estimated-vs-actual cardinality
          event *)
}

val create :
  ?query_overhead_s:float ->
  ?share_builds:bool ->
  ?index_manager:Index_manager.t ->
  ?radix_min_rows:int ->
  ?trace:Rs_obs.Trace.t ->
  Rs_parallel.Pool.t ->
  Catalog.t ->
  t

val run_query : t -> Plan.t -> Relation.t
(** Executes one query. The result is a fresh materialized relation (not
    registered in the catalog). *)

val opsd : t -> ?name:string -> rdelta:Relation.t -> r:Relation.t -> unit -> Relation.t * int
(** One-phase set difference [Rδ − R] (Algorithm 4): hash table on [R],
    anti-probe with [Rδ]. Returns [(ΔR, |Rδ ∩ R|)] — the intersection
    cardinality feeds the next iteration's µ. When [name] names a managed
    table, [R]'s all-column index persists across iterations and is
    delta-appended instead of rebuilt. *)

val tpsd : t -> ?name:string -> rdelta:Relation.t -> r:Relation.t -> unit -> Relation.t * int
(** Two-phase set difference (Algorithm 5): intersect first (building on the
    smaller input, or on [R]'s persistent index when [name] is managed —
    an already-built side is free), then [Rδ − r]. Same result and return
    convention as {!opsd}. *)

val estimate : t -> Plan.t -> int
(** The optimizer's cardinality estimate for a plan under current catalog
    statistics. *)

(** {2 Index acquisition for compiled kernels}

    {!Kernel} probes build-side indexes directly instead of issuing queries;
    it acquires them through the same three-tier policy as a join's build
    side (manager-persistent, else transient radix/chained). *)

type built_index
(** Either index layout behind one probe interface; matches enumerate
    newest-row-first in both, so the layout choice never changes result
    bytes. *)

val acquire_index :
  t -> ?scan_name:string -> Relation.t -> int array -> built_index * bool
(** [acquire_index t ?scan_name rel keys] returns [(idx, owned)]. When
    [scan_name] names a table the {!Index_manager} deems persistent, the
    manager's index is returned and [owned] is [false] (the manager
    releases it); otherwise a transient index is built and [owned] is
    [true] — the caller must {!index_release} it. *)

val index_iter_matches : built_index -> int array -> (int -> unit) -> unit

val index_iter_matches1 : built_index -> int -> (int -> unit) -> unit
(** Specialization for one-column keys. *)

val index_iter_matches2 : built_index -> int -> int -> (int -> unit) -> unit
(** Specialization for two-column keys. *)

val index_release : built_index -> unit
