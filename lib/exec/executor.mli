module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
(** Physical execution of logical plans — the parallel RDBMS backend.

    Plays QuickStep's role: each {!run_query} call is one "SQL query" issued
    by the Datalog interpreter. It pays a per-query dispatch overhead,
    optimizes joins with the catalog's (possibly stale) statistics, runs the
    operators chunk-parallel on the worker pool, and materializes a bag
    result ([UNION ALL] semantics — deduplication is the engine's separate
    [dedup] call, as in Algorithm 1). *)

type t = {
  pool : Rs_parallel.Pool.t;
  catalog : Catalog.t;
  query_overhead_s : float;
      (** modeled per-query dispatch cost (parse/plan/catalog bookkeeping) *)
  share_builds : bool;
      (** share hash tables built on the same (table, key) within one query —
          the cache-sharing benefit UIE unlocks (paper §5.1) *)
  trace : Rs_obs.Trace.t option;
      (** when set, each query records an ["executor"] span labelled with the
          top plan operator, counters (queries, est/actual rows, index
          builds) and an estimated-vs-actual cardinality event *)
}

val create :
  ?query_overhead_s:float -> ?share_builds:bool -> ?trace:Rs_obs.Trace.t ->
  Rs_parallel.Pool.t -> Catalog.t -> t

val run_query : t -> Plan.t -> Relation.t
(** Executes one query. The result is a fresh materialized relation (not
    registered in the catalog). *)

val opsd : t -> rdelta:Relation.t -> r:Relation.t -> Relation.t * int
(** One-phase set difference [Rδ − R] (Algorithm 4): build a hash table on
    [R], anti-probe with [Rδ]. Returns [(ΔR, |Rδ ∩ R|)] — the intersection
    cardinality feeds the next iteration's µ. *)

val tpsd : t -> rdelta:Relation.t -> r:Relation.t -> Relation.t * int
(** Two-phase set difference (Algorithm 5): build on the smaller of the two,
    compute the intersection [r], then [Rδ − r]. Same result and return
    convention as {!opsd}. *)

val estimate : t -> Plan.t -> int
(** The optimizer's cardinality estimate for a plan under current catalog
    statistics. *)
