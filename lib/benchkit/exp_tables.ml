(** Table 1 (qualitative system matrix), Table 4 (CPU efficiency) and the
    Appendix-A DSD cost-model validation. *)

module Engines = Rs_engines.Engines
module Engine_intf = Rs_engines.Engine_intf
module Cost = Rs_exec.Cost

let table1 () =
  Report.section ~id:"table1" ~title:"Summary of comparison between systems (paper Table 1)";
  let engines =
    [ Engines.graspan_like; Engines.bddbddb_like; Engines.bigdatalog_like;
      Engines.souffle_like; Engines.recstep ]
  in
  let yn b = if b then "yes" else "no" in
  let row label f =
    label :: List.map (fun (module E : Engine_intf.S) -> f E.capabilities) engines
  in
  Rs_util.Table_printer.print
    ~header:("aspect" :: List.map (fun (module E : Engine_intf.S) -> E.name) engines)
    [
      row "Scale-Up" (fun c -> yn c.Engine_intf.scale_up);
      row "Scale-Out" (fun c -> yn c.Engine_intf.scale_out);
      row "Memory Consumption" (fun c -> c.Engine_intf.memory_consumption);
      row "CPU Utilization" (fun c -> c.Engine_intf.cpu_utilization);
      row "CPU Efficiency" (fun c -> c.Engine_intf.cpu_efficiency);
      row "Hyperparameter Tuning" (fun c -> c.Engine_intf.tuning_required);
      row "Mutual Recursion" (fun c -> yn c.Engine_intf.mutual_recursion);
      row "Non-Recursive Aggregation" (fun c -> yn c.Engine_intf.nonrecursive_aggregation);
      row "Recursive Aggregation" (fun c -> yn c.Engine_intf.recursive_aggregation);
      row "Incremental Maintenance" (fun c ->
          if c.Engine_intf.incremental then "yes" else "recompute");
    ]

(* Table 4: ce = 1 / (time * cores) on representative workloads. *)
let table4 ~scale =
  Report.section ~id:"table4" ~title:"CPU efficiency ce = 1/(t*n) (paper Table 4)";
  let orkut = ("orkut", List.assoc "orkut" (Workloads.real_world ~scale)) in
  let dense = List.nth (Workloads.gn_series ~scale) 3 in
  let rows =
    [
      ("TC (dense G)", Workloads.tc dense,
       [ Engines.bigdatalog_like; Engines.distributed_bigdatalog; Engines.souffle_like; Engines.recstep ]);
      ("SG (dense G)", Workloads.sg (List.nth (Workloads.gn_series ~scale) 2),
       [ Engines.bigdatalog_like; Engines.distributed_bigdatalog; Engines.souffle_like; Engines.recstep ]);
      ("REACH (orkut)", Workloads.reach orkut,
       [ Engines.bigdatalog_like; Engines.distributed_bigdatalog; Engines.souffle_like; Engines.recstep ]);
      ("CC (orkut)", Workloads.cc orkut,
       [ Engines.bigdatalog_like; Engines.distributed_bigdatalog; Engines.recstep ]);
      ("SSSP (orkut)", Workloads.sssp orkut,
       [ Engines.bigdatalog_like; Engines.distributed_bigdatalog; Engines.recstep ]);
      ("AA (dataset 5)", Workloads.andersen ~scale 5,
       [ Engines.bigdatalog_like; Engines.souffle_like; Engines.recstep ]);
      ("CSDA (linux)", Workloads.csda ~scale "linux",
       [ Engines.graspan_like; Engines.bigdatalog_like; Engines.souffle_like; Engines.recstep ]);
      ("CSPA (linux)", Workloads.cspa ~scale "linux",
       [ Engines.graspan_like; Engines.souffle_like; Engines.recstep ]);
    ]
  in
  let all_names = List.map Engines.name Engines.all in
  let cells =
    List.map
      (fun (label, w, engines) ->
        let by_engine =
          List.map
            (fun (module E : Engine_intf.S) ->
              let r = Report.run_one ~timeout_vs:60.0 (module E) w in
              let cell =
                match r.Measure.outcome with
                | Measure.Done t -> Printf.sprintf "%.2e" (1.0 /. (t *. float_of_int r.Measure.workers))
                | o -> Measure.outcome_cell o
              in
              (E.name, cell))
            engines
        in
        (label, by_engine))
      rows
  in
  Rs_util.Table_printer.print ~header:("workload" :: all_names)
    (List.map
       (fun (label, by_engine) ->
         label
         :: List.map (fun n -> Option.value (List.assoc_opt n by_engine) ~default:"-") all_names)
       cells)

(* Appendix A: calibrate alpha, then verify that the cost model picks the
   faster set-difference translation across beta. *)
let costmodel () =
  Report.section ~id:"costmodel"
    ~title:"DSD cost model (Appendix A): measured OPSD vs TPSD against the model's choice";
  let pool = Rs_parallel.Pool.create () in
  Rs_parallel.Pool.begin_run pool;
  let alpha = Cost.calibrate pool () in
  Printf.printf "calibrated alpha = %.2f (threshold beta >= %.2f favours TPSD)\n" alpha
    (2.0 *. alpha /. (alpha -. 1.0));
  let n_delta = 20000 in
  let rng = Rs_util.Rng.create 4242 in
  let betas = [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ] in
  let rows =
    List.map
      (fun beta ->
        let n_r = int_of_float (beta *. float_of_int n_delta) in
        let r = Rs_relation.Relation.create ~name:"R" 2 in
        for i = 0 to n_r - 1 do
          Rs_relation.Relation.push2 r i (Rs_util.Rng.int rng 1000000)
        done;
        (* half of Rdelta intersects R *)
        let rdelta = Rs_relation.Relation.create ~name:"Rdelta" 2 in
        for i = 0 to n_delta - 1 do
          if i mod 2 = 0 && n_r > 0 then begin
            let row = Rs_util.Rng.int rng n_r in
            Rs_relation.Relation.push2 rdelta
              (Rs_relation.Relation.get r ~row ~col:0)
              (Rs_relation.Relation.get r ~row ~col:1)
          end
          else
            Rs_relation.Relation.push2 rdelta (1000000 + i) (Rs_util.Rng.int rng 1000000)
        done;
        let catalog = Rs_exec.Catalog.create () in
        let exec = Rs_exec.Executor.create ~query_overhead_s:0.0 pool catalog in
        let time f =
          let t0 = Rs_util.Clock.now () in
          let x = f () in
          ignore x;
          Rs_util.Clock.now () -. t0
        in
        let t_opsd = time (fun () -> Rs_exec.Executor.opsd exec ~rdelta ~r) in
        let t_tpsd = time (fun () -> Rs_exec.Executor.tpsd exec ~rdelta ~r) in
        let model =
          Cost.choose ~alpha ~r_rows:n_r ~rdelta_rows:n_delta ~mu_prev:(Some 2.0)
        in
        [
          Printf.sprintf "%.1f" beta;
          Printf.sprintf "%.4f" t_opsd;
          Printf.sprintf "%.4f" t_tpsd;
          (match model with Cost.Opsd -> "OPSD" | Cost.Tpsd -> "TPSD");
          (if t_opsd <= t_tpsd then "OPSD" else "TPSD");
        ])
      betas
  in
  Rs_util.Table_printer.print
    ~header:[ "beta=|R|/|Rd|"; "OPSD (s)"; "TPSD (s)"; "model picks"; "measured winner" ]
    rows

let run ~scale =
  table1 ();
  table4 ~scale;
  costmodel ()
