(** Figures 2 and 3: optimization ablation on CSPA/httpd.

    Each RecStep optimization is turned off in isolation; runtimes are
    reported as a percentage of the all-optimizations-off configuration,
    exactly like Figure 2's bars, and Figure 3 reprints the memory
    timelines of the same runs. *)

val fig2 : scale:int -> (string * Measure.run) list
(** Prints the ablation table and returns the per-configuration runs. *)

val fig3 : scale:int -> unit
(** Re-runs {!fig2} and prints the memory timelines of its runs. *)

val run : scale:int -> unit
(** Both figures. *)
