module Table_printer = Rs_util.Table_printer
module Engine_intf = Rs_engines.Engine_intf

let section ~id ~title =
  Printf.printf "\n=== %s: %s ===\n%!" id title

let note msg = Printf.printf "%s\n%!" msg

let run_one ?workers ?mem_budget ?timeout_vs (module E : Engine_intf.S) (w : Workloads.t) =
  let mem_budget =
    (* the paper's Distributed-BigDatalog cluster has 450 GB vs the server's
       160 GB: scale the budget accordingly *)
    let base = Option.value mem_budget ~default:(Rs_storage.Memtrack.machine_bytes ()) in
    if E.name = "Distributed-BigDatalog" then
      int_of_float (2.8 *. float_of_int base)
    else base
  in
  Measure.run ?workers ~mem_budget ?timeout_vs
    ~name:(Printf.sprintf "%s on %s" E.name w.Workloads.label)
    ~make_inputs:w.Workloads.make_edb
    (fun edb pool ~deadline_vs ~trace ->
      let result = E.run ~pool ?deadline_vs ?trace ~edb w.Workloads.program in
      (* touch the output so lazy engines cannot cheat *)
      ignore
        (Rs_relation.Relation.nrows
           (result.Engine_intf.relation_of w.Workloads.output)))

let cross_table ?workers ?mem_budget ?timeout_vs ~engines ~workloads () =
  let rows =
    List.map
      (fun (module E : Engine_intf.S) ->
        let runs = List.map (run_one ?workers ?mem_budget ?timeout_vs (module E)) workloads in
        (E.name, runs))
      engines
  in
  let header = "system" :: List.map (fun w -> w.Workloads.label) workloads in
  Table_printer.print ~header
    (List.map
       (fun (name, runs) -> name :: List.map (fun r -> Measure.outcome_cell r.Measure.outcome) runs)
       rows);
  rows

let resample series ~span ~points =
  let arr = Array.of_list series in
  List.init points (fun i ->
      let t = span *. float_of_int (i + 1) /. float_of_int points in
      (* last value at or before t *)
      let v = ref 0.0 in
      Array.iter (fun (ts, vs) -> if ts <= t then v := vs) arr;
      !v)

let timeline_table ~title ~unit series =
  let span =
    List.fold_left
      (fun acc (_, s) -> List.fold_left (fun a (t, _) -> max a t) acc s)
      1e-9 series
  in
  let points = 10 in
  let header =
    title
    :: List.init points (fun i ->
           Printf.sprintf "%.2fs" (span *. float_of_int (i + 1) /. float_of_int points))
  in
  let rows =
    List.map
      (fun (name, s) ->
        name :: List.map (fun v -> Printf.sprintf "%.1f%s" v unit) (resample s ~span ~points))
      series
  in
  Table_printer.print ~header rows
