(** Million-tenant-shape load benchmark: the autoscaler A/B under a fixed
    Zipf burst train, SLO scorecards per class, outputs proven
    byte-identical across arms. Writes [BENCH_service.json]. *)

val exp : scale:int -> unit

val run : scale:int -> unit
