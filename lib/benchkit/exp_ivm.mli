(** Incremental maintenance vs recompute-per-delta: the same TC workload
    and deterministic churn stream applied through RecStep's counting/DRed
    maintenance and through the generic recompute fallback
    ({!Rs_engines.Engine_intf.maintain_by_recompute}). Prints the paper-style
    table and writes the machine-readable summary — per-side bootstrap and
    apply times, the recompute/incremental ratio, and whether every version's
    outputs were identical — to [BENCH_ivm.json] in the working directory. *)

val exp : scale:int -> unit

val run : scale:int -> unit
