(** Extension experiments beyond the paper's figures.

    [coord_sweep] carries out the study the paper defers to future work
    (§5.3): the trade-off in SG-PBME-COORD's rebalance threshold [t] —
    "if t is too small, there will be too much communication overhead ...;
    on the contrary, if t is too large, workload balancing cannot be well
    achieved". We sweep [t] on a skewed graph and report completion time
    and average CPU utilization, bracketing the sweet spot.

    [uie_sharing] isolates the two mechanisms behind UIE that the paper
    lists (§5.1): saved per-query overhead versus hash-table cache sharing
    across subqueries, by toggling the executor's build cache
    independently of query batching. *)

module Graphs = Rs_datagen.Graphs
module Interpreter = Recstep.Interpreter

let coord_sweep ~scale =
  Report.section ~id:"coord_sweep"
    ~title:"EXTRA: SG-PBME rebalance-threshold trade-off (the paper's future work)";
  let make_arc () = Graphs.rmat ~seed:99 ~n:(2048 * scale) ~m:(8 * 2048 * scale) in
  let thresholds = [ 8; 32; 128; 512; 2048; 8192 ] in
  let rows =
    List.map
      (fun t ->
        let r =
          Measure.run ~repeats:2 ~name:(Printf.sprintf "t=%d" t) ~make_inputs:make_arc
            (fun arc pool ~deadline_vs ~trace:_ ->
              ignore deadline_vs;
              let n = Graphs.vertex_count arc in
              let m =
                Rs_bitmatrix.Pbme.sg ~coordinated:true ~rebalance_threshold:t pool ~n ~arc
              in
              ignore (Rs_bitmatrix.Bitmatrix.cardinal m);
              Rs_bitmatrix.Bitmatrix.release m)
        in
        let avg_util =
          match r.Measure.util_timeline with
          | [] -> 0.0
          | tl -> List.fold_left (fun a (_, u) -> a +. u) 0.0 tl /. float_of_int (List.length tl)
        in
        [ string_of_int t; Measure.outcome_cell r.Measure.outcome; Printf.sprintf "%.1f%%" avg_util ])
      thresholds
  in
  Rs_util.Table_printer.print ~header:[ "threshold t"; "time (s)"; "avg cpu util" ] rows;
  Report.note
    "(small t: work-order overhead dominates; large t: stragglers — the sweet spot is in between)"

let uie_sharing ~scale =
  Report.section ~id:"uie_sharing"
    ~title:"EXTRA: decomposing UIE into query batching vs build-cache sharing";
  let w = Workloads.cspa ~scale:(2 * scale) "httpd" in
  let run name uie share =
    let r =
      Measure.run ~repeats:3 ~name ~make_inputs:w.Workloads.make_edb
        (fun edb pool ~deadline_vs ~trace ->
          let options =
            Interpreter.options ~uie ~share_builds:share ?timeout_vs:deadline_vs ?trace ()
          in
          ignore (Interpreter.run ~options ~pool ~edb w.Workloads.program))
    in
    (name, r)
  in
  (* cache sharing only applies within one UNION ALL query, so the share
     toggle is observable only with uie on; with uie off each subquery is
     its own query and can never share builds *)
  let rows =
    [
      run "UIE (batch + sharing)" true true;
      run "UIE batching only (cache off)" true false;
      run "no UIE (separate queries)" false false;
    ]
  in
  Rs_util.Table_printer.print ~header:[ "configuration"; "time (s)" ]
    (List.map (fun (n, r) -> [ n; Measure.outcome_cell r.Measure.outcome ]) rows)

let run ~scale =
  coord_sweep ~scale;
  uie_sharing ~scale
