(** The serving layer under production-shape load (ROADMAP item 5).

    One fixed-seed {!Rs_load.Load} workload — Zipf tenant skew, bursty
    open-loop arrivals, three SLO classes over shared size-class databases
    — replayed through {!Rs_service.Service.run} twice: a fixed-size arm
    (the configured worker floor, no scaling) and an autoscaled arm
    ({!Rs_service.Autoscale}) growing the virtual machine and cache budget
    from queue depth and windowed tail latency. No deltas and no deadlines
    in this spec, so both arms must serve byte-identical rows per query id
    — the run asserts it via the served checksums — and the arms differ
    only in {e when} results land: makespan and tail latency. Per-class
    p50/p95/p99/p999 for both arms go to [BENCH_service.json]. *)

module Service = Rs_service.Service
module Autoscale = Rs_service.Autoscale
module Load = Rs_load.Load
module Result_cache = Rs_service.Result_cache
module Json = Rs_obs.Json
module Histogram = Rs_obs.Histogram

let base_workers = 2

(* Arrivals crowd a short horizon so the burst windows genuinely queue
   behind [base_workers] — the regime the autoscaler exists for. *)
let load_spec ~scale =
  Load.spec ~tenants:20_000 ~queries:(150 * scale) ~seed:42 ~duration_s:0.5
    ~skew:1.1 ~burstiness:0.8 ~bursts:3 ~deltas:0 ()

let policy () =
  Autoscale.policy ~min_workers:base_workers ~max_workers:16 ~window:16
    ~queue_hi:2.0 ~queue_lo:0.5 ~tail_target_s:0.05 ~cooldown:2
    ~cache_min_bytes:(1 * 1024 * 1024) ~cache_max_bytes:(16 * 1024 * 1024) ()

let run_arm (load : Load.t) ?autoscale () =
  let config =
    Service.config ~workers:base_workers
      ~queue_capacity:(load.Load.spec.Load.queries + 8)
      ~cache_bytes:(1 * 1024 * 1024) ~seed:1 ?autoscale ()
  in
  Service.run ~config ~edb:(load.Load.make_store ()) load.Load.events

(* id → checksum of the served rows; the cross-arm identity oracle *)
let checksums (r : Service.report) =
  List.filter_map
    (fun (c : Service.completion) ->
      match c.Service.c_outcome with
      | Service.Done v -> Some (c.Service.c_id, Result_cache.value_checksum v)
      | _ -> None)
    r.Service.completions
  |> List.sort compare

let exp ~scale =
  Report.section ~id:"load"
    ~title:"EXTRA: SLO scorecard under Zipf burst load, autoscaler on vs off";
  let load = Load.generate (load_spec ~scale) in
  let off = run_arm load () in
  let on = run_arm load ~autoscale:(policy ()) () in
  let identical = checksums off = checksums on in
  let stats_off = Load.slo_stats load off and stats_on = Load.slo_stats load on in
  let pct h p =
    if Histogram.count h = 0 then "-"
    else Printf.sprintf "%.4f" (Histogram.percentile h p)
  in
  Rs_util.Table_printer.print
    ~header:
      [ "class"; "served"; "slo (s)"; "attain off"; "attain on"; "p95 off";
        "p95 on"; "p99 off"; "p99 on" ]
    (List.map2
       (fun (o : Load.class_stats) (n : Load.class_stats) ->
         [
           Load.class_name o.Load.cs_class;
           string_of_int o.Load.cs_served;
           Printf.sprintf "%.3f" o.Load.cs_target_s;
           Printf.sprintf "%.1f%%" (100.0 *. Load.attainment o);
           Printf.sprintf "%.1f%%" (100.0 *. Load.attainment n);
           pct o.Load.cs_hist 95.0;
           pct n.Load.cs_hist 95.0;
           pct o.Load.cs_hist 99.0;
           pct n.Load.cs_hist 99.0;
         ])
       stats_off stats_on);
  Report.note
    (Printf.sprintf
       "(fixed %d workers vs autoscaled %d..16: makespan %.3fs -> %.3fs, \
        %d scale-ups, %d scale-downs, outputs %s)"
       base_workers base_workers off.Service.vtime on.Service.vtime
       (Service.counter on "autoscale.up")
       (Service.counter on "autoscale.down")
       (if identical then "identical" else "DIVERGED"));
  let json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("scale", Json.Int scale);
        ("identical_outputs", Json.Bool identical);
        ( "arms",
          Json.List
            [
              Json.Obj
                [
                  ("autoscale", Json.Bool false);
                  ("workers", Json.Int base_workers);
                  ("slo", Load.slo_json load off);
                ];
              Json.Obj
                [
                  ("autoscale", Json.Bool true);
                  ("workers", Json.Int base_workers);
                  ("slo", Load.slo_json load on);
                ];
            ] );
      ]
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Report.note "(wrote BENCH_service.json)"

let run ~scale = exp ~scale
