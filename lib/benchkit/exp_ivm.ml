(** Incremental maintenance vs recompute across a delta stream.

    The serving layer's warm-refresh path rests on one claim: applying a
    small typed delta through a maintained view ({!Recstep.Ivm}) is much
    cheaper than re-running the program from scratch. This experiment
    measures that claim directly through the engine-level maintenance API:
    the same TC workload and the same deterministic churn stream (each
    delta retracts one original edge and inserts one fresh edge) are
    applied once through RecStep's counting/DRed maintenance
    ([m_incremental = true]) and once through the generic
    recompute-per-delta fallback every baseline engine gets
    ({!Rs_engines.Engine_intf.maintain_by_recompute}). Outputs must be
    identical at every version; the wall-clock ratio is the speedup the
    cache refresh path buys. Results land in [BENCH_ivm.json]. *)

module Graphs = Rs_datagen.Graphs
module Programs = Recstep.Programs
module Relation = Rs_relation.Relation
module Delta = Rs_relation.Delta
module Engine_intf = Rs_engines.Engine_intf
module Json = Rs_obs.Json

let normalize outputs =
  List.sort compare
    (List.map
       (fun (name, rows) ->
         (name, List.sort compare (List.map Array.to_list rows)))
       outputs)

(* Layered random DAG: every edge goes forward (u < v), so the closure is
   big but acyclic. On a cyclic graph one retraction makes DRed's
   overestimate the entire strongly-connected closure — deletion is
   recompute-shaped no matter how it is maintained. Acyclic reachability
   (provenance, build graphs, dataflow) is the structure incremental
   maintenance is actually deployed on: a retraction's cone stays local. *)
let dag ~seed ~n ~deg =
  let state = ref seed in
  let rand m =
    state := (!state * 48271) mod 0x7fffffff;
    !state mod m
  in
  let rows = ref [] in
  for u = 0 to n - 2 do
    for _ = 1 to deg do
      let v = u + 1 + rand (n - 1 - u) in
      rows := [| u; v |] :: !rows
    done
  done;
  Relation.of_rows ~name:"arc" 2 !rows

(* Deterministic serving-shaped churn: every delta inserts a fresh forward
   edge; every fourth also retracts the edge inserted two deltas earlier —
   new facts dominate, corrections hit recent tuples. *)
let delta_stream ~n ~count =
  let edge i =
    let a = i * 17 mod (n - 1) in
    [| a; a + 1 + (((i * 29) + 5) mod (n - 1 - a)) |]
  in
  List.init count (fun i ->
      let ins = Delta.of_inserts "arc" [ edge i ] in
      if i mod 4 = 3 then
        Delta.merge ins (Delta.of_retracts "arc" [ edge (i - 2) ])
      else ins)

let time f =
  let t0 = Rs_util.Clock.now () in
  let r = f () in
  (r, Rs_util.Clock.now () -. t0)

let exp ~scale =
  Report.section ~id:"ivm"
    ~title:"EXTRA: incremental maintenance vs recompute-per-delta";
  let program = Programs.parsed Programs.tc in
  let n = 256 * scale in
  let arc = dag ~seed:7 ~n ~deg:3 in
  let count = 24 in
  let deltas = delta_stream ~n ~count in
  let pool = Rs_parallel.Pool.create ~workers:8 () in
  Rs_parallel.Pool.begin_run pool;
  let module E = (val Rs_engines.Engines.recstep : Engine_intf.S) in
  let edb () = [ ("arc", Relation.copy arc) ] in
  let run_side maintain =
    let m, boot_s = time (fun () -> maintain ~edb:(edb ()) program) in
    let states = ref [ normalize (m.Engine_intf.m_outputs ()) ] in
    let (), apply_s =
      time (fun () ->
          List.iter
            (fun d ->
              ignore (m.Engine_intf.m_apply d);
              states := normalize (m.Engine_intf.m_outputs ()) :: !states)
            deltas)
    in
    (m.Engine_intf.m_incremental, boot_s, apply_s, List.rev !states)
  in
  let inc, inc_boot, inc_apply, inc_states =
    run_side (fun ~edb program -> E.maintain ~pool ~edb program)
  in
  let rc, rc_boot, rc_apply, rc_states =
    run_side (fun ~edb program ->
        Engine_intf.maintain_by_recompute E.run ~pool ~edb program)
  in
  assert (inc && not rc);
  let identical = inc_states = rc_states in
  let ratio = if inc_apply > 0. then rc_apply /. inc_apply else 0. in
  let row name boot apply =
    [ name; Printf.sprintf "%.4f" boot; Printf.sprintf "%.4f" apply;
      Printf.sprintf "%.5f" (apply /. float_of_int count) ]
  in
  Rs_util.Table_printer.print
    ~header:[ "maintenance"; "bootstrap (s)"; "apply total (s)"; "per delta (s)" ]
    [ row "incremental (counting/DRed)" inc_boot inc_apply;
      row "recompute per delta" rc_boot rc_apply ];
  Report.note
    (Printf.sprintf
       "(%d deltas over TC on a layered DAG, n=%d; outputs %s at every version; recompute/incremental = %.1fx)"
       count n
       (if identical then "identical" else "DIVERGED")
       ratio);
  let json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("workload", Json.String "tc");
        ("vertices", Json.Int n);
        ("edges", Json.Int (Relation.nrows arc));
        ("deltas", Json.Int count);
        ("incremental_bootstrap_s", Json.Float inc_boot);
        ("incremental_apply_s", Json.Float inc_apply);
        ("recompute_bootstrap_s", Json.Float rc_boot);
        ("recompute_apply_s", Json.Float rc_apply);
        ("ratio", Json.Float ratio);
        ("identical", Json.Bool identical);
      ]
  in
  let oc = open_out "BENCH_ivm.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Report.note "(wrote BENCH_ivm.json)"

let run ~scale = exp ~scale
