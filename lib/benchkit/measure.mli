(** Measured runs: one engine on one workload under a memory budget and a
    simulated-time budget, with memory and CPU-utilization sampling.

    The harness's failure vocabulary matches the paper's: a run ends
    {!constructor-Done}, "Out of Memory", "timeout", or unsupported (a blank
    bar / missing system in the figures). It is the same vocabulary as
    {!Rs_engines.Engine_intf.outcome}, instantiated at [float]. *)

module Pool = Rs_parallel.Pool

type 'a engine_outcome = 'a Rs_engines.Engine_intf.outcome =
  | Done of 'a  (** for a measured run: simulated seconds *)
  | Oom
  | Timeout
  | Unsupported of string
  | Fault of { cls : Rs_chaos.Fault.cls; point : string }

type outcome = float engine_outcome

type run = {
  run_name : string;
  outcome : outcome;
  peak_mem_pct : float;  (** peak tracked bytes / machine bytes *)
  mem_timeline : (float * float) list;  (** (simulated s, mem %) *)
  util_timeline : (float * float) list;  (** (simulated s, utilization %) *)
  workers : int;
  wall_s : float;  (** real seconds the measurement took *)
  trace : Rs_obs.Trace.t option;  (** per-run profile, unless [with_trace:false] *)
}

val run :
  ?workers:int ->
  ?mem_budget:int ->
  ?timeout_vs:float ->
  ?repeats:int ->
  ?with_trace:bool ->
  name:string ->
  make_inputs:(unit -> 'i) ->
  ('i -> Pool.t -> deadline_vs:float option -> trace:Rs_obs.Trace.t option -> unit) ->
  run
(** [run ~name ~make_inputs f] builds the inputs (untimed, outside the
    budget), resets the memory tracker, and executes [f] on a fresh pool.
    [mem_budget] defaults to the machine size; [timeout_vs] to no limit.
    [repeats > 1] applies the paper's methodology: one discarded warm-up
    run, then the average of [repeats] measured runs (timelines, peak
    memory and trace come from the last).

    A trace on the pool's simulated clock is handed to [f] unless
    [with_trace:false]; after the run the pool's batch events are mirrored
    into it, so [run.trace] is a self-contained profile. The warm-up run is
    never traced.

    The three simulated failures are folded into the {!outcome} via
    {!Rs_engines.Engine_intf.guard} — [f] should let them propagate. *)

val outcome_cell : outcome -> string
(** Short table cell: "12.3", "OOM", ">10h" (timeout), "-" (unsupported). *)

val util_series : Pool.t -> buckets:int -> (float * float) list
(** Post-hoc CPU-utilization timeline from the pool's batch events. *)
