(** Figures 15 and 16: program-analysis comparison.

    Fig 15a: Andersen's analysis on the seven synthetic datasets.
    Fig 15b: context-sensitive dataflow (CSDA) on linux/postgresql/httpd.
    Fig 15c: context-sensitive points-to (CSPA) — BigDatalog shows "-"
    (mutual recursion), as in the paper.
    Fig 16: CPU-utilization timelines on AA and CSPA. *)

val fig15 : scale:int -> unit
val fig16 : scale:int -> unit

val run : scale:int -> unit
(** Both figures. *)
