module Pool = Rs_parallel.Pool
module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
module Radix_index = Rs_relation.Radix_index
module Rng = Rs_util.Rng

type strategy = Rebuild_chained | Delta_append | Rebuild_radix

let strategy_name = function
  | Rebuild_chained -> "rebuild-chained"
  | Delta_append -> "delta-append"
  | Rebuild_radix -> "rebuild-radix"

type iteration_sample = { ix_index_s : float; ix_probe_s : float }

(* One simulated fixpoint: a full relation growing by a fresh delta each
   iteration (the shape of a recursive IDB absorbing its delta), with the
   full-table join index maintained by [strategy] and then probed once per
   delta row (the delta-rule join). Returns one sample per iteration, in
   iteration order; the index/probe split is what the table reports. *)
let run_strategy pool ~iters ~base_rows ~delta_rows strategy =
  let rng = Rng.create 42 in
  let key_space = 4 * (base_rows + (iters * delta_rows)) in
  let full = Relation.create ~name:"full" 2 in
  let push n =
    for _ = 1 to n do
      Relation.push2 full (Rng.int rng key_space) (Rng.int rng key_space)
    done
  in
  push base_rows;
  let chained = ref None in
  let samples = ref [] in
  for _it = 1 to iters do
    push delta_rows;
    let t0 = Pool.vtime_now pool in
    let probe1 =
      match strategy with
      | Rebuild_chained ->
          let idx = Hash_index.build_pool pool full [| 0 |] in
          Hash_index.iter_matches1 idx
      | Delta_append ->
          let idx =
            match !chained with
            | Some idx ->
                ignore (Hash_index.append_pool pool idx);
                idx
            | None ->
                let idx = Hash_index.build_pool pool full [| 0 |] in
                chained := Some idx;
                idx
          in
          Hash_index.iter_matches1 idx
      | Rebuild_radix ->
          let idx = Radix_index.build_pool pool full [| 0 |] in
          Radix_index.iter_matches1 idx
    in
    let t1 = Pool.vtime_now pool in
    (* probe with the delta suffix, chunk-parallel like the executor's join *)
    let n = Relation.nrows full in
    let hits = ref 0 in
    Pool.parallel_for pool (n - delta_rows) n (fun lo hi ->
        let local = ref 0 in
        for row = lo to hi - 1 do
          probe1 (Relation.get full ~row ~col:0) (fun _ -> incr local)
        done;
        hits := !hits + !local);
    ignore !hits;
    let t2 = Pool.vtime_now pool in
    samples := { ix_index_s = t1 -. t0; ix_probe_s = t2 -. t1 } :: !samples
  done;
  List.rev !samples

let total f samples = List.fold_left (fun a s -> a +. f s) 0.0 samples

let exp ~scale =
  Report.section ~id:"join"
    ~title:"EXTRA: join-index maintenance — rebuild vs delta-append vs radix";
  let iters = 12 in
  let base_rows = 20_000 * scale and delta_rows = 4_000 * scale in
  let strategies = [ Rebuild_chained; Delta_append; Rebuild_radix ] in
  let runs =
    List.map
      (fun strategy ->
        let per_iter = ref [] in
        let r =
          Measure.run ~repeats:2 ~name:(strategy_name strategy) ~make_inputs:(fun () -> ())
            (fun () pool ~deadline_vs:_ ~trace:_ ->
              per_iter := run_strategy pool ~iters ~base_rows ~delta_rows strategy)
        in
        (strategy, r, !per_iter))
      strategies
  in
  let header =
    "iteration" :: List.map (fun s -> strategy_name s ^ " idx (s)") strategies
  in
  let cell v = Printf.sprintf "%.5f" v in
  let rows =
    List.init iters (fun i ->
        string_of_int (i + 1)
        :: List.map (fun (_, _, samples) -> cell (List.nth samples i).ix_index_s) runs)
    @ [
        "total index"
        :: List.map (fun (_, _, samples) -> cell (total (fun s -> s.ix_index_s) samples)) runs;
        "total probe"
        :: List.map (fun (_, _, samples) -> cell (total (fun s -> s.ix_probe_s) samples)) runs;
        "run time (s)"
        :: List.map (fun (_, r, _) -> Measure.outcome_cell r.Measure.outcome) runs;
      ]
  in
  Rs_util.Table_printer.print ~header rows;
  Report.note
    "(rebuild pays O(|full|) every iteration; delta-append pays O(|delta|) amortized, \
     with occasional doubling rehashes; radix is the fastest one-shot build but still \
     rebuilds — the executor uses it for large transient sides only)";
  let total_of strategy =
    let _, _, samples = List.find (fun (s, _, _) -> s = strategy) runs in
    total (fun s -> s.ix_index_s) samples
  in
  if total_of Delta_append < total_of Rebuild_chained then
    Report.note "(delta-append beat rebuild-chained on total index time, as expected)"
  else
    Report.note
      "(WARNING: delta-append did not beat rebuild-chained — timing noise or a regression)"
