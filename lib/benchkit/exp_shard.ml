(** Sharded scale-out: makespan and movement vs node count.

    TC over a skewed RMAT graph through {!Rs_shard.Shard_exec} at 1, 2, 4
    and 8 simulated nodes, plus the 4-node run with colocation analysis
    disabled. Every configuration must produce byte-identical output; what
    changes is the simulated makespan (the coordinator clock, charged at
    the slowest node per superstep) and the movement counters. Left-linear
    TC is the planner's best case — the base rule is colocated and the
    recursive rule broadcasts only the delta bindings — so the colocated
    runs keep [shuffle_tuples = 0] while the forced-shuffle run charges
    every retained head tuple as a repartition and its makespan degrades.
    Results land in [BENCH_shard.json]. *)

module Graphs = Rs_datagen.Graphs
module Programs = Recstep.Programs
module Relation = Rs_relation.Relation
module Shard_exec = Rs_shard.Shard_exec
module Pool = Rs_parallel.Pool
module Json = Rs_obs.Json

type row = {
  r_shards : int;
  r_colocation : bool;
  r_makespan_s : float;
  r_busy_s : float;
  r_utilization : float;
  r_supersteps : int;
  r_shuffle_tuples : int;
  r_broadcast_tuples : int;
  r_rows : int list list;  (** sorted tc rows, for the identity check *)
}

let run_config ~arc ~program ~shards ~colocation =
  let pool = Pool.create ~workers:8 () in
  Pool.begin_run pool;
  let options = Shard_exec.options ~shards ~colocation () in
  let result =
    Shard_exec.run ~options ~pool ~edb:[ ("arc", Relation.copy arc) ] program
  in
  let tc = result.Shard_exec.relation_of "tc" in
  let rows = List.map Array.to_list (Relation.sorted_distinct_rows tc) in
  let makespan = Pool.vtime_now pool in
  let busy =
    List.fold_left
      (fun acc (ns : Shard_exec.node_stats) -> acc +. ns.Shard_exec.ns_busy_s)
      0. result.Shard_exec.node_stats
  in
  {
    r_shards = shards;
    r_colocation = colocation;
    r_makespan_s = makespan;
    r_busy_s = busy;
    r_utilization =
      (if makespan > 0. then busy /. (makespan *. float_of_int (shards * 8)) else 0.);
    r_supersteps = result.Shard_exec.supersteps;
    r_shuffle_tuples = result.Shard_exec.shuffle_tuples;
    r_broadcast_tuples = result.Shard_exec.broadcast_tuples;
    r_rows = rows;
  }

let exp ~scale =
  Report.section ~id:"shard"
    ~title:"EXTRA: sharded scale-out — makespan and movement vs node count";
  let program = Programs.parsed Programs.tc in
  let n = 256 * scale in
  let arc = Graphs.rmat ~seed:11 ~n ~m:(4 * n) in
  let configs =
    [ (1, true); (2, true); (4, true); (8, true); (4, false) ]
  in
  let rows =
    List.map (fun (shards, colocation) -> run_config ~arc ~program ~shards ~colocation) configs
  in
  let reference = (List.hd rows).r_rows in
  let identical = List.for_all (fun r -> r.r_rows = reference) rows in
  let label r =
    Printf.sprintf "%d%s" r.r_shards (if r.r_colocation then "" else " (no colocation)")
  in
  Rs_util.Table_printer.print
    ~header:
      [ "shards"; "makespan (s)"; "busy (s)"; "util"; "supersteps"; "shuffle"; "broadcast" ]
    (List.map
       (fun r ->
         [
           label r;
           Printf.sprintf "%.4f" r.r_makespan_s;
           Printf.sprintf "%.4f" r.r_busy_s;
           Printf.sprintf "%.2f" r.r_utilization;
           string_of_int r.r_supersteps;
           string_of_int r.r_shuffle_tuples;
           string_of_int r.r_broadcast_tuples;
         ])
       rows);
  let colocated4 = List.find (fun r -> r.r_shards = 4 && r.r_colocation) rows in
  let shuffled4 = List.find (fun r -> r.r_shards = 4 && not r.r_colocation) rows in
  let colocated_beats_shuffle = colocated4.r_makespan_s < shuffled4.r_makespan_s in
  Report.note
    (Printf.sprintf
       "(TC on RMAT n=%d m=%d, %d tc rows; outputs %s across configurations; colocated 4-shard %s forced shuffle: %.4fs vs %.4fs)"
       n (Relation.nrows arc)
       (List.length reference)
       (if identical then "identical" else "DIVERGED")
       (if colocated_beats_shuffle then "beats" else "DOES NOT BEAT")
       colocated4.r_makespan_s shuffled4.r_makespan_s);
  let json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("workload", Json.String "tc");
        ("vertices", Json.Int n);
        ("edges", Json.Int (Relation.nrows arc));
        ("tc_rows", Json.Int (List.length reference));
        ("identical", Json.Bool identical);
        ("colocated_beats_shuffle", Json.Bool colocated_beats_shuffle);
        ( "configs",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("shards", Json.Int r.r_shards);
                     ("colocation", Json.Bool r.r_colocation);
                     ("makespan_s", Json.Float r.r_makespan_s);
                     ("busy_s", Json.Float r.r_busy_s);
                     ("utilization", Json.Float r.r_utilization);
                     ("supersteps", Json.Int r.r_supersteps);
                     ("shuffle_tuples", Json.Int r.r_shuffle_tuples);
                     ("broadcast_tuples", Json.Int r.r_broadcast_tuples);
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_shard.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Report.note "(wrote BENCH_shard.json)"

let run ~scale = exp ~scale
