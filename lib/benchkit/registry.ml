(** Experiment registry: one entry per paper table / figure. *)

type experiment = { id : string; title : string; run : scale:int -> unit }

let all =
  [
    { id = "table1"; title = "System feature matrix (Table 1)"; run = (fun ~scale -> ignore scale; Exp_tables.table1 ()) };
    { id = "fig2"; title = "Optimization ablation (Figure 2)"; run = (fun ~scale -> ignore (Exp_ablation.fig2 ~scale)) };
    { id = "fig3"; title = "Memory effects of optimizations (Figure 3)"; run = (fun ~scale -> Exp_ablation.fig3 ~scale) };
    { id = "fig6"; title = "PBME memory saving (Figure 6)"; run = (fun ~scale -> Exp_pbme.fig6 ~scale) };
    { id = "fig7"; title = "SG-PBME coordination (Figure 7)"; run = (fun ~scale -> Exp_pbme.fig7 ~scale) };
    { id = "fig8"; title = "Scaling-up cores (Figure 8)"; run = (fun ~scale -> Exp_scaling.fig8 ~scale) };
    { id = "fig9"; title = "Scaling-up data (Figure 9)"; run = (fun ~scale -> Exp_scaling.fig9 ~scale) };
    { id = "fig10"; title = "TC and SG across systems (Figure 10)"; run = (fun ~scale -> Exp_cross.fig10 ~scale) };
    { id = "fig11"; title = "Memory usage of TC and SG (Figure 11)"; run = (fun ~scale -> Exp_cross.fig11 ~scale) };
    { id = "fig12"; title = "RMAT sweep across systems (Figure 12)"; run = (fun ~scale -> Exp_cross.fig12 ~scale) };
    { id = "fig13"; title = "Real-world graphs across systems (Figure 13)"; run = (fun ~scale -> Exp_cross.fig13 ~scale) };
    { id = "fig14"; title = "Memory on livejournal (Figure 14)"; run = (fun ~scale -> Exp_cross.fig14 ~scale) };
    { id = "fig15"; title = "Program analyses across systems (Figure 15)"; run = (fun ~scale -> Exp_progan.fig15 ~scale) };
    { id = "fig16"; title = "CPU utilization on program analyses (Figure 16)"; run = (fun ~scale -> Exp_progan.fig16 ~scale) };
    { id = "table4"; title = "CPU efficiency (Table 4)"; run = (fun ~scale -> Exp_tables.table4 ~scale) };
    { id = "costmodel"; title = "DSD cost model (Appendix A)"; run = (fun ~scale -> ignore scale; Exp_tables.costmodel ()) };
    { id = "coord_sweep"; title = "EXTRA: SG-PBME threshold sweep (paper's future work)"; run = (fun ~scale -> Exp_extra.coord_sweep ~scale) };
    { id = "uie_sharing"; title = "EXTRA: UIE batching vs cache sharing"; run = (fun ~scale -> Exp_extra.uie_sharing ~scale) };
    { id = "service"; title = "EXTRA: serving throughput, result cache on vs off"; run = (fun ~scale -> Exp_service.service ~scale) };
    { id = "load"; title = "EXTRA: SLO scorecard under Zipf burst load, autoscaler on vs off (BENCH_service.json)"; run = (fun ~scale -> Exp_load.exp ~scale) };
    { id = "join"; title = "EXTRA: join-index maintenance — rebuild vs delta-append vs radix"; run = (fun ~scale -> Exp_join.exp ~scale) };
    { id = "ivm"; title = "EXTRA: incremental maintenance vs recompute-per-delta (BENCH_ivm.json)"; run = (fun ~scale -> Exp_ivm.exp ~scale) };
    { id = "shard"; title = "EXTRA: sharded scale-out, makespan and movement vs node count (BENCH_shard.json)"; run = (fun ~scale -> Exp_shard.exp ~scale) };
    { id = "kernel"; title = "EXTRA: compiled rule kernels vs interpreted fixpoint (BENCH_kernel.json)"; run = (fun ~scale -> Exp_kernel.exp ~scale) };
    { id = "prov"; title = "EXTRA: why-provenance recording overhead, tags on vs off (BENCH_prov.json)"; run = (fun ~scale -> Exp_prov.exp ~scale) };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
