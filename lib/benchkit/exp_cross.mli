(** Figures 10-14: cross-system comparison on graph analytics.

    Fig 10: TC and SG across engines on the Gn-p family. Fig 11: memory
    timelines of the TC/SG runs on the mid-size graph. Fig 12: REACH, CC and
    SSSP on the RMAT size sweep. Fig 13: the same tasks on the
    real-world-like graphs. Fig 14: memory timelines on livejournal.
    OOM and timeout cells are reported exactly like the paper's bars. *)

val fig10 : scale:int -> unit
val fig11 : scale:int -> unit
val fig12 : scale:int -> unit
val fig13 : scale:int -> unit
val fig14 : scale:int -> unit

val run : scale:int -> unit
(** All five figures. *)
