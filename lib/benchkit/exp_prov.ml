(** Why-provenance recording overhead: the same recursive workloads run
    with a tag store attached and without one.

    Tags are recorded out of band at the absorption point, so the only
    legitimate costs are the per-candidate sampling scan and the per-tag
    hash insert — both charged to the simulated clock. The contract this
    experiment pins: outputs byte-identical on both sides (tags never touch
    the relations), full tag coverage at sample 1.0, and simulated runtime
    within 2x of the untagged run — cheap enough to leave on in a serving
    deployment, which is what makes [recstep explain] answerable from a
    warm view instead of a dedicated debug rerun. Results land in
    [BENCH_prov.json]. *)

module Interpreter = Recstep.Interpreter
module Provenance = Recstep.Provenance
module Programs = Recstep.Programs
module Relation = Rs_relation.Relation
module Graphs = Rs_datagen.Graphs
module Pool = Rs_parallel.Pool
module Json = Rs_obs.Json

let canon rel = List.map Array.to_list (Relation.sorted_distinct_rows rel)

(* Same deep layered DAG as the kernel experiment: many semi-naive
   iterations, so per-absorption costs actually accumulate. *)
let dag ~seed ~n ~deg =
  let state = ref seed in
  let rand m =
    state := (!state * 48271) mod 0x7fffffff;
    !state mod m
  in
  let rows = ref [] in
  for u = 0 to n - 2 do
    for _ = 1 to deg do
      let v = u + 1 + rand (min 3 (n - 1 - u)) in
      rows := [| u; v |] :: !rows
    done
  done;
  Relation.of_rows ~name:"arc" 2 !rows

let run_side ?prov program arc =
  let pool = Pool.create ~workers:8 () in
  Pool.begin_run pool;
  let options =
    match prov with
    | Some p -> Interpreter.options ~provenance:p ()
    | None -> Interpreter.options ()
  in
  let result =
    Interpreter.run ~options ~pool ~edb:[ ("arc", Relation.copy arc) ] program
  in
  let outputs =
    List.map
      (fun name -> (name, canon (result.Interpreter.relation_of name)))
      (List.sort compare program.Recstep.Ast.outputs)
  in
  (outputs, (Pool.stats pool).Pool.vtime)

let workload ~name ~src ~arc =
  let program = Programs.parsed src in
  let prov = Provenance.create () in
  let on_out, on_s = run_side ~prov program arc in
  let off_out, off_s = run_side program arc in
  let identical = on_out = off_out in
  let overhead = if off_s > 0. then on_s /. off_s else 0. in
  let out_rows = List.fold_left (fun acc (_, rows) -> acc + List.length rows) 0 on_out in
  let full_coverage =
    List.for_all
      (fun (p, rows) -> Provenance.tagged prov ~pred:p = List.length rows)
      on_out
  in
  let row =
    [
      name;
      string_of_int (Relation.nrows arc);
      string_of_int out_rows;
      string_of_int (Provenance.recorded prov);
      Printf.sprintf "%.4f" off_s;
      Printf.sprintf "%.4f" on_s;
      Printf.sprintf "%.2fx" overhead;
      (if identical then "yes" else "NO");
    ]
  in
  let json =
    Json.Obj
      [
        ("workload", Json.String name);
        ("edges", Json.Int (Relation.nrows arc));
        ("output_rows", Json.Int out_rows);
        ("recorded", Json.Int (Provenance.recorded prov));
        ("full_coverage", Json.Bool full_coverage);
        ("prov_off_s", Json.Float off_s);
        ("prov_on_s", Json.Float on_s);
        ("overhead", Json.Float overhead);
        ("identical", Json.Bool identical);
      ]
  in
  (row, json, (name, overhead, identical))

let exp ~scale =
  Report.section ~id:"prov"
    ~title:"EXTRA: why-provenance recording overhead, tags on vs off";
  let tc_arc = dag ~seed:11 ~n:(192 * scale) ~deg:2 in
  let sg_arc = Graphs.gnp ~seed:3 ~n:(48 * scale) ~p:0.06 in
  let results =
    [
      workload ~name:"tc" ~src:Programs.tc ~arc:tc_arc;
      workload ~name:"sg" ~src:Programs.sg ~arc:sg_arc;
    ]
  in
  Rs_util.Table_printer.print
    ~header:
      [ "workload"; "edges"; "out rows"; "tagged"; "off (s)"; "on (s)";
        "overhead"; "identical" ]
    (List.map (fun (row, _, _) -> row) results);
  List.iter
    (fun (_, _, (name, overhead, identical)) ->
      Report.note
        (Printf.sprintf "(%s: %.2fx with tags on, outputs %s)" name overhead
           (if identical then "identical" else "DIVERGED")))
    results;
  let json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("scale", Json.Int scale);
        ("workloads", Json.List (List.map (fun (_, j, _) -> j) results));
      ]
  in
  let oc = open_out "BENCH_prov.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Report.note "(wrote BENCH_prov.json)"

let run ~scale = exp ~scale
