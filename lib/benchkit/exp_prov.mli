(** Why-provenance recording overhead: TC and SG evaluated with a tag
    store attached vs without. Prints the per-workload table and writes
    the machine-readable summary — per-side simulated runtimes, the on/off
    overhead ratio, tag counts and coverage, and whether outputs were
    byte-identical — to [BENCH_prov.json] in the working directory. The
    acceptance bar ([bench/check.sh]): outputs identical and overhead at
    most 2x on every workload. *)

val exp : scale:int -> unit

val run : scale:int -> unit
