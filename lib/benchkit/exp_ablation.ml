(** Figures 2 and 3: optimization ablation on CSPA/httpd.

    Each RecStep optimization is turned off in isolation; runtimes are
    reported as a percentage of the all-optimizations-off configuration,
    exactly like Figure 2's bars, and Figure 3 reprints the memory
    timelines of the same runs. *)

module Interpreter = Recstep.Interpreter

(* Each configuration is the {!Interpreter.options} smart constructor with
   one knob flipped — no record updates, so a new option field can never be
   silently inherited from a stale default. *)
let configs =
  [
    ("RecStep", fun ?timeout_vs ?trace () -> Interpreter.options ?timeout_vs ?trace ());
    ( "UIE-off",
      fun ?timeout_vs ?trace () -> Interpreter.options ~uie:false ?timeout_vs ?trace () );
    ( "DSD-off",
      fun ?timeout_vs ?trace () ->
        Interpreter.options ~dsd:Interpreter.Dsd_force_opsd ?timeout_vs ?trace () );
    ( "OOF-FA",
      fun ?timeout_vs ?trace () ->
        Interpreter.options ~oof:Interpreter.Oof_full ?timeout_vs ?trace () );
    ( "EOST-off",
      fun ?timeout_vs ?trace () -> Interpreter.options ~eost:false ?timeout_vs ?trace () );
    ( "FAST-DEDUP-off",
      fun ?timeout_vs ?trace () ->
        Interpreter.options ~fast_dedup:false ?timeout_vs ?trace () );
    ( "OOF-NA",
      fun ?timeout_vs ?trace () ->
        Interpreter.options ~oof:Interpreter.Oof_off ?timeout_vs ?trace () );
    ( "RecStep-NO-OP",
      fun ?timeout_vs ?trace () ->
        Interpreter.options ~uie:false ~dsd:Interpreter.Dsd_force_opsd
          ~oof:Interpreter.Oof_off ~eost:false ~fast_dedup:false ~pbme:false ?timeout_vs
          ?trace () );
  ]

let run_config (w : Workloads.t) (cname, mk_options) =
  Measure.run ~repeats:3 ~name:cname ~make_inputs:w.make_edb
    (fun edb pool ~deadline_vs ~trace ->
      let options = mk_options ?timeout_vs:deadline_vs ?trace () in
      ignore (Interpreter.run ~options ~pool ~edb w.program))

let fig2 ~scale =
  Report.section ~id:"fig2" ~title:"Optimizations for RecStep (CSPA on httpd), % of NO-OP time";
  let w = Workloads.cspa ~scale "httpd" in
  let runs = List.map (fun c -> (fst c, run_config w c)) configs in
  let noop_time =
    match List.assoc "RecStep-NO-OP" runs with
    | { Measure.outcome = Measure.Done t; _ } -> t
    | _ -> nan
  in
  Rs_util.Table_printer.print ~header:[ "configuration"; "time (s)"; "% of NO-OP" ]
    (List.map
       (fun (name, r) ->
         match r.Measure.outcome with
         | Measure.Done t ->
             [ name; Printf.sprintf "%.3f" t; Printf.sprintf "%.0f%%" (100.0 *. t /. noop_time) ]
         | o -> [ name; Measure.outcome_cell o; "-" ])
       runs);
  runs

let fig3 ~scale =
  let runs = fig2 ~scale in
  Report.section ~id:"fig3" ~title:"Memory effects of optimizations (CSPA on httpd)";
  Report.timeline_table ~title:"config \\ mem%" ~unit:"%"
    (List.map (fun (name, r) -> (name, r.Measure.mem_timeline)) runs)

let run ~scale = fig3 ~scale
