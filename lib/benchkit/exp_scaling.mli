(** Figures 8 and 9: RecStep scalability.

    Figure 8 sweeps the (simulated) core count on CSPA/httpd and
    CC/livejournal and reports speedup over one core. Figure 9 sweeps data
    size: CC on the RMAT series, and Andersen's analysis on the seven
    synthetic datasets with the paper's "theoretical-linear" reference
    line. *)

val fig8 : scale:int -> unit
val fig9 : scale:int -> unit

val run : scale:int -> unit
(** Both figures. *)
