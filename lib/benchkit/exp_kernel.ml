(** Compiled rule kernels vs the interpreted fixpoint.

    The interpreter's relational loop pays a fixed per-query dispatch
    overhead and materializes an intermediate bag per delta plan per
    iteration; the compiled kernels ({!Rs_exec.Kernel}) fuse
    join→project→dedup into one closure and skip both. This experiment runs
    the same recursive workloads with [compiled_kernels] on and off (PBME
    held off, so the relational path under test actually executes) on fresh
    pools and compares {e simulated} runtimes. TC's delta plan is exactly
    the fused binary shape, so its speedup is the headline number; SG's
    recursive rule is a three-way join outside the monomorphized shapes, so
    it documents the fallback ladder: zero compiled rules, ratio ≈ 1, same
    answer. Outputs must be byte-identical on both sides of every row.
    Results land in [BENCH_kernel.json]. *)

module Interpreter = Recstep.Interpreter
module Programs = Recstep.Programs
module Relation = Rs_relation.Relation
module Graphs = Rs_datagen.Graphs
module Pool = Rs_parallel.Pool
module Trace = Rs_obs.Trace
module Json = Rs_obs.Json

let canon rel = List.map Array.to_list (Relation.sorted_distinct_rows rel)

(* Layered random DAG (forward edges only): the closure is deep — ~n
   semi-naive iterations — which is precisely the regime the kernels
   target; a dense or shallow graph would hide the per-iteration overhead
   they remove. Same shape as the IVM experiment's generator. *)
let dag ~seed ~n ~deg =
  let state = ref seed in
  let rand m =
    state := (!state * 48271) mod 0x7fffffff;
    !state mod m
  in
  let rows = ref [] in
  for u = 0 to n - 2 do
    for _ = 1 to deg do
      let v = u + 1 + rand (min 3 (n - 1 - u)) in
      rows := [| u; v |] :: !rows
    done
  done;
  Relation.of_rows ~name:"arc" 2 !rows

let run_side ~kernels program arc =
  let pool = Pool.create ~workers:8 () in
  Pool.begin_run pool;
  let trace = Trace.create ~now:(fun () -> Pool.vtime_now pool) () in
  let options =
    Interpreter.options ~pbme:false ~compiled_kernels:kernels ~trace ()
  in
  let result =
    Interpreter.run ~options ~pool ~edb:[ ("arc", Relation.copy arc) ] program
  in
  let outputs =
    List.map
      (fun name -> (name, canon (result.Interpreter.relation_of name)))
      (List.sort compare program.Recstep.Ast.outputs)
  in
  (outputs, (Pool.stats pool).Pool.vtime, trace)

let workload ~name ~src ~arc =
  let program = Programs.parsed src in
  let on_out, on_s, on_tr = run_side ~kernels:true program arc in
  let off_out, off_s, _ = run_side ~kernels:false program arc in
  let identical = on_out = off_out in
  let ratio = if on_s > 0. then off_s /. on_s else 0. in
  let compiled = Trace.counter on_tr "kernel.compiled_rules" in
  let row =
    [
      name;
      string_of_int (Relation.nrows arc);
      string_of_int compiled;
      Printf.sprintf "%.4f" off_s;
      Printf.sprintf "%.4f" on_s;
      Printf.sprintf "%.1fx" ratio;
      (if identical then "yes" else "NO");
    ]
  in
  let json =
    Json.Obj
      [
        ("workload", Json.String name);
        ("edges", Json.Int (Relation.nrows arc));
        ("compiled_rules", Json.Int compiled);
        ("fallback_rules", Json.Int (Trace.counter on_tr "kernel.fallback_rules"));
        ("fused_probes", Json.Int (Trace.counter on_tr "kernel.fused_probes"));
        ("emitted", Json.Int (Trace.counter on_tr "kernel.emitted"));
        ("kernels_off_s", Json.Float off_s);
        ("kernels_on_s", Json.Float on_s);
        ("ratio", Json.Float ratio);
        ("identical", Json.Bool identical);
      ]
  in
  (row, json, (name, ratio, identical, compiled))

let exp ~scale =
  Report.section ~id:"kernel"
    ~title:"EXTRA: compiled rule kernels vs interpreted fixpoint";
  let tc_arc = dag ~seed:11 ~n:(192 * scale) ~deg:2 in
  let sg_arc = Graphs.gnp ~seed:3 ~n:(48 * scale) ~p:0.06 in
  let results =
    [
      workload ~name:"tc" ~src:Programs.tc ~arc:tc_arc;
      workload ~name:"sg" ~src:Programs.sg ~arc:sg_arc;
    ]
  in
  Rs_util.Table_printer.print
    ~header:
      [ "workload"; "edges"; "compiled"; "interp (s)"; "kernels (s)"; "speedup";
        "identical" ]
    (List.map (fun (row, _, _) -> row) results);
  List.iter
    (fun (_, _, (name, ratio, identical, compiled)) ->
      Report.note
        (Printf.sprintf "(%s: %d compiled rules, %.1fx, outputs %s)" name compiled
           ratio
           (if identical then "identical" else "DIVERGED")))
    results;
  let json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("scale", Json.Int scale);
        ("workloads", Json.List (List.map (fun (_, j, _) -> j) results));
      ]
  in
  let oc = open_out "BENCH_kernel.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Report.note "(wrote BENCH_kernel.json)"

let run ~scale = exp ~scale
