(** Serving-layer experiment: the result cache on a repeated-query tenant mix.

    A serving deployment sees the same programs against the same databases
    over and over — dashboards refresh, analyses re-run on unchanged inputs.
    This experiment replays one such mix (four tenants interleaving TC and
    SG over two shared graphs, every query submitted several times) through
    {!Rs_service.Service.run} twice: once with the result cache at its
    default budget, once with the cache disabled. Same events, same seed —
    the only difference is whether a repeat re-executes on the pool or is
    served from cache at the cache-hit cost. *)

module Graphs = Rs_datagen.Graphs
module Programs = Recstep.Programs
module Service = Rs_service.Service
module Edb_store = Rs_service.Edb_store

let events ~scale =
  let tc = Programs.parsed Programs.tc and sg = Programs.parsed Programs.sg in
  let submission = Service.submission in
  let events = ref [] in
  let tenants = [ "alice"; "bob"; "carol"; "dave" ] in
  List.iteri
    (fun ti tenant ->
      let base = 0.001 *. float_of_int ti in
      for k = 0 to 2 do
        let at = base +. (0.01 *. float_of_int k) in
        events := Service.Submit (submission ~at ~tenant ~edb:"g1" tc) :: !events;
        if ti < 2 then
          events :=
            Service.Submit
              (submission ~at:(at +. 0.002) ~mem:Rs_service.Admission.Medium ~tenant ~edb:"g2" sg)
            :: !events
      done;
      ignore scale)
    tenants;
  List.rev !events

let store ~scale () =
  let t = Edb_store.create () in
  Edb_store.define t "g1" [ ("arc", Graphs.gnp ~seed:7 ~n:(48 * scale) ~p:0.05) ];
  Edb_store.define t "g2" [ ("arc", Graphs.gnp ~seed:11 ~n:(24 * scale) ~p:0.05) ];
  t

let row name report =
  let open Service in
  [
    name;
    string_of_int (counter report "done");
    string_of_int (counter report "cache_hit");
    Printf.sprintf "%.4f" report.vtime;
    Printf.sprintf "%.1f" report.throughput;
    Printf.sprintf "%.4f" report.p50_latency;
    Printf.sprintf "%.4f" report.p95_latency;
  ]

let service ~scale =
  Report.section ~id:"service"
    ~title:"EXTRA: serving throughput with the result cache on vs off";
  let run cache_bytes =
    (* fresh store per run: Service.run mutates it *)
    let config = Service.config ~workers:8 ~cache_bytes ~seed:1 () in
    Service.run ~config ~edb:(store ~scale ()) (events ~scale)
  in
  let on = run (64 * 1024 * 1024) and off = run 0 in
  Rs_util.Table_printer.print
    ~header:
      [ "cache"; "served"; "cache hits"; "vtime (s)"; "q/s"; "p50 (s)"; "p95 (s)" ]
    [ row "on (64 MiB)" on; row "off" off ];
  Report.note
    (Printf.sprintf
       "(identical workload and seed; %d of %d served queries came from cache)"
       (Service.counter on "cache_hit")
       (Service.counter on "done"))

let run ~scale = service ~scale
