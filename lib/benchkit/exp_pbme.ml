(** Figures 6 and 7: the PBME technique.

    Figure 6 compares memory (and completion) of the bit-matrix evaluation
    against the plain relational loop on growing dense graphs — the
    non-PBME configuration runs out of memory first, as in the paper.
    Figure 7 compares the coordinated and zero-coordination SG kernels on a
    skewed graph: CPU utilization and completion time differ, memory
    barely. *)

module Interpreter = Recstep.Interpreter
module Graphs = Rs_datagen.Graphs

let mem_budget_bytes = 24 * 1024 * 1024

let pbme_vs_relational ~title ~make_workload ~graphs =
  Report.section ~id:"fig6" ~title;
  let rows =
    List.concat_map
      (fun (gname, make_arc) ->
        List.map
          (fun (variant, pbme) ->
            let w : Workloads.t = make_workload (gname, make_arc) in
            let r =
              Measure.run ~mem_budget:mem_budget_bytes
                ~name:(variant ^ "-" ^ gname)
                ~make_inputs:w.Workloads.make_edb
                (fun edb pool ~deadline_vs ~trace ->
                  let options =
                    Interpreter.options ~pbme ?timeout_vs:deadline_vs ?trace ()
                  in
                  ignore (Interpreter.run ~options ~pool ~edb w.Workloads.program))
            in
            let status =
              match r.Measure.outcome with
              | Measure.Done t -> Printf.sprintf "done in %.3fs" t
              | Measure.Oom -> "failed (OOM)"
              | Measure.Timeout -> "failed (timeout)"
              | Measure.Unsupported m -> m
              | Measure.Fault { cls; _ } ->
                  Printf.sprintf "failed (fault:%s)" (Rs_chaos.Fault.cls_name cls)
            in
            ( Printf.sprintf "%s-%s" variant gname,
              status,
              r.Measure.peak_mem_pct,
              r.Measure.mem_timeline ))
          [ ("NON-PBME", false); ("PBME", true) ])
      graphs
  in
  Rs_util.Table_printer.print ~header:[ "run"; "status"; "peak mem %" ]
    (List.map (fun (n, s, p, _) -> [ n; s; Printf.sprintf "%.1f" p ]) rows);
  Report.timeline_table ~title:"run \\ mem%" ~unit:"%"
    (List.map (fun (n, _, _, tl) -> (n, tl)) rows)

let fig6 ~scale =
  let dense name n p = (name, fun () -> Graphs.gnp ~seed:(3 * n) ~n:(n * scale) ~p) in
  pbme_vs_relational
    ~title:"Memory saving of PBME on TC (budget 24 MiB; paper Fig 6a)"
    ~make_workload:Workloads.tc
    ~graphs:[ dense "G200" 200 0.04; dense "G400" 400 0.02; dense "G800" 800 0.01 ];
  pbme_vs_relational
    ~title:"Memory saving of PBME on SG (budget 24 MiB; paper Fig 6b)"
    ~make_workload:Workloads.sg
    ~graphs:[ dense "G50" 50 0.16; dense "G100" 100 0.08; dense "G200" 200 0.04 ]

let fig7 ~scale =
  Report.section ~id:"fig7"
    ~title:"SG-PBME coordination vs zero-coordination (skewed RMAT graph)";
  let make_arc () = Graphs.rmat ~seed:99 ~n:(2048 * scale) ~m:(8 * 2048 * scale) in
  let runs =
    List.map
      (fun (name, coordinated) ->
        let r =
          Measure.run ~repeats:2 ~name ~make_inputs:make_arc
            (fun arc pool ~deadline_vs ~trace:_ ->
              ignore deadline_vs;
              let n = Graphs.vertex_count arc in
              let m =
                Rs_bitmatrix.Pbme.sg ~coordinated ~rebalance_threshold:128 pool ~n ~arc
              in
              ignore (Rs_bitmatrix.Bitmatrix.cardinal m);
              Rs_bitmatrix.Bitmatrix.release m)
        in
        (name, r))
      [ ("PBME-NO-COORD", false); ("PBME-COORD", true) ]
  in
  Rs_util.Table_printer.print ~header:[ "variant"; "time (s)"; "peak mem %" ]
    (List.map
       (fun (n, r) ->
         [ n; Measure.outcome_cell r.Measure.outcome; Printf.sprintf "%.2f" r.Measure.peak_mem_pct ])
       runs);
  Report.timeline_table ~title:"variant \\ cpu util" ~unit:"%"
    (List.map (fun (n, r) -> (n, r.Measure.util_timeline)) runs)

let run ~scale =
  fig6 ~scale;
  fig7 ~scale
