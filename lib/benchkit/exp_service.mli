(** Serving-layer experiment: result cache on vs off on a repeated-query
    tenant mix (see the implementation header for the workload). *)

val service : scale:int -> unit

val run : scale:int -> unit
