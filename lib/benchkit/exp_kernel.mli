(** Compiled rule kernels vs the interpreted fixpoint: the same recursive
    workloads (TC, whose delta plan is the fused binary shape, and SG,
    whose three-way join documents the fallback ladder) run with
    [compiled_kernels] on and off, PBME held off, on fresh pools. Prints
    the per-workload table and writes the machine-readable summary —
    per-side simulated runtimes, the off/on speedup ratio, kernel counters,
    and whether outputs were byte-identical — to [BENCH_kernel.json] in the
    working directory. *)

val exp : scale:int -> unit

val run : scale:int -> unit
