(** Experiment registry: one entry per paper table / figure. *)

type experiment = {
  id : string;  (** the paper's figure/table id, e.g. "fig10" *)
  title : string;
  run : scale:int -> unit;
}

val all : experiment list
(** In paper order; includes the EXTRA studies at the end. *)

val find : string -> experiment option
(** Look up an experiment by [id]. *)
