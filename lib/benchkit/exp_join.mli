(** EXTRA experiment: join-index maintenance on a growing recursive relation.

    Isolates the cost the executor's {!Rs_exec.Index_manager} removes: a full
    relation grows by a delta each iteration (the semi-naive recursive
    shape), and the full-table join index is maintained three ways —

    - rebuild-chained: fresh {!Rs_relation.Hash_index.build_pool} every
      iteration (the pre-manager executor behavior);
    - delta-append: one build, then
      {!Rs_relation.Hash_index.append_pool} over the appended suffix each
      iteration (what the manager does for recursive tables);
    - rebuild-radix: fresh {!Rs_relation.Radix_index.build_pool} every
      iteration (the layout the executor picks for large transient sides).

    Each iteration the index is probed once per delta row, as in the
    delta-rule join. The report table has one row per iteration with the
    simulated index-maintenance seconds per strategy, plus totals. *)

val exp : scale:int -> unit
