(** Figures 6 and 7: the PBME technique.

    Figure 6 compares memory (and completion) of the bit-matrix evaluation
    against the plain relational loop on growing dense graphs — the
    non-PBME configuration runs out of memory first, as in the paper.
    Figure 7 compares the coordinated and zero-coordination SG kernels on a
    skewed graph: CPU utilization and completion time differ, memory
    barely. *)

val fig6 : scale:int -> unit
val fig7 : scale:int -> unit

val run : scale:int -> unit
(** Both figures. *)
