module Pool = Rs_parallel.Pool
module Memtrack = Rs_storage.Memtrack
module Engine_intf = Rs_engines.Engine_intf

type 'a engine_outcome = 'a Engine_intf.outcome =
  | Done of 'a
  | Oom
  | Timeout
  | Unsupported of string
  | Fault of { cls : Rs_chaos.Fault.cls; point : string }

type outcome = float engine_outcome

type run = {
  run_name : string;
  outcome : outcome;
  peak_mem_pct : float;
  mem_timeline : (float * float) list;
  util_timeline : (float * float) list;
  workers : int;
  wall_s : float;
  trace : Rs_obs.Trace.t option;
}

let util_series pool ~buckets =
  let events = Pool.events pool in
  let stats = Pool.stats pool in
  let span = max stats.Pool.vtime 1e-9 in
  let width = span /. float_of_int buckets in
  let busy = Array.make buckets 0.0 in
  (* batches spread their busy time uniformly over their makespan *)
  List.iter
    (fun e ->
      let t0 = e.Pool.ev_vstart and len = max e.Pool.ev_vlen 1e-12 in
      let rate = e.Pool.ev_busy /. len in
      let b0 = int_of_float (t0 /. width) and b1 = int_of_float ((t0 +. len) /. width) in
      for b = max 0 b0 to min (buckets - 1) b1 do
        let lo = max t0 (float_of_int b *. width) in
        let hi = min (t0 +. len) (float_of_int (b + 1) *. width) in
        if hi > lo then busy.(b) <- busy.(b) +. (rate *. (hi -. lo))
      done)
    events;
  (* time not covered by batches is serial: one worker busy *)
  let batch_cover = Array.make buckets 0.0 in
  List.iter
    (fun e ->
      let t0 = e.Pool.ev_vstart and len = e.Pool.ev_vlen in
      let b0 = int_of_float (t0 /. width) and b1 = int_of_float ((t0 +. len) /. width) in
      for b = max 0 b0 to min (buckets - 1) b1 do
        let lo = max t0 (float_of_int b *. width) in
        let hi = min (t0 +. len) (float_of_int (b + 1) *. width) in
        if hi > lo then batch_cover.(b) <- batch_cover.(b) +. (hi -. lo)
      done)
    events;
  let k = float_of_int stats.Pool.workers in
  List.init buckets (fun b ->
      let serial = max 0.0 (width -. batch_cover.(b)) in
      let total_busy = busy.(b) +. serial in
      (float_of_int b *. width, 100.0 *. total_busy /. (k *. width)))

let run_once ?workers ?mem_budget ?timeout_vs ?(with_trace = true) ~name ~make_inputs f =
  Memtrack.hard_reset ();
  Memtrack.set_budget None;
  let inputs = make_inputs () in
  Memtrack.set_budget
    (Some (Option.value mem_budget ~default:(Memtrack.machine_bytes ())));
  let pool = Pool.create ?workers () in
  let trace =
    if with_trace then Some (Rs_obs.Trace.create ~now:(fun () -> Pool.vtime_now pool) ())
    else None
  in
  let mem_samples = ref [] in
  let last_sample = ref (-1.0) in
  Pool.on_progress pool (fun vt ->
      if vt -. !last_sample > 0.0005 then begin
        last_sample := vt;
        mem_samples := (vt, Memtrack.percent (Memtrack.live ())) :: !mem_samples
      end);
  Memtrack.reset_peak ();
  let wall0 = Rs_util.Clock.now () in
  Pool.begin_run pool;
  (* the simulated failures fold into [outcome] at this one boundary *)
  let outcome =
    Engine_intf.outcome_map
      (fun () -> (Pool.stats pool).Pool.vtime)
      (Engine_intf.guard (fun () -> f inputs pool ~deadline_vs:timeout_vs ~trace))
  in
  Memtrack.set_budget None;
  let stats = Pool.stats pool in
  mem_samples := (stats.Pool.vtime, Memtrack.percent (Memtrack.live ())) :: !mem_samples;
  (* mirror the pool's batch events so the profile is self-contained *)
  (match trace with
  | Some tr ->
      List.iter
        (fun e ->
          Rs_obs.Trace.add_batch tr ~start:e.Pool.ev_vstart ~len:e.Pool.ev_vlen
            ~busy:e.Pool.ev_busy)
        (Pool.events pool)
  | None -> ());
  {
    run_name = name;
    outcome;
    peak_mem_pct = Memtrack.percent (Memtrack.peak ());
    mem_timeline = List.rev !mem_samples;
    util_timeline = util_series pool ~buckets:20;
    workers = stats.Pool.workers;
    wall_s = Rs_util.Clock.now () -. wall0;
    trace;
  }

let run ?workers ?mem_budget ?timeout_vs ?(repeats = 1) ?with_trace ~name ~make_inputs f =
  if repeats <= 1 then run_once ?workers ?mem_budget ?timeout_vs ?with_trace ~name ~make_inputs f
  else begin
    (* paper methodology: discard the first run, average the rest *)
    ignore
      (run_once ?workers ?mem_budget ?timeout_vs ~with_trace:false ~name ~make_inputs f);
    let runs =
      List.init repeats (fun _ ->
          run_once ?workers ?mem_budget ?timeout_vs ?with_trace ~name ~make_inputs f)
    in
    let last = List.nth runs (repeats - 1) in
    let times =
      List.filter_map (fun r -> match r.outcome with Done t -> Some t | _ -> None) runs
    in
    if List.length times = repeats then
      let avg = List.fold_left ( +. ) 0.0 times /. float_of_int repeats in
      { last with outcome = Done avg }
    else last
  end

let outcome_cell = function
  | Done t -> Printf.sprintf "%.3f" t
  | Oom -> "OOM"
  | Timeout -> "timeout"
  | Unsupported _ -> "-"
  | Fault { cls; _ } -> Printf.sprintf "fault:%s" (Rs_chaos.Fault.cls_name cls)
