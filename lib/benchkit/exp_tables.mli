(** Table 1 (qualitative system matrix), Table 4 (CPU efficiency) and the
    Appendix-A DSD cost-model validation. *)

val table1 : unit -> unit
val table4 : scale:int -> unit
val costmodel : unit -> unit

val run : scale:int -> unit
(** Both tables and the cost-model check. *)
