(** Extension experiments beyond the paper's figures.

    [coord_sweep] carries out the study the paper defers to future work
    (§5.3): the trade-off in SG-PBME-COORD's rebalance threshold [t].
    [uie_sharing] isolates the two mechanisms behind UIE that the paper
    lists (§5.1): saved per-query overhead versus hash-table cache sharing
    across subqueries. *)

val coord_sweep : scale:int -> unit
val uie_sharing : scale:int -> unit

val run : scale:int -> unit
(** Both studies. *)
