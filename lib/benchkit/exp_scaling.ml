(** Figures 8 and 9: RecStep scalability.

    Figure 8 sweeps the (simulated) core count on CSPA/httpd and
    CC/livejournal and reports speedup over one core. Figure 9 sweeps data
    size: CC on the RMAT series, and Andersen's analysis on the seven
    synthetic datasets with the paper's "theoretical-linear" reference
    line. *)

module Interpreter = Recstep.Interpreter

let core_counts = [ 1; 2; 4; 8; 16; 20; 32; 40 ]

let time_of (r : Measure.run) =
  match r.Measure.outcome with Measure.Done t -> t | _ -> nan

let speedup_series (w : Workloads.t) =
  List.map
    (fun workers ->
      let r =
        Measure.run ~workers ~name:(Printf.sprintf "%s @%d" w.Workloads.label workers)
          ~make_inputs:w.Workloads.make_edb
          (fun edb pool ~deadline_vs ~trace ->
            let options = Interpreter.options ?timeout_vs:deadline_vs ?trace () in
            ignore (Interpreter.run ~options ~pool ~edb w.Workloads.program))
      in
      (workers, time_of r))
    core_counts

let fig8 ~scale =
  Report.section ~id:"fig8" ~title:"Scaling-up cores: speedup over 1 thread";
  (* fixed per-query overheads dominate tiny inputs, so the core sweep uses
     4x the harness scale — the paper's inputs are minutes long *)
  let scale = 12 * scale in
  let workloads =
    [
      Workloads.cspa ~scale "httpd";
      Workloads.cc (List.assoc "livejournal" (Workloads.real_world ~scale)
                    |> fun f -> ("livejournal", f));
    ]
  in
  let header = "workload" :: List.map string_of_int core_counts in
  Rs_util.Table_printer.print ~header
    (List.map
       (fun w ->
         let series = speedup_series w in
         let t1 = List.assoc 1 series in
         w.Workloads.label
         :: List.map (fun (_, t) -> Printf.sprintf "%.2fx" (t1 /. t)) series)
       workloads)

let fig9 ~scale =
  Report.section ~id:"fig9" ~title:"Scaling-up data: CC on RMAT; AA on datasets 1-7";
  let rmat = Workloads.rmat_series ~scale ~points:6 in
  let cc_rows =
    List.map
      (fun g ->
        let w = Workloads.cc g in
        let r =
          Measure.run ~name:w.Workloads.label ~make_inputs:w.Workloads.make_edb
            (fun edb pool ~deadline_vs ~trace ->
              let options = Interpreter.options ?timeout_vs:deadline_vs ?trace () in
              ignore (Interpreter.run ~options ~pool ~edb w.Workloads.program))
        in
        (fst g, time_of r))
      rmat
  in
  Rs_util.Table_printer.print ~header:("CC on" :: List.map fst cc_rows)
    [ "time (s)" :: List.map (fun (_, t) -> Printf.sprintf "%.3f" t) cc_rows ];
  let aa_rows =
    List.map
      (fun n ->
        let w = Workloads.andersen ~scale n in
        let r =
          Measure.run ~name:w.Workloads.label ~make_inputs:w.Workloads.make_edb
            (fun edb pool ~deadline_vs ~trace ->
              let options = Interpreter.options ?timeout_vs:deadline_vs ?trace () in
              ignore (Interpreter.run ~options ~pool ~edb w.Workloads.program))
        in
        (n, time_of r))
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  let t1 = snd (List.hd aa_rows) in
  Rs_util.Table_printer.print
    ~header:("AA dataset" :: List.map (fun (n, _) -> string_of_int n) aa_rows)
    [
      "actual time (s)" :: List.map (fun (_, t) -> Printf.sprintf "%.3f" t) aa_rows;
      (* dataset n has n times the variables of dataset 1 *)
      "theoretical-linear"
      :: List.map (fun (n, _) -> Printf.sprintf "%.3f" (t1 *. float_of_int n)) aa_rows;
    ]

let run ~scale =
  fig8 ~scale;
  fig9 ~scale
