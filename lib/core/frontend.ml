module Relation = Rs_relation.Relation
module Pool = Rs_parallel.Pool

exception Parse_error of { path : string; line : int; msg : string }

let parse_error path line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { path; line; msg })) fmt

let load_tsv ?name ~arity path =
  let r = Relation.create ?name arity in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          let line = String.trim (input_line ic) in
          incr lineno;
          if line <> "" && line.[0] <> '#' then begin
            let parts =
              String.split_on_char '\t' line
              |> List.concat_map (String.split_on_char ' ')
              |> List.filter (fun s -> s <> "")
            in
            let fields =
              List.map
                (fun s ->
                  match int_of_string_opt s with
                  | Some v -> v
                  | None -> parse_error path !lineno "not an integer: %S" s)
                parts
            in
            if List.length fields <> arity then
              parse_error path !lineno "expected %d fields, got %d" arity
                (List.length fields);
            Relation.push_row r (Array.of_list fields)
          end
        done
      with End_of_file -> ());
  Relation.account r;
  r

let save_tsv r path =
  let oc = open_out path in
  let arity = Relation.arity r in
  for row = 0 to Relation.nrows r - 1 do
    for c = 0 to arity - 1 do
      if c > 0 then output_char oc '\t';
      output_string oc (string_of_int (Relation.get r ~row ~col:c))
    done;
    output_char oc '\n'
  done;
  close_out oc

let relation_of_list ?name arity rows = Relation.of_rows ?name arity rows

let edges ?name pairs =
  let r = Relation.create ?name:(Some (Option.value name ~default:"arc")) 2 in
  List.iter (fun (x, y) -> Relation.push2 r x y) pairs;
  r

let run_text ?options ?workers ~edb src =
  let program = Parser.parse src in
  let pool = Pool.create ?workers () in
  Pool.begin_run pool;
  let result = Interpreter.run ?options ~pool ~edb program in
  (result, Pool.stats pool)

let result_rows (result : Interpreter.result) name =
  Relation.sorted_distinct_rows (result.relation_of name)
