(** Query generator (paper §4): Datalog rules → relational plans.

    Each rule body compiles to a left-deep join chain in body-atom order,
    with constant and repeated-variable constraints as scan filters,
    comparison literals as residual join predicates, negated atoms as
    anti-joins against lower-stratum tables, and the head projection
    embedded in the top operator. For rules in a recursive stratum the
    semi-naive delta rewriting produces one subplan per occurrence of a
    current-stratum predicate, scanning that occurrence's Δ-table and the
    full tables elsewhere (the overlap between subplans is absorbed by the
    engine's dedup step, as with QuickStep's UNION ALL translation).

    Aggregate-headed rules compile to *candidate* plans: the aggregate
    argument's value is emitted as a plain column and the engine's aggregate
    state folds it (which is what makes recursive MIN/MAX aggregation
    incremental). *)

module Plan = Rs_exec.Plan

val delta_name : string -> string
(** Catalog name of a predicate's Δ-table ("pred@delta"). *)

type compiled =
  | Fact of int array  (** ground rule: tuple to seed the head relation *)
  | Query of {
      base : Plan.t;  (** all-full-tables version (initialization) *)
      deltas : (string * Plan.t) list;
          (** one per current-stratum atom occurrence, tagged with the
              predicate whose Δ-table the subplan scans — the interpreter
              skips subplans whose Δ went empty; empty list for base rules *)
    }

val compile_rule : Analyzer.t -> Analyzer.stratum -> Ast.rule -> compiled
(** Raises [Analyzer.Analysis_error] on rules the translation cannot handle
    (none of the paper's benchmarks do). *)
