module Pool = Rs_parallel.Pool
module Relation = Rs_relation.Relation
module Dedup = Rs_relation.Dedup
module Catalog = Rs_exec.Catalog
module Executor = Rs_exec.Executor
module Plan = Rs_exec.Plan
module Cost = Rs_exec.Cost
module Kernel = Rs_exec.Kernel
module Txn = Rs_storage.Txn
module Int_vec = Rs_util.Int_vec

type oof_mode = Oof_off | Oof_normal | Oof_full

type dsd_mode = Dsd_dynamic | Dsd_force_opsd | Dsd_force_tpsd

type options = {
  uie : bool;
  oof : oof_mode;
  dsd : dsd_mode;
  eost : bool;
  fast_dedup : bool;
  pbme : bool;
  persistent_indexes : bool;
  compiled_kernels : bool;
  shared_indexes : Rs_exec.Index_manager.t option;
  query_overhead_s : float;
  alpha : float;
  timeout_vs : float option;
  hoard_memory : bool;
  share_builds : bool;
  trace : Rs_obs.Trace.t option;
  provenance : Provenance.t option;
}

let options ?(uie = true) ?(oof = Oof_normal) ?(dsd = Dsd_dynamic) ?(eost = true)
    ?(fast_dedup = true) ?(pbme = true) ?(persistent_indexes = true)
    ?(compiled_kernels = true) ?shared_indexes
    ?(query_overhead_s = 0.002) ?(alpha = Cost.default_alpha) ?timeout_vs
    ?(hoard_memory = false) ?(share_builds = true) ?trace ?provenance () =
  {
    uie;
    oof;
    dsd;
    eost;
    fast_dedup;
    pbme;
    persistent_indexes;
    compiled_kernels;
    shared_indexes;
    query_overhead_s;
    alpha;
    timeout_vs;
    hoard_memory;
    share_builds;
    trace;
    provenance;
  }

let default_options = options ()

type iteration_info = {
  it_stratum : int;
  it_iteration : int;
  it_idb : string;
  it_delta_rows : int;
  it_vtime : float;
}

type result = {
  outputs : (string * Relation.t) list;
  relation_of : string -> Relation.t;
  iterations : int;
  queries : int;
  pbme_strata : int;
  io_bytes : int;
  dsd_choices : (Cost.choice * int) list;
}

exception Timeout_simulated of float

(* --- aggregate state: group key -> per-agg (acc, count) --- *)

type agg_state = {
  sig_ : Analyzer.agg_sig;
  table : (int list, int array * int array) Hashtbl.t;
  mutable dense : int array option;
      (* Fast path for the recursive-aggregation shape of CC and SSSP:
         [p(key, MIN/MAX(v))] with one integer group column. [dense.(key)]
         holds the current optimum (the op's init value = absent), so state
         rebuilds scan an array chunk-parallel instead of walking a hash
         table serially. *)
}

let agg_init_value = function
  | Ast.Min -> max_int
  | Ast.Max -> min_int
  | Ast.Sum | Ast.Count | Ast.Avg -> 0

(* Fold one candidate tuple (full head layout) into the state; returns true
   iff any accumulator changed (the tuple contributes to Δ). *)
let agg_fold st tuple =
  let key = List.map (fun p -> tuple.(p)) st.sig_.group_positions in
  let ops = st.sig_.agg_positions in
  let vals, counts =
    match Hashtbl.find_opt st.table key with
    | Some acc -> acc
    | None ->
        let acc =
          ( Array.of_list (List.map (fun (_, op) -> agg_init_value op) ops),
            Array.make (List.length ops) 0 )
        in
        Hashtbl.add st.table key acc;
        acc
  in
  let changed = ref false in
  List.iteri
    (fun i (pos, op) ->
      let v = tuple.(pos) in
      counts.(i) <- counts.(i) + 1;
      match op with
      | Ast.Min -> if v < vals.(i) then begin vals.(i) <- v; changed := true end
      | Ast.Max -> if v > vals.(i) then begin vals.(i) <- v; changed := true end
      | Ast.Sum | Ast.Avg ->
          vals.(i) <- vals.(i) + v;
          changed := true
      | Ast.Count ->
          vals.(i) <- vals.(i) + 1;
          changed := true)
    ops;
  !changed

let dense_shape sig_ =
  match (sig_.Analyzer.group_positions, sig_.Analyzer.agg_positions) with
  | [ 0 ], [ (1, (Ast.Min | Ast.Max)) ] -> true
  | _ -> false

let dense_op st =
  match st.sig_.agg_positions with [ (_, op) ] -> op | _ -> assert false

let dense_ensure st key =
  let a = Option.get st.dense in
  if key < Array.length a then a
  else begin
    let cap = max (key + 1) (2 * Array.length a) in
    let b = Array.make cap (agg_init_value (dense_op st)) in
    Array.blit a 0 b 0 (Array.length a);
    st.dense <- Some b;
    b
  end

let dense_merge st key v =
  let a = dense_ensure st key in
  let better =
    match dense_op st with
    | Ast.Min -> v < a.(key)
    | Ast.Max -> v > a.(key)
    | _ -> assert false
  in
  if better then a.(key) <- v;
  better

let agg_merge_generic st key (pvals, pcounts) =
  let ops = st.sig_.agg_positions in
  match Hashtbl.find_opt st.table key with
  | None ->
      Hashtbl.add st.table key (Array.copy pvals, Array.copy pcounts);
      true
  | Some (vals, counts) ->
      let changed = ref false in
      List.iteri
        (fun i (_, op) ->
          counts.(i) <- counts.(i) + pcounts.(i);
          match op with
          | Ast.Min -> if pvals.(i) < vals.(i) then begin vals.(i) <- pvals.(i); changed := true end
          | Ast.Max -> if pvals.(i) > vals.(i) then begin vals.(i) <- pvals.(i); changed := true end
          | Ast.Sum | Ast.Avg | Ast.Count ->
              if pvals.(i) <> 0 then begin
                vals.(i) <- vals.(i) + pvals.(i);
                changed := true
              end)
        ops;
      !changed

(* Merge a chunk-local accumulator into the state (two-phase parallel
   aggregation); returns true iff the global accumulator changed. *)
let agg_merge st key acc =
  match st.dense with
  | Some _ -> (
      match key with [ k ] -> dense_merge st k (fst acc).(0) | _ -> assert false)
  | None -> agg_merge_generic st key acc

(* Rebuild the head-layout tuple for a state entry (finalizing AVG). *)
let agg_tuple st key (vals, counts) arity =
  let tuple = Array.make arity 0 in
  List.iteri (fun i p -> tuple.(p) <- List.nth key i) st.sig_.group_positions;
  List.iteri
    (fun i (p, op) ->
      tuple.(p) <-
        (match op with
        | Ast.Avg -> if counts.(i) = 0 then 0 else vals.(i) / counts.(i)
        | _ -> vals.(i)))
    st.sig_.agg_positions;
  tuple

let agg_rebuild_relation pool st name arity =
  match st.dense with
  | Some a ->
      let absent = agg_init_value (dense_op st) in
      let fragments = ref [] in
      Rs_parallel.Pool.parallel_for pool 0 (Array.length a) (fun lo hi ->
          let frag = Relation.create 2 in
          for k = lo to hi - 1 do
            if a.(k) <> absent then Relation.push2 frag k a.(k)
          done;
          fragments := frag :: !fragments);
      let r = Relation.concat_parallel pool 2 (List.rev !fragments) in
      ignore name;
      r
  | None ->
      let r = Relation.create ~name arity in
      Hashtbl.iter (fun key acc -> Relation.push_row r (agg_tuple st key acc arity)) st.table;
      Relation.account r;
      r

(* --- interpreter --- *)

type idb_state = {
  name : string;
  arity : int;
  compiled : Planner.compiled list;  (* one per rule for this head *)
  agg : agg_state option;
  kernels : Kernel.t list option;
      (* compiled fused kernels, aligned 1:1 with the concatenation of the
         rules' delta plans; [None] = stay on the interpreted path *)
  mutable mu_prev : float option;  (* DSD µ from the previous iteration *)
}

(* What one IDB produced in a recursive round, before absorption. *)
type eval_result =
  | Ev_none  (* every subplan skipped *)
  | Ev_raw of Relation.t  (* interpreted bag; dedup still pending *)
  | Ev_dedup of Relation.t  (* kernel output; already deduplicated *)

let run ?(options = default_options) ?on_iteration ~pool ~edb program =
  let an = Analyzer.analyze program in
  let catalog = Catalog.create () in
  let trace = options.trace in
  (* Persistent join indexes live for the whole run: EDBs are indexed once;
     a recursive IDB's full table is delta-appended each iteration. Delta
     tables are excluded (their backing relation is replaced every
     iteration), and so are aggregated IDBs (their full table is rebuilt
     from the aggregate state every iteration, so an index could never be
     reused). *)
  let index_manager =
    if not options.persistent_indexes then None
    else begin
      let stable = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace stable n ()) an.Analyzer.edbs;
      List.iter
        (fun n -> if Analyzer.agg_sig an n = None then Hashtbl.replace stable n ())
        an.Analyzer.idbs;
      Some
        (Rs_exec.Index_manager.create ?trace ?parent:options.shared_indexes
           ~persistent:(Hashtbl.mem stable) pool)
    end
  in
  let exec =
    Executor.create ~query_overhead_s:options.query_overhead_s
      ~share_builds:options.share_builds ?index_manager ?trace pool catalog
  in
  (* Modeled disk: 0.5 ms seek + 300 MB/s bandwidth per physical flush
     (the container's page cache hides the real cost QuickStep pays). *)
  let on_flush bytes =
    Pool.add_serial pool (0.0005 +. (float_of_int bytes /. 300e6))
  in
  let txn = Txn.create ~on_flush ?trace (if options.eost then Txn.Eost else Txn.Per_query) in
  (* From here on, every exit path (fixpoint reached, simulated OOM,
     timeout or injected fault) must hand the managed indexes' bytes back to
     the tracker and drop the transaction's scratch state. [Txn.discard] is
     a no-op after the normal-path [Txn.finish], but on an exceptional exit
     it closes the scratch channel and removes the file — the seed leaked
     both whenever a run died mid-fixpoint. *)
  Fun.protect
    ~finally:(fun () ->
      Txn.discard txn;
      (match index_manager with
      | Some m -> Rs_exec.Index_manager.release_all m
      | None -> ()))
  @@ fun () ->
  let queries = ref 0 in
  let total_iterations = ref 0 in
  let pbme_strata = ref 0 in
  let dsd_hist = Hashtbl.create 4 in
  let note_dsd c = Hashtbl.replace dsd_hist c (1 + Option.value ~default:0 (Hashtbl.find_opt dsd_hist c)) in
  let with_span name f =
    match trace with
    | Some tr -> Rs_obs.Trace.span tr ~kind:"interpreter" name f
    | None -> f ()
  in
  (* Every fixpoint iteration reports per-IDB delta cardinality both to the
     caller's [on_iteration] and to the trace timeline. *)
  let note_iteration info =
    (match trace with
    | Some tr ->
        Rs_obs.Trace.iteration tr
          {
            Rs_obs.Trace.it_stratum = info.it_stratum;
            it_iteration = info.it_iteration;
            it_idb = info.it_idb;
            it_delta_rows = info.it_delta_rows;
            it_vtime = info.it_vtime;
          }
    | None -> ());
    match on_iteration with Some f -> f info | None -> ()
  in
  let count_iteration () =
    incr total_iterations;
    match trace with Some tr -> Rs_obs.Trace.count tr "interpreter.iterations" 1 | None -> ()
  in
  let check_timeout () =
    match options.timeout_vs with
    | Some budget ->
        let v = Pool.vtime_now pool in
        if v > budget then raise (Timeout_simulated v)
    | None -> ()
  in
  (* Why-provenance recording: every tuple that enters an IDB relation does
     so through exactly one absorption point per path — the Δ produced by
     [absorb_candidates] (interpreted plans and compiled kernels both feed
     it their deduplicated candidates) or the PBME solve's output relation.
     Tagging the absorbed rows therefore covers every derived tuple with no
     per-path special cases: with sampling at 1.0 an IDB can never end up
     half-tagged, whichever mix of kernels, degraded rounds and retries
     produced it. Recording is charged to the simulated clock so the
     benchmark arm measures an honest overhead. *)
  let prov_scan_cost = 2e-9 and prov_tag_cost = 16e-9 in
  let prov_record ~pred ~stratum ~iteration rel =
    match options.provenance with
    | None -> ()
    | Some p ->
        let n = Relation.nrows rel and arity = Relation.arity rel in
        if n > 0 then begin
          let before = Provenance.recorded p in
          for row = 0 to n - 1 do
            let t = List.init arity (fun col -> Relation.get rel ~row ~col) in
            Provenance.record p ~pred ~stratum ~iteration t
          done;
          let tagged = Provenance.recorded p - before in
          Pool.add_serial pool
            ((float_of_int n *. prov_scan_cost) +. (float_of_int tagged *. prov_tag_cost));
          match trace with
          | Some tr -> Rs_obs.Trace.count tr "provenance.recorded" tagged
          | None -> ()
        end
  in
  (* Register EDBs. *)
  List.iter
    (fun name ->
      match List.assoc_opt name edb with
      | Some r ->
          if Relation.arity r <> Analyzer.arity an name then
            raise
              (Analyzer.Analysis_error
                 (Printf.sprintf "input %s has arity %d, program expects %d" name
                    (Relation.arity r) (Analyzer.arity an name)));
          Relation.account r;
          Catalog.register catalog name r
      | None ->
          raise (Analyzer.Analysis_error (Printf.sprintf "missing input relation %s" name)))
    an.Analyzer.edbs;
  (* Register empty IDB and Δ tables. *)
  List.iter
    (fun name ->
      Catalog.register catalog name (Relation.create ~name (Analyzer.arity an name));
      let d = Planner.delta_name name in
      Catalog.register catalog d (Relation.create ~name:d (Analyzer.arity an name)))
    an.Analyzer.idbs;
  let analyze_updated names =
    match options.oof with
    | Oof_off -> ()
    | Oof_normal -> List.iter (fun n -> Catalog.analyze_rows catalog n) names
    | Oof_full -> List.iter (fun n -> Catalog.analyze_full catalog pool n) names
  in
  (* Initial statistics are always collected once at load time. *)
  List.iter (fun n -> Catalog.analyze_rows catalog n) (Catalog.names catalog);
  let dedup_mode = if options.fast_dedup then Dedup.Fast else Dedup.Boxed in
  (* Under per-query transactions every query's output pages are written
     back immediately (and get rewritten by later transactions touching the
     same tables); under EOST nothing is dirty until the end, when only the
     final tables are written once. *)
  let issue plan =
    incr queries;
    let r = Executor.run_query exec plan in
    if not options.eost then begin
      Txn.note_dirty txn (Relation.bytes r);
      Txn.query_boundary txn
    end;
    r
  in
  (* The dedup table is pre-allocated from the optimizer's cardinality
     estimate (paper §5.1: "the size of the hash table needs to be
     estimated in order to pre-allocate memory") — with stale statistics
     (OOF-NA) the estimate degrades and the table pays for rehashing. *)
  let dedup_expected plans =
    max 16 (Executor.estimate exec (Plan.UnionAll plans))
  in
  (* Evaluate the given plans for one IDB into a deduplicated relation. *)
  let eval_plans plans =
    match plans with
    | [] -> None
    | _ ->
        let rt =
          if options.uie then issue (Plan.UnionAll plans)
          else begin
            (* one query per subquery, materialized, then a merge query *)
            let temps = List.map (fun p -> issue p) plans in
            let merged = issue (Plan.UnionAll (List.map (fun r -> Plan.Rel r) temps)) in
            if not options.hoard_memory then List.iter Relation.release temps;
            merged
          end
        in
        Some rt
  in
  let replace_table name rel =
    Catalog.drop catalog name;
    Catalog.register catalog name rel
  in
  let count_kernel name n =
    match trace with Some tr -> Rs_obs.Trace.count tr name n | None -> ()
  in
  (* Compile this IDB's delta plans into fused kernels — all-or-nothing: a
     rule set evaluates either entirely through kernels or entirely through
     the interpreter, so the two paths never interleave within one IDB and
     results stay bit-for-bit comparable. The cost gate screens out rules
     that can never win (cold strata, aggregates, wide heads) before any
     plan is inspected. *)
  let compile_kernels ~arity ~agg ~compiled ~recursive =
    let rule_deltas =
      List.filter_map
        (function
          | Planner.Fact _ -> None
          | Planner.Query { deltas; _ } -> if deltas = [] then None else Some deltas)
        compiled
    in
    let n_rules = List.length rule_deltas in
    if (not options.compiled_kernels) || n_rules = 0 then None
    else
      match Cost.kernel_gate ~recursive ~has_agg:(agg <> None) ~head_arity:arity with
      | Error _reason ->
          count_kernel "kernel.fallback_rules" n_rules;
          None
      | Ok () -> (
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | (dpred, plan) :: rest -> (
                match Kernel.compile exec ~probe_table:(Planner.delta_name dpred) plan with
                | Ok k -> go (k :: acc) rest
                | Error _reason -> None)
          in
          match go [] (List.concat rule_deltas) with
          | Some ks ->
              count_kernel "kernel.compiled_rules" n_rules;
              Some ks
          | None ->
              count_kernel "kernel.fallback_rules" n_rules;
              None)
  in
  (* Kernel-path evaluation of one IDB's live delta plans: matches stream
     straight through FAST-DEDUP into the candidate relation, no query
     issued and no intermediate bag. A chaos-degraded kernel re-evaluates
     interpreted — the probe fires before any write, so falling back can
     never double-count. *)
  let eval_kernels plans ks ~name ~arity =
    let dd = Dedup.create ~expected:(dedup_expected plans) dedup_mode arity in
    let out = Relation.create ~name:(name ^ "@cand") arity in
    match List.iter (fun k -> ignore (Kernel.run exec k ~dedup:dd ~out)) ks with
    | () ->
        Dedup.release dd;
        Relation.account out;
        if not options.eost then begin
          Txn.note_dirty txn (Relation.bytes out);
          Txn.query_boundary txn
        end;
        Ev_dedup out
    | exception Kernel.Degraded _ ->
        Dedup.release dd;
        Relation.release out;
        count_kernel "kernel.fallbacks" 1;
        (match eval_plans plans with Some rt -> Ev_raw rt | None -> Ev_none)
    | exception e ->
        Dedup.release dd;
        Relation.release out;
        raise e
  in
  (* Process the deduplicated candidates of one IDB; returns |Δ|.
     [stratum]/[iteration] locate the absorption on the fixpoint timeline
     for provenance tags. *)
  let absorb_candidates ~stratum ~iteration (st : idb_state) rdelta =
    match st.agg with
    | Some ag ->
        (* Two-phase parallel aggregation (like the backend's group-by):
           chunk-local folds through the pool, then a serial merge into the
           global state. Improved groups become Δ (full head layout). *)
        let delta = Relation.create ~name:(Planner.delta_name st.name) st.arity in
        let n = Relation.nrows rdelta in
        let partials = ref [] in
        Pool.parallel_for pool 0 n (fun lo hi ->
            let local = { sig_ = ag.sig_; table = Hashtbl.create 256; dense = None } in
            let tuple = Array.make st.arity 0 in
            for row = lo to hi - 1 do
              for c = 0 to st.arity - 1 do
                tuple.(c) <- Relation.get rdelta ~row ~col:c
              done;
              ignore (agg_fold local tuple)
            done;
            partials := local :: !partials);
        let changed_keys = Hashtbl.create 64 in
        List.iter
          (fun (local : agg_state) ->
            Hashtbl.iter
              (fun key acc -> if agg_merge ag key acc then Hashtbl.replace changed_keys key ())
              local.table)
          (List.rev !partials);
        (match ag.dense with
        | Some a ->
            Hashtbl.iter
              (fun key () ->
                match key with
                | [ k ] -> Relation.push2 delta k a.(k)
                | _ -> assert false)
              changed_keys
        | None ->
            Hashtbl.iter
              (fun key () ->
                match Hashtbl.find_opt ag.table key with
                | Some acc -> Relation.push_row delta (agg_tuple ag key acc st.arity)
                | None -> ())
              changed_keys);
        Relation.account delta;
        (* Tag the changed groups with their current merged value: the tuple
           a group holds in the final relation is exactly the one recorded
           at its last improvement, so every surviving aggregate row carries
           a tag (superseded values keep stale tags that no live row ever
           looks up). *)
        prov_record ~pred:st.name ~stratum ~iteration delta;
        replace_table (Planner.delta_name st.name) delta;
        (* R is the finalized view of the state. *)
        replace_table st.name (agg_rebuild_relation pool ag st.name st.arity);
        Relation.nrows delta
    | None ->
        let r = Catalog.rel catalog st.name in
        let r_rows = Catalog.stat_rows catalog st.name in
        let rdelta_rows = Relation.nrows rdelta in
        let choice =
          match options.dsd with
          | Dsd_force_opsd -> Cost.Opsd
          | Dsd_force_tpsd -> Cost.Tpsd
          | Dsd_dynamic -> Cost.choose ~alpha:options.alpha ~r_rows ~rdelta_rows ~mu_prev:st.mu_prev
        in
        note_dsd choice;
        (match trace with
        | Some tr ->
            (* OPSD/TPSD decision with the cost-model inputs that drove it *)
            Rs_obs.Trace.event tr ~kind:"dsd"
              (match choice with Cost.Opsd -> "opsd" | Cost.Tpsd -> "tpsd")
              (("r_rows", float_of_int r_rows)
              :: ("rdelta_rows", float_of_int rdelta_rows)
              :: ("alpha", options.alpha)
              :: (match st.mu_prev with Some m -> [ ("mu_prev", m) ] | None -> []))
        | None -> ());
        let delta, intersection =
          match choice with
          | Cost.Opsd -> Executor.opsd exec ~name:st.name ~rdelta ~r ()
          | Cost.Tpsd -> Executor.tpsd exec ~name:st.name ~rdelta ~r ()
        in
        st.mu_prev <-
          Some (Cost.observed_mu ~rdelta_rows:(Relation.nrows rdelta) ~intersection_rows:intersection);
        Relation.append_all r delta;
        Relation.account r;
        if not options.eost then begin
          Txn.note_dirty txn (Relation.bytes delta);
          Txn.query_boundary txn
        end;
        prov_record ~pred:st.name ~stratum ~iteration delta;
        replace_table (Planner.delta_name st.name) delta;
        Relation.nrows delta
  in
  (* --- per-stratum evaluation --- *)
  let eval_stratum (stratum : Analyzer.stratum) =
    let idb_states =
      List.map
        (fun name ->
          let rules = List.filter (fun r -> r.Ast.head_pred = name) stratum.rules in
          let arity = Analyzer.arity an name in
          let compiled = List.map (Planner.compile_rule an stratum) rules in
          let agg =
            Option.map
              (fun s ->
                {
                  sig_ = s;
                  table = Hashtbl.create 256;
                  dense = (if dense_shape s && arity = 2 then Some [||] else None);
                })
              (Analyzer.agg_sig an name)
          in
          {
            name;
            arity;
            compiled;
            agg;
            kernels = compile_kernels ~arity ~agg ~compiled ~recursive:stratum.recursive;
            mu_prev = None;
          })
        stratum.preds
    in
    (* Facts seed the candidate stream of iteration 0. *)
    let facts_of st =
      List.filter_map (function Planner.Fact t -> Some t | Planner.Query _ -> None) st.compiled
    in
    let base_plans st =
      List.filter_map
        (function
          | Planner.Fact _ -> None
          | Planner.Query { base; deltas } -> if deltas = [] then Some base else None)
        st.compiled
    in
    (* In a recursive stratum, rules with recursive occurrences contribute
       nothing at iteration 0 (their IDB inputs are empty), so [base_plans]
       runs only the delta-free rules there; in a non-recursive stratum that
       is every rule. *)
    let delta_plans st =
      List.concat_map
        (function Planner.Fact _ -> [] | Planner.Query { deltas; _ } -> deltas)
        st.compiled
    in
    let iteration0 st =
      let candidates = Relation.create ~name:(st.name ^ "@cand") st.arity in
      List.iter (fun t -> Relation.push_row candidates t) (facts_of st);
      (match eval_plans (base_plans st) with
      | Some rt ->
          Relation.append_all candidates rt;
          if not options.hoard_memory then Relation.release rt
      | None -> ());
      Relation.account candidates;
      let expected =
        match base_plans st with
        | [] -> Relation.nrows candidates
        | plans -> dedup_expected plans
      in
      let rdelta = Dedup.dedup_relation_parallel ~expected ?trace ~pool dedup_mode candidates in
      if not options.hoard_memory then Relation.release candidates;
      let d = absorb_candidates ~stratum:stratum.index ~iteration:0 st rdelta in
      if not options.hoard_memory then Relation.release rdelta;
      analyze_updated [ st.name; Planner.delta_name st.name ];
      d
    in
    count_iteration ();
    let deltas0 = with_span "iter-0" (fun () -> List.map (fun st -> (st, iteration0 st)) idb_states) in
    List.iter
      (fun (st, d) ->
        note_iteration
          {
            it_stratum = stratum.index;
            it_iteration = 0;
            it_idb = st.name;
            it_delta_rows = d;
            it_vtime = Pool.vtime_now pool;
          })
      deltas0;
    if stratum.recursive then begin
      let iteration = ref 0 in
      let continue_ = ref (List.exists (fun (_, d) -> d > 0) deltas0) in
      while !continue_ do
        incr iteration;
        count_iteration ();
        check_timeout ();
        let any = ref false in
        with_span
          (Printf.sprintf "iter-%d" !iteration)
          (fun () ->
            (* Jacobi rounds: evaluate every IDB's queries against the previous
               iteration's Δ-tables FIRST, then absorb. Absorbing one IDB before
               evaluating the next would replace a Δ-table that mutually
               recursive rules of later IDBs still need to consume. *)
            let produced =
              List.map
                (fun st ->
                  (* Empty-delta skip: a subplan scanning a Δ-table that went
                     empty cannot derive anything, so it is never issued —
                     a stratum whose deltas all drain terminates without
                     evaluating the remaining rule subplans. The kernel path
                     honors the same skip (its kernels are aligned 1:1 with
                     the delta plans). *)
                  let dps = delta_plans st in
                  let is_live (dpred, _) =
                    Relation.nrows (Catalog.rel catalog (Planner.delta_name dpred)) > 0
                  in
                  let plans = List.map snd (List.filter is_live dps) in
                  let result =
                    if plans = [] then Ev_none
                    else
                      match st.kernels with
                      | Some ks ->
                          let live_ks =
                            List.filter_map
                              (fun (dp, k) -> if is_live dp then Some k else None)
                              (List.combine dps ks)
                          in
                          eval_kernels plans live_ks ~name:st.name ~arity:st.arity
                      | None -> (
                          match eval_plans plans with
                          | Some rt -> Ev_raw rt
                          | None -> Ev_none)
                  in
                  (st, plans, result))
                idb_states
            in
            List.iter
              (fun (st, plans, result) ->
                match result with
                | Ev_none ->
                    (* Every subplan was skipped, but this IDB's own Δ-table
                       may still hold the previous round's delta; drain it so
                       mutually recursive consumers don't re-read it next
                       round. *)
                    let dn = Planner.delta_name st.name in
                    if Relation.nrows (Catalog.rel catalog dn) > 0 then begin
                      replace_table dn (Relation.create ~name:dn st.arity);
                      analyze_updated [ dn ]
                    end;
                    note_iteration
                      {
                        it_stratum = stratum.index;
                        it_iteration = !iteration;
                        it_idb = st.name;
                        it_delta_rows = 0;
                        it_vtime = Pool.vtime_now pool;
                      }
                | Ev_raw rt ->
                    let rdelta =
                      Dedup.dedup_relation_parallel ~expected:(dedup_expected plans) ?trace ~pool
                        dedup_mode rt
                    in
                    if not options.hoard_memory then Relation.release rt;
                    let d = absorb_candidates ~stratum:stratum.index ~iteration:!iteration st rdelta in
                    if not options.hoard_memory then Relation.release rdelta;
                    analyze_updated [ st.name; Planner.delta_name st.name ];
                    if d > 0 then any := true;
                    note_iteration
                      {
                        it_stratum = stratum.index;
                        it_iteration = !iteration;
                        it_idb = st.name;
                        it_delta_rows = d;
                        it_vtime = Pool.vtime_now pool;
                      }
                | Ev_dedup rdelta ->
                    (* kernel output is already a set: skip the dedup pass *)
                    let d = absorb_candidates ~stratum:stratum.index ~iteration:!iteration st rdelta in
                    if not options.hoard_memory then Relation.release rdelta;
                    analyze_updated [ st.name; Planner.delta_name st.name ];
                    if d > 0 then any := true;
                    note_iteration
                      {
                        it_stratum = stratum.index;
                        it_iteration = !iteration;
                        it_idb = st.name;
                        it_delta_rows = d;
                        it_vtime = Pool.vtime_now pool;
                      })
              produced);
        continue_ := !any
      done
    end;
    (* Clear Δ tables so later strata see empty deltas. *)
    List.iter
      (fun st ->
        let d = Planner.delta_name st.name in
        replace_table d (Relation.create ~name:d st.arity))
      idb_states
  in
  (* PBME dispatch: a TC/SG-shaped stratum over a fitting domain uses the
     bit-matrix kernels instead of the relational loop. *)
  let try_pbme (stratum : Analyzer.stratum) =
    if not options.pbme then false
    else
      match Pattern.match_stratum an stratum with
      | None -> false
      | Some shape ->
          let edb_name = match shape with Pattern.Tc { edb; _ } | Pattern.Sg { edb; _ } -> edb in
          let idb_name = match shape with Pattern.Tc { idb; _ } | Pattern.Sg { idb; _ } -> idb in
          let e = Catalog.rel catalog edb_name in
          let n_rows = Relation.nrows e in
          let domain = ref 0 in
          let ok = ref (n_rows > 0) in
          for row = 0 to n_rows - 1 do
            let x = Relation.get e ~row ~col:0 and y = Relation.get e ~row ~col:1 in
            if x < 0 || y < 0 then ok := false;
            if x >= !domain then domain := x + 1;
            if y >= !domain then domain := y + 1
          done;
          let n = !domain in
          let budget =
            match Rs_storage.Memtrack.budget () with
            | Some b -> b
            | None -> Rs_storage.Memtrack.machine_bytes ()
          in
          let fits =
            !ok
            && Rs_bitmatrix.Bitmatrix.required_bytes n + (16 * n_rows)
               < budget - Rs_storage.Memtrack.live ()
          in
          if not fits then false
          else begin
            let m =
              match shape with
              | Pattern.Tc _ -> Rs_bitmatrix.Pbme.tc pool ~n ~arc:e
              | Pattern.Sg _ -> Rs_bitmatrix.Pbme.sg pool ~n ~arc:e
            in
            let r = Rs_bitmatrix.Bitmatrix.to_relation ~name:idb_name m in
            Rs_bitmatrix.Bitmatrix.release m;
            (* The bit-matrix solve collapses the whole stratum, so the
               per-iteration timeline is gone: tag its output wholesale at
               iteration 0. Evaluation is identical with recording on or
               off — tags are a side table — so PBME stays enabled and the
               outputs remain byte-identical. *)
            prov_record ~pred:idb_name ~stratum:stratum.index ~iteration:0 r;
            replace_table idb_name r;
            if not options.eost then begin
              Txn.note_dirty txn (Relation.bytes r);
              Txn.query_boundary txn
            end;
            analyze_updated [ idb_name ];
            incr pbme_strata;
            count_iteration ();
            (match trace with
            | Some tr -> Rs_obs.Trace.count tr "interpreter.pbme_strata" 1
            | None -> ());
            (* the whole stratum collapses into one bit-matrix solve; report
               it as a single iteration so the timeline stays complete *)
            note_iteration
              {
                it_stratum = stratum.index;
                it_iteration = 0;
                it_idb = idb_name;
                it_delta_rows = Relation.nrows r;
                it_vtime = Pool.vtime_now pool;
              };
            true
          end
  in
  List.iter
    (fun stratum ->
      check_timeout ();
      with_span
        (Printf.sprintf "stratum-%d" stratum.Analyzer.index)
        (fun () -> if not (try_pbme stratum) then eval_stratum stratum))
    an.Analyzer.strata;
  if options.eost then
    (* one final write-back of the result tables *)
    List.iter
      (fun name -> Txn.note_dirty txn (Relation.bytes (Catalog.rel catalog name)))
      an.Analyzer.idbs;
  Txn.finish txn;
  let output_names = if program.Ast.outputs = [] then an.Analyzer.idbs else program.Ast.outputs in
  {
    outputs = List.map (fun n -> (n, Catalog.rel catalog n)) output_names;
    relation_of = (fun n -> Catalog.rel catalog n);
    iterations = !total_iterations;
    queries = !queries;
    pbme_strata = !pbme_strata;
    io_bytes = Txn.bytes_written txn;
    dsd_choices = Hashtbl.fold (fun k v acc -> (k, v) :: acc) dsd_hist [];
  }
