(* Incremental view maintenance: counting for non-recursive strata, DRed
   (delete-rederive) for recursive ones. See ivm.mli for the mode-selection
   argument; the shared machinery below mirrors the naive oracle's
   evaluator, extended with a per-literal state selector so the delta-rule
   expansion can read "new" relations to the left of the delta position and
   "old" relations to the right. *)

module Delta = Rs_relation.Delta

module Rows = Set.Make (struct
  type t = int list

  let compare = compare
end)

exception Unsupported of string

exception Count_underflow of { pred : string; row : int list; count : int }

type stats = {
  applies : int;
  count_updates : int;
  dred_deleted : int;
  dred_rederived : int;
  emitted_inserts : int;
  emitted_retracts : int;
}

type mstats = {
  mutable m_applies : int;
  mutable m_count_updates : int;
  mutable m_dred_deleted : int;
  mutable m_dred_rederived : int;
  mutable m_emitted_inserts : int;
  mutable m_emitted_retracts : int;
}

type t = {
  an : Analyzer.t;
  db : (string, Rows.t) Hashtbl.t;  (* current materialized sets, all preds *)
  counts : (string, (int list, int) Hashtbl.t) Hashtbl.t;
      (* derivation counts, non-recursive IDB preds only *)
  ms : mstats;
  prov : Provenance.t option;
      (* why-provenance tags for the maintained IDB rows; reconciled against
         the net change of every apply so the view stays explainable across
         EDB deltas *)
}

let rel db pred = match Hashtbl.find_opt db pred with Some s -> s | None -> Rows.empty

let set db pred v = Hashtbl.replace db pred v

(* --- the evaluator (naive.ml's machinery + indexed literals) ------------ *)

type env = (string * int) list

let rec eval_expr (env : env) = function
  | Ast.T (Ast.Const c) -> c
  | Ast.T (Ast.Var v) -> (
      match List.assoc_opt v env with
      | Some c -> c
      | None -> invalid_arg ("ivm: unbound variable " ^ v))
  | Ast.T Ast.Wildcard -> invalid_arg "ivm: wildcard in expression"
  | Ast.Add (a, b) -> eval_expr env a + eval_expr env b
  | Ast.Sub (a, b) -> eval_expr env a - eval_expr env b
  | Ast.Mul (a, b) -> eval_expr env a * eval_expr env b

let cmp_holds op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Ne -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

let match_args env args row =
  let rec go env args row =
    match (args, row) with
    | [], [] -> Some env
    | a :: args', v :: row' -> (
        match a with
        | Ast.Const c -> if c = v then go env args' row' else None
        | Ast.Wildcard -> go env args' row'
        | Ast.Var x -> (
            match List.assoc_opt x env with
            | Some c -> if c = v then go env args' row' else None
            | None -> go ((x, v) :: env) args' row'))
    | _ -> None
  in
  go env args row

let ground_args env args =
  List.map
    (function
      | Ast.Const c -> c
      | Ast.Var x -> (
          match List.assoc_opt x env with
          | Some c -> c
          | None -> invalid_arg ("ivm: unsafe negation on " ^ x))
      | Ast.Wildcard -> invalid_arg "ivm: wildcard under negation")
    args

let head_row env head_args =
  List.map
    (function
      | Ast.H_term (Ast.Const c) -> c
      | Ast.H_term (Ast.Var x) -> (
          match List.assoc_opt x env with
          | Some c -> c
          | None -> invalid_arg ("ivm: unsafe head variable " ^ x))
      | Ast.H_term Ast.Wildcard -> invalid_arg "ivm: wildcard in head"
      | Ast.H_agg _ -> raise (Unsupported "ivm does not maintain aggregates"))
    head_args

(* Bind the head's variables from a concrete row — the entry point of the
   DRed re-derivation check ("is this tuple still derivable?"). *)
let head_env head_args row =
  let rec go env hs vs =
    match (hs, vs) with
    | [], [] -> Some env
    | Ast.H_term (Ast.Const c) :: hs', v :: vs' -> if c = v then go env hs' vs' else None
    | Ast.H_term (Ast.Var x) :: hs', v :: vs' -> (
        match List.assoc_opt x env with
        | Some c -> if c = v then go env hs' vs' else None
        | None -> go ((x, v) :: env) hs' vs')
    | Ast.H_term Ast.Wildcard :: _, _ -> invalid_arg "ivm: wildcard in head"
    | Ast.H_agg _ :: _, _ -> raise (Unsupported "ivm does not maintain aggregates")
    | _ -> None
  in
  go [] head_args row

(* Body literals keep their source index so the delta-rule expansion can
   split old/new state by position, whatever order evaluation visits them. *)
type lit = { li : int; l : Ast.literal }

let indexed_body r = List.mapi (fun li l -> { li; l }) r.Ast.body

(* The leading run of already-ground argument positions. Rows.t orders
   equal-length int lists lexicographically, so all rows extending a ground
   prefix form a contiguous range of the set — scanning an atom costs
   O(log n + matches) instead of a full sweep whenever its leading columns
   are bound (the common case in delta seeding and DRed re-derivation,
   where the head row grounds the recursive literal's key). *)
let bound_prefix env args =
  let rec go acc = function
    | Ast.Const c :: tl -> go (c :: acc) tl
    | Ast.Var x :: tl -> (
        match List.assoc_opt x env with
        | Some c -> go (c :: acc) tl
        | None -> List.rev acc)
    | Ast.Wildcard :: _ | [] -> List.rev acc
  in
  go [] args

let iter_prefix set prefix f =
  match prefix with
  | [] -> Rows.iter f set
  | _ ->
      let rec has_prefix p row =
        match (p, row) with
        | [], _ -> true
        | a :: p', b :: row' -> a = b && has_prefix p' row'
        | _, [] -> false
      in
      (* [prefix] is shorter than any row, so it sorts just before the range *)
      let rec go s =
        match s () with
        | Seq.Nil -> ()
        | Seq.Cons (row, tl) ->
            if has_prefix prefix row then begin
              f row;
              go tl
            end
      in
      go (Rows.to_seq_from prefix set)

(* Enumerate every extension of [env] satisfying [lits]; [state li pred]
   supplies the relation value seen by the literal at source index [li].
   Positive atoms first — the analyzer's safety check makes negations and
   comparisons ground once the positives are matched. *)
let eval_lits ~state lits env k =
  let pos, rest =
    List.partition (fun x -> match x.l with Ast.L_pos _ -> true | _ -> false) lits
  in
  let rec go env = function
    | [] -> k env
    | { li; l = Ast.L_pos a } :: tl ->
        iter_prefix (state li a.Ast.pred) (bound_prefix env a.Ast.args) (fun row ->
            match match_args env a.Ast.args row with
            | Some env' -> go env' tl
            | None -> ())
    | { li; l = Ast.L_neg a } :: tl ->
        if not (Rows.mem (ground_args env a.Ast.args) (state li a.Ast.pred)) then
          go env tl
    | { l = Ast.L_cmp (op, lhs, rhs); _ } :: tl ->
        if cmp_holds op (eval_expr env lhs) (eval_expr env rhs) then go env tl
  in
  go env (pos @ rest)

exception Found

let exists_lits ~state lits env =
  match eval_lits ~state lits env (fun _ -> raise Found) with
  | () -> false
  | exception Found -> true

(* --- per-apply bookkeeping ---------------------------------------------- *)

(* Net change of one relation within the current apply. *)
type chg = { mutable ins : Rows.t; mutable del : Rows.t }

let chg_of tbl pred =
  match Hashtbl.find_opt tbl pred with
  | Some c -> c
  | None ->
      let c = { ins = Rows.empty; del = Rows.empty } in
      Hashtbl.replace tbl pred c;
      c

(* Pre-apply snapshots, saved lazily before a relation's first mutation.
   Rows.t is persistent, so a snapshot is one pointer. *)
let save_old db old pred =
  if not (Hashtbl.mem old pred) then Hashtbl.replace old pred (rel db pred)

let old_rel db old pred =
  match Hashtbl.find_opt old pred with Some s -> s | None -> rel db pred

let counts_of t pred =
  match Hashtbl.find_opt t.counts pred with
  | Some c -> c
  | None ->
      let c = Hashtbl.create 64 in
      Hashtbl.replace t.counts pred c;
      c

(* --- counting maintenance (non-recursive strata) ------------------------ *)

(* Σ_i new(<i) ⋈ ΔLi ⋈ old(>i): each delta tuple at position i seeds the
   evaluation of the remaining literals, reading post-change state to the
   left and pre-change state to the right. Every produced head row adjusts
   its derivation count by the delta's sign (inverted through negation);
   count transitions through zero become the stratum's own net change. *)
let maintain_counting t old chgs (stratum : Analyzer.stratum) =
  let dc : (string, (int list, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
  let bump pred row s =
    let tbl =
      match Hashtbl.find_opt dc pred with
      | Some x -> x
      | None ->
          let x = Hashtbl.create 32 in
          Hashtbl.replace dc pred x;
          x
    in
    Hashtbl.replace tbl row (s + (try Hashtbl.find tbl row with Not_found -> 0))
  in
  List.iter
    (fun r ->
      let lits = indexed_body r in
      List.iter
        (fun x ->
          match x.l with
          | Ast.L_cmp _ -> ()
          | Ast.L_pos a | Ast.L_neg a -> (
              match Hashtbl.find_opt chgs a.Ast.pred with
              | None -> ()
              | Some c ->
                  let i = x.li in
                  let rest = List.filter (fun y -> y.li <> i) lits in
                  let state li p =
                    if li < i then rel t.db p else old_rel t.db old p
                  in
                  let seed sign rows =
                    Rows.iter
                      (fun row ->
                        match match_args [] a.Ast.args row with
                        | None -> ()
                        | Some env0 ->
                            eval_lits ~state rest env0 (fun env ->
                                bump r.Ast.head_pred
                                  (head_row env r.Ast.head_args)
                                  sign))
                      rows
                  in
                  let s_ins =
                    match x.l with Ast.L_neg _ -> -1 | _ -> 1
                  in
                  seed s_ins c.ins;
                  seed (-s_ins) c.del))
        lits)
    stratum.Analyzer.rules;
  Hashtbl.iter
    (fun pred tbl ->
      let ct = counts_of t pred in
      Hashtbl.iter
        (fun row d ->
          if d <> 0 then begin
            t.ms.m_count_updates <- t.ms.m_count_updates + 1;
            let c0 = try Hashtbl.find ct row with Not_found -> 0 in
            let c1 = c0 + d in
            if c1 < 0 then raise (Count_underflow { pred; row; count = c1 });
            if c1 = 0 then Hashtbl.remove ct row else Hashtbl.replace ct row c1;
            if c0 = 0 && c1 > 0 then begin
              save_old t.db old pred;
              set t.db pred (Rows.add row (rel t.db pred));
              let c = chg_of chgs pred in
              c.ins <- Rows.add row c.ins
            end
            else if c0 > 0 && c1 = 0 then begin
              save_old t.db old pred;
              set t.db pred (Rows.remove row (rel t.db pred));
              let c = chg_of chgs pred in
              c.del <- Rows.add row c.del
            end
          end)
        tbl)
    dc

(* --- semi-naive insertion propagation (shared by DRed phase C and the
   bootstrap of recursive strata) ----------------------------------------- *)

(* Drain [work]: each popped (pred, row) is joined, at every positive body
   position naming [pred], against the current database; [put] receives the
   derived head rows (it filters duplicates and feeds the queue). *)
let drain db lits_of work put =
  let state _ p = rel db p in
  while not (Queue.is_empty work) do
    let p, row = Queue.pop work in
    List.iter
      (fun (r, lits) ->
        List.iter
          (fun x ->
            match x.l with
            | Ast.L_pos a when a.Ast.pred = p -> (
                match match_args [] a.Ast.args row with
                | None -> ()
                | Some env0 ->
                    let rest = List.filter (fun y -> y.li <> x.li) lits in
                    eval_lits ~state rest env0 (fun env ->
                        put r.Ast.head_pred (head_row env r.Ast.head_args)))
            | _ -> ())
          lits)
      lits_of
  done

(* --- DRed maintenance (recursive strata) -------------------------------- *)

let maintain_dred t old chgs (stratum : Analyzer.stratum) =
  let sp = stratum.Analyzer.preds in
  let in_stratum p = List.mem p sp in
  let lits_of =
    List.map (fun r -> (r, indexed_body r)) stratum.Analyzer.rules
  in
  (* pre-stratum values of the stratum's own preds, for the final net diff *)
  let snap = List.map (fun p -> (p, rel t.db p)) sp in

  (* Phase A — overestimate deletions against the old state. Stratum preds
     are untouched so far, so their current value is their old value;
     changed externals read their pre-apply snapshot. *)
  let state_old li p = ignore li; if in_stratum p then rel t.db p else old_rel t.db old p in
  let del : (string, Rows.t ref) Hashtbl.t = Hashtbl.create 4 in
  let del_of p =
    match Hashtbl.find_opt del p with
    | Some r -> r
    | None ->
        let r = ref Rows.empty in
        Hashtbl.replace del p r;
        r
  in
  let work = Queue.create () in
  let mark p row =
    let d = del_of p in
    if Rows.mem row (rel t.db p) && not (Rows.mem row !d) then begin
      d := Rows.add row !d;
      t.ms.m_dred_deleted <- t.ms.m_dred_deleted + 1;
      Queue.add (p, row) work
    end
  in
  let seed_losses (r, lits) x (a : Ast.atom) rows =
    Rows.iter
      (fun row ->
        match match_args [] a.Ast.args row with
        | None -> ()
        | Some env0 ->
            let rest = List.filter (fun y -> y.li <> x.li) lits in
            eval_lits ~state:state_old rest env0 (fun env ->
                mark r.Ast.head_pred (head_row env r.Ast.head_args)))
      rows
  in
  List.iter
    (fun (r, lits) ->
      List.iter
        (fun x ->
          match x.l with
          | Ast.L_cmp _ -> ()
          | Ast.L_pos a when not (in_stratum a.Ast.pred) -> (
              match Hashtbl.find_opt chgs a.Ast.pred with
              | Some c when not (Rows.is_empty c.del) -> seed_losses (r, lits) x a c.del
              | _ -> ())
          | Ast.L_neg a -> (
              (* a tuple entering a negated (lower-stratum) relation removes
                 derivations *)
              match Hashtbl.find_opt chgs a.Ast.pred with
              | Some c when not (Rows.is_empty c.ins) -> seed_losses (r, lits) x a c.ins
              | _ -> ())
          | Ast.L_pos _ -> ())
        lits)
    lits_of;
  (* internal propagation of the overestimate, still over old state *)
  while not (Queue.is_empty work) do
    let p, row = Queue.pop work in
    List.iter
      (fun (r, lits) ->
        List.iter
          (fun x ->
            match x.l with
            | Ast.L_pos a when a.Ast.pred = p -> (
                match match_args [] a.Ast.args row with
                | None -> ()
                | Some env0 ->
                    let rest = List.filter (fun y -> y.li <> x.li) lits in
                    eval_lits ~state:state_old rest env0 (fun env ->
                        mark r.Ast.head_pred (head_row env r.Ast.head_args)))
            | _ -> ())
          lits)
      lits_of
  done;

  (* Phase B — physically remove the overestimate, then give back every
     tuple still derivable from what remains. One derivability check per
     deleted tuple; a restored tuple may in turn support other deleted
     tuples, so restorations propagate through the deleted set on a
     worklist (a global re-scan fixpoint would recheck the whole
     overestimate once per restoration wave). *)
  Hashtbl.iter
    (fun p d ->
      if not (Rows.is_empty !d) then begin
        save_old t.db old p;
        set t.db p (Rows.diff (rel t.db p) !d)
      end)
    del;
  let state_new li p = ignore li; rel t.db p in
  let derivable p row =
    List.exists
      (fun ((r : Ast.rule), lits) ->
        r.Ast.head_pred = p
        &&
        match head_env r.Ast.head_args row with
        | None -> false
        | Some env0 -> exists_lits ~state:state_new lits env0)
      lits_of
  in
  let rework = Queue.create () in
  let restore p row =
    let d = del_of p in
    if Rows.mem row !d then begin
      d := Rows.remove row !d;
      set t.db p (Rows.add row (rel t.db p));
      t.ms.m_dred_rederived <- t.ms.m_dred_rederived + 1;
      Queue.add (p, row) rework
    end
  in
  Hashtbl.iter
    (fun p d -> Rows.iter (fun row -> if derivable p row then restore p row) !d)
    del;
  while not (Queue.is_empty rework) do
    let p, row = Queue.pop rework in
    List.iter
      (fun ((r : Ast.rule), lits) ->
        List.iter
          (fun x ->
            match x.l with
            | Ast.L_pos a when a.Ast.pred = p -> (
                match match_args [] a.Ast.args row with
                | None -> ()
                | Some env0 ->
                    let rest = List.filter (fun y -> y.li <> x.li) lits in
                    eval_lits ~state:state_new rest env0 (fun env ->
                        restore r.Ast.head_pred (head_row env r.Ast.head_args)))
            | _ -> ())
          lits)
      lits_of
  done;

  (* Phase C — semi-naive insertion propagation over new state. Seeds:
     external gains (inserted rows under positive literals, retracted rows
     under negated ones); internal derivations ride the worklist. *)
  let iwork = Queue.create () in
  let put p row =
    if not (Rows.mem row (rel t.db p)) then begin
      save_old t.db old p;
      set t.db p (Rows.add row (rel t.db p));
      Queue.add (p, row) iwork
    end
  in
  List.iter
    (fun ((r : Ast.rule), lits) ->
      List.iter
        (fun x ->
          match x.l with
          | Ast.L_cmp _ -> ()
          | Ast.L_pos a when not (in_stratum a.Ast.pred) -> (
              match Hashtbl.find_opt chgs a.Ast.pred with
              | Some c when not (Rows.is_empty c.ins) ->
                  (* seed by direct evaluation so the delta tuple needs no
                     membership in any stratum set *)
                  Rows.iter
                    (fun row ->
                      match match_args [] a.Ast.args row with
                      | None -> ()
                      | Some env0 ->
                          let rest = List.filter (fun y -> y.li <> x.li) lits in
                          eval_lits ~state:state_new rest env0 (fun env ->
                              put r.Ast.head_pred (head_row env r.Ast.head_args)))
                    c.ins
              | _ -> ())
          | Ast.L_neg a -> (
              match Hashtbl.find_opt chgs a.Ast.pred with
              | Some c when not (Rows.is_empty c.del) ->
                  Rows.iter
                    (fun row ->
                      match match_args [] a.Ast.args row with
                      | None -> ()
                      | Some env0 ->
                          let rest = List.filter (fun y -> y.li <> x.li) lits in
                          eval_lits ~state:state_new rest env0 (fun env ->
                              put r.Ast.head_pred (head_row env r.Ast.head_args)))
                    c.del
              | _ -> ())
          | Ast.L_pos _ -> ())
        lits)
    lits_of;
  drain t.db lits_of iwork put;

  (* net stratum change = diff against the pre-stratum snapshot *)
  List.iter
    (fun (p, before) ->
      let after = rel t.db p in
      let ins = Rows.diff after before and dl = Rows.diff before after in
      if not (Rows.is_empty ins && Rows.is_empty dl) then begin
        let c = chg_of chgs p in
        c.ins <- Rows.union c.ins ins;
        c.del <- Rows.union c.del dl
      end)
    snap

(* --- construction -------------------------------------------------------- *)

let supported (p : Ast.program) = not (List.exists Ast.is_aggregate_rule p.Ast.rules)

let zero_stats () =
  {
    m_applies = 0;
    m_count_updates = 0;
    m_dred_deleted = 0;
    m_dred_rederived = 0;
    m_emitted_inserts = 0;
    m_emitted_retracts = 0;
  }

let create ?prov ~edb (program : Ast.program) =
  let an = Analyzer.analyze program in
  (match an.Analyzer.agg_sigs with
  | (p, _) :: _ ->
      raise (Unsupported (Printf.sprintf "ivm does not maintain aggregates (%s)" p))
  | [] -> ());
  let db : (string, Rows.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, arity) ->
      match List.assoc_opt name edb with
      | Some rows ->
          List.iter
            (fun row ->
              if List.length row <> arity then
                invalid_arg (Printf.sprintf "ivm: %s expects arity %d" name arity))
            rows;
          Hashtbl.replace db name (Rows.of_list rows)
      | None ->
          if List.mem name an.Analyzer.edbs then
            invalid_arg (Printf.sprintf "ivm: no EDB named %s was supplied" name))
    (List.filter (fun (n, _) -> List.mem n an.Analyzer.edbs) an.Analyzer.arities);
  let t = { an; db; counts = Hashtbl.create 8; ms = zero_stats (); prov } in
  t.ms.m_applies <- 1;
  (* Initial evaluation — NOT a delta apply: rules satisfied with no
     positive support (empty bodies, negation over an empty relation) would
     never be triggered by a delta, so each stratum gets one full pass.
     Recursive strata then close semi-naively off that pass; counting
     strata seed their derivation counts from the full enumeration. *)
  let state _ p = rel db p in
  List.iter
    (fun (s : Analyzer.stratum) ->
      if s.Analyzer.recursive then begin
        let lits_of = List.map (fun r -> (r, indexed_body r)) s.Analyzer.rules in
        let work = Queue.create () in
        let put p row =
          if not (Rows.mem row (rel db p)) then begin
            set db p (Rows.add row (rel db p));
            Queue.add (p, row) work
          end
        in
        List.iter
          (fun ((r : Ast.rule), lits) ->
            eval_lits ~state lits [] (fun env ->
                put r.Ast.head_pred (head_row env r.Ast.head_args)))
          lits_of;
        drain db lits_of work put
      end
      else
        List.iter
          (fun (r : Ast.rule) ->
            let lits = indexed_body r in
            let pred = r.Ast.head_pred in
            let ct = counts_of t pred in
            eval_lits ~state lits [] (fun env ->
                let row = head_row env r.Ast.head_args in
                t.ms.m_count_updates <- t.ms.m_count_updates + 1;
                Hashtbl.replace ct row (1 + (try Hashtbl.find ct row with Not_found -> 0));
                set db pred (Rows.add row (rel db pred))))
          s.Analyzer.rules)
    an.Analyzer.strata;
  (* Seed the tag store from the bootstrap evaluation: every maintained IDB
     row starts explainable. *)
  (match prov with
  | None -> ()
  | Some p ->
      List.iter
        (fun (s : Analyzer.stratum) ->
          List.iter
            (fun pred ->
              Rows.iter
                (fun row ->
                  Provenance.record p ~pred ~stratum:s.Analyzer.index ~iteration:0 row)
                (rel db pred))
            s.Analyzer.preds)
        an.Analyzer.strata);
  t

(* --- apply --------------------------------------------------------------- *)

let stratum_touched chgs (s : Analyzer.stratum) =
  List.exists
    (fun r -> List.exists (fun p -> Hashtbl.mem chgs p) (Ast.rule_body_preds r))
    s.Analyzer.rules

let apply t (d : Delta.t) =
  t.ms.m_applies <- t.ms.m_applies + 1;
  List.iter
    (fun rl ->
      if not (List.mem rl t.an.Analyzer.edbs) then
        if List.mem rl t.an.Analyzer.idbs then
          invalid_arg
            (Printf.sprintf "ivm: delta names IDB predicate %s (IDBs change only through maintenance)" rl)
        else invalid_arg (Printf.sprintf "ivm: delta names unknown relation %s" rl))
    (Delta.rels d);
  List.iter
    (fun rl ->
      let arity = Analyzer.arity t.an rl in
      List.iter
        (fun (o : Delta.op) ->
          if Array.length o.Delta.row <> arity then
            invalid_arg (Printf.sprintf "ivm: %s expects arity %d" rl arity))
        (Delta.ops d rl))
    (Delta.rels d);
  (* set-level normalization: over-retraction and re-insertion net out here,
     so the maintenance core only ever sees genuine membership changes *)
  let changes =
    Delta.normalize ~mem:(fun rl row -> Rows.mem (Array.to_list row) (rel t.db rl)) d
  in
  let old : (string, Rows.t) Hashtbl.t = Hashtbl.create 8 in
  let chgs : (string, chg) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (rl, (c : Delta.change)) ->
      let ins = Rows.of_list (List.map Array.to_list c.Delta.insert)
      and dl = Rows.of_list (List.map Array.to_list c.Delta.retract) in
      save_old t.db old rl;
      set t.db rl (Rows.diff (Rows.union (rel t.db rl) ins) dl);
      let cc = chg_of chgs rl in
      cc.ins <- ins;
      cc.del <- dl)
    changes;
  if Hashtbl.length chgs > 0 then
    List.iter
      (fun (s : Analyzer.stratum) ->
        if stratum_touched chgs s then
          if s.Analyzer.recursive then maintain_dred t old chgs s
          else maintain_counting t old chgs s)
      t.an.Analyzer.strata;
  (* Reconcile tags with the net IDB change: rows that entered a maintained
     relation are tagged at this apply's sequence point, rows that left drop
     their tag. DRed's transient delete-then-restore churn nets out in
     [chgs], so a rederived row keeps its original tag; reconciliation is
     against final membership, so tags always mirror the view exactly. *)
  (match t.prov with
  | None -> ()
  | Some p ->
      let iteration = t.ms.m_applies in
      Hashtbl.iter
        (fun pred (c : chg) ->
          if List.mem pred t.an.Analyzer.idbs then begin
            let stratum = Analyzer.stratum_of t.an pred in
            Rows.iter
              (fun row ->
                if Rows.mem row (rel t.db pred) then
                  Provenance.record p ~pred ~stratum ~iteration row)
              c.ins;
            Rows.iter
              (fun row ->
                if not (Rows.mem row (rel t.db pred)) then Provenance.retract p ~pred row)
              c.del
          end)
        chgs);
  let out =
    List.concat_map
      (fun (s : Analyzer.stratum) ->
        List.filter_map
          (fun p ->
            match Hashtbl.find_opt chgs p with
            | Some c when not (Rows.is_empty c.ins && Rows.is_empty c.del) ->
                Some
                  ( p,
                    {
                      Delta.insert = List.map Array.of_list (Rows.elements c.ins);
                      retract = List.map Array.of_list (Rows.elements c.del);
                    } )
            | _ -> None)
          s.Analyzer.preds)
      t.an.Analyzer.strata
  in
  let dlt = Delta.of_changes out in
  t.ms.m_emitted_inserts <- t.ms.m_emitted_inserts + Delta.count dlt Delta.Insert;
  t.ms.m_emitted_retracts <- t.ms.m_emitted_retracts + Delta.count dlt Delta.Retract;
  dlt

(* --- accessors ----------------------------------------------------------- *)

let rows t pred = Rows.elements (rel t.db pred)

let idbs t = t.an.Analyzer.idbs

let analyzer t = t.an

let provenance t = t.prov

let outputs t =
  List.concat_map
    (fun (s : Analyzer.stratum) -> List.map (fun p -> (p, rows t p)) s.Analyzer.preds)
    t.an.Analyzer.strata

let stats t =
  {
    applies = t.ms.m_applies;
    count_updates = t.ms.m_count_updates;
    dred_deleted = t.ms.m_dred_deleted;
    dred_rederived = t.ms.m_dred_rederived;
    emitted_inserts = t.ms.m_emitted_inserts;
    emitted_retracts = t.ms.m_emitted_retracts;
  }
