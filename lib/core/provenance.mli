(** Why-provenance tag store: one derivation tag per derived tuple.

    A tag records {e where} a tuple first materialized — stratum, fixpoint
    iteration and a monotone sequence number — keyed by the tuple's content,
    not by physical row ids, so the store is shared verbatim by every
    evaluation path (interpreted plans, compiled kernels, the PBME
    bit-matrix solve, IVM maintenance): whichever path absorbs a tuple into
    its relation records the same tag at the same point, which makes a
    half-tagged relation structurally impossible and keeps evaluation
    results byte-identical with recording on or off (tags live beside the
    relations, never inside them).

    The full (rule id + premise rows) derivation is {e not} stored per
    tuple — that would force per-rule evaluation and break the unified-IDB
    query shape the paper's interpreter depends on. Instead {!Explain}
    reconstructs rule and premises on demand by matching rule bodies
    against the final database; the tags supply the when/where half of the
    answer (and, under sampling, the knob that keeps recording cheap
    enough to leave on in production).

    Sampling is deterministic by tuple content: the same (pred, row) is
    kept or skipped identically across runs, paths and retry-ladder rungs,
    so a mid-run re-attempt can never produce a relation whose tag coverage
    disagrees with a clean run at the same sampling rate. *)

type tag = {
  t_stratum : int;  (** stratum that derived the tuple *)
  t_iteration : int;  (** fixpoint iteration within the stratum (0 = base) *)
  t_seq : int;  (** global absorption order within this store's lifetime *)
}

type t

val create : ?sample:float -> unit -> t
(** [sample] ∈ [0, 1]: fraction of tuples to tag, deterministic by tuple
    content. Default 1.0 (tag everything). *)

val sample : t -> float

val sampled : t -> pred:string -> int list -> bool
(** Whether this (pred, row) falls inside the sampling set — true for every
    tuple when [sample] is 1.0. Pure: depends only on the content and the
    store's sampling rate. *)

val record : t -> pred:string -> stratum:int -> iteration:int -> int list -> unit
(** Tag one tuple. First write wins (a re-derivation in a later iteration
    keeps the original tag); sampled-out tuples are counted but not
    stored. *)

val retract : t -> pred:string -> int list -> unit
(** Drop the tag of a tuple that left its relation (IVM retraction). *)

val find : t -> pred:string -> int list -> tag option

val tagged : t -> pred:string -> int
(** Number of tuples currently tagged for [pred]. *)

val recorded : t -> int
(** Total tuples tagged over the store's lifetime (monotone). *)

val skipped : t -> int
(** Tuples offered but sampled out (monotone). *)
