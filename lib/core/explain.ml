module Json = Rs_obs.Json

module Rows = Set.Make (struct
  type t = int list

  let compare = compare
end)

type node =
  | N_edb of { pred : string; row : int list }
  | N_rule of {
      pred : string;
      row : int list;
      rule_index : int;
      rule : Ast.rule;
      agg : string option;
      premises : premise list;
    }

and premise =
  | P_fact of node
  | P_absent of { pred : string; row : int list }
  | P_cmp of string

type outcome = Explained of node | Absent | No_proof | Budget_exceeded of int

exception Budget

(* --- expression evaluation (the naive evaluator's semantics) ------------- *)

type env = (string * int) list

let rec eval_expr (env : env) = function
  | Ast.T (Ast.Const c) -> c
  | Ast.T (Ast.Var v) -> (
      match List.assoc_opt v env with
      | Some c -> c
      | None -> invalid_arg ("explain: unbound variable " ^ v))
  | Ast.T Ast.Wildcard -> invalid_arg "explain: wildcard in expression"
  | Ast.Add (a, b) -> eval_expr env a + eval_expr env b
  | Ast.Sub (a, b) -> eval_expr env a - eval_expr env b
  | Ast.Mul (a, b) -> eval_expr env a * eval_expr env b

let cmp_holds op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Ne -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

let match_args env args row =
  let rec go env args row =
    match (args, row) with
    | [], [] -> Some env
    | a :: args', v :: row' -> (
        match a with
        | Ast.Const c -> if c = v then go env args' row' else None
        | Ast.Wildcard -> go env args' row'
        | Ast.Var x -> (
            match List.assoc_opt x env with
            | Some c -> if c = v then go env args' row' else None
            | None -> go ((x, v) :: env) args' row'))
    | _ -> None
  in
  go env args row

let ground_args env args =
  List.map
    (function
      | Ast.Const c -> c
      | Ast.Var x -> (
          match List.assoc_opt x env with
          | Some c -> c
          | None -> invalid_arg ("explain: unsafe negation on " ^ x))
      | Ast.Wildcard -> invalid_arg "explain: wildcard under negation")
    args

(* Bind the head against a concrete row. Plain terms bind variables;
   aggregate positions contribute no bindings (their value is checked by
   the witness search), so the returned env covers exactly the group
   variables. *)
let head_env head_args row =
  let rec go env hs vs =
    match (hs, vs) with
    | [], [] -> Some env
    | Ast.H_term (Ast.Const c) :: hs', v :: vs' -> if c = v then go env hs' vs' else None
    | Ast.H_term (Ast.Var x) :: hs', v :: vs' -> (
        match List.assoc_opt x env with
        | Some c -> if c = v then go env hs' vs' else None
        | None -> go ((x, v) :: env) hs' vs')
    | Ast.H_term Ast.Wildcard :: _, _ -> invalid_arg "explain: wildcard in head"
    | Ast.H_agg _ :: hs', _ :: vs' -> go env hs' vs'
    | _ -> None
  in
  go [] head_args row

(* --- the proof search ---------------------------------------------------- *)

type state = {
  an : Analyzer.t;
  prov : Provenance.t option;
  sets : (string, Rows.t) Hashtbl.t;
  lookup : string -> int list list;
  memo : (string * int list, node) Hashtbl.t;  (* proven facts; path-independent *)
  max_steps : int;
  mutable steps : int;
}

let set_of st pred =
  match Hashtbl.find_opt st.sets pred with
  | Some s -> s
  | None ->
      let s = Rows.of_list (st.lookup pred) in
      Hashtbl.replace st.sets pred s;
      s

let step st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then raise Budget

let is_edb st pred = List.mem pred st.an.Analyzer.edbs

let seq_of st pred row =
  match st.prov with
  | None -> None
  | Some p ->
      Option.map (fun (t : Provenance.tag) -> t.Provenance.t_seq) (Provenance.find p ~pred row)

(* Candidate rows of [atom] under [env], lexicographic. When the goal has a
   provenance tag, rows absorbed before it (smaller seq) move to the front:
   on a fully-tagged run that is exactly the semi-naive derivation order,
   so the first candidate chain is the real one and the search never
   backtracks. A plain partition keeps each half in lexicographic order, so
   the result is still deterministic for a given store. *)
let candidates st ~goal_seq (a : Ast.atom) env =
  let all =
    Rows.fold
      (fun row acc -> if match_args env a.Ast.args row <> None then row :: acc else acc)
      (set_of st a.Ast.pred) []
    |> List.rev
  in
  match goal_seq with
  | None -> all
  | Some gseq when not (is_edb st a.Ast.pred) ->
      let early, late =
        List.partition
          (fun row -> match seq_of st a.Ast.pred row with Some s -> s < gseq | None -> false)
          all
      in
      early @ late
  | Some _ -> all

let numbered_rules an =
  List.mapi (fun i r -> (i + 1, r)) an.Analyzer.program.Ast.rules

(* Prove [pred(row)]; [path] carries the facts on the current proof branch
   so recursion through the same fact is rejected (a path-acyclic proof
   tree is a well-founded derivation). Successes are memoized globally —
   a finished proof tree is valid on any path. *)
let rec prove st path pred row =
  match Hashtbl.find_opt st.memo (pred, row) with
  | Some n -> Some n
  | None ->
      if not (Rows.mem row (set_of st pred)) then None
      else if is_edb st pred then begin
        let n = N_edb { pred; row } in
        Hashtbl.replace st.memo (pred, row) n;
        Some n
      end
      else if List.mem (pred, row) path then None
      else begin
        let path = (pred, row) :: path in
        let goal_seq = seq_of st pred row in
        let result =
          List.find_map
            (fun (idx, (r : Ast.rule)) ->
              if r.Ast.head_pred <> pred then None
              else if Ast.is_aggregate_rule r then prove_agg st path ~goal_seq idx r row
              else
                match head_env r.Ast.head_args row with
                | None -> None
                | Some env0 -> (
                    match prove_body st path ~goal_seq r.Ast.body env0 with
                    | Some (premises, _) ->
                        Some (N_rule { pred; row; rule_index = idx; rule = r; agg = None; premises })
                    | None -> None))
            (numbered_rules st.an)
        in
        (match result with
        | Some n -> Hashtbl.replace st.memo (pred, row) n
        | None -> ());
        result
      end

(* Prove every body literal under [env0]: positives bind (and are proved in
   place, so an unprovable candidate row is backtracked immediately),
   negations and comparisons check once the positives ground them. Returns
   the premises in proof order plus the final env. *)
and prove_body st path ~goal_seq body env0 =
  let pos, rest = List.partition (function Ast.L_pos _ -> true | _ -> false) body in
  let rec go env acc = function
    | [] -> Some (List.rev acc, env)
    | Ast.L_pos a :: tl ->
        List.find_map
          (fun row ->
            step st;
            match match_args env a.Ast.args row with
            | None -> None
            | Some env' -> (
                match prove st path a.Ast.pred row with
                | Some n -> go env' (P_fact n :: acc) tl
                | None -> None))
          (candidates st ~goal_seq a env)
    | Ast.L_neg a :: tl ->
        step st;
        let grow = ground_args env a.Ast.args in
        if Rows.mem grow (set_of st a.Ast.pred) then None
        else go env (P_absent { pred = a.Ast.pred; row = grow } :: acc) tl
    | Ast.L_cmp (op, l, r) :: tl ->
        step st;
        let lv = eval_expr env l and rv = eval_expr env r in
        if cmp_holds op lv rv then
          go env
            (P_cmp
               (Printf.sprintf "%d %s %d" lv
                  (match op with
                  | Ast.Eq -> "="
                  | Ast.Ne -> "!="
                  | Ast.Lt -> "<"
                  | Ast.Le -> "<="
                  | Ast.Gt -> ">"
                  | Ast.Ge -> ">=")
                  rv)
            :: acc)
            tl
        else None
  in
  go env0 [] (pos @ rest)

(* Aggregate heads: enumerate the body matches of the fact's group (the
   head env binds exactly the group variables), check the row's aggregate
   values are what the matches produce, and explain through a witness
   match — for MIN/MAX the match attaining the value (its premises are
   recursively explained, which walks SSSP-style recursive aggregation
   down to the EDB), for SUM/COUNT/AVG the first match, with the
   contributing count in the label. *)
and prove_agg st path ~goal_seq idx (r : Ast.rule) row =
  match head_env r.Ast.head_args row with
  | None -> None
  | Some env0 ->
      (* (position, op, expr) for each aggregate head position *)
      let aggs =
        List.mapi (fun i h -> (i, h)) r.Ast.head_args
        |> List.filter_map (fun (i, h) ->
               match h with Ast.H_agg (op, e) -> Some (i, op, e) | Ast.H_term _ -> None)
      in
      let rowa = Array.of_list row in
      (* Enumerate matches without proving premises first (cheap), then
         prove the chosen witness. *)
      let matches = ref [] in
      let enum () =
        let rec go env = function
          | [] -> matches := env :: !matches
          | Ast.L_pos a :: tl ->
              List.iter
                (fun row ->
                  step st;
                  match match_args env a.Ast.args row with
                  | Some env' -> go env' tl
                  | None -> ())
                (candidates st ~goal_seq a env)
          | Ast.L_neg a :: tl ->
              step st;
              if not (Rows.mem (ground_args env a.Ast.args) (set_of st a.Ast.pred)) then go env tl
          | Ast.L_cmp (op, l, rr) :: tl ->
              step st;
              if cmp_holds op (eval_expr env l) (eval_expr env rr) then go env tl
        in
        let pos, rest = List.partition (function Ast.L_pos _ -> true | _ -> false) r.Ast.body in
        go env0 (pos @ rest)
      in
      enum ();
      let matches = List.rev !matches in
      let n_matches = List.length matches in
      if n_matches = 0 then None
      else
        let witness_ok env =
          List.for_all
            (fun (i, op, e) ->
              match op with
              | Ast.Min | Ast.Max -> eval_expr env e = rowa.(i)
              | Ast.Sum | Ast.Count | Ast.Avg -> true)
            aggs
        in
        (* MIN/MAX demand a match attaining the stored value; the bag
           aggregates have no single witness, so any match serves as the
           sample chain. *)
        let needs_witness =
          List.exists (fun (_, op, _) -> op = Ast.Min || op = Ast.Max) aggs
        in
        let witness =
          if needs_witness then List.find_opt witness_ok matches
          else match matches with m :: _ -> Some m | [] -> None
        in
        match witness with
        | None -> None
        | Some env ->
            (* re-prove the witness env's body so premises carry full chains *)
            let pinned =
              List.map
                (function
                  | Ast.L_pos a -> Ast.L_pos { a with Ast.args = List.map (fun t -> (match t with Ast.Var x -> (match List.assoc_opt x env with Some c -> Ast.Const c | None -> t) | _ -> t)) a.Ast.args }
                  | l -> l)
                r.Ast.body
            in
            (match prove_body st path ~goal_seq pinned env0 with
            | None -> None
            | Some (premises, _) ->
                let label =
                  String.concat ", "
                    (List.map
                       (fun (_, op, _) ->
                         Printf.sprintf "%s%s of %d match%s" (Ast.agg_op_to_string op)
                           (if op = Ast.Min || op = Ast.Max then " witness" else "")
                           n_matches
                           (if n_matches = 1 then "" else "es"))
                       aggs)
                in
                Some
                  (N_rule
                     { pred = r.Ast.head_pred; row; rule_index = idx; rule = r; agg = Some label; premises }))

let explain ?prov ?(max_steps = 200_000) ~an ~rows pred row =
  let st =
    {
      an;
      prov;
      sets = Hashtbl.create 16;
      lookup = rows;
      memo = Hashtbl.create 256;
      max_steps;
      steps = 0;
    }
  in
  if not (Rows.mem row (set_of st pred)) then Absent
  else
    match prove st [] pred row with
    | Some n -> Explained n
    | None -> No_proof
    | exception Budget -> Budget_exceeded st.steps

(* --- accessors and rendering --------------------------------------------- *)

let rec fold_nodes f acc node =
  let acc = f acc node in
  match node with
  | N_edb _ -> acc
  | N_rule { premises; _ } ->
      List.fold_left
        (fun acc p -> match p with P_fact n -> fold_nodes f acc n | _ -> acc)
        acc premises

let rules_used node =
  fold_nodes
    (fun acc n -> match n with N_rule { rule_index; _ } -> rule_index :: acc | N_edb _ -> acc)
    [] node
  |> List.sort_uniq compare

let rec depth = function
  | N_edb _ -> 0
  | N_rule { premises; _ } ->
      1
      + List.fold_left
          (fun acc p -> match p with P_fact n -> max acc (depth n) | _ -> acc)
          0 premises

let fact_to_string pred row =
  Printf.sprintf "%s(%s)" pred (String.concat ", " (List.map string_of_int row))

let rule_label (r : Ast.rule) =
  if r.Ast.body = [] then
    Printf.sprintf "fact %s(%s)." r.Ast.head_pred
      (String.concat ", " (List.map Ast.head_term_to_string r.Ast.head_args))
  else Ast.rule_to_string r

let render ?tags node =
  let buf = Buffer.create 256 in
  let tag_of pred row =
    match tags with
    | None -> ""
    | Some p -> (
        match Provenance.find p ~pred row with
        | Some t ->
            Printf.sprintf " @s%d/i%d/#%d" t.Provenance.t_stratum t.Provenance.t_iteration
              t.Provenance.t_seq
        | None -> "")
  in
  let indent d = String.make (2 * d) ' ' in
  let rec go d node =
    match node with
    | N_edb { pred; row } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s [edb]\n" (indent d) (fact_to_string pred row))
    | N_rule { pred; row; rule_index; rule; agg; premises } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s%s <= rule %d%s: %s\n" (indent d) (fact_to_string pred row)
             (tag_of pred row) rule_index
             (match agg with Some a -> Printf.sprintf " (%s)" a | None -> "")
             (rule_label rule));
        List.iter
          (fun p ->
            match p with
            | P_fact n -> go (d + 1) n
            | P_absent { pred; row } ->
                Buffer.add_string buf
                  (Printf.sprintf "%s!%s [absent]\n" (indent (d + 1)) (fact_to_string pred row))
            | P_cmp s -> Buffer.add_string buf (Printf.sprintf "%s[%s]\n" (indent (d + 1)) s))
          premises
  in
  go 0 node;
  Buffer.contents buf

let outcome_to_string ?tags ~pred ~row = function
  | Explained n -> render ?tags n
  | Absent -> Printf.sprintf "%s is not in the database\n" (fact_to_string pred row)
  | No_proof ->
      Printf.sprintf
        "%s is present but no rule chain derives it from the inputs — the database is \
         inconsistent with the program\n"
        (fact_to_string pred row)
  | Budget_exceeded steps ->
      Printf.sprintf "%s: explanation search exceeded its budget (%d steps)\n"
        (fact_to_string pred row) steps

let rec node_json node =
  match node with
  | N_edb { pred; row } ->
      Json.Obj [ ("fact", Json.String (fact_to_string pred row)); ("edb", Json.Bool true) ]
  | N_rule { pred; row; rule_index; rule; agg; premises } ->
      Json.Obj
        ([
           ("fact", Json.String (fact_to_string pred row));
           ("rule_index", Json.Int rule_index);
           ("rule", Json.String (rule_label rule));
         ]
        @ (match agg with Some a -> [ ("agg", Json.String a) ] | None -> [])
        @ [
            ( "premises",
              Json.List
                (List.map
                   (function
                     | P_fact n -> node_json n
                     | P_absent { pred; row } ->
                         Json.Obj
                           [
                             ("fact", Json.String (fact_to_string pred row));
                             ("absent", Json.Bool true);
                           ]
                     | P_cmp s -> Json.Obj [ ("cmp", Json.String s) ])
                   premises) );
          ])
