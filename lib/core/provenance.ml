type tag = { t_stratum : int; t_iteration : int; t_seq : int }

type t = {
  tables : (string, (int list, tag) Hashtbl.t) Hashtbl.t;
  sample_rate : float;
  mutable seq : int;
  mutable n_recorded : int;
  mutable n_skipped : int;
}

let create ?(sample = 1.0) () =
  if sample < 0.0 || sample > 1.0 then
    invalid_arg (Printf.sprintf "provenance: sample %g outside [0,1]" sample);
  {
    tables = Hashtbl.create 16;
    sample_rate = sample;
    seq = 0;
    n_recorded = 0;
    n_skipped = 0;
  }

let sample t = t.sample_rate

(* Deterministic content hash: the decision to tag a tuple must not depend
   on which evaluation path absorbed it, which attempt of the retry ladder
   is running, or the order tuples arrived in — only on the tuple itself.
   FNV-1a over the pred name and the row values. *)
let content_hash pred row =
  let h = ref 0x811c9dc5 in
  let mix v =
    h := (!h lxor (v land 0xff)) * 0x01000193;
    h := (!h lxor ((v asr 8) land 0xffff)) * 0x01000193;
    h := (!h lxor ((v asr 24) land 0xffff)) * 0x01000193
  in
  String.iter (fun c -> mix (Char.code c)) pred;
  List.iter mix row;
  !h land max_int

let sampled t ~pred row =
  t.sample_rate >= 1.0
  || (t.sample_rate > 0.0 && content_hash pred row mod 1_000_000 < int_of_float (t.sample_rate *. 1e6))

let table_of t pred =
  match Hashtbl.find_opt t.tables pred with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 256 in
      Hashtbl.replace t.tables pred tbl;
      tbl

let record t ~pred ~stratum ~iteration row =
  if not (sampled t ~pred row) then t.n_skipped <- t.n_skipped + 1
  else begin
    let tbl = table_of t pred in
    if not (Hashtbl.mem tbl row) then begin
      t.seq <- t.seq + 1;
      Hashtbl.replace tbl row { t_stratum = stratum; t_iteration = iteration; t_seq = t.seq };
      t.n_recorded <- t.n_recorded + 1
    end
  end

let retract t ~pred row =
  match Hashtbl.find_opt t.tables pred with
  | Some tbl -> Hashtbl.remove tbl row
  | None -> ()

let find t ~pred row =
  match Hashtbl.find_opt t.tables pred with
  | Some tbl -> Hashtbl.find_opt tbl row
  | None -> None

let tagged t ~pred =
  match Hashtbl.find_opt t.tables pred with Some tbl -> Hashtbl.length tbl | None -> 0

let recorded t = t.n_recorded

let skipped t = t.n_skipped
