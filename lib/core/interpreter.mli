(** The RecStep interpreter: semi-naive, stratified evaluation on the
    relational backend (paper Algorithm 1), with every optimization as a
    toggle so the ablation experiments (Figures 2 and 3) can turn each off:

    - [uie] — unified IDB evaluation: all subqueries of one IDB issued as a
      single UNION ALL query (off: one query per subquery, materialized
      temporaries, plus a final merge query);
    - [oof] — optimization on the fly: which statistics are refreshed per
      iteration ([`Normal] row counts of updated tables, [`Full] everything,
      [`Off] never);
    - [dsd] — dynamic set difference: per-iteration OPSD/TPSD choice by the
      Appendix-A cost model (or force one);
    - [eost] — evaluation as one single transaction: pend dirty-page I/O
      until the fixpoint (off: flush after every query);
    - [fast_dedup] — CCK-GSCHT deduplication (off: boxed hash table);
    - [pbme] — bit-matrix kernels for TC/SG-shaped strata that fit in
      memory;
    - [compiled_kernels] — fused join→project→dedup closures
      ({!Rs_exec.Kernel}) for hot recursive rules (off: every delta plan
      goes through the query interpreter). *)

module Pool = Rs_parallel.Pool
module Relation = Rs_relation.Relation

type oof_mode = Oof_off | Oof_normal | Oof_full

type dsd_mode = Dsd_dynamic | Dsd_force_opsd | Dsd_force_tpsd

type options = {
  uie : bool;
  oof : oof_mode;
  dsd : dsd_mode;
  eost : bool;
  fast_dedup : bool;
  pbme : bool;
  persistent_indexes : bool;
      (** maintain join indexes across queries and iterations in an
          {!Rs_exec.Index_manager} (EDB indexes built once, recursive full
          tables delta-appended); off = the seed's rebuild-per-query
          behavior, kept as an ablation toggle *)
  compiled_kernels : bool;
      (** compile hot recursive rules to fused join→project→dedup closures
          ({!Rs_exec.Kernel}): the Δ-scan probes persistent indexes and
          streams matches straight into FAST-DEDUP, skipping the per-query
          dispatch overhead and the intermediate bag. Rules the
          {!Rs_exec.Cost.kernel_gate} or the kernel compiler rejects
          (negation, aggregates, heads wider than 3, deep join trees) stay
          interpreted; results are identical either way *)
  shared_indexes : Rs_exec.Index_manager.t option;
      (** optional caller-owned parent manager: indexes on names its
          predicate accepts (typically the serving layer's EDB store
          relations) are built in and served from the parent, surviving
          this run's teardown — the run-local manager releases only its own
          entries *)
  query_overhead_s : float;
  alpha : float;  (** DSD cost-model build/probe ratio (from calibration) *)
  timeout_vs : float option;  (** simulated-seconds budget per run *)
  hoard_memory : bool;
      (** keep per-iteration temporaries alive (models RDD-lineage caching in
          the BigDatalog-like baseline; always [false] for RecStep) *)
  share_builds : bool;
      (** share hash tables built on the same (table, keys) across the
          subqueries of one UNION ALL query — the cache-sharing half of UIE *)
  trace : Rs_obs.Trace.t option;
      (** observability sink: when set, the run records stratum/iteration
          spans, per-iteration delta cardinalities, DSD decision events with
          their cost-model inputs, and the storage/dedup/executor counters *)
  provenance : Provenance.t option;
      (** why-provenance sink: when set, every tuple absorbed into an IDB is
          tagged with its (stratum, iteration, sequence) at the single
          absorption point all evaluation paths share — interpreted plans,
          compiled kernels and the PBME solve produce identical tag
          coverage, and evaluation results are byte-identical with
          recording on or off (tags live beside the relations, never in
          them). Recording time is charged to the simulated clock.
          Sampling is the store's knob; see {!Provenance.create} *)
}

val options :
  ?uie:bool ->
  ?oof:oof_mode ->
  ?dsd:dsd_mode ->
  ?eost:bool ->
  ?fast_dedup:bool ->
  ?pbme:bool ->
  ?persistent_indexes:bool ->
  ?compiled_kernels:bool ->
  ?shared_indexes:Rs_exec.Index_manager.t ->
  ?query_overhead_s:float ->
  ?alpha:float ->
  ?timeout_vs:float ->
  ?hoard_memory:bool ->
  ?share_builds:bool ->
  ?trace:Rs_obs.Trace.t ->
  ?provenance:Provenance.t ->
  unit ->
  options
(** Misuse-proof constructor: every omitted knob takes the RecStep default,
    so adding a knob never breaks call sites. Prefer this over building or
    updating the record field-by-field — literal construction is the form
    that breaks when options grow. *)

val default_options : options
(** [options ()] — everything on: the RecStep configuration. *)

type iteration_info = {
  it_stratum : int;
  it_iteration : int;
  it_idb : string;
  it_delta_rows : int;
  it_vtime : float;
}

type result = {
  outputs : (string * Relation.t) list;  (** declared outputs, or all IDBs *)
  relation_of : string -> Relation.t;  (** any relation by name, post-run *)
  iterations : int;  (** total fixpoint iterations across strata *)
  queries : int;  (** queries issued to the backend *)
  pbme_strata : int;  (** strata evaluated with the bit-matrix kernels *)
  io_bytes : int;  (** bytes physically flushed by the transaction manager *)
  dsd_choices : (Rs_exec.Cost.choice * int) list;  (** histogram *)
}

exception Timeout_simulated of float

val run :
  ?options:options ->
  ?on_iteration:(iteration_info -> unit) ->
  pool:Pool.t ->
  edb:(string * Relation.t) list ->
  Ast.program ->
  result
(** Evaluates the program bottom-up to fixpoint. [edb] supplies every input
    relation by name. Raises [Analyzer.Analysis_error] on bad programs,
    {!Timeout_simulated} when the simulated clock passes [timeout_vs], and
    [Rs_storage.Memtrack.Simulated_oom] when the memory budget is
    exceeded — the two failure modes the paper reports for competing
    systems. *)
