(** Naive reference evaluator — the rs_fuzz oracle.

    A textbook bottom-up stratified evaluator over OCaml [Set]s: every rule
    of a stratum is re-evaluated against the full database each round until
    nothing grows. No semi-naive deltas, no indexes, no dedup structures,
    none of the paper's optimizations — which is the point: it is slow but
    trivially auditable, so the optimized engines can be differentially
    tested against it. *)

exception Unsupported_feature of string
(** Raised for programs the oracle deliberately does not cover
    (aggregation). The fuzzer never generates these. *)

val run :
  edb:(string * int list list) list ->
  Ast.program ->
  string list * (string -> int list list)
(** [run ~edb program] evaluates to fixpoint and returns the IDB predicate
    names plus a lookup returning each relation's rows sorted ascending
    (lexicographic), duplicate-free. Raises [Analyzer.Analysis_error] on
    ill-formed programs, [Invalid_argument] on missing or mis-shaped EDBs —
    mirroring the interpreter's frontline checks. *)
