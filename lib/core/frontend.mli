(** Convenience entry points: parse, load facts, run, inspect results. *)

module Relation = Rs_relation.Relation

exception Parse_error of { path : string; line : int; msg : string }
(** A malformed fact file: a non-integer field or an arity mismatch.
    Carries the source position so the CLI can report one precise line
    ([path:line: msg]) and exit nonzero instead of dumping a backtrace. *)

val load_tsv : ?name:string -> arity:int -> string -> Relation.t
(** [load_tsv ~arity path] reads whitespace/tab-separated integer tuples,
    one per line; blank lines and [#] comments are skipped. Raises
    {!Parse_error} on a malformed line. *)

val save_tsv : Relation.t -> string -> unit

val relation_of_list : ?name:string -> int -> int array list -> Relation.t
(** Build an input relation from tuples (testing/examples helper). *)

val edges : ?name:string -> (int * int) list -> Relation.t
(** Binary relation from pairs. *)

val run_text :
  ?options:Interpreter.options ->
  ?workers:int ->
  edb:(string * Relation.t) list ->
  string ->
  Interpreter.result * Rs_parallel.Pool.stats
(** Parse and evaluate program text on a fresh pool; returns the engine
    result and the pool's timing statistics for the run. *)

val result_rows : Interpreter.result -> string -> int array list
(** Sorted distinct tuples of a result relation — canonical form for
    comparisons. *)
