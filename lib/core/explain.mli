(** Why-provenance explanations: reconstruct a full rule + premise chain,
    down to EDB leaves, for any fact in an evaluated database.

    The search is top-down over the {e final} relations: for a derived fact
    it tries the program's rules in source order, binds the head, and
    proves each body literal against the database (candidate rows in
    lexicographic order, success-memoized, cycle-safe via a path-visited
    set). Because only the program and the final row sets drive the
    canonical chain, the rendered explanation is byte-stable across every
    engine that computed the same result — which is what lets the frozen
    corpus in [test/refs.ml] pin chains across engines, and lets fuzz
    divergences ship a chain computed from the reference evaluator.

    A {!Provenance.t} store, when supplied, re-orders candidate premises so
    rows absorbed {e before} the goal (smaller tag sequence) are tried
    first: on a fully-tagged run the chain then follows the actual
    semi-naive derivation order and the search never backtracks. Tags
    never change {e whether} a fact is explainable, only how fast and
    along which (still valid) chain.

    Soundness: every reported chain is a path-acyclic proof tree — a
    well-founded derivation for positive literals by induction on height;
    negated premises render as absence leaves, sound under stratification
    because the negated relation is fully computed below the fact's
    stratum. Aggregate heads are explained through a witness match (for
    MIN/MAX: a body match attaining the aggregate value, recursively
    explained) or the contributing-match count (SUM/COUNT/AVG). *)

type node =
  | N_edb of { pred : string; row : int list }  (** input leaf *)
  | N_rule of {
      pred : string;
      row : int list;
      rule_index : int;  (** 1-based position in the normalized program *)
      rule : Ast.rule;
      agg : string option;  (** e.g. ["min witness of 4 matches"] *)
      premises : premise list;  (** body literals in proof order *)
    }

and premise =
  | P_fact of node  (** positive literal, recursively explained *)
  | P_absent of { pred : string; row : int list }  (** negated literal *)
  | P_cmp of string  (** satisfied comparison, rendered *)

type outcome =
  | Explained of node
  | Absent  (** the fact is not in the database *)
  | No_proof
      (** present but no proof found — an inconsistent database, i.e.
          exactly what a fuzz divergence looks like from the extra side *)
  | Budget_exceeded of int  (** search steps spent before giving up *)

val explain :
  ?prov:Provenance.t ->
  ?max_steps:int ->
  an:Analyzer.t ->
  rows:(string -> int list list) ->
  string ->
  int list ->
  outcome
(** [explain ~an ~rows pred row] proves [pred(row)] from the database
    [rows] (every EDB and IDB predicate must be resolvable; order of the
    returned lists is irrelevant). [max_steps] bounds candidate-match
    attempts (default 200_000). *)

val rules_used : node -> int list
(** Distinct 1-based rule indexes on the chain, ascending. *)

val depth : node -> int
(** Height of the proof tree; an EDB leaf has depth 0. *)

val fact_to_string : string -> int list -> string
(** ["tc(1, 3)"]. *)

val render : ?tags:Provenance.t -> node -> string
(** Multi-line rendering of the chain, two-space indentation per level.
    With [tags], derived facts carry their recorded
    [@stratum/iteration/seq] marker when one exists. Deterministic:
    identical trees render identically. *)

val outcome_to_string : ?tags:Provenance.t -> pred:string -> row:int list -> outcome -> string
(** Render any outcome, including the non-[Explained] ones, as a short
    human-readable report. *)

val node_json : node -> Rs_obs.Json.t
(** Nested object: [{"fact"; "rule"; "rule_index"; "agg"?; "premises"}];
    EDB leaves are [{"fact"; "edb": true}]. *)
