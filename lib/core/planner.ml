open Ast
module Plan = Rs_exec.Plan
module Expr = Rs_exec.Expr

let delta_name pred = pred ^ "@delta"

type compiled =
  | Fact of int array
  | Query of { base : Plan.t; deltas : (string * Plan.t) list }

let fail fmt = Printf.ksprintf (fun m -> raise (Analyzer.Analysis_error m)) fmt

let cmp_to_exec = function
  | Ast.Eq -> Expr.Eq
  | Ast.Ne -> Expr.Ne
  | Ast.Lt -> Expr.Lt
  | Ast.Le -> Expr.Le
  | Ast.Gt -> Expr.Gt
  | Ast.Ge -> Expr.Ge

(* Scan of one body atom: constants and repeated variables become filter
   predicates; returns the plan and the atom's variable bindings
   (first-occurrence column per variable). [table] lets the caller redirect
   the scan to the Δ-table. *)
let atom_scan ?table a =
  let name = Option.value table ~default:a.pred in
  let preds = ref [] and binds = ref [] in
  List.iteri
    (fun i t ->
      match t with
      | Const c -> preds := Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Const c) :: !preds
      | Var v -> (
          match List.assoc_opt v !binds with
          | Some j -> preds := Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Col j) :: !preds
          | None -> binds := (v, i) :: !binds)
      | Wildcard -> assert false (* normalized away by the analyzer *))
    a.args;
  let plan =
    match !preds with [] -> Plan.Scan name | ps -> Plan.Filter (ps, Plan.Scan name)
  in
  (plan, List.rev !binds)

let rec expr_to_exec binds = function
  | T (Var v) -> (
      match List.assoc_opt v binds with
      | Some c -> Expr.Col c
      | None -> fail "unbound variable %s" v)
  | T (Const c) -> Expr.Const c
  | T Wildcard -> assert false
  | Add (a, b) -> Expr.Add (expr_to_exec binds a, expr_to_exec binds b)
  | Sub (a, b) -> Expr.Sub (expr_to_exec binds a, expr_to_exec binds b)
  | Mul (a, b) -> Expr.Mul (expr_to_exec binds a, expr_to_exec binds b)

let head_exprs binds head_args =
  Array.of_list
    (List.map
       (function
         | H_term (Var v) -> (
             match List.assoc_opt v binds with
             | Some c -> Expr.Col c
             | None -> fail "unbound head variable %s" v)
         | H_term (Const c) -> Expr.Const c
         | H_term Wildcard -> assert false
         | H_agg (_, e) -> expr_to_exec binds e)
       head_args)

(* Compile the rule body with the [i]-th current-stratum atom occurrence
   (if [delta_occurrence >= 0]) redirected to its Δ-table. *)
let compile_body analyzer stratum rule ~delta_occurrence =
  ignore analyzer;
  let positive =
    List.filter_map (function L_pos a -> Some a | L_neg _ | L_cmp _ -> None) rule.body
  in
  let recursive_here a = List.mem a.pred stratum.Analyzer.preds in
  (* Index the recursive occurrences among positive atoms. *)
  let occurrence = ref (-1) in
  let table_for a =
    if recursive_here a then begin
      incr occurrence;
      if !occurrence = delta_occurrence then Some (delta_name a.pred) else None
    end
    else None
  in
  match positive with
  | [] -> fail "rule with no positive atom reached the planner: %s" (rule_to_string rule)
  | first :: rest ->
      let first_plan, first_binds = atom_scan ?table:(table_for first) first in
      let plan, binds, arity =
        List.fold_left
          (fun (plan, binds, arity) a ->
            let a_plan, a_binds = atom_scan ?table:(table_for a) a in
            let shared =
              List.filter_map
                (fun (v, ac) ->
                  match List.assoc_opt v binds with Some sc -> Some (sc, ac) | None -> None)
                a_binds
            in
            let lkeys = Array.of_list (List.map fst shared) in
            let rkeys = Array.of_list (List.map snd shared) in
            let new_binds =
              List.filter_map
                (fun (v, ac) ->
                  if List.mem_assoc v binds then None else Some (v, ac + arity))
                a_binds
            in
            let a_arity = List.length a.args in
            ( Plan.join2 plan lkeys a_plan rkeys,
              binds @ new_binds,
              arity + a_arity ))
          (first_plan, first_binds, List.length first.args)
          rest
      in
      (plan, binds, arity)

let compile_rule analyzer stratum rule =
  (* Ground rules (facts) seed the head relation directly. *)
  let as_fact =
    if rule.body = [] then
      Some
        (Array.of_list
           (List.map
              (function
                | H_term (Const c) -> c
                | ht -> fail "fact with non-constant argument %s" (head_term_to_string ht))
              rule.head_args))
    else None
  in
  match as_fact with
  | Some tuple -> Fact tuple
  | None ->
      let cmps =
        List.filter_map
          (function L_cmp (op, a, b) -> Some (op, a, b) | L_pos _ | L_neg _ -> None)
          rule.body
      in
      let negs =
        List.filter_map (function L_neg a -> Some a | L_pos _ | L_cmp _ -> None) rule.body
      in
      let n_positive =
        List.length
          (List.filter (function L_pos _ -> true | L_neg _ | L_cmp _ -> false) rule.body)
      in
      let build ~delta_occurrence =
        let plan, binds, _arity = compile_body analyzer stratum rule ~delta_occurrence in
        let cmp_preds =
          List.map
            (fun (op, a, b) ->
              Expr.Cmp (cmp_to_exec op, expr_to_exec binds a, expr_to_exec binds b))
            cmps
        in
        let out = head_exprs binds rule.head_args in
        (* Negations wrap the join chain in anti-joins (the negated relation
           is EDB or lower-stratum, hence stable within this stratum). *)
        let with_negs =
          List.fold_left
            (fun plan a ->
              let neg_plan, neg_binds = atom_scan a in
              let keys =
                List.map
                  (fun (v, nc) ->
                    match List.assoc_opt v binds with
                    | Some sc -> (sc, nc)
                    | None -> fail "negated variable %s not bound: %s" v (rule_to_string rule))
                  neg_binds
              in
              Plan.AntiJoin
                {
                  al = plan;
                  ar = neg_plan;
                  alkeys = Array.of_list (List.map fst keys);
                  arkeys = Array.of_list (List.map snd keys);
                })
            plan negs
        in
        match (negs, with_negs) with
        | [], Plan.Join j when n_positive >= 2 ->
            (* Embed residual comparisons and the head projection in the top
               join: no extra materialization. *)
            Plan.Join { j with extra = j.extra @ cmp_preds; out = Some out }
        | _ ->
            let filtered =
              match cmp_preds with [] -> with_negs | ps -> Plan.Filter (ps, with_negs)
            in
            Plan.Project (out, filtered)
      in
      (* Recursive predicates in body order — the same positive-atom walk
         [compile_body]'s occurrence counter performs, so occurrence [i]
         scans the Δ-table of [List.nth rec_preds i]. *)
      let rec_preds =
        List.filter_map
          (function
            | L_pos a when List.mem a.pred stratum.Analyzer.preds -> Some a.pred
            | L_pos _ | L_neg _ | L_cmp _ -> None)
          rule.body
      in
      ignore analyzer;
      Query
        {
          base = build ~delta_occurrence:(-1);
          deltas = List.mapi (fun i p -> (p, build ~delta_occurrence:i)) rec_preds;
        }
