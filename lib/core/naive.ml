(* Trivially-correct reference evaluator: naive (not semi-naive) stratified
   fixpoint over OCaml sets. No deltas, no indexes, no dedup structures —
   every rule is re-evaluated from scratch against the full relations each
   round until nothing grows. Deliberately slow; its only job is to be
   obviously right so rs_fuzz can diff the optimized engines against it. *)

module Rows = Set.Make (struct
  type t = int list

  let compare = compare
end)

exception Unsupported_feature of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported_feature m)) fmt

type env = (string * int) list

let rec eval_expr (env : env) = function
  | Ast.T (Ast.Const c) -> c
  | Ast.T (Ast.Var v) -> (
      match List.assoc_opt v env with
      | Some c -> c
      | None -> invalid_arg ("naive: unbound variable " ^ v))
  | Ast.T Ast.Wildcard -> invalid_arg "naive: wildcard in expression"
  | Ast.Add (a, b) -> eval_expr env a + eval_expr env b
  | Ast.Sub (a, b) -> eval_expr env a - eval_expr env b
  | Ast.Mul (a, b) -> eval_expr env a * eval_expr env b

let cmp_holds op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Ne -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

(* Try to extend [env] so that [args] matches [row]; [None] on clash.
   Wildcards have been renamed apart by the analyzer, so they arrive here
   as ordinary single-occurrence variables — the Wildcard case is only for
   callers handing us raw, un-normalized rules. *)
let match_args env args row =
  let rec go env args row =
    match (args, row) with
    | [], [] -> Some env
    | a :: args', v :: row' -> (
        match a with
        | Ast.Const c -> if c = v then go env args' row' else None
        | Ast.Wildcard -> go env args' row'
        | Ast.Var x -> (
            match List.assoc_opt x env with
            | Some c -> if c = v then go env args' row' else None
            | None -> go ((x, v) :: env) args' row'))
    | _ -> None
  in
  go env args row

let rel db pred = match Hashtbl.find_opt db pred with Some s -> s | None -> Rows.empty

(* All bindings satisfying [body] under [env], folded through [k].
   Positive atoms first (they bind), then comparisons and negations — the
   analyzer's safety check guarantees those are ground once the positive
   atoms are matched, whatever order they appear in the source rule. *)
let eval_body db body env k =
  let pos, rest =
    List.partition (function Ast.L_pos _ -> true | _ -> false) body
  in
  let rec go env = function
    | [] -> k env
    | Ast.L_pos a :: tl ->
        Rows.iter
          (fun row ->
            match match_args env a.Ast.args row with
            | Some env' -> go env' tl
            | None -> ())
          (rel db a.Ast.pred)
    | Ast.L_neg a :: tl ->
        let row =
          List.map
            (function
              | Ast.Const c -> c
              | Ast.Var x -> (
                  match List.assoc_opt x env with
                  | Some c -> c
                  | None -> invalid_arg ("naive: unsafe negation on " ^ x))
              | Ast.Wildcard -> invalid_arg "naive: wildcard under negation")
            a.Ast.args
        in
        if not (Rows.mem row (rel db a.Ast.pred)) then go env tl
    | Ast.L_cmp (op, l, r) :: tl ->
        if cmp_holds op (eval_expr env l) (eval_expr env r) then go env tl
  in
  go env (pos @ rest)

let head_row env head_args =
  List.map
    (function
      | Ast.H_term (Ast.Const c) -> c
      | Ast.H_term (Ast.Var x) -> (
          match List.assoc_opt x env with
          | Some c -> c
          | None -> invalid_arg ("naive: unsafe head variable " ^ x))
      | Ast.H_term Ast.Wildcard -> invalid_arg "naive: wildcard in head"
      | Ast.H_agg _ -> unsupported "naive oracle does not evaluate aggregates")
    head_args

(* One naive round: evaluate every rule of the stratum against the full
   current database; returns true if any relation grew. *)
let round db rules =
  let grew = ref false in
  List.iter
    (fun r ->
      let derived = ref Rows.empty in
      eval_body db r.Ast.body []
        (fun env -> derived := Rows.add (head_row env r.Ast.head_args) !derived);
      let before = rel db r.Ast.head_pred in
      let after = Rows.union before !derived in
      if not (Rows.equal before after) then begin
        grew := true;
        Hashtbl.replace db r.Ast.head_pred after
      end)
    rules;
  !grew

let run ~edb (program : Ast.program) =
  let an = Analyzer.analyze program in
  (match an.Analyzer.agg_sigs with
  | (p, _) :: _ -> unsupported "naive oracle does not evaluate aggregates (%s)" p
  | [] -> ());
  let db : (string, Rows.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, arity) ->
      match List.assoc_opt name edb with
      | Some rows ->
          List.iter
            (fun row ->
              if List.length row <> arity then
                invalid_arg
                  (Printf.sprintf "naive: %s expects arity %d" name arity))
            rows;
          Hashtbl.replace db name (Rows.of_list rows)
      | None ->
          if List.mem name an.Analyzer.edbs then
            invalid_arg (Printf.sprintf "naive: no EDB named %s was supplied" name))
    (List.filter (fun (n, _) -> List.mem n an.Analyzer.edbs) an.Analyzer.arities);
  (* bottom-up over strata; inside each stratum iterate all its rules to
     fixpoint (facts are rules with empty bodies and converge in round 1) *)
  List.iter
    (fun s ->
      let continue = ref true in
      while !continue do
        continue := round db s.Analyzer.rules
      done)
    an.Analyzer.strata;
  let result pred = Rows.elements (rel db pred) in
  (an.Analyzer.idbs, result)
