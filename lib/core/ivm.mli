(** Incremental view maintenance over a stratified program (the typed
    delta-stream consumer behind the serving layer's warm refresh).

    A maintained view holds the full materialized state of every relation
    plus, for non-recursive strata, per-tuple {e derivation counts}.
    {!apply} consumes a typed {!Rs_relation.Delta.t} over the EDB and
    returns the exact net delta it induced on the IDB relations, updating
    the materialized state in place.

    Maintenance mode is chosen {e per stratum}:

    - {b Counting} (non-recursive strata): each rule's contribution to a
      head tuple is a signed derivation count, maintained exactly by the
      telescoping delta-rule expansion
      [Δ(L1 ⋈ … ⋈ Ln) = Σ_i new(L1..L(i-1)) ⋈ ΔLi ⋈ old(L(i+1)..Ln)].
      A tuple enters the view when its count goes 0 → positive and leaves
      when it returns to 0. Counts through a negated literal invert the
      sign of the underlying relation's delta. Counting is exact here
      because a non-recursive stratum is a single SCC with no internal
      edge — no derivation cycles, so counts are finite and well-defined.

    - {b DRed} (recursive strata): derivation counts diverge on cycles
      (a tuple can transitively support itself), so recursive strata keep
      sets only and maintain them by delete-and-rederive: overestimate
      deletions against the old state, remove them, re-derive survivors
      from the remaining database, then propagate insertions semi-naively.

    The initial evaluation is {e not} a special case of [apply]: rules
    whose bodies hold with no positive support over the initial EDB (empty
    bodies, negation over an empty relation) would never be triggered by a
    delta, so {!create} evaluates the program to fixpoint stratum-by-
    stratum and seeds the counts by full enumeration. *)

exception Unsupported of string
(** The program uses a feature maintenance does not cover (aggregates —
    the same frontier as the {!Naive} oracle). *)

exception Count_underflow of { pred : string; row : int list; count : int }
(** A derivation count went negative: an internal invariant violation
    (retracting more derivations than were ever counted), never a
    user-input error — user-level over-retraction nets to a no-op during
    delta normalization. *)

type t

val supported : Ast.program -> bool
(** [true] when {!create} would not raise {!Unsupported} (the program has
    no aggregates). Analysis errors are not masked — an ill-formed program
    still raises {!Analyzer.Analysis_error} at {!create}. *)

val create : ?prov:Provenance.t -> edb:(string * int list list) list -> Ast.program -> t
(** Evaluate the program to fixpoint over [edb] and return the maintained
    view. Raises {!Unsupported} on aggregates, [Analyzer.Analysis_error] /
    [Invalid_argument] on the same ill-formedness the interpreter rejects
    (unknown EDB, arity mismatch). With [prov], every IDB row of the
    bootstrap evaluation is tagged, and each {!apply} afterwards reconciles
    the store against its net change (inserted rows tagged at the apply's
    sequence point, retracted rows dropped) — so a maintained view stays
    {!Explain}-able across EDB deltas. *)

val apply : t -> Rs_relation.Delta.t -> Rs_relation.Delta.t
(** [apply t d] folds a typed EDB delta into the view and returns the net
    IDB delta (insertions and retractions across all IDB predicates, in
    stratum order). [d] has set-level semantics: inserting a present tuple
    or retracting an absent one is a counted no-op, and flip-flops within
    the batch net out ({!Rs_relation.Delta.normalize}). Unknown relation
    names and rows whose arity disagrees with the program raise
    [Invalid_argument]; deltas naming IDB predicates are rejected the same
    way (IDBs change only through maintenance). *)

val rows : t -> string -> int list list
(** Current materialized rows of any relation, sorted ascending,
    duplicate-free — same contract as the {!Naive} oracle's lookup. *)

val idbs : t -> string list

val analyzer : t -> Analyzer.t
(** The program analysis backing the view — what {!Explain.explain}
    needs alongside {!rows}. *)

val provenance : t -> Provenance.t option
(** The tag store supplied at {!create}, kept current by every {!apply}. *)

val outputs : t -> (string * int list list) list
(** [rows] for every IDB predicate, in stratum order — the shape the
    serving layer caches. *)

type stats = {
  applies : int;  (** {!apply} calls, including the {!create} bootstrap *)
  count_updates : int;  (** signed derivation-count adjustments *)
  dred_deleted : int;  (** DRed overestimated deletions *)
  dred_rederived : int;  (** deletions taken back by re-derivation *)
  emitted_inserts : int;  (** IDB insertions across all emitted deltas *)
  emitted_retracts : int;  (** IDB retractions across all emitted deltas *)
}

val stats : t -> stats
