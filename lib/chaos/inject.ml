module Rng = Rs_util.Rng
module Int_key = Rs_util.Int_key

type state = {
  plan : Fault.plan;
  specs : Fault.spec option array;  (* indexed by Fault.cls_index *)
  rngs : Rng.t array;  (* one deterministic stream per class *)
  probes : int array;
  fired : int array;
}

(* The active plan is a single scoped global: fault points live in the
   lowest layers (Memtrack, Pool, Dedup), which have no way to receive a
   context argument without threading chaos through every signature in the
   repo. [with_plan] is the only writer and restores the previous state on
   every exit path, so a crash mid-scope can never leak an armed plan into
   later runs (the bug the old [Dedup.chaos_drop] flag had). *)
let current : state option ref = ref None

let active () = !current <> None

let state_of (plan : Fault.plan) =
  let specs = Array.make Fault.n_classes None in
  List.iter (fun (s : Fault.spec) -> specs.(Fault.cls_index s.cls) <- Some s) plan.specs;
  {
    plan;
    specs;
    rngs =
      Array.init Fault.n_classes (fun i ->
          Rng.create ((plan.seed * 0x9E3779B9) lxor ((i + 1) * 0x85EBCA6B)));
    probes = Array.make Fault.n_classes 0;
    fired = Array.make Fault.n_classes 0;
  }

let with_plan plan f =
  let prev = !current in
  current := Some (state_of plan);
  Fun.protect ~finally:(fun () -> current := prev) f

let fires () =
  match !current with
  | None -> []
  | Some st ->
      List.filter_map
        (fun cls ->
          let n = st.fired.(Fault.cls_index cls) in
          if n > 0 then Some (cls, n) else None)
        Fault.all_classes

let plan_label () =
  match !current with Some st -> Some (Fault.plan_to_string st.plan) | None -> None

(* One probe: advance the class's deterministic stream and decide. The
   stream advances on every armed probe (fired or not), so a decision
   depends only on the plan and the probe's ordinal, never on wall time. *)
let decide st (s : Fault.spec) =
  let i = Fault.cls_index s.cls in
  let n = st.probes.(i) in
  st.probes.(i) <- n + 1;
  let draw = Rng.float st.rngs.(i) 1.0 in
  if n < s.after then false
  else if s.limit >= 0 && st.fired.(i) >= s.limit then false
  else if draw < s.p then begin
    st.fired.(i) <- st.fired.(i) + 1;
    true
  end
  else false

let probe cls =
  match !current with
  | None -> false
  | Some st -> (
      match st.specs.(Fault.cls_index cls) with
      | None -> false
      | Some s -> decide st s)

let raise_if cls point =
  if probe cls then raise (Fault.Injected { cls; point })

(* --- the per-class probe API -------------------------------------------- *)

let mem_should_fail ~live =
  match !current with
  | None -> false
  | Some st -> (
      match st.specs.(Fault.cls_index Fault.Mem) with
      | None -> false
      | Some s -> live >= s.threshold && decide st s)

let txn_should_abort ~point = raise_if Fault.Txn point

let stall_factor () =
  match !current with
  | None -> 1.0
  | Some st -> (
      match st.specs.(Fault.cls_index Fault.Stall) with
      | None -> 1.0
      | Some s -> if decide st s then s.factor else 1.0)

let crash_point ~point = raise_if Fault.Crash point

let dedup_should_fail ~point = raise_if Fault.Dedup_fail point

(* Per-key, not per-probe: the same key is dropped (or kept) everywhere it
   is probed, so the injected corruption is a consistent "lost derivation"
   — the failure shape the differential oracle is meant to catch — and the
   decision is independent of chunking order in the parallel dedup path. *)
let dedup_drops ~key =
  match !current with
  | None -> false
  | Some st -> (
      match st.specs.(Fault.cls_index Fault.Dedup_drop) with
      | None -> false
      | Some s ->
          let i = Fault.cls_index Fault.Dedup_drop in
          let h = Int_key.hash (key lxor (st.plan.seed * 0x2545F491)) in
          let drop = float_of_int (h land 0xFFFF) < (s.p *. 65536.0) in
          st.probes.(i) <- st.probes.(i) + 1;
          if drop then st.fired.(i) <- st.fired.(i) + 1;
          drop)

let index_should_fail ~point = raise_if Fault.Index_fail point

let cache_should_corrupt () = probe Fault.Cache_corrupt

let delta_should_abort ~point = raise_if Fault.Delta_abort point

let node_should_fail ~point = raise_if Fault.Node_loss point

let shuffle_should_drop ~point = raise_if Fault.Shuffle_drop point

let kernel_should_fail ~point = raise_if Fault.Kernel_fail point
