(** Scoped, deterministic activation of a {!Fault.plan}.

    The instrumented layers (Memtrack, Txn, Pool, Dedup, Hash_index, the
    result cache) call the probe functions below at their named fault
    points. With no plan active every probe is a single ref read returning
    "don't fire", so production runs pay nothing.

    Activation is dynamically scoped: {!with_plan} arms a plan for the
    duration of a callback and restores the previous state on {e every}
    exit path ([Fun.protect]), including exceptions — an interrupted chaos
    run can never leave injection armed for later runs in the process.
    Decisions are deterministic: each class draws from its own stream
    seeded by [(plan.seed, class)], and a decision depends only on the
    probe's ordinal within the scope (for {!Fault.Dedup_drop}, only on the
    probed key), never on wall-clock time. *)

val active : unit -> bool

val with_plan : Fault.plan -> (unit -> 'a) -> 'a
(** Nests: an inner [with_plan] shadows the outer plan and restores it on
    exit. Probe and fire counters start at zero for each activation. *)

val fires : unit -> (Fault.cls * int) list
(** Fire counts of the innermost active plan (classes that never fired are
    omitted); [[]] when no plan is active. Read it {e inside} the
    [with_plan] callback — the counters vanish with the scope. *)

val plan_label : unit -> string option
(** [Fault.plan_to_string] of the active plan, for reports. *)

(** {2 Probes} — one per fault point; no-ops without an active plan. *)

val mem_should_fail : live:int -> bool
(** {!Fault.Mem}: [true] when the allocation that raised [live] to the
    given level should fail. Probes below the spec's [threshold] don't
    count. The caller (Memtrack) raises its own [Simulated_oom]. *)

val txn_should_abort : point:string -> unit
(** {!Fault.Txn}: raises {!Fault.Injected} when the flush should abort. *)

val stall_factor : unit -> float
(** {!Fault.Stall}: the virtual-makespan multiplier for this batch
    ([1.0] = no stall). One probe per pool batch. *)

val crash_point : point:string -> unit
(** {!Fault.Crash}: raises {!Fault.Injected} when this worker chunk should
    die. *)

val dedup_should_fail : point:string -> unit
(** {!Fault.Dedup_fail}: raises {!Fault.Injected} when a fast dedup table
    creation/growth should fail. *)

val dedup_drops : key:int -> bool
(** {!Fault.Dedup_drop}: [true] when a fresh key should be silently claimed
    a duplicate. Per-key deterministic (a dropped key is dropped at every
    probe), replacing the old global [Dedup.chaos_drop] flag. *)

val index_should_fail : point:string -> unit
(** {!Fault.Index_fail}: raises {!Fault.Injected} when a hash-index
    build/append should fail. *)

val cache_should_corrupt : unit -> bool
(** {!Fault.Cache_corrupt}: [true] when the entry being inserted should be
    stored corrupted. *)

val delta_should_abort : point:string -> unit
(** {!Fault.Delta_abort}: raises {!Fault.Injected} when an EDB delta
    application should abort mid-flight. The probe sits between the staging
    steps of [Edb_store.apply], before anything commits — firing must be
    indistinguishable from the delta never having arrived. *)

val node_should_fail : point:string -> unit
(** {!Fault.Node_loss}: raises {!Fault.Injected} when the simulated shard
    node entering this work section should die. The sharded executor
    catches it and re-executes the stratum from committed fragments. *)

val shuffle_should_drop : point:string -> unit
(** {!Fault.Shuffle_drop}: raises {!Fault.Injected} when a repartition
    exchange message should be lost in flight. Recovered like node loss:
    the stratum restarts from committed state. *)

val kernel_should_fail : point:string -> unit
(** {!Fault.Kernel_fail}: raises {!Fault.Injected} when a compiled rule
    kernel should fail at the given point ([kernel.compile] /
    [kernel.exec]). The interpreter recovers by evaluating the rule's
    interpreted plan instead — results are never affected. *)
