(** Typed fault vocabulary for deterministic chaos injection.

    A {!plan} names which fault classes are armed, how often they fire and
    with what parameters; {!Inject} activates a plan for a dynamic scope and
    answers the probes threaded through the stack. The classes map onto the
    failure modes a memory-bound Datalog service actually has:

    - {!Mem} — an allocation pushes {!Rs_storage.Memtrack} past a live-bytes
      threshold (fires as the existing [Simulated_oom]);
    - {!Txn} — the storage transaction's flush is force-aborted;
    - {!Stall} — a pool batch's virtual makespan is inflated (a straggling
      worker), driving deadline misses without any exception;
    - {!Crash} — a worker raises from inside [parallel_for] / [map_tasks];
    - {!Dedup_fail} — a {!Rs_relation.Dedup} fast table fails to
      create/grow (typed failure, recoverable by falling back to Boxed);
    - {!Dedup_drop} — the fast dedup paths silently claim a fraction of
      fresh keys are duplicates. The only {e silent-corruption} class: it is
      what the differential oracle must catch, never a typed failure;
    - {!Index_fail} — a {!Rs_relation.Hash_index} build/append fails;
    - {!Cache_corrupt} — a result-cache entry is corrupted at insert (the
      cache's checksum must detect it on the next hit);
    - {!Delta_abort} — a typed EDB delta fails mid-application. The store
      stages every relation's change before committing any, so a fired
      probe must leave the store (and hence the version-keyed result cache
      and maintained views) exactly at the pre-delta state;
    - {!Node_loss} — a simulated shard node dies at the start of a work
      section. The sharded executor must re-execute the lost node's stratum
      from the last committed fragment snapshot;
    - {!Shuffle_drop} — a repartition exchange message is lost in flight.
      Recovered the same way: the stratum restarts from committed state, so
      a dropped message can never silently shrink an output;
    - {!Kernel_fail} — a compiled rule kernel fails to compile or to
      execute. Typed and fully recoverable: the interpreter falls back to
      the interpreted plan for that rule, so a fired probe can change
      counters and simulated time but never the answer. *)

type cls =
  | Mem
  | Txn
  | Stall
  | Crash
  | Dedup_fail
  | Dedup_drop
  | Index_fail
  | Cache_corrupt
  | Delta_abort
  | Node_loss
  | Shuffle_drop
  | Kernel_fail

exception Injected of { cls : cls; point : string }
(** Raised by the probes of the typed-failure classes ({!Txn}, {!Crash},
    {!Dedup_fail}, {!Index_fail}). [point] names the instrumented site
    (e.g. ["pool.parallel_for"]). Folded to [Fault] at the engine guard,
    never caught anywhere else. *)

val all_classes : cls list

val n_classes : int

val cls_index : cls -> int
(** Dense [0 .. n_classes-1] index, for per-class counter arrays. *)

val cls_name : cls -> string
(** "mem" / "txn" / "stall" / "crash" / "dedup" / "dedup_drop" / "index" /
    "cache" / "delta" / "node_loss" / "shuffle_drop" / "kernel" — the
    plan-syntax and report vocabulary. *)

val cls_of_name : string -> cls option

type spec = {
  cls : cls;
  p : float;  (** per-probe firing probability, in [0, 1] *)
  after : int;  (** probes to let through before arming *)
  limit : int;  (** max fires; -1 = unlimited *)
  threshold : int;  (** {!Mem}: live-bytes floor below which probes don't count *)
  factor : float;  (** {!Stall}: virtual-makespan multiplier, >= 1 *)
}

val spec :
  ?p:float -> ?after:int -> ?limit:int -> ?threshold:int -> ?factor:float -> cls -> spec
(** Defaults: always fire ([p = 1.0], [after = 0], [limit = -1]),
    [threshold = 0], [factor = 4.0]. *)

type plan = { seed : int; specs : spec list }

val plan : ?seed:int -> spec list -> plan
(** At most one spec per class; raises [Invalid_argument] on duplicates. *)

val with_seed : int -> plan -> plan

exception Parse_error of string

val plan_of_string : ?seed:int -> string -> plan
(** Parses the CLI plan syntax: ';'-separated specs, each
    [class] or [class:key=value,...] — e.g.
    ["mem:p=1,threshold=4096;crash:limit=1;stall:factor=8"]. Raises
    {!Parse_error} with a one-line diagnosis. *)

val plan_to_string : plan -> string
(** Round-trips through {!plan_of_string} (default-valued parameters are
    omitted). *)
