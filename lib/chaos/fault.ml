type cls =
  | Mem
  | Txn
  | Stall
  | Crash
  | Dedup_fail
  | Dedup_drop
  | Index_fail
  | Cache_corrupt
  | Delta_abort
  | Node_loss
  | Shuffle_drop
  | Kernel_fail

exception Injected of { cls : cls; point : string }

let all_classes =
  [ Mem; Txn; Stall; Crash; Dedup_fail; Dedup_drop; Index_fail; Cache_corrupt; Delta_abort;
    Node_loss; Shuffle_drop; Kernel_fail ]

let cls_index = function
  | Mem -> 0
  | Txn -> 1
  | Stall -> 2
  | Crash -> 3
  | Dedup_fail -> 4
  | Dedup_drop -> 5
  | Index_fail -> 6
  | Cache_corrupt -> 7
  | Delta_abort -> 8
  | Node_loss -> 9
  | Shuffle_drop -> 10
  | Kernel_fail -> 11

let n_classes = List.length all_classes

let cls_name = function
  | Mem -> "mem"
  | Txn -> "txn"
  | Stall -> "stall"
  | Crash -> "crash"
  | Dedup_fail -> "dedup"
  | Dedup_drop -> "dedup_drop"
  | Index_fail -> "index"
  | Cache_corrupt -> "cache"
  | Delta_abort -> "delta"
  | Node_loss -> "node_loss"
  | Shuffle_drop -> "shuffle_drop"
  | Kernel_fail -> "kernel"

let cls_of_name = function
  | "mem" -> Some Mem
  | "txn" -> Some Txn
  | "stall" -> Some Stall
  | "crash" -> Some Crash
  | "dedup" -> Some Dedup_fail
  | "dedup_drop" -> Some Dedup_drop
  | "index" -> Some Index_fail
  | "cache" -> Some Cache_corrupt
  | "delta" -> Some Delta_abort
  | "node_loss" -> Some Node_loss
  | "shuffle_drop" -> Some Shuffle_drop
  | "kernel" -> Some Kernel_fail
  | _ -> None

(* A crash mid-injection must still name what was injected. *)
let () =
  Printexc.register_printer (function
    | Injected { cls; point } ->
        Some (Printf.sprintf "Rs_chaos.Fault.Injected(%s@%s)" (cls_name cls) point)
    | _ -> None)

type spec = {
  cls : cls;
  p : float;  (* per-probe firing probability *)
  after : int;  (* probes to let through before arming *)
  limit : int;  (* max fires; -1 = unlimited *)
  threshold : int;  (* Mem: live-bytes floor below which probes don't count *)
  factor : float;  (* Stall: virtual-makespan inflation *)
}

let spec ?(p = 1.0) ?(after = 0) ?(limit = -1) ?(threshold = 0) ?(factor = 4.0) cls =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.spec: p outside [0, 1]";
  if factor < 1.0 then invalid_arg "Fault.spec: factor < 1";
  { cls; p; after; limit; threshold; factor }

type plan = { seed : int; specs : spec list }

let plan ?(seed = 0) specs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.cls then
        invalid_arg ("Fault.plan: duplicate spec for class " ^ cls_name s.cls);
      Hashtbl.add seen s.cls ())
    specs;
  { seed; specs }

let with_seed seed plan = { plan with seed }

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Plan syntax, one spec per ';'-separated group:
     mem:p=1,threshold=4096;crash:limit=1;stall:factor=8
   The class name alone means "always fire" (p=1, no limit). *)
let spec_of_string group =
  let name, params =
    match String.index_opt group ':' with
    | None -> (group, "")
    | Some i ->
        (String.sub group 0 i, String.sub group (i + 1) (String.length group - i - 1))
  in
  let name = String.trim name in
  let cls =
    match cls_of_name name with
    | Some c -> c
    | None -> parse_fail "unknown fault class %S" name
  in
  let base = spec cls in
  let apply s kv =
    let kv = String.trim kv in
    if kv = "" then s
    else
      match String.index_opt kv '=' with
      | None -> parse_fail "bad parameter %S (expected key=value)" kv
      | Some i ->
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let int_v () =
            match int_of_string_opt v with
            | Some n -> n
            | None -> parse_fail "bad integer %S for %s" v k
          in
          let float_v () =
            match float_of_string_opt v with
            | Some f -> f
            | None -> parse_fail "bad number %S for %s" v k
          in
          (match k with
          | "p" -> { s with p = float_v () }
          | "after" -> { s with after = int_v () }
          | "limit" -> { s with limit = int_v () }
          | "threshold" -> { s with threshold = int_v () }
          | "factor" -> { s with factor = float_v () }
          | _ -> parse_fail "unknown parameter %S" k)
  in
  let s = List.fold_left apply base (String.split_on_char ',' params) in
  (* re-run the smart constructor's range checks on the parsed values;
     [plan_of_string] folds the [Invalid_argument] into [Parse_error] *)
  spec ~p:s.p ~after:s.after ~limit:s.limit ~threshold:s.threshold ~factor:s.factor s.cls

let plan_of_string ?(seed = 0) s =
  let groups =
    List.filter (fun g -> String.trim g <> "") (String.split_on_char ';' s)
  in
  if groups = [] then parse_fail "empty fault plan";
  match plan ~seed (List.map spec_of_string groups) with
  | p -> p
  | exception Invalid_argument m -> parse_fail "%s" m

let spec_to_string s =
  let d = spec s.cls in
  let params =
    List.concat
      [
        (if s.p <> d.p then [ Printf.sprintf "p=%g" s.p ] else []);
        (if s.after <> d.after then [ Printf.sprintf "after=%d" s.after ] else []);
        (if s.limit <> d.limit then [ Printf.sprintf "limit=%d" s.limit ] else []);
        (if s.threshold <> d.threshold then [ Printf.sprintf "threshold=%d" s.threshold ]
         else []);
        (if s.factor <> d.factor then [ Printf.sprintf "factor=%g" s.factor ] else []);
      ]
  in
  match params with
  | [] -> cls_name s.cls
  | ps -> cls_name s.cls ^ ":" ^ String.concat "," ps

let plan_to_string p = String.concat ";" (List.map spec_to_string p.specs)
