(** Multi-map hash index from key columns to row ids.

    The build side of every hash join, anti-join and group-by in the
    executor. Chains are stored in flat arrays (no boxing), matching the
    storage discipline of the rest of the backend.

    An index covers rows [\[0, indexed_rows)] of its relation. When the
    relation only grows (the semi-naive recursive case: a full table
    absorbing its delta each iteration), {!append_pool} extends the index
    over the fresh suffix in one parallel pass with amortized doubling,
    instead of rebuilding from scratch — the maintenance discipline the
    executor's {!Rs_exec.Index_manager} relies on. *)

type t

val build : Relation.t -> int array -> t
(** [build r key_cols] indexes every row of [r] by the values of
    [key_cols]. The index holds a reference to [r]; [r] must not be
    destructively mutated while the index is in use (appends are fine — the
    index simply does not cover them until {!append_pool}). *)

val build_pool : Rs_parallel.Pool.t -> Relation.t -> int array -> t
(** Like {!build} but with the insertion pass chunked through the worker
    pool. Chain prepends commute up to per-bucket order; a real threaded
    build would use a CAS retry loop per bucket head (cf. Cck_concurrent),
    so the pass is charged as parallel work. *)

val append_pool : Rs_parallel.Pool.t -> t -> int
(** [append_pool pool t] indexes the rows appended to the relation since the
    index was built or last appended ([\[indexed_rows, nrows)]), returning
    how many were added. The chain array grows by amortized doubling; when
    the load factor would exceed 1/2 the bucket table doubles and every row
    is relinked (one {!rehashes} tick). Probe order is identical to a fresh
    {!build} of the grown relation. Refreshes the recorded {!generation}. *)

val rebase : t -> Relation.t -> unit
(** [rebase t rel] re-points the index at a {e replacement} relation whose
    prefix [\[0, indexed_rows t)] contains exactly the rows of the old
    relation, in order — the guarantee an order-preserving staged copy
    gives (e.g. [Edb_store.apply] with no retractions). Chains store row
    ids, so they remain valid verbatim; the index adopts [rel]'s
    generation, and a following {!append_pool} covers any appended suffix
    without a rebuild. Raises [Invalid_argument] if [rel]'s arity differs
    or it has fewer rows than are indexed. *)

val relation : t -> Relation.t

val key_cols : t -> int array

val indexed_rows : t -> int
(** Rows currently covered; equals [nrows (relation t)] right after
    {!build} / {!append_pool}. *)

val generation : t -> int
(** The relation's {!Relation.generation} when the index was last built or
    appended — the invalidation handle: if it differs from the live
    relation's generation the index is stale and must be rebuilt. *)

val rehashes : t -> int
(** Bucket-table doublings performed by {!append_pool} so far. *)

val iter_matches : t -> int array -> (int -> unit) -> unit
(** [iter_matches idx key f] calls [f row_id] for every indexed row whose key
    columns equal [key]. *)

val iter_matches2 : t -> int -> int -> (int -> unit) -> unit
(** Specialization for two-column keys. *)

val iter_matches1 : t -> int -> (int -> unit) -> unit
(** Specialization for one-column keys. *)

val mem : t -> int array -> bool

val nrows : t -> int

val bytes : t -> int
(** Footprint of the index arrays (excluding the indexed relation). *)

val account : t -> unit

val release : t -> unit
