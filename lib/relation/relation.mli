(** In-memory columnar relations over integer attributes.

    Mirrors QuickStep's storage model at the granularity this reproduction
    needs: a relation is a bag of fixed-arity integer tuples stored column
    by column. Datalog inputs are integer-mapped (paper §5.2 footnote), so
    integer columns suffice for every benchmark. Deduplication is a separate
    concern ({!Dedup}); relations themselves are bags, matching the paper's
    use of [UNION ALL] plus an explicit dedup step. *)

type t

val create : ?name:string -> int -> t
(** [create arity] makes an empty relation. *)

val create_sized : ?name:string -> int -> int -> t
(** [create_sized arity n] has [n] zero rows, to be filled in place via
    {!col} — a single exact allocation for producers that know their output
    cardinality. *)

val name : t -> string

val arity : t -> int

val nrows : t -> int

val generation : t -> int
(** Destructive-mutation counter. Appends ([push_*], {!append_all}) leave it
    unchanged — growth is tracked by {!nrows} — while {!clear} (and any
    in-place rewrite, via {!touch}) bumps it. A persistent index built at
    [(generation, nrows)] therefore remains valid while the generation is
    unchanged, and only rows [\[nrows_at_build, nrows)] need appending. *)

val touch : t -> unit
(** Bump {!generation}. Writers that mutate existing rows in place (e.g.
    through {!col}) on a relation that may be indexed must call this;
    appends need not. *)

val push_row : t -> int array -> unit
(** Appends a tuple; [Array.length] must equal the arity. *)

val push1 : t -> int -> unit

val push2 : t -> int -> int -> unit

val push3 : t -> int -> int -> int -> unit

val get : t -> row:int -> col:int -> int

val col : t -> int -> Rs_util.Int_vec.t
(** Direct access to a column for tight executor loops. *)

val of_rows : ?name:string -> int -> int array list -> t

val to_rows : t -> int array list
(** All tuples, in storage order (testing helper). *)

val copy : ?name:string -> t -> t

val append_all : t -> t -> unit
(** [append_all dst src] appends every tuple of [src] to [dst]. *)

val concat_parallel : Rs_parallel.Pool.t -> int -> t list -> t
(** [concat_parallel pool arity fragments] materializes the concatenation of
    [fragments] with one parallel pass (each fragment copied into its
    precomputed slice) — how the backend merges per-worker output blocks
    without a serial step. The result is accounted. *)

val clear : t -> unit

val account : t -> unit
(** Reconciles this relation's reserved bytes with {!Rs_storage.Memtrack}.
    Called by operators after bulk appends; may raise
    [Rs_storage.Memtrack.Simulated_oom]. *)

val release : t -> unit
(** Returns the relation's accounted bytes to the tracker. The relation may
    still be read afterwards; accounting is simply dropped (used when the
    interpreter deletes per-iteration temporaries). *)

val bytes : t -> int
(** Currently reserved bytes of the backing columns. *)

val sorted_distinct_rows : t -> int array list
(** Tuples sorted lexicographically with duplicates removed — the canonical
    form used by tests and cross-engine result comparison. *)
