module Int_vec = Rs_util.Int_vec
module Memtrack = Rs_storage.Memtrack

type t = {
  name : string;
  arity : int;
  cols : Int_vec.t array;
  mutable accounted : int;
  mutable generation : int;
}

let create ?(name = "_anon") arity =
  if arity < 1 then invalid_arg "Relation.create: arity must be >= 1";
  { name; arity; cols = Array.init arity (fun _ -> Int_vec.create ()); accounted = 0;
    generation = 0 }

let create_sized ?(name = "_anon") arity n =
  if arity < 1 then invalid_arg "Relation.create_sized";
  { name; arity; cols = Array.init arity (fun _ -> Int_vec.create_sized n); accounted = 0;
    generation = 0 }

let name t = t.name
let arity t = t.arity
let nrows t = Int_vec.length t.cols.(0)
let generation t = t.generation
let touch t = t.generation <- t.generation + 1

let push_row t row =
  if Array.length row <> t.arity then invalid_arg "Relation.push_row: arity mismatch";
  Array.iteri (fun i x -> Int_vec.push t.cols.(i) x) row

let push1 t x =
  assert (t.arity = 1);
  Int_vec.push t.cols.(0) x

let push2 t x y =
  assert (t.arity = 2);
  Int_vec.push t.cols.(0) x;
  Int_vec.push t.cols.(1) y

let push3 t x y z =
  assert (t.arity = 3);
  Int_vec.push t.cols.(0) x;
  Int_vec.push t.cols.(1) y;
  Int_vec.push t.cols.(2) z

let get t ~row ~col = Int_vec.get t.cols.(col) row

let col t i = t.cols.(i)

let of_rows ?name arity rows =
  let t = create ?name arity in
  List.iter (push_row t) rows;
  t

let to_rows t =
  let n = nrows t in
  List.init n (fun r -> Array.init t.arity (fun c -> get t ~row:r ~col:c))

let copy ?name t =
  let r = create ?name:(Some (Option.value name ~default:t.name)) t.arity in
  Array.iteri (fun i c -> Int_vec.append r.cols.(i) c) t.cols;
  r

let append_all dst src =
  if dst.arity <> src.arity then invalid_arg "Relation.append_all: arity mismatch";
  Array.iteri (fun i c -> Int_vec.append dst.cols.(i) c) src.cols

(* Generation-bump audit (Index_manager invalidation contract): appends
   (push*, append_all) deliberately do NOT bump — a grown relation is a
   valid delta-append target for a live index. Every destructive mutation
   MUST [touch]: without the bump here, a clear-then-repopulate that ends
   at >= the indexed row count passes the manager's [indexed_rows <= nrows]
   check and serves a stale index over rewritten rows. *)
let clear t =
  Array.iter Int_vec.clear t.cols;
  touch t

let concat_parallel pool arity fragments =
  let frags = Array.of_list fragments in
  let nf = Array.length frags in
  let offsets = Array.make (nf + 1) 0 in
  for i = 0 to nf - 1 do
    offsets.(i + 1) <- offsets.(i) + nrows frags.(i)
  done;
  let total = offsets.(nf) in
  let out =
    { name = "_concat"; arity; cols = Array.init arity (fun _ -> Int_vec.create_sized total);
      accounted = 0; generation = 0 }
  in
  (* disjoint destination slices: safe under real parallelism too *)
  Rs_parallel.Pool.parallel_for pool ~chunks:(max nf 1) 0 nf (fun lo hi ->
      for i = lo to hi - 1 do
        let f = frags.(i) in
        let n = nrows f in
        for c = 0 to arity - 1 do
          Int_vec.blit f.cols.(c) 0 out.cols.(c) offsets.(i) n
        done
      done);
  let b = Array.fold_left (fun acc c -> acc + Int_vec.capacity_bytes c) 0 out.cols in
  Rs_storage.Memtrack.alloc b;
  out.accounted <- b;
  out

let bytes t = Array.fold_left (fun acc c -> acc + Int_vec.capacity_bytes c) 0 t.cols

let account t =
  let b = bytes t in
  let delta = b - t.accounted in
  if delta > 0 then Memtrack.alloc delta else Memtrack.free (-delta);
  t.accounted <- b

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0

let sorted_distinct_rows t =
  let rows = to_rows t in
  let sorted = List.sort compare rows in
  let rec dedup = function
    | a :: b :: rest when a = b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted
