module Int_key = Rs_util.Int_key

exception Capacity_exhausted of { capacity : int }

type t = {
  buckets : int Atomic.t array;  (* head slot index, -1 = empty *)
  keys : int array;
  nexts : int array;
  count : int Atomic.t;
  mask : int;
}

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create ~capacity ~buckets =
  let nb = pow2_at_least buckets in
  {
    buckets = Array.init nb (fun _ -> Atomic.make (-1));
    keys = Array.make (max 1 capacity) 0;
    nexts = Array.make (max 1 capacity) (-1);
    count = Atomic.make 0;
    mask = nb - 1;
  }

let chain_has t key ~from ~until =
  let rec walk slot =
    if slot = until then false
    else if t.keys.(slot) = key then true
    else walk (t.nexts.(slot))
  in
  walk from

let add t key =
  let b = t.buckets.(Int_key.hash key land t.mask) in
  let head = Atomic.get b in
  if chain_has t key ~from:head ~until:(-1) then false
  else begin
    let slot = Atomic.fetch_and_add t.count 1 in
    if slot >= Array.length t.keys then
      raise (Capacity_exhausted { capacity = Array.length t.keys });
    t.keys.(slot) <- key;
    (* Publish: CAS the bucket head; on failure, re-check only the nodes that
       other threads prepended since [seen] (Figure 5, case 3). *)
    let rec publish seen =
      t.nexts.(slot) <- seen;
      if Atomic.compare_and_set b seen slot then true
      else begin
        let head' = Atomic.get b in
        if chain_has t key ~from:head' ~until:seen then false else publish head'
      end
    in
    publish head
  end

let mem t key =
  let head = Atomic.get t.buckets.(Int_key.hash key land t.mask) in
  chain_has t key ~from:head ~until:(-1)

(* [count] may exceed the number of published keys by abandoned slots (a
   concurrent duplicate discovered during publish); enumerate via buckets. *)
let fold f acc t =
  let acc = ref acc in
  Array.iter
    (fun b ->
      let rec walk slot = if slot >= 0 then begin acc := f !acc t.keys.(slot); walk t.nexts.(slot) end in
      walk (Atomic.get b))
    t.buckets;
  !acc

let cardinal t = fold (fun n _ -> n + 1) 0 t

let to_sorted_list t = List.sort compare (fold (fun l k -> k :: l) [] t)
