module Int_vec = Rs_util.Int_vec
module Int_key = Rs_util.Int_key
module Memtrack = Rs_storage.Memtrack

type mode = Fast | Boxed

(* Fast arity<=2: packed keys in [keys]; chains in [nexts]; bucket heads in
   [heads] (-1 = empty). Fast arity>2: tuples flattened into [wide], keyed by
   combined hash; [keys] then stores the row index into [wide]. *)
type fast = {
  farity : int;
  mutable heads : int array;
  nexts : Int_vec.t;
  keys : Int_vec.t;
  wide : Int_vec.t;  (* used when [packed] is false and farity > 1 *)
  mutable count : int;
  mutable mask : int;
  mutable packed : bool;
      (* arity-2 tables start packed and migrate to the wide layout on the
         first tuple outside [0, 2^31) (e.g. a negative attribute); arity-1
         keys are raw values and stay packed for any int *)
}

type impl = F of fast | B of (int array, unit) Hashtbl.t

type t = { mode : mode; arity : int; impl : impl; mutable accounted : int }

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create ?(expected = 64) mode arity =
  if arity < 1 then invalid_arg "Dedup.create";
  let impl =
    match mode with
    | Boxed -> B (Hashtbl.create (max 16 expected))
    | Fast ->
        (* Chaos fault point: allocation of a fast dedup table fails. *)
        Rs_chaos.Inject.dedup_should_fail ~point:"dedup.create";
        let cap = pow2_at_least (2 * max 16 expected) in
        F
          {
            farity = arity;
            heads = Array.make cap (-1);
            nexts = Int_vec.create ();
            keys = Int_vec.create ();
            wide = Int_vec.create ();
            count = 0;
            mask = cap - 1;
            packed = arity <= 2;
          }
  in
  { mode; arity; impl; accounted = 0 }

let mode t = t.mode
let arity t = t.arity

let rehash f =
  (* Chaos fault point: growth of a fast dedup table fails. *)
  Rs_chaos.Inject.dedup_should_fail ~point:"dedup.rehash";
  let cap = 2 * Array.length f.heads in
  let heads = Array.make cap (-1) in
  let mask = cap - 1 in
  let nexts = Int_vec.unsafe_data f.nexts in
  let keys = Int_vec.unsafe_data f.keys in
  for slot = 0 to f.count - 1 do
    let h =
      if f.packed then Int_key.hash keys.(slot) land mask else keys.(slot) land mask
    in
    nexts.(slot) <- heads.(h);
    heads.(h) <- slot
  done;
  f.heads <- heads;
  f.mask <- mask

(* --- packed (arity <= 2) path --- *)

let fast_add_packed f key =
  let h = Int_key.hash key land f.mask in
  let rec walk slot =
    if slot < 0 then false
    else if Int_vec.get f.keys slot = key then true
    else walk (Int_vec.get f.nexts slot)
  in
  if walk f.heads.(h) then false
  else if Rs_chaos.Inject.dedup_drops ~key then false
  else begin
    let slot = f.count in
    Int_vec.push f.keys key;
    Int_vec.push f.nexts f.heads.(h);
    f.heads.(h) <- slot;
    f.count <- f.count + 1;
    if f.count > Array.length f.heads then rehash f;
    true
  end

let fast_mem_packed f key =
  let h = Int_key.hash key land f.mask in
  let rec walk slot =
    if slot < 0 then false
    else if Int_vec.get f.keys slot = key then true
    else walk (Int_vec.get f.nexts slot)
  in
  walk f.heads.(h)

(* --- wide (arity > 2) path: keys stores the combined hash; wide stores the
   flattened tuple; equality re-checks attributes. --- *)

let wide_hash row =
  Array.fold_left Int_key.hash_combine 0x9E3779B9 row

let wide_eq f slot row =
  let base = slot * f.farity in
  let rec go i = i = f.farity || (Int_vec.get f.wide (base + i) = row.(i) && go (i + 1)) in
  go 0

let fast_add_wide f row =
  let hk = wide_hash row in
  let h = hk land f.mask in
  let rec walk slot =
    if slot < 0 then false
    else if Int_vec.get f.keys slot = hk && wide_eq f slot row then true
    else walk (Int_vec.get f.nexts slot)
  in
  if walk f.heads.(h) then false
  else if Rs_chaos.Inject.dedup_drops ~key:hk then false
  else begin
    let slot = f.count in
    Int_vec.push f.keys hk;
    Int_vec.push f.nexts f.heads.(h);
    Array.iter (Int_vec.push f.wide) row;
    f.heads.(h) <- slot;
    f.count <- f.count + 1;
    if f.count > Array.length f.heads then rehash f;
    true
  end

let fast_mem_wide f row =
  let hk = wide_hash row in
  let h = hk land f.mask in
  let rec walk slot =
    if slot < 0 then false
    else if Int_vec.get f.keys slot = hk && wide_eq f slot row then true
    else walk (Int_vec.get f.nexts slot)
  in
  walk f.heads.(h)

(* Packed arity-2 keys require attributes in [0, 2^31): the integer-mapped
   active domains of the paper's workloads satisfy this (§5.2), but parsed
   programs and EDBs may carry negative constants. The first tuple outside
   the packed range migrates the table to the wide layout: unpack every
   stored pair, re-key by tuple hash, and rebuild the buckets in place. *)
let migrate_to_wide f =
  let keys = Int_vec.unsafe_data f.keys in
  for slot = 0 to f.count - 1 do
    let x, y = Int_key.unpack2 keys.(slot) in
    Int_vec.push f.wide x;
    Int_vec.push f.wide y;
    keys.(slot) <- wide_hash [| x; y |]
  done;
  f.packed <- false;
  Array.fill f.heads 0 (Array.length f.heads) (-1);
  let nexts = Int_vec.unsafe_data f.nexts in
  for slot = 0 to f.count - 1 do
    let h = keys.(slot) land f.mask in
    nexts.(slot) <- f.heads.(h);
    f.heads.(h) <- slot
  done

let fast_add2 f x y =
  if f.packed then
    if Int_key.fits2 x y then fast_add_packed f (Int_key.pack2 x y)
    else begin
      migrate_to_wide f;
      fast_add_wide f [| x; y |]
    end
  else fast_add_wide f [| x; y |]

let fast_mem2 f x y =
  if f.packed then Int_key.fits2 x y && fast_mem_packed f (Int_key.pack2 x y)
  else fast_mem_wide f [| x; y |]

let add2 t x y =
  assert (t.arity = 2);
  match t.impl with
  | F f -> fast_add2 f x y
  | B h ->
      let k = [| x; y |] in
      if Hashtbl.mem h k then false
      else begin
        Hashtbl.add h k ();
        true
      end

let add1 t x =
  assert (t.arity = 1);
  match t.impl with
  | F f -> fast_add_packed f x
  | B h ->
      let k = [| x |] in
      if Hashtbl.mem h k then false
      else begin
        Hashtbl.add h k ();
        true
      end

let add_row t row =
  if Array.length row <> t.arity then invalid_arg "Dedup.add_row";
  match t.impl with
  | F f ->
      if t.arity = 1 then fast_add_packed f row.(0)
      else if t.arity = 2 then fast_add2 f row.(0) row.(1)
      else fast_add_wide f row
  | B h ->
      if Hashtbl.mem h row then false
      else begin
        Hashtbl.add h (Array.copy row) ();
        true
      end

let mem_row t row =
  match t.impl with
  | F f ->
      if t.arity = 1 then fast_mem_packed f row.(0)
      else if t.arity = 2 then fast_mem2 f row.(0) row.(1)
      else fast_mem_wide f row
  | B h -> Hashtbl.mem h row

let mem2 t x y = mem_row t [| x; y |]

let cardinal t =
  match t.impl with F f -> f.count | B h -> Hashtbl.length h

(* Estimated GC-heap footprint of a Hashtbl entry: bucket cons (3 words) +
   boxed key array header+data. *)
let boxed_entry_bytes arity = 8 * (3 + 1 + arity) + 16

let bytes t =
  match t.impl with
  | F f ->
      (8 * Array.length f.heads)
      + Int_vec.capacity_bytes f.nexts + Int_vec.capacity_bytes f.keys
      + Int_vec.capacity_bytes f.wide
  | B h -> (Hashtbl.length h * boxed_entry_bytes t.arity) + (8 * 16)

let account t =
  let b = bytes t in
  let delta = b - t.accounted in
  if delta > 0 then Memtrack.alloc delta else Memtrack.free (-delta);
  t.accounted <- b

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0

let dedup_chunk t r out lo hi =
  match Relation.arity r with
  | 1 ->
      let c0 = Relation.col r 0 in
      for i = lo to hi - 1 do
        let x = Int_vec.get c0 i in
        if add1 t x then Relation.push1 out x
      done
  | 2 ->
      let c0 = Relation.col r 0 and c1 = Relation.col r 1 in
      for i = lo to hi - 1 do
        let x = Int_vec.get c0 i and y = Int_vec.get c1 i in
        if add2 t x y then Relation.push2 out x y
      done
  | arity ->
      let row = Array.make arity 0 in
      for i = lo to hi - 1 do
        for c = 0 to arity - 1 do
          row.(c) <- Relation.get r ~row:i ~col:c
        done;
        if add_row t row then Relation.push_row out row
      done

(* probes = input tuples, hits = duplicates absorbed by the table *)
let record_trace trace r distinct =
  match trace with
  | None -> ()
  | Some tr ->
      let probes = Relation.nrows r in
      Rs_obs.Trace.count tr "dedup.probes" probes;
      Rs_obs.Trace.count tr "dedup.hits" (max 0 (probes - distinct))

let dedup_relation_parallel ?expected ?trace ~pool mode r =
  let go () =
    let arity = Relation.arity r in
    let n = Relation.nrows r in
    let t = create ~expected:(Option.value expected ~default:(max 16 n)) mode arity in
    let out = Relation.create ~name:(Relation.name r ^ "_dedup") arity in
    let fragments = ref [] in
    Rs_parallel.Pool.parallel_for pool 0 n (fun lo hi ->
        let frag = Relation.create arity in
        dedup_chunk t r frag lo hi;
        fragments := frag :: !fragments);
    ignore out;
    let merged = Relation.concat_parallel pool arity (List.rev !fragments) in
    account t;
    release t;
    record_trace trace r (Relation.nrows merged);
    merged
  in
  match trace with
  | Some tr -> Rs_obs.Trace.span tr ~kind:"dedup" (Relation.name r) go
  | None -> go ()

let dedup_relation ?expected ?trace mode r =
  let go () =
    let arity = Relation.arity r in
    let n = Relation.nrows r in
    let t = create ~expected:(Option.value expected ~default:(max 16 n)) mode arity in
    let out = Relation.create ~name:(Relation.name r ^ "_dedup") arity in
    dedup_chunk t r out 0 n;
    account t;
    Relation.account out;
    release t;
    record_trace trace r (Relation.nrows out);
    out
  in
  match trace with
  | Some tr -> Rs_obs.Trace.span tr ~kind:"dedup" (Relation.name r) go
  | None -> go ()
