(** Latch-free concurrent CCK-GSCHT (paper Figure 5).

    The paper's deduplication table is a *global* separate-chaining hash
    table into which worker threads insert compact concatenated keys in
    parallel without latches: a bucket's chain head is updated with CAS, and
    on CAS failure the thread re-checks the newly prepended nodes before
    retrying (Figure 5's "conflict with memory contention" case).

    This module is the faithful concurrent implementation, built on OCaml 5
    [Atomic] and stress-tested with real [Domain]s in the test suite. The
    single-threaded engine path uses {!Dedup} (same layout, no atomics); the
    two are verified to produce identical sets. Capacity is fixed at
    creation, mirroring the paper's pre-allocation from the optimizer's
    cardinality estimate. *)

type t

exception Capacity_exhausted of { capacity : int }
(** Raised by {!add} when the pre-allocated slot array is full — the
    optimizer's cardinality estimate was too small. The exception is typed
    (not a bare [Failure]) so the engine boundary
    ([Rs_engines.Engine_intf.guard]) can fold it into the [Oom] outcome:
    a hot dedup table overflowing must fail that one query, not the
    process serving it. *)

val create : capacity:int -> buckets:int -> t
(** [create ~capacity ~buckets] pre-allocates room for [capacity] keys and
    a power-of-two number of buckets of at least [buckets]. *)

val add : t -> int -> bool
(** [add t key] inserts the packed key; [true] iff it was new. Safe to call
    from multiple domains concurrently. Raises {!Capacity_exhausted} if the
    table is full. *)

val mem : t -> int -> bool

val cardinal : t -> int

val to_sorted_list : t -> int list
(** All keys, sorted (testing helper; call only after writers finish). *)
