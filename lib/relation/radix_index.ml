module Int_vec = Rs_util.Int_vec
module Int_key = Rs_util.Int_key
module Memtrack = Rs_storage.Memtrack

(* Radix-partitioned open-addressing multi-map: a parallel partition pass on
   the low hash bits splits the build rows into [P] partitions; each
   partition gets one contiguous linear-probing table of row ids. Probes go
   straight to their partition and walk a short cluster — no [nexts] pointer
   chain, so a probe touches one cache-resident slab instead of chasing rows
   scattered across the whole build side. *)

type t = {
  rel : Relation.t;
  key_cols : int array;
  pbits : int;  (* log2 of the partition count *)
  pmask : int;
  slots : int array array;  (* per partition: open addressing, -1 = empty *)
  masks : int array;  (* per partition: capacity - 1 *)
  mutable accounted : int;
}

let pow2_at_least ~base n =
  let rec go p = if p >= n then p else go (p * 2) in
  go base

(* Partitions sized so each open-addressing slab stays around the scale of a
   private cache; capped so tiny builds do not pay partitioning overhead. *)
let partition_bits n =
  let rec go bits = if bits >= 8 || n lsr bits <= 8192 then bits else go (bits + 1) in
  if n <= 8192 then 0 else go 1

let row_key_hash rel key_cols row =
  match Array.length key_cols with
  | 1 -> Int_key.hash (Relation.get rel ~row ~col:key_cols.(0))
  | 2 ->
      Int_key.hash
        (Int_key.pack2 (Relation.get rel ~row ~col:key_cols.(0)) (Relation.get rel ~row ~col:key_cols.(1)))
  | _ ->
      Array.fold_left
        (fun acc c -> Int_key.hash_combine acc (Relation.get rel ~row ~col:c))
        0x9E3779B9 key_cols

let key_hash key_cols key =
  match Array.length key_cols with
  | 1 -> Int_key.hash key.(0)
  | 2 -> Int_key.hash (Int_key.pack2 key.(0) key.(1))
  | _ -> Array.fold_left Int_key.hash_combine 0x9E3779B9 key

let build_pool pool rel key_cols =
  let n = Relation.nrows rel in
  let pbits = partition_bits n in
  let nparts = 1 lsl pbits in
  let pmask = nparts - 1 in
  (* Pass 1 (parallel): each chunk routes its rows into chunk-local
     per-partition buckets — the scatter phase of a radix partition, with
     chunk-locality standing in for the per-thread output buffers a real
     partitioned build uses. *)
  let chunk_parts : Int_vec.t array list ref = ref [] in
  Rs_parallel.Pool.parallel_for pool 0 n (fun lo hi ->
      let local = Array.init nparts (fun _ -> Int_vec.create ()) in
      for row = lo to hi - 1 do
        Int_vec.push local.(row_key_hash rel key_cols row land pmask) row
      done;
      chunk_parts := local :: !chunk_parts);
  let chunks = Array.of_list (List.rev !chunk_parts) in
  let counts = Array.make nparts 0 in
  Array.iter
    (fun local -> Array.iteri (fun p v -> counts.(p) <- counts.(p) + Int_vec.length v) local)
    chunks;
  let slots = Array.make nparts [||] and masks = Array.make nparts 0 in
  (* Pass 2 (parallel over partitions): each partition fills its own table,
     so the insert phase is embarrassingly parallel. Rows are inserted in
     descending global row order; equal keys share a home slot, so linear
     probing preserves that order and matches enumerate newest-row-first —
     byte-compatible with the chained index's prepend order. *)
  Rs_parallel.Pool.parallel_for pool ~chunks:(max 1 nparts) 0 nparts (fun plo phi ->
      for p = plo to phi - 1 do
        let cap = pow2_at_least ~base:8 (2 * max 4 counts.(p)) in
        let tab = Array.make cap (-1) in
        let mask = cap - 1 in
        for ci = Array.length chunks - 1 downto 0 do
          let v = chunks.(ci).(p) in
          for i = Int_vec.length v - 1 downto 0 do
            let row = Int_vec.get v i in
            let h = row_key_hash rel key_cols row in
            let slot = ref ((h lsr pbits) land mask) in
            while tab.(!slot) >= 0 do
              slot := (!slot + 1) land mask
            done;
            tab.(!slot) <- row
          done
        done;
        slots.(p) <- tab;
        masks.(p) <- mask
      done);
  { rel; key_cols; pbits; pmask; slots; masks; accounted = 0 }

let relation t = t.rel
let key_cols t = t.key_cols
let nrows t = Relation.nrows t.rel
let partitions t = Array.length t.slots

let key_eq t row key =
  let rec go i =
    i = Array.length t.key_cols
    || (Relation.get t.rel ~row ~col:t.key_cols.(i) = key.(i) && go (i + 1))
  in
  go 0

let probe t h matches f =
  let p = h land t.pmask in
  let tab = t.slots.(p) and mask = t.masks.(p) in
  let slot = ref ((h lsr t.pbits) land mask) in
  let continue_ = ref true in
  while !continue_ do
    let row = tab.(!slot) in
    if row < 0 then continue_ := false
    else begin
      if matches row then f row;
      slot := (!slot + 1) land mask
    end
  done

let iter_matches t key f = probe t (key_hash t.key_cols key) (fun row -> key_eq t row key) f

let iter_matches1 t k f =
  let c = t.key_cols.(0) in
  probe t (Int_key.hash k) (fun row -> Relation.get t.rel ~row ~col:c = k) f

let iter_matches2 t k1 k2 f =
  let c1 = t.key_cols.(0) and c2 = t.key_cols.(1) in
  probe t
    (Int_key.hash (Int_key.pack2 k1 k2))
    (fun row -> Relation.get t.rel ~row ~col:c1 = k1 && Relation.get t.rel ~row ~col:c2 = k2)
    f

let mem t key =
  let h = key_hash t.key_cols key in
  let p = h land t.pmask in
  let tab = t.slots.(p) and mask = t.masks.(p) in
  let rec walk slot =
    let row = tab.(slot) in
    row >= 0 && (key_eq t row key || walk ((slot + 1) land mask))
  in
  walk ((h lsr t.pbits) land mask)

let bytes t =
  Array.fold_left (fun acc tab -> acc + (8 * Array.length tab)) (16 * Array.length t.slots) t.slots

let account t =
  let b = bytes t in
  let delta = b - t.accounted in
  if delta > 0 then Memtrack.alloc delta else Memtrack.free (-delta);
  t.accounted <- b

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0
