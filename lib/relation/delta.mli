(** Typed delta streams: the mutation vocabulary of the serving layer.

    A delta is an ordered sequence of insert {e and retract} operations
    against named relations — the unit of change that flows from an EDB
    store through the engines' incremental-maintenance API and back out as
    an IDB change (deltas in, deltas out). It replaces the old append-only
    [int array list] surface of [Edb_store.delta]: retraction is first-class
    and carries the same type all the way down.

    Semantics are {e set-level}: relations under maintenance are sets of
    tuples, an insert of a present tuple and a retract of an absent tuple
    are both no-ops (counted, never errors), and within one delta the
    operations apply in order — retract-then-reinsert of the same tuple
    nets out to nothing against a state that already held it.
    {!normalize} computes that net set-level change against a membership
    oracle; the normalized form (disjoint insert/retract row sets, every
    insert absent before, every retract present before) is what the IVM
    machinery consumes. *)

type sign = Insert | Retract

type op = { sign : sign; row : int array }

type t = (string * op list) list
(** Ordered operations per relation, in application order. Relations are
    independent; operations on one relation apply in list order. *)

(** Net set-level change for one relation: [insert] rows were absent before
    and present after, [retract] rows present before and absent after; the
    two lists are disjoint and duplicate-free. *)
type change = { insert : int array list; retract : int array list }

val empty : t

val is_empty : t -> bool

val size : t -> int
(** Total number of operations (inserts + retracts) across relations. *)

val rels : t -> string list
(** Touched relation names, in first-touch order, without duplicates. *)

val ops : t -> string -> op list
(** All operations on one relation, in order ([[]] if untouched). *)

val of_inserts : string -> int array list -> t
(** The old append-only surface as a typed delta: insert every row into one
    relation. *)

val of_retracts : string -> int array list -> t

val merge : t -> t -> t
(** [merge a b] applies [a] then [b] (per-relation op lists concatenate). *)

val normalize : mem:(string -> int array -> bool) -> t -> (string * change) list
(** Net set-level change of applying [t] in order to a state whose
    membership is [mem]. Ops that do not change membership (duplicate
    inserts, missing retracts, retract-then-reinsert of a held tuple) are
    dropped. Relations whose net change is empty are omitted. *)

val of_changes : (string * change) list -> t
(** A delta performing exactly the given net changes (retracts first, then
    inserts — already normalized, order is immaterial). *)

val count : t -> sign -> int
(** Number of operations with the given sign. *)

val to_string : t -> string
(** One line per relation: ["rel +1,2 -3,4"] — debugging and trace labels. *)
