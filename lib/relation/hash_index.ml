module Int_vec = Rs_util.Int_vec
module Int_key = Rs_util.Int_key
module Memtrack = Rs_storage.Memtrack

type t = {
  mutable rel : Relation.t;
  key_cols : int array;
  mutable heads : int array;
  mutable nexts : int array;
  mutable mask : int;
  mutable n : int;  (* rows of [rel] currently indexed: [0, n) *)
  mutable generation : int;  (* [rel]'s generation when last (re)built *)
  mutable rehashes : int;
  mutable accounted : int;
}

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let row_key_hash rel key_cols row =
  match Array.length key_cols with
  | 1 -> Int_key.hash (Relation.get rel ~row ~col:key_cols.(0))
  | 2 ->
      Int_key.hash
        (Int_key.pack2 (Relation.get rel ~row ~col:key_cols.(0)) (Relation.get rel ~row ~col:key_cols.(1)))
  | _ ->
      Array.fold_left
        (fun acc c -> Int_key.hash_combine acc (Relation.get rel ~row ~col:c))
        0x9E3779B9 key_cols

let build rel key_cols =
  (* Chaos fault point: index build allocation fails. *)
  Rs_chaos.Inject.index_should_fail ~point:"hash_index.build";
  let n = Relation.nrows rel in
  let cap = pow2_at_least (2 * max 8 n) in
  let heads = Array.make cap (-1) in
  let nexts = Array.make (max 1 n) (-1) in
  let mask = cap - 1 in
  for row = 0 to n - 1 do
    let h = row_key_hash rel key_cols row land mask in
    nexts.(row) <- heads.(h);
    heads.(h) <- row
  done;
  { rel; key_cols; heads; nexts; mask; n; generation = Relation.generation rel;
    rehashes = 0; accounted = 0 }

let build_pool pool rel key_cols =
  Rs_chaos.Inject.index_should_fail ~point:"hash_index.build_pool";
  let n = Relation.nrows rel in
  let cap = pow2_at_least (2 * max 8 n) in
  let heads = Array.make cap (-1) in
  let nexts = Array.make (max 1 n) (-1) in
  let mask = cap - 1 in
  (* The virtual pool runs chunks back to back, so the two-step prepend below
     is deterministic. A real threaded build would need a CAS retry loop on
     the bucket head (cf. Cck_concurrent); because such a loop makes each
     insertion independent, the pass is still *charged* as parallel work. *)
  Rs_parallel.Pool.parallel_for pool 0 n (fun lo hi ->
      for row = lo to hi - 1 do
        let h = row_key_hash rel key_cols row land mask in
        nexts.(row) <- heads.(h);
        heads.(h) <- row
      done);
  { rel; key_cols; heads; nexts; mask; n; generation = Relation.generation rel;
    rehashes = 0; accounted = 0 }

(* Relink every indexed row into a table of [cap] buckets, chunk-parallel
   like [build_pool]. Rows are prepended in ascending order, so each chain
   ends up in descending row order — the same layout a fresh [build]
   produces. *)
let rehash pool t cap =
  let heads = Array.make cap (-1) in
  let mask = cap - 1 in
  Rs_parallel.Pool.parallel_for pool 0 t.n (fun lo hi ->
      for row = lo to hi - 1 do
        let h = row_key_hash t.rel t.key_cols row land mask in
        t.nexts.(row) <- heads.(h);
        heads.(h) <- row
      done);
  t.heads <- heads;
  t.mask <- mask;
  t.rehashes <- t.rehashes + 1

let append_pool pool t =
  Rs_chaos.Inject.index_should_fail ~point:"hash_index.append_pool";
  let new_n = Relation.nrows t.rel in
  let added = new_n - t.n in
  if added > 0 then begin
    (* grow the chain array by amortized doubling *)
    if new_n > Array.length t.nexts then begin
      let cap = max new_n (2 * Array.length t.nexts) in
      let nexts = Array.make cap (-1) in
      Array.blit t.nexts 0 nexts 0 t.n;
      t.nexts <- nexts
    end;
    (* keep the load factor at or below 1/2, as [build] does *)
    if 2 * new_n > Array.length t.heads then begin
      (* over the load-factor threshold: double and relink everything (the
         rehash links the fresh rows too) *)
      t.n <- new_n;
      rehash pool t (pow2_at_least (2 * new_n))
    end
    else begin
      let lo = t.n in
      t.n <- new_n;
      (* new rows are prepended ahead of older ones — exactly where a full
         rebuild would put them, so probe order is unchanged *)
      Rs_parallel.Pool.parallel_for pool lo new_n (fun clo chi ->
          for row = clo to chi - 1 do
            let h = row_key_hash t.rel t.key_cols row land t.mask in
            t.nexts.(row) <- t.heads.(h);
            t.heads.(h) <- row
          done)
    end
  end;
  t.generation <- Relation.generation t.rel;
  added

(* Re-point the index at a replacement relation whose prefix
   [0, indexed_rows) holds exactly the old rows in order — the shape an
   order-preserving staged copy (Edb_store.apply without retractions)
   produces. The chains stay valid because they store row ids, not values;
   adopting the replacement's generation arms the append fast path for
   whatever suffix the replacement added. *)
let rebase t rel =
  if Relation.arity rel <> Relation.arity t.rel then
    invalid_arg "Hash_index.rebase: arity mismatch";
  if Relation.nrows rel < t.n then invalid_arg "Hash_index.rebase: replacement shrank";
  t.rel <- rel;
  t.generation <- Relation.generation rel

let relation t = t.rel
let key_cols t = t.key_cols
let nrows t = Relation.nrows t.rel
let indexed_rows t = t.n
let generation t = t.generation
let rehashes t = t.rehashes

let key_eq t row key =
  let rec go i =
    i = Array.length t.key_cols
    || (Relation.get t.rel ~row ~col:t.key_cols.(i) = key.(i) && go (i + 1))
  in
  go 0

let iter_matches t key f =
  let h =
    match Array.length t.key_cols with
    | 1 -> Int_key.hash key.(0)
    | 2 -> Int_key.hash (Int_key.pack2 key.(0) key.(1))
    | _ -> Array.fold_left Int_key.hash_combine 0x9E3779B9 key
  in
  let nexts = t.nexts in
  let rec walk row =
    if row >= 0 then begin
      if key_eq t row key then f row;
      walk nexts.(row)
    end
  in
  walk t.heads.(h land t.mask)

let iter_matches1 t k f =
  let c = t.key_cols.(0) in
  let nexts = t.nexts in
  let rec walk row =
    if row >= 0 then begin
      if Relation.get t.rel ~row ~col:c = k then f row;
      walk nexts.(row)
    end
  in
  walk t.heads.(Int_key.hash k land t.mask)

let iter_matches2 t k1 k2 f =
  let c1 = t.key_cols.(0) and c2 = t.key_cols.(1) in
  let nexts = t.nexts in
  let rec walk row =
    if row >= 0 then begin
      if Relation.get t.rel ~row ~col:c1 = k1 && Relation.get t.rel ~row ~col:c2 = k2 then f row;
      walk nexts.(row)
    end
  in
  walk t.heads.(Int_key.hash (Int_key.pack2 k1 k2) land t.mask)

let mem t key =
  let h =
    match Array.length t.key_cols with
    | 1 -> Int_key.hash key.(0)
    | 2 -> Int_key.hash (Int_key.pack2 key.(0) key.(1))
    | _ -> Array.fold_left Int_key.hash_combine 0x9E3779B9 key
  in
  let nexts = t.nexts in
  let rec walk row = row >= 0 && (key_eq t row key || walk nexts.(row)) in
  walk t.heads.(h land t.mask)

let bytes t = 8 * (Array.length t.heads + Array.length t.nexts)

let account t =
  let b = bytes t in
  let delta = b - t.accounted in
  if delta > 0 then Memtrack.alloc delta else Memtrack.free (-delta);
  t.accounted <- b

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0
