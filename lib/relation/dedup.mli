(** Tuple-set structures for deduplication (the paper's FAST-DEDUP).

    The paper's CCK-GSCHT is a global separate-chaining hash table whose
    entries are Compact Concatenated Keys: the whole tuple packed into one
    machine word that serves as key, value and hash at once. We provide:

    - {!Fast}: the CCK-GSCHT. Tuples of arity <= 2 are packed with
      {!Rs_util.Int_key.pack2} while every attribute stays in [0, 2^31);
      the first out-of-range pair (e.g. a negative constant from a parsed
      program) migrates the table to the wider flattened-arena layout that
      arity > 2 tuples always use — combined hashing, still pointer-free.
    - {!Boxed}: the "un-specialized" baseline used for the FAST-DEDUP-off
      ablation — a stdlib [Hashtbl] keyed by boxed [int array] tuples, which
      costs extra allocation, hashing and per-entry overhead.

    Memory is accounted to {!Rs_storage.Memtrack} (real array sizes for
    {!Fast}; a per-entry estimate of the GC-heap footprint for {!Boxed}).

    Fault injection: the {!Fast} insert paths probe
    {!Rs_chaos.Inject.dedup_drops} (silent per-key derivation loss — the
    corruption the differential fuzzer must catch) and table creation/growth
    probe {!Rs_chaos.Inject.dedup_should_fail}. Both are no-ops unless a
    chaos plan is armed in scope; {!Boxed} is unaffected. *)

type mode = Fast | Boxed

type t

val create : ?expected:int -> mode -> int -> t
(** [create mode arity] makes an empty set. [expected] pre-sizes the bucket
    array, mirroring the paper's pre-allocation from the optimizer's
    estimate. *)

val mode : t -> mode

val arity : t -> int

val add2 : t -> int -> int -> bool
(** [add2 t x y] inserts the pair; [true] iff it was new. Arity must be 2. *)

val add_row : t -> int array -> bool

val add1 : t -> int -> bool

val mem_row : t -> int array -> bool

val mem2 : t -> int -> int -> bool

val cardinal : t -> int

val bytes : t -> int

val account : t -> unit
(** Reconcile with the memory tracker (may raise [Simulated_oom]). *)

val release : t -> unit

val dedup_relation : ?expected:int -> ?trace:Rs_obs.Trace.t -> mode -> Relation.t -> Relation.t
(** [dedup_relation mode r] returns a fresh relation with [r]'s distinct
    tuples in first-occurrence order — the engine's [dedup(R)] call
    (Algorithm 1, line 10). When [trace] is given the call records a
    ["dedup"] span named after [r] plus [dedup.probes] (input tuples) and
    [dedup.hits] (duplicates absorbed) counters. *)

val dedup_relation_parallel :
  ?expected:int -> ?trace:Rs_obs.Trace.t -> pool:Rs_parallel.Pool.t -> mode -> Relation.t
  -> Relation.t
(** Like {!dedup_relation}, but tuples are inserted chunk-parallel through
    the worker pool — the CCK-GSCHT is a *global latch-free* table built for
    exactly this access pattern (paper Figure 5), so the engine's dedup step
    scales with cores. Output order is per-chunk first-occurrence. *)
