(** Radix-partitioned open-addressing join index.

    The probe-optimized alternative to {!Hash_index}'s chained layout: a
    parallel partition pass on the low hash bits splits the build rows into
    [P] partitions, each partition gets one contiguous linear-probing table
    of row ids, and a probe goes straight to its partition and scans a short
    cluster — no pointer chain to chase. Matches enumerate in the same order
    as {!Hash_index} (newest row first), so the two layouts are drop-in
    interchangeable inside the executor without perturbing result bytes.

    The layout is immutable once built; the executor's cost policy picks it
    for large one-shot builds, and the chained incremental index for
    persistent (delta-appended) ones. *)

type t

val build_pool : Rs_parallel.Pool.t -> Relation.t -> int array -> t
(** [build_pool pool r key_cols] partitions and indexes every row of [r] in
    two parallel passes (scatter by low hash bits, then per-partition table
    fill). [r] must not be mutated while the index is in use. *)

val relation : t -> Relation.t

val key_cols : t -> int array

val nrows : t -> int

val partitions : t -> int
(** Number of partitions chosen for this build (a power of two; 1 for small
    builds). *)

val iter_matches : t -> int array -> (int -> unit) -> unit
(** [iter_matches idx key f] calls [f row_id] for every indexed row whose
    key columns equal [key], newest row first. *)

val iter_matches1 : t -> int -> (int -> unit) -> unit
(** Specialization for one-column keys. *)

val iter_matches2 : t -> int -> int -> (int -> unit) -> unit
(** Specialization for two-column keys. *)

val mem : t -> int array -> bool

val bytes : t -> int
(** Footprint of the partition tables (excluding the indexed relation). *)

val account : t -> unit

val release : t -> unit
