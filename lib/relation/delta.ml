type sign = Insert | Retract

type op = { sign : sign; row : int array }

type t = (string * op list) list

type change = { insert : int array list; retract : int array list }

let empty : t = []

let is_empty (d : t) = List.for_all (fun (_, ops) -> ops = []) d

let size (d : t) = List.fold_left (fun acc (_, ops) -> acc + List.length ops) 0 d

let rels (d : t) =
  List.rev
    (List.fold_left (fun acc (r, _) -> if List.mem r acc then acc else r :: acc) [] d)

let ops (d : t) rel =
  List.concat_map (fun (r, ops) -> if r = rel then ops else []) d

let of_inserts rel rows : t = [ (rel, List.map (fun row -> { sign = Insert; row }) rows) ]

let of_retracts rel rows : t = [ (rel, List.map (fun row -> { sign = Retract; row }) rows) ]

let merge (a : t) (b : t) : t = a @ b

(* Net change per relation: replay the ops against a membership overlay.
   The overlay records only touched tuples (key = int list, for structural
   hashing); untouched membership comes from [mem]. *)
let normalize ~mem (d : t) =
  List.filter_map
    (fun rel ->
      let overlay : (int list, bool) Hashtbl.t = Hashtbl.create 16 in
      let held row =
        let k = Array.to_list row in
        match Hashtbl.find_opt overlay k with
        | Some b -> b
        | None -> mem rel row
      in
      let inserted = ref [] and retracted = ref [] in
      List.iter
        (fun (r, ops) ->
          if r = rel then
            List.iter
              (fun { sign; row } ->
                match sign with
                | Insert ->
                    if not (held row) then begin
                      Hashtbl.replace overlay (Array.to_list row) true;
                      inserted := row :: !inserted
                    end
                | Retract ->
                    if held row then begin
                      Hashtbl.replace overlay (Array.to_list row) false;
                      retracted := row :: !retracted
                    end)
              ops)
        d;
      (* a tuple both retracted and (re)inserted along the way nets to its
         final overlay state vs its initial membership *)
      let net_insert =
        List.rev (List.filter (fun row -> not (mem rel row) && held row) !inserted)
      in
      let net_retract =
        List.rev (List.filter (fun row -> mem rel row && not (held row)) !retracted)
      in
      (* drop duplicates introduced by repeated flip-flops: keep first *)
      let dedup rows =
        let seen = Hashtbl.create 16 in
        List.filter
          (fun row ->
            let k = Array.to_list row in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          rows
      in
      let insert = dedup net_insert and retract = dedup net_retract in
      if insert = [] && retract = [] then None else Some (rel, { insert; retract }))
    (rels d)

let of_changes (cs : (string * change) list) : t =
  List.map
    (fun (rel, c) ->
      ( rel,
        List.map (fun row -> { sign = Retract; row }) c.retract
        @ List.map (fun row -> { sign = Insert; row }) c.insert ))
    cs

let count (d : t) sign =
  List.fold_left
    (fun acc (_, ops) ->
      acc + List.length (List.filter (fun o -> o.sign = sign) ops))
    0 d

let to_string (d : t) =
  let row_str row =
    String.concat "," (List.map string_of_int (Array.to_list row))
  in
  String.concat "\n"
    (List.map
       (fun rel ->
         let ops = ops d rel in
         let part sign mark =
           match List.filter (fun o -> o.sign = sign) ops with
           | [] -> []
           | os -> [ mark ^ String.concat " " (List.map (fun o -> row_str o.row) os) ]
         in
         String.concat " " ((rel :: part Insert "+") @ part Retract "-"))
       (rels d))
