(** Relation placement across simulated shard nodes.

    Each relation gets a {!strategy}: hash-distributed on a key column
    (rows live on the node owning the key's bucket) or replicated as a
    "reference table" (small relations where a full copy per node is
    cheaper than ever moving rows — the Citus reference-table play).

    Routing is two-level: key → bucket (a pure hash, [shards * 8] buckets)
    → node (a mutable assignment array). The {!Rebalancer} migrates load by
    reassigning buckets; the hash never changes, so a key's bucket — and
    every routing decision already made for unmoved buckets — is stable.
    Per-bucket routed-row counters feed skew detection. *)

type strategy = Hash of { col : int } | Reference

type t

val default_reference_max_rows : int

val create : ?reference_max_rows:int -> shards:int -> unit -> t

val shards : t -> int

val buckets : t -> int

val decide_edb : t -> string -> Rs_relation.Relation.t -> strategy
(** Records and returns the strategy for an EDB: [Reference] when the
    relation has no key column (arity 0) or at most [reference_max_rows]
    rows, else [Hash] on column 0. *)

val decide_idb : t -> string -> arity:int -> strategy
(** IDBs are hash-distributed on column 0 (arity 0 → [Reference]). *)

val strategy : t -> string -> strategy
(** Raises [Invalid_argument] for a relation never decided. *)

val bucket_of_key : t -> int -> int
(** Pure function of the key and shard count — stable across instances
    created with the same [shards]. *)

val node_of_bucket : t -> int -> int

val node_of_key : t -> int -> int

val note_routed : t -> int -> unit
(** Count one row routed by this key, for the rebalancer's skew signal. *)

val owner_of_row : t -> string -> int array -> int
(** Owning node of a full row under the relation's strategy; [Reference]
    rows are canonically owned by node 0. *)

val weights : t -> int array
(** Per-bucket routed-row counts (a copy). *)

val assignment : t -> int array
(** The bucket→node map (a copy), for snapshots. *)

val move_bucket : t -> bucket:int -> node:int -> unit

val restore : t -> assign:int array -> weights:int array -> unit
(** Reset routing state from a snapshot (stratum-recovery path). *)

val hash_relations : t -> (string * int) list
(** All [Hash]-strategy relations with their partition column, sorted —
    the fragments the rebalancer must physically migrate. *)
