(** Colocation-aware rule planning for sharded evaluation.

    For each rule the planner picks an {e anchor} variable — one appearing
    at the partition column of a positive hash-distributed atom. Node [n]
    then evaluates the rule only over valuations whose anchor value it
    owns: the anchored atom's local fragment enforces the restriction for
    free, and the anchor partitions the global valuation space exactly once
    across nodes. Each body occurrence is classified [Local] (its fragment
    is complete for node-owned valuations: reference tables, and
    hash-distributed atoms whose partition column is bound to the anchor —
    including negated atoms, whose local anti-join is then complete) or
    broadcast (reads a full "@b" copy).

    Rules classify three ways, the shuffle cost model of DESIGN.md §13:
    - {!Colocated}: all occurrences local and the head's partition column
      bound to the anchor — zero exchange, the Citus colocated-join case;
    - {!Broadcast_static}: only non-recursive occurrences broadcast — one
      copy per stratum, no recurring traffic;
    - {!Shuffled}: a recursive occurrence needs its Δ broadcast every
      round, or derived heads must be routed to their owners (or the rule
      has no anchor and runs whole on one designated node).

    Variant plans are compiled by renaming body predicates to binding
    names ("P@l" local fragment, "P@b" broadcast copy, "P@dl" / "P@db"
    their Δ counterparts) and running the stock analyzer + planner on the
    synthetic one-rule program: scans are by name, so one compiled plan
    runs unchanged against every node's catalog. *)

val local_name : string -> string

val bcast_name : string -> string

val delta_local_name : string -> string

val delta_bcast_name : string -> string

type source = Local | Bcast

type rclass = Colocated | Broadcast_static | Shuffled

val rclass_name : rclass -> string

type variant = {
  v_driver : string option;
      (** current-stratum predicate whose Δ feeds this variant; [None] for
          the delta-free base variant *)
  v_plan : Rs_exec.Plan.t;
}

type rule_plan = {
  rp_head : string;
  rp_class : rclass;
  rp_head_local : bool;  (** derived rows are born on their owning node *)
  rp_solo : int option;  (** anchor-less: evaluated only on this node *)
  rp_fact : int array option;
  rp_base : variant option;
  rp_deltas : variant list;
}

type stratum_plan = {
  sp_rules : rule_plan list;
  sp_bcast_full : string list;  (** predicates needing "@b" copies *)
  sp_bcast_live : string list;
      (** current-stratum subset of [sp_bcast_full]: their "@b" copies must
          absorb each round's broadcast Δ *)
  sp_bcast_delta : string list;  (** current-stratum predicates read via "@db" *)
  sp_classes : (rclass * int) list;
}

val plan_stratum : Recstep.Analyzer.t -> Partitioner.t -> Recstep.Analyzer.stratum -> stratum_plan
