module Relation = Rs_relation.Relation
module Catalog = Rs_exec.Catalog

type move = { mv_bucket : int; mv_from : int; mv_to : int }

(* Decide which buckets to migrate, purely from observed load. A node's
   load combines its routed-row weight with its accumulated simulated busy
   time (normalized to rows): a node can be row-balanced yet time-skewed
   when its keys are join-heavy, and vice versa. Greedy: while the most
   loaded node exceeds [threshold] x mean, move its heaviest bucket to the
   least loaded node — bounded by one pass over the buckets. *)
let plan ~shards ~assign ~weights ~busy ~threshold =
  if shards <= 1 then []
  else begin
    let n_buckets = Array.length assign in
    let assign = Array.copy assign in
    let row_load = Array.make shards 0.0 in
    Array.iteri (fun b w -> row_load.(assign.(b)) <- row_load.(assign.(b)) +. float_of_int w) weights;
    let total_rows = Array.fold_left ( +. ) 0.0 row_load in
    let total_busy = Array.fold_left ( +. ) 0.0 busy in
    let load = Array.make shards 0.0 in
    for n = 0 to shards - 1 do
      let t = if total_busy > 0.0 then busy.(n) /. total_busy *. total_rows else 0.0 in
      load.(n) <- (row_load.(n) +. t) /. 2.0
    done;
    let bucket_load b = float_of_int weights.(b) /. 2.0 in
    let mean = Array.fold_left ( +. ) 0.0 load /. float_of_int shards in
    let moves = ref [] in
    let continue_ = ref (mean > 0.0) in
    let steps = ref 0 in
    while !continue_ && !steps < n_buckets do
      incr steps;
      let hot = ref 0 and cold = ref 0 in
      for n = 1 to shards - 1 do
        if load.(n) > load.(!hot) then hot := n;
        if load.(n) < load.(!cold) then cold := n
      done;
      if load.(!hot) <= threshold *. mean then continue_ := false
      else begin
        (* heaviest movable bucket on the hot node that fits: moving it must
           not just swap the skew onto the cold node, and must erase a
           meaningful share of the excess — otherwise the loop would dribble
           near-empty buckets around without curing the imbalance *)
        let min_gain = (load.(!hot) -. mean) *. 0.1 in
        let best = ref (-1) in
        for b = 0 to n_buckets - 1 do
          if
            assign.(b) = !hot
            && bucket_load b >= min_gain
            && load.(!cold) +. bucket_load b < load.(!hot)
            && (!best < 0 || bucket_load b > bucket_load !best)
          then best := b
        done;
        if !best < 0 then continue_ := false
        else begin
          let b = !best in
          moves := { mv_bucket = b; mv_from = !hot; mv_to = !cold } :: !moves;
          assign.(b) <- !cold;
          load.(!hot) <- load.(!hot) -. bucket_load b;
          load.(!cold) <- load.(!cold) +. bucket_load b
        end
      end
    done;
    List.rev !moves
  end

(* Physically migrate the fragments of every hash-distributed relation
   according to [moves]: rewrite the bucket map, then for each source node
   split its fragment into kept rows and per-destination moved rows, charge
   the moved rows as [Rebalance] exchange, and append them at their new
   owner. Replacing the source fragment changes its physical identity, so
   any persistent index on it invalidates (and rebuilds) automatically. *)
let apply part ex ~(nodes : Node.t array) ~moves =
  List.iter (fun m -> Partitioner.move_bucket part ~bucket:m.mv_bucket ~node:m.mv_to) moves;
  let moved_to = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace moved_to m.mv_bucket m.mv_to) moves;
  let sources = List.sort_uniq compare (List.map (fun m -> m.mv_from) moves) in
  let rows_moved = ref 0 in
  List.iter
    (fun (name, col) ->
      let frag_name = Shard_planner.local_name name in
      List.iter
        (fun src ->
          let nd = nodes.(src) in
          if Catalog.mem nd.Node.catalog frag_name then begin
            let frag = Catalog.rel nd.Node.catalog frag_name in
            let arity = Relation.arity frag in
            let n = Relation.nrows frag in
            let keep = Relation.create ~name:frag_name arity in
            let out = Array.make (Array.length nodes) None in
            let row = Array.make arity 0 in
            for i = 0 to n - 1 do
              for c = 0 to arity - 1 do
                row.(c) <- Relation.get frag ~row:i ~col:c
              done;
              let b = Partitioner.bucket_of_key part row.(col) in
              match Hashtbl.find_opt moved_to b with
              | Some dst when dst <> src ->
                  let r =
                    match out.(dst) with
                    | Some r -> r
                    | None ->
                        let r = Relation.create arity in
                        out.(dst) <- Some r;
                        r
                  in
                  Relation.push_row r row
              | _ -> Relation.push_row keep row
            done;
            Relation.account keep;
            Node.replace_table nd frag_name keep;
            Catalog.analyze_rows nd.Node.catalog frag_name;
            Array.iteri
              (fun dst out_r ->
                match out_r with
                | None -> ()
                | Some r ->
                    let moved = Relation.nrows r in
                    rows_moved := !rows_moved + moved;
                    Exchange.send ex ~kind:Exchange.Rebalance ~src ~dst ~tuples:moved ~arity
                      ~dest_pool:nodes.(dst).Node.pool
                      ~point:(Printf.sprintf "shard.rebalance.%s" name);
                    let dfrag = Catalog.rel nodes.(dst).Node.catalog frag_name in
                    Relation.append_all dfrag r;
                    Relation.account dfrag;
                    Catalog.analyze_rows nodes.(dst).Node.catalog frag_name)
              out
          end)
        sources)
    (Partitioner.hash_relations part);
  !rows_moved
