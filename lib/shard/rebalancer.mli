(** Shard rebalancing between fixpoint strata.

    Skew detection reads two signals the run has already produced:
    per-bucket routed-row weights (the {!Partitioner} counters) and
    per-node accumulated simulated busy time. When the hottest node's
    combined load exceeds [threshold] x the mean, buckets migrate greedily
    from hottest to coldest — a pure {!plan} (unit-testable on synthetic
    skew) followed by a physical {!apply} that rewrites the bucket map,
    moves fragment rows over the exchange, and lets persistent indexes on
    replaced fragments invalidate through the physical-identity check. *)

type move = { mv_bucket : int; mv_from : int; mv_to : int }

val plan :
  shards:int ->
  assign:int array ->
  weights:int array ->
  busy:float array ->
  threshold:float ->
  move list
(** Pure planning; does not mutate the inputs. Empty when balanced or
    [shards <= 1]. *)

val apply : Partitioner.t -> Exchange.t -> nodes:Node.t array -> moves:move list -> int
(** Executes the moves; returns rows physically migrated. *)
