(** Distributed semi-naive evaluation over simulated shard nodes.

    The coordinator hash-partitions every relation across [shards] virtual
    nodes ({!Partitioner}), compiles each stratum into colocation-aware
    binding plans ({!Shard_planner}), and runs Jacobi supersteps: every
    node evaluates its variants against its own catalog (a full simulated
    machine with its own pool, executor, and per-shard persistent
    indexes), derived tuples route to their owning node over the typed
    exchange ({!Exchange}), and owners absorb them with the stock
    dedup/DSD set-difference machinery. A superstep is charged to the
    coordinator clock at the slowest node's simulated time
    ({!Rs_parallel.Pool.absorb}), so the makespan reflects skew; total
    busy time is preserved for utilization.

    [colocation = false] keeps the physical execution identical but
    additionally charges head-local rows as a forced repartition — outputs
    stay byte-identical while shuffle counters and makespan degrade, which
    is the §13 cost-model experiment. [rebalance = true] runs the
    {!Rebalancer} between strata.

    Chaos integration: when an injection plan is armed, each stratum
    snapshots committed state first; [node_loss] / [shuffle_drop] faults
    abort the stratum, restore the snapshot, and retry up to
    [max_recoveries] times before the fault escapes to the caller. *)

exception Unsupported of string
(** Raised for programs the sharded engine cannot run (aggregates). *)

type options = {
  shards : int;
  colocation : bool;
  rebalance : bool;
  rebalance_threshold : float;
  fast_dedup : bool;
  persistent_indexes : bool;
  dsd : Recstep.Interpreter.dsd_mode;
  alpha : float;
  query_overhead_s : float;
  share_builds : bool;
  timeout_vs : float option;
  max_recoveries : int;
  reference_max_rows : int;
  trace : Rs_obs.Trace.t option;
}

val options :
  ?shards:int ->
  ?colocation:bool ->
  ?rebalance:bool ->
  ?rebalance_threshold:float ->
  ?fast_dedup:bool ->
  ?persistent_indexes:bool ->
  ?dsd:Recstep.Interpreter.dsd_mode ->
  ?alpha:float ->
  ?query_overhead_s:float ->
  ?share_builds:bool ->
  ?timeout_vs:float ->
  ?max_recoveries:int ->
  ?reference_max_rows:int ->
  ?trace:Rs_obs.Trace.t ->
  unit ->
  options

val default_options : options

type node_stats = {
  ns_node : int;
  ns_rows : int;
  ns_bytes : int;
  ns_busy_s : float;
  ns_sim_s : float;
  ns_queries : int;
}

type result = {
  outputs : (string * Rs_relation.Relation.t) list;
  relation_of : string -> Rs_relation.Relation.t;
      (** assembles (and caches) the global content of any program relation *)
  iterations : int;
  queries : int;
  supersteps : int;
  recoveries : int;
  colocated_rules : int;
  broadcast_rules : int;
  shuffled_rules : int;
  rebalance_moves : int;
  rebalance_rows : int;
  shuffle_tuples : int;
  shuffle_bytes : int;
  shuffle_msgs : int;
  broadcast_tuples : int;
  node_stats : node_stats list;
}

val run :
  ?options:options ->
  pool:Rs_parallel.Pool.t ->
  edb:(string * Rs_relation.Relation.t) list ->
  Recstep.Ast.program ->
  result
(** Evaluates [program] to fixpoint across the simulated shards. Outputs
    are assembled eagerly in node order (deterministic given the
    partitioner). Raises {!Unsupported} on aggregate programs,
    {!Recstep.Interpreter.Timeout_simulated} on budget exhaustion, and
    re-raises shard faults once recovery attempts are spent. *)
