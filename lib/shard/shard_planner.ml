module An = Recstep.Analyzer
module Ast = Recstep.Ast
module Planner = Recstep.Planner
module Plan = Rs_exec.Plan

(* Binding-name suffixes. '@' cannot appear in source predicates, so the
   renamed bodies can never collide with a program relation. *)
let local_name p = p ^ "@l"

let bcast_name p = p ^ "@b"

let delta_local_name p = p ^ "@dl"

let delta_bcast_name p = p ^ "@db"

type source = Local | Bcast

type rclass = Colocated | Broadcast_static | Shuffled

let rclass_name = function
  | Colocated -> "colocated"
  | Broadcast_static -> "broadcast_static"
  | Shuffled -> "shuffled"

type variant = {
  v_driver : string option;
      (* the current-stratum predicate whose Δ feeds this variant; [None]
         for the delta-free base variant *)
  v_plan : Plan.t;
}

type rule_plan = {
  rp_head : string;
  rp_class : rclass;
  rp_head_local : bool;
  rp_solo : int option;  (* anchor-less rule: evaluated only on this node *)
  rp_fact : int array option;
  rp_base : variant option;
  rp_deltas : variant list;
}

type stratum_plan = {
  sp_rules : rule_plan list;
  sp_bcast_full : string list;  (* predicates read through "@b" copies *)
  sp_bcast_live : string list;  (* current-stratum subset: "@b" maintained per round *)
  sp_bcast_delta : string list;  (* current-stratum predicates read through "@db" *)
  sp_classes : (rclass * int) list;
}

(* One positive/negative occurrence with its placement-relevant shape. *)
type occ = {
  o_pred : string;
  o_strategy : Partitioner.strategy;
  o_partition_var : string option;  (* variable at the partition column, if any *)
  o_recursive : bool;  (* current-stratum predicate (Δ-rewritten) *)
  o_negated : bool;
}

let occ_of_atom part stratum ~negated (a : Ast.atom) =
  let strategy = Partitioner.strategy part a.Ast.pred in
  let pvar =
    match strategy with
    | Partitioner.Reference -> None
    | Partitioner.Hash { col } -> (
        match List.nth_opt a.Ast.args col with
        | Some (Ast.Var v) -> Some v
        | Some (Ast.Const _ | Ast.Wildcard) | None -> None)
  in
  {
    o_pred = a.Ast.pred;
    o_strategy = strategy;
    o_partition_var = pvar;
    o_recursive = (not negated) && List.mem a.Ast.pred stratum.An.preds;
    o_negated = negated;
  }

(* Placement of one occurrence under a chosen anchor variable.

   An occurrence is [Local] when its node-resident fragment is guaranteed
   complete for every valuation the node owns: reference tables (full copy
   everywhere), and hash-distributed relations whose partition column is
   bound to the anchor — the valuation's anchor value is node-owned, so
   every matching row hashes to this node. Anything else must read a
   broadcast copy. With no anchor the rule runs whole on one node, so every
   hash-distributed occurrence is a broadcast there. *)
let source_under ~anchor o =
  match o.o_strategy with
  | Partitioner.Reference -> Local
  | Partitioner.Hash _ -> (
      match (anchor, o.o_partition_var) with
      | Some a, Some v when v = a -> Local
      | _ -> Bcast)

let head_local_under part ~anchor (rule : Ast.rule) =
  match (anchor, Partitioner.strategy part rule.Ast.head_pred) with
  | Some a, Partitioner.Hash { col } -> (
      match List.nth_opt rule.Ast.head_args col with
      | Some (Ast.H_term (Ast.Var v)) -> v = a
      | _ -> false)
  | _ -> false

(* Cost of running the rule under a candidate anchor. Recurring costs
   dominate: a broadcast of a current-stratum Δ happens every fixpoint
   round, and a non-local head routes its candidates every round; a static
   broadcast copy is built once per stratum. *)
let anchor_cost part stratum rule occs anchor =
  let atom_cost =
    List.fold_left
      (fun acc o ->
        match source_under ~anchor o with
        | Local -> acc
        | Bcast -> acc + if o.o_recursive then 100 else 1)
      0 occs
  in
  let head_cost =
    if head_local_under part ~anchor rule then 0
    else if stratum.An.recursive then 50
    else 10
  in
  atom_cost + head_cost

(* Compile one body variant by renaming predicates to binding names and
   running the stock analyzer + planner on the synthetic one-rule program.
   The synthetic program is non-recursive by construction (bindings carry
   '@', heads cannot), so [compile_rule] yields a pure base plan whose
   scans are by binding name — reusable verbatim against every node's
   catalog. *)
let compile_binding (rule : Ast.rule) body =
  let renamed = { rule with Ast.body } in
  let bindings =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Ast.L_pos a | Ast.L_neg a -> Some (a.Ast.pred, List.length a.Ast.args)
           | Ast.L_cmp _ -> None)
         body)
  in
  let program =
    { Ast.rules = [ renamed ]; inputs = bindings; outputs = [ rule.Ast.head_pred ] }
  in
  let synth = An.analyze program in
  let stratum0 = List.hd synth.An.strata in
  match Planner.compile_rule synth stratum0 (List.hd stratum0.An.rules) with
  | Planner.Query { base; deltas = [] } -> base
  | Planner.Query _ -> assert false (* bindings cannot be recursive *)
  | Planner.Fact _ -> assert false (* body <> [] *)

let plan_rule an part stratum ~rule_index (rule : Ast.rule) =
  if rule.Ast.body = [] then
    (* Ground fact: extract the tuple through the stock planner. *)
    match Planner.compile_rule an stratum rule with
    | Planner.Fact t ->
        {
          rp_head = rule.Ast.head_pred;
          rp_class = Colocated;
          rp_head_local = false;
          rp_solo = None;
          rp_fact = Some t;
          rp_base = None;
          rp_deltas = [];
        }
    | Planner.Query _ -> assert false
  else begin
    let occs =
      List.filter_map
        (function
          | Ast.L_pos a -> Some (occ_of_atom part stratum ~negated:false a)
          | Ast.L_neg a -> Some (occ_of_atom part stratum ~negated:true a)
          | Ast.L_cmp _ -> None)
        rule.Ast.body
    in
    (* Anchor candidates: variables sitting at the partition column of a
       positive hash-distributed atom. Anchoring on one makes that atom's
       local fragment a complete, disjoint cover of the valuation space. *)
    let candidates =
      List.sort_uniq compare
        (List.filter_map
           (fun o ->
             if o.o_negated then None
             else
               match (o.o_strategy, o.o_partition_var) with
               | Partitioner.Hash _, Some v -> Some v
               | _ -> None)
           occs)
    in
    let anchor =
      match candidates with
      | [] -> None
      | _ ->
          Some
            (List.fold_left
               (fun best v ->
                 if
                   anchor_cost part stratum rule occs (Some v)
                   < anchor_cost part stratum rule occs (Some best)
                 then v
                 else best)
               (List.hd candidates) (List.tl candidates))
    in
    let head_local = head_local_under part ~anchor rule in
    let solo =
      match anchor with
      | Some _ -> None
      | None -> Some (rule_index mod Partitioner.shards part)
    in
    let source o = source_under ~anchor o in
    let bcast_recursive =
      List.exists (fun o -> o.o_recursive && source o = Bcast) occs
    in
    let bcast_static = List.exists (fun o -> (not o.o_recursive) && source o = Bcast) occs in
    let rp_class =
      if anchor = None then Shuffled
      else if bcast_recursive || not head_local then Shuffled
      else if bcast_static then Broadcast_static
      else Colocated
    in
    (* Rename the body per variant. The Δ-driven variant for recursive
       occurrence [i] scans that occurrence's Δ binding and full bindings
       elsewhere — the stock semi-naive rewriting, per occurrence so that
       self-joins stay disambiguated. *)
    let rename_atom ~delta_at at_index (a : Ast.atom) ~negated =
      let o = occ_of_atom part stratum ~negated a in
      let name =
        if delta_at = Some at_index then
          match source o with Local -> delta_local_name | Bcast -> delta_bcast_name
        else match source o with Local -> local_name | Bcast -> bcast_name
      in
      { a with Ast.pred = name a.Ast.pred }
    in
    let rename_body ~delta_at =
      List.mapi
        (fun i lit ->
          match lit with
          | Ast.L_pos a -> Ast.L_pos (rename_atom ~delta_at i a ~negated:false)
          | Ast.L_neg a -> Ast.L_neg (rename_atom ~delta_at i a ~negated:true)
          | Ast.L_cmp _ -> lit)
        rule.Ast.body
    in
    let recursive_positions =
      List.mapi (fun i lit -> (i, lit)) rule.Ast.body
      |> List.filter_map (fun (i, lit) ->
             match lit with
             | Ast.L_pos a when List.mem a.Ast.pred stratum.An.preds -> Some (i, a.Ast.pred)
             | _ -> None)
    in
    let base =
      (* Rules with recursive occurrences contribute nothing at iteration 0
         (their IDB inputs are empty) — same skip as the interpreter. *)
      if recursive_positions <> [] then None
      else Some { v_driver = None; v_plan = compile_binding rule (rename_body ~delta_at:None) }
    in
    let deltas =
      List.map
        (fun (i, pred) ->
          {
            v_driver = Some pred;
            v_plan = compile_binding rule (rename_body ~delta_at:(Some i));
          })
        recursive_positions
    in
    {
      rp_head = rule.Ast.head_pred;
      rp_class;
      rp_head_local = head_local;
      rp_solo = solo;
      rp_fact = None;
      rp_base = base;
      rp_deltas = deltas;
    }
  end

(* Which binding tables a compiled variant scans, recovered from the plan
   names (cheaper than re-deriving placement; Scan is by name). *)
let rec plan_scans acc (p : Plan.t) =
  match p with
  | Plan.Scan s -> s :: acc
  | Plan.Rel _ -> acc
  | Plan.Filter (_, input) | Plan.Project (_, input) -> plan_scans acc input
  | Plan.Join { l; r; _ } -> plan_scans (plan_scans acc l) r
  | Plan.AntiJoin { al; ar; _ } -> plan_scans (plan_scans acc al) ar
  | Plan.UnionAll ps -> List.fold_left plan_scans acc ps
  | Plan.Aggregate { src; _ } -> plan_scans acc src

let strip_suffix s =
  match String.rindex_opt s '@' with
  | Some i -> (String.sub s 0 i, String.sub s i (String.length s - i))
  | None -> (s, "")

let plan_stratum an part (stratum : An.stratum) =
  let rules = List.mapi (fun i r -> plan_rule an part stratum ~rule_index:i r) stratum.An.rules in
  let scans =
    List.concat_map
      (fun rp ->
        let vs = Option.to_list rp.rp_base @ rp.rp_deltas in
        List.concat_map (fun v -> plan_scans [] v.v_plan) vs)
      rules
    |> List.sort_uniq compare
  in
  let with_suffix suffix =
    List.filter_map
      (fun s ->
        let base, suf = strip_suffix s in
        if suf = suffix then Some base else None)
      scans
    |> List.sort_uniq compare
  in
  let bcast_full = with_suffix "@b" in
  let bcast_live = List.filter (fun p -> List.mem p stratum.An.preds) bcast_full in
  let bcast_delta = with_suffix "@db" in
  let classes =
    List.fold_left
      (fun acc rp ->
        let n = try List.assoc rp.rp_class acc with Not_found -> 0 in
        (rp.rp_class, n + 1) :: List.remove_assoc rp.rp_class acc)
      [] rules
  in
  {
    sp_rules = rules;
    sp_bcast_full = bcast_full;
    sp_bcast_live = bcast_live;
    sp_bcast_delta = bcast_delta;
    sp_classes = classes;
  }
