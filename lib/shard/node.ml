module Pool = Rs_parallel.Pool
module Catalog = Rs_exec.Catalog
module Executor = Rs_exec.Executor
module Relation = Rs_relation.Relation

type t = {
  id : int;
  pool : Pool.t;
  catalog : Catalog.t;
  exec : Executor.t;
  indexes : Rs_exec.Index_manager.t option;
  mutable queries : int;
}

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Local fragments and broadcast copies are append-only within a stratum,
   so their join indexes persist and delta-append across fixpoint
   iterations — the PR-3 machinery, per shard. Δ bindings ("@dl" / "@db")
   are replaced every round and stay transient. *)
let persistent_binding name = ends_with ~suffix:"@l" name || ends_with ~suffix:"@b" name

let create ~id ~workers ~query_overhead_s ~share_builds ~persistent_indexes () =
  let pool = Pool.create ~workers () in
  Pool.begin_run pool;
  let catalog = Catalog.create () in
  let indexes =
    if persistent_indexes then
      Some (Rs_exec.Index_manager.create ~persistent:persistent_binding pool)
    else None
  in
  let exec =
    Executor.create ~query_overhead_s ~share_builds ?index_manager:indexes pool catalog
  in
  { id; pool; catalog; exec; indexes; queries = 0 }

let release t =
  match t.indexes with
  | Some m -> Rs_exec.Index_manager.release_all m
  | None -> ()

let bytes t =
  List.fold_left
    (fun acc name -> acc + Relation.bytes (Catalog.rel t.catalog name))
    0 (Catalog.names t.catalog)

let rows t names =
  List.fold_left
    (fun acc name ->
      if Catalog.mem t.catalog name then acc + Relation.nrows (Catalog.rel t.catalog name)
      else acc)
    0 names

let replace_table t name rel =
  Catalog.drop t.catalog name;
  Catalog.register t.catalog name rel
