(** One simulated shard node: its own virtual-time pool, catalog, executor
    and (optional) persistent-index manager.

    Node pools run the real work; the coordinator pool absorbs each
    superstep at the slowest node's simulated cost
    ({!Rs_parallel.Pool.absorb}), so N nodes genuinely overlap on the
    simulated clock while executing sequentially in the container. *)

type t = {
  id : int;
  pool : Rs_parallel.Pool.t;
  catalog : Rs_exec.Catalog.t;
  exec : Rs_exec.Executor.t;
  indexes : Rs_exec.Index_manager.t option;
  mutable queries : int;
}

val persistent_binding : string -> bool
(** Which catalog bindings keep persistent join indexes: local fragments
    ("@l") and broadcast copies ("@b"); Δ bindings are replaced per round
    and excluded. *)

val create :
  id:int ->
  workers:int ->
  query_overhead_s:float ->
  share_builds:bool ->
  persistent_indexes:bool ->
  unit ->
  t

val release : t -> unit
(** Hand the node's managed index bytes back to the memory tracker. *)

val bytes : t -> int
(** Resident bytes of all catalog relations on this node. *)

val rows : t -> string list -> int
(** Total rows across the named catalog tables (missing names count 0). *)

val replace_table : t -> string -> Rs_relation.Relation.t -> unit
(** Drop-and-register: releases the old relation's accounting. *)
