module Relation = Rs_relation.Relation
module Int_key = Rs_util.Int_key

type strategy = Hash of { col : int } | Reference

(* Two-level routing (the Citus playbook): a row hashes to one of
   [shards * buckets_per_shard] buckets, and a mutable bucket→node map says
   which node owns it. Routing stays a pure function of the key while the
   rebalancer only has to rewrite map entries — moving a bucket never
   rehashes anything. *)
let buckets_per_shard = 8

type t = {
  shards : int;
  buckets : int;
  assign : int array;  (* bucket -> owning node *)
  strategies : (string, strategy) Hashtbl.t;
  weights : int array;  (* rows routed through each bucket, skew signal *)
  reference_max_rows : int;
}

let default_reference_max_rows = 96

let create ?(reference_max_rows = default_reference_max_rows) ~shards () =
  let shards = max 1 shards in
  let buckets = shards * buckets_per_shard in
  {
    shards;
    buckets;
    assign = Array.init buckets (fun b -> b mod shards);
    strategies = Hashtbl.create 16;
    weights = Array.make buckets 0;
    reference_max_rows;
  }

let shards t = t.shards

let buckets t = t.buckets

(* Small relations are cheaper to replicate everywhere than to ever move:
   the "reference table" strategy. Arity-0 relations have no key to hash. *)
let decide_edb t name r =
  let s =
    if Relation.arity r = 0 || Relation.nrows r <= t.reference_max_rows then Reference
    else Hash { col = 0 }
  in
  Hashtbl.replace t.strategies name s;
  s

let decide_idb t name ~arity =
  let s = if arity = 0 then Reference else Hash { col = 0 } in
  Hashtbl.replace t.strategies name s;
  s

let strategy t name =
  match Hashtbl.find_opt t.strategies name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Partitioner: no strategy for %S" name)

let bucket_of_key t k = Int_key.hash k land max_int mod t.buckets

let node_of_bucket t b = t.assign.(b)

let node_of_key t k = t.assign.(bucket_of_key t k)

let note_routed t k =
  let b = bucket_of_key t k in
  t.weights.(b) <- t.weights.(b) + 1

(* Reference rows are canonically owned by node 0 (where they are absorbed
   and deduplicated before re-replication). *)
let owner_of_row t name row =
  match strategy t name with
  | Reference -> 0
  | Hash { col } -> node_of_key t row.(col)

let weights t = Array.copy t.weights

let assignment t = Array.copy t.assign

let move_bucket t ~bucket ~node =
  if node < 0 || node >= t.shards then invalid_arg "Partitioner.move_bucket";
  t.assign.(bucket) <- node

let restore t ~assign ~weights =
  Array.blit assign 0 t.assign 0 t.buckets;
  Array.blit weights 0 t.weights 0 t.buckets

let hash_relations t =
  Hashtbl.fold
    (fun name s acc -> match s with Hash { col } -> (name, col) :: acc | Reference -> acc)
    t.strategies []
  |> List.sort compare
