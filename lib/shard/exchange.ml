module Pool = Rs_parallel.Pool

type kind = Shuffle | Broadcast | Rebalance

type t = {
  shards : int;
  edge_tuples : int array array;  (* src × dst *)
  edge_bytes : int array array;
  mutable shuffle_tuples : int;
  mutable shuffle_bytes : int;
  mutable shuffle_msgs : int;
  mutable broadcast_tuples : int;
  mutable broadcast_bytes : int;
  mutable rebalance_tuples : int;
  latency_s : float;
  s_per_byte : float;
}

(* Defaults model a 10 GbE-ish interconnect: 0.2 ms per message plus
   2 GB/s of payload bandwidth, charged to the destination node's clock. *)
let create ?(latency_s = 2e-4) ?(bytes_per_s = 2e9) ~shards () =
  {
    shards;
    edge_tuples = Array.make_matrix shards shards 0;
    edge_bytes = Array.make_matrix shards shards 0;
    shuffle_tuples = 0;
    shuffle_bytes = 0;
    shuffle_msgs = 0;
    broadcast_tuples = 0;
    broadcast_bytes = 0;
    rebalance_tuples = 0;
    latency_s;
    s_per_byte = 1.0 /. bytes_per_s;
  }

let row_bytes arity = (8 * arity) + 16

let send t ~kind ~src ~dst ~tuples ~arity ~dest_pool ~point =
  if tuples > 0 then begin
    (* Chaos fault point: this message is lost in flight. The executor
       catches the raise and re-runs the stratum from committed state. *)
    Rs_chaos.Inject.shuffle_should_drop ~point;
    let bytes = tuples * row_bytes arity in
    t.edge_tuples.(src).(dst) <- t.edge_tuples.(src).(dst) + tuples;
    t.edge_bytes.(src).(dst) <- t.edge_bytes.(src).(dst) + bytes;
    (match kind with
    | Shuffle ->
        t.shuffle_tuples <- t.shuffle_tuples + tuples;
        t.shuffle_bytes <- t.shuffle_bytes + bytes;
        t.shuffle_msgs <- t.shuffle_msgs + 1
    | Broadcast ->
        t.broadcast_tuples <- t.broadcast_tuples + tuples;
        t.broadcast_bytes <- t.broadcast_bytes + bytes
    | Rebalance -> t.rebalance_tuples <- t.rebalance_tuples + tuples);
    Pool.add_serial dest_pool (t.latency_s +. (float_of_int bytes *. t.s_per_byte))
  end

let edges t =
  let acc = ref [] in
  for src = t.shards - 1 downto 0 do
    for dst = t.shards - 1 downto 0 do
      if t.edge_tuples.(src).(dst) > 0 then
        acc := (src, dst, t.edge_tuples.(src).(dst), t.edge_bytes.(src).(dst)) :: !acc
    done
  done;
  !acc
