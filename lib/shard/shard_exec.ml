module An = Recstep.Analyzer
module Ast = Recstep.Ast
module Planner = Recstep.Planner
module Interpreter = Recstep.Interpreter
module Relation = Rs_relation.Relation
module Dedup = Rs_relation.Dedup
module Catalog = Rs_exec.Catalog
module Executor = Rs_exec.Executor
module Plan = Rs_exec.Plan
module Cost = Rs_exec.Cost
module Pool = Rs_parallel.Pool
module Trace = Rs_obs.Trace
module Inject = Rs_chaos.Inject
module Fault = Rs_chaos.Fault

exception Unsupported of string

type options = {
  shards : int;
  colocation : bool;
  rebalance : bool;
  rebalance_threshold : float;
  fast_dedup : bool;
  persistent_indexes : bool;
  dsd : Interpreter.dsd_mode;
  alpha : float;
  query_overhead_s : float;
  share_builds : bool;
  timeout_vs : float option;
  max_recoveries : int;
  reference_max_rows : int;
  trace : Trace.t option;
}

let options ?(shards = 4) ?(colocation = true) ?(rebalance = false)
    ?(rebalance_threshold = 1.5) ?(fast_dedup = true) ?(persistent_indexes = true)
    ?(dsd = Interpreter.Dsd_dynamic) ?(alpha = Cost.default_alpha)
    ?(query_overhead_s = 0.002) ?(share_builds = true) ?timeout_vs ?(max_recoveries = 3)
    ?(reference_max_rows = Partitioner.default_reference_max_rows) ?trace () =
  {
    shards = max 1 shards;
    colocation;
    rebalance;
    rebalance_threshold;
    fast_dedup;
    persistent_indexes;
    dsd;
    alpha;
    query_overhead_s;
    share_builds;
    timeout_vs;
    max_recoveries;
    reference_max_rows;
    trace;
  }

let default_options = options ()

type node_stats = {
  ns_node : int;
  ns_rows : int;
  ns_bytes : int;
  ns_busy_s : float;
  ns_sim_s : float;
  ns_queries : int;
}

type result = {
  outputs : (string * Relation.t) list;
  relation_of : string -> Relation.t;
  iterations : int;
  queries : int;
  supersteps : int;
  recoveries : int;
  colocated_rules : int;
  broadcast_rules : int;
  shuffled_rules : int;
  rebalance_moves : int;
  rebalance_rows : int;
  shuffle_tuples : int;
  shuffle_bytes : int;
  shuffle_msgs : int;
  broadcast_tuples : int;
  node_stats : node_stats list;
}

(* Extract one row of a relation into [buf]. *)
let read_row r ~row buf =
  for c = 0 to Array.length buf - 1 do
    buf.(c) <- Relation.get r ~row ~col:c
  done

let run ?(options = default_options) ~pool ~edb program =
  let an = An.analyze program in
  List.iter
    (fun n ->
      if An.agg_sig an n <> None then
        raise (Unsupported (Printf.sprintf "sharded execution: aggregate head %s" n)))
    an.An.idbs;
  let trace = options.trace in
  let n_shards = options.shards in
  let part = Partitioner.create ~reference_max_rows:options.reference_max_rows ~shards:n_shards () in
  let ex = Exchange.create ~shards:n_shards () in
  let nodes =
    Array.init n_shards (fun id ->
        Node.create ~id ~workers:(Pool.workers pool)
          ~query_overhead_s:options.query_overhead_s ~share_builds:options.share_builds
          ~persistent_indexes:options.persistent_indexes ())
  in
  Fun.protect ~finally:(fun () -> Array.iter Node.release nodes)
  @@ fun () ->
  let queries = ref 0 in
  let total_iterations = ref 0 in
  let supersteps = ref 0 in
  let recoveries = ref 0 in
  let rebalance_moves = ref 0 in
  let rebalance_rows = ref 0 in
  let classes = Hashtbl.create 4 in
  (* cumulative per-node simulated seconds, for skew detection and stats *)
  let node_sim = Array.make n_shards 0.0 in
  let node_busy = Array.make n_shards 0.0 in
  let check_timeout () =
    match options.timeout_vs with
    | Some budget ->
        let v = Pool.vtime_now pool in
        if v > budget then raise (Interpreter.Timeout_simulated v)
    | None -> ()
  in
  (* Charge one barrier of per-node work to the coordinator: every node's
     batch wall time comes off the serial account, the slowest node's
     simulated time goes on the clock (the superstep's makespan), and all
     busy time is kept for utilization. *)
  let superstep f =
    incr supersteps;
    let before = Array.map (fun nd -> Pool.consumed nd.Node.pool) nodes in
    Fun.protect
      ~finally:(fun () ->
        let real = ref 0.0 and busy = ref 0.0 and mx = ref 0.0 in
        Array.iteri
          (fun i nd ->
            let r0, s0, b0 = before.(i) in
            let r1, s1, b1 = Pool.consumed nd.Node.pool in
            real := !real +. (r1 -. r0);
            busy := !busy +. (b1 -. b0);
            node_sim.(i) <- node_sim.(i) +. (s1 -. s0);
            node_busy.(i) <- node_busy.(i) +. (b1 -. b0);
            if s1 -. s0 > !mx then mx := s1 -. s0)
          nodes;
        Pool.absorb pool ~real:!real ~sim:!mx ~busy:!busy)
      f
  in
  let issue nd plan =
    incr queries;
    nd.Node.queries <- nd.Node.queries + 1;
    Executor.run_query nd.Node.exec plan
  in
  let node_point nd what = Printf.sprintf "shard.node%d.%s" nd.Node.id what in
  (* --- placement ------------------------------------------------------- *)
  let register_fragments name r =
    match Partitioner.strategy part name with
    | Partitioner.Reference ->
        Array.iter
          (fun nd ->
            let c = Relation.copy ~name:(Shard_planner.local_name name) r in
            Relation.account c;
            Catalog.register nd.Node.catalog (Shard_planner.local_name name) c)
          nodes
    | Partitioner.Hash { col } ->
        let frags =
          Array.init n_shards (fun _ ->
              Relation.create ~name:(Shard_planner.local_name name) (Relation.arity r))
        in
        let buf = Array.make (Relation.arity r) 0 in
        for row = 0 to Relation.nrows r - 1 do
          read_row r ~row buf;
          Partitioner.note_routed part buf.(col);
          Relation.push_row frags.(Partitioner.node_of_key part buf.(col)) buf
        done;
        Array.iteri
          (fun i f ->
            Relation.account f;
            Catalog.register nodes.(i).Node.catalog (Shard_planner.local_name name) f)
          frags
  in
  List.iter
    (fun name ->
      match List.assoc_opt name edb with
      | Some r ->
          if Relation.arity r <> An.arity an name then
            raise
              (An.Analysis_error
                 (Printf.sprintf "input %s has arity %d, program expects %d" name
                    (Relation.arity r) (An.arity an name)));
          Relation.account r;
          ignore (Partitioner.decide_edb part name r);
          register_fragments name r
      | None -> raise (An.Analysis_error (Printf.sprintf "missing input relation %s" name)))
    an.An.edbs;
  List.iter
    (fun name ->
      let arity = An.arity an name in
      ignore (Partitioner.decide_idb part name ~arity);
      Array.iter
        (fun nd ->
          Catalog.register nd.Node.catalog (Shard_planner.local_name name)
            (Relation.create ~name:(Shard_planner.local_name name) arity))
        nodes)
    an.An.idbs;
  Array.iter
    (fun nd -> List.iter (Catalog.analyze_rows nd.Node.catalog) (Catalog.names nd.Node.catalog))
    nodes;
  (* Broadcast copies already built this run (static relations only). *)
  let bcast_built = Hashtbl.create 8 in
  (* Assemble the full content of a relation from its fragments (node order,
     so the result is deterministic). *)
  let assemble_global ?name rel_name =
    match Partitioner.strategy part rel_name with
    | Partitioner.Reference ->
        let c =
          Relation.copy ?name
            (Catalog.rel nodes.(0).Node.catalog (Shard_planner.local_name rel_name))
        in
        Relation.account c;
        c
    | Partitioner.Hash _ ->
        let arity = An.arity an rel_name in
        let out = Relation.create ?name arity in
        Array.iter
          (fun nd ->
            Relation.append_all out
              (Catalog.rel nd.Node.catalog (Shard_planner.local_name rel_name)))
          nodes;
        Relation.account out;
        out
  in
  let ensure_bcast rel_name =
    if not (Hashtbl.mem bcast_built rel_name) then begin
      Hashtbl.replace bcast_built rel_name ();
      let full = assemble_global ~name:(Shard_planner.bcast_name rel_name) rel_name in
      let arity = Relation.arity full in
      Array.iteri
        (fun dst nd ->
          (* every node's contribution travels to every other node *)
          Array.iter
            (fun src_nd ->
              let src = src_nd.Node.id in
              if src <> dst then
                Exchange.send ex ~kind:Exchange.Broadcast ~src ~dst
                  ~tuples:
                    (Relation.nrows
                       (Catalog.rel src_nd.Node.catalog (Shard_planner.local_name rel_name)))
                  ~arity ~dest_pool:nd.Node.pool
                  ~point:(Printf.sprintf "shard.broadcast.%s" rel_name))
            nodes;
          let c = Relation.copy ~name:(Shard_planner.bcast_name rel_name) full in
          Relation.account c;
          Node.replace_table nd (Shard_planner.bcast_name rel_name) c;
          Catalog.analyze_rows nd.Node.catalog (Shard_planner.bcast_name rel_name))
        nodes;
      Relation.release full
    end
  in
  (* Forced-shuffle cost model (--no-colocation): execution and placement
     are untouched, but rows that colocation let stay put are charged as a
     hash repartition — (N-1)/N of them cross the wire, spread evenly. *)
  let charge_repartition ~src ~tuples ~arity ~point =
    if n_shards > 1 && tuples > 0 then begin
      let share = tuples / n_shards in
      Array.iter
        (fun nd ->
          if nd.Node.id <> src then
            Exchange.send ex ~kind:Exchange.Shuffle ~src ~dst:nd.Node.id
              ~tuples:(max 1 share) ~arity ~dest_pool:nd.Node.pool ~point)
        nodes
    end
  in
  (* --- one stratum ------------------------------------------------------ *)
  let eval_stratum_once (sp : Shard_planner.stratum_plan) (stratum : An.stratum) =
    let preds = stratum.An.preds in
    let arity_of = An.arity an in
    (* register empty Δ bindings on every node *)
    let reset_delta name =
      List.iter
        (fun p ->
          let dn = name p in
          Array.iter
            (fun nd -> Node.replace_table nd dn (Relation.create ~name:dn (arity_of p)))
            nodes)
        preds
    in
    reset_delta Shard_planner.delta_local_name;
    List.iter
      (fun p ->
        let dn = Shard_planner.delta_bcast_name p in
        Array.iter
          (fun nd -> Node.replace_table nd dn (Relation.create ~name:dn (arity_of p)))
          nodes)
      sp.Shard_planner.sp_bcast_delta;
    List.iter ensure_bcast sp.Shard_planner.sp_bcast_full;
    (* per-(node, pred) DSD state *)
    let mu = Hashtbl.create 16 in
    let rules_of p =
      List.filter (fun rp -> rp.Shard_planner.rp_head = p) sp.Shard_planner.sp_rules
    in
    (* Evaluate the given variants of predicate [p] on node [nd], splitting
       plans whose heads are born local from plans whose candidates must be
       routed. Returns per-destination candidate fragments. *)
    let eval_on nd p variants =
      let local_plans, routed_plans =
        List.partition (fun (rp, _) -> rp.Shard_planner.rp_head_local)
          (List.filter
             (fun (rp, _) ->
               match rp.Shard_planner.rp_solo with
               | Some node -> node = nd.Node.id
               | None -> true)
             variants)
      in
      let arity = arity_of p in
      let inbox = Array.make n_shards None in
      let into dst =
        match inbox.(dst) with
        | Some r -> r
        | None ->
            let r = Relation.create arity in
            inbox.(dst) <- Some r;
            r
      in
      (match local_plans with
      | [] -> ()
      | plans ->
          let rt = issue nd (Plan.UnionAll (List.map (fun (_, v) -> v.Shard_planner.v_plan) plans)) in
          (* head-local: already at the owner; under --no-colocation the
             rows still count as a forced repartition *)
          if not options.colocation then
            charge_repartition ~src:nd.Node.id ~tuples:(Relation.nrows rt) ~arity
              ~point:(node_point nd "shuffle");
          let dst = into nd.Node.id in
          Relation.append_all dst rt;
          Relation.release rt);
      (match routed_plans with
      | [] -> ()
      | plans ->
          let rt = issue nd (Plan.UnionAll (List.map (fun (_, v) -> v.Shard_planner.v_plan) plans)) in
          let buf = Array.make arity 0 in
          (match Partitioner.strategy part p with
          | Partitioner.Reference ->
              let dst = into 0 in
              for row = 0 to Relation.nrows rt - 1 do
                read_row rt ~row buf;
                Relation.push_row dst buf
              done
          | Partitioner.Hash { col } ->
              for row = 0 to Relation.nrows rt - 1 do
                read_row rt ~row buf;
                Partitioner.note_routed part buf.(col);
                Relation.push_row (into (Partitioner.node_of_key part buf.(col))) buf
              done);
          Relation.release rt);
      inbox
    in
    (* Deliver inboxes: [all_inboxes.(src).(dst)] rows move src→dst. *)
    let deliver p (all_inboxes : Relation.t option array array) =
      let arity = arity_of p in
      Array.iteri
        (fun src per_dst ->
          Array.iteri
            (fun dst frag_opt ->
              match frag_opt with
              | None -> ()
              | Some frag ->
                  if dst <> src then
                    Exchange.send ex ~kind:Exchange.Shuffle ~src ~dst
                      ~tuples:(Relation.nrows frag) ~arity
                      ~dest_pool:nodes.(dst).Node.pool
                      ~point:(Printf.sprintf "shard.shuffle.%s" p))
            per_dst)
        all_inboxes
    in
    (* Absorb routed candidates at their owner: dedup, set-difference
       against the local fragment (per-shard persistent index on "@l"),
       append, publish the node's Δ as "@dl". Returns |Δ| on this node. *)
    let absorb nd p (frags : Relation.t list) =
      let arity = arity_of p in
      let frags = List.filter (fun f -> Relation.nrows f > 0) frags in
      let dn = Shard_planner.delta_local_name p in
      if frags = [] then begin
        Node.replace_table nd dn (Relation.create ~name:dn arity);
        Catalog.analyze_rows nd.Node.catalog dn;
        0
      end
      else begin
        let cand = Relation.concat_parallel nd.Node.pool arity frags in
        let expected = max 16 (Relation.nrows cand) in
        let rdelta =
          Dedup.dedup_relation_parallel ~expected ~pool:nd.Node.pool
            (if options.fast_dedup then Dedup.Fast else Dedup.Boxed)
            cand
        in
        Relation.release cand;
        let ln = Shard_planner.local_name p in
        let r = Catalog.rel nd.Node.catalog ln in
        let r_rows = Catalog.stat_rows nd.Node.catalog ln in
        let mu_key = (nd.Node.id, p) in
        let mu_prev = Option.join (Hashtbl.find_opt mu mu_key) in
        let choice =
          match options.dsd with
          | Interpreter.Dsd_force_opsd -> Cost.Opsd
          | Interpreter.Dsd_force_tpsd -> Cost.Tpsd
          | Interpreter.Dsd_dynamic ->
              Cost.choose ~alpha:options.alpha ~r_rows ~rdelta_rows:(Relation.nrows rdelta)
                ~mu_prev
        in
        let delta, intersection =
          match choice with
          | Cost.Opsd -> Executor.opsd nd.Node.exec ~name:ln ~rdelta ~r ()
          | Cost.Tpsd -> Executor.tpsd nd.Node.exec ~name:ln ~rdelta ~r ()
        in
        Hashtbl.replace mu mu_key
          (Some
             (Cost.observed_mu ~rdelta_rows:(Relation.nrows rdelta)
                ~intersection_rows:intersection));
        Relation.release rdelta;
        Relation.append_all r delta;
        Relation.account r;
        Node.replace_table nd dn delta;
        Catalog.analyze_rows nd.Node.catalog ln;
        Catalog.analyze_rows nd.Node.catalog dn;
        Relation.nrows delta
      end
    in
    (* After absorbing, propagate each predicate's Δ to its replicated
       bindings: "@db" (joins that need the full Δ everywhere), live "@b"
       copies, and — for reference-strategy IDBs — every node's "@l". *)
    let maintain_replicas p =
      let arity = arity_of p in
      let needs_db = List.mem p sp.Shard_planner.sp_bcast_delta in
      let needs_b = List.mem p sp.Shard_planner.sp_bcast_live in
      let is_reference = Partitioner.strategy part p = Partitioner.Reference in
      if needs_db || needs_b || is_reference then begin
        let global = Relation.create ~name:(Shard_planner.delta_bcast_name p) arity in
        Array.iter
          (fun src_nd ->
            let d = Catalog.rel src_nd.Node.catalog (Shard_planner.delta_local_name p) in
            let tuples = Relation.nrows d in
            Relation.append_all global d;
            if tuples > 0 then
              Array.iter
                (fun dst_nd ->
                  if dst_nd.Node.id <> src_nd.Node.id then
                    Exchange.send ex ~kind:Exchange.Broadcast ~src:src_nd.Node.id
                      ~dst:dst_nd.Node.id ~tuples ~arity ~dest_pool:dst_nd.Node.pool
                      ~point:(Printf.sprintf "shard.broadcast.%s" p))
                nodes)
          nodes;
        Array.iter
          (fun nd ->
            if needs_db then begin
              let c = Relation.copy ~name:(Shard_planner.delta_bcast_name p) global in
              Relation.account c;
              Node.replace_table nd (Shard_planner.delta_bcast_name p) c;
              Catalog.analyze_rows nd.Node.catalog (Shard_planner.delta_bcast_name p)
            end;
            if needs_b then begin
              let b = Catalog.rel nd.Node.catalog (Shard_planner.bcast_name p) in
              Relation.append_all b global;
              Relation.account b;
              Catalog.analyze_rows nd.Node.catalog (Shard_planner.bcast_name p)
            end;
            if is_reference && nd.Node.id <> 0 then begin
              let l = Catalog.rel nd.Node.catalog (Shard_planner.local_name p) in
              Relation.append_all l global;
              Relation.account l;
              Catalog.analyze_rows nd.Node.catalog (Shard_planner.local_name p)
            end)
          nodes;
        Relation.release global
      end
    in
    let note_round ~iteration deltas =
      incr total_iterations;
      (match trace with
      | Some tr -> Trace.count tr "interpreter.iterations" 1
      | None -> ());
      List.iter
        (fun (p, d) ->
          match trace with
          | Some tr ->
              Trace.iteration tr
                {
                  Trace.it_stratum = stratum.An.index;
                  it_iteration = iteration;
                  it_idb = p;
                  it_delta_rows = d;
                  it_vtime = Pool.vtime_now pool;
                }
          | None -> ())
        deltas
    in
    (* One evaluation round: eval everywhere, route, absorb at owners,
       replicate Δs. [variants_for nd p] picks this round's plans. *)
    let round ~iteration variants_for =
      check_timeout ();
      (* inboxes.(src).(dst) per pred *)
      let collected =
        superstep (fun () ->
            Array.map
              (fun nd ->
                Inject.node_should_fail ~point:(node_point nd "eval");
                List.map (fun p -> (p, eval_on nd p (variants_for nd p))) preds)
              nodes)
      in
      (* select pred p's inbox from each node, preserving node order *)
      let per_pred p =
        Array.map
          (fun per_node ->
            match List.assoc_opt p per_node with
            | Some inbox -> inbox
            | None -> Array.make n_shards None)
          collected
      in
      (* route (charged), then absorb at owners *)
      let deltas =
        superstep (fun () ->
            List.map
              (fun p ->
                let inboxes = per_pred p in
                deliver p inboxes;
                let fact_rows =
                  if iteration = 0 then
                    List.concat_map
                      (fun rp ->
                        match rp.Shard_planner.rp_fact with
                        | Some t when rp.Shard_planner.rp_head = p -> [ t ]
                        | _ -> [])
                      sp.Shard_planner.sp_rules
                  else []
                in
                let received dst =
                  let from_nodes =
                    Array.to_list inboxes
                    |> List.filter_map (fun per_dst -> per_dst.(dst))
                  in
                  let facts =
                    List.filter (fun t -> Partitioner.owner_of_row part p t = dst) fact_rows
                  in
                  if facts = [] then from_nodes
                  else begin
                    let f = Relation.create (arity_of p) in
                    List.iter (Relation.push_row f) facts;
                    f :: from_nodes
                  end
                in
                let d =
                  Array.fold_left
                    (fun acc nd ->
                      Inject.node_should_fail ~point:(node_point nd "absorb");
                      acc + absorb nd p (received nd.Node.id))
                    0 nodes
                in
                (p, d))
              preds)
      in
      superstep (fun () -> List.iter (fun (p, _) -> maintain_replicas p) deltas);
      note_round ~iteration deltas;
      deltas
    in
    (* iteration 0: facts + delta-free base variants *)
    let base_variants _nd p =
      List.concat_map
        (fun rp ->
          match rp.Shard_planner.rp_base with Some v -> [ (rp, v) ] | None -> [])
        (rules_of p)
    in
    let deltas0 = round ~iteration:0 base_variants in
    if stratum.An.recursive then begin
      let live = Hashtbl.create 8 in
      let set_live deltas =
        Hashtbl.reset live;
        List.iter (fun (p, d) -> if d > 0 then Hashtbl.replace live p ()) deltas
      in
      set_live deltas0;
      let iteration = ref 0 in
      while Hashtbl.length live > 0 do
        incr iteration;
        let delta_variants _nd p =
          List.concat_map
            (fun rp ->
              List.filter_map
                (fun v ->
                  match v.Shard_planner.v_driver with
                  | Some driver when Hashtbl.mem live driver -> Some (rp, v)
                  | _ -> None)
                rp.Shard_planner.rp_deltas)
            (rules_of p)
        in
        let deltas = round ~iteration:!iteration delta_variants in
        set_live deltas
      done
    end;
    (* later strata must see empty Δs *)
    reset_delta Shard_planner.delta_local_name;
    List.iter
      (fun p ->
        let dn = Shard_planner.delta_bcast_name p in
        Array.iter
          (fun nd ->
            if Catalog.mem nd.Node.catalog dn then
              Node.replace_table nd dn (Relation.create ~name:dn (arity_of p)))
          nodes)
      sp.Shard_planner.sp_bcast_delta
  in
  (* --- recovery-wrapped stratum driver --------------------------------- *)
  let eval_stratum (stratum : An.stratum) =
    check_timeout ();
    if options.rebalance then begin
      let moves =
        Rebalancer.plan ~shards:n_shards ~assign:(Partitioner.assignment part)
          ~weights:(Partitioner.weights part) ~busy:(Array.copy node_sim)
          ~threshold:options.rebalance_threshold
      in
      if moves <> [] then begin
        let rows = Rebalancer.apply part ex ~nodes ~moves in
        rebalance_moves := !rebalance_moves + List.length moves;
        rebalance_rows := !rebalance_rows + rows
      end
    end;
    let sp = Shard_planner.plan_stratum an part stratum in
    List.iter
      (fun (c, n) ->
        Hashtbl.replace classes c (n + Option.value ~default:0 (Hashtbl.find_opt classes c)))
      sp.Shard_planner.sp_classes;
    (* Committed-state snapshot for typed recovery, taken only when a chaos
       plan is armed (the only time a shard fault can fire). The copies are
       modeled as checkpoint storage outside the working set, so they stay
       unaccounted until a restore promotes them. *)
    if not (Inject.active ()) then eval_stratum_once sp stratum
    else begin
      let snapshot =
        Array.map
          (fun nd ->
            List.map
              (fun name -> (name, Relation.copy (Catalog.rel nd.Node.catalog name)))
              (Catalog.names nd.Node.catalog))
          nodes
      in
      let snap_assign = Partitioner.assignment part in
      let snap_weights = Partitioner.weights part in
      let snap_bcast = Hashtbl.copy bcast_built in
      let restore () =
        Partitioner.restore part ~assign:snap_assign ~weights:snap_weights;
        Hashtbl.reset bcast_built;
        Hashtbl.iter (fun k v -> Hashtbl.replace bcast_built k v) snap_bcast;
        Array.iteri
          (fun i nd ->
            List.iter (fun name -> Catalog.drop nd.Node.catalog name)
              (Catalog.names nd.Node.catalog);
            List.iter
              (fun (name, r) ->
                let c = Relation.copy ~name r in
                Relation.account c;
                Catalog.register nd.Node.catalog name c)
              snapshot.(i);
            List.iter (Catalog.analyze_rows nd.Node.catalog) (Catalog.names nd.Node.catalog))
          nodes
      in
      let rec attempt k =
        try eval_stratum_once sp stratum
        with
        | Fault.Injected { cls = (Fault.Node_loss | Fault.Shuffle_drop) as cls; point }
        ->
          if k >= options.max_recoveries then raise (Fault.Injected { cls; point })
          else begin
            incr recoveries;
            (match trace with
            | Some tr -> Trace.count tr "shard.recoveries" 1
            | None -> ());
            restore ();
            attempt (k + 1)
          end
      in
      attempt 0
    end
  in
  List.iter eval_stratum an.An.strata;
  (* --- results ---------------------------------------------------------- *)
  let assembled = Hashtbl.create 16 in
  let relation_of name =
    match Hashtbl.find_opt assembled name with
    | Some r -> r
    | None ->
        let r = assemble_global ~name name in
        Hashtbl.replace assembled name r;
        r
  in
  let output_names =
    if program.Ast.outputs = [] then an.An.idbs else program.Ast.outputs
  in
  let outputs = List.map (fun n -> (n, relation_of n)) output_names in
  let class_count c = Option.value ~default:0 (Hashtbl.find_opt classes c) in
  let node_stats =
    Array.to_list
      (Array.mapi
         (fun i nd ->
           {
             ns_node = i;
             ns_rows =
               Node.rows nd
                 (List.map Shard_planner.local_name (an.An.edbs @ an.An.idbs));
             ns_bytes = Node.bytes nd;
             ns_busy_s = node_busy.(i);
             ns_sim_s = node_sim.(i);
             ns_queries = nd.Node.queries;
           })
         nodes)
  in
  (match trace with
  | Some tr ->
      Trace.count tr "shard.shards" n_shards;
      Trace.count tr "shard.supersteps" !supersteps;
      Trace.count tr "shard.colocated_rules" (class_count Shard_planner.Colocated);
      Trace.count tr "shard.broadcast_rules" (class_count Shard_planner.Broadcast_static);
      Trace.count tr "shard.shuffled_rules" (class_count Shard_planner.Shuffled);
      Trace.count tr "shard.shuffle_tuples" ex.Exchange.shuffle_tuples;
      Trace.count tr "shard.shuffle_bytes" ex.Exchange.shuffle_bytes;
      Trace.count tr "shard.shuffle_msgs" ex.Exchange.shuffle_msgs;
      Trace.count tr "shard.broadcast_tuples" ex.Exchange.broadcast_tuples;
      Trace.count tr "shard.rebalance_moves" !rebalance_moves;
      Trace.count tr "shard.rebalance_rows" !rebalance_rows
  | None -> ());
  {
    outputs;
    relation_of;
    iterations = !total_iterations;
    queries = !queries;
    supersteps = !supersteps;
    recoveries = !recoveries;
    colocated_rules = class_count Shard_planner.Colocated;
    broadcast_rules = class_count Shard_planner.Broadcast_static;
    shuffled_rules = class_count Shard_planner.Shuffled;
    rebalance_moves = !rebalance_moves;
    rebalance_rows = !rebalance_rows;
    shuffle_tuples = ex.Exchange.shuffle_tuples;
    shuffle_bytes = ex.Exchange.shuffle_bytes;
    shuffle_msgs = ex.Exchange.shuffle_msgs;
    broadcast_tuples = ex.Exchange.broadcast_tuples;
    node_stats;
  }
