(** Typed repartition exchange between shard nodes.

    Every cross-node movement of tuples goes through {!send}: shuffles
    (candidate rows routed to their owners), broadcasts (Δ replication for
    joins that could not be colocated, and reference-style full copies) and
    rebalancer migrations. Each message charges the {e destination} node's
    virtual clock with a latency + bandwidth cost and maintains per-edge
    (src, dst) tuple/byte counters — the communication the paper's
    distributed baselines pay and a colocated plan avoids.

    Fault point: every message probes {!Rs_chaos.Inject.shuffle_should_drop}
    before being counted, so a {!Rs_chaos.Fault.Shuffle_drop} plan loses a
    message before any of its effects land. *)

type kind = Shuffle | Broadcast | Rebalance

type t = {
  shards : int;
  edge_tuples : int array array;
  edge_bytes : int array array;
  mutable shuffle_tuples : int;
  mutable shuffle_bytes : int;
  mutable shuffle_msgs : int;
  mutable broadcast_tuples : int;
  mutable broadcast_bytes : int;
  mutable rebalance_tuples : int;
  latency_s : float;
  s_per_byte : float;
}

val create : ?latency_s:float -> ?bytes_per_s:float -> shards:int -> unit -> t

val row_bytes : int -> int
(** Modeled wire size of one row of the given arity. *)

val send :
  t ->
  kind:kind ->
  src:int ->
  dst:int ->
  tuples:int ->
  arity:int ->
  dest_pool:Rs_parallel.Pool.t ->
  point:string ->
  unit
(** Charge one message carrying [tuples] rows. No-op when [tuples = 0]. *)

val edges : t -> (int * int * int * int) list
(** Non-empty [(src, dst, tuples, bytes)] edges in row-major order. *)
