(** Registry of all engines under comparison. *)

let recstep : Engine_intf.engine = (module Recstep_engine)
let souffle_like : Engine_intf.engine = (module Souffle_like)
let bigdatalog_like : Engine_intf.engine = (module Bigdatalog_like)
let distributed_bigdatalog = Bigdatalog_like.distributed
let graspan_like : Engine_intf.engine = (module Graspan_like)
let bddbddb_like : Engine_intf.engine = (module Bddbddb_like)
let sharded_recstep : Engine_intf.engine = (module Sharded_recstep)

let all =
  [
    recstep;
    sharded_recstep;
    souffle_like;
    bigdatalog_like;
    distributed_bigdatalog;
    graspan_like;
    bddbddb_like;
  ]

let name (module E : Engine_intf.S) = E.name

let by_name n =
  List.find_opt (fun (module E : Engine_intf.S) -> E.name = n) all
