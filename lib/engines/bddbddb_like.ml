module Relation = Rs_relation.Relation
module Pool = Rs_parallel.Pool
module An = Recstep.Analyzer
module Ast = Recstep.Ast
module Bdd = Rs_bdd.Bdd
module Bdd_rel = Rs_bdd.Bdd_rel

let name = "bddbddb-like"

let capabilities =
  {
    Engine_intf.scale_up = false;
    scale_out = false;
    memory_consumption = "low";
    cpu_utilization = "poor";
    cpu_efficiency = "-";
    tuning_required = "yes (complex)";
    mutual_recursion = true;
    nonrecursive_aggregation = false;
    recursive_aggregation = false;
    incremental = false;
  }

let unsupported = Engine_intf.unsupported

(* Equality constraint between two domains: AND over bit equivalences. *)
let eq_domains sp d1 d2 =
  let m = sp.Bdd_rel.mgr in
  let acc = ref Bdd.btrue in
  for i = 0 to sp.Bdd_rel.bits - 1 do
    let a = Bdd.var m ((d1 * sp.Bdd_rel.bits) + i) in
    let b = Bdd.var m ((d2 * sp.Bdd_rel.bits) + i) in
    let iff = Bdd.ite m a b (Bdd.ite m b Bdd.bfalse Bdd.btrue) in
    acc := Bdd.mk_and m !acc iff
  done;
  !acc

(* Rule variables get domains by first occurrence across the body. *)
let rule_var_domains rule =
  let doms = ref [] in
  let note v = if not (List.mem_assoc v !doms) then doms := !doms @ [ (v, List.length !doms) ] in
  List.iter (fun l -> List.iter note (Ast.literal_vars l)) rule.Ast.body;
  List.iter (fun ht -> List.iter note (Ast.head_term_vars ht)) rule.Ast.head_args;
  !doms

let run ~pool ?deadline_vs ?trace ~edb program =
  let an = An.analyze program in
  if an.An.agg_sigs <> [] then unsupported "%s: aggregation" name;
  let iterations = ref 0 in
  let rule_evals = ref 0 in
  List.iter
    (fun (p, arity) -> if arity > 2 then unsupported "%s: relation %s has arity %d" name p arity)
    an.An.arities;
  List.iter
    (fun r ->
      List.iter
        (function
          | Ast.L_neg _ -> unsupported "%s: negation" name
          | Ast.L_cmp ((Ast.Eq | Ast.Ne), Ast.T (Ast.Var _), Ast.T (Ast.Var _)) -> ()
          | Ast.L_cmp _ -> unsupported "%s: arithmetic comparison" name
          | Ast.L_pos a ->
              let vars = Ast.atom_vars a in
              if List.length (List.sort_uniq compare vars) <> List.length vars then
                unsupported "%s: repeated variable inside a body atom" name)
        r.Ast.body)
    an.An.program.Ast.rules;
  (* Bit width from the active domain: EDB values plus every constant in the
     program text (a rule constant wider than the EDB would otherwise be
     silently truncated to [bits] and alias a small value). *)
  let maxv = ref 1 in
  List.iter
    (fun (p, r) ->
      for row = 0 to Relation.nrows r - 1 do
        for c = 0 to Relation.arity r - 1 do
          let v = Relation.get r ~row ~col:c in
          if v < 0 then unsupported "%s: negative attribute in %s" name p;
          if v > !maxv then maxv := v
        done
      done)
    edb;
  let note_term = function
    | Ast.Const c ->
        if c < 0 then unsupported "%s: negative constant" name;
        if c > !maxv then maxv := c
    | _ -> ()
  in
  List.iter
    (fun r ->
      List.iter (function Ast.H_term t -> note_term t | Ast.H_agg _ -> ()) r.Ast.head_args;
      List.iter
        (function
          | Ast.L_pos a | Ast.L_neg a -> List.iter note_term a.Ast.args
          | Ast.L_cmp _ -> ())
        r.Ast.body)
    an.An.program.Ast.rules;
  let bits =
    let rec go b = if 1 lsl b > !maxv then b else go (b + 1) in
    go 1
  in
  let ndomains =
    List.fold_left
      (fun acc r -> max acc (List.length (rule_var_domains r)))
      2 an.An.program.Ast.rules
  in
  let sp = Bdd_rel.make_space ~bits ~ndomains:(max 2 ndomains) in
  (* The engine is serial, so simulated time ≈ wall time; arm the manager's
     wall deadline so an exploding BDD operation can be interrupted. *)
  (match deadline_vs with
  | Some budget ->
      let remaining = budget -. Pool.vtime_now pool in
      Bdd.set_deadline sp.Bdd_rel.mgr (Some (Rs_util.Clock.now () +. max 0.01 remaining))
  | None -> ());
  let check_deadline () =
    match deadline_vs with
    | Some budget ->
        let v = Pool.vtime_now pool in
        if v > budget then raise (Recstep.Interpreter.Timeout_simulated v)
    | None -> ()
  in
  (* canonical BDDs per predicate *)
  let full : (string, Bdd.node ref) Hashtbl.t = Hashtbl.create 32 in
  let delta : (string, Bdd.node ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (p, _) ->
      Hashtbl.replace full p (ref Bdd.bfalse);
      Hashtbl.replace delta p (ref Bdd.bfalse))
    an.An.arities;
  List.iter
    (fun p ->
      match List.assoc_opt p edb with
      | Some r -> (Hashtbl.find full p) := Bdd_rel.of_relation sp r
      | None -> unsupported "%s: missing input %s" name p)
    an.An.edbs;
  (* Evaluate one rule with atom [delta_at] (if >= 0) read from Δ. *)
  let eval_rule stratum rule ~delta_at =
    let var_dom = rule_var_domains rule in
    let dom v = List.assoc v var_dom in
    let occurrence = ref (-1) in
    let conj = ref Bdd.btrue in
    List.iter
      (function
        | Ast.L_pos a ->
            let recursive = List.mem a.Ast.pred stratum.An.preds in
            let source =
              if recursive then begin
                incr occurrence;
                if !occurrence = delta_at then !(Hashtbl.find delta a.Ast.pred)
                else !(Hashtbl.find full a.Ast.pred)
              end
              else !(Hashtbl.find full a.Ast.pred)
            in
            (* move each positional domain to the variable's domain; const
               arguments become cubes *)
            let from_domains = ref [] and to_domains = ref [] in
            let consts = ref [] in
            List.iteri
              (fun pos t ->
                match t with
                | Ast.Var v ->
                    from_domains := pos :: !from_domains;
                    to_domains := dom v :: !to_domains
                | Ast.Const c -> consts := (pos, c) :: !consts
                | Ast.Wildcard -> assert false)
              a.Ast.args;
            (* constant positions: constrain and forget them BEFORE the move,
               so the single simultaneous rename below stays injective *)
            let constrained =
              List.fold_left
                (fun acc (pos, c) ->
                  let cube = Bdd_rel.tuple_bdd sp [| pos |] [| c |] in
                  Bdd_rel.exists_domains sp [ pos ]
                    (Bdd.mk_and sp.Bdd_rel.mgr acc cube))
                source !consts
            in
            let moved =
              Bdd_rel.rename sp
                ~from_domains:(Array.of_list (List.rev !from_domains))
                ~to_domains:(Array.of_list (List.rev !to_domains))
                constrained
            in
            conj := Bdd.mk_and sp.Bdd_rel.mgr !conj moved
        | Ast.L_cmp (op, Ast.T (Ast.Var v1), Ast.T (Ast.Var v2)) ->
            let eq = eq_domains sp (dom v1) (dom v2) in
            conj :=
              (match op with
              | Ast.Eq -> Bdd.mk_and sp.Bdd_rel.mgr !conj eq
              | Ast.Ne -> Bdd.mk_diff sp.Bdd_rel.mgr !conj eq
              | _ -> assert false)
        | Ast.L_cmp _ | Ast.L_neg _ -> assert false)
      rule.Ast.body;
    (* project to head: quantify away non-head domains, then rename *)
    let head_terms =
      List.map
        (function
          | Ast.H_term t -> t
          | Ast.H_agg _ -> assert false)
        rule.Ast.head_args
    in
    let head_vars =
      List.filter_map (function Ast.Var v -> Some v | _ -> None) head_terms
      |> List.sort_uniq compare
    in
    let keep = List.map dom head_vars in
    let drop =
      List.filter_map (fun (_, d) -> if List.mem d keep then None else Some d) var_dom
    in
    let projected = Bdd_rel.exists_domains sp drop !conj in
    (* Move every head variable's domain to its canonical position in ONE
       simultaneous rename (per-variable sequential renames could collide
       when a target position is another variable's source domain), then
       pin duplicated head variables and constants. *)
    let assigned : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let moves = ref [] and dups = ref [] and consts = ref [] in
    List.iteri
      (fun pos t ->
        match t with
        | Ast.Var v -> (
            match Hashtbl.find_opt assigned v with
            | None ->
                Hashtbl.replace assigned v pos;
                if dom v <> pos then moves := (dom v, pos) :: !moves
            | Some first_pos -> dups := (first_pos, pos) :: !dups)
        | Ast.Const c -> consts := (pos, c) :: !consts
        | Ast.Wildcard -> assert false)
      head_terms;
    let canonical =
      ref
        (Bdd_rel.rename sp
           ~from_domains:(Array.of_list (List.map fst !moves))
           ~to_domains:(Array.of_list (List.map snd !moves))
           projected)
    in
    List.iter
      (fun (first_pos, pos) ->
        canonical := Bdd.mk_and sp.Bdd_rel.mgr !canonical (eq_domains sp first_pos pos))
      !dups;
    List.iter
      (fun (pos, c) ->
        canonical :=
          Bdd.mk_and sp.Bdd_rel.mgr !canonical (Bdd_rel.tuple_bdd sp [| pos |] [| c |]))
      !consts;
    !canonical
  in
  (* collision hazard: a head variable's body domain may equal another head
     position's target; [rule_var_domains] assigns by first occurrence so the
     common rules are safe, and the equality path handles duplicates. *)
  let facts stratum =
    List.filter_map
      (fun r ->
        if r.Ast.body = [] && List.mem r.Ast.head_pred stratum.An.preds then
          Some
            ( r.Ast.head_pred,
              Array.of_list
                (List.map
                   (function Ast.H_term (Ast.Const c) -> c | _ -> unsupported "%s: non-ground fact" name)
                   r.Ast.head_args) )
        else None)
      an.An.program.Ast.rules
  in
  let eval_stratum stratum =
      check_deadline ();
      incr iterations;
      let m = sp.Bdd_rel.mgr in
      let rules = List.filter (fun r -> r.Ast.body <> []) stratum.An.rules in
      let rec_occurrences rule =
        List.fold_left
          (fun acc l ->
            match l with
            | Ast.L_pos a when List.mem a.Ast.pred stratum.An.preds -> acc + 1
            | _ -> acc)
          0 rule.Ast.body
      in
      (* iteration 0: facts plus delta-free rules *)
      List.iter
        (fun (p, tuple) ->
          let f = Hashtbl.find full p in
          f := Bdd.mk_or m !f (Bdd_rel.tuple_bdd sp (Array.init (Array.length tuple) (fun i -> i)) tuple))
        (facts stratum);
      List.iter
        (fun rule ->
          if rec_occurrences rule = 0 then begin
            let f = Hashtbl.find full rule.Ast.head_pred in
            incr rule_evals;
            f := Bdd.mk_or m !f (eval_rule stratum rule ~delta_at:(-1))
          end)
        rules;
      List.iter (fun p -> Hashtbl.find delta p := !(Hashtbl.find full p)) stratum.An.preds;
      if stratum.An.recursive then begin
        let continue_ = ref true in
        while !continue_ do
          check_deadline ();
          incr iterations;
          let news =
            List.map
              (fun p ->
                let acc = ref Bdd.bfalse in
                List.iter
                  (fun rule ->
                    if rule.Ast.head_pred = p then
                      for i = 0 to rec_occurrences rule - 1 do
                        incr rule_evals;
                        acc := Bdd.mk_or m !acc (eval_rule stratum rule ~delta_at:i)
                      done)
                  rules;
                (p, !acc))
              stratum.An.preds
          in
          let any = ref false in
          List.iter
            (fun (p, new_bdd) ->
              let f = Hashtbl.find full p and d = Hashtbl.find delta p in
              let fresh = Bdd.mk_diff m new_bdd !f in
              d := fresh;
              if fresh <> Bdd.bfalse then begin
                any := true;
                f := Bdd.mk_or m !f fresh
              end)
            news;
          continue_ := !any
        done
      end;
      List.iter (fun p -> Hashtbl.find delta p := Bdd.bfalse) stratum.An.preds
  in
  let eval_stratum stratum =
    match trace with
    | Some tr ->
        Rs_obs.Trace.span tr ~kind:"engine"
          (Printf.sprintf "stratum-%d" stratum.An.index)
          (fun () -> eval_stratum stratum)
    | None -> eval_stratum stratum
  in
  (try List.iter eval_stratum an.An.strata
   with Bdd.Deadline_exceeded ->
     raise (Recstep.Interpreter.Timeout_simulated (Pool.vtime_now pool)));
  let relation_of p =
    match Hashtbl.find_opt full p with
    | Some f -> Bdd_rel.to_relation sp ~arity:(An.arity an p) ~name:p !f
    | None -> invalid_arg (Printf.sprintf "%s: unknown relation %s" name p)
  in
  Engine_intf.mk_result ~pool ?trace ~iterations:!iterations ~queries:!rule_evals relation_of

let maintain ~pool ?trace ~edb program =
  Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program
