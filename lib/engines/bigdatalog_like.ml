module An = Recstep.Analyzer
module Interpreter = Recstep.Interpreter
module Pool = Rs_parallel.Pool

let name = "BigDatalog-like"

let capabilities =
  {
    Engine_intf.scale_up = true;
    scale_out = true;
    memory_consumption = "high";
    cpu_utilization = "high";
    cpu_efficiency = "medium";
    tuning_required = "yes (moderate)";
    mutual_recursion = false;
    nonrecursive_aggregation = true;
    recursive_aggregation = true;
    incremental = false;
  }

(* Spark-style configuration of the shared evaluation machinery:
   - one job per rule (no unified evaluation), fixed plans (no re-optimize),
   - a scheduling overhead per issued stage,
   - set-difference as a plain subtract stage (OPSD),
   - cached per-iteration shuffle outputs (hoarded memory). *)
let stage_overhead_s = 0.008

let gate program =
  let an = An.analyze program in
  List.iter
    (fun s ->
      if s.An.recursive && List.length s.An.preds > 1 then
        Engine_intf.unsupported "%s: mutual recursion across %s" name
          (String.concat ", " s.An.preds))
    an.An.strata;
  an

let options_for ?(query_overhead_s = stage_overhead_s) ?timeout_vs ?trace () =
  (* no persistent indexes: an RDD-lineage system re-materializes each
     iteration's datasets, so build-side tables are re-indexed per stage *)
  Interpreter.options ~uie:false ~oof:Interpreter.Oof_off ~dsd:Interpreter.Dsd_force_opsd
    ~fast_dedup:true ~pbme:false ~persistent_indexes:false ~query_overhead_s
    ~hoard_memory:true ?timeout_vs ?trace ()

let interpret ~options ~pool ?trace ~edb program =
  let result = Interpreter.run ~options ~pool ~edb program in
  Engine_intf.mk_result ~pool ?trace ~iterations:result.Interpreter.iterations
    ~queries:result.Interpreter.queries result.Interpreter.relation_of

let run ~pool ?deadline_vs ?trace ~edb program =
  ignore (gate program);
  let options = options_for ?timeout_vs:deadline_vs ?trace () in
  interpret ~options ~pool ?trace ~edb program

let maintain ~pool ?trace ~edb program =
  Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program

module Distributed = struct
  let name = "Distributed-BigDatalog"

  let capabilities = { capabilities with scale_out = true }

  (* The paper's reference cluster: 15 workers, 120 cores, 450 GB — ~6x the
     cores of the single node. Per-stage scheduling overhead is higher on a
     real cluster. *)
  let run ~pool ?deadline_vs ?trace ~edb program =
    ignore (gate program);
    let w0 = Pool.workers pool in
    Pool.set_workers pool (6 * w0);
    Fun.protect
      ~finally:(fun () -> Pool.set_workers pool w0)
      (fun () ->
        let options =
          options_for ~query_overhead_s:(2.0 *. stage_overhead_s) ?timeout_vs:deadline_vs ?trace ()
        in
        interpret ~options ~pool ?trace ~edb program)

  let maintain ~pool ?trace ~edb program =
    Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program
end

let distributed : Engine_intf.engine = (module Distributed)
