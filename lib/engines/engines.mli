(** Registry of all engines under comparison (paper §6.1). *)

val recstep : Engine_intf.engine
(** The paper's system (the interpreter behind the common interface). *)

val souffle_like : Engine_intf.engine

val bigdatalog_like : Engine_intf.engine

val distributed_bigdatalog : Engine_intf.engine
(** The paper's 120-core / 450 GB reference cluster configuration. *)

val graspan_like : Engine_intf.engine

val bddbddb_like : Engine_intf.engine

val sharded_recstep : Engine_intf.engine
(** RecStep over four simulated shard nodes ({!Rs_shard.Shard_exec}):
    scale-out with real movement costs, no aggregates. *)

val all : Engine_intf.engine list
(** All seven, RecStep first. *)

val name : Engine_intf.engine -> string

val by_name : string -> Engine_intf.engine option
