module Relation = Rs_relation.Relation
module Dedup = Rs_relation.Dedup
module Pool = Rs_parallel.Pool
module An = Recstep.Analyzer
module Ast = Recstep.Ast

let name = "Souffle-like"

let capabilities =
  {
    Engine_intf.scale_up = true;
    scale_out = false;
    memory_consumption = "medium";
    cpu_utilization = "medium";
    cpu_efficiency = "high";
    tuning_required = "no";
    mutual_recursion = true;
    nonrecursive_aggregation = true;
    recursive_aggregation = false;
    incremental = false;
  }

(* --- storage: one store per predicate, with incremental indices --- *)

type pred_store = {
  arity : int;
  store : Relation.t;
  dedup : Dedup.t;
  mutable indexes : (int list * Inc_index.t) list;
  mutable delta_lo : int;
  mutable delta_hi : int;  (* rows [delta_lo, delta_hi) are the current Δ *)
}

let make_store name arity =
  {
    arity;
    store = Relation.create ~name arity;
    dedup = Dedup.create Dedup.Fast arity;
    indexes = [];
    delta_lo = 0;
    delta_hi = 0;
  }

let insert ps row =
  if Dedup.add_row ps.dedup row then begin
    let r = Relation.nrows ps.store in
    Relation.push_row ps.store row;
    List.iter (fun (_, idx) -> Inc_index.add idx ps.store r) ps.indexes;
    true
  end
  else false

let ensure_index ps positions =
  let key = List.sort compare positions in
  match List.assoc_opt key ps.indexes with
  | Some idx -> idx
  | None ->
      let idx = Inc_index.create (Array.of_list key) in
      for row = 0 to Relation.nrows ps.store - 1 do
        Inc_index.add idx ps.store row
      done;
      ps.indexes <- (key, idx) :: ps.indexes;
      idx

let account ps =
  Relation.account ps.store;
  Dedup.account ps.dedup;
  List.iter (fun (_, idx) -> Inc_index.account idx) ps.indexes

(* --- rule compilation: probe programs over registers --- *)

type src = Reg of int | Lit of int

type access = {
  a_pred : string;
  a_index : Inc_index.t option;  (* None = full scan *)
  a_key_sources : src array;  (* parallel to the index's key columns *)
  a_binds : (int * int) array;  (* (column, register) to bind *)
  a_checks : (int * src) array;  (* residual per-row equality checks *)
}

type step =
  | Probe of access
  | NegCheck of { n_pred : string; n_row : src array }
  | Test of (int array -> bool)

type variant = {
  v_driver_pred : string;
  v_driver_delta : bool;
  v_driver_binds : (int * int) array;
  v_driver_checks : (int * src) array;
  v_steps : step list;
  v_emit : (int array -> int) array;  (* head value closures over registers *)
  v_head : string;
}

let compile_expr regs_of e =
  let rec go = function
    | Ast.T (Ast.Var v) ->
        let r = regs_of v in
        fun regs -> regs.(r)
    | Ast.T (Ast.Const c) -> fun _ -> c
    | Ast.T Ast.Wildcard -> assert false
    | Ast.Add (a, b) ->
        let fa = go a and fb = go b in
        fun regs -> fa regs + fb regs
    | Ast.Sub (a, b) ->
        let fa = go a and fb = go b in
        fun regs -> fa regs - fb regs
    | Ast.Mul (a, b) ->
        let fa = go a and fb = go b in
        fun regs -> fa regs * fb regs
  in
  go e

let compile_cmp regs_of (op, a, b) =
  let fa = compile_expr regs_of a and fb = compile_expr regs_of b in
  let test =
    match op with
    | Ast.Eq -> ( = )
    | Ast.Ne -> ( <> )
    | Ast.Lt -> ( < )
    | Ast.Le -> ( <= )
    | Ast.Gt -> ( > )
    | Ast.Ge -> ( >= )
  in
  fun regs -> test (fa regs) (fb regs)

(* Compile one semi-naive variant of a rule. [driver] is the index of the
   positive atom iterated wholesale (over Δ when [driver_delta]). *)
let compile_variant stores regs_of nregs rule ~driver ~driver_delta =
  ignore nregs;
  let positives =
    List.filter_map (function Ast.L_pos a -> Some a | _ -> None) rule.Ast.body
  in
  let cmps = List.filter_map (function Ast.L_cmp (o, a, b) -> Some (o, a, b) | _ -> None) rule.Ast.body in
  let negs = List.filter_map (function Ast.L_neg a -> Some a | _ -> None) rule.Ast.body in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let atom_access a ~as_driver =
    (* classify each argument against the currently bound variables *)
    let key_positions = ref [] and key_sources = ref [] in
    let binds = ref [] and checks = ref [] in
    let seen_here : (string, int) Hashtbl.t = Hashtbl.create 4 in
    List.iteri
      (fun pos t ->
        match t with
        | Ast.Const c ->
            if as_driver then checks := (pos, Lit c) :: !checks
            else begin
              key_positions := pos :: !key_positions;
              key_sources := (pos, Lit c) :: !key_sources
            end
        | Ast.Var v -> (
            match Hashtbl.find_opt seen_here v with
            | Some r -> checks := (pos, Reg r) :: !checks
            | None ->
                if Hashtbl.mem bound v then begin
                  let r = regs_of v in
                  if as_driver then checks := (pos, Reg r) :: !checks
                  else begin
                    key_positions := pos :: !key_positions;
                    key_sources := (pos, Reg r) :: !key_sources
                  end;
                  Hashtbl.replace seen_here v r
                end
                else begin
                  let r = regs_of v in
                  binds := (pos, r) :: !binds;
                  Hashtbl.replace seen_here v r
                end)
        | Ast.Wildcard -> assert false)
      a.Ast.args;
    (* commit bindings *)
    Hashtbl.iter (fun v _ -> Hashtbl.replace bound v ()) seen_here;
    let key = List.sort compare !key_positions in
    let sources =
      Array.of_list (List.map (fun p -> List.assoc p !key_sources) key)
    in
    ( key,
      sources,
      Array.of_list (List.rev !binds),
      Array.of_list (List.rev !checks) )
  in
  (* driver atom first *)
  let driver_atom = List.nth positives driver in
  let _, _, dbinds, dchecks = atom_access driver_atom ~as_driver:true in
  (* schedule remaining atoms greedily: most bound arguments first *)
  let remaining = ref (List.filteri (fun i _ -> i <> driver) positives) in
  let steps = ref [] in
  let pending_cmps = ref (List.map (fun c -> (c, Ast.expr_vars (let (_, a, b) = c in Ast.Add (a, b)))) cmps) in
  let flush_cmps () =
    let ready, waiting =
      List.partition (fun (_, vars) -> List.for_all (Hashtbl.mem bound) vars) !pending_cmps
    in
    pending_cmps := waiting;
    List.iter (fun (c, _) -> steps := Test (compile_cmp regs_of c) :: !steps) ready
  in
  flush_cmps ();
  while !remaining <> [] do
    let score a =
      List.fold_left
        (fun acc t ->
          match t with
          | Ast.Const _ -> acc + 1
          | Ast.Var v -> if Hashtbl.mem bound v then acc + 1 else acc
          | Ast.Wildcard -> acc)
        0 a.Ast.args
    in
    let best =
      List.fold_left
        (fun acc a -> match acc with None -> Some a | Some b -> if score a > score b then Some a else acc)
        None !remaining
    in
    let a = Option.get best in
    remaining := List.filter (fun x -> x != a) !remaining;
    let key, sources, binds, checks = atom_access a ~as_driver:false in
    let idx =
      if key = [] then None
      else Some (ensure_index (Hashtbl.find stores a.Ast.pred) key)
    in
    steps :=
      Probe { a_pred = a.Ast.pred; a_index = idx; a_key_sources = sources; a_binds = binds; a_checks = checks }
      :: !steps;
    flush_cmps ()
  done;
  (* negations last (safety guarantees their variables are bound) *)
  List.iter
    (fun a ->
      let row =
        Array.of_list
          (List.map
             (function
               | Ast.Const c -> Lit c
               | Ast.Var v -> Reg (regs_of v)
               | Ast.Wildcard -> assert false)
             a.Ast.args)
      in
      steps := NegCheck { n_pred = a.Ast.pred; n_row = row } :: !steps)
    negs;
  let emit =
    Array.of_list
      (List.map
         (function
           | Ast.H_term (Ast.Var v) ->
               let r = regs_of v in
               fun (regs : int array) -> regs.(r)
           | Ast.H_term (Ast.Const c) -> fun _ -> c
           | Ast.H_term Ast.Wildcard -> assert false
           | Ast.H_agg (_, e) -> compile_expr regs_of e)
         rule.Ast.head_args)
  in
  {
    v_driver_pred = driver_atom.Ast.pred;
    v_driver_delta = driver_delta;
    v_driver_binds = dbinds;
    v_driver_checks = dchecks;
    v_steps = List.rev !steps;
    v_emit = emit;
    v_head = rule.Ast.head_pred;
  }

let compile_rule stores stratum rule =
  let vars =
    List.sort_uniq compare
      (List.concat_map Ast.literal_vars rule.Ast.body
      @ List.concat_map Ast.head_term_vars rule.Ast.head_args)
  in
  let reg_of_var = List.mapi (fun i v -> (v, i)) vars in
  let regs_of v = List.assoc v reg_of_var in
  let nregs = List.length vars in
  let positives = List.filter_map (function Ast.L_pos a -> Some a | _ -> None) rule.Ast.body in
  let recursive_positions =
    List.filteri (fun _ _ -> true) positives
    |> List.mapi (fun i a -> (i, a))
    |> List.filter_map (fun (i, a) ->
           if List.mem a.Ast.pred stratum.An.preds then Some i else None)
  in
  let base = compile_variant stores regs_of nregs rule ~driver:0 ~driver_delta:false in
  let deltas =
    List.map
      (fun i -> compile_variant stores regs_of nregs rule ~driver:i ~driver_delta:true)
      recursive_positions
  in
  (nregs, base, deltas)

(* --- execution --- *)

let run_variant pool stores nregs variant ~out =
  let ps = Hashtbl.find stores variant.v_driver_pred in
  let lo, hi =
    if variant.v_driver_delta then (ps.delta_lo, ps.delta_hi) else (0, Relation.nrows ps.store)
  in
  if hi > lo then begin
    let fragments = ref [] in
    Pool.parallel_for pool lo hi (fun clo chi ->
        let frag = Relation.create (Array.length variant.v_emit) in
        let regs = Array.make (max nregs 1) 0 in
        let value = function Reg r -> regs.(r) | Lit c -> c in
        let rec exec steps =
          match steps with
          | [] ->
              let row = Array.map (fun f -> f regs) variant.v_emit in
              Relation.push_row frag row
          | Test f :: rest -> if f regs then exec rest
          | NegCheck { n_pred; n_row } :: rest ->
              let nps = Hashtbl.find stores n_pred in
              if not (Dedup.mem_row nps.dedup (Array.map value n_row)) then exec rest
          | Probe a :: rest -> (
              let aps = Hashtbl.find stores a.a_pred in
              let try_row row =
                (* bind before checking: a repeated variable inside this atom
                   produces a check against a register this same row binds *)
                Array.iter (fun (pos, r) -> regs.(r) <- Relation.get aps.store ~row ~col:pos) a.a_binds;
                let ok = ref true in
                Array.iter
                  (fun (pos, src) ->
                    if Relation.get aps.store ~row ~col:pos <> value src then ok := false)
                  a.a_checks;
                if !ok then exec rest
              in
              match a.a_index with
              | Some idx ->
                  let key = Array.map value a.a_key_sources in
                  Inc_index.iter_matches idx aps.store key try_row
              | None ->
                  for row = 0 to Relation.nrows aps.store - 1 do
                    try_row row
                  done)
        in
        for drow = clo to chi - 1 do
          (* bind before checking, as in try_row: a repeated variable in the
             driver atom checks a register bound from this same row *)
          Array.iter
            (fun (pos, r) -> regs.(r) <- Relation.get ps.store ~row:drow ~col:pos)
            variant.v_driver_binds;
          let ok = ref true in
          Array.iter
            (fun (pos, src) ->
              if Relation.get ps.store ~row:drow ~col:pos <> value src then ok := false)
            variant.v_driver_checks;
          if !ok then exec variant.v_steps
        done;
        fragments := frag :: !fragments);
    List.iter (fun frag -> Relation.append_all out frag) (List.rev !fragments)
  end

(* --- aggregation (non-recursive strata only) --- *)

let fold_aggregate an pred candidates =
  let sig_ = Option.get (An.agg_sig an pred) in
  let arity = An.arity an pred in
  let table : (int list, int array * int array) Hashtbl.t = Hashtbl.create 256 in
  let ops = sig_.An.agg_positions in
  let seen = Dedup.create Dedup.Fast arity in
  let tuple = Array.make arity 0 in
  for row = 0 to Relation.nrows candidates - 1 do
    for c = 0 to arity - 1 do
      tuple.(c) <- Relation.get candidates ~row ~col:c
    done;
    if Dedup.add_row seen tuple then begin
      let key = List.map (fun p -> tuple.(p)) sig_.An.group_positions in
      let vals, counts =
        match Hashtbl.find_opt table key with
        | Some acc -> acc
        | None ->
            let acc =
              ( Array.of_list
                  (List.map
                     (fun (_, op) ->
                       match op with
                       | Ast.Min -> max_int
                       | Ast.Max -> min_int
                       | Ast.Sum | Ast.Count | Ast.Avg -> 0)
                     ops),
                Array.make (List.length ops) 0 )
            in
            Hashtbl.add table key acc;
            acc
      in
      List.iteri
        (fun i (pos, op) ->
          let v = tuple.(pos) in
          counts.(i) <- counts.(i) + 1;
          match op with
          | Ast.Min -> if v < vals.(i) then vals.(i) <- v
          | Ast.Max -> if v > vals.(i) then vals.(i) <- v
          | Ast.Sum | Ast.Avg -> vals.(i) <- vals.(i) + v
          | Ast.Count -> vals.(i) <- vals.(i) + 1)
        ops
    end
  done;
  let out = Relation.create ~name:pred arity in
  Hashtbl.iter
    (fun key (vals, counts) ->
      let t = Array.make arity 0 in
      List.iteri (fun i p -> t.(p) <- List.nth key i) sig_.An.group_positions;
      List.iteri
        (fun i (p, op) ->
          t.(p) <-
            (match op with
            | Ast.Avg -> if counts.(i) = 0 then 0 else vals.(i) / counts.(i)
            | _ -> vals.(i)))
        ops;
      Relation.push_row out t)
    table;
  out

let run ~pool ?deadline_vs ?trace ~edb program =
  let an = An.analyze program in
  let iterations = ref 0 in
  let rule_evals = ref 0 in
  let with_span sname f =
    match trace with Some tr -> Rs_obs.Trace.span tr ~kind:"engine" sname f | None -> f ()
  in
  let note_iteration ~stratum ~iteration ~idb ~delta_rows =
    match trace with
    | Some tr ->
        Rs_obs.Trace.iteration tr
          {
            Rs_obs.Trace.it_stratum = stratum;
            it_iteration = iteration;
            it_idb = idb;
            it_delta_rows = delta_rows;
            it_vtime = Pool.vtime_now pool;
          }
    | None -> ()
  in
  let check_deadline () =
    match deadline_vs with
    | Some budget ->
        let v = Pool.vtime_now pool in
        if v > budget then raise (Recstep.Interpreter.Timeout_simulated v)
    | None -> ()
  in
  (* Souffle has no recursive aggregation. *)
  List.iter
    (fun s ->
      if s.An.recursive then
        List.iter
          (fun p ->
            if An.agg_sig an p <> None then
              Engine_intf.unsupported "%s: recursive aggregation (%s)" name p)
          s.An.preds)
    an.An.strata;
  let stores : (string, pred_store) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (p, arity) -> Hashtbl.replace stores p (make_store p arity))
    an.An.arities;
  (* load EDBs (deduplicated, as souffle does on input) *)
  List.iter
    (fun p ->
      match List.assoc_opt p edb with
      | Some r ->
          let ps = Hashtbl.find stores p in
          let arity = Relation.arity r in
          if arity <> ps.arity then Engine_intf.unsupported "%s: arity mismatch on %s" name p;
          let tuple = Array.make arity 0 in
          for row = 0 to Relation.nrows r - 1 do
            for c = 0 to arity - 1 do
              tuple.(c) <- Relation.get r ~row ~col:c
            done;
            ignore (insert ps tuple)
          done;
          account ps
      | None -> Engine_intf.unsupported "%s: missing input %s" name p)
    an.An.edbs;
  (* stratum loop *)
  List.iter
    (fun stratum ->
      check_deadline ();
      with_span (Printf.sprintf "stratum-%d" stratum.An.index) @@ fun () ->
      let agg_preds = List.filter (fun p -> An.agg_sig an p <> None) stratum.An.preds in
      let candidates : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun p -> Hashtbl.replace candidates p (Relation.create ~name:(p ^ "@cand") (An.arity an p)))
        agg_preds;
      let compiled =
        List.filter_map
          (fun r -> if r.Ast.body = [] then None else Some (r, compile_rule stores stratum r))
          stratum.An.rules
      in
      (* facts *)
      List.iter
        (fun r ->
          if r.Ast.body = [] then begin
            let tuple =
              Array.of_list
                (List.map
                   (function Ast.H_term (Ast.Const c) -> c | _ -> Engine_intf.unsupported "%s: non-ground fact" name)
                   r.Ast.head_args)
            in
            match Hashtbl.find_opt candidates r.Ast.head_pred with
            | Some cand -> Relation.push_row cand tuple
            | None -> ignore (insert (Hashtbl.find stores r.Ast.head_pred) tuple)
          end)
        stratum.An.rules;
      let sink head out_rel =
        (* route derived tuples: aggregate heads collect candidates,
           plain heads insert (dedup + index maintenance) *)
        match Hashtbl.find_opt candidates head with
        | Some cand -> Relation.append_all cand out_rel
        | None ->
            let ps = Hashtbl.find stores head in
            let tuple = Array.make ps.arity 0 in
            for row = 0 to Relation.nrows out_rel - 1 do
              for c = 0 to ps.arity - 1 do
                tuple.(c) <- Relation.get out_rel ~row ~col:c
              done;
              ignore (insert ps tuple)
            done
      in
      (* iteration 0: base variants of every rule *)
      incr iterations;
      List.iter
        (fun (r, (nregs, base, _)) ->
          if r.Ast.body <> [] then begin
            let out = Relation.create (List.length r.Ast.head_args) in
            incr rule_evals;
            run_variant pool stores nregs base ~out;
            sink r.Ast.head_pred out
          end)
        compiled;
      List.iter (fun p -> account (Hashtbl.find stores p)) stratum.An.preds;
      (* advance deltas: everything inserted so far is Δ0 *)
      List.iter
        (fun p ->
          let ps = Hashtbl.find stores p in
          ps.delta_lo <- 0;
          ps.delta_hi <- Relation.nrows ps.store;
          note_iteration ~stratum:stratum.An.index ~iteration:0 ~idb:p ~delta_rows:ps.delta_hi)
        stratum.An.preds;
      if stratum.An.recursive then begin
        let round = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          check_deadline ();
          incr round;
          incr iterations;
          let before =
            List.map (fun p -> (p, Relation.nrows (Hashtbl.find stores p).store)) stratum.An.preds
          in
          List.iter
            (fun (r, (nregs, _, deltas)) ->
              List.iter
                (fun v ->
                  let out = Relation.create (List.length r.Ast.head_args) in
                  incr rule_evals;
                  run_variant pool stores nregs v ~out;
                  sink r.Ast.head_pred out)
                deltas)
            compiled;
          let any = ref false in
          List.iter
            (fun (p, old_n) ->
              let ps = Hashtbl.find stores p in
              let n = Relation.nrows ps.store in
              ps.delta_lo <- old_n;
              ps.delta_hi <- n;
              note_iteration ~stratum:stratum.An.index ~iteration:!round ~idb:p
                ~delta_rows:(n - old_n);
              if n > old_n then any := true;
              account ps)
            before;
          continue_ := !any
        done
      end;
      (* fold aggregates of this stratum *)
      List.iter
        (fun p ->
          let cand = Hashtbl.find candidates p in
          let folded = fold_aggregate an p cand in
          Relation.release cand;
          let ps = Hashtbl.find stores p in
          let tuple = Array.make ps.arity 0 in
          for row = 0 to Relation.nrows folded - 1 do
            for c = 0 to ps.arity - 1 do
              tuple.(c) <- Relation.get folded ~row ~col:c
            done;
            ignore (insert ps tuple)
          done;
          account ps)
        agg_preds;
      (* reset deltas for later strata *)
      List.iter
        (fun p ->
          let ps = Hashtbl.find stores p in
          ps.delta_lo <- 0;
          ps.delta_hi <- 0)
        stratum.An.preds)
    an.An.strata;
  let relation_of pred =
    match Hashtbl.find_opt stores pred with
    | Some ps -> ps.store
    | None -> invalid_arg (Printf.sprintf "%s: unknown relation %s" name pred)
  in
  Engine_intf.mk_result ~pool ?trace ~iterations:!iterations ~queries:!rule_evals relation_of

let maintain ~pool ?trace ~edb program =
  Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program
