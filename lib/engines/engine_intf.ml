(** Common interface of the Datalog engines under comparison.

    Each baseline from the paper's evaluation (§6.1) is reimplemented on the
    same substrates (relations, worker pool, memory tracker) so that the
    cross-system experiments compare *techniques*, not incidental runtime
    differences. [capabilities] carries the qualitative rows of the paper's
    Table 1; [run] raises {!Unsupported} exactly where the paper reports a
    system cannot express a workload.

    [run] returns a structured {!run_result} (not a bare lookup function):
    besides the result relations, every engine reports how many fixpoint
    iterations it took, how many backend queries it issued, the pool's timing
    statistics, and the trace it was asked to record into.

    The simulated failure modes still travel as exceptions inside an
    engine ([Unsupported], [Recstep.Interpreter.Timeout_simulated],
    [Rs_storage.Memtrack.Simulated_oom],
    [Rs_relation.Cck_concurrent.Capacity_exhausted]) — but callers should
    never catch them directly. {!run_guarded} (or the lower-level {!guard},
    which [Measure.run] shares) folds them all into the documented
    {!outcome} variant at the single boundary where a run's fate is
    decided. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type capabilities = {
  scale_up : bool;
  scale_out : bool;
  memory_consumption : string;  (** "low" / "medium" / "high" *)
  cpu_utilization : string;  (** "poor" / "medium" / "high" *)
  cpu_efficiency : string;  (** "-" / "low" / "medium" / "high" *)
  tuning_required : string;  (** hyperparameter-tuning burden *)
  mutual_recursion : bool;
  nonrecursive_aggregation : bool;
  recursive_aggregation : bool;
}

type run_result = {
  relation_of : string -> Rs_relation.Relation.t;  (** any result relation by name *)
  iterations : int;  (** fixpoint iterations (engine's own notion of a round) *)
  queries : int;  (** backend queries / rule evaluations issued *)
  pool_stats : Rs_parallel.Pool.stats;  (** simulated-time statistics of the run *)
  trace : Rs_obs.Trace.t option;  (** the trace passed in, for convenience *)
}

module type S = sig
  val name : string

  val capabilities : capabilities

  val run :
    pool:Rs_parallel.Pool.t ->
    ?deadline_vs:float ->
    ?trace:Rs_obs.Trace.t ->
    edb:(string * Rs_relation.Relation.t) list ->
    Recstep.Ast.program ->
    run_result
  (** Evaluates the program to fixpoint. Raises {!Unsupported} for programs
      outside the engine's fragment, [Recstep.Interpreter.Timeout_simulated]
      past [deadline_vs], and [Rs_storage.Memtrack.Simulated_oom] over the
      memory budget — prefer {!run_guarded}, which folds all three into
      {!outcome}. *)
end

type engine = (module S)

(** How a guarded run ended — the paper's cross-system result vocabulary
    (Tables 5–7: a time, "OOM", a dash for timeout, "not supported"). *)
type 'a outcome =
  | Done of 'a
  | Oom  (** exceeded the simulated memory budget *)
  | Timeout  (** passed the simulated-seconds deadline *)
  | Unsupported of string  (** program outside the engine's fragment *)
  | Fault of { cls : Rs_chaos.Fault.cls; point : string }
      (** an injected chaos fault escaped the run (see {!Rs_chaos}) *)

let outcome_map f = function
  | Done v -> Done (f v)
  | Oom -> Oom
  | Timeout -> Timeout
  | Unsupported m -> Unsupported m
  | Fault f -> Fault f

(* The one place the simulated-failure exceptions are caught. Dedup-table
   capacity exhaustion (a wrong cardinality estimate on a hot table) is a
   memory-shaped failure of the run, so it folds into [Oom] rather than
   escaping as an exception and killing a multi-query caller. *)
let guard (f : unit -> 'a) : 'a outcome =
  match f () with
  | v -> Done v
  | exception Unsupported m -> Unsupported m
  | exception Recstep.Interpreter.Timeout_simulated _ -> Timeout
  | exception Rs_storage.Memtrack.Simulated_oom _ -> Oom
  | exception Rs_relation.Cck_concurrent.Capacity_exhausted _ -> Oom
  | exception Rs_chaos.Fault.Injected { cls; point } -> Fault { cls; point }

let run_guarded (module E : S) ~pool ?deadline_vs ?trace ~edb program =
  guard (fun () -> E.run ~pool ?deadline_vs ?trace ~edb program)

(* Shared helper for engines assembling their run_result. *)
let mk_result ~pool ?trace ~iterations ~queries relation_of =
  { relation_of; iterations; queries; pool_stats = Rs_parallel.Pool.stats pool; trace }
