(** Common interface of the Datalog engines under comparison.

    Each baseline from the paper's evaluation (§6.1) is reimplemented on the
    same substrates (relations, worker pool, memory tracker) so that the
    cross-system experiments compare *techniques*, not incidental runtime
    differences. [capabilities] carries the qualitative rows of the paper's
    Table 1; [run] raises {!Unsupported} exactly where the paper reports a
    system cannot express a workload.

    [run] returns a structured {!run_result} (not a bare lookup function):
    besides the result relations, every engine reports how many fixpoint
    iterations it took, how many backend queries it issued, the pool's timing
    statistics, and the trace it was asked to record into.

    The simulated failure modes still travel as exceptions inside an
    engine ([Unsupported], [Recstep.Interpreter.Timeout_simulated],
    [Rs_storage.Memtrack.Simulated_oom],
    [Rs_relation.Cck_concurrent.Capacity_exhausted]) — but callers should
    never catch them directly. {!run_guarded} (or the lower-level {!guard},
    which [Measure.run] shares) folds them all into the documented
    {!outcome} variant at the single boundary where a run's fate is
    decided. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type capabilities = {
  scale_up : bool;
  scale_out : bool;
  memory_consumption : string;  (** "low" / "medium" / "high" *)
  cpu_utilization : string;  (** "poor" / "medium" / "high" *)
  cpu_efficiency : string;  (** "-" / "low" / "medium" / "high" *)
  tuning_required : string;  (** hyperparameter-tuning burden *)
  mutual_recursion : bool;
  nonrecursive_aggregation : bool;
  recursive_aggregation : bool;
  incremental : bool;
      (** true incremental view maintenance (deltas in, deltas out without
          re-running the fixpoint); engines without it still serve
          {!S.maintain} by recompute-and-diff *)
}

type run_result = {
  relation_of : string -> Rs_relation.Relation.t;  (** any result relation by name *)
  iterations : int;  (** fixpoint iterations (engine's own notion of a round) *)
  queries : int;  (** backend queries / rule evaluations issued *)
  pool_stats : Rs_parallel.Pool.stats;  (** simulated-time statistics of the run *)
  trace : Rs_obs.Trace.t option;  (** the trace passed in, for convenience *)
}

(** A materialized evaluation under maintenance: deltas in, deltas out.

    [m_apply] takes a typed EDB delta ({!Rs_relation.Delta.t}) and returns
    the net delta of the program's {e output} relations — exactly the rows
    that appeared and disappeared, in stratum order. [m_outputs] reads the
    current materialized outputs (name → sorted distinct rows), always
    consistent with the deltas applied so far. [m_incremental] tells how the
    handle maintains: [true] is genuine IVM (counting / DRed over the
    semi-naive loop), [false] is the generic recompute-and-diff fallback —
    same contract, full fixpoint per delta. *)
type maintained = {
  m_outputs : unit -> (string * int array list) list;
  m_apply : Rs_relation.Delta.t -> Rs_relation.Delta.t;
  m_incremental : bool;
}

module type S = sig
  val name : string

  val capabilities : capabilities

  val run :
    pool:Rs_parallel.Pool.t ->
    ?deadline_vs:float ->
    ?trace:Rs_obs.Trace.t ->
    edb:(string * Rs_relation.Relation.t) list ->
    Recstep.Ast.program ->
    run_result
  (** Evaluates the program to fixpoint. Raises {!Unsupported} for programs
      outside the engine's fragment, [Recstep.Interpreter.Timeout_simulated]
      past [deadline_vs], and [Rs_storage.Memtrack.Simulated_oom] over the
      memory budget — prefer {!run_guarded}, which folds all three into
      {!outcome}. *)

  val maintain :
    pool:Rs_parallel.Pool.t ->
    ?trace:Rs_obs.Trace.t ->
    edb:(string * Rs_relation.Relation.t) list ->
    Recstep.Ast.program ->
    maintained
  (** Materializes the program over [edb] and returns a {!maintained}
      handle. Raises exactly where {!run} would (the initial evaluation runs
      under the same fragment and budget rules); [m_apply] additionally
      raises [Invalid_argument] for deltas naming unknown relations or rows
      of the wrong arity. *)
end

type engine = (module S)

(** How a guarded run ended — the paper's cross-system result vocabulary
    (Tables 5–7: a time, "OOM", a dash for timeout, "not supported"). *)
type 'a outcome =
  | Done of 'a
  | Oom  (** exceeded the simulated memory budget *)
  | Timeout  (** passed the simulated-seconds deadline *)
  | Unsupported of string  (** program outside the engine's fragment *)
  | Fault of { cls : Rs_chaos.Fault.cls; point : string }
      (** an injected chaos fault escaped the run (see {!Rs_chaos}) *)

let outcome_map f = function
  | Done v -> Done (f v)
  | Oom -> Oom
  | Timeout -> Timeout
  | Unsupported m -> Unsupported m
  | Fault f -> Fault f

(* The one place the simulated-failure exceptions are caught. Dedup-table
   capacity exhaustion (a wrong cardinality estimate on a hot table) is a
   memory-shaped failure of the run, so it folds into [Oom] rather than
   escaping as an exception and killing a multi-query caller. *)
let guard (f : unit -> 'a) : 'a outcome =
  match f () with
  | v -> Done v
  | exception Unsupported m -> Unsupported m
  | exception Recstep.Interpreter.Timeout_simulated _ -> Timeout
  | exception Rs_storage.Memtrack.Simulated_oom _ -> Oom
  | exception Rs_relation.Cck_concurrent.Capacity_exhausted _ -> Oom
  | exception Rs_chaos.Fault.Injected { cls; point } -> Fault { cls; point }

let run_guarded (module E : S) ~pool ?deadline_vs ?trace ~edb program =
  guard (fun () -> E.run ~pool ?deadline_vs ?trace ~edb program)

(* Shared helper for engines assembling their run_result. *)
let mk_result ~pool ?trace ~iterations ~queries relation_of =
  { relation_of; iterations; queries; pool_stats = Rs_parallel.Pool.stats pool; trace }

(* --- generic maintenance by recompute ----------------------------------- *)

module Delta = Rs_relation.Delta
module Relation = Rs_relation.Relation
module Row_set = Set.Make (struct
  type t = int list

  let compare = compare
end)

(* The declared outputs of a program, or all its IDBs — the same convention
   the CLI and the serving layer use. *)
let output_names (program : Recstep.Ast.program) =
  if program.Recstep.Ast.outputs <> [] then program.Recstep.Ast.outputs
  else (Recstep.Analyzer.analyze program).Recstep.Analyzer.idbs

(* [maintain_by_recompute run ...] gives any engine the {!maintained}
   contract without incremental machinery: keep the EDB contents (set-level,
   mirroring [Edb_store.apply] semantics), re-run the engine from scratch on
   every delta, and diff the outputs against the previous materialization.
   Semantically indistinguishable from true IVM — that equivalence is what
   the delta-sequence fuzz oracle leans on — just paying a full fixpoint per
   delta. *)
let maintain_by_recompute
    (run :
      pool:Rs_parallel.Pool.t ->
      ?deadline_vs:float ->
      ?trace:Rs_obs.Trace.t ->
      edb:(string * Rs_relation.Relation.t) list ->
      Recstep.Ast.program ->
      run_result) ~pool ?trace ~edb program =
  let outs = output_names program in
  let tables =
    List.map
      (fun (name, r) ->
        let tbl = Hashtbl.create 64 in
        List.iter (fun row -> Hashtbl.replace tbl (Array.to_list row) ()) (Relation.to_rows r);
        (name, Relation.arity r, tbl))
      edb
  in
  let snapshot () =
    List.map
      (fun (name, arity, tbl) ->
        let rows = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
        (name, Relation.of_rows ~name arity (List.map Array.of_list rows)))
      tables
  in
  let current () =
    let result = run ~pool ?trace ~edb:(snapshot ()) program in
    List.map (fun n -> (n, Relation.sorted_distinct_rows (result.relation_of n))) outs
  in
  let state = ref (current ()) in
  let apply d =
    List.iter
      (fun rel ->
        match List.find_opt (fun (n, _, _) -> n = rel) tables with
        | None -> invalid_arg (Printf.sprintf "maintain: unknown EDB relation %S" rel)
        | Some (_, arity, tbl) ->
            List.iter
              (fun (o : Delta.op) ->
                if Array.length o.Delta.row <> arity then
                  invalid_arg
                    (Printf.sprintf "maintain: arity mismatch on %S (%d, expected %d)" rel
                       (Array.length o.Delta.row) arity);
                let k = Array.to_list o.Delta.row in
                match o.Delta.sign with
                | Delta.Insert -> Hashtbl.replace tbl k ()
                | Delta.Retract -> Hashtbl.remove tbl k)
              (Delta.ops d rel))
      (Delta.rels d);
    let next = current () in
    let changes =
      List.filter_map
        (fun ((n, old_rows), (_, new_rows)) ->
          let olds = Row_set.of_list (List.map Array.to_list old_rows) in
          let news = Row_set.of_list (List.map Array.to_list new_rows) in
          let ins = Row_set.diff news olds and del = Row_set.diff olds news in
          if Row_set.is_empty ins && Row_set.is_empty del then None
          else
            Some
              ( n,
                {
                  Delta.insert = List.map Array.of_list (Row_set.elements ins);
                  retract = List.map Array.of_list (Row_set.elements del);
                } ))
        (List.combine !state next)
    in
    state := next;
    Delta.of_changes changes
  in
  { m_outputs = (fun () -> !state); m_apply = apply; m_incremental = false }
