(** RecStep on simulated shard nodes, behind the common engine interface.

    Hash-partitions the EDB across four virtual nodes and evaluates with
    {!Rs_shard.Shard_exec}'s colocation-aware join planning: colocated
    rules run shuffle-free, reference relations are replicated, the rest
    pay broadcast or repartition costs on the simulated clock. Mutual
    recursion and negation are supported; aggregates raise
    {!Engine_intf.Unsupported} (the shard planner does not distribute
    group-by state yet). *)

include Engine_intf.S

val make : shards:int -> Engine_intf.engine
(** Same engine with an explicit node count (named ["Sharded-RecStep[n]"]);
    used by the scaling benchmarks. *)
