(** RecStep itself, behind the common engine interface. *)

module Ast = Recstep.Ast
module Interpreter = Recstep.Interpreter

let name = "RecStep"

let capabilities =
  {
    Engine_intf.scale_up = true;
    scale_out = false;
    memory_consumption = "low";
    cpu_utilization = "high";
    cpu_efficiency = "high";
    tuning_required = "no";
    mutual_recursion = true;
    nonrecursive_aggregation = true;
    recursive_aggregation = true;
  }

let run ~pool ?deadline_vs ?trace ~edb program =
  let options = Interpreter.options ?timeout_vs:deadline_vs ?trace () in
  let result = Interpreter.run ~options ~pool ~edb program in
  Engine_intf.mk_result ~pool ?trace ~iterations:result.Interpreter.iterations
    ~queries:result.Interpreter.queries result.Interpreter.relation_of
