(** RecStep itself, behind the common engine interface. *)

module Ast = Recstep.Ast
module Interpreter = Recstep.Interpreter

let name = "RecStep"

let capabilities =
  {
    Engine_intf.scale_up = true;
    scale_out = false;
    memory_consumption = "low";
    cpu_utilization = "high";
    cpu_efficiency = "high";
    tuning_required = "no";
    mutual_recursion = true;
    nonrecursive_aggregation = true;
    recursive_aggregation = true;
    incremental = true;
  }

let run ~pool ?deadline_vs ?trace ~edb program =
  let options = Interpreter.options ?timeout_vs:deadline_vs ?trace () in
  let result = Interpreter.run ~options ~pool ~edb program in
  Engine_intf.mk_result ~pool ?trace ~iterations:result.Interpreter.iterations
    ~queries:result.Interpreter.queries result.Interpreter.relation_of

(* True IVM (counting + DRed over the semi-naive loop) where the maintenance
   fragment allows; aggregates fall back to the generic recompute-and-diff
   path — same contract, m_incremental = false. *)
let maintain ~pool ?trace ~edb program =
  let ivm =
    if Recstep.Ivm.supported program then
      let rows =
        List.map
          (fun (n, r) -> (n, List.map Array.to_list (Rs_relation.Relation.to_rows r)))
          edb
      in
      match Recstep.Ivm.create ~edb:rows program with
      | ivm -> Some ivm
      | exception Recstep.Ivm.Unsupported _ -> None
    else None
  in
  match ivm with
  | Some ivm ->
      let outs = Engine_intf.output_names program in
      {
        Engine_intf.m_incremental = true;
        m_outputs =
          (fun () ->
            List.map (fun n -> (n, List.map Array.of_list (Recstep.Ivm.rows ivm n))) outs);
        m_apply = (fun d -> Recstep.Ivm.apply ivm d);
      }
  | None -> Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program
